// Package prpart's root benchmark harness regenerates every table and
// figure of the paper's evaluation (§V). Each benchmark drives the same
// experiment code as cmd/prbench and reports the headline quantities as
// benchmark metrics, so `go test -bench=. -benchmem` reproduces the
// paper's numbers alongside the performance of the implementation itself.
//
// The synthetic sweep behind Figs. 7-9 runs once (over a corpus sized by
// PRPART_BENCH_N, default 150; the paper uses 1000 — see cmd/prbench for
// the full-scale run) and is shared by the figure benchmarks.
package prpart

import (
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"prpart/internal/adaptive"
	"prpart/internal/basepart"
	"prpart/internal/bitstream"
	"prpart/internal/connmat"
	"prpart/internal/cost"
	"prpart/internal/design"
	"prpart/internal/device"
	"prpart/internal/experiments"
	"prpart/internal/floorplan"
	"prpart/internal/icap"
	"prpart/internal/multilevel"
	"prpart/internal/partition"
	"prpart/internal/synthetic"
)

// benchCorpusSize returns the sweep corpus size.
func benchCorpusSize() int {
	if s := os.Getenv("PRPART_BENCH_N"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 150
}

var (
	sweepOnce sync.Once
	sweepOuts []*experiments.Outcome
	sweepErr  error
)

func sweep(b *testing.B) []*experiments.Outcome {
	b.Helper()
	sweepOnce.Do(func() {
		designs := synthetic.Generate(1, benchCorpusSize())
		sweepOuts, sweepErr = experiments.Sweep(designs, partition.Options{}, 0)
	})
	if sweepErr != nil {
		b.Fatal(sweepErr)
	}
	return sweepOuts
}

// BenchmarkTable1BasePartitions regenerates Table I: the clustering of
// the worked example into 26 base partitions.
func BenchmarkTable1BasePartitions(b *testing.B) {
	d := design.PaperExample()
	var n int
	for i := 0; i < b.N; i++ {
		parts, err := basepart.BasePartitions(connmat.New(d))
		if err != nil {
			b.Fatal(err)
		}
		n = len(parts)
	}
	b.ReportMetric(float64(n), "base_partitions")
}

// BenchmarkTable2Synthesis regenerates Table II: resource estimation for
// the case-study modules via the synthesis substrate's IP library.
func BenchmarkTable2Synthesis(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		rows = len(experiments.Table2().Rows)
	}
	b.ReportMetric(float64(rows), "modes")
}

// BenchmarkTable3CaseStudy regenerates Table III: the proposed
// partitioning of the 8-configuration video receiver.
func BenchmarkTable3CaseStudy(b *testing.B) {
	d := design.VideoReceiver()
	var total int
	for i := 0; i < b.N; i++ {
		res, err := partition.Solve(d, partition.Options{Budget: design.CaseStudyBudget()})
		if err != nil {
			b.Fatal(err)
		}
		total = res.Summary.Total
	}
	b.ReportMetric(float64(total), "total_frames") // paper: 235266
}

// BenchmarkTable4Schemes regenerates Table IV: the static, modular,
// single-region and proposed schemes side by side.
func BenchmarkTable4Schemes(b *testing.B) {
	d := design.VideoReceiver()
	var imp float64
	for i := 0; i < b.N; i++ {
		cs, err := experiments.RunCaseStudy(d)
		if err != nil {
			b.Fatal(err)
		}
		imp = cs.ImprovementOverModular()
	}
	b.ReportMetric(imp, "improvement_pct") // paper: ~4%
}

// BenchmarkTable5Modified regenerates Table V: the modified-configuration
// case study with static promotion.
func BenchmarkTable5Modified(b *testing.B) {
	d := design.VideoReceiverModified()
	var total, static int
	for i := 0; i < b.N; i++ {
		res, err := partition.Solve(d, partition.Options{Budget: design.CaseStudyBudget()})
		if err != nil {
			b.Fatal(err)
		}
		total = res.Summary.Total
		static = len(res.Scheme.Static)
	}
	b.ReportMetric(float64(total), "total_frames") // paper: 92120
	b.ReportMetric(float64(static), "static_parts")
}

// BenchmarkFig7TotalReconfig regenerates Fig. 7: per-design total
// reconfiguration times across the synthetic corpus.
func BenchmarkFig7TotalReconfig(b *testing.B) {
	outs := sweep(b)
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := experiments.Fig7(outs)
		var prop, mod float64
		for _, row := range s.Values {
			prop += row[0]
			mod += row[1]
		}
		ratio = prop / mod
	}
	b.ReportMetric(float64(len(outs)), "designs")
	b.ReportMetric(ratio, "proposed_over_modular")
}

// BenchmarkFig8WorstReconfig regenerates Fig. 8: per-design worst-case
// reconfiguration times.
func BenchmarkFig8WorstReconfig(b *testing.B) {
	outs := sweep(b)
	var singleBeatsModular float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := experiments.Fig8(outs)
		n := 0
		for _, row := range s.Values {
			if row[2] < row[1] { // single-region worst below modular worst
				n++
			}
		}
		singleBeatsModular = 100 * float64(n) / float64(len(s.Values))
	}
	// The Fig. 8 crossover: single-region often wins on worst case.
	b.ReportMetric(singleBeatsModular, "single_beats_modular_pct")
}

// BenchmarkFig9Histograms regenerates the four Fig. 9 improvement
// profiles.
func BenchmarkFig9Histograms(b *testing.B) {
	outs := sweep(b)
	var samples int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hs := experiments.Fig9(outs)
		samples = hs[0].Total()
	}
	b.ReportMetric(float64(samples), "samples_per_histogram")
}

// BenchmarkScalarClaims regenerates the §V scalar claims (73 % / 70 % /
// 87.5 % win rates, upsized and smaller-device counts).
func BenchmarkScalarClaims(b *testing.B) {
	outs := sweep(b)
	var c experiments.Claims
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c = experiments.ComputeClaims(outs)
	}
	n := float64(c.Designs)
	b.ReportMetric(100*float64(c.TotalBetterThanModular)/n, "total_better_modular_pct") // paper: 73
	b.ReportMetric(100*float64(c.TotalWorseThanSingle)/n, "total_worse_single_pct")     // paper: 0
	b.ReportMetric(100*float64(c.WorstBetterThanModular)/n, "worst_better_modular_pct") // paper: 70
	b.ReportMetric(100*float64(c.WorstBetterOrEqualSingle)/n, "worst_be_single_pct")    // paper: 87.5
	b.ReportMetric(float64(c.Upsized), "upsized_designs")                               // paper: 201/1000
	b.ReportMetric(float64(c.SmallerThanModular), "smaller_than_modular")               // paper: 13/1000
}

// benchAblation solves the case study under a search variant. A variant
// that finds no multi-region scheme falls back to the single-region
// arrangement, exactly as the device-selection flow would; its (much
// larger) total is reported so the ablation cost is visible.
func benchAblation(b *testing.B, opts partition.Options) {
	b.Helper()
	d := design.VideoReceiver()
	opts.Budget = design.CaseStudyBudget()
	var total, fallback int
	for i := 0; i < b.N; i++ {
		res, err := partition.Solve(d, opts)
		switch err {
		case nil:
			total = res.Summary.Total
			fallback = 0
		case partition.ErrNoScheme:
			_, sum := cost.Evaluate(partition.SingleRegion(d))
			total = sum.Total
			fallback = 1
		default:
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(total), "total_frames")
	b.ReportMetric(float64(fallback), "single_region_fallback")
}

// BenchmarkAblationFull is the reference point for the A1-A3 ablations.
func BenchmarkAblationFull(b *testing.B) { benchAblation(b, partition.Options{}) }

// BenchmarkAblationNoStatic disables static promotion (A1).
func BenchmarkAblationNoStatic(b *testing.B) { benchAblation(b, partition.Options{NoStatic: true}) }

// BenchmarkAblationGreedyOnly disables candidate-set iteration and
// restarts (A2).
func BenchmarkAblationGreedyOnly(b *testing.B) { benchAblation(b, partition.Options{GreedyOnly: true}) }

// BenchmarkAblationNoQuantize guides the search with idealised frame
// counts (A3).
func BenchmarkAblationNoQuantize(b *testing.B) { benchAblation(b, partition.Options{NoQuantize: true}) }

// BenchmarkBackendFlow measures the post-partitioning tool-flow steps:
// floorplan, constraint generation and bitstream assembly.
func BenchmarkBackendFlow(b *testing.B) {
	d := design.VideoReceiver()
	res, err := partition.Solve(d, partition.Options{Budget: design.CaseStudyBudget()})
	if err != nil {
		b.Fatal(err)
	}
	dev, err := device.ByName("FX70T")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var bytes int
	for i := 0; i < b.N; i++ {
		plan, err := floorplan.Place(res.Scheme, dev)
		if err != nil {
			b.Fatal(err)
		}
		bits, err := bitstream.Assemble(res.Scheme, plan)
		if err != nil {
			b.Fatal(err)
		}
		bytes = 0
		for _, region := range bits.PerRegion {
			for _, bs := range region {
				bytes += bs.Bytes()
			}
		}
	}
	b.ReportMetric(float64(bytes), "bitstream_bytes")
}

// BenchmarkRuntimeSwitch measures one configuration switch through the
// ICAP model (the runtime the partitioner is minimising).
func BenchmarkRuntimeSwitch(b *testing.B) {
	d := design.VideoReceiver()
	res, err := partition.Solve(d, partition.Options{Budget: design.CaseStudyBudget()})
	if err != nil {
		b.Fatal(err)
	}
	dev, _ := device.ByName("FX70T")
	plan, err := floorplan.Place(res.Scheme, dev)
	if err != nil {
		b.Fatal(err)
	}
	bits, err := bitstream.Assemble(res.Scheme, plan)
	if err != nil {
		b.Fatal(err)
	}
	mgr, err := adaptive.NewManager(res.Scheme, bits, icap.New(32, 100_000_000))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := mgr.SwitchTo(0); err != nil {
		b.Fatal(err)
	}
	var modelled time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := mgr.SwitchTo(1 + i%7)
		if err != nil {
			b.Fatal(err)
		}
		modelled += d
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(modelled.Microseconds())/float64(b.N), "modelled_us_per_switch")
	}
}

// BenchmarkCostModel measures transition-matrix evaluation, the inner
// loop of the search.
func BenchmarkCostModel(b *testing.B) {
	d := design.VideoReceiver()
	s := partition.Modular(d)
	var total int
	for i := 0; i < b.N; i++ {
		m := cost.Transitions(s)
		total = m.Total()
	}
	b.ReportMetric(float64(total), "total_frames")
}

// benchMultilevelHuge solves one prgen huge-tier design through the
// full coarsen–partition–refine chain with the given per-level refine
// worker count. The direct engine cannot enumerate at this size at
// all, so there is no like-for-like baseline; the gate is the
// benchmark's own history (results/BENCH_pr7.json onward) plus the
// serial-vs-parallel identity contract (Workers changes wall-clock,
// never the scheme — see internal/partition/refine_parallel.go).
func benchMultilevelHuge(b *testing.B, design, workers int) {
	b.Helper()
	d := synthetic.GenerateHuge(1, design+1)[design]
	opts := multilevel.Options{
		Partition: partition.Options{
			Budget:  partition.Modular(d).TotalResources(),
			Workers: workers,
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	var res *multilevel.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = multilevel.Solve(d, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Partition.Summary.Total), "total_frames")
	b.ReportMetric(float64(res.Stats.Levels), "levels")
}

// BenchmarkMultilevelHuge is the 10³-mode tier, serial refinement.
func BenchmarkMultilevelHuge(b *testing.B) { benchMultilevelHuge(b, 0, 1) }

// BenchmarkMultilevelHugeParallel is the same solve with the per-level
// refine scan sharded over four workers; the PR 9 acceptance gate is
// ≥2× over BenchmarkMultilevelHuge with a byte-identical scheme.
func BenchmarkMultilevelHugeParallel(b *testing.B) { benchMultilevelHuge(b, 0, 4) }

// BenchmarkMultilevelHuge20K is the extended tier parallel refinement
// unlocked: 2×10⁴ modes (the last HugeSizes entry), four workers.
func BenchmarkMultilevelHuge20K(b *testing.B) {
	benchMultilevelHuge(b, len(synthetic.HugeSizes)-1, 4)
}

// BenchmarkGalleryDesigns runs the full evaluation procedure on the
// realistic gallery designs (extension experiment E14) and reports the
// proposed scheme's improvement over one-module-per-region for each.
func BenchmarkGalleryDesigns(b *testing.B) {
	var imps [3]float64
	for i := 0; i < b.N; i++ {
		for gi, d := range design.Gallery() {
			o, err := experiments.EvaluateDesign(gi, d, partition.Options{})
			if err != nil {
				b.Fatal(err)
			}
			imps[gi] = 100 * float64(o.Modular.Total-o.Proposed.Total) / float64(o.Modular.Total)
		}
	}
	b.ReportMetric(imps[0], "sdr_improvement_pct")
	b.ReportMetric(imps[1], "vision_improvement_pct")
	b.ReportMetric(imps[2], "satellite_improvement_pct")
}
