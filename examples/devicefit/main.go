// Device fit: the paper's device-selection story. For a handful of
// synthetic designs this example finds the smallest Virtex-5 for each
// partitioning scheme, showing the two §V phenomena: designs that must
// re-iterate on a larger FPGA because only the single-region arrangement
// fits the minimum one, and designs where the proposed algorithm fits a
// smaller FPGA than one-module-per-region needs.
//
//	go run ./examples/devicefit
package main

import (
	"fmt"
	"log"

	"prpart/internal/experiments"
	"prpart/internal/partition"
	"prpart/internal/synthetic"
)

func main() {
	const n = 40
	designs := synthetic.Generate(7, n)
	outs, err := experiments.Sweep(designs, partition.Options{}, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-28s %-10s %-10s %-10s %s\n",
		"design", "single", "proposed", "modular", "notes")
	upsized, smaller := 0, 0
	for _, o := range outs {
		note := ""
		if o.Upsized {
			note += "re-iterated on larger FPGA; "
			upsized++
		}
		if o.SmallerThanModular {
			note += "fits smaller FPGA than 1M/R; "
			smaller++
		}
		fmt.Printf("%-28s %-10s %-10s %-10s %s\n",
			o.Name, trim(o.SingleDev), trim(o.ProposedDev), trim(o.ModularDev), note)
	}
	fmt.Printf("\n%d/%d designs re-iterated on a larger FPGA (paper: 201/1000)\n", upsized, n)
	fmt.Printf("%d/%d designs fit a smaller FPGA than one-module-per-region (paper: 13/1000)\n", smaller, n)
}

func trim(name string) string {
	const p = "XC5V"
	if len(name) > len(p) && name[:len(p)] == p {
		return name[len(p):]
	}
	if name == "" {
		return "-"
	}
	return name
}
