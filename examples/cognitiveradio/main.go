// Cognitive radio: the paper's motivating application (§I) — a radio that
// switches between spectrum sensing and transmission chains as channel
// conditions change. This example builds the radio as a PR design,
// partitions it three ways, and then *runs* it: the adaptive runtime
// simulator drives configuration switches from a synthetic channel trace
// through the ICAP model, measuring realised reconfiguration time for
// each partitioning scheme.
//
//	go run ./examples/cognitiveradio
package main

import (
	"fmt"
	"log"
	"time"

	"prpart/internal/adaptive"
	"prpart/internal/bitstream"
	"prpart/internal/core"
	"prpart/internal/design"
	"prpart/internal/device"
	"prpart/internal/floorplan"
	"prpart/internal/icap"
	"prpart/internal/partition"
	"prpart/internal/resource"
	"prpart/internal/scheme"
)

// radio builds the cognitive-radio design: a sensing engine (energy vs
// cyclostationary detector), an adaptive front-end filter, a modem with
// three modulation depths, and an FEC encoder with two strengths. Valid
// configurations pair sensing with light processing, and transmission
// with the full chain at several robustness levels.
func radio() *design.Design {
	return &design.Design{
		Name:   "cognitive-radio",
		Static: resource.New(90, 8, 0),
		Modules: []*design.Module{
			{Name: "Sense", Modes: []design.Mode{
				{Name: "Energy", Resources: resource.New(220, 2, 6)},
				{Name: "Cyclo", Resources: resource.New(980, 10, 24)},
			}},
			{Name: "Filter", Modes: []design.Mode{
				{Name: "Narrow", Resources: resource.New(300, 0, 12)},
				{Name: "Wide", Resources: resource.New(520, 0, 22)},
			}},
			{Name: "Modem", Modes: []design.Mode{
				{Name: "BPSK", Resources: resource.New(60, 0, 2)},
				{Name: "QPSK", Resources: resource.New(120, 0, 4)},
				{Name: "QAM16", Resources: resource.New(260, 1, 8)},
			}},
			{Name: "FEC", Modes: []design.Mode{
				{Name: "Light", Resources: resource.New(240, 2, 0)},
				{Name: "Strong", Resources: resource.New(700, 8, 4)},
			}},
		},
		Configurations: []design.Configuration{
			// Sensing sweeps: no modem or FEC on the fabric.
			{Name: "sense-fast", Modes: []int{1, 1, 0, 0}},
			{Name: "sense-deep", Modes: []int{2, 2, 0, 0}},
			// Transmission at increasing robustness.
			{Name: "tx-fragile", Modes: []int{0, 2, 3, 1}},
			{Name: "tx-normal", Modes: []int{0, 2, 2, 1}},
			{Name: "tx-robust", Modes: []int{0, 1, 1, 2}},
		},
	}
}

func main() {
	d := radio()
	budget := resource.New(2600, 36, 80)

	res, err := core.Run(d, core.Options{Device: "FX30T", Budget: budget, ClockMHz: 100})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== proposed partitioning ==")
	fmt.Print(res.Report())

	// Channel trace: long sensing stretches punctuated by transmission
	// bursts whose robustness follows the walk value.
	events := adaptive.RandomWalkEvents(2026, 2000, 10*time.Millisecond)
	policy := func(ev adaptive.Event) int {
		switch {
		case ev.Value < 0.25:
			return 0 // sense-fast
		case ev.Value < 0.40:
			return 1 // sense-deep
		case ev.Value < 0.65:
			return 2 // tx-fragile
		case ev.Value < 0.85:
			return 3 // tx-normal
		default:
			return 4 // tx-robust
		}
	}

	fmt.Println("\n== realised reconfiguration cost over the channel trace ==")
	fmt.Printf("%-22s %10s %12s %14s\n", "scheme", "switches", "region loads", "reconfig time")
	run(res.Scheme, "proposed", events, policy)
	run(partition.Modular(d), "one module/region", events, policy)
	run(partition.SingleRegion(d), "single region", events, policy)
}

// run floorplans a scheme, assembles its bitstreams, and replays the
// event trace through the runtime manager.
func run(s *scheme.Scheme, label string, events []adaptive.Event, policy adaptive.Policy) {
	dev, err := device.ByName("FX30T")
	if err != nil {
		log.Fatal(err)
	}
	plan, err := floorplan.Place(s, dev)
	if err != nil {
		log.Fatalf("%s: %v", label, err)
	}
	bits, err := bitstream.Assemble(s, plan)
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := adaptive.NewManager(s, bits, icap.New(32, 100_000_000))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := adaptive.Simulate(mgr, events, policy); err != nil {
		log.Fatal(err)
	}
	st := mgr.Stats()
	fmt.Printf("%-22s %10d %12d %14v\n", label, st.Switches, st.RegionLoads, st.ReconfigTime)
}
