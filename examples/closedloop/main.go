// Closed loop: the paper's future-work idea, end to end. Deploy a design
// partitioned with the uniform objective, observe how the environment
// actually drives it, estimate the switching distribution from the
// trace, re-partition with the weighted objective, and compare both
// schemes on the same workload.
//
// The design is an adaptive link with two similar-sized reconfigurable
// modules; the budget leaves room to give ONE of them per-mode regions
// (making its switches free) while the other stays in a shared region.
// The uniform objective protects the slightly larger FEC module; the
// observed workload, however, switches modulation almost exclusively —
// so re-partitioning moves the split to where the traffic is.
//
//	go run ./examples/closedloop
package main

import (
	"fmt"
	"log"

	"prpart/internal/adaptive"
	"prpart/internal/cost"
	"prpart/internal/design"
	"prpart/internal/partition"
	"prpart/internal/resource"
)

// link is the adaptive communication link under study.
func link() *design.Design {
	return &design.Design{
		Name:   "adaptive-link",
		Static: resource.New(90, 8, 0),
		Modules: []*design.Module{
			{Name: "Mod", Modes: []design.Mode{
				{Name: "QPSK", Resources: resource.New(400, 2, 10)},
				{Name: "QAM64", Resources: resource.New(400, 2, 10)},
			}},
			{Name: "FEC", Modes: []design.Mode{
				{Name: "Light", Resources: resource.New(440, 4, 4)},
				{Name: "Strong", Resources: resource.New(440, 4, 4)},
			}},
		},
		Configurations: []design.Configuration{
			{Name: "good-channel", Modes: []int{2, 1}}, // QAM64 + light FEC
			{Name: "fair-channel", Modes: []int{1, 1}}, // QPSK + light FEC
			{Name: "bad-channel", Modes: []int{1, 2}},  // QPSK + strong FEC
		},
	}
}

func main() {
	d := link()
	// Room for three regions of ~400-440 CLBs plus static: one module can
	// have per-mode regions, the other cannot.
	budget := resource.New(1420, 24, 32)
	n := len(d.Configurations)

	// 1. First deployment: the uniform objective.
	first, err := partition.Solve(d, partition.Options{Budget: budget})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("deployed with the uniform objective:")
	for i := range first.Scheme.Regions {
		r := &first.Scheme.Regions[i]
		fmt.Printf("  PRR%d (%d frames): %s\n", i+1, r.Frames(), r.Label(d))
	}

	// 2. In the field the channel flaps between good and fair — the
	// modulation switches constantly, the FEC hardly ever.
	p := [][]float64{
		{0, 0.97, 0.03},
		{0.97, 0, 0.03},
		{0.50, 0.50, 0},
	}
	seq, err := adaptive.MarkovSequence(2026, p, 5000)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Estimate the switching distribution from the observed trace.
	weights, err := adaptive.EstimateWeights(seq, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nobserved workload: %.1f%% of switches are good<->fair (modulation only)\n",
		100*(weights[0][1]+weights[1][0]))

	// 4. Re-partition for the measured distribution.
	second, err := partition.Solve(d, partition.Options{
		Budget:            budget,
		TransitionWeights: weights,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("re-partitioned for the observed workload:")
	for i := range second.Scheme.Regions {
		r := &second.Scheme.Regions[i]
		fmt.Printf("  PRR%d (%d frames): %s\n", i+1, r.Frames(), r.Label(d))
	}

	// 5. Replay the same workload against both schemes.
	replay := func(r *partition.Result) int {
		m := cost.Transitions(r.Scheme)
		total := 0
		for k := 1; k < len(seq); k++ {
			total += m[seq[k-1]][seq[k]]
		}
		return total
	}
	before, after := replay(first), replay(second)
	fmt.Printf("\nworkload cost before re-partitioning: %8d frames (uniform total %d)\n",
		before, first.Summary.Total)
	fmt.Printf("workload cost after  re-partitioning: %8d frames (uniform total %d)\n",
		after, second.Summary.Total)
	if after < before {
		fmt.Printf("adaptation saved %.1f%% of reconfiguration traffic\n",
			100*float64(before-after)/float64(before))
	} else {
		fmt.Println("the uniform scheme was already optimal for this workload")
	}
}
