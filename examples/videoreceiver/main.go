// Video receiver: the paper's §V case study run end-to-end — partition
// the wireless video receiver for a Virtex-5 FX70T, floorplan it,
// generate constraints and partial bitstreams, and print the Table III/IV
// analogues.
//
//	go run ./examples/videoreceiver
package main

import (
	"fmt"
	"log"

	"prpart/internal/core"
	"prpart/internal/design"
	"prpart/internal/experiments"
)

func main() {
	d := design.VideoReceiver()

	fmt.Println("== module utilisations (Table II) ==")
	fmt.Print(experiments.Table2())

	res, err := core.Run(d, core.Options{
		Device:   "FX70T",
		Budget:   design.CaseStudyBudget(),
		ClockMHz: 100,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== full tool-flow result ==")
	fmt.Print(res.Report())

	fmt.Println("\n== scheme comparison (Table IV) ==")
	cs, err := experiments.RunCaseStudy(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(cs.SchemeTable())
	fmt.Printf("\nproposed improves total reconfiguration time by %.1f%% over one module per region\n",
		cs.ImprovementOverModular())

	fmt.Println("\n== floorplan ==")
	fmt.Print(res.Plan)

	fmt.Println("\n== generated UCF (excerpt) ==")
	const maxUCF = 600
	u := res.UCF
	if len(u) > maxUCF {
		u = u[:maxUCF] + "...\n"
	}
	fmt.Print(u)
}
