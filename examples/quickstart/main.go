// Quickstart: describe a small adaptive system, run the automated
// partitioner, and inspect what the algorithm derived — the connectivity
// matrix, the base partitions of the paper's Table I, and the proposed
// region allocation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"prpart/internal/basepart"
	"prpart/internal/connmat"
	"prpart/internal/core"
	"prpart/internal/cover"
	"prpart/internal/design"
	"prpart/internal/resource"
)

func main() {
	// The worked example of the paper: three modules A, B, C with
	// 3/2/3 modes and five valid configurations.
	d := design.PaperExample()

	fmt.Println("== connectivity matrix ==")
	m := connmat.New(d)
	fmt.Print(m)

	fmt.Println("\n== base partitions (Table I) ==")
	parts, err := basepart.BasePartitions(m)
	if err != nil {
		log.Fatal(err)
	}
	for _, bp := range cover.Order(parts) {
		fmt.Printf("  %-18s freq weight %d\n", bp.Label(d), bp.FreqWeight)
	}

	// Partition for a mid-size budget: big enough for interesting
	// groupings, too small for everything to stay resident.
	budget := resource.New(800, 24, 24)
	res, err := core.Run(d, core.Options{
		Device:      "LX20T",
		Budget:      budget,
		SkipBackend: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== proposed partitioning ==")
	fmt.Print(res.Report())
}
