package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"prpart/internal/benchfmt"
)

func TestSingleExperiments(t *testing.T) {
	cases := map[string][]string{
		"table1":   {"Table I", "{B.2}"},
		"table2":   {"Table II", "MPEG4"},
		"table3":   {"Table III", "PRR1", "improvement"},
		"table4":   {"Table IV", "Static", "Proposed"},
		"table5":   {"Table V", "paper: 92120"},
		"weighted": {"Weighted expectation", "Modular"},
	}
	for exp, wants := range cases {
		t.Run(exp, func(t *testing.T) {
			var out strings.Builder
			if err := run([]string{"-exp", exp}, &out); err != nil {
				t.Fatal(err)
			}
			for _, w := range wants {
				if !strings.Contains(out.String(), w) {
					t.Errorf("%s output missing %q:\n%s", exp, w, out.String())
				}
			}
		})
	}
}

func TestSweepExperimentsShareCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var out strings.Builder
	// fig7, fig9 and claims share one sweep; a tiny corpus keeps it fast.
	for _, exp := range []string{"fig7", "fig9", "claims"} {
		if err := run([]string{"-exp", exp, "-n", "16"}, &out); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
	s := out.String()
	if !strings.Contains(s, "Figs. 7-8 summary") ||
		!strings.Contains(s, "Fig. 9(a)") ||
		!strings.Contains(s, "Scalar claims") {
		t.Errorf("sweep outputs incomplete:\n%s", s)
	}
}

func TestCSVDumps(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "csv")
	var out strings.Builder
	if err := run([]string{"-exp", "table1", "-csv", dir}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "Base Part'n,Freq wt\n") {
		t.Errorf("CSV header wrong: %.40q", string(data))
	}
}

func TestAblationExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var out strings.Builder
	if err := run([]string{"-exp", "ablation", "-abl-n", "6"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "greedy-only (A2)") {
		t.Errorf("ablation output incomplete:\n%s", out.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "nope"}, &strings.Builder{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// -update regenerates the bench-report golden file:
//
//	go test ./cmd/prbench/ -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files with current output")

// TestGoldenBenchJSON pins the prbench -json report: schema shape, the
// metric, counter and benchmark key sets, and the (deterministic)
// metric and counter values for a small corpus. Wall-clock runtimes and
// per-op benchmark measurements are normalised to zero and the Go
// version to a fixed token, so the golden file is stable across
// machines; the measured values are gated by scripts/bench_compare.go
// instead.
func TestGoldenBenchJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out strings.Builder
	if err := run([]string{"-json", "-rev", "golden", "-n", "12", "-seed", "1", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	r, err := benchfmt.ReadFile(path)
	if err != nil {
		t.Fatalf("report does not validate against the schema: %v", err)
	}
	r.GoVersion = "go(normalised)"
	for k := range r.RuntimeNs {
		r.RuntimeNs[k] = 0
	}
	for k := range r.Benchmarks {
		r.Benchmarks[k] = benchfmt.BenchResult{}
	}
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}

	goldenPath := filepath.Join("testdata", "bench_json.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("bench report drifted from golden (re-run with -update if intentional)\n--- want\n%s--- got\n%s",
			want, buf.Bytes())
	}
}
