package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSingleExperiments(t *testing.T) {
	cases := map[string][]string{
		"table1":   {"Table I", "{B.2}"},
		"table2":   {"Table II", "MPEG4"},
		"table3":   {"Table III", "PRR1", "improvement"},
		"table4":   {"Table IV", "Static", "Proposed"},
		"table5":   {"Table V", "paper: 92120"},
		"weighted": {"Weighted expectation", "Modular"},
	}
	for exp, wants := range cases {
		t.Run(exp, func(t *testing.T) {
			var out strings.Builder
			if err := run([]string{"-exp", exp}, &out); err != nil {
				t.Fatal(err)
			}
			for _, w := range wants {
				if !strings.Contains(out.String(), w) {
					t.Errorf("%s output missing %q:\n%s", exp, w, out.String())
				}
			}
		})
	}
}

func TestSweepExperimentsShareCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var out strings.Builder
	// fig7, fig9 and claims share one sweep; a tiny corpus keeps it fast.
	for _, exp := range []string{"fig7", "fig9", "claims"} {
		if err := run([]string{"-exp", exp, "-n", "16"}, &out); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
	s := out.String()
	if !strings.Contains(s, "Figs. 7-8 summary") ||
		!strings.Contains(s, "Fig. 9(a)") ||
		!strings.Contains(s, "Scalar claims") {
		t.Errorf("sweep outputs incomplete:\n%s", s)
	}
}

func TestCSVDumps(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "csv")
	var out strings.Builder
	if err := run([]string{"-exp", "table1", "-csv", dir}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "Base Part'n,Freq wt\n") {
		t.Errorf("CSV header wrong: %.40q", string(data))
	}
}

func TestAblationExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var out strings.Builder
	if err := run([]string{"-exp", "ablation", "-abl-n", "6"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "greedy-only (A2)") {
		t.Errorf("ablation output incomplete:\n%s", out.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "nope"}, &strings.Builder{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}
