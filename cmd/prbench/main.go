// Command prbench regenerates every table and figure of the paper's
// evaluation section:
//
//	prbench -exp all                 # everything, paper-scale corpus
//	prbench -exp table1              # one artefact
//	prbench -exp fig7 -n 200 -csv out/   # smaller corpus, CSV dumps
//
// Experiments: table1, table2, table3, table4, table5, fig7, fig8, fig9,
// claims, classes, gallery, ablation, weighted, all.
//
// With -daemon the synthetic sweep runs as an HTTP client of a prpartd
// instance booted in-process (or an external one named by -daemon-url),
// driving /v1/solve/batch (-daemon-mode batch) or the async job API
// (-daemon-mode async) instead of calling the library — the end-to-end
// check that the daemon's batch and async surfaces produce the exact
// metrics of the in-process evaluation:
//
//	prbench -exp claims -n 100 -daemon
//	prbench -exp claims -n 100 -daemon -daemon-mode async
//	prbench -exp fig7 -daemon -daemon-url http://127.0.0.1:8377
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"prpart/internal/benchfmt"
	"prpart/internal/design"
	"prpart/internal/experiments"
	"prpart/internal/multilevel"
	"prpart/internal/obs"
	"prpart/internal/partition"
	"prpart/internal/report"
	"prpart/internal/serve"
	"prpart/internal/synthetic"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "prbench:", err)
		os.Exit(1)
	}
}

type env struct {
	out     io.Writer
	csvDir  string
	n       int
	seed    int64
	workers int
	md      bool
	ml      bool
	obs     *obs.Obs

	daemon     bool
	daemonURL  string
	daemonMode string

	sweepOnce bool
	sweepNs   int64
	outs      []*experiments.Outcome
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("prbench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment to run")
	n := fs.Int("n", 1000, "synthetic corpus size (figs 7-9, claims)")
	seed := fs.Int64("seed", 1, "corpus seed")
	workers := fs.Int("workers", 0, "sweep workers (0 = GOMAXPROCS)")
	csvDir := fs.String("csv", "", "directory for CSV dumps (optional)")
	md := fs.Bool("md", false, "render tables as Markdown instead of aligned text")
	ml := fs.Bool("multilevel", false, "drive the sweep through the multilevel engine (delegates at paper scale; a coarsening A/B switch)")
	daemon := fs.Bool("daemon", false, "run the sweep as a batch/async client of a prpartd daemon (booted in-process unless -daemon-url)")
	daemonURL := fs.String("daemon-url", "", "base URL of an already-running daemon to sweep against (implies -daemon)")
	daemonMode := fs.String("daemon-mode", "batch", "daemon sweep surface: batch (/v1/solve/batch) or async (/v1/jobs)")
	ablN := fs.Int("abl-n", 100, "ablation corpus size")
	jsonOut := fs.Bool("json", false, "write a benchmark-regression report (BENCH_<rev>.json) instead of tables")
	rev := fs.String("rev", "dev", "revision label for the -json report")
	jsonPath := fs.String("o", "", "output path for the -json report (default BENCH_<rev>.json)")
	ofl := obs.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	o, stopObs, err := ofl.Start(out)
	if err != nil {
		return err
	}
	e := &env{
		out: out, csvDir: *csvDir, n: *n, seed: *seed, workers: *workers,
		md: *md, ml: *ml, obs: o,
		daemon: *daemon || *daemonURL != "", daemonURL: *daemonURL, daemonMode: *daemonMode,
	}
	if e.daemon && e.daemonMode != "batch" && e.daemonMode != "async" {
		return fmt.Errorf("unknown -daemon-mode %q (want batch or async)", e.daemonMode)
	}
	if *jsonOut {
		path := *jsonPath
		if path == "" {
			path = "BENCH_" + *rev + ".json"
		}
		err := e.benchJSON(*rev, path)
		if serr := stopObs(); serr != nil && err == nil {
			err = serr
		}
		return err
	}

	runners := map[string]func() error{
		"table1":   e.table1,
		"table2":   e.table2,
		"table3":   e.table3,
		"table4":   e.table4,
		"table5":   e.table5,
		"fig7":     e.fig7,
		"fig8":     e.fig8,
		"fig9":     e.fig9,
		"claims":   e.claims,
		"classes":  e.classes,
		"gallery":  e.gallery,
		"weighted": e.weighted,
		"ablation": func() error { return e.ablation(*ablN) },
	}
	runErr := func() error {
		if *exp == "all" {
			for _, name := range []string{
				"table1", "table2", "table3", "table4", "table5",
				"fig7", "fig8", "fig9", "claims", "classes", "gallery",
				"ablation", "weighted",
			} {
				if err := runners[name](); err != nil {
					return fmt.Errorf("%s: %w", name, err)
				}
				fmt.Fprintln(out)
			}
			return nil
		}
		r, ok := runners[*exp]
		if !ok {
			return fmt.Errorf("unknown experiment %q", *exp)
		}
		return r()
	}()
	if serr := stopObs(); serr != nil && runErr == nil {
		runErr = serr
	}
	return runErr
}

func (e *env) sweep() ([]*experiments.Outcome, error) {
	if e.sweepOnce {
		return e.outs, nil
	}
	start := time.Now()
	designs := synthetic.Generate(e.seed, e.n)
	solve := experiments.Solver(partition.Solve)
	var cleanup func()
	if e.daemon {
		var err error
		solve, cleanup, err = e.daemonSolver()
		if err != nil {
			return nil, err
		}
	} else if e.ml {
		solve = multilevel.Solver(multilevel.Options{})
	}
	outs, err := experiments.SweepSolver(designs, partition.Options{Obs: e.obs}, e.workers, solve)
	if cleanup != nil {
		cleanup()
	}
	if err != nil {
		return nil, err
	}
	e.sweepNs = time.Since(start).Nanoseconds()
	fmt.Fprintf(e.out, "[sweep: %d designs in %v]\n", len(outs), time.Since(start).Round(time.Millisecond))
	e.outs = outs
	e.sweepOnce = true
	return outs, nil
}

// daemonSolver returns a Solver that drives the sweep over HTTP: against
// -daemon-url when set, otherwise against a prpartd serving layer booted
// in-process on a loopback port. The cleanup func tears down the batcher
// and any booted daemon after the sweep.
func (e *env) daemonSolver() (experiments.Solver, func(), error) {
	cfg := experiments.RemoteConfig{
		BaseURL:    e.daemonURL,
		Multilevel: e.ml,
	}
	var stops []func()
	if cfg.BaseURL == "" {
		srv := serve.New(serve.Config{Workers: e.workers, Obs: e.obs})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			srv.Close()
			return nil, nil, err
		}
		httpSrv := &http.Server{Handler: srv.Handler()}
		go httpSrv.Serve(ln)
		cfg.BaseURL = "http://" + ln.Addr().String()
		stops = append(stops, func() { httpSrv.Close(); srv.Close() })
		fmt.Fprintf(e.out, "[daemon: booted in-process at %s]\n", cfg.BaseURL)
	}
	fmt.Fprintf(e.out, "[daemon: sweeping via %s against %s]\n", e.daemonMode, cfg.BaseURL)
	var solve experiments.Solver
	if e.daemonMode == "async" {
		solve = experiments.AsyncSolver(cfg)
	} else {
		b := experiments.NewBatcher(cfg)
		stops = append(stops, b.Close)
		solve = b.Solver()
	}
	return solve, func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}, nil
}

// benchJSON runs the headline experiments under instrumentation and
// writes a benchfmt report to path: the regression baseline that
// scripts/bench_compare.go diffs against a later run.
func (e *env) benchJSON(rev, path string) error {
	if e.obs == nil {
		e.obs = obs.New()
	}
	r := &benchfmt.Report{
		Schema:     benchfmt.Schema,
		Rev:        rev,
		GoVersion:  runtime.Version(),
		Corpus:     benchfmt.Corpus{N: e.n, Seed: e.seed},
		Metrics:    map[string]float64{},
		RuntimeNs:  map[string]int64{},
		Counters:   map[string]int64{},
		Benchmarks: map[string]benchfmt.BenchResult{},
	}

	start := time.Now()
	cs, err := experiments.RunCaseStudy(design.VideoReceiver())
	if err != nil {
		return err
	}
	r.RuntimeNs["casestudy_ns"] = time.Since(start).Nanoseconds()
	r.Metrics["casestudy_total_frames"] = float64(cs.Proposed.Summary.Total)
	r.Metrics["casestudy_worst_frames"] = float64(cs.Proposed.Summary.Worst)
	r.Metrics["casestudy_regions"] = float64(len(cs.Proposed.Scheme.Regions))
	r.Metrics["casestudy_improvement_pct"] = cs.ImprovementOverModular()

	start = time.Now()
	csm, err := experiments.RunCaseStudy(design.VideoReceiverModified())
	if err != nil {
		return err
	}
	r.RuntimeNs["casestudy_modified_ns"] = time.Since(start).Nanoseconds()
	r.Metrics["casestudy_modified_total_frames"] = float64(csm.Proposed.Summary.Total)
	r.Metrics["casestudy_modified_improvement_pct"] = csm.ImprovementOverModular()

	outs, err := e.sweep()
	if err != nil {
		return err
	}
	r.RuntimeNs["sweep_ns"] = e.sweepNs
	c := experiments.ComputeClaims(outs)
	r.Metrics["sweep_designs"] = float64(c.Designs)
	r.Metrics["sweep_total_better_than_modular"] = float64(c.TotalBetterThanModular)
	r.Metrics["sweep_total_equal_modular"] = float64(c.TotalEqualModular)
	r.Metrics["sweep_total_worse_than_single"] = float64(c.TotalWorseThanSingle)
	r.Metrics["sweep_worst_better_than_modular"] = float64(c.WorstBetterThanModular)
	r.Metrics["sweep_worst_worse_than_modular"] = float64(c.WorstWorseThanModular)
	var upsized, fallback, smaller int
	for _, o := range outs {
		if o.Upsized {
			upsized++
		}
		if o.FallbackSingle {
			fallback++
		}
		if o.SmallerThanModular {
			smaller++
		}
	}
	r.Metrics["sweep_upsized"] = float64(upsized)
	r.Metrics["sweep_fallback_single"] = float64(fallback)
	r.Metrics["sweep_smaller_than_modular"] = float64(smaller)

	if err := e.microBenchmarks(r); err != nil {
		return err
	}

	snap := e.obs.Snapshot()
	for k, v := range snap.Counters {
		r.Counters[k] = v
	}
	for k, v := range snap.Gauges {
		r.Counters[k] = v
	}
	for k, ts := range snap.Timers {
		r.RuntimeNs[k+"_ns"] = ts.Total.Nanoseconds()
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(e.out, "[bench: wrote %s (%d metrics, %d counters, %d benchmarks)]\n",
		path, len(r.Metrics), len(r.Counters), len(r.Benchmarks))
	return nil
}

// microBenchmarks measures the solver's per-operation wall time and
// allocation profile with the testing harness and records the results
// in the report's benchmarks section, where bench_compare gates ns/op
// and allocs/op under the runtime tolerance. The benchmarked solves
// run without the report's Obs so they cannot perturb its counters.
func (e *env) microBenchmarks(r *benchfmt.Report) error {
	record := func(name string, fn func(b *testing.B)) error {
		res := testing.Benchmark(fn)
		if res.N == 0 {
			return fmt.Errorf("benchmark %s failed", name)
		}
		r.Benchmarks[name] = benchfmt.BenchResult{
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		}
		return nil
	}
	caseStudy := design.VideoReceiver()
	caseOpts := partition.Options{Budget: design.CaseStudyBudget()}
	if err := record("solve_case_study", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := partition.Solve(caseStudy, caseOpts); err != nil {
				b.Fatal(err)
			}
		}
	}); err != nil {
		return err
	}
	medianDesigns := synthetic.Generate(1, 8)
	medianOpts := make([]partition.Options, len(medianDesigns))
	for i, d := range medianDesigns {
		medianOpts[i] = partition.Options{Budget: partition.Modular(d).TotalResources()}
	}
	if err := record("solve_synthetic_median", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d := medianDesigns[i%len(medianDesigns)]
			if _, err := partition.Solve(d, medianOpts[i%len(medianDesigns)]); err != nil &&
				err != partition.ErrNoScheme && err != partition.ErrInfeasible {
				b.Fatal(err)
			}
		}
	}); err != nil {
		return err
	}
	// The closest external proxy for one descent: a single candidate
	// set explored greedy-only (no restarts, no seeding).
	greedyOpts := partition.Options{Budget: design.CaseStudyBudget(), GreedyOnly: true}
	if err := record("greedy_descent", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := partition.Solve(caseStudy, greedyOpts); err != nil {
				b.Fatal(err)
			}
		}
	}); err != nil {
		return err
	}
	// The scale tier: one 10³-mode design through the full multilevel
	// chain (coarsen, coarse solve, refine at every level).
	huge := synthetic.GenerateHuge(1, 1)[0]
	hugeOpts := multilevel.Options{
		Partition: partition.Options{Budget: partition.Modular(huge).TotalResources()},
	}
	if err := record("multilevel_huge", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := multilevel.Solve(huge, hugeOpts); err != nil {
				b.Fatal(err)
			}
		}
	}); err != nil {
		return err
	}
	// The same solve with the per-level refine scan sharded over four
	// workers (capped at the machine's cores; results are byte-identical
	// to the serial run, only wall clock may differ).
	hugeP4 := hugeOpts
	hugeP4.Partition.Workers = 4
	return record("multilevel_huge_p4", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := multilevel.Solve(huge, hugeP4); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// render writes a table in the selected format.
func (e *env) render(t *report.Table) error {
	if e.md {
		return t.WriteMarkdown(e.out)
	}
	return t.Render(e.out)
}

func (e *env) dumpCSV(name string, w interface{ WriteCSV(io.Writer) error }) error {
	if e.csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(e.csvDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(e.csvDir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return w.WriteCSV(f)
}

func (e *env) table1() error {
	t, err := experiments.Table1()
	if err != nil {
		return err
	}
	if err := e.render(t); err != nil {
		return err
	}
	return e.dumpCSV("table1.csv", t)
}

func (e *env) table2() error {
	t := experiments.Table2()
	if err := e.render(t); err != nil {
		return err
	}
	return e.dumpCSV("table2.csv", t)
}

func (e *env) table3() error {
	cs, err := experiments.RunCaseStudy(design.VideoReceiver())
	if err != nil {
		return err
	}
	t := cs.PartitionTable("Table III: partitions determined by algorithm")
	if err := e.render(t); err != nil {
		return err
	}
	fmt.Fprintf(e.out, "improvement over one-module-per-region: %.1f%% (paper: 4%%)\n",
		cs.ImprovementOverModular())
	return e.dumpCSV("table3.csv", t)
}

func (e *env) table4() error {
	cs, err := experiments.RunCaseStudy(design.VideoReceiver())
	if err != nil {
		return err
	}
	t := cs.SchemeTable()
	if err := e.render(t); err != nil {
		return err
	}
	return e.dumpCSV("table4.csv", t)
}

func (e *env) table5() error {
	cs, err := experiments.RunCaseStudy(design.VideoReceiverModified())
	if err != nil {
		return err
	}
	t := cs.PartitionTable("Table V: partitions for modified configurations")
	if err := e.render(t); err != nil {
		return err
	}
	fmt.Fprintf(e.out, "total reconfiguration time: %d frames (paper: 92120), %.1f%% below modular (paper: 6%%)\n",
		cs.Proposed.Summary.Total, cs.ImprovementOverModular())
	return e.dumpCSV("table5.csv", t)
}

func (e *env) fig7() error {
	outs, err := e.sweep()
	if err != nil {
		return err
	}
	if err := e.render(experiments.DeviceBuckets(outs)); err != nil {
		return err
	}
	return e.dumpCSV("fig7.csv", experiments.Fig7(outs))
}

func (e *env) fig8() error {
	outs, err := e.sweep()
	if err != nil {
		return err
	}
	// The bucket table covers both figures; dump the per-design series.
	return e.dumpCSV("fig8.csv", experiments.Fig8(outs))
}

func (e *env) fig9() error {
	outs, err := e.sweep()
	if err != nil {
		return err
	}
	for _, h := range experiments.Fig9(outs) {
		if err := h.Render(e.out); err != nil {
			return err
		}
		fmt.Fprintln(e.out)
	}
	return nil
}

func (e *env) claims() error {
	outs, err := e.sweep()
	if err != nil {
		return err
	}
	t := experiments.ComputeClaims(outs).Table()
	if err := e.render(t); err != nil {
		return err
	}
	return e.dumpCSV("claims.csv", t)
}

func (e *env) classes() error {
	outs, err := e.sweep()
	if err != nil {
		return err
	}
	t := experiments.ClassTable(outs)
	if err := e.render(t); err != nil {
		return err
	}
	return e.dumpCSV("classes.csv", t)
}

func (e *env) gallery() error {
	t, err := experiments.GalleryTable()
	if err != nil {
		return err
	}
	if err := e.render(t); err != nil {
		return err
	}
	return e.dumpCSV("gallery.csv", t)
}

func (e *env) ablation(n int) error {
	designs := synthetic.Generate(e.seed, n)
	t, err := experiments.Ablation(designs, e.workers)
	if err != nil {
		return err
	}
	if err := e.render(t); err != nil {
		return err
	}
	return e.dumpCSV("ablation.csv", t)
}

func (e *env) weighted() error {
	t, err := experiments.WeightedCaseStudy(e.seed)
	if err != nil {
		return err
	}
	if err := e.render(t); err != nil {
		return err
	}
	return e.dumpCSV("weighted.csv", t)
}

// report.Table and report.Series both satisfy the dumpCSV constraint.
var (
	_ interface{ WriteCSV(io.Writer) error } = (*report.Table)(nil)
	_ interface{ WriteCSV(io.Writer) error } = (*report.Series)(nil)
)
