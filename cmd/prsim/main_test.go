package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"prpart/internal/design"
	"prpart/internal/spec"
)

func designFile(t *testing.T, d *design.Design, con spec.Constraints) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "design.xml")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := spec.WriteDesign(f, d, con); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSimWalkWorkload(t *testing.T) {
	in := designFile(t, design.VideoReceiver(), spec.Constraints{
		Device: "FX70T", Budget: design.CaseStudyBudget(),
	})
	var out strings.Builder
	if err := run([]string{"-in", in, "-events", "300"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"proposed", "modular", "single-region", "Reconfig time"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestSimMarkovWithStorageAndPrefetch(t *testing.T) {
	in := designFile(t, design.SingleModeExample(), spec.Constraints{})
	var out strings.Builder
	err := run([]string{
		"-in", in, "-events", "200", "-workload", "markov",
		"-storage", "ddr2", "-prefetch",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Prefetch time") {
		t.Errorf("missing prefetch column:\n%s", out.String())
	}
}

func TestSimCompactFlashSlower(t *testing.T) {
	in := designFile(t, design.SingleModeExample(), spec.Constraints{})
	runOnce := func(storage string) string {
		var out strings.Builder
		if err := run([]string{"-in", in, "-events", "150", "-storage", storage}, &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	fast := runOnce("none")
	slow := runOnce("cf")
	if fast == slow {
		t.Error("storage model had no effect on the report")
	}
}

func TestSimFaultInjectionRecovers(t *testing.T) {
	// The acceptance scenario in miniature: the video receiver under a
	// 1e-5 word-error rate must complete the whole workload — recovering
	// through retries, scrubs and fallbacks — and report the fault table.
	in := designFile(t, design.VideoReceiver(), spec.Constraints{
		Device: "FX70T", Budget: design.CaseStudyBudget(),
	})
	var out strings.Builder
	err := run([]string{
		"-in", in, "-events", "100",
		"-fault-rate", "1e-5", "-fault-seed", "7", "-retries", "3",
	}, &out)
	if err != nil {
		t.Fatalf("faulty workload aborted: %v", err)
	}
	s := out.String()
	for _, want := range []string{"Fault injection & recovery", "Retries", "Scrubs", "Fallbacks"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	// At this rate over the video receiver's loads, every scheme must see
	// faults and recovery work; a zero Injected cell means injection is
	// dead. The fault table is the second one; its rows repeat the scheme
	// names with the injected count as the second column.
	tail := s[strings.Index(s, "Fault injection & recovery"):]
	if regexp.MustCompile(`(?m)^(proposed|modular|single-region)\s+0\s`).MatchString(tail) {
		t.Errorf("a scheme saw no injected faults:\n%s", s)
	}
}

func TestSimFaultSeedReproducible(t *testing.T) {
	in := designFile(t, design.SingleModeExample(), spec.Constraints{})
	runOnce := func(seed string) string {
		var out strings.Builder
		err := run([]string{
			"-in", in, "-events", "80",
			"-fault-rate", "2e-4", "-fault-seed", seed, "-retries", "2",
		}, &out)
		if err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	a, b := runOnce("11"), runOnce("11")
	if a != b {
		t.Errorf("same fault seed produced different reports:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
	if c := runOnce("12"); a == c {
		t.Error("different fault seeds produced identical reports")
	}
}

func TestSimErrors(t *testing.T) {
	if err := run([]string{}, &strings.Builder{}); err == nil {
		t.Error("missing -in accepted")
	}
	in := designFile(t, design.SingleModeExample(), spec.Constraints{})
	if err := run([]string{"-in", in, "-workload", "zzz"}, &strings.Builder{}); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run([]string{"-in", in, "-storage", "zzz"}, &strings.Builder{}); err == nil {
		t.Error("unknown storage accepted")
	}
	if err := run([]string{"-in", in, "-fault-rate", "-1"}, &strings.Builder{}); err == nil {
		t.Error("negative fault rate accepted")
	}
}

func TestSimObsFlags(t *testing.T) {
	in := designFile(t, design.VideoReceiver(), spec.Constraints{
		Device: "FX70T", Budget: design.CaseStudyBudget(),
	})
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	var out strings.Builder
	if err := run([]string{"-in", in, "-events", "100", "-prefetch",
		"-trace", trace, "-metrics"}, &out); err != nil {
		t.Fatal(err)
	}
	tb, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"scope":"icap"`, `"scope":"adaptive"`} {
		if !strings.Contains(string(tb), want) {
			t.Errorf("trace file missing %s events", want)
		}
	}
	s := out.String()
	for _, want := range []string{"-- metrics --", "adaptive.switches", "icap.loads", "adaptive.prefetch_hits"} {
		if !strings.Contains(s, want) {
			t.Errorf("metrics dump missing %q:\n%s", want, s)
		}
	}
}
