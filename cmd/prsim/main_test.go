package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"prpart/internal/design"
	"prpart/internal/spec"
)

func designFile(t *testing.T, d *design.Design, con spec.Constraints) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "design.xml")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := spec.WriteDesign(f, d, con); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSimWalkWorkload(t *testing.T) {
	in := designFile(t, design.VideoReceiver(), spec.Constraints{
		Device: "FX70T", Budget: design.CaseStudyBudget(),
	})
	var out strings.Builder
	if err := run([]string{"-in", in, "-events", "300"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"proposed", "modular", "single-region", "Reconfig time"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestSimMarkovWithStorageAndPrefetch(t *testing.T) {
	in := designFile(t, design.SingleModeExample(), spec.Constraints{})
	var out strings.Builder
	err := run([]string{
		"-in", in, "-events", "200", "-workload", "markov",
		"-storage", "ddr2", "-prefetch",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Prefetch time") {
		t.Errorf("missing prefetch column:\n%s", out.String())
	}
}

func TestSimCompactFlashSlower(t *testing.T) {
	in := designFile(t, design.SingleModeExample(), spec.Constraints{})
	runOnce := func(storage string) string {
		var out strings.Builder
		if err := run([]string{"-in", in, "-events", "150", "-storage", storage}, &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	fast := runOnce("none")
	slow := runOnce("cf")
	if fast == slow {
		t.Error("storage model had no effect on the report")
	}
}

func TestSimErrors(t *testing.T) {
	if err := run([]string{}, &strings.Builder{}); err == nil {
		t.Error("missing -in accepted")
	}
	in := designFile(t, design.SingleModeExample(), spec.Constraints{})
	if err := run([]string{"-in", in, "-workload", "zzz"}, &strings.Builder{}); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run([]string{"-in", in, "-storage", "zzz"}, &strings.Builder{}); err == nil {
		t.Error("unknown storage accepted")
	}
}
