// Command prsim deploys a partitioned design on the simulated fabric and
// replays an environment workload, reporting realised reconfiguration
// cost per partitioning scheme — the runtime counterpart of prpart:
//
//	prsim -in design.xml -events 2000 [-workload walk|markov] [-seed 7]
//	      [-storage none|ddr2|cf] [-width 32] [-prefetch]
//	      [-fault-rate 1e-5] [-fault-seed 1] [-retries 3] [-scrub]
//
// The proposed scheme is compared against the one-module-per-region and
// single-region baselines on the same event sequence. A nonzero
// -fault-rate turns on deterministic fault injection: loads suffer
// seeded bit flips, truncated transfers, fetch failures and
// configuration upsets, the manager recovers with bounded retries,
// readback scrubbing and a safe-configuration fallback, and a second
// table reports the injected faults and the recovery work per scheme.
// Runs with the same -fault-seed are exactly reproducible.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"prpart/internal/adaptive"
	"prpart/internal/bitstream"
	"prpart/internal/core"
	"prpart/internal/design"
	"prpart/internal/faults"
	"prpart/internal/floorplan"
	"prpart/internal/icap"
	"prpart/internal/obs"
	"prpart/internal/partition"
	"prpart/internal/report"
	"prpart/internal/scheme"
	"prpart/internal/spec"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "prsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("prsim", flag.ContinueOnError)
	in := fs.String("in", "", "design description (.xml or .json)")
	dev := fs.String("device", "", "target device (empty: smallest feasible)")
	events := fs.Int("events", 2000, "workload length")
	seed := fs.Int64("seed", 7, "workload seed")
	workload := fs.String("workload", "walk", "workload model: walk or markov")
	storage := fs.String("storage", "none", "bitstream storage: none, ddr2 or cf")
	width := fs.Int("width", 32, "ICAP width in bits (8, 16 or 32)")
	prefetch := fs.Bool("prefetch", false, "prefetch don't-care regions before each switch")
	faultRate := fs.Float64("fault-rate", 0, "word-error rate for fault injection (0 disables)")
	faultSeed := fs.Int64("fault-seed", 1, "fault-injection seed (reproducible per seed)")
	retries := fs.Int("retries", 3, "reload attempts per region before giving up")
	scrub := fs.Bool("scrub", true, "readback-verify loads and scrub on mismatch (fault mode only)")
	ofl := obs.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *faultRate < 0 {
		return fmt.Errorf("negative -fault-rate %g", *faultRate)
	}
	if *in == "" {
		fs.Usage()
		return fmt.Errorf("missing -in")
	}
	o, stopObs, err := ofl.Start(out)
	if err != nil {
		return err
	}
	defer func() {
		if serr := stopObs(); serr != nil && err == nil {
			err = serr
		}
	}()
	d, con, err := load(*in)
	if err != nil {
		return err
	}
	opts := core.Options{
		Device: con.Device, Budget: con.Budget, ClockMHz: con.ClockMHz,
		Partition: partition.Options{Obs: o},
	}
	if *dev != "" {
		opts.Device = *dev
	}
	res, err := core.Run(d, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "design %q on %s; workload: %s, %d events, seed %d\n",
		d.Name, res.Device.Name, *workload, *events, *seed)

	seq, err := sequence(*workload, *seed, *events, len(d.Configurations))
	if err != nil {
		return err
	}

	opt := simOptions{
		width: *width, storage: *storage, prefetch: *prefetch,
		faultRate: *faultRate, faultSeed: *faultSeed,
		retries: *retries, scrub: *scrub, obs: o,
	}
	if opt.faultRate > 0 {
		fmt.Fprintf(out, "fault injection: word-error rate %g, seed %d, %d retries, scrub %v, safe config 0\n",
			opt.faultRate, opt.faultSeed, opt.retries, opt.scrub)
	}

	t := report.NewTable("Realised reconfiguration cost",
		"Scheme", "Switches", "Region loads", "Frames", "Reconfig time", "Prefetch time")
	var faultRows []report.FaultRow
	schemes := []*scheme.Scheme{res.Scheme, partition.Modular(d), partition.SingleRegion(d)}
	for _, s := range schemes {
		rr, err := replay(s, res, opt, seq)
		if err != nil {
			return fmt.Errorf("%s: %w", s.Name, err)
		}
		st := rr.mgr
		t.AddRowf(s.Name, st.Switches, st.RegionLoads, st.Frames,
			st.ReconfigTime.Round(time.Microsecond), st.PrefetchTime.Round(time.Microsecond))
		faultRows = append(faultRows, report.FaultRow{
			Scheme: s.Name, Injected: rr.inj.Total(),
			CRC: rr.port.CRCErrors, Fetch: rr.port.FetchErrors,
			Format: rr.port.FormatErrors + rr.port.RangeErrors, Verify: rr.port.VerifyErrors,
			Retries: st.Retries, Scrubs: st.Scrubs, Fallbacks: st.Fallbacks,
			RetryTime: st.RetryTime, ScrubTime: st.ScrubTime,
		})
	}
	if err := t.Render(out); err != nil {
		return err
	}
	if opt.faultRate > 0 {
		fmt.Fprintln(out)
		return report.FaultRecoveryTable(faultRows...).Render(out)
	}
	return nil
}

// sequence produces the configuration sequence for the chosen workload.
func sequence(model string, seed int64, n, configs int) ([]int, error) {
	switch model {
	case "walk":
		events := adaptive.RandomWalkEvents(seed, n, time.Millisecond)
		policy := adaptive.ThresholdPolicy(configs)
		seq := make([]int, n)
		for i, ev := range events {
			seq[i] = policy(ev)
		}
		return seq, nil
	case "markov":
		// A mildly skewed chain: adjacent configurations are favoured.
		p := make([][]float64, configs)
		for i := range p {
			p[i] = make([]float64, configs)
			sum := 0.0
			for j := range p[i] {
				if i == j {
					continue
				}
				w := 1.0
				if j == (i+1)%configs || (j+1)%configs == i {
					w = 4.0
				}
				p[i][j] = w
				sum += w
			}
			for j := range p[i] {
				p[i][j] /= sum
			}
		}
		return adaptive.MarkovSequence(seed, p, n)
	}
	return nil, fmt.Errorf("unknown workload %q (want walk or markov)", model)
}

// simOptions bundles the runtime knobs of one replay.
type simOptions struct {
	width     int
	storage   string
	prefetch  bool
	faultRate float64
	faultSeed int64
	retries   int
	scrub     bool
	obs       *obs.Obs
}

// replayResult collects the three stat views of one scheme's run.
type replayResult struct {
	mgr  adaptive.Stats
	port icap.Stats
	inj  faults.Stats
}

// replay floorplans a scheme on the flow's device, assembles bitstreams
// and replays the sequence. With a nonzero fault rate it attaches a
// fresh injector seeded with opt.faultSeed — every scheme sees the same
// fault process — and enables the manager's recovery policy with
// configuration 0 as the safe fallback.
func replay(s *scheme.Scheme, res *core.Result, opt simOptions, seq []int) (replayResult, error) {
	plan, err := floorplan.Place(s, res.Device)
	if err != nil {
		return replayResult{}, err
	}
	bits, err := bitstream.Assemble(s, plan)
	if err != nil {
		return replayResult{}, err
	}
	port := icap.New(opt.width, 100_000_000)
	port.AttachObs(opt.obs)
	port.RestrictToPlan(plan)
	switch opt.storage {
	case "none":
	case "ddr2":
		port.AttachStorage(icap.DDR2())
	case "cf":
		port.AttachStorage(icap.CompactFlash())
	default:
		return replayResult{}, fmt.Errorf("unknown storage %q (want none, ddr2 or cf)", opt.storage)
	}
	var inj *faults.Injector
	mgr, err := adaptive.NewManager(s, bits, port)
	if err != nil {
		return replayResult{}, err
	}
	mgr.AttachObs(opt.obs)
	if opt.faultRate > 0 {
		inj = faults.New(opt.faultSeed, faults.Uniform(opt.faultRate))
		port.AttachInjector(inj)
		mgr.SetRecovery(adaptive.Recovery{
			MaxRetries: opt.retries, Scrub: opt.scrub, SafeConfig: 0,
		})
	}
	result := func() replayResult {
		rr := replayResult{mgr: mgr.Stats(), port: port.Stats()}
		if inj != nil {
			rr.inj = inj.Stats()
		}
		return rr
	}
	for i, c := range seq {
		if _, err := mgr.SwitchTo(c); err != nil {
			return result(), err
		}
		if opt.prefetch && i+1 < len(seq) && seq[i+1] != c {
			// An oracle prefetcher: while resident in c, it loads the
			// next configuration's don't-care regions in the background.
			if _, err := mgr.Prefetch(seq[i+1]); err != nil {
				return result(), err
			}
		}
	}
	return result(), nil
}

func load(path string) (*design.Design, spec.Constraints, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, spec.Constraints{}, err
	}
	defer f.Close()
	if strings.EqualFold(filepath.Ext(path), ".json") {
		d, err := design.DecodeJSON(f)
		return d, spec.Constraints{}, err
	}
	return spec.ParseDesign(f)
}
