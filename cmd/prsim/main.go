// Command prsim deploys a partitioned design on the simulated fabric and
// replays an environment workload, reporting realised reconfiguration
// cost per partitioning scheme — the runtime counterpart of prpart:
//
//	prsim -in design.xml -events 2000 [-workload walk|markov] [-seed 7]
//	      [-storage none|ddr2|cf] [-width 32] [-prefetch]
//
// The proposed scheme is compared against the one-module-per-region and
// single-region baselines on the same event sequence.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"prpart/internal/adaptive"
	"prpart/internal/bitstream"
	"prpart/internal/core"
	"prpart/internal/design"
	"prpart/internal/floorplan"
	"prpart/internal/icap"
	"prpart/internal/partition"
	"prpart/internal/report"
	"prpart/internal/scheme"
	"prpart/internal/spec"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "prsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("prsim", flag.ContinueOnError)
	in := fs.String("in", "", "design description (.xml or .json)")
	dev := fs.String("device", "", "target device (empty: smallest feasible)")
	events := fs.Int("events", 2000, "workload length")
	seed := fs.Int64("seed", 7, "workload seed")
	workload := fs.String("workload", "walk", "workload model: walk or markov")
	storage := fs.String("storage", "none", "bitstream storage: none, ddr2 or cf")
	width := fs.Int("width", 32, "ICAP width in bits (8, 16 or 32)")
	prefetch := fs.Bool("prefetch", false, "prefetch don't-care regions before each switch")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		fs.Usage()
		return fmt.Errorf("missing -in")
	}
	d, con, err := load(*in)
	if err != nil {
		return err
	}
	opts := core.Options{Device: con.Device, Budget: con.Budget, ClockMHz: con.ClockMHz}
	if *dev != "" {
		opts.Device = *dev
	}
	res, err := core.Run(d, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "design %q on %s; workload: %s, %d events, seed %d\n",
		d.Name, res.Device.Name, *workload, *events, *seed)

	seq, err := sequence(*workload, *seed, *events, len(d.Configurations))
	if err != nil {
		return err
	}

	t := report.NewTable("Realised reconfiguration cost",
		"Scheme", "Switches", "Region loads", "Frames", "Reconfig time", "Prefetch time")
	schemes := []*scheme.Scheme{res.Scheme, partition.Modular(d), partition.SingleRegion(d)}
	for _, s := range schemes {
		st, err := replay(s, res, *width, *storage, *prefetch, seq)
		if err != nil {
			return fmt.Errorf("%s: %w", s.Name, err)
		}
		t.AddRowf(s.Name, st.Switches, st.RegionLoads, st.Frames,
			st.ReconfigTime.Round(time.Microsecond), st.PrefetchTime.Round(time.Microsecond))
	}
	return t.Render(out)
}

// sequence produces the configuration sequence for the chosen workload.
func sequence(model string, seed int64, n, configs int) ([]int, error) {
	switch model {
	case "walk":
		events := adaptive.RandomWalkEvents(seed, n, time.Millisecond)
		policy := adaptive.ThresholdPolicy(configs)
		seq := make([]int, n)
		for i, ev := range events {
			seq[i] = policy(ev)
		}
		return seq, nil
	case "markov":
		// A mildly skewed chain: adjacent configurations are favoured.
		p := make([][]float64, configs)
		for i := range p {
			p[i] = make([]float64, configs)
			sum := 0.0
			for j := range p[i] {
				if i == j {
					continue
				}
				w := 1.0
				if j == (i+1)%configs || (j+1)%configs == i {
					w = 4.0
				}
				p[i][j] = w
				sum += w
			}
			for j := range p[i] {
				p[i][j] /= sum
			}
		}
		return adaptive.MarkovSequence(seed, p, n)
	}
	return nil, fmt.Errorf("unknown workload %q (want walk or markov)", model)
}

// replay floorplans a scheme on the flow's device, assembles bitstreams
// and replays the sequence.
func replay(s *scheme.Scheme, res *core.Result, width int, storage string, prefetch bool, seq []int) (adaptive.Stats, error) {
	plan, err := floorplan.Place(s, res.Device)
	if err != nil {
		return adaptive.Stats{}, err
	}
	bits, err := bitstream.Assemble(s, plan)
	if err != nil {
		return adaptive.Stats{}, err
	}
	port := icap.New(width, 100_000_000)
	switch storage {
	case "none":
	case "ddr2":
		port.AttachStorage(icap.DDR2())
	case "cf":
		port.AttachStorage(icap.CompactFlash())
	default:
		return adaptive.Stats{}, fmt.Errorf("unknown storage %q (want none, ddr2 or cf)", storage)
	}
	mgr, err := adaptive.NewManager(s, bits, port)
	if err != nil {
		return adaptive.Stats{}, err
	}
	for i, c := range seq {
		if _, err := mgr.SwitchTo(c); err != nil {
			return mgr.Stats(), err
		}
		if prefetch && i+1 < len(seq) && seq[i+1] != c {
			// An oracle prefetcher: while resident in c, it loads the
			// next configuration's don't-care regions in the background.
			if _, err := mgr.Prefetch(seq[i+1]); err != nil {
				return mgr.Stats(), err
			}
		}
	}
	return mgr.Stats(), nil
}

func load(path string) (*design.Design, spec.Constraints, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, spec.Constraints{}, err
	}
	defer f.Close()
	if strings.EqualFold(filepath.Ext(path), ".json") {
		d, err := design.DecodeJSON(f)
		return d, spec.Constraints{}, err
	}
	return spec.ParseDesign(f)
}
