package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"prpart/internal/design"
)

func TestSoakDeterministicAndClean(t *testing.T) {
	run1 := runSoakToString(t)
	run2 := runSoakToString(t)
	if run1 != run2 {
		t.Fatalf("soak output not deterministic:\n--- first\n%s\n--- second\n%s", run1, run2)
	}
	if !strings.Contains(run1, "failing=0") {
		t.Fatalf("soak found violations:\n%s", run1)
	}
	if !strings.HasPrefix(run1, "soak: seed=3 n=12 ") {
		t.Fatalf("unexpected summary line: %q", run1)
	}
}

func runSoakToString(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	if err := run([]string{"-soak", "-seed", "3", "-n", "12"}, &b); err != nil {
		t.Fatalf("soak: %v\n%s", err, b.String())
	}
	return b.String()
}

func TestCheckSingleDesign(t *testing.T) {
	path := filepath.Join(t.TempDir(), "videorx.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := design.EncodeJSON(f, design.VideoReceiver()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run([]string{"-in", path, "-device", "FX70T", "-budget", "6800,64,150"}, &b); err != nil {
		t.Fatalf("prcheck -in: %v\n%s", err, b.String())
	}
	out := b.String()
	if !strings.Contains(out, "check: ok") {
		t.Fatalf("expected a clean report, got:\n%s", out)
	}
	if !strings.Contains(out, "replayed: total=") {
		t.Fatalf("expected the replayed cost line, got:\n%s", out)
	}
}

func TestRunRejectsMissingMode(t *testing.T) {
	var b strings.Builder
	if err := run(nil, &b); err == nil {
		t.Fatal("expected an error without -in or -soak")
	}
}
