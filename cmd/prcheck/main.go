// Command prcheck verifies partitioning results with the independent
// oracle in internal/check: feasibility, semantic validity and cost are
// re-derived from first principles (the cost by replaying every
// configuration transition through the icap frame model) and compared
// against what the solver reported.
//
// Usage:
//
//	prcheck -in design.json [-device FX70T] [-budget clb,bram,dsp]
//	    solve the design through the full flow and verify the result
//
//	prcheck -soak -seed 1 -n 200 [-artifacts DIR]
//	    generate synthetic designs, solve each, verify, run the
//	    metamorphic relations and the differential pass against the
//	    exact solver on small instances; write failing designs to DIR
//
// Output for a fixed seed is deterministic. Exit status 1 means at
// least one violation was found.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"prpart/internal/check"
	"prpart/internal/core"
	"prpart/internal/design"
	"prpart/internal/exact"
	"prpart/internal/partition"
	"prpart/internal/resource"
	"prpart/internal/spec"
	"prpart/internal/synthetic"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "prcheck:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("prcheck", flag.ContinueOnError)
	in := fs.String("in", "", "design description to solve and verify (.xml or .json)")
	dev := fs.String("device", "", "target device (empty: smallest feasible)")
	budget := fs.String("budget", "", "resource budget as clb,bram,dsp (empty: device capacity)")
	soak := fs.Bool("soak", false, "seeded soak: generate, solve, verify, metamorph")
	seed := fs.Int64("seed", 1, "soak generator seed")
	n := fs.Int("n", 100, "soak iteration count")
	artifacts := fs.String("artifacts", "", "directory for failing-design JSON (soak mode)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *soak:
		return runSoak(out, *seed, *n, *artifacts)
	case *in != "":
		return runOne(out, *in, *dev, *budget)
	}
	fs.Usage()
	return errors.New("need -in or -soak")
}

// runOne solves a single design through the full flow and verifies the
// complete result, back-end artifacts included.
func runOne(out io.Writer, path, dev, budget string) error {
	d, con, err := load(path)
	if err != nil {
		return err
	}
	opts := core.Options{Device: con.Device, Budget: con.Budget, ClockMHz: con.ClockMHz}
	if dev != "" {
		opts.Device = dev
	}
	if budget != "" {
		if opts.Budget, err = parseBudget(budget); err != nil {
			return err
		}
	}
	res, err := core.Run(d, opts)
	if err != nil {
		return err
	}
	rep := check.Verify(subjectOf(res))
	fmt.Fprintln(out, rep)
	if rep.Replayed {
		fmt.Fprintf(out, "replayed: total=%d worst=%d frames\n", rep.ReplayedTotal, rep.ReplayedWorst)
	}
	if !rep.OK() {
		return fmt.Errorf("%d violation(s)", len(rep.Violations))
	}
	return nil
}

// runSoak is the generate→solve→check→metamorph loop.
func runSoak(out io.Writer, seed int64, n int, artifacts string) error {
	designs := synthetic.Generate(seed, n)
	solved, skipped, metamorphed, differential := 0, 0, 0, 0
	var failures int
	for i, d := range designs {
		res, err := core.Run(d, core.Options{})
		if err != nil {
			// Synthetic designs can exceed every catalog device; that is
			// the generator's business, not a solver defect.
			skipped++
			continue
		}
		solved++
		var vs []check.Violation
		vs = append(vs, check.Verify(subjectOf(res)).Violations...)
		frames := check.RegionFrames(res.Scheme)
		for r := range res.Scheme.Active {
			vs = append(vs, check.DuplicateRowInvariance(res.Scheme, frames, r)...)
		}
		// The metamorphic relations re-solve the design several times;
		// run them on a deterministic subsample to keep the soak fast.
		if i%metamorphEvery == 0 {
			metamorphed++
			vs = append(vs, runMetamorph(d, res, seed+int64(i))...)
		}
		if len(d.Configurations) <= exact.ExactLimit {
			differential++
			vs = append(vs, runDifferential(d, res)...)
		}
		if len(vs) > 0 {
			failures++
			fmt.Fprintf(out, "FAIL %s:\n", d.Name)
			for _, v := range vs {
				fmt.Fprintf(out, "  %s\n", v)
			}
			if artifacts != "" {
				if err := dumpDesign(artifacts, d); err != nil {
					return err
				}
			}
		}
	}
	fmt.Fprintf(out, "soak: seed=%d n=%d solved=%d skipped=%d metamorphed=%d differential=%d failing=%d\n",
		seed, n, solved, skipped, metamorphed, differential, failures)
	if failures > 0 {
		return fmt.Errorf("%d design(s) failed verification", failures)
	}
	return nil
}

// metamorphEvery subsamples the metamorphic relations: each one costs
// several extra full solves per design.
const metamorphEvery = 5

// runMetamorph wires the injected solver for the metamorphic relations:
// transformed designs are re-solved on the same device and budget as the
// base result (backend skipped — the relations compare cost and scheme
// shape, and the oracle already verified the base artifacts).
func runMetamorph(d *design.Design, res *core.Result, seed int64) []check.Violation {
	solve := func(td *design.Design) (*check.Outcome, error) {
		r, err := core.Run(td, core.Options{Device: res.Device.Name, Budget: res.Budget, SkipBackend: true})
		if err != nil {
			return nil, err
		}
		return &check.Outcome{Scheme: r.Scheme, Total: r.Summary.Total, Worst: r.Summary.Worst}, nil
	}
	base := &check.Outcome{Scheme: res.Scheme, Total: res.Summary.Total, Worst: res.Summary.Worst}
	vs := check.Metamorph(d, base, solve, seed)
	// Budget upgrade: doubling the cap must not make the result worse.
	up, err := core.Run(d, core.Options{Device: res.Device.Name, Budget: res.Budget.Scale(2), SkipBackend: true})
	if err != nil {
		vs = append(vs, check.Violation{Rule: "meta.upgrade-budget",
			Detail: fmt.Sprintf("doubled budget failed to solve: %v", err)})
	} else {
		vs = append(vs, check.UpgradeBudget(base,
			&check.Outcome{Scheme: up.Scheme, Total: up.Summary.Total, Worst: up.Summary.Worst})...)
	}
	return vs
}

// runDifferential compares the greedy descent restricted to the first
// candidate set against the exact solver on the same set: the exact
// optimum is a lower bound the heuristic must never beat (beating it
// means the two disagree about cost or feasibility).
func runDifferential(d *design.Design, res *core.Result) []check.Violation {
	ex, err := exact.Solve(d, exact.Options{Budget: res.Budget})
	if errors.Is(err, exact.ErrTooLarge) {
		return nil
	}
	greedy, gerr := partition.Solve(d, partition.Options{Budget: res.Budget, MaxCandidateSets: 1})
	if err != nil {
		if gerr == nil {
			return []check.Violation{{Rule: "diff.exact", Detail: fmt.Sprintf(
				"exact solver failed (%v) on an instance the restricted greedy solves", err)}}
		}
		return nil
	}
	var vs []check.Violation
	if rep := check.Verify(check.Subject{
		Scheme: ex.Scheme, Device: res.Device, Budget: res.Budget,
		Total: ex.Summary.Total, Worst: ex.Summary.Worst,
	}); !rep.OK() {
		for _, v := range rep.Violations {
			// The exact solver optimises over the resource model only; it
			// has no floorplan feedback, so a budget-feasible scheme that
			// cannot be placed on this particular device is outside its
			// contract and not a finding.
			if v.Rule == "cost.floorplan" {
				continue
			}
			vs = append(vs, check.Violation{Rule: "diff." + v.Rule, Detail: "exact scheme: " + v.Detail})
		}
	}
	if gerr != nil {
		return append(vs, check.Violation{Rule: "diff.greedy", Detail: fmt.Sprintf(
			"restricted greedy failed (%v) on an instance the exact solver finds feasible", gerr)})
	}
	if greedy.Summary.Total < ex.Summary.Total {
		vs = append(vs, check.Violation{Rule: "diff.bound", Detail: fmt.Sprintf(
			"restricted greedy reports %d total frames, below the exact optimum %d over the same candidate set",
			greedy.Summary.Total, ex.Summary.Total)})
	}
	return vs
}

// subjectOf converts a flow result into the oracle's subject.
func subjectOf(res *core.Result) check.Subject {
	return check.Subject{
		Scheme:     res.Scheme,
		Device:     res.Device,
		Budget:     res.Budget,
		Total:      res.Summary.Total,
		Worst:      res.Summary.Worst,
		Plan:       res.Plan,
		Wrappers:   res.Wrappers,
		Bitstreams: res.Bitstreams,
		UCF:        res.UCF,
	}
}

func dumpDesign(dir string, d *design.Design) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, d.Name+".json"))
	if err != nil {
		return err
	}
	if err := design.EncodeJSON(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func load(path string) (*design.Design, spec.Constraints, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, spec.Constraints{}, err
	}
	defer f.Close()
	switch strings.ToLower(filepath.Ext(path)) {
	case ".xml":
		return spec.ParseDesign(f)
	case ".json":
		d, err := design.DecodeJSON(f)
		return d, spec.Constraints{}, err
	}
	return nil, spec.Constraints{}, fmt.Errorf("unsupported input extension on %q (want .xml or .json)", path)
}

func parseBudget(s string) (resource.Vector, error) {
	var clb, bram, dsp int
	if _, err := fmt.Sscanf(s, "%d,%d,%d", &clb, &bram, &dsp); err != nil {
		return resource.Vector{}, fmt.Errorf("bad -budget %q (want clb,bram,dsp): %v", s, err)
	}
	return resource.New(clb, bram, dsp), nil
}
