// Command prpartd serves the automated partitioning algorithm over
// HTTP: a long-running daemon with a bounded solve pool, a
// content-addressed result cache, request coalescing, per-request
// deadlines and graceful drain on SIGINT/SIGTERM.
//
// Usage:
//
//	prpartd [-addr 127.0.0.1:8377] [-workers N] [-queue N] [-cache N]
//	        [-timeout 30s] [-solve-workers N] [-devices lib.json]
//	        [-store DIR] [-shutdown-timeout 0s] [-cache-max-body N]
//	        [-interactive-depth N] [-bulk-depth N] [-bulk-share N]
//	        [-batch-max N] [-jitter-seed S] [-jobs-retention N]
//	        [-peers URL,URL,...] [-self URL] [-ring-seed S] [-replicas N]
//	        [-peer-secret S]
//
// With -store the daemon persists every solved result in a
// content-addressed on-disk store and serves previously-solved keys
// byte-identically across restarts (X-Cache: store). Corrupt blobs are
// quarantined under DIR/quarantine and transparently re-solved; a torn
// ledger tail from a crash is truncated on startup.
//
// With -peers the daemon joins a cluster: solve keys shard over a
// deterministic consistent-hash ring (seeded by -ring-seed, which every
// member must agree on), a local miss asks the key's ring owners over
// the peer fetch RPC before solving, and fresh solves replicate to
// -replicas owners. Peer bodies are hash-verified end to end; a damaged
// transfer falls back to a local solve, never to wrong bytes. Every
// peer request is authenticated with an HMAC under the shared
// -peer-secret (or $PRPARTD_PEER_SECRET; required, all members must
// agree) — the peer endpoints share the public listener, and without
// the secret anything that could reach the port could push wrong bytes
// under real solve keys. Each node keeps its own -store directory —
// the cluster shares results over the wire, not the disk.
//
// Endpoints:
//
//	POST   /v1/solve             solve a design (JSON envelope, see internal/serve)
//	POST   /v1/solve/batch       solve N designs in one body (bulk tier, in-batch dedupe)
//	POST   /v1/jobs              submit an async solve, poll the returned id
//	GET    /v1/jobs/{id}         job record (queued|running|done|failed|canceled)
//	GET    /v1/jobs/{id}/result  result body of a done job
//	DELETE /v1/jobs/{id}         cancel a queued or running job
//	POST   /v1/peer/fetch        cluster-internal: serve a stored result to a peer
//	POST   /v1/peer/push         cluster-internal: accept a replicated result
//	GET    /healthz              liveness + queue/cache/jobs/cluster state
//	GET    /metrics              obs instrument dump (text)
//	GET    /debug/vars           obs instrument dump (JSON)
//
// Scheduling is two-tier: interactive solves (POST /v1/solve) and bulk
// work (batch members, async jobs, requests marked "bulk": true) queue
// separately with independent depth bounds (-interactive-depth,
// -bulk-depth); contended dequeues grant every -bulk-share'th slot to
// the bulk tier so neither side starves. Refusals carry a seeded,
// jittered Retry-After (-jitter-seed) so synchronized clients do not
// retry in lockstep.
//
// A 200 response body is byte-identical to `prpart -json` on the same
// input, and X-Solve-Key matches `prpart -key`.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"prpart/internal/cluster"
	"prpart/internal/device"
	"prpart/internal/faults"
	"prpart/internal/obs"
	"prpart/internal/serve"
	"prpart/internal/store"
)

// newServer builds the serving layer; a variable so tests can wrap the
// config (e.g. substitute a scripted solver) without flag plumbing.
var newServer = serve.New

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "prpartd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("prpartd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8377", "listen address (port 0 picks an ephemeral port)")
	workers := fs.Int("workers", 0, "max concurrent solves (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "max queued solves before 429 (0 = 4x workers)")
	cacheN := fs.Int("cache", 0, "solve cache entries (0 = default 256, negative disables)")
	timeout := fs.Duration("timeout", 30*time.Second, "default per-request solve deadline (0 = none)")
	solveWorkers := fs.Int("solve-workers", 0, "search parallelism inside one solve (0 = serial)")
	devices := fs.String("devices", "", "custom device library (JSON, see internal/device.LoadLibrary)")
	drain := fs.Duration("drain", 30*time.Second, "max time to drain in-flight solves on shutdown")
	shutdownTimeout := fs.Duration("shutdown-timeout", 0, "overrides -drain when set: hard bound on graceful shutdown")
	doCheck := fs.Bool("check", false, "verify every solve with the independent oracle before serving")
	storeDir := fs.String("store", "", "persist solved results in this directory (empty = memory only)")
	storeFaultSeed := fs.Int64("store-fault-seed", 1, "seed for injected store I/O faults (chaos testing)")
	storeFaultRate := fs.Float64("store-fault-rate", 0, "per-op probability of injected store I/O faults (0 = off)")
	cacheMaxBody := fs.Int64("cache-max-body", 0, "max bytes of a single cached result body (0 = unbounded)")
	interactiveDepth := fs.Int("interactive-depth", 0, "admitted interactive solves before 429 (0 = workers+queue)")
	bulkDepth := fs.Int("bulk-depth", 0, "admitted bulk solves before 503 (0 = workers+4x queue)")
	bulkShare := fs.Int("bulk-share", 0, "grant every Nth contended dequeue to the bulk tier (0 = default 4)")
	batchMax := fs.Int("batch-max", 0, "max requests in one /v1/solve/batch body (0 = default 256)")
	jitterSeed := fs.Int64("jitter-seed", 0, "seed for Retry-After jitter (deterministic backpressure hints)")
	jobsRetention := fs.Int("jobs-retention", 0, "finished async jobs kept pollable in memory (0 = default 1024)")
	peers := fs.String("peers", "", "comma-separated base URLs of every cluster member including this node (empty = single node)")
	self := fs.String("self", "", "this node's advertised base URL (required with -peers)")
	peerSecret := fs.String("peer-secret", "", "shared secret authenticating /v1/peer/* requests (required with -peers; $PRPARTD_PEER_SECRET keeps it out of argv)")
	ringSeed := fs.Int64("ring-seed", 1, "consistent-hash ring placement seed; all members must agree")
	replicas := fs.Int("replicas", 0, "ring owners per solve key (0 = default 2)")
	peerTimeout := fs.Duration("peer-timeout", 0, "per peer round-trip bound (0 = default 2s)")
	ofl := obs.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	o, stopObs, err := ofl.Start(out)
	if err != nil {
		return err
	}
	defer func() {
		if serr := stopObs(); serr != nil && err == nil {
			err = serr
		}
	}()
	if o == nil {
		// The daemon always keeps a registry: /metrics and /debug/vars
		// serve it even when no CLI observability was requested.
		o = obs.New()
	}
	cfg := serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cacheN,
		DefaultTimeout: *timeout,
		SolveWorkers:   *solveWorkers,
		Obs:            o,
		Check:          *doCheck,
		CacheMaxBody:   *cacheMaxBody,

		InteractiveDepth: *interactiveDepth,
		BulkDepth:        *bulkDepth,
		BulkShare:        *bulkShare,
		MaxBatchItems:    *batchMax,
		JitterSeed:       *jitterSeed,
		JobsRetention:    *jobsRetention,
	}
	if *storeDir != "" {
		sfs := store.OSFS()
		if *storeFaultRate > 0 {
			sfs = store.NewFaultFS(sfs, faults.NewIO(*storeFaultSeed, faults.UniformIO(*storeFaultRate)))
			fmt.Fprintf(out, "prpartd: store fault injection on (seed %d, rate %g)\n",
				*storeFaultSeed, *storeFaultRate)
		}
		st, err := store.Open(store.Config{Dir: *storeDir, FS: sfs, Obs: o})
		if err != nil {
			// A store that cannot open is a deployment error worth failing
			// loudly on; running silently without persistence would betray
			// the operator's -store intent.
			return fmt.Errorf("opening store %s: %w", *storeDir, err)
		}
		defer st.Close()
		rec := st.Recovery()
		fmt.Fprintf(out, "prpartd: store %s: %d keys (%d ledger records", *storeDir, st.Len(), rec.Records)
		if rec.TruncatedBytes > 0 {
			fmt.Fprintf(out, ", torn tail of %d bytes truncated", rec.TruncatedBytes)
		}
		fmt.Fprintln(out, ")")
		cfg.Store = st
	}
	if *devices != "" {
		f, err := os.Open(*devices)
		if err != nil {
			return err
		}
		cfg.Library, err = device.LoadLibrary(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	if *peers != "" {
		if *self == "" {
			return errors.New("-peers requires -self (this node's advertised URL)")
		}
		secret := *peerSecret
		if secret == "" {
			secret = os.Getenv("PRPARTD_PEER_SECRET")
		}
		if secret == "" {
			return errors.New("-peers requires a shared -peer-secret (or $PRPARTD_PEER_SECRET): unauthenticated peer endpoints would let anyone push wrong bytes under real solve keys")
		}
		members := strings.Split(*peers, ",")
		for i := range members {
			members[i] = strings.TrimSpace(members[i])
		}
		cl, err := cluster.New(cluster.Config{
			Self:     *self,
			Peers:    members,
			Secret:   secret,
			Seed:     *ringSeed,
			Replicas: *replicas,
			Timeout:  *peerTimeout,
			Obs:      o,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(out, format+"\n", args...)
			},
		})
		if err != nil {
			return err
		}
		cfg.Cluster = cl
		ring := cl.Ring()
		fmt.Fprintf(out, "prpartd: cluster ring: %d members, %d vnodes, seed %d, replicas %d; self %s\n",
			ring.Size(), ring.VNodes(), ring.Seed(), cl.Replicas(), cl.Self())
	}
	srv := newServer(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "prpartd: listening on %s\n", ln.Addr())
	httpSrv := &http.Server{Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		fmt.Fprintln(out, "prpartd: draining")
		bound := *drain
		if *shutdownTimeout > 0 {
			bound = *shutdownTimeout
		}
		dctx, cancel := context.WithTimeout(context.Background(), bound)
		defer cancel()
		// Refuse new solves first, let admitted ones finish, then close
		// the listener and remaining keep-alive connections.
		derr := srv.Shutdown(dctx)
		if derr != nil {
			// Drain deadline hit: say what is being abandoned, then abort
			// the stragglers.
			fmt.Fprintf(out, "prpartd: drain timed out after %s with %d solves running, %d queued; aborting\n",
				bound, srv.Inflight(), srv.Queued())
			srv.Close()
		}
		if herr := httpSrv.Shutdown(dctx); herr != nil && derr == nil {
			derr = herr
		}
		done <- derr
	}()
	err = httpSrv.Serve(ln)
	if !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	err = <-done
	fmt.Fprintln(out, "prpartd: stopped")
	return err
}
