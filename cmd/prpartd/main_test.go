package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"prpart/internal/design"
)

// syncWriter captures daemon output from the run goroutine.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// bootDaemon starts run on an ephemeral port and returns the base URL,
// the captured output, and a stop function that shuts the daemon down
// and returns run's error.
func bootDaemon(t *testing.T, args []string) (string, *syncWriter, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncWriter{}
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), out)
	}()
	deadline := time.Now().Add(10 * time.Second)
	var addr string
	for addr == "" {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		select {
		case err := <-errc:
			cancel()
			t.Fatalf("daemon exited before listening: %v\noutput: %s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("daemon never announced its address:\n%s", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	stop := func() error {
		cancel()
		select {
		case err := <-errc:
			return err
		case <-time.After(30 * time.Second):
			t.Fatal("daemon did not stop")
			return nil
		}
	}
	return "http://" + addr, out, stop
}

func caseStudyBody(t *testing.T) []byte {
	t.Helper()
	var db bytes.Buffer
	if err := design.EncodeJSON(&db, design.VideoReceiver()); err != nil {
		t.Fatal(err)
	}
	b := design.CaseStudyBudget()
	return []byte(fmt.Sprintf(
		`{"design": %s, "options": {"device": "FX70T", "budget": {"clb": %d, "bram": %d, "dsp": %d}}}`,
		db.String(), b.CLB, b.BRAM, b.DSP))
}

func TestDaemonEndToEnd(t *testing.T) {
	base, out, stop := bootDaemon(t, nil)

	body := caseStudyBody(t)
	post := func() (*http.Response, []byte) {
		resp, err := http.Post(base+"/v1/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, b
	}

	resp1, body1 := post()
	if resp1.StatusCode != 200 {
		t.Fatalf("first solve: status %d: %s", resp1.StatusCode, body1)
	}
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("first solve X-Cache = %q, want miss", got)
	}
	if !strings.HasPrefix(resp1.Header.Get("X-Solve-Key"), "sha256:") {
		t.Errorf("X-Solve-Key = %q", resp1.Header.Get("X-Solve-Key"))
	}
	var jo struct {
		Device string `json:"device"`
		Total  int    `json:"totalFrames"`
	}
	if err := json.Unmarshal(body1, &jo); err != nil {
		t.Fatalf("response not JSON: %v\n%s", err, body1)
	}
	if jo.Device != "XC5VFX70T" || jo.Total == 0 {
		t.Errorf("case study solved wrong: %+v", jo)
	}

	resp2, body2 := post()
	if resp2.StatusCode != 200 || resp2.Header.Get("X-Cache") != "hit" {
		t.Errorf("second solve: status %d, X-Cache %q, want 200/hit",
			resp2.StatusCode, resp2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(body1, body2) {
		t.Error("cached response differs from first response")
	}

	hr, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	var health struct {
		Status string `json:"status"`
		Cache  struct {
			Hits int64 `json:"hits"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(hb, &health); err != nil || health.Status != "ok" || health.Cache.Hits != 1 {
		t.Errorf("healthz = %s (err %v), want status ok with 1 cache hit", hb, err)
	}

	mr, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	for _, want := range []string{"serve.solves 1", "serve.cache_hits 1", "serve.requests 2"} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("/metrics missing %q:\n%s", want, mb)
		}
	}

	if err := stop(); err != nil {
		t.Fatalf("daemon shutdown: %v", err)
	}
	for _, want := range []string{"prpartd: draining", "prpartd: stopped"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestDaemonRejectsAfterShutdown(t *testing.T) {
	base, _, stop := bootDaemon(t, nil)
	if err := stop(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}

func TestDaemonBadFlags(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, []string{"-devices", "/nonexistent.json"}, io.Discard); err == nil {
		t.Error("missing device library accepted")
	}
	if err := run(ctx, []string{"-addr", "256.256.256.256:1"}, io.Discard); err == nil {
		t.Error("unlistenable address accepted")
	}
	if err := run(ctx, []string{"-bogus"}, io.Discard); err == nil {
		t.Error("unknown flag accepted")
	}
}
