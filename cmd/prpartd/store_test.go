package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"prpart/internal/core"
	"prpart/internal/design"
	"prpart/internal/serve"
)

func postURL(t *testing.T, base string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestDaemonStoreRestartByteIdentity: with -store, a fully restarted
// daemon process serves a previously-solved key from disk —
// byte-identical, marked X-Cache: store, no search re-run.
func TestDaemonStoreRestartByteIdentity(t *testing.T) {
	dir := t.TempDir()
	body := caseStudyBody(t)

	base, _, stop := bootDaemon(t, []string{"-store", dir})
	r1, b1 := postURL(t, base, body)
	if r1.StatusCode != 200 {
		t.Fatalf("first boot solve: %d: %s", r1.StatusCode, b1)
	}
	if err := stop(); err != nil {
		t.Fatalf("first shutdown: %v", err)
	}

	base2, out2, stop2 := bootDaemon(t, []string{"-store", dir})
	defer stop2()
	r2, b2 := postURL(t, base2, body)
	if r2.StatusCode != 200 {
		t.Fatalf("post-restart solve: %d: %s", r2.StatusCode, b2)
	}
	if got := r2.Header.Get("X-Cache"); got != "store" {
		t.Errorf("X-Cache = %q, want store", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("restarted daemon served different bytes for the same key")
	}
	if !strings.Contains(out2.String(), "1 keys") {
		t.Errorf("startup did not report the recovered store:\n%s", out2.String())
	}
	// /healthz reports the persistent tier.
	hr, err := http.Get(base2 + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	var health struct {
		Store *struct {
			Keys int   `json:"keys"`
			Hits int64 `json:"hits"`
		} `json:"store"`
	}
	if err := json.Unmarshal(hb, &health); err != nil || health.Store == nil {
		t.Fatalf("healthz has no store block: %s (err %v)", hb, err)
	}
	if health.Store.Keys != 1 || health.Store.Hits != 1 {
		t.Errorf("healthz store = %+v, want 1 key / 1 hit", health.Store)
	}
}

// TestDaemonStoreCorruptionQuarantine: bit rot on the stored blob is
// detected on read; the daemon quarantines the blob, re-solves, and the
// client still receives the canonical bytes — never the corrupt ones.
func TestDaemonStoreCorruptionQuarantine(t *testing.T) {
	dir := t.TempDir()
	body := caseStudyBody(t)

	base, _, stop := bootDaemon(t, []string{"-store", dir})
	r1, b1 := postURL(t, base, body)
	if r1.StatusCode != 200 {
		t.Fatalf("seed solve: %d: %s", r1.StatusCode, b1)
	}
	if err := stop(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	blobs, err := os.ReadDir(filepath.Join(dir, "blobs"))
	if err != nil || len(blobs) != 1 {
		t.Fatalf("blobs = %v, %v", blobs, err)
	}
	blobPath := filepath.Join(dir, "blobs", blobs[0].Name())
	raw, err := os.ReadFile(blobPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x10
	if err := os.WriteFile(blobPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	base2, _, stop2 := bootDaemon(t, []string{"-store", dir})
	defer stop2()
	r2, b2 := postURL(t, base2, body)
	if r2.StatusCode != 200 {
		t.Fatalf("solve over corrupt blob: %d: %s", r2.StatusCode, b2)
	}
	if got := r2.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("X-Cache = %q, want miss (corrupt bytes must not be served)", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("re-solved bytes differ from the original solve")
	}
	q, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(q) != 1 {
		t.Errorf("quarantine dir = %v, %v; want the damaged blob", q, err)
	}
}

// TestDaemonChaosRestartLoop boots the daemon against the same on-disk
// store for several restart cycles with seeded I/O fault injection on,
// asserting byte identity of every response throughout. The store
// directory can be pinned with PRPART_CHAOS_DIR so CI can upload the
// quarantine area when the loop fails.
func TestDaemonChaosRestartLoop(t *testing.T) {
	dir := os.Getenv("PRPART_CHAOS_DIR")
	if dir == "" {
		dir = t.TempDir()
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	dir = filepath.Join(dir, "restart-loop")

	bodies := [][]byte{
		caseStudyBody(t),
		[]byte(fmt.Sprintf(`{"design": %s}`, mustJSON(t, design.PaperExample()))),
	}
	refs := make([][]byte, len(bodies))

	const cycles = 5
	for cycle := 0; cycle < cycles; cycle++ {
		base, _, stop := bootDaemon(t, []string{
			"-store", dir,
			"-store-fault-rate", "0.05",
			"-store-fault-seed", fmt.Sprint(100 + cycle),
		})
		for i, body := range bodies {
			r, b := postURL(t, base, body)
			if r.StatusCode != 200 {
				t.Fatalf("cycle %d, spec %d: status %d: %s", cycle, i, r.StatusCode, b)
			}
			if refs[i] == nil {
				refs[i] = b
			} else if !bytes.Equal(b, refs[i]) {
				t.Fatalf("cycle %d, spec %d (X-Cache %s): bytes differ from cycle 0",
					cycle, i, r.Header.Get("X-Cache"))
			}
		}
		if err := stop(); err != nil {
			t.Fatalf("cycle %d shutdown: %v", cycle, err)
		}
	}
}

func mustJSON(t *testing.T, d *design.Design) string {
	t.Helper()
	var buf bytes.Buffer
	if err := design.EncodeJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestDaemonShutdownTimeoutLogsInflight: when -shutdown-timeout expires
// with solves still running, the daemon logs how much work it is
// abandoning before aborting.
func TestDaemonShutdownTimeoutLogsInflight(t *testing.T) {
	orig := newServer
	defer func() { newServer = orig }()
	newServer = func(cfg serve.Config) *serve.Server {
		cfg.Solver = func(ctx context.Context, d *design.Design, opts core.Options) (*core.Result, error) {
			<-ctx.Done() // runs until the hard abort
			return nil, ctx.Err()
		}
		return serve.New(cfg)
	}

	base, out, stop := bootDaemon(t, []string{"-shutdown-timeout", "200ms"})
	body := caseStudyBody(t)
	go func() {
		// The response is a 503 from the hard abort (or a dropped
		// connection); this goroutine only exists to park the solver.
		resp, err := http.Post(base+"/v1/solve", "application/json", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		hr, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		hb, _ := io.ReadAll(hr.Body)
		hr.Body.Close()
		var health struct {
			Inflight int64 `json:"inflight"`
		}
		if json.Unmarshal(hb, &health) == nil && health.Inflight > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("solve never became inflight: %s", hb)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := stop(); err == nil {
		t.Error("drain past -shutdown-timeout reported success")
	}
	want := "drain timed out after 200ms with 1 solves running, 0 queued; aborting"
	if !strings.Contains(out.String(), want) {
		t.Errorf("output missing %q:\n%s", want, out.String())
	}
}
