package main

import (
	"bytes"
	"net/http"
	"testing"
)

// TestDrainRestartByteIdentity exercises the content-addressing contract
// across a daemon lifetime: a result served warm from the cache before a
// graceful drain and the result re-solved cold by a fresh daemon must be
// byte-identical and carry the same content-addressed key.
func TestDrainRestartByteIdentity(t *testing.T) {
	body := caseStudyBody(t)
	solve := func(t *testing.T, base, query string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(base+"/v1/solve"+query, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("status %d: %s", resp.StatusCode, buf.String())
		}
		return resp, buf.Bytes()
	}

	base1, _, stop1 := bootDaemon(t, []string{"-check"})
	r1, b1 := solve(t, base1, "")
	if got := r1.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("first solve X-Cache = %q, want miss", got)
	}
	if got := r1.Header.Get("X-Check"); got != "pass" {
		t.Errorf("first solve X-Check = %q, want pass (daemon runs -check)", got)
	}
	r2, b2 := solve(t, base1, "")
	if got := r2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("warm solve X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("warm cache served different bytes than the original solve")
	}
	key1 := r1.Header.Get("X-Solve-Key")
	if key1 == "" {
		t.Fatal("no X-Solve-Key on the first response")
	}
	if err := stop1(); err != nil {
		t.Fatalf("graceful drain: %v", err)
	}

	// Fresh daemon, cold cache: the same request must miss, re-solve,
	// and reproduce the identical bytes under the identical key.
	base2, _, stop2 := bootDaemon(t, nil)
	defer func() {
		if err := stop2(); err != nil {
			t.Errorf("second drain: %v", err)
		}
	}()
	r3, b3 := solve(t, base2, "")
	if got := r3.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("cold solve X-Cache = %q, want miss", got)
	}
	if got := r3.Header.Get("X-Solve-Key"); got != key1 {
		t.Errorf("cold solve key %q, warm key %q — content addressing drifted", got, key1)
	}
	if !bytes.Equal(b1, b3) {
		t.Fatal("cold re-solve served different bytes for the same content-addressed key")
	}

	// The per-request debug check agrees and still serves the same bytes.
	r4, b4 := solve(t, base2, "?check=1")
	if got := r4.Header.Get("X-Check"); got != "pass" {
		t.Errorf("checked solve X-Check = %q, want pass", got)
	}
	if !bytes.Equal(b1, b4) {
		t.Fatal("checked solve served different bytes")
	}
}
