package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestClusterFlagsUnreachablePeers boots a single daemon whose -peers
// name two nodes that do not exist. The cluster must degrade, not fail:
// the ring log appears at startup, solves fall back to local search
// after the peer fetches error out, and /healthz reports the dead peers
// unreachable with their last errors.
func TestClusterFlagsUnreachablePeers(t *testing.T) {
	self := "http://127.0.0.1:1"
	deadA := "http://127.0.0.1:2"
	deadB := "http://127.0.0.1:3"
	base, out, stop := bootDaemon(t, []string{
		"-peers", strings.Join([]string{self, deadA, deadB}, ","),
		"-self", self,
		"-peer-secret", "flag-test-secret",
		"-ring-seed", "7",
		"-replicas", "3",
		"-peer-timeout", "200ms",
	})
	defer func() {
		if err := stop(); err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	}()

	if !strings.Contains(out.String(), "cluster ring: 3 members") {
		t.Fatalf("startup ring log missing:\n%s", out.String())
	}

	body := caseStudyBody(t)
	resp, err := http.Post(base+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve with dead peers = %d, want 200 (local fallback)", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("X-Cache = %q, want miss (peers are dead, solve ran locally)", got)
	}

	hr, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var health struct {
		Cluster *struct {
			Self     string `json:"self"`
			RingSize int    `json:"ringSize"`
			Replicas int    `json:"replicas"`
			Peers    []struct {
				URL       string `json:"url"`
				Reachable bool   `json:"reachable"`
				LastError string `json:"lastError"`
			} `json:"peers"`
		} `json:"cluster"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Cluster == nil {
		t.Fatal("healthz has no cluster block")
	}
	if health.Cluster.Self != self || health.Cluster.RingSize != 3 || health.Cluster.Replicas != 3 {
		t.Fatalf("cluster block = %+v", health.Cluster)
	}
	if len(health.Cluster.Peers) != 2 {
		t.Fatalf("healthz lists %d peers, want 2", len(health.Cluster.Peers))
	}
	for _, p := range health.Cluster.Peers {
		if p.Reachable || p.LastError == "" {
			t.Fatalf("dead peer %s reported healthy: %+v", p.URL, p)
		}
	}
	if !strings.Contains(out.String(), "unreachable") {
		t.Fatalf("reachability transition not logged:\n%s", out.String())
	}
}

// TestClusterFlagsRequireSelf pins the flag contract: -peers without
// -self is a startup error, not a silently degraded cluster.
func TestClusterFlagsRequireSelf(t *testing.T) {
	err := run(context.Background(), []string{"-peers", "http://a,http://b"}, &syncWriter{})
	if err == nil || !strings.Contains(err.Error(), "-self") {
		t.Fatalf("run without -self: %v", err)
	}
}

// TestClusterFlagsRequireSecret pins the auth contract: -peers without
// a shared -peer-secret (or $PRPARTD_PEER_SECRET) is a startup error —
// never a cluster with open peer endpoints.
func TestClusterFlagsRequireSecret(t *testing.T) {
	t.Setenv("PRPARTD_PEER_SECRET", "")
	err := run(context.Background(), []string{"-peers", "http://a,http://b", "-self", "http://a"}, &syncWriter{})
	if err == nil || !strings.Contains(err.Error(), "-peer-secret") {
		t.Fatalf("run without -peer-secret: %v", err)
	}

	t.Setenv("PRPARTD_PEER_SECRET", "env-secret")
	// With the env secret set the cluster constructs; the run then fails
	// later on the unusable listen address, proving the secret check
	// passed.
	err = run(context.Background(), []string{
		"-peers", "http://a,http://b", "-self", "http://a", "-addr", "256.256.256.256:0",
	}, &syncWriter{})
	if err == nil || strings.Contains(err.Error(), "-peer-secret") {
		t.Fatalf("run with env secret: %v", err)
	}
}
