// Command prpart runs the automated partitioning algorithm on a PR design
// description and reports the proposed region allocation next to the
// conventional schemes.
//
// Usage:
//
//	prpart -in design.xml [-device FX70T] [-budget clb,bram,dsp]
//	       [-no-static] [-greedy] [-json]
//
// The input is the tool flow's XML design description (see internal/spec)
// or the JSON schema (see internal/design) selected by file extension.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"prpart/internal/check"
	"prpart/internal/core"
	"prpart/internal/design"
	"prpart/internal/device"
	"prpart/internal/obs"
	"prpart/internal/resource"
	"prpart/internal/serve"
	"prpart/internal/spec"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "prpart:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("prpart", flag.ContinueOnError)
	in := fs.String("in", "", "design description (.xml or .json)")
	dev := fs.String("device", "", "target device (empty: smallest feasible)")
	budget := fs.String("budget", "", "resource budget as clb,bram,dsp (empty: device capacity)")
	noStatic := fs.Bool("no-static", false, "disable static promotion (ablation A1)")
	greedy := fs.Bool("greedy", false, "single greedy descent (ablation A2)")
	asJSON := fs.Bool("json", false, "emit machine-readable JSON instead of the report")
	devices := fs.String("devices", "", "custom device library (JSON, see internal/device.LoadLibrary)")
	pin := fs.String("pin", "", "comma-separated Module.Mode names to pin into static logic")
	explain := fs.Bool("explain", false, "print the search moves that produced the scheme")
	doCheck := fs.Bool("check", false, "verify the result with the independent oracle (internal/check)")
	keyOnly := fs.Bool("key", false, "print the content-addressed solve key (as prpartd computes it) and exit")
	multilevel := fs.Bool("multilevel", false, "solve through the coarsen-partition-refine engine (for very large designs)")
	mlSeed := fs.Int64("ml-seed", 0, "multilevel coarsening seed")
	mlThreshold := fs.Int("ml-threshold", 0, "multilevel delegation cutoff in modes (0: engine default)")
	workers := fs.Int("workers", 0, "solve workers: candidate-set search and per-level refine scan (0/1: serial, negative: all CPUs; identical results at any count)")
	ofl := obs.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		fs.Usage()
		return fmt.Errorf("missing -in")
	}
	o, stopObs, err := ofl.Start(out)
	if err != nil {
		return err
	}
	defer func() {
		if serr := stopObs(); serr != nil && err == nil {
			err = serr
		}
	}()
	d, con, err := load(*in)
	if err != nil {
		return err
	}
	// The canonical request: shared with prpartd so the CLI and the
	// daemon derive identical cache keys and result bytes.
	sspec := &serve.SolveSpec{
		Design:              d,
		Device:              con.Device,
		Budget:              con.Budget,
		NoStatic:            *noStatic,
		Greedy:              *greedy,
		Multilevel:          *multilevel,
		MultilevelSeed:      *mlSeed,
		MultilevelThreshold: *mlThreshold,
		Workers:             *workers,
	}
	if !*multilevel && (*mlSeed != 0 || *mlThreshold != 0) {
		return fmt.Errorf("-ml-seed/-ml-threshold require -multilevel")
	}
	if *multilevel && *pin != "" {
		return fmt.Errorf("-multilevel does not support -pin")
	}
	if *dev != "" {
		sspec.Device = *dev
	}
	if *budget != "" {
		v, err := parseBudget(*budget)
		if err != nil {
			return err
		}
		sspec.Budget = v
	}
	if *pin != "" {
		for _, name := range strings.Split(*pin, ",") {
			r, err := d.FindMode(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			sspec.Pinned = append(sspec.Pinned, r)
		}
	}
	if *keyOnly {
		key, err := sspec.Key()
		if err != nil {
			return err
		}
		_, err = fmt.Fprintln(out, key)
		return err
	}
	opts := sspec.CoreOptions(0, o)
	opts.ClockMHz = con.ClockMHz
	if *devices != "" {
		f, err := os.Open(*devices)
		if err != nil {
			return err
		}
		opts.Library, err = device.LoadLibrary(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	res, err := core.Run(d, opts)
	if err != nil {
		return err
	}
	if *doCheck {
		rep := check.Verify(check.Subject{
			Scheme: res.Scheme,
			Device: res.Device,
			Budget: res.Budget,
			Total:  res.Summary.Total,
			Worst:  res.Summary.Worst,
		})
		fmt.Fprintln(out, rep)
		if !rep.OK() {
			return fmt.Errorf("result failed verification with %d violation(s)", len(rep.Violations))
		}
	}
	if *asJSON {
		return serve.WriteResult(out, serve.BuildResult(res, res.Plan))
	}
	if _, err := fmt.Fprint(out, res.Report()); err != nil {
		return err
	}
	if *explain && res.Search != nil {
		fmt.Fprintf(out, "search: %d states over %d candidate sets; moves to the chosen scheme:\n",
			res.Search.States, res.Search.CandidateSets)
		if len(res.Search.Trace) == 0 {
			fmt.Fprintln(out, "  (none: the all-separate start was already optimal)")
		}
		for i, step := range res.Search.Trace {
			fmt.Fprintf(out, "  %2d. %s\n", i+1, step)
		}
	}
	return nil
}

func load(path string) (*design.Design, spec.Constraints, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, spec.Constraints{}, err
	}
	defer f.Close()
	switch strings.ToLower(filepath.Ext(path)) {
	case ".xml":
		return spec.ParseDesign(f)
	case ".json":
		d, err := design.DecodeJSON(f)
		return d, spec.Constraints{}, err
	}
	return nil, spec.Constraints{}, fmt.Errorf("unsupported input extension on %q (want .xml or .json)", path)
}

func parseBudget(s string) (resource.Vector, error) {
	var clb, bram, dsp int
	if _, err := fmt.Sscanf(s, "%d,%d,%d", &clb, &bram, &dsp); err != nil {
		return resource.Vector{}, fmt.Errorf("bad -budget %q (want clb,bram,dsp): %v", s, err)
	}
	return resource.New(clb, bram, dsp), nil
}
