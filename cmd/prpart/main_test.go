package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"prpart/internal/design"
	"prpart/internal/resource"
	"prpart/internal/serve"
	"prpart/internal/spec"
)

func writeDesignXML(t *testing.T, d *design.Design, con spec.Constraints) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "design.xml")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := spec.WriteDesign(f, d, con); err != nil {
		t.Fatal(err)
	}
	return path
}

func writeDesignJSON(t *testing.T, d *design.Design) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "design.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := design.EncodeJSON(f, d); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunXMLWithConstraints(t *testing.T) {
	path := writeDesignXML(t, design.VideoReceiver(), spec.Constraints{
		Device: "FX70T",
		Budget: design.CaseStudyBudget(),
	})
	var out strings.Builder
	if err := run([]string{"-in", path}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"XC5VFX70T", "PRR1", "baseline modular"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunJSONInputAndFlagsOverride(t *testing.T) {
	path := writeDesignJSON(t, design.VideoReceiver())
	var out strings.Builder
	err := run([]string{"-in", path, "-device", "FX70T", "-budget", "6800,64,150"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "XC5VFX70T") {
		t.Errorf("device flag ignored:\n%s", out.String())
	}
}

func TestRunJSONOutput(t *testing.T) {
	path := writeDesignXML(t, design.VideoReceiver(), spec.Constraints{
		Device: "FX70T", Budget: design.CaseStudyBudget(),
	})
	var out strings.Builder
	if err := run([]string{"-in", path, "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var jo serve.ResultJSON
	if err := json.Unmarshal([]byte(out.String()), &jo); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, out.String())
	}
	if jo.Device != "XC5VFX70T" || jo.Total == 0 || len(jo.Regions) == 0 {
		t.Errorf("JSON content wrong: %+v", jo)
	}
	if jo.Baselines["modular"] <= jo.Total {
		t.Errorf("modular baseline %d should exceed proposed %d", jo.Baselines["modular"], jo.Total)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}, &strings.Builder{}); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-in", "/nonexistent.xml"}, &strings.Builder{}); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "x.txt")
	os.WriteFile(bad, []byte("hi"), 0o644)
	if err := run([]string{"-in", bad}, &strings.Builder{}); err == nil ||
		!strings.Contains(err.Error(), "unsupported input extension") {
		t.Errorf("bad extension: %v", err)
	}
	path := writeDesignXML(t, design.PaperExample(), spec.Constraints{})
	if err := run([]string{"-in", path, "-budget", "nope"}, &strings.Builder{}); err == nil ||
		!strings.Contains(err.Error(), "bad -budget") {
		t.Errorf("bad budget: %v", err)
	}
}

func TestRunAblationFlags(t *testing.T) {
	path := writeDesignXML(t, design.PaperExample(), spec.Constraints{})
	var out strings.Builder
	if err := run([]string{"-in", path, "-no-static", "-greedy"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "0 static parts") &&
		strings.Contains(out.String(), "static:") {
		t.Errorf("no-static flag ignored:\n%s", out.String())
	}
}

func TestParseBudget(t *testing.T) {
	v, err := parseBudget("100,2,3")
	if err != nil || v != resource.New(100, 2, 3) {
		t.Errorf("parseBudget = %v, %v", v, err)
	}
	if _, err := parseBudget("1,2"); err == nil {
		t.Error("short budget accepted")
	}
}

func TestRunPinFlag(t *testing.T) {
	path := writeDesignXML(t, design.VideoReceiver(), spec.Constraints{
		Device: "FX70T", Budget: design.CaseStudyBudget(),
	})
	var out strings.Builder
	if err := run([]string{"-in", path, "-pin", "M.BPSK"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "static: M.BPSK") &&
		!strings.Contains(out.String(), "static: {M.BPSK}") {
		t.Errorf("pinned mode not reported static:\n%s", out.String())
	}
	if err := run([]string{"-in", path, "-pin", "Nope.Mode"}, &out); err == nil {
		t.Error("unknown pin accepted")
	}
}

func TestRunDevicesFlag(t *testing.T) {
	lib := filepath.Join(t.TempDir(), "lib.json")
	os.WriteFile(lib, []byte(`[{"name":"HUGE","clb":30000,"bram":400,"dsp":400,"rows":16}]`), 0o644)
	path := writeDesignXML(t, design.VideoReceiver(), spec.Constraints{})
	var out strings.Builder
	if err := run([]string{"-in", path, "-devices", lib}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "HUGE") {
		t.Errorf("custom library ignored:\n%s", out.String())
	}
	if err := run([]string{"-in", path, "-devices", "/nope.json"}, &out); err == nil {
		t.Error("missing library accepted")
	}
}

func TestRunObsFlags(t *testing.T) {
	path := writeDesignXML(t, design.VideoReceiver(), spec.Constraints{
		Device: "FX70T", Budget: design.CaseStudyBudget(),
	})
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	prof := filepath.Join(dir, "cpu.pprof")
	var out strings.Builder
	if err := run([]string{"-in", path, "-trace", trace, "-pprof", prof, "-metrics"}, &out); err != nil {
		t.Fatal(err)
	}
	tb, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tb), `"search.done"`) {
		t.Errorf("trace file has no search.done event:\n%s", tb)
	}
	if fi, err := os.Stat(prof); err != nil || fi.Size() == 0 {
		t.Errorf("pprof file missing or empty: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "-- metrics --") || !strings.Contains(s, "partition.states") {
		t.Errorf("metrics dump missing from output:\n%s", s)
	}
}
