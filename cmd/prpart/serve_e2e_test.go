package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"testing"

	"prpart/internal/design"
	"prpart/internal/serve"
	"prpart/internal/spec"
)

// TestServeE2EByteIdentity is the end-to-end contract between the CLI
// and the daemon: the same paper case-study design submitted over HTTP
// must return a body byte-identical to `prpart -json`, under the cache
// key `prpart -key` prints, with the second request served from cache.
func TestServeE2EByteIdentity(t *testing.T) {
	path := writeDesignXML(t, design.VideoReceiver(), spec.Constraints{
		Device: "FX70T",
		Budget: design.CaseStudyBudget(),
	})

	var cli strings.Builder
	if err := run([]string{"-in", path, "-json"}, &cli); err != nil {
		t.Fatal(err)
	}
	var keyOut strings.Builder
	if err := run([]string{"-in", path, "-key"}, &keyOut); err != nil {
		t.Fatal(err)
	}
	wantKey := strings.TrimSpace(keyOut.String())
	if !strings.HasPrefix(wantKey, "sha256:") {
		t.Fatalf("prpart -key printed %q", wantKey)
	}

	// Boot the serving stack on a real ephemeral listener, exactly as
	// prpartd wires it.
	srv := serve.New(serve.Config{})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	url := "http://" + ln.Addr().String() + "/v1/solve"

	xmlBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]string{"xml": string(xmlBytes)})
	if err != nil {
		t.Fatal(err)
	}
	post := func() (*http.Response, []byte) {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, b
	}

	resp1, http1 := post()
	if resp1.StatusCode != 200 {
		t.Fatalf("daemon solve: status %d: %s", resp1.StatusCode, http1)
	}
	if got := resp1.Header.Get("X-Solve-Key"); got != wantKey {
		t.Errorf("daemon key %s != prpart -key %s", got, wantKey)
	}
	if resp1.Header.Get("X-Cache") != "miss" {
		t.Errorf("first request X-Cache = %q, want miss", resp1.Header.Get("X-Cache"))
	}
	if !bytes.Equal(http1, []byte(cli.String())) {
		t.Errorf("HTTP body differs from prpart -json output:\nhttp: %s\ncli:  %s",
			http1, cli.String())
	}

	resp2, http2 := post()
	if resp2.StatusCode != 200 || resp2.Header.Get("X-Cache") != "hit" {
		t.Errorf("second request: status %d, X-Cache %q, want 200/hit",
			resp2.StatusCode, resp2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(http1, http2) {
		t.Error("cached body differs from first body")
	}
	if got := srv.Obs().Snapshot().Counters["serve.solves"]; got != 1 {
		t.Errorf("solves = %d, want exactly 1 (second served from cache)", got)
	}
}
