package main

import (
	"os"
	"path/filepath"
	"testing"

	"prpart/internal/spec"
)

func TestGenerateCorpusDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "corpus")
	if err := run([]string{"-n", "12", "-seed", "3", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 12 {
		t.Fatalf("files = %d, want 12", len(entries))
	}
	// Every file must parse back into a valid design.
	for _, e := range entries {
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		d, _, err := spec.ParseDesign(f)
		f.Close()
		if err != nil {
			t.Errorf("%s: %v", e.Name(), err)
			continue
		}
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", e.Name(), err)
		}
	}
}

func TestGenerateSingleToStdout(t *testing.T) {
	// -index writes to stdout; capture via pipe.
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	runErr := run([]string{"-n", "5", "-seed", "1", "-index", "2"})
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	d, _, err := spec.ParseDesign(r)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "syn-0002-DSP-intensive" {
		t.Errorf("design name = %q", d.Name)
	}
}

func TestGenerateErrors(t *testing.T) {
	if err := run([]string{"-n", "3"}); err == nil {
		t.Error("missing -out accepted")
	}
	if err := run([]string{"-n", "3", "-index", "9"}); err == nil {
		t.Error("out-of-range -index accepted")
	}
}
