// Command prgen generates the synthetic PR designs of the paper's §V
// evaluation:
//
//	prgen -n 1000 -seed 1 -out corpus/        # one XML file per design
//	prgen -seed 1 -index 5                    # one design to stdout
//
// Designs cycle through the four circuit classes (logic-, memory-, DSP-
// and DSP-and-memory-intensive) and follow the distribution described in
// the paper: 2-6 modules, 2-4 modes each, 25-4000 CLBs per mode, a
// 90-CLB/8-BRAM static region, and random configurations until every
// mode is used.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"prpart/internal/spec"
	"prpart/internal/synthetic"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "prgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("prgen", flag.ContinueOnError)
	n := fs.Int("n", 1000, "number of designs to generate")
	seed := fs.Int64("seed", 1, "corpus seed")
	outDir := fs.String("out", "", "output directory (one XML per design)")
	index := fs.Int("index", -1, "write only design #index to stdout")
	scale := fs.String("scale", "paper", "corpus tier: paper (§V distribution) or huge (10³–10⁴ modes, for -multilevel)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	generate := synthetic.Generate
	switch *scale {
	case "paper":
	case "huge":
		generate = synthetic.GenerateHuge
	default:
		return fmt.Errorf("unknown -scale %q (want paper or huge)", *scale)
	}
	if *index >= 0 {
		if *index >= *n {
			return fmt.Errorf("-index %d out of range (corpus size %d)", *index, *n)
		}
		designs := generate(*seed, *index+1)
		return spec.WriteDesign(os.Stdout, designs[*index], spec.Constraints{})
	}
	if *outDir == "" {
		fs.Usage()
		return fmt.Errorf("missing -out (or use -index)")
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	designs := generate(*seed, *n)
	for i, d := range designs {
		path := filepath.Join(*outDir, fmt.Sprintf("%s.xml", d.Name))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := spec.WriteDesign(f, d, spec.Constraints{}); err != nil {
			f.Close()
			return fmt.Errorf("design %d: %w", i, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Printf("prgen: wrote %d designs to %s\n", len(designs), *outDir)
	return nil
}
