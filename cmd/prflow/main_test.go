package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"prpart/internal/design"
	"prpart/internal/spec"
)

func designFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "design.xml")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	err = spec.WriteDesign(f, design.VideoReceiver(), spec.Constraints{
		Device: "FX70T", Budget: design.CaseStudyBudget(), ClockMHz: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFlowWritesArtefacts(t *testing.T) {
	in := designFile(t)
	out := filepath.Join(t.TempDir(), "build")
	if err := run([]string{"-in", in, "-out", out}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"report.txt", "design.ucf", "floorplan.txt",
		"connectivity.dot", "partitioning.dot", "activation.dot",
	} {
		if _, err := os.Stat(filepath.Join(out, name)); err != nil {
			t.Errorf("missing artefact %s: %v", name, err)
		}
	}
	entries, err := os.ReadDir(out)
	if err != nil {
		t.Fatal(err)
	}
	bits, verilog := 0, 0
	for _, e := range entries {
		switch {
		case strings.HasSuffix(e.Name(), ".bit"):
			bits++
		case strings.HasSuffix(e.Name(), ".v"):
			verilog++
		}
	}
	if bits == 0 || verilog == 0 {
		t.Errorf("artefacts incomplete: %d .bit, %d .v", bits, verilog)
	}
	ucf, err := os.ReadFile(filepath.Join(out, "design.ucf"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(ucf), "RECONFIG_MODE = TRUE") {
		t.Error("UCF lacks PR constraints")
	}
	// Bitstream files are non-trivial binaries.
	var bitSize int64
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".bit") {
			fi, _ := e.Info()
			bitSize += fi.Size()
		}
	}
	if bitSize < 100_000 {
		t.Errorf("bitstreams suspiciously small: %d bytes", bitSize)
	}
}

func TestFlowBudgetFlag(t *testing.T) {
	in := designFile(t)
	out := filepath.Join(t.TempDir(), "build")
	err := run([]string{"-in", in, "-out", out, "-budget", "6800,64,150", "-device", "FX70T"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFlowErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing flags accepted")
	}
	if err := run([]string{"-in", "/nope.xml", "-out", t.TempDir()}); err == nil {
		t.Error("missing input accepted")
	}
	in := designFile(t)
	if err := run([]string{"-in", in, "-out", t.TempDir(), "-budget", "zz"}); err == nil {
		t.Error("bad budget accepted")
	}
}
