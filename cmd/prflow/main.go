// Command prflow runs the complete automated tool flow of the paper's
// Fig. 2 — partitioning, wrapper generation, floorplanning, UCF
// generation and partial-bitstream assembly — and writes every artefact
// into an output directory:
//
//	prflow -in design.xml -out build/ [-device FX70T] [-budget clb,bram,dsp]
//
// The output directory receives report.txt, design.ucf, floorplan.txt,
// Graphviz views of the co-occurrence graph and the chosen partitioning,
// one Verilog file per wrapper/black-box, and one .bit file per partial
// bitstream.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"prpart/internal/core"
	"prpart/internal/design"
	"prpart/internal/resource"
	"prpart/internal/spec"
	"prpart/internal/viz"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "prflow:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("prflow", flag.ContinueOnError)
	in := fs.String("in", "", "design description (.xml or .json)")
	outDir := fs.String("out", "", "output directory")
	dev := fs.String("device", "", "target device (empty: smallest feasible)")
	budget := fs.String("budget", "", "resource budget as clb,bram,dsp")
	clock := fs.Float64("clock", 100, "clock constraint in MHz")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *outDir == "" {
		fs.Usage()
		return fmt.Errorf("missing -in or -out")
	}
	d, con, err := load(*in)
	if err != nil {
		return err
	}
	opts := core.Options{Device: con.Device, Budget: con.Budget, ClockMHz: *clock}
	if con.ClockMHz != 0 {
		opts.ClockMHz = con.ClockMHz
	}
	if *dev != "" {
		opts.Device = *dev
	}
	if *budget != "" {
		var clb, bram, dsp int
		if _, err := fmt.Sscanf(*budget, "%d,%d,%d", &clb, &bram, &dsp); err != nil {
			return fmt.Errorf("bad -budget %q: %v", *budget, err)
		}
		opts.Budget = resource.New(clb, bram, dsp)
	}
	res, err := core.Run(d, opts)
	if err != nil {
		return err
	}
	return write(*outDir, res)
}

func load(path string) (*design.Design, spec.Constraints, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, spec.Constraints{}, err
	}
	defer f.Close()
	if strings.EqualFold(filepath.Ext(path), ".json") {
		d, err := design.DecodeJSON(f)
		return d, spec.Constraints{}, err
	}
	return spec.ParseDesign(f)
}

func write(dir string, res *core.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	put := func(name, content string) error {
		return os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644)
	}
	if err := put("report.txt", res.Report()); err != nil {
		return err
	}
	if err := put("design.ucf", res.UCF); err != nil {
		return err
	}
	if err := put("floorplan.txt", res.Plan.String()); err != nil {
		return err
	}
	if err := put("connectivity.dot", viz.ConnectivityDOT(res.Design)); err != nil {
		return err
	}
	if err := put("partitioning.dot", viz.SchemeDOT(res.Scheme)); err != nil {
		return err
	}
	if err := put("activation.dot", viz.ActivationDOT(res.Scheme)); err != nil {
		return err
	}
	for name, src := range res.Wrappers.Verilog() {
		if err := put(name+".v", src); err != nil {
			return err
		}
	}
	for _, region := range res.Bitstreams.PerRegion {
		for _, bs := range region {
			buf := make([]byte, 4*len(bs.Words))
			for i, w := range bs.Words {
				binary.BigEndian.PutUint32(buf[4*i:], w)
			}
			if err := os.WriteFile(filepath.Join(dir, bs.Name), buf, 0o644); err != nil {
				return err
			}
		}
	}
	fmt.Printf("prflow: wrote %d bitstreams and %d wrapper files to %s\n",
		res.Bitstreams.Total(), len(res.Wrappers.Verilog()), dir)
	return nil
}
