module prpart

go 1.22
