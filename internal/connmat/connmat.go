// Package connmat builds the connectivity matrix of the paper's §IV-C:
// one row per valid configuration and one column per used mode, with a 1
// where the mode is active in the configuration. The matrix yields the
// node weights (how often each mode occurs) and edge weights (how often
// two modes co-occur) that drive the clustering, and is also the structure
// the covering algorithm progressively zeroes.
package connmat

import (
	"fmt"
	"strings"

	"prpart/internal/design"
)

// Matrix is the configurations × modes connectivity matrix. The zero value
// is not useful; construct with New.
type Matrix struct {
	d     *design.Design
	modes []design.ModeRef // column order
	col   map[design.ModeRef]int
	cells [][]bool // [config][column]
}

// New builds the connectivity matrix for a design. Columns are allocated
// only for modes used by at least one configuration; per §IV-D, mode 0
// (absent module) gets no column.
func New(d *design.Design) *Matrix {
	modes := d.UsedModes()
	col := make(map[design.ModeRef]int, len(modes))
	for i, r := range modes {
		col[r] = i
	}
	cells := make([][]bool, len(d.Configurations))
	for ci := range d.Configurations {
		row := make([]bool, len(modes))
		for _, r := range d.ConfigModes(ci) {
			row[col[r]] = true
		}
		cells[ci] = row
	}
	return &Matrix{d: d, modes: modes, col: col, cells: cells}
}

// Design returns the design the matrix was built from.
func (m *Matrix) Design() *design.Design { return m.d }

// Modes returns the column order: every used mode.
func (m *Matrix) Modes() []design.ModeRef {
	out := make([]design.ModeRef, len(m.modes))
	copy(out, m.modes)
	return out
}

// NumConfigs returns the number of rows.
func (m *Matrix) NumConfigs() int { return len(m.cells) }

// NumModes returns the number of columns.
func (m *Matrix) NumModes() int { return len(m.modes) }

// Column returns the column index of a mode, or -1 when the mode is
// unused.
func (m *Matrix) Column(r design.ModeRef) int {
	if c, ok := m.col[r]; ok {
		return c
	}
	return -1
}

// At reports whether mode column j is active in configuration i.
func (m *Matrix) At(i, j int) bool { return m.cells[i][j] }

// Contains reports whether configuration i activates mode r.
func (m *Matrix) Contains(i int, r design.ModeRef) bool {
	c, ok := m.col[r]
	return ok && m.cells[i][c]
}

// NodeWeight returns the number of configurations containing mode r
// (the columnar sum of the matrix).
func (m *Matrix) NodeWeight(r design.ModeRef) int {
	c, ok := m.col[r]
	if !ok {
		return 0
	}
	n := 0
	for i := range m.cells {
		if m.cells[i][c] {
			n++
		}
	}
	return n
}

// EdgeWeight returns W_ij: the number of configurations in which modes a
// and b occur concurrently.
func (m *Matrix) EdgeWeight(a, b design.ModeRef) int {
	ca, oka := m.col[a]
	cb, okb := m.col[b]
	if !oka || !okb || ca == cb {
		return 0
	}
	n := 0
	for i := range m.cells {
		if m.cells[i][ca] && m.cells[i][cb] {
			n++
		}
	}
	return n
}

// SetSupport returns the number of configurations containing every mode in
// the set. It generalises NodeWeight (|set|=1) and EdgeWeight (|set|=2).
func (m *Matrix) SetSupport(set []design.ModeRef) int {
	cols := make([]int, 0, len(set))
	for _, r := range set {
		c, ok := m.col[r]
		if !ok {
			return 0
		}
		cols = append(cols, c)
	}
	n := 0
rows:
	for i := range m.cells {
		for _, c := range cols {
			if !m.cells[i][c] {
				continue rows
			}
		}
		n++
	}
	return n
}

// MinEdgeWeight returns the smallest pairwise edge weight within a set of
// two or more modes: the paper's frequency weight for multi-mode base
// partitions. For singletons it returns the node weight.
func (m *Matrix) MinEdgeWeight(set []design.ModeRef) int {
	if len(set) == 1 {
		return m.NodeWeight(set[0])
	}
	minW := -1
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			w := m.EdgeWeight(set[i], set[j])
			if minW < 0 || w < minW {
				minW = w
			}
		}
	}
	if minW < 0 {
		return 0
	}
	return minW
}

// Clone returns an independent copy of the matrix that can be zeroed by
// the covering algorithm without disturbing the original.
func (m *Matrix) Clone() *Matrix {
	cells := make([][]bool, len(m.cells))
	for i, row := range m.cells {
		cells[i] = append([]bool(nil), row...)
	}
	return &Matrix{d: m.d, modes: m.modes, col: m.col, cells: cells}
}

// Clear zeroes the cell (config i, mode r). It reports whether the cell
// was previously set — i.e. whether this clearing covered new ground.
func (m *Matrix) Clear(i int, r design.ModeRef) bool {
	c, ok := m.col[r]
	if !ok || !m.cells[i][c] {
		return false
	}
	m.cells[i][c] = false
	return true
}

// AllZero reports whether every cell has been cleared.
func (m *Matrix) AllZero() bool {
	for i := range m.cells {
		for _, set := range m.cells[i] {
			if set {
				return false
			}
		}
	}
	return true
}

// String renders the matrix like the paper's display: a header of mode
// names and one 0/1 row per configuration.
func (m *Matrix) String() string {
	var b strings.Builder
	b.WriteString("        ")
	for _, r := range m.modes {
		fmt.Fprintf(&b, "%8s", m.d.ModeName(r))
	}
	b.WriteByte('\n')
	for i, row := range m.cells {
		fmt.Fprintf(&b, "Conf.%-3d", i+1)
		for _, set := range row {
			v := 0
			if set {
				v = 1
			}
			fmt.Fprintf(&b, "%8d", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
