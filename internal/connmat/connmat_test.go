package connmat

import (
	"strings"
	"testing"
	"testing/quick"

	"prpart/internal/design"
)

// ref resolves a "Module mode-index" pair on the paper example, where
// module A=0, B=1, C=2.
func ref(mod, mode int) design.ModeRef { return design.ModeRef{Module: mod, Mode: mode} }

func TestPaperExampleMatrix(t *testing.T) {
	d := design.PaperExample()
	m := New(d)
	if m.NumConfigs() != 5 || m.NumModes() != 8 {
		t.Fatalf("matrix shape %dx%d, want 5x8", m.NumConfigs(), m.NumModes())
	}
	// The paper's printed matrix, columns A1 A2 A3 B1 B2 C1 C2 C3:
	want := [5][8]int{
		{0, 0, 1, 0, 1, 0, 0, 1},
		{1, 0, 0, 1, 0, 1, 0, 0},
		{0, 0, 1, 0, 1, 1, 0, 0},
		{1, 0, 0, 0, 1, 0, 1, 0},
		{0, 1, 0, 0, 1, 0, 0, 1},
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 8; j++ {
			got := 0
			if m.At(i, j) {
				got = 1
			}
			if got != want[i][j] {
				t.Errorf("cell (%d,%d) = %d, want %d", i, j, got, want[i][j])
			}
		}
	}
}

func TestNodeWeights(t *testing.T) {
	m := New(design.PaperExample())
	// Paper: node weight of A1 is 2, of B2 is 4.
	cases := []struct {
		r    design.ModeRef
		want int
	}{
		{ref(0, 1), 2}, // A1
		{ref(0, 2), 1}, // A2
		{ref(0, 3), 2}, // A3
		{ref(1, 1), 1}, // B1
		{ref(1, 2), 4}, // B2
		{ref(2, 1), 2}, // C1
		{ref(2, 2), 1}, // C2
		{ref(2, 3), 2}, // C3
	}
	for _, c := range cases {
		if got := m.NodeWeight(c.r); got != c.want {
			t.Errorf("NodeWeight(%v) = %d, want %d", m.Design().ModeName(c.r), got, c.want)
		}
	}
}

func TestEdgeWeights(t *testing.T) {
	m := New(design.PaperExample())
	// Paper: W(A1,B1) = 1 and W(B2,C3) = 2.
	if got := m.EdgeWeight(ref(0, 1), ref(1, 1)); got != 1 {
		t.Errorf("W(A1,B1) = %d, want 1", got)
	}
	if got := m.EdgeWeight(ref(1, 2), ref(2, 3)); got != 2 {
		t.Errorf("W(B2,C3) = %d, want 2", got)
	}
	// A3,B2 is the highest edge weight (2) in the worked clustering.
	if got := m.EdgeWeight(ref(0, 3), ref(1, 2)); got != 2 {
		t.Errorf("W(A3,B2) = %d, want 2", got)
	}
	// Modes of the same module never co-occur.
	if got := m.EdgeWeight(ref(0, 1), ref(0, 2)); got != 0 {
		t.Errorf("W(A1,A2) = %d, want 0", got)
	}
	// Self edge is zero.
	if got := m.EdgeWeight(ref(0, 1), ref(0, 1)); got != 0 {
		t.Errorf("W(A1,A1) = %d, want 0", got)
	}
}

func TestSetSupportAndMinEdge(t *testing.T) {
	m := New(design.PaperExample())
	// {A3,B2,C3}: min edge weight is 1 (A3-C3), as in Fig. 5(b).
	set := []design.ModeRef{ref(0, 3), ref(1, 2), ref(2, 3)}
	if got := m.MinEdgeWeight(set); got != 1 {
		t.Errorf("MinEdgeWeight({A3,B2,C3}) = %d, want 1", got)
	}
	if got := m.SetSupport(set); got != 1 {
		t.Errorf("SetSupport({A3,B2,C3}) = %d, want 1", got)
	}
	// {A1,B2,C1} is a clique of the graph but supported by no config.
	tri := []design.ModeRef{ref(0, 1), ref(1, 2), ref(2, 1)}
	if got := m.SetSupport(tri); got != 0 {
		t.Errorf("SetSupport({A1,B2,C1}) = %d, want 0", got)
	}
	if got := m.MinEdgeWeight(tri); got != 1 {
		t.Errorf("MinEdgeWeight({A1,B2,C1}) = %d, want 1", got)
	}
	// Singleton falls back to node weight.
	if got := m.MinEdgeWeight([]design.ModeRef{ref(1, 2)}); got != 4 {
		t.Errorf("MinEdgeWeight({B2}) = %d, want 4", got)
	}
	// Unused mode has zero support.
	if got := m.SetSupport([]design.ModeRef{{Module: 0, Mode: 99}}); got != 0 {
		t.Errorf("SetSupport(unused) = %d, want 0", got)
	}
}

func TestModeZeroGetsNoColumn(t *testing.T) {
	d := design.SingleModeExample()
	m := New(d)
	if m.NumModes() != 5 {
		t.Fatalf("single-mode example columns = %d, want 5", m.NumModes())
	}
	// Absent modules contribute nothing: config 0 is CAN+FIR only.
	if !m.Contains(0, ref(0, 1)) || !m.Contains(0, ref(1, 1)) {
		t.Error("config 0 should contain CAN1 and FIR1")
	}
	if m.Contains(0, ref(2, 1)) {
		t.Error("config 0 should not contain Eth1")
	}
}

func TestUnusedModeColumn(t *testing.T) {
	d := design.VideoReceiver()
	m := New(d)
	if m.NumModes() != 13 {
		t.Fatalf("columns = %d, want 13 (R.None unused)", m.NumModes())
	}
	if c := m.Column(design.ModeRef{Module: 1, Mode: 4}); c != -1 {
		t.Errorf("Column(R.None) = %d, want -1", c)
	}
	if w := m.NodeWeight(design.ModeRef{Module: 1, Mode: 4}); w != 0 {
		t.Errorf("NodeWeight(R.None) = %d, want 0", w)
	}
}

func TestCloneClearAllZero(t *testing.T) {
	orig := New(design.PaperExample())
	m := orig.Clone()
	if m.AllZero() {
		t.Fatal("fresh matrix should not be all-zero")
	}
	if !m.Clear(4, ref(0, 2)) { // A2 in config 5
		t.Fatal("Clear(conf5, A2) should report newly covered")
	}
	if m.Clear(4, ref(0, 2)) {
		t.Fatal("second Clear of same cell should report false")
	}
	if m.Clear(0, ref(0, 2)) { // A2 not in config 1
		t.Fatal("clearing an unset cell should report false")
	}
	if !orig.At(4, orig.Column(ref(0, 2))) {
		t.Fatal("Clear leaked into the original matrix")
	}
	// Clear everything; AllZero must flip.
	for i := 0; i < m.NumConfigs(); i++ {
		for _, r := range m.Modes() {
			m.Clear(i, r)
		}
	}
	if !m.AllZero() {
		t.Fatal("matrix should be all-zero after clearing everything")
	}
}

func TestString(t *testing.T) {
	s := New(design.PaperExample()).String()
	if !strings.Contains(s, "A.1") || !strings.Contains(s, "Conf.5") {
		t.Errorf("String output missing headers:\n%s", s)
	}
}

// Property: on any valid design, edge weight is symmetric and bounded by
// both node weights, and set support is bounded by the min edge weight.
func TestWeightBoundsProperty(t *testing.T) {
	for _, d := range []*design.Design{
		design.PaperExample(), design.VideoReceiver(),
		design.VideoReceiverModified(), design.SingleModeExample(),
	} {
		m := New(d)
		modes := m.Modes()
		f := func(ai, bi, ci uint) bool {
			a := modes[int(ai%uint(len(modes)))]
			b := modes[int(bi%uint(len(modes)))]
			c := modes[int(ci%uint(len(modes)))]
			if m.EdgeWeight(a, b) != m.EdgeWeight(b, a) {
				return false
			}
			if m.EdgeWeight(a, b) > m.NodeWeight(a) || m.EdgeWeight(a, b) > m.NodeWeight(b) {
				return false
			}
			if a == b || b == c || a == c {
				return true // MinEdgeWeight is defined on sets, not multisets
			}
			set := []design.ModeRef{a, b, c}
			return m.SetSupport(set) <= m.MinEdgeWeight(set)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}
