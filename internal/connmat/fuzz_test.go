package connmat

import (
	"fmt"
	"testing"

	"prpart/internal/design"
	"prpart/internal/resource"
)

// designFromBytes decodes a fuzz payload into a bounded design: up to 4
// modules of up to 3 modes with small resource vectors, and up to 6
// configurations whose mode selections (0 = absent) come straight from
// the payload. The decoder is total — any byte string yields a design —
// but the result may still be rejected by design.Validate (e.g. a
// configuration row of all zeros), which the fuzz target treats as an
// uninteresting input.
func designFromBytes(data []byte) *design.Design {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	d := &design.Design{Name: "fuzz", Static: resource.New(1, 0, 0)}
	nMod := 1 + int(next())%4
	for mi := 0; mi < nMod; mi++ {
		m := &design.Module{Name: fmt.Sprintf("M%d", mi)}
		nModes := 1 + int(next())%3
		for k := 0; k < nModes; k++ {
			m.Modes = append(m.Modes, design.Mode{
				Name:      fmt.Sprintf("m%d", k),
				Resources: resource.New(1+int(next())%50, int(next())%4, int(next())%4),
			})
		}
		d.Modules = append(d.Modules, m)
	}
	nCfg := 1 + int(next())%6
	for ci := 0; ci < nCfg; ci++ {
		cfg := design.Configuration{Name: fmt.Sprintf("C%d", ci)}
		for _, m := range d.Modules {
			cfg.Modes = append(cfg.Modes, int(next())%(len(m.Modes)+1))
		}
		d.Configurations = append(d.Configurations, cfg)
	}
	return d
}

// FuzzMatrix builds the connectivity matrix for arbitrary bounded
// designs and cross-checks every derived quantity against its
// definition: node weights are column sums, edge weights are symmetric
// and bounded by both node weights, SetSupport generalises both, and
// Clear/AllZero behave like a plain bitmap.
func FuzzMatrix(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 2, 10, 1, 1, 20, 2, 0, 2, 5, 0, 0, 3, 1, 2, 2, 1})
	f.Add([]byte{0, 0, 0, 0, 0, 1, 1})
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255, 255})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := designFromBytes(data)
		if err := d.Validate(); err != nil {
			return
		}
		m := New(d)
		if m.NumConfigs() != len(d.Configurations) {
			t.Fatalf("NumConfigs = %d, want %d", m.NumConfigs(), len(d.Configurations))
		}
		modes := m.Modes()
		if m.NumModes() != len(modes) {
			t.Fatalf("NumModes = %d but Modes() has %d entries", m.NumModes(), len(modes))
		}

		for _, r := range modes {
			c := m.Column(r)
			if c < 0 || c >= m.NumModes() {
				t.Fatalf("Column(%v) = %d out of range", r, c)
			}
			// NodeWeight is the column sum, and every used mode occurs.
			n := 0
			for i := 0; i < m.NumConfigs(); i++ {
				if m.At(i, c) {
					n++
				}
			}
			if w := m.NodeWeight(r); w != n {
				t.Fatalf("NodeWeight(%v) = %d, column sum %d", r, w, n)
			}
			if m.NodeWeight(r) == 0 {
				t.Fatalf("used mode %v has zero node weight", r)
			}
			if s := m.SetSupport([]design.ModeRef{r}); s != m.NodeWeight(r) {
				t.Fatalf("SetSupport({%v}) = %d, NodeWeight = %d", r, s, m.NodeWeight(r))
			}
		}

		for i, a := range modes {
			for _, b := range modes[i+1:] {
				ab, ba := m.EdgeWeight(a, b), m.EdgeWeight(b, a)
				if ab != ba {
					t.Fatalf("EdgeWeight asymmetric: %v-%v %d vs %d", a, b, ab, ba)
				}
				if ab > m.NodeWeight(a) || ab > m.NodeWeight(b) {
					t.Fatalf("EdgeWeight(%v,%v) = %d exceeds a node weight", a, b, ab)
				}
				if s := m.SetSupport([]design.ModeRef{a, b}); s != ab {
					t.Fatalf("SetSupport pair = %d, EdgeWeight = %d", s, ab)
				}
				if mw := m.MinEdgeWeight([]design.ModeRef{a, b}); mw != ab {
					t.Fatalf("MinEdgeWeight pair = %d, EdgeWeight = %d", mw, ab)
				}
			}
		}

		// Unused modes are invisible.
		ghost := design.ModeRef{Module: 99, Mode: 1}
		if m.Column(ghost) != -1 || m.NodeWeight(ghost) != 0 || m.SetSupport([]design.ModeRef{ghost}) != 0 {
			t.Fatal("unknown mode reported as present")
		}

		// Clearing every set cell through a clone empties it and leaves
		// the original untouched.
		cl := m.Clone()
		cleared := 0
		for i := 0; i < cl.NumConfigs(); i++ {
			for _, r := range modes {
				if cl.Clear(i, r) {
					cleared++
					if cl.Clear(i, r) {
						t.Fatalf("Clear(%d, %v) reported new ground twice", i, r)
					}
				}
			}
		}
		if !cl.AllZero() {
			t.Fatal("clone not AllZero after clearing every cell")
		}
		if m.AllZero() && cleared > 0 {
			t.Fatal("clearing the clone zeroed the original")
		}
		total := 0
		for _, r := range modes {
			total += m.NodeWeight(r)
		}
		if cleared != total {
			t.Fatalf("cleared %d cells, matrix holds %d", cleared, total)
		}
	})
}
