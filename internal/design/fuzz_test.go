package design

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecodeJSON checks the JSON codec never panics and that accepted
// inputs are valid designs that survive a round trip.
func FuzzDecodeJSON(f *testing.F) {
	for _, d := range []*Design{PaperExample(), VideoReceiver(), SingleModeExample()} {
		var b bytes.Buffer
		if err := EncodeJSON(&b, d); err != nil {
			f.Fatal(err)
		}
		f.Add(b.String())
	}
	f.Add("{}")
	f.Add("[1,2,3]")
	f.Add(`{"name":"x","static":{"clb":-5,"bram":0,"dsp":0},"modules":[],"configurations":[]}`)

	f.Fuzz(func(t *testing.T, input string) {
		d, err := DecodeJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		if verr := d.Validate(); verr != nil {
			t.Fatalf("DecodeJSON accepted invalid design: %v", verr)
		}
		var out bytes.Buffer
		if werr := EncodeJSON(&out, d); werr != nil {
			t.Fatalf("re-encode failed: %v", werr)
		}
		if _, rerr := DecodeJSON(&out); rerr != nil {
			t.Fatalf("round trip failed: %v", rerr)
		}
	})
}
