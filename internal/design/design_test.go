package design

import (
	"strings"
	"testing"

	"prpart/internal/resource"
)

func TestPaperExampleValid(t *testing.T) {
	for _, d := range []*Design{
		PaperExample(), VideoReceiver(), VideoReceiverModified(),
		TwoModuleExample(), SingleModeExample(),
	} {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

func TestUsedModesPaperExample(t *testing.T) {
	d := PaperExample()
	used := d.UsedModes()
	if len(used) != 8 {
		t.Fatalf("UsedModes = %d, want 8 (A1-A3, B1-B2, C1-C3)", len(used))
	}
	all := d.AllModes()
	if len(all) != 8 {
		t.Fatalf("AllModes = %d, want 8", len(all))
	}
}

func TestUsedModesSkipsUnreferenced(t *testing.T) {
	d := VideoReceiver()
	// R.None (mode 4) and the modified set's unused modes never appear.
	for _, r := range d.UsedModes() {
		if d.ModeName(r) == "R.None" {
			t.Error("R.None should not be a used mode in the 8-config case study")
		}
	}
	if got, want := len(d.UsedModes()), 13; got != want {
		// 14 modes total, R.None unused.
		t.Errorf("UsedModes = %d, want %d", got, want)
	}
}

func TestConfigResources(t *testing.T) {
	d := VideoReceiver()
	// Config 0: F1 + R3 + M1 + D1 + V1.
	want := resource.New(818+123+50+630+4700, 0+0+0+2+40, 28+8+2+0+65)
	if got := d.ConfigResources(0); got != want {
		t.Errorf("ConfigResources(0) = %v, want %v", got, want)
	}
}

func TestLargestConfiguration(t *testing.T) {
	d := TwoModuleExample()
	// Configs: {A1,B1}=600, {A2,B2}=520, {A1,B2}=220 -> largest 600.
	if got := d.LargestConfiguration(); got.CLB != 600 {
		t.Errorf("LargestConfiguration CLB = %d, want 600", got.CLB)
	}
}

func TestStaticSum(t *testing.T) {
	d := VideoReceiver()
	got := d.StaticSum()
	// Sum of all Table II modes: 15751 CLB, 83 BRAM, 204 DSP. (The paper's
	// Table IV quotes 15053/68/202 for the same sum; see EXPERIMENTS.md.)
	want := resource.New(15751, 83, 204)
	if got != want {
		t.Errorf("StaticSum = %v, want %v", got, want)
	}
}

func TestModuleLargestSum(t *testing.T) {
	d := VideoReceiver()
	v := d.Modules[4] // video decoder
	if got := v.Largest(); got != resource.New(4700, 40, 65) {
		t.Errorf("V.Largest = %v", got)
	}
	if got := v.Sum(); got != resource.New(4700+4558+2780, 40+16+6, 65+32+9) {
		t.Errorf("V.Sum = %v", got)
	}
}

func TestModeNameAndResources(t *testing.T) {
	d := VideoReceiver()
	r := ModeRef{Module: 3, Mode: 2}
	if got := d.ModeName(r); got != "D.Turbo" {
		t.Errorf("ModeName = %q, want D.Turbo", got)
	}
	if got := d.ModeResources(r); got != resource.New(748, 15, 4) {
		t.Errorf("ModeResources = %v", got)
	}
	// Out-of-range refs degrade to positional naming, not panics.
	if got := d.ModeName(ModeRef{Module: 99, Mode: 1}); got != "m99.1" {
		t.Errorf("ModeName(out of range) = %q", got)
	}
	if got := d.ModeName(ModeRef{Module: 0, Mode: 99}); got != "m0.99" {
		t.Errorf("ModeName(bad mode) = %q", got)
	}
}

func TestConfigName(t *testing.T) {
	d := PaperExample()
	if got := d.ConfigName(0); got != "S->A3->B2->C3" {
		t.Errorf("ConfigName(0) = %q", got)
	}
	d.Configurations[0].Name = "boot"
	if got := d.ConfigName(0); got != "boot" {
		t.Errorf("named ConfigName = %q", got)
	}
	s := SingleModeExample()
	if got := s.ConfigName(0); got != "S->C1->F1" {
		t.Errorf("single-mode ConfigName = %q", got)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Design)
		want   string
	}{
		{"no modules", func(d *Design) { d.Modules = nil }, "no modules"},
		{"no configurations", func(d *Design) { d.Configurations = nil }, "no configurations"},
		{"negative static", func(d *Design) { d.Static = resource.New(-1, 0, 0) }, "negative"},
		{"unnamed module", func(d *Design) { d.Modules[0].Name = "" }, "no name"},
		{"duplicate module", func(d *Design) { d.Modules[1].Name = d.Modules[0].Name }, "duplicate module"},
		{"no modes", func(d *Design) { d.Modules[0].Modes = nil }, "no modes"},
		{"unnamed mode", func(d *Design) { d.Modules[0].Modes[0].Name = "" }, "has no name"},
		{"duplicate mode", func(d *Design) { d.Modules[0].Modes[1].Name = d.Modules[0].Modes[0].Name }, "duplicate mode"},
		{"negative mode resources", func(d *Design) {
			d.Modules[0].Modes[0].Resources = resource.New(0, -2, 0)
		}, "negative resources"},
		{"bad config length", func(d *Design) { d.Configurations[0].Modes = []int{1} }, "selects"},
		{"mode out of range", func(d *Design) { d.Configurations[0].Modes[0] = 9 }, "out of range"},
		{"all-zero config", func(d *Design) {
			d.Configurations[0].Modes = make([]int, len(d.Modules))
		}, "activates no modes"},
		{"duplicate config", func(d *Design) {
			d.Configurations[1].Modes = append([]int(nil), d.Configurations[0].Modes...)
		}, "duplicates"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := PaperExample()
			c.mutate(d)
			err := d.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid design")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestSortConfigurations(t *testing.T) {
	d := PaperExample()
	d.SortConfigurations()
	prev := d.Configurations[0].Modes
	for _, c := range d.Configurations[1:] {
		for k := range prev {
			if prev[k] != c.Modes[k] {
				if prev[k] > c.Modes[k] {
					t.Fatalf("configurations not sorted: %v before %v", prev, c.Modes)
				}
				break
			}
		}
		prev = c.Modes
	}
}

func TestConfigModesSkipsAbsent(t *testing.T) {
	d := SingleModeExample()
	m0 := d.ConfigModes(0)
	if len(m0) != 2 {
		t.Fatalf("config 0 active modes = %d, want 2", len(m0))
	}
	m1 := d.ConfigModes(1)
	if len(m1) != 3 {
		t.Fatalf("config 1 active modes = %d, want 3", len(m1))
	}
}

func TestFindMode(t *testing.T) {
	d := VideoReceiver()
	r, err := d.FindMode("D.Turbo")
	if err != nil || r != (ModeRef{Module: 3, Mode: 2}) {
		t.Errorf("FindMode(D.Turbo) = %v, %v", r, err)
	}
	if _, err := d.FindMode("D/Turbo"); err != nil {
		t.Errorf("slash separator rejected: %v", err)
	}
	for _, bad := range []string{"NoDot", "X.Turbo", "D.Nope"} {
		if _, err := d.FindMode(bad); err == nil {
			t.Errorf("FindMode(%q) accepted", bad)
		}
	}
}
