package design

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	for _, d := range []*Design{
		PaperExample(), VideoReceiver(), VideoReceiverModified(),
		TwoModuleExample(), SingleModeExample(),
	} {
		var buf bytes.Buffer
		if err := EncodeJSON(&buf, d); err != nil {
			t.Fatalf("%s: encode: %v", d.Name, err)
		}
		got, err := DecodeJSON(&buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", d.Name, err)
		}
		if !reflect.DeepEqual(got, d) {
			t.Errorf("%s: round trip mismatch:\n got %+v\nwant %+v", d.Name, got, d)
		}
	}
}

func TestDecodeRejectsUnknownModule(t *testing.T) {
	const js = `{
	  "name": "x", "static": {"clb":0,"bram":0,"dsp":0},
	  "modules": [{"name":"A","modes":[{"name":"1","resources":{"clb":1,"bram":0,"dsp":0}}]}],
	  "configurations": [{"modes":{"B":"1"}}]
	}`
	if _, err := DecodeJSON(strings.NewReader(js)); err == nil || !strings.Contains(err.Error(), "unknown module") {
		t.Errorf("want unknown-module error, got %v", err)
	}
}

func TestDecodeRejectsUnknownMode(t *testing.T) {
	const js = `{
	  "name": "x", "static": {"clb":0,"bram":0,"dsp":0},
	  "modules": [{"name":"A","modes":[{"name":"1","resources":{"clb":1,"bram":0,"dsp":0}}]}],
	  "configurations": [{"modes":{"A":"7"}}]
	}`
	if _, err := DecodeJSON(strings.NewReader(js)); err == nil || !strings.Contains(err.Error(), "no mode") {
		t.Errorf("want unknown-mode error, got %v", err)
	}
}

func TestDecodeRejectsInvalidDesign(t *testing.T) {
	// Structurally parseable but semantically invalid: no configurations.
	const js = `{
	  "name": "x", "static": {"clb":0,"bram":0,"dsp":0},
	  "modules": [{"name":"A","modes":[{"name":"1","resources":{"clb":1,"bram":0,"dsp":0}}]}],
	  "configurations": []
	}`
	if _, err := DecodeJSON(strings.NewReader(js)); err == nil {
		t.Error("want validation error for design without configurations")
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	const js = `{"name":"x","bogus":1}`
	if _, err := DecodeJSON(strings.NewReader(js)); err == nil {
		t.Error("want error for unknown JSON field")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeJSON(strings.NewReader("not json")); err == nil {
		t.Error("want error for malformed JSON")
	}
}

func TestEncodeRejectsCorruptConfiguration(t *testing.T) {
	d := PaperExample()
	d.Configurations[0].Modes[0] = 99 // bypassing Validate
	var buf bytes.Buffer
	if err := EncodeJSON(&buf, d); err == nil {
		t.Error("want error encoding out-of-range mode index")
	}
}
