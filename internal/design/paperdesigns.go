package design

import "prpart/internal/resource"

// PaperExample returns the worked example of the paper's §III-A/§IV-C:
// three modules A (3 modes), B (2 modes), C (3 modes) and the five valid
// configurations
//
//	S -> A3 -> B2 -> C3
//	S -> A1 -> B1 -> C1
//	S -> A3 -> B2 -> C1
//	S -> A1 -> B2 -> C2
//	S -> A2 -> B2 -> C3
//
// whose connectivity matrix, node/edge weights and base partitions
// (Table I) are printed in the paper. The paper assigns the example no
// utilisations; the numbers here are synthetic but distinct so that area
// ordering is exercised.
func PaperExample() *Design {
	return &Design{
		Name:   "paper-example",
		Static: resource.New(90, 8, 0),
		Modules: []*Module{
			{Name: "A", Modes: []Mode{
				{Name: "1", Resources: resource.New(120, 0, 2)},
				{Name: "2", Resources: resource.New(200, 2, 4)},
				{Name: "3", Resources: resource.New(80, 0, 0)},
			}},
			{Name: "B", Modes: []Mode{
				{Name: "1", Resources: resource.New(300, 4, 6)},
				{Name: "2", Resources: resource.New(150, 1, 2)},
			}},
			{Name: "C", Modes: []Mode{
				{Name: "1", Resources: resource.New(90, 0, 1)},
				{Name: "2", Resources: resource.New(110, 2, 0)},
				{Name: "3", Resources: resource.New(60, 0, 3)},
			}},
		},
		Configurations: []Configuration{
			{Modes: []int{3, 2, 3}},
			{Modes: []int{1, 1, 1}},
			{Modes: []int{3, 2, 1}},
			{Modes: []int{1, 2, 2}},
			{Modes: []int{2, 2, 3}},
		},
	}
}

// VideoReceiver returns the paper's §V case study: a wireless video
// receiver chain on a Virtex-5 FX70T with five reconfigurable modules.
// The utilisations are Table II verbatim (the paper's "Slices" column used
// directly as CLB counts, matching how Tables IV-V sum them), and the
// configurations are the first (8-configuration) set.
func VideoReceiver() *Design {
	d := &Design{
		Name: "video-receiver",
		// The paper allocates the rest of the FX70T to static logic and
		// gives the PR design an explicit budget instead; Static is left
		// zero and the budget is supplied to the partitioner.
		Modules: []*Module{
			{Name: "F", Modes: []Mode{ // Matched Filter
				{Name: "Filter1", Resources: resource.New(818, 0, 28)},
				{Name: "Filter2", Resources: resource.New(500, 0, 34)},
			}},
			{Name: "R", Modes: []Mode{ // Recovery
				{Name: "Fine", Resources: resource.New(318, 1, 13)},
				{Name: "Coarse1", Resources: resource.New(195, 1, 5)},
				{Name: "Coarse2", Resources: resource.New(123, 0, 8)},
				{Name: "None", Resources: resource.New(0, 0, 0)},
			}},
			{Name: "M", Modes: []Mode{ // Demodulator
				{Name: "BPSK", Resources: resource.New(50, 0, 2)},
				{Name: "QPSK", Resources: resource.New(97, 0, 4)},
			}},
			{Name: "D", Modes: []Mode{ // Decoder (FEC)
				{Name: "Viterbi", Resources: resource.New(630, 2, 0)},
				{Name: "Turbo", Resources: resource.New(748, 15, 4)},
				{Name: "DPC", Resources: resource.New(234, 2, 0)},
			}},
			{Name: "V", Modes: []Mode{ // Decoder (video)
				{Name: "MPEG4", Resources: resource.New(4700, 40, 65)},
				{Name: "MPEG2", Resources: resource.New(4558, 16, 32)},
				{Name: "JPEG", Resources: resource.New(2780, 6, 9)},
			}},
		},
		Configurations: []Configuration{
			// S -> F1 -> R3 -> M1 -> D1 -> V1  (module order F,R,M,D,V)
			{Modes: []int{1, 3, 1, 1, 1}},
			{Modes: []int{1, 3, 1, 1, 2}},
			{Modes: []int{1, 3, 1, 1, 3}},
			{Modes: []int{2, 1, 2, 3, 1}},
			{Modes: []int{2, 2, 1, 1, 1}},
			{Modes: []int{2, 2, 1, 1, 2}},
			{Modes: []int{2, 2, 1, 1, 3}},
			{Modes: []int{1, 2, 1, 2, 2}},
		},
	}
	return d
}

// VideoReceiverModified returns the case study with the second
// (5-configuration) set used for the paper's Table V.
func VideoReceiverModified() *Design {
	d := VideoReceiver()
	d.Name = "video-receiver-modified"
	d.Configurations = []Configuration{
		// S -> F1 -> R3 -> M1 -> D1 -> V1
		{Modes: []int{1, 3, 1, 1, 1}},
		// S -> F1 -> R2 -> M1 -> D1 -> V3
		{Modes: []int{1, 2, 1, 1, 3}},
		// S -> F2 -> R3 -> M1 -> D1 -> V3
		{Modes: []int{2, 3, 1, 1, 3}},
		// S -> F1 -> R1 -> M2 -> D3 -> V1
		{Modes: []int{1, 1, 2, 3, 1}},
		// S -> F2 -> R1 -> M2 -> D3 -> V2
		{Modes: []int{2, 1, 2, 3, 2}},
	}
	return d
}

// CaseStudyBudget is the FX70T resource budget set aside for the PR
// portion of the case study. The paper quotes 6800 CLBs, 50 BRAMs and 150
// DSP slices, but that BRAM figure is inconsistent with its own Table II
// utilisations: the paper's Table III solution needs at least 59 BRAMs
// from Table II data (V's 40 plus Turbo's 15 in separate regions plus
// Recovery's 1), and even the one-module-per-region scheme needs 56. We
// raise the BRAM budget to 64 so the case study retains the paper's shape
// (static infeasible, modular and proposed both fit); see EXPERIMENTS.md.
func CaseStudyBudget() resource.Vector { return resource.New(6800, 64, 150) }

// TwoModuleExample returns the two-module motivating example of §IV-A:
// modules A (small mode A1, large mode A2) and B (large mode B1, small
// mode B2) with valid configurations A1->B1, A2->B2 and A1->B2. It is the
// smallest design on which single-region, one-module-per-region and the
// hybrid static assignment all differ.
func TwoModuleExample() *Design {
	return &Design{
		Name:   "two-module-example",
		Static: resource.New(90, 8, 0),
		Modules: []*Module{
			{Name: "A", Modes: []Mode{
				{Name: "1", Resources: resource.New(100, 0, 0)},
				{Name: "2", Resources: resource.New(400, 0, 0)},
			}},
			{Name: "B", Modes: []Mode{
				{Name: "1", Resources: resource.New(500, 0, 0)},
				{Name: "2", Resources: resource.New(120, 0, 0)},
			}},
		},
		Configurations: []Configuration{
			{Modes: []int{1, 1}},
			{Modes: []int{2, 2}},
			{Modes: []int{1, 2}},
		},
	}
}

// SingleModeExample returns the §IV-D special-condition example borrowed
// from the paper's reference [7]: five single-mode modules (CAN, FIR,
// Ethernet, FPU, CRC) and two configurations with disjoint module sets,
// expressed via mode 0 for absent modules.
func SingleModeExample() *Design {
	one := func(name string, v resource.Vector) *Module {
		return &Module{Name: name, Modes: []Mode{{Name: "1", Resources: v}}}
	}
	return &Design{
		Name:   "single-mode-example",
		Static: resource.New(90, 8, 0),
		Modules: []*Module{
			one("CAN", resource.New(310, 2, 0)),
			one("FIR", resource.New(260, 0, 12)),
			one("Eth", resource.New(420, 4, 0)),
			one("FPU", resource.New(550, 0, 8)),
			one("CRC", resource.New(90, 0, 0)),
		},
		Configurations: []Configuration{
			// CAN -> FIR (Eth, FPU, CRC absent)
			{Modes: []int{1, 1, 0, 0, 0}},
			// Eth -> FPU -> CRC (CAN, FIR absent)
			{Modes: []int{0, 0, 1, 1, 1}},
		},
	}
}
