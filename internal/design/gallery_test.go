package design

import "testing"

func TestGalleryValid(t *testing.T) {
	gallery := Gallery()
	if len(gallery) != 3 {
		t.Fatalf("gallery size = %d, want 3", len(gallery))
	}
	seen := map[string]bool{}
	for _, d := range gallery {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
		if seen[d.Name] {
			t.Errorf("duplicate gallery design %q", d.Name)
		}
		seen[d.Name] = true
		if got, want := len(d.UsedModes()), len(d.AllModes()); got != want {
			t.Errorf("%s: %d/%d modes used — gallery designs should use every mode", d.Name, got, want)
		}
	}
}

func TestSDRTransceiverDisjointPersonalities(t *testing.T) {
	d := SDRTransceiver()
	// Sensing configurations and Rx/Tx configurations share no modules:
	// the §IV-D mode-0 pattern at realistic scale.
	for ci, c := range d.Configurations {
		active := 0
		for _, k := range c.Modes {
			if k != 0 {
				active++
			}
		}
		if ci < 2 && active != 1 {
			t.Errorf("sensing config %d activates %d modules, want 1", ci, active)
		}
		if ci >= 2 && active != 2 {
			t.Errorf("link config %d activates %d modules, want 2", ci, active)
		}
	}
}
