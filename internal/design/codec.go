package design

import (
	"encoding/json"
	"fmt"
	"io"

	"prpart/internal/resource"
)

// jsonDesign is the on-disk JSON schema. Configurations name modes by
// string ("Module": "Mode"), with absent modules simply omitted, which is
// friendlier to hand-written files than index vectors.
type jsonDesign struct {
	Name    string       `json:"name"`
	Static  jsonRes      `json:"static"`
	Modules []jsonModule `json:"modules"`
	Configs []jsonConfig `json:"configurations"`
}

type jsonModule struct {
	Name  string     `json:"name"`
	Modes []jsonMode `json:"modes"`
}

type jsonMode struct {
	Name      string  `json:"name"`
	Resources jsonRes `json:"resources"`
}

type jsonRes struct {
	CLB  int `json:"clb"`
	BRAM int `json:"bram"`
	DSP  int `json:"dsp"`
}

type jsonConfig struct {
	Name  string            `json:"name,omitempty"`
	Modes map[string]string `json:"modes"`
}

// EncodeJSON writes the design to w in the library's JSON schema.
func EncodeJSON(w io.Writer, d *Design) error {
	jd := jsonDesign{
		Name:   d.Name,
		Static: jsonRes{d.Static.CLB, d.Static.BRAM, d.Static.DSP},
	}
	for _, m := range d.Modules {
		jm := jsonModule{Name: m.Name}
		for _, md := range m.Modes {
			jm.Modes = append(jm.Modes, jsonMode{
				Name:      md.Name,
				Resources: jsonRes{md.Resources.CLB, md.Resources.BRAM, md.Resources.DSP},
			})
		}
		jd.Modules = append(jd.Modules, jm)
	}
	for ci, c := range d.Configurations {
		jc := jsonConfig{Name: c.Name, Modes: map[string]string{}}
		for mi, k := range c.Modes {
			if k == 0 {
				continue
			}
			mod := d.Modules[mi]
			if k < 1 || k > len(mod.Modes) {
				return fmt.Errorf("design: configuration %d: mode index %d out of range for module %q", ci, k, mod.Name)
			}
			jc.Modes[mod.Name] = mod.Modes[k-1].Name
		}
		jd.Configs = append(jd.Configs, jc)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jd)
}

// DecodeJSON reads a design from w's JSON representation and validates it.
func DecodeJSON(r io.Reader) (*Design, error) {
	var jd jsonDesign
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jd); err != nil {
		return nil, fmt.Errorf("design: decoding JSON: %w", err)
	}
	d := &Design{
		Name:   jd.Name,
		Static: resource.New(jd.Static.CLB, jd.Static.BRAM, jd.Static.DSP),
	}
	modIdx := make(map[string]int)
	for _, jm := range jd.Modules {
		m := &Module{Name: jm.Name}
		for _, md := range jm.Modes {
			m.Modes = append(m.Modes, Mode{
				Name:      md.Name,
				Resources: resource.New(md.Resources.CLB, md.Resources.BRAM, md.Resources.DSP),
			})
		}
		modIdx[jm.Name] = len(d.Modules)
		d.Modules = append(d.Modules, m)
	}
	for ci, jc := range jd.Configs {
		c := Configuration{Name: jc.Name, Modes: make([]int, len(d.Modules))}
		for modName, modeName := range jc.Modes {
			mi, ok := modIdx[modName]
			if !ok {
				return nil, fmt.Errorf("design: configuration %d names unknown module %q", ci, modName)
			}
			ki := -1
			for idx, md := range d.Modules[mi].Modes {
				if md.Name == modeName {
					ki = idx + 1
					break
				}
			}
			if ki < 0 {
				return nil, fmt.Errorf("design: configuration %d: module %q has no mode %q", ci, modName, modeName)
			}
			c.Modes[mi] = ki
		}
		d.Configurations = append(d.Configurations, c)
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("design: invalid design %q: %w", d.Name, err)
	}
	return d, nil
}
