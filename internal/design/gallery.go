package design

import "prpart/internal/resource"

// Gallery returns a set of realistic adaptive-system designs beyond the
// paper's case study, spanning the application domains its introduction
// motivates (cognitive radio, space/real-time systems, vision). They are
// used by integration tests and the gallery experiment as additional
// fixed workloads with hand-written, domain-plausible utilisations.
func Gallery() []*Design {
	return []*Design{
		SDRTransceiver(),
		VisionPipeline(),
		SatelliteComms(),
	}
}

// SDRTransceiver models a software-defined radio that switches between
// receive and transmit personalities with several waveform options —
// the cognitive-radio pattern of the paper's reference [1], where the
// sensing and transmission chains never co-exist.
func SDRTransceiver() *Design {
	return &Design{
		Name:   "sdr-transceiver",
		Static: resource.New(120, 8, 0),
		Modules: []*Module{
			{Name: "Sense", Modes: []Mode{
				{Name: "Energy", Resources: resource.New(260, 2, 8)},
				{Name: "Feature", Resources: resource.New(1150, 12, 30)},
			}},
			{Name: "RxChain", Modes: []Mode{
				{Name: "NBFM", Resources: resource.New(540, 2, 18)},
				{Name: "OFDM", Resources: resource.New(1900, 18, 52)},
			}},
			{Name: "TxChain", Modes: []Mode{
				{Name: "NBFM", Resources: resource.New(480, 1, 14)},
				{Name: "OFDM", Resources: resource.New(1750, 14, 46)},
			}},
			{Name: "Codec", Modes: []Mode{
				{Name: "Voice", Resources: resource.New(350, 4, 6)},
				{Name: "Data", Resources: resource.New(620, 10, 10)},
			}},
		},
		Configurations: []Configuration{
			// Spectrum sensing sweeps: no Rx/Tx/codec on the fabric.
			{Name: "scan-fast", Modes: []int{1, 0, 0, 0}},
			{Name: "scan-deep", Modes: []int{2, 0, 0, 0}},
			// Receive personalities.
			{Name: "rx-voice", Modes: []int{0, 1, 0, 1}},
			{Name: "rx-data", Modes: []int{0, 2, 0, 2}},
			// Transmit personalities.
			{Name: "tx-voice", Modes: []int{0, 0, 1, 1}},
			{Name: "tx-data", Modes: []int{0, 0, 2, 2}},
		},
	}
}

// VisionPipeline models an adaptive vision system that re-targets its
// pre-processing and detector stages as scene conditions change.
func VisionPipeline() *Design {
	return &Design{
		Name:   "vision-pipeline",
		Static: resource.New(150, 12, 0),
		Modules: []*Module{
			{Name: "PreProc", Modes: []Mode{
				{Name: "Denoise", Resources: resource.New(820, 10, 24)},
				{Name: "HDR", Resources: resource.New(1350, 22, 40)},
				{Name: "LowLight", Resources: resource.New(990, 16, 30)},
			}},
			{Name: "Features", Modes: []Mode{
				{Name: "Edges", Resources: resource.New(460, 4, 12)},
				{Name: "Corners", Resources: resource.New(610, 6, 18)},
			}},
			{Name: "Detector", Modes: []Mode{
				{Name: "Pedestrian", Resources: resource.New(2600, 30, 56)},
				{Name: "Vehicle", Resources: resource.New(2450, 26, 50)},
				{Name: "Generic", Resources: resource.New(1800, 18, 36)},
			}},
		},
		Configurations: []Configuration{
			{Name: "day-road", Modes: []int{1, 1, 2}},
			{Name: "day-urban", Modes: []int{1, 2, 1}},
			{Name: "dusk-road", Modes: []int{2, 1, 2}},
			{Name: "night-urban", Modes: []int{3, 2, 1}},
			{Name: "night-generic", Modes: []int{3, 1, 3}},
		},
	}
}

// SatelliteComms models a space payload that cycles between telemetry,
// payload downlink and safe modes — the domain where the paper argues
// long reconfiguration times are most damaging.
func SatelliteComms() *Design {
	return &Design{
		Name:   "satellite-comms",
		Static: resource.New(200, 16, 0),
		Modules: []*Module{
			{Name: "Mod", Modes: []Mode{
				{Name: "BPSK", Resources: resource.New(90, 0, 4)},
				{Name: "QPSK", Resources: resource.New(150, 0, 8)},
				{Name: "APSK16", Resources: resource.New(420, 2, 20)},
			}},
			{Name: "FEC", Modes: []Mode{
				{Name: "RS", Resources: resource.New(540, 6, 0)},
				{Name: "LDPC", Resources: resource.New(1650, 24, 12)},
			}},
			{Name: "Crypto", Modes: []Mode{
				{Name: "AES", Resources: resource.New(380, 4, 0)},
				{Name: "Bypass", Resources: resource.New(20, 0, 0)},
			}},
			{Name: "Compress", Modes: []Mode{
				{Name: "CCSDS", Resources: resource.New(950, 18, 16)},
				{Name: "None", Resources: resource.New(15, 0, 0)},
			}},
		},
		Configurations: []Configuration{
			{Name: "safe", Modes: []int{1, 1, 2, 2}},
			{Name: "telemetry", Modes: []int{2, 1, 1, 2}},
			{Name: "downlink-low", Modes: []int{2, 2, 1, 1}},
			{Name: "downlink-high", Modes: []int{3, 2, 1, 1}},
			{Name: "emergency", Modes: []int{1, 1, 1, 2}},
		},
	}
}
