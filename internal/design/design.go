// Package design models a partially reconfigurable system the way the
// paper's §III-A describes it: a static region plus a set of reconfigurable
// modules, each with one or more mutually exclusive modes, and a list of
// valid configurations (one mode per module, with "mode 0" denoting that a
// module is absent from a configuration — the paper's §IV-D special case).
package design

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"prpart/internal/resource"
)

// Mode is one mutually exclusive implementation of a module, with its
// post-synthesis resource utilisation.
type Mode struct {
	// Name identifies the mode within its module, e.g. "Viterbi".
	Name string
	// Resources is the utilisation reported by synthesis.
	Resources resource.Vector
}

// Module is a processing unit of the system with one or more modes.
type Module struct {
	// Name identifies the module, e.g. "Decoder".
	Name string
	// Modes are the module's mutually exclusive implementations, in
	// declaration order. Mode indices used elsewhere are 1-based; index 0
	// is reserved for "module absent".
	Modes []Mode
}

// Largest returns the per-resource maximum over the module's modes: the
// region size the one-module-per-region baseline must reserve for it.
func (m *Module) Largest() resource.Vector {
	var v resource.Vector
	for _, md := range m.Modes {
		v = v.Max(md.Resources)
	}
	return v
}

// Sum returns the element-wise sum over the module's modes: the area a
// fully static implementation pays for it.
func (m *Module) Sum() resource.Vector {
	var v resource.Vector
	for _, md := range m.Modes {
		v = v.Add(md.Resources)
	}
	return v
}

// Configuration is one valid operating state: for every module, the
// 1-based index of the active mode, or 0 when the module is absent
// (the paper's "mode 0").
type Configuration struct {
	// Name optionally labels the configuration for reports.
	Name string
	// Modes[i] selects the active mode of module i (1-based), 0 = absent.
	Modes []int
}

// Design is a complete PR system description.
type Design struct {
	// Name labels the design in reports.
	Name string
	// Static is the resource requirement of the always-present static
	// logic (processor, ICAP controller, interconnect).
	Static resource.Vector
	// Modules are the reconfigurable modules.
	Modules []*Module
	// Configurations are the valid operating states.
	Configurations []Configuration
}

// ModeRef identifies one mode globally: module index and 1-based mode
// index within that module.
type ModeRef struct {
	Module int
	Mode   int
}

// String renders the reference using design-independent positional
// notation, e.g. "m0.2".
func (r ModeRef) String() string { return fmt.Sprintf("m%d.%d", r.Module, r.Mode) }

// ModeName returns the human-readable name "Module.Mode" of a reference.
func (d *Design) ModeName(r ModeRef) string {
	if r.Module < 0 || r.Module >= len(d.Modules) {
		return r.String()
	}
	mod := d.Modules[r.Module]
	if r.Mode < 1 || r.Mode > len(mod.Modes) {
		return r.String()
	}
	return mod.Name + "." + mod.Modes[r.Mode-1].Name
}

// ModeResources returns the utilisation of the referenced mode.
func (d *Design) ModeResources(r ModeRef) resource.Vector {
	return d.Modules[r.Module].Modes[r.Mode-1].Resources
}

// AllModes lists every (module, mode) pair in declaration order.
func (d *Design) AllModes() []ModeRef {
	var out []ModeRef
	for mi, m := range d.Modules {
		for k := range m.Modes {
			out = append(out, ModeRef{Module: mi, Mode: k + 1})
		}
	}
	return out
}

// UsedModes lists every mode that appears in at least one configuration,
// in declaration order. Modes that no configuration uses play no part in
// partitioning.
func (d *Design) UsedModes() []ModeRef {
	used := make(map[ModeRef]bool)
	for _, c := range d.Configurations {
		for mi, k := range c.Modes {
			if k != 0 {
				used[ModeRef{Module: mi, Mode: k}] = true
			}
		}
	}
	var out []ModeRef
	for _, r := range d.AllModes() {
		if used[r] {
			out = append(out, r)
		}
	}
	return out
}

// ConfigModes returns the mode references active in configuration ci.
func (d *Design) ConfigModes(ci int) []ModeRef {
	c := d.Configurations[ci]
	var out []ModeRef
	for mi, k := range c.Modes {
		if k != 0 {
			out = append(out, ModeRef{Module: mi, Mode: k})
		}
	}
	return out
}

// ConfigResources returns the total resources of configuration ci's active
// modes (static logic excluded).
func (d *Design) ConfigResources(ci int) resource.Vector {
	var v resource.Vector
	for _, r := range d.ConfigModes(ci) {
		v = v.Add(d.ModeResources(r))
	}
	return v
}

// LargestConfiguration returns the per-resource maximum over all
// configurations of the configuration's total requirement. Per the paper's
// §IV-C this is the minimum possible area for any implementation (the
// single-region lower bound), excluding static logic.
func (d *Design) LargestConfiguration() resource.Vector {
	var v resource.Vector
	for ci := range d.Configurations {
		v = v.Max(d.ConfigResources(ci))
	}
	return v
}

// ConfigName returns a printable name for configuration ci, synthesising
// "S -> F1 -> R3 -> ..." chains when the configuration is unnamed.
func (d *Design) ConfigName(ci int) string {
	c := d.Configurations[ci]
	if c.Name != "" {
		return c.Name
	}
	parts := []string{"S"}
	for mi, k := range c.Modes {
		if k == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s%d", shortName(d.Modules[mi].Name), k))
	}
	return strings.Join(parts, "->")
}

func shortName(s string) string {
	if s == "" {
		return "?"
	}
	return s[:1]
}

// Validate checks structural consistency: non-empty modules and
// configurations, mode indices in range, unique names, no duplicate
// configurations, and every configuration activating at least one mode.
func (d *Design) Validate() error {
	var errs []error
	if len(d.Modules) == 0 {
		errs = append(errs, errors.New("design has no modules"))
	}
	if len(d.Configurations) == 0 {
		errs = append(errs, errors.New("design has no configurations"))
	}
	if !d.Static.IsNonNegative() {
		errs = append(errs, fmt.Errorf("static resources %v negative", d.Static))
	}
	seenMod := make(map[string]bool)
	for mi, m := range d.Modules {
		if m.Name == "" {
			errs = append(errs, fmt.Errorf("module %d has no name", mi))
		}
		if seenMod[m.Name] {
			errs = append(errs, fmt.Errorf("duplicate module name %q", m.Name))
		}
		seenMod[m.Name] = true
		if len(m.Modes) == 0 {
			errs = append(errs, fmt.Errorf("module %q has no modes", m.Name))
		}
		seenMode := make(map[string]bool)
		for ki, md := range m.Modes {
			if md.Name == "" {
				errs = append(errs, fmt.Errorf("module %q mode %d has no name", m.Name, ki+1))
			}
			if seenMode[md.Name] {
				errs = append(errs, fmt.Errorf("module %q: duplicate mode name %q", m.Name, md.Name))
			}
			seenMode[md.Name] = true
			if !md.Resources.IsNonNegative() {
				errs = append(errs, fmt.Errorf("module %q mode %q: negative resources %v",
					m.Name, md.Name, md.Resources))
			}
		}
	}
	seenCfg := make(map[string]bool)
	for ci, c := range d.Configurations {
		if len(c.Modes) != len(d.Modules) {
			errs = append(errs, fmt.Errorf("configuration %d selects %d modules, design has %d",
				ci, len(c.Modes), len(d.Modules)))
			continue
		}
		active := 0
		for mi, k := range c.Modes {
			if k < 0 || k > len(d.Modules[mi].Modes) {
				errs = append(errs, fmt.Errorf("configuration %d: module %q mode index %d out of range [0,%d]",
					ci, d.Modules[mi].Name, k, len(d.Modules[mi].Modes)))
			}
			if k != 0 {
				active++
			}
		}
		if active == 0 {
			errs = append(errs, fmt.Errorf("configuration %d activates no modes", ci))
		}
		key := fmt.Sprint(c.Modes)
		if seenCfg[key] {
			errs = append(errs, fmt.Errorf("configuration %d duplicates an earlier configuration", ci))
		}
		seenCfg[key] = true
	}
	return errors.Join(errs...)
}

// StaticSum returns the area of a fully static implementation: static
// logic plus the sum of every mode of every module (all instantiated
// concurrently behind mode-select multiplexers). The paper's "Static"
// scheme in Table IV.
func (d *Design) StaticSum() resource.Vector {
	v := d.Static
	for _, m := range d.Modules {
		v = v.Add(m.Sum())
	}
	return v
}

// SortConfigurations orders configurations deterministically (by mode
// index vectors) without changing semantics; useful for canonical output.
func (d *Design) SortConfigurations() {
	sort.SliceStable(d.Configurations, func(i, j int) bool {
		a, b := d.Configurations[i].Modes, d.Configurations[j].Modes
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// FindMode resolves a human-readable "Module.Mode" (or "Module/Mode")
// name to a mode reference.
func (d *Design) FindMode(name string) (ModeRef, error) {
	sep := strings.IndexAny(name, "./")
	if sep < 0 {
		return ModeRef{}, fmt.Errorf("design: mode name %q not of the form Module.Mode", name)
	}
	modName, modeName := name[:sep], name[sep+1:]
	for mi, m := range d.Modules {
		if m.Name != modName {
			continue
		}
		for ki, md := range m.Modes {
			if md.Name == modeName {
				return ModeRef{Module: mi, Mode: ki + 1}, nil
			}
		}
		return ModeRef{}, fmt.Errorf("design: module %q has no mode %q", modName, modeName)
	}
	return ModeRef{}, fmt.Errorf("design: no module %q", modName)
}
