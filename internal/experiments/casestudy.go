package experiments

import (
	"fmt"

	"prpart/internal/basepart"
	"prpart/internal/connmat"
	"prpart/internal/cost"
	"prpart/internal/cover"
	"prpart/internal/design"
	"prpart/internal/partition"
	"prpart/internal/report"
	"prpart/internal/scheme"
)

// Table1 reproduces the paper's Table I: the base partitions of the
// worked example with their frequency weights, in covering order.
func Table1() (*report.Table, error) {
	d := design.PaperExample()
	parts, err := basepart.BasePartitions(connmat.New(d))
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Table I: base partitions with their frequency weight",
		"Base Part'n", "Freq wt")
	for _, bp := range cover.Order(parts) {
		t.AddRowf(bp.Label(d), bp.FreqWeight)
	}
	return t, nil
}

// Table2 reproduces the paper's Table II: resource utilisation of the
// case-study reconfigurable modules.
func Table2() *report.Table {
	d := design.VideoReceiver()
	t := report.NewTable("Table II: resource utilisation for reconfigurable modules",
		"Module", "Mode", "CLBs", "BR", "DSP")
	for _, m := range d.Modules {
		for _, md := range m.Modes {
			t.AddRowf(m.Name, md.Name, md.Resources.CLB, md.Resources.BRAM, md.Resources.DSP)
		}
	}
	return t
}

// CaseStudy bundles one run of the case study.
type CaseStudy struct {
	Design   *design.Design
	Proposed *partition.Result
	Modular  cost.Summary
	Single   cost.Summary
	Static   *scheme.Scheme
}

// RunCaseStudy solves a case-study design against the FX70T budget.
func RunCaseStudy(d *design.Design) (*CaseStudy, error) {
	res, err := partition.Solve(d, partition.Options{Budget: design.CaseStudyBudget()})
	if err != nil {
		return nil, fmt.Errorf("experiments: case study %s: %w", d.Name, err)
	}
	cs := &CaseStudy{Design: d, Proposed: res, Static: partition.FullyStatic(d)}
	_, cs.Modular = cost.Evaluate(partition.Modular(d))
	_, cs.Single = cost.Evaluate(partition.SingleRegion(d))
	return cs, nil
}

// PartitionTable renders the proposed scheme's regions in the paper's
// Table III / Table V format.
func (cs *CaseStudy) PartitionTable(title string) *report.Table {
	t := report.NewTable(title, "Region", "Base Partitions")
	if len(cs.Proposed.Scheme.Static) > 0 {
		label := ""
		for i, p := range cs.Proposed.Scheme.Static {
			if i > 0 {
				label += ", "
			}
			label += p.Label(cs.Design)
		}
		t.AddRow("static", label)
	}
	for i := range cs.Proposed.Scheme.Regions {
		r := &cs.Proposed.Scheme.Regions[i]
		t.AddRow(fmt.Sprintf("PRR%d", i+1), r.Label(cs.Design))
	}
	return t
}

// SchemeTable renders the paper's Table IV: resources and total
// reconfiguration time for the static, modular and proposed schemes, plus
// whether each fits the case-study budget.
func (cs *CaseStudy) SchemeTable() *report.Table {
	budget := design.CaseStudyBudget()
	t := report.NewTable("Table IV: properties for different partitioning schemes",
		"Scheme", "CLBs", "BRAMs", "DSPs", "Total Recon. time", "Fits budget")
	add := func(name string, s *scheme.Scheme, total int) {
		r := s.TotalResources()
		t.AddRowf(name, r.CLB, r.BRAM, r.DSP, total, s.FitsIn(budget))
	}
	d := cs.Design
	add("Static", partition.FullyStatic(d), 0)
	add("Modular", partition.Modular(d), cs.Modular.Total)
	add("Single", partition.SingleRegion(d), cs.Single.Total)
	add("Proposed", cs.Proposed.Scheme, cs.Proposed.Summary.Total)
	return t
}

// ImprovementOverModular returns the percentage reduction in total
// reconfiguration time of the proposed scheme relative to modular.
func (cs *CaseStudy) ImprovementOverModular() float64 {
	if cs.Modular.Total == 0 {
		return 0
	}
	return 100 * float64(cs.Modular.Total-cs.Proposed.Summary.Total) / float64(cs.Modular.Total)
}
