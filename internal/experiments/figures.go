package experiments

import (
	"fmt"
	"sort"

	"prpart/internal/device"
	"prpart/internal/report"
)

// SortByDevice orders outcomes the way the paper sorts Figs. 7-8: by the
// proposed algorithm's target FPGA (catalog order), then by proposed
// total reconfiguration time within a device.
func SortByDevice(outs []*Outcome) []*Outcome {
	list := device.SweepCatalog()
	sorted := append([]*Outcome(nil), outs...)
	sort.SliceStable(sorted, func(i, j int) bool {
		di, dj := devIndex(list, sorted[i].ProposedDev), devIndex(list, sorted[j].ProposedDev)
		if di != dj {
			return di < dj
		}
		return sorted[i].Proposed.Total < sorted[j].Proposed.Total
	})
	return sorted
}

// Fig7 builds the total-reconfiguration-time series of the paper's
// Fig. 7: one point per design, sorted by target device, with the
// proposed, one-module-per-region and single-region totals.
func Fig7(outs []*Outcome) *report.Series {
	s := report.NewSeries(
		"Fig. 7: total reconfiguration time (frames), designs sorted by target FPGA",
		"design@device", "Proposed", "1 Module/Region", "Single region")
	for _, o := range SortByDevice(outs) {
		s.Add(fmt.Sprintf("%d@%s", o.Index, shortDev(o.ProposedDev)),
			float64(o.Proposed.Total), float64(o.Modular.Total), float64(o.Single.Total))
	}
	return s
}

// Fig8 builds the worst-case series of the paper's Fig. 8.
func Fig8(outs []*Outcome) *report.Series {
	s := report.NewSeries(
		"Fig. 8: worst-case reconfiguration time (frames), designs sorted by target FPGA",
		"design@device", "Proposed", "1 Module/Region", "Single region")
	for _, o := range SortByDevice(outs) {
		s.Add(fmt.Sprintf("%d@%s", o.Index, shortDev(o.ProposedDev)),
			float64(o.Proposed.Worst), float64(o.Modular.Worst), float64(o.Single.Worst))
	}
	return s
}

// DeviceBuckets summarises Figs. 7-8 per target device: design count and
// mean totals per scheme — the readable form of the figure.
func DeviceBuckets(outs []*Outcome) *report.Table {
	list := device.SweepCatalog()
	type agg struct {
		n                      int
		pTot, mTot, sTot       float64
		pWorst, mWorst, sWorst float64
	}
	byDev := make(map[string]*agg)
	for _, o := range outs {
		a := byDev[o.ProposedDev]
		if a == nil {
			a = &agg{}
			byDev[o.ProposedDev] = a
		}
		a.n++
		a.pTot += float64(o.Proposed.Total)
		a.mTot += float64(o.Modular.Total)
		a.sTot += float64(o.Single.Total)
		a.pWorst += float64(o.Proposed.Worst)
		a.mWorst += float64(o.Modular.Worst)
		a.sWorst += float64(o.Single.Worst)
	}
	t := report.NewTable("Figs. 7-8 summary: mean reconfiguration time per target device (frames)",
		"Device", "Designs", "Prop tot", "Mod tot", "Single tot",
		"Prop worst", "Mod worst", "Single worst")
	for _, d := range list {
		a := byDev[d.Name]
		if a == nil {
			continue
		}
		n := float64(a.n)
		t.AddRowf(shortDev(d.Name), a.n,
			fmt.Sprintf("%.0f", a.pTot/n), fmt.Sprintf("%.0f", a.mTot/n),
			fmt.Sprintf("%.0f", a.sTot/n), fmt.Sprintf("%.0f", a.pWorst/n),
			fmt.Sprintf("%.0f", a.mWorst/n), fmt.Sprintf("%.0f", a.sWorst/n))
	}
	return t
}

// pctChange returns the percentage improvement of got over base: positive
// means got is better (smaller).
func pctChange(base, got int) float64 {
	if base == 0 {
		if got == 0 {
			return 0
		}
		return -100
	}
	return 100 * float64(base-got) / float64(base)
}

// Fig9 builds the four percentage-improvement histograms of the paper's
// Fig. 9: total time vs (a) one-module-per-region and (b) single-region,
// and worst-case time vs (c) one-module-per-region and (d) single-region.
func Fig9(outs []*Outcome) [4]*report.Histogram {
	mk := func(title string) *report.Histogram {
		return report.NewHistogram(title, -10, 100, 10)
	}
	hs := [4]*report.Histogram{
		mk("Fig. 9(a): % total-time change vs one module per region"),
		mk("Fig. 9(b): % total-time change vs single region"),
		mk("Fig. 9(c): % worst-time change vs one module per region"),
		mk("Fig. 9(d): % worst-time change vs single region"),
	}
	for _, o := range outs {
		hs[0].Add(pctChange(o.Modular.Total, o.Proposed.Total))
		hs[1].Add(pctChange(o.Single.Total, o.Proposed.Total))
		hs[2].Add(pctChange(o.Modular.Worst, o.Proposed.Worst))
		hs[3].Add(pctChange(o.Single.Worst, o.Proposed.Worst))
	}
	return hs
}

// Claims aggregates the scalar statements of §V.
type Claims struct {
	// Designs is the corpus size.
	Designs int
	// TotalBetterThanModular counts designs where the proposed total is
	// strictly below one-module-per-region (paper: 73%).
	TotalBetterThanModular int
	// TotalEqualModular counts ties.
	TotalEqualModular int
	// TotalWorseThanSingle counts designs where the proposed total
	// exceeds the single-region total (paper: none).
	TotalWorseThanSingle int
	// WorstBetterThanModular counts strictly better worst-case times
	// (paper: 70%).
	WorstBetterThanModular int
	// WorstWorseThanModular counts strictly worse (paper: 3 designs).
	WorstWorseThanModular int
	// WorstBetterOrEqualSingle counts designs where the proposed
	// worst-case improves on or matches single-region (paper: 87.5%).
	WorstBetterOrEqualSingle int
	// Upsized counts designs needing a device above the single-region
	// minimum (paper: 201).
	Upsized int
	// SmallerThanModular counts designs fitting a smaller device than
	// modular requires (paper: 13).
	SmallerThanModular int
	// FallbackSingle counts designs with no multi-region scheme at all.
	FallbackSingle int
}

// ComputeClaims tallies the scalar claims over a corpus.
func ComputeClaims(outs []*Outcome) Claims {
	var c Claims
	c.Designs = len(outs)
	for _, o := range outs {
		switch {
		case o.Proposed.Total < o.Modular.Total:
			c.TotalBetterThanModular++
		case o.Proposed.Total == o.Modular.Total:
			c.TotalEqualModular++
		}
		if o.Proposed.Total > o.Single.Total {
			c.TotalWorseThanSingle++
		}
		switch {
		case o.Proposed.Worst < o.Modular.Worst:
			c.WorstBetterThanModular++
		case o.Proposed.Worst > o.Modular.Worst:
			c.WorstWorseThanModular++
		}
		if o.Proposed.Worst <= o.Single.Worst {
			c.WorstBetterOrEqualSingle++
		}
		if o.Upsized {
			c.Upsized++
		}
		if o.SmallerThanModular {
			c.SmallerThanModular++
		}
		if o.FallbackSingle {
			c.FallbackSingle++
		}
	}
	return c
}

// Table renders the claims next to the paper's reported numbers.
func (c Claims) Table() *report.Table {
	t := report.NewTable("Scalar claims: measured vs paper",
		"Claim", "Measured", "Paper")
	pct := func(n int) string {
		if c.Designs == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.1f%% (%d/%d)", 100*float64(n)/float64(c.Designs), n, c.Designs)
	}
	t.AddRow("total better than 1M/R", pct(c.TotalBetterThanModular), "73%")
	t.AddRow("total equal to 1M/R", pct(c.TotalEqualModular), "-")
	t.AddRow("total worse than single region", pct(c.TotalWorseThanSingle), "0%")
	t.AddRow("worst better than 1M/R", pct(c.WorstBetterThanModular), "70%")
	t.AddRow("worst worse than 1M/R", fmt.Sprintf("%d designs", c.WorstWorseThanModular), "3 designs")
	t.AddRow("worst better/equal single region", pct(c.WorstBetterOrEqualSingle), "87.5%")
	t.AddRow("re-iterated on larger FPGA", fmt.Sprintf("%d designs", c.Upsized), "201 designs")
	t.AddRow("fits smaller FPGA than 1M/R", fmt.Sprintf("%d designs", c.SmallerThanModular), "13 designs")
	t.AddRow("single-region fallback", fmt.Sprintf("%d designs", c.FallbackSingle), "-")
	return t
}

func shortDev(name string) string {
	const prefix = "XC5V"
	if len(name) > len(prefix) && name[:len(prefix)] == prefix {
		return name[len(prefix):]
	}
	return name
}
