package experiments

import (
	"fmt"

	"prpart/internal/design"
	"prpart/internal/partition"
	"prpart/internal/report"
)

// GalleryTable runs the full evaluation procedure on the realistic
// gallery designs (SDR transceiver, vision pipeline, satellite comms) —
// fixed workloads complementing the §V random corpus. For each design it
// reports the smallest device, the three schemes' totals, and the
// improvement of the proposed scheme.
func GalleryTable() (*report.Table, error) {
	t := report.NewTable("Gallery: realistic adaptive systems (totals in frames)",
		"Design", "Device", "Proposed", "1M/R", "Single", "vs 1M/R", "Static parts")
	for i, d := range design.Gallery() {
		o, err := EvaluateDesign(i, d, partition.Options{})
		if err != nil {
			return nil, fmt.Errorf("experiments: gallery %s: %w", d.Name, err)
		}
		t.AddRowf(d.Name, shortDev(o.ProposedDev),
			o.Proposed.Total, o.Modular.Total, o.Single.Total,
			fmt.Sprintf("%.1f%%", pctChange(o.Modular.Total, o.Proposed.Total)),
			len(o.ProposedScheme.Static))
	}
	return t, nil
}
