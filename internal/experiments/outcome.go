// Package experiments reproduces every table and figure of the paper's
// evaluation (§V): the worked example's base partitions (Table I), the
// wireless video receiver case study (Tables II-V), and the 1000-design
// synthetic sweep (Figs. 7-9 plus the scalar claims). The drivers are
// shared by the benchmark harness (bench_test.go) and cmd/prbench.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"prpart/internal/cost"
	"prpart/internal/design"
	"prpart/internal/device"
	"prpart/internal/partition"
	"prpart/internal/scheme"
)

// Outcome is the result of evaluating all three schemes for one design,
// following the paper's §V procedure: the single-region scheme determines
// the smallest candidate FPGA; the proposed algorithm is run there and
// re-run on the next larger device until it finds a feasible scheme.
type Outcome struct {
	// Index is the design's position in the corpus.
	Index int
	// Name echoes the design name.
	Name string

	// Proposed, Modular, Single are the scheme metrics (frames).
	Proposed, Modular, Single cost.Summary

	// ProposedDev, ModularDev, SingleDev are the smallest devices each
	// scheme fits (by the sweep-catalog ordering).
	ProposedDev, ModularDev, SingleDev string

	// Upsized reports that the proposed algorithm had to move past the
	// single-region minimum device (the paper's 201/1000).
	Upsized bool
	// SmallerThanModular reports that the proposed scheme fits a smaller
	// device than the modular scheme requires (the paper's 13/1000).
	SmallerThanModular bool
	// FallbackSingle reports that no multi-region scheme fit any catalog
	// device and the single-region scheme was used as the proposed
	// result.
	FallbackSingle bool

	// ProposedScheme is retained for detailed reporting.
	ProposedScheme *scheme.Scheme
}

// devIndex returns the position of a device in the sweep catalog.
func devIndex(list []*device.Device, name string) int {
	for i, d := range list {
		if d.Name == name {
			return i
		}
	}
	return -1
}

// smallestFor returns the first device in list that fits the scheme.
func smallestFor(list []*device.Device, s *scheme.Scheme) (*device.Device, error) {
	need := s.TotalResources()
	for _, d := range list {
		if need.FitsIn(d.Capacity) {
			return d, nil
		}
	}
	return nil, fmt.Errorf("experiments: scheme %s (%v) exceeds the largest sweep device", s.Name, need)
}

// Solver abstracts the partitioning engine the sweep drives: the direct
// search engine (partition.Solve) or the multilevel chain
// (multilevel.Solver). The budget arrives inside opts.
type Solver func(d *design.Design, opts partition.Options) (*partition.Result, error)

// EvaluateDesign runs the full §V procedure for one design against the
// sweep catalog with the standard engine. When opts.Obs is set it
// maintains counters experiments.designs, experiments.upsized,
// experiments.fallback_single and experiments.smaller_than_modular, and
// timer experiments.evaluate.
func EvaluateDesign(index int, d *design.Design, opts partition.Options) (*Outcome, error) {
	return EvaluateDesignSolver(index, d, opts, partition.Solve)
}

// EvaluateDesignSolver is EvaluateDesign with an injected engine.
func EvaluateDesignSolver(index int, d *design.Design, opts partition.Options, solve Solver) (*Outcome, error) {
	stopEval := opts.Obs.Timer("experiments.evaluate").Time()
	defer stopEval()
	list := device.SweepCatalog()
	out := &Outcome{Index: index, Name: d.Name}

	single := partition.SingleRegion(d)
	modular := partition.Modular(d)
	_, out.Single = cost.Evaluate(single)
	_, out.Modular = cost.Evaluate(modular)

	singleDev, err := smallestFor(list, single)
	if err != nil {
		return nil, err
	}
	out.SingleDev = singleDev.Name
	if modularDev, err := smallestFor(list, modular); err == nil {
		out.ModularDev = modularDev.Name
	}

	// The proposed algorithm: start on the single-region minimum device,
	// escalate while no feasible multi-region scheme exists.
	start := devIndex(list, singleDev.Name)
	for i := start; i < len(list); i++ {
		o := opts
		o.Budget = list[i].Capacity
		res, err := solve(d, o)
		if err == nil {
			out.Proposed = res.Summary
			out.ProposedDev = list[i].Name
			out.ProposedScheme = res.Scheme
			out.Upsized = i > start
			break
		}
		if err != partition.ErrNoScheme && err != partition.ErrInfeasible {
			return nil, fmt.Errorf("experiments: design %s on %s: %w", d.Name, list[i].Name, err)
		}
	}
	if out.ProposedDev == "" {
		// No multi-region scheme on any device: fall back to the
		// single-region scheme on its own minimum device.
		out.Proposed = out.Single
		out.Proposed.Name = "proposed(single)"
		out.ProposedDev = singleDev.Name
		out.ProposedScheme = single
		out.FallbackSingle = true
	}
	if out.ModularDev != "" {
		out.SmallerThanModular = devIndex(list, out.ProposedDev) < devIndex(list, out.ModularDev)
	}
	if o := opts.Obs; o != nil {
		o.Counter("experiments.designs").Inc()
		if out.Upsized {
			o.Counter("experiments.upsized").Inc()
		}
		if out.FallbackSingle {
			o.Counter("experiments.fallback_single").Inc()
		}
		if out.SmallerThanModular {
			o.Counter("experiments.smaller_than_modular").Inc()
		}
	}
	return out, nil
}

// Sweep evaluates a corpus in parallel with the standard engine,
// preserving input order. Workers defaults to GOMAXPROCS when <= 0.
func Sweep(designs []*design.Design, opts partition.Options, workers int) ([]*Outcome, error) {
	return SweepSolver(designs, opts, workers, partition.Solve)
}

// SweepSolver is Sweep with an injected engine (the -multilevel sweep
// hands multilevel.Solver here).
func SweepSolver(designs []*design.Design, opts partition.Options, workers int, solve Solver) ([]*Outcome, error) {
	stopSweep := opts.Obs.Timer("experiments.sweep").Time()
	defer stopSweep()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	outs := make([]*Outcome, len(designs))
	errs := make([]error, len(designs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				outs[i], errs[i] = EvaluateDesignSolver(i, designs[i], opts, solve)
			}
		}()
	}
	for i := range designs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("design %d: %w", i, err)
		}
	}
	return outs, nil
}
