package experiments

import (
	"fmt"
	"math/rand"

	"prpart/internal/cost"
	"prpart/internal/design"
	"prpart/internal/partition"
	"prpart/internal/report"
)

// AblationVariant names one configuration of the search under test.
type AblationVariant struct {
	// Name labels the variant in the report.
	Name string
	// Opts are the search options (Budget is filled per device).
	Opts partition.Options
}

// AblationVariants returns the design-choice ablations called out in
// DESIGN.md: the full algorithm, static promotion disabled (A1), greedy
// descent without restarts (A2), idealised (non-quantised) search
// guidance (A3), and reversed covering order (A5). A4, the
// transition-probability weighting, is exercised by WeightedCaseStudy.
func AblationVariants() []AblationVariant {
	return []AblationVariant{
		{Name: "full", Opts: partition.Options{}},
		{Name: "no-static (A1)", Opts: partition.Options{NoStatic: true}},
		{Name: "greedy-only (A2)", Opts: partition.Options{GreedyOnly: true}},
		{Name: "no-quantize (A3)", Opts: partition.Options{NoQuantize: true}},
		{Name: "descending-cover (A5)", Opts: partition.Options{CoverDescending: true}},
	}
}

// Ablation runs every variant over the corpus and reports the aggregate
// total reconfiguration time and win counts relative to the full
// algorithm.
func Ablation(designs []*design.Design, workers int) (*report.Table, error) {
	variants := AblationVariants()
	totals := make([][]int, len(variants))
	sameDev := make([][]bool, len(variants))
	devs := make([][]string, len(variants))
	var fallbacks, upsized []int
	for vi, v := range variants {
		outs, err := Sweep(designs, v.Opts, workers)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %s: %w", v.Name, err)
		}
		totals[vi] = make([]int, len(outs))
		devs[vi] = make([]string, len(outs))
		fb, up := 0, 0
		for i, o := range outs {
			totals[vi][i] = o.Proposed.Total
			devs[vi][i] = o.ProposedDev
			if o.FallbackSingle {
				fb++
			}
			if o.Upsized {
				up++
			}
		}
		fallbacks = append(fallbacks, fb)
		upsized = append(upsized, up)
	}
	// Totals are only comparable on the same device: a weaker search that
	// escalates to a larger FPGA can post a lower reconfiguration time by
	// spending silicon instead. Count wins/losses on same-device designs
	// and report device escalation separately.
	for vi := range variants {
		sameDev[vi] = make([]bool, len(designs))
		for i := range designs {
			sameDev[vi][i] = devs[vi][i] == devs[0][i]
		}
	}
	t := report.NewTable("Ablation: search variants over the corpus (same-device comparisons)",
		"Variant", "Sum total (frames)", "Worse than full", "Better than full",
		"Larger device", "Upsized", "Fallbacks")
	for vi, v := range variants {
		sum, worse, better, bigger := 0, 0, 0, 0
		for i := range totals[vi] {
			sum += totals[vi][i]
			if !sameDev[vi][i] {
				bigger++
				continue
			}
			if totals[vi][i] > totals[0][i] {
				worse++
			}
			if totals[vi][i] < totals[0][i] {
				better++
			}
		}
		t.AddRowf(v.Name, sum, worse, better, bigger, upsized[vi], fallbacks[vi])
	}
	return t, nil
}

// WeightedCaseStudy evaluates the paper's future-work extension (A4):
// under a skewed transition-probability distribution, compare the
// probability-weighted expected reconfiguration time of the proposed,
// modular and single-region schemes for the case study. The probability
// matrix is drawn deterministically from the seed.
func WeightedCaseStudy(seed int64) (*report.Table, error) {
	d := design.VideoReceiver()
	cs, err := RunCaseStudy(d)
	if err != nil {
		return nil, err
	}
	n := len(d.Configurations)
	rng := rand.New(rand.NewSource(seed))
	prob := make([][]float64, n)
	var norm float64
	for i := range prob {
		prob[i] = make([]float64, n)
		for j := range prob[i] {
			if i != j {
				p := rng.Float64() * rng.Float64() // skewed toward small
				prob[i][j] = p
				norm += p
			}
		}
	}
	for i := range prob {
		for j := range prob[i] {
			prob[i][j] /= norm
		}
	}
	// The weighted-objective search (the future-work extension made
	// first-class in partition.Options.TransitionWeights).
	wres, err := partition.Solve(d, partition.Options{
		Budget:            design.CaseStudyBudget(),
		TransitionWeights: prob,
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable("A4: probability-weighted expected reconfiguration time (frames/transition)",
		"Scheme", "Uniform total", "Weighted expectation")
	for _, row := range []struct {
		name string
		m    cost.Matrix
	}{
		{"Proposed (uniform objective)", cost.Transitions(cs.Proposed.Scheme)},
		{"Proposed (weighted objective)", cost.Transitions(wres.Scheme)},
		{"Modular", cost.Transitions(partition.Modular(d))},
		{"Single", cost.Transitions(partition.SingleRegion(d))},
	} {
		w, err := row.m.Weighted(prob)
		if err != nil {
			return nil, err
		}
		t.AddRowf(row.name, row.m.Total(), fmt.Sprintf("%.1f", w))
	}
	return t, nil
}
