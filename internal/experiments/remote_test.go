package experiments

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prpart/internal/design"
	"prpart/internal/partition"
	"prpart/internal/resource"
	"prpart/internal/serve"
	"prpart/internal/store"
	"prpart/internal/synthetic"
)

// normalizeOutcome strips the one field the wire result cannot carry
// (the scheme object) so remote and in-process outcomes compare with
// reflect.DeepEqual over everything that feeds the paper's figures and
// claims: all three summaries, all three devices, and the three flags.
func normalizeOutcome(o *Outcome) Outcome {
	c := *o
	c.ProposedScheme = nil
	return c
}

func assertOutcomesIdentical(t *testing.T, got, want []*Outcome, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d outcomes, want %d", label, len(got), len(want))
	}
	bad := 0
	for i := range want {
		g, w := normalizeOutcome(got[i]), normalizeOutcome(want[i])
		if !reflect.DeepEqual(g, w) {
			bad++
			if bad <= 3 {
				t.Errorf("%s: design %d (%s) diverges:\n remote     %+v\n in-process %+v", label, i, want[i].Name, g, w)
			}
		}
	}
	if bad > 0 {
		t.Fatalf("%s: %d/%d outcomes diverge from the in-process sweep", label, bad, len(want))
	}
}

// TestRemoteBatchSweepParity runs the §V sweep over 100 synthetic
// designs twice — in process, then as a /v1/solve/batch client of a
// booted daemon — and requires metric-identical outcomes. This is the
// tentpole's end-to-end contract: the batch surface canonicalizes,
// keys, schedules and solves exactly like the library call.
func TestRemoteBatchSweepParity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	designs := synthetic.Generate(7, 100)
	local, err := Sweep(designs, partition.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}

	srv := serve.New(serve.Config{Workers: 8})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	b := NewBatcher(RemoteConfig{BaseURL: ts.URL, BatchSize: 8})
	defer b.Close()
	remote, err := SweepSolver(designs, partition.Options{}, 8, b.Solver())
	if err != nil {
		t.Fatal(err)
	}
	assertOutcomesIdentical(t, remote, local, "batch sweep")

	// The claims pipeline consumes remote outcomes unchanged.
	if rc, lc := ComputeClaims(remote), ComputeClaims(local); rc != lc {
		t.Errorf("claims diverge: remote %+v, local %+v", rc, lc)
	}

	// The daemon saw batched traffic, not 100 lone solves.
	snap := srv.Obs().Snapshot()
	if snap.Counters["serve.batches"] == 0 {
		t.Error("no /v1/solve/batch requests reached the daemon")
	}
}

// hostSwitch routes every request to the currently-live daemon, giving
// the chaos test a stable BaseURL across a kill/restart.
type hostSwitch struct {
	mu   sync.Mutex
	base *url.URL
}

func (h *hostSwitch) set(raw string) {
	u, err := url.Parse(raw)
	if err != nil {
		panic(err)
	}
	h.mu.Lock()
	h.base = u
	h.mu.Unlock()
}

func (h *hostSwitch) RoundTrip(r *http.Request) (*http.Response, error) {
	h.mu.Lock()
	base := h.base
	h.mu.Unlock()
	r2 := r.Clone(r.Context())
	r2.URL.Scheme = base.Scheme
	r2.URL.Host = base.Host
	return http.DefaultTransport.RoundTrip(r2)
}

// TestRemoteAsyncSweepSurvivesRestart is the chaos acceptance test: a
// 100-design sweep driven through the async job API, with the daemon
// killed and restarted (same persistent store) mid-sweep. The sweep
// must complete with no lost designs, no duplicated outcomes, and
// metrics identical to the in-process run — lost in-flight jobs are
// resubmitted by the client and answered idempotently through the
// content-addressed store.
func TestRemoteAsyncSweepSurvivesRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	designs := synthetic.Generate(7, 100)
	local, err := Sweep(designs, partition.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}

	// The store shared across daemon lives. With PRPART_JOBS_ARTIFACTS
	// set (the CI e2e job), it lives on the real filesystem so a failure
	// leaves the ledger — every persisted job record and result — behind
	// for the artifact-upload step; otherwise it is a MemFS.
	scfg := store.Config{Dir: "chaos", FS: store.NewMemFS()}
	if dir := os.Getenv("PRPART_JOBS_ARTIFACTS"); dir != "" {
		scfg = store.Config{Dir: filepath.Join(dir, "async-sweep-store")}
		if err := os.MkdirAll(scfg.Dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	openStore := func() *store.Store {
		st, err := store.Open(scfg)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	type daemonLife struct {
		srv *serve.Server
		ts  *httptest.Server
		st  *store.Store
	}
	boot := func() daemonLife {
		st := openStore()
		srv := serve.New(serve.Config{Workers: 4, Store: st})
		return daemonLife{srv: srv, ts: httptest.NewServer(srv.Handler()), st: st}
	}
	kill := func(l daemonLife) {
		l.ts.CloseClientConnections()
		l.ts.Close()
		l.srv.Close()
		l.st.Close()
	}

	life1 := boot()
	hs := &hostSwitch{}
	hs.set(life1.ts.URL)
	cfg := RemoteConfig{
		BaseURL:      "http://daemon.invalid",
		Client:       &http.Client{Transport: hs},
		PollInterval: 5 * time.Millisecond,
		RetryBase:    20 * time.Millisecond,
		MaxAttempts:  200,
	}

	// Count completed solves so the kill lands mid-sweep, after some
	// results are already persisted and others are queued or running.
	var completed atomic.Int64
	inner := AsyncSolver(cfg)
	counting := func(d *design.Design, opts partition.Options) (*partition.Result, error) {
		res, err := inner(d, opts)
		if err == nil {
			completed.Add(1)
		}
		return res, err
	}

	sweepDone := make(chan struct{})
	var restarted sync.WaitGroup
	restarted.Add(1)
	go func() {
		defer restarted.Done()
		for completed.Load() < 15 {
			select {
			case <-sweepDone: // sweep failed before the kill point
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
		// Kill: drop every client connection, then tear the daemon down.
		kill(life1)
		// Restart on the same store; point the stable URL at the new life.
		life2 := boot()
		hs.set(life2.ts.URL)
		t.Cleanup(func() { kill(life2) })
	}()

	remote, err := SweepSolver(designs, partition.Options{}, 8, counting)
	close(sweepDone)
	restarted.Wait()
	if err != nil {
		t.Fatal(err)
	}
	assertOutcomesIdentical(t, remote, local, "async sweep across restart")

	// No lost or duplicated work: exactly one outcome per design, in
	// corpus order.
	seen := map[string]bool{}
	for i, o := range remote {
		if o == nil || o.Index != i || o.Name != designs[i].Name {
			t.Fatalf("outcome %d is %+v, want design %s at its own index", i, o, designs[i].Name)
		}
		if seen[o.Name] {
			t.Fatalf("design %s appears twice in the sweep output", o.Name)
		}
		seen[o.Name] = true
	}
}

// TestRemoteAsyncSingleSolve exercises the submit/poll/fetch path
// without chaos: one design, metric-identical to the library call.
func TestRemoteAsyncSingleSolve(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	d := design.PaperExample()
	solver := AsyncSolver(RemoteConfig{BaseURL: ts.URL, PollInterval: 5 * time.Millisecond})
	local, err := EvaluateDesign(0, d, partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	remote, err := EvaluateDesignSolver(0, d, partition.Options{}, solver)
	if err != nil {
		t.Fatal(err)
	}
	assertOutcomesIdentical(t, []*Outcome{remote}, []*Outcome{local}, "async single")
	if n := srv.Obs().Snapshot().Counters["serve.jobs_submitted"]; n == 0 {
		t.Error("no async jobs reached the daemon")
	}
}

// TestRemoteBatcherNoURL pins the misconfiguration path: a batcher
// with neither BaseURL nor URLs fails each solve immediately with a
// configuration error — no panic in the URL rotation, no retry burn.
func TestRemoteBatcherNoURL(t *testing.T) {
	b := NewBatcher(RemoteConfig{})
	defer b.Close()
	_, err := b.Solver()(design.PaperExample(), partition.Options{})
	if err == nil || !strings.Contains(err.Error(), "no daemon") {
		t.Fatalf("solve with no URL: %v", err)
	}
}

// TestRemoteBatchInfeasibleEscalates pins the sentinel contract: a 422
// from the daemon must come back as partition.ErrNoScheme itself so the
// escalation loop keeps walking the device catalog instead of aborting.
func TestRemoteBatchInfeasibleEscalates(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	b := NewBatcher(RemoteConfig{BaseURL: ts.URL})
	defer b.Close()
	solver := b.Solver()

	d := design.PaperExample()
	// A budget far too small for any scheme at all.
	_, err := solver(d, partition.Options{Budget: resource.New(1, 0, 0)})
	if err == nil {
		t.Fatal("one-CLB budget was feasible")
	}
	if err != partition.ErrNoScheme && err != partition.ErrInfeasible {
		t.Fatalf("infeasible remote solve returned %v, want the exact partition sentinel", err)
	}
}
