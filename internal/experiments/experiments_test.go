package experiments

import (
	"strings"
	"testing"

	"prpart/internal/design"
	"prpart/internal/partition"
	"prpart/internal/synthetic"
)

func TestTable1MatchesPaper(t *testing.T) {
	tab, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 26 {
		t.Errorf("Table I rows = %d, want 26", len(tab.Rows))
	}
	out := tab.String()
	// Spot-check the paper's distinctive rows.
	for _, want := range []string{"{B.2}", "4", "{A.3, B.2, C.3}"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestTable2EchoesUtilisations(t *testing.T) {
	out := Table2().String()
	for _, want := range []string{"Viterbi", "4700", "818", "MPEG4"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing %q", want)
		}
	}
	if len(Table2().Rows) != 14 {
		t.Errorf("Table II rows = %d, want 14", len(Table2().Rows))
	}
}

func TestCaseStudyTables(t *testing.T) {
	cs, err := RunCaseStudy(design.VideoReceiver())
	if err != nil {
		t.Fatal(err)
	}
	if imp := cs.ImprovementOverModular(); imp <= 0 || imp > 25 {
		t.Errorf("improvement over modular = %.1f%%, expected a small positive percentage", imp)
	}
	t3 := cs.PartitionTable("Table III").String()
	if !strings.Contains(t3, "PRR1") {
		t.Errorf("Table III missing PRR1:\n%s", t3)
	}
	t4 := cs.SchemeTable().String()
	for _, want := range []string{"Static", "Modular", "Proposed", "false", "true"} {
		if !strings.Contains(t4, want) {
			t.Errorf("Table IV missing %q:\n%s", want, t4)
		}
	}
}

func TestCaseStudyModified(t *testing.T) {
	cs, err := RunCaseStudy(design.VideoReceiverModified())
	if err != nil {
		t.Fatal(err)
	}
	// Table V shape: the modified set's total is far below the original's.
	orig, err := RunCaseStudy(design.VideoReceiver())
	if err != nil {
		t.Fatal(err)
	}
	if cs.Proposed.Summary.Total >= orig.Proposed.Summary.Total/2 {
		t.Errorf("modified total %d not well below original %d",
			cs.Proposed.Summary.Total, orig.Proposed.Summary.Total)
	}
}

func TestEvaluateDesignCanned(t *testing.T) {
	o, err := EvaluateDesign(0, design.VideoReceiver(), partition.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if o.SingleDev == "" || o.ProposedDev == "" {
		t.Fatalf("missing devices: %+v", o)
	}
	if o.Proposed.Total > o.Single.Total {
		t.Errorf("proposed %d worse than single %d", o.Proposed.Total, o.Single.Total)
	}
	if o.FallbackSingle {
		t.Error("case study should not need the single-region fallback")
	}
}

func sweepOutcomes(t *testing.T, n int) []*Outcome {
	t.Helper()
	designs := synthetic.Generate(1, n)
	outs, err := Sweep(designs, partition.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return outs
}

func TestSweepShapeInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	outs := sweepOutcomes(t, 60)
	claims := ComputeClaims(outs)
	if claims.Designs != 60 {
		t.Fatalf("claims over %d designs", claims.Designs)
	}
	// The headline shape: proposed never loses to the single-region
	// scheme on total time.
	if claims.TotalWorseThanSingle > 0 {
		for _, o := range outs {
			if o.Proposed.Total > o.Single.Total {
				t.Errorf("design %d (%s): proposed %d > single %d",
					o.Index, o.Name, o.Proposed.Total, o.Single.Total)
			}
		}
	}
	// Proposed should beat or match modular on a clear majority.
	if claims.TotalBetterThanModular+claims.TotalEqualModular < claims.Designs*6/10 {
		t.Errorf("proposed better-or-equal modular on only %d+%d of %d designs",
			claims.TotalBetterThanModular, claims.TotalEqualModular, claims.Designs)
	}
	// Devices must be consistent: proposed device never below single's.
	for _, o := range outs {
		if o.Upsized && o.ProposedDev == o.SingleDev {
			t.Errorf("design %d flagged upsized but device unchanged", o.Index)
		}
	}
}

func TestFigureBuilders(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	outs := sweepOutcomes(t, 24)
	f7 := Fig7(outs)
	if len(f7.Labels) != len(outs) {
		t.Errorf("Fig7 points = %d, want %d", len(f7.Labels), len(outs))
	}
	f8 := Fig8(outs)
	if len(f8.Labels) != len(outs) {
		t.Errorf("Fig8 points = %d, want %d", len(f8.Labels), len(outs))
	}
	sorted := SortByDevice(outs)
	if len(sorted) != len(outs) {
		t.Fatal("SortByDevice lost designs")
	}
	hs := Fig9(outs)
	for i, h := range hs {
		if h.Total() != len(outs) {
			t.Errorf("Fig9[%d] samples = %d, want %d", i, h.Total(), len(outs))
		}
	}
	buckets := DeviceBuckets(outs)
	if len(buckets.Rows) == 0 {
		t.Error("DeviceBuckets empty")
	}
	claimsOut := ComputeClaims(outs).Table().String()
	for _, want := range []string{"73%", "201 designs", "13 designs"} {
		if !strings.Contains(claimsOut, want) {
			t.Errorf("claims table missing paper reference %q", want)
		}
	}
}

func TestPctChange(t *testing.T) {
	cases := []struct {
		base, got int
		want      float64
	}{
		{100, 50, 50},
		{100, 100, 0},
		{100, 110, -10},
		{0, 0, 0},
		{0, 5, -100},
	}
	for _, c := range cases {
		if got := pctChange(c.base, c.got); got != c.want {
			t.Errorf("pctChange(%d,%d) = %g, want %g", c.base, c.got, got, c.want)
		}
	}
}

func TestAblationSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	designs := synthetic.Generate(2, 12)
	tab, err := Ablation(designs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("ablation rows = %d, want 5", len(tab.Rows))
	}
	out := tab.String()
	for _, want := range []string{"full", "no-static", "greedy-only", "no-quantize", "descending-cover"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation missing variant %q", want)
		}
	}
}

func TestWeightedCaseStudy(t *testing.T) {
	tab, err := WeightedCaseStudy(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	out := tab.String()
	if !strings.Contains(out, "Proposed") || !strings.Contains(out, "Weighted") {
		t.Errorf("weighted table malformed:\n%s", out)
	}
}

func TestShortDev(t *testing.T) {
	if shortDev("XC5VFX70T") != "FX70T" {
		t.Error("prefix not stripped")
	}
	if shortDev("other") != "other" {
		t.Error("non-prefixed name changed")
	}
}

func TestGalleryTable(t *testing.T) {
	tab, err := GalleryTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("gallery rows = %d, want 3", len(tab.Rows))
	}
	out := tab.String()
	for _, want := range []string{"sdr-transceiver", "vision-pipeline", "satellite-comms"} {
		if !strings.Contains(out, want) {
			t.Errorf("gallery missing %q:\n%s", want, out)
		}
	}
}
