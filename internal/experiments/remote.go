package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"prpart/internal/cost"
	"prpart/internal/design"
	"prpart/internal/jobs"
	"prpart/internal/partition"
	"prpart/internal/serve"
)

// This file turns a running prpartd daemon into a sweep engine: a
// RemoteConfig plus NewBatcher (micro-batching /v1/solve/batch client)
// or AsyncSolver (submit-and-poll /v1/jobs client) yields a Solver that
// plugs straight into SweepSolver, so the 1000-design evaluation can be
// driven over HTTP with the exact escalation procedure the in-process
// sweep uses. Requests are encoded through the serve wire types, so a
// remote solve canonicalizes to the same content-addressed key the
// daemon computes for any other client — metric-identical results, one
// cache. Remote results carry the headline metrics only (the wire
// result has no scheme object), so Outcome.ProposedScheme is nil for
// remote sweeps; every figure and claim in the paper's §V reads
// summaries, devices and flags, which survive the round trip exactly.

// RemoteConfig points a remote sweep solver at a daemon.
type RemoteConfig struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// URLs lists every daemon the client may talk to. Empty defaults to
	// [BaseURL]. The batch client rotates across the list per flush and
	// advances to the next node on every retry, so a cluster sweep both
	// spreads load and fails over: a killed node's flushes land on the
	// survivors on the next attempt. The async client ignores extra URLs
	// (job ids are node-local).
	URLs []string
	// Client is the HTTP client (nil = a default with no timeout; solve
	// pacing comes from the daemon's scheduler, not the transport).
	Client *http.Client

	// BatchSize caps members per /v1/solve/batch flush (default 16).
	BatchSize int
	// FlushInterval is the micro-batch linger: a partial batch flushes
	// this long after its first member arrives (default 5ms).
	FlushInterval time.Duration
	// PollInterval is the async job poll cadence (default 20ms).
	PollInterval time.Duration
	// RetryBase is the backoff floor for 503s and connection errors
	// (default 50ms); a Retry-After header overrides it... capped at
	// RetryCap (default 2s) so a jittered long hint cannot stall a test.
	RetryBase time.Duration
	RetryCap  time.Duration
	// MaxAttempts bounds consecutive failed exchanges per solve
	// (default 50 — a restarting daemon needs generous patience).
	MaxAttempts int

	// Multilevel routes remote solves through the daemon's
	// coarsen–partition–refine engine, mirroring an in-process
	// SweepSolver(..., multilevel.Solver) run.
	Multilevel          bool
	MultilevelSeed      int64
	MultilevelThreshold int
	// Check asks the daemon to verify each result (?check=1).
	Check bool
}

func (cfg *RemoteConfig) fill() {
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	// URLs is kept non-empty even when BaseURL is too: rotation then
	// lands on the empty URL and fails as a graceful connection error
	// (the pre-cluster behavior) instead of a modulo-by-zero panic.
	if len(cfg.URLs) == 0 {
		cfg.URLs = []string{cfg.BaseURL}
	}
	if cfg.BaseURL == "" && len(cfg.URLs) > 0 {
		cfg.BaseURL = cfg.URLs[0]
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = 5 * time.Millisecond
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 20 * time.Millisecond
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 50 * time.Millisecond
	}
	if cfg.RetryCap <= 0 {
		cfg.RetryCap = 2 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 50
	}
}

// encodeRemoteRequest renders one (design, options) solve as a
// /v1/solve request body. It goes through the serve wire structs, so
// the daemon's canonicalization sees exactly what a direct client would
// send and the solve lands under the same cache key.
func encodeRemoteRequest(d *design.Design, opts partition.Options, cfg *RemoteConfig) ([]byte, error) {
	var db bytes.Buffer
	if err := design.EncodeJSON(&db, d); err != nil {
		return nil, fmt.Errorf("experiments: encoding design %s: %w", d.Name, err)
	}
	ro := serve.RequestOptions{
		Budget:              &serve.BudgetJSON{CLB: opts.Budget.CLB, BRAM: opts.Budget.BRAM, DSP: opts.Budget.DSP},
		NoStatic:            opts.NoStatic,
		Greedy:              opts.GreedyOnly,
		NoQuantize:          opts.NoQuantize,
		MaxCandidateSets:    opts.MaxCandidateSets,
		MaxFirstMoves:       opts.MaxFirstMoves,
		CoverDescending:     opts.CoverDescending,
		TransitionWeights:   opts.TransitionWeights,
		Multilevel:          cfg.Multilevel,
		MultilevelSeed:      cfg.MultilevelSeed,
		MultilevelThreshold: cfg.MultilevelThreshold,
		Bulk:                true,
	}
	for _, r := range opts.PinnedStatic {
		ro.Pin = append(ro.Pin, d.ModeName(r))
	}
	return json.Marshal(serve.Request{Design: db.Bytes(), Options: ro})
}

// decodeRemoteResult parses a wire result into the summary-bearing
// partition.Result the sweep consumes.
func decodeRemoteResult(body []byte) (*partition.Result, error) {
	var jo serve.ResultJSON
	if err := json.Unmarshal(body, &jo); err != nil {
		return nil, fmt.Errorf("experiments: decoding remote result: %w", err)
	}
	return &partition.Result{Summary: cost.Summary{
		Name:    "proposed",
		Total:   jo.Total,
		Worst:   jo.Worst,
		Regions: len(jo.Regions),
	}}, nil
}

// remoteErr maps a non-200 member/solve status back to the sweep's
// error vocabulary. The escalation loop in EvaluateDesignSolver
// compares against the partition sentinels by identity, so a 422 must
// return partition.ErrNoScheme itself, not a wrapper.
func remoteErr(status int, msg string) error {
	if status == http.StatusUnprocessableEntity {
		return partition.ErrNoScheme
	}
	return fmt.Errorf("experiments: remote solve: status %d: %s", status, msg)
}

// retryDelay picks the wait before retrying a refused exchange.
func (cfg *RemoteConfig) retryDelay(retryAfter string) time.Duration {
	d := cfg.RetryBase
	if secs, err := strconv.Atoi(retryAfter); err == nil && secs > 0 {
		d = time.Duration(secs) * time.Second
	}
	if d > cfg.RetryCap {
		d = cfg.RetryCap
	}
	return d
}

// checkQuery appends ?check=1 when the config asks for verification.
func (cfg *RemoteConfig) checkQuery(path string) string {
	if cfg.Check {
		return path + "?check=1"
	}
	return path
}

// ---------------------------------------------------------------------
// Batch client
// ---------------------------------------------------------------------

// batchCall is one in-flight solve waiting on the micro-batcher.
type batchCall struct {
	body []byte
	res  *partition.Result
	err  error
	done chan struct{}
}

// Batcher aggregates concurrent Solver calls into /v1/solve/batch
// posts: a flush goes out when BatchSize members are pending or
// FlushInterval after the first one arrived, whichever comes first. The
// daemon dedupes identical members inside a flush and runs the rest on
// its bulk tier, so a sweep's worth of workers funnels into a handful
// of HTTP exchanges without crowding out interactive traffic.
type Batcher struct {
	cfg   RemoteConfig
	calls chan *batchCall
	stop  chan struct{}
	wg    sync.WaitGroup
	seq   atomic.Uint64 // rotates flushes and retries across cfg.URLs
}

// nextURL picks the daemon for the next exchange, round-robin across
// the configured URLs so every attempt — first try or retry — moves to
// the next node in the rotation.
func (b *Batcher) nextURL(path string) string {
	i := b.seq.Add(1)
	return b.cfg.URLs[int(i%uint64(len(b.cfg.URLs)))] + b.cfg.checkQuery(path)
}

// NewBatcher starts the collection loop. Callers must Close it.
func NewBatcher(cfg RemoteConfig) *Batcher {
	cfg.fill()
	b := &Batcher{cfg: cfg, calls: make(chan *batchCall), stop: make(chan struct{})}
	b.wg.Add(1)
	go b.loop()
	return b
}

// Close stops accepting solves and waits for the loop to drain.
func (b *Batcher) Close() {
	close(b.stop)
	b.wg.Wait()
}

// Solver adapts the batcher to the sweep's Solver seam.
func (b *Batcher) Solver() Solver {
	return func(d *design.Design, opts partition.Options) (*partition.Result, error) {
		if b.cfg.URLs[0] == "" {
			// A misconfigured batcher fails every solve immediately with
			// the cause, instead of burning MaxAttempts retries per call
			// against an empty URL.
			return nil, fmt.Errorf("experiments: RemoteConfig names no daemon (set BaseURL or URLs)")
		}
		body, err := encodeRemoteRequest(d, opts, &b.cfg)
		if err != nil {
			return nil, err
		}
		c := &batchCall{body: body, done: make(chan struct{})}
		select {
		case b.calls <- c:
		case <-b.stop:
			return nil, fmt.Errorf("experiments: batcher closed")
		}
		<-c.done
		return c.res, c.err
	}
}

func (b *Batcher) loop() {
	defer b.wg.Done()
	var pending []*batchCall
	var timer *time.Timer
	var fire <-chan time.Time
	flush := func() {
		if len(pending) > 0 {
			b.flush(pending)
			pending = nil
		}
		if timer != nil {
			timer.Stop()
			timer, fire = nil, nil
		}
	}
	for {
		select {
		case c := <-b.calls:
			pending = append(pending, c)
			if len(pending) >= b.cfg.BatchSize {
				flush()
			} else if timer == nil {
				timer = time.NewTimer(b.cfg.FlushInterval)
				fire = timer.C
			}
		case <-fire:
			timer, fire = nil, nil
			flush()
		case <-b.stop:
			flush()
			return
		}
	}
}

// flush posts one batch and distributes per-member outcomes. A refused
// batch (503, connection error) backs off and retries whole — the
// daemon dedupes and cache-hits members that already completed, so a
// retry never re-runs finished work.
func (b *Batcher) flush(calls []*batchCall) {
	defer func() {
		for _, c := range calls {
			close(c.done)
		}
	}()
	req := serve.BatchRequest{Requests: make([]json.RawMessage, len(calls))}
	for i, c := range calls {
		req.Requests[i] = c.body
	}
	body, err := json.Marshal(req)
	if err != nil {
		for _, c := range calls {
			c.err = err
		}
		return
	}
	for attempt := 0; ; attempt++ {
		if attempt >= b.cfg.MaxAttempts {
			for _, c := range calls {
				c.err = fmt.Errorf("experiments: batch flush gave up after %d attempts", attempt)
			}
			return
		}
		resp, err := b.cfg.Client.Post(b.nextURL("/v1/solve/batch"), "application/json", bytes.NewReader(body))
		if err != nil {
			time.Sleep(b.cfg.RetryBase)
			continue
		}
		rb, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			time.Sleep(b.cfg.RetryBase)
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			time.Sleep(b.cfg.retryDelay(resp.Header.Get("Retry-After")))
			continue
		}
		if resp.StatusCode != http.StatusOK {
			for _, c := range calls {
				c.err = remoteErr(resp.StatusCode, string(rb))
			}
			return
		}
		var br serve.BatchResponse
		if err := json.Unmarshal(rb, &br); err != nil || len(br.Results) != len(calls) {
			for _, c := range calls {
				c.err = fmt.Errorf("experiments: bad batch response: %v (%d results for %d members)", err, len(br.Results), len(calls))
			}
			return
		}
		// Per-member refusals (the member hit the full tier or was shed
		// mid-batch) retry alone as a single-member batch rather than
		// dragging completed members back through the wire.
		for i, item := range br.Results {
			switch {
			case item.Status == http.StatusOK:
				calls[i].res, calls[i].err = decodeRemoteResult(item.Result)
			case item.Status == http.StatusServiceUnavailable:
				b.retryOne(calls[i])
			default:
				calls[i].err = remoteErr(item.Status, item.Error)
			}
		}
		return
	}
}

// retryOne re-posts a single refused member until it lands.
func (b *Batcher) retryOne(c *batchCall) {
	body, err := json.Marshal(serve.BatchRequest{Requests: []json.RawMessage{c.body}})
	if err != nil {
		c.err = err
		return
	}
	for attempt := 0; attempt < b.cfg.MaxAttempts; attempt++ {
		time.Sleep(b.cfg.RetryBase)
		resp, err := b.cfg.Client.Post(b.nextURL("/v1/solve/batch"), "application/json", bytes.NewReader(body))
		if err != nil {
			continue
		}
		rb, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil || resp.StatusCode == http.StatusServiceUnavailable {
			continue
		}
		if resp.StatusCode != http.StatusOK {
			c.err = remoteErr(resp.StatusCode, string(rb))
			return
		}
		var br serve.BatchResponse
		if err := json.Unmarshal(rb, &br); err != nil || len(br.Results) != 1 {
			c.err = fmt.Errorf("experiments: bad single-member batch response: %v", err)
			return
		}
		item := br.Results[0]
		if item.Status == http.StatusServiceUnavailable {
			continue
		}
		if item.Status != http.StatusOK {
			c.err = remoteErr(item.Status, item.Error)
			return
		}
		c.res, c.err = decodeRemoteResult(item.Result)
		return
	}
	c.err = fmt.Errorf("experiments: member retry gave up after %d attempts", b.cfg.MaxAttempts)
}

// ---------------------------------------------------------------------
// Async client
// ---------------------------------------------------------------------

// jobSubmitReply mirrors the daemon's 202 body from POST /v1/jobs.
type jobSubmitReply struct {
	ID    string `json:"id"`
	Key   string `json:"key"`
	State string `json:"state"`
}

// AsyncSolver returns a Solver that drives each solve through the
// daemon's async job API: submit, poll, fetch. It is built to survive a
// daemon restart mid-sweep: a connection error or a 404 on a known job
// id (in-flight jobs do not outlive the daemon) simply resubmits the
// solve — the daemon's content-addressed store makes the resubmit
// idempotent, answering from the store when the first life finished the
// work and re-running it when it did not. Either way the sweep loses
// nothing and double-counts nothing.
func AsyncSolver(cfg RemoteConfig) Solver {
	cfg.fill()
	return func(d *design.Design, opts partition.Options) (*partition.Result, error) {
		body, err := encodeRemoteRequest(d, opts, &cfg)
		if err != nil {
			return nil, err
		}
		failures := 0
		fail := func(format string, args ...any) (bool, error) {
			failures++
			if failures >= cfg.MaxAttempts {
				return false, fmt.Errorf("experiments: async solve gave up after %d failed exchanges: %s",
					failures, fmt.Sprintf(format, args...))
			}
			return true, nil
		}
	resubmit:
		for {
			id, retry, err := submitJob(&cfg, body)
			if err != nil {
				return nil, err
			}
			if retry != "" {
				if ok, err := fail("submit refused: %s", retry); !ok {
					return nil, err
				}
				time.Sleep(cfg.retryDelay(retry))
				continue
			}
			for {
				time.Sleep(cfg.PollInterval)
				rec, code, err := pollJob(&cfg, id)
				if err != nil {
					if ok, ferr := fail("poll: %v", err); !ok {
						return nil, ferr
					}
					time.Sleep(cfg.RetryBase)
					continue
				}
				if code == http.StatusNotFound {
					// The daemon restarted and lost the in-flight job.
					if ok, ferr := fail("job %s lost", id); !ok {
						return nil, ferr
					}
					continue resubmit
				}
				switch rec.State {
				case jobs.StateDone:
					res, retry, err := fetchJobResult(&cfg, id)
					if err != nil {
						return nil, err
					}
					if retry {
						if ok, ferr := fail("result for %s unavailable", id); !ok {
							return nil, ferr
						}
						continue resubmit
					}
					return res, nil
				case jobs.StateFailed, jobs.StateCanceled:
					if rec.HTTPStatus == http.StatusServiceUnavailable || rec.State == jobs.StateCanceled {
						// Shed for latency-sensitive work (or swept away);
						// back off and resubmit.
						if ok, ferr := fail("job %s %s: %s", id, rec.State, rec.Error); !ok {
							return nil, ferr
						}
						time.Sleep(cfg.RetryBase)
						continue resubmit
					}
					return nil, remoteErr(rec.HTTPStatus, rec.Error)
				default: // queued, running: keep polling
					failures = 0
				}
			}
		}
	}
}

// submitJob posts the solve. It returns (id, "", nil) on acceptance and
// ("", retryHint, nil) when the daemon refused with 503 or the
// connection failed — the caller backs off and resubmits.
func submitJob(cfg *RemoteConfig, body []byte) (string, string, error) {
	resp, err := cfg.Client.Post(cfg.BaseURL+cfg.checkQuery("/v1/jobs"), "application/json", bytes.NewReader(body))
	if err != nil {
		return "", "connection: " + err.Error(), nil
	}
	rb, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		return "", "read: " + rerr.Error(), nil
	}
	if resp.StatusCode == http.StatusServiceUnavailable {
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			return "", ra, nil
		}
		return "", "503", nil
	}
	if resp.StatusCode != http.StatusAccepted {
		return "", "", remoteErr(resp.StatusCode, string(rb))
	}
	var jr jobSubmitReply
	if err := json.Unmarshal(rb, &jr); err != nil || jr.ID == "" {
		return "", "", fmt.Errorf("experiments: bad job submit reply: %v: %s", err, rb)
	}
	return jr.ID, "", nil
}

// pollJob fetches the job record. Connection problems surface as
// errors; HTTP outcomes as (rec, status).
func pollJob(cfg *RemoteConfig, id string) (jobs.Record, int, error) {
	resp, err := cfg.Client.Get(cfg.BaseURL + "/v1/jobs/" + id)
	if err != nil {
		return jobs.Record{}, 0, err
	}
	rb, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		return jobs.Record{}, 0, rerr
	}
	if resp.StatusCode != http.StatusOK {
		return jobs.Record{}, resp.StatusCode, nil
	}
	var rec jobs.Record
	if err := json.Unmarshal(rb, &rec); err != nil {
		return jobs.Record{}, 0, fmt.Errorf("experiments: bad job record: %w", err)
	}
	return rec, http.StatusOK, nil
}

// fetchJobResult retrieves a done job's solve body. retry=true means
// the result is gone (evicted store, restarted daemon) and the solve
// should be resubmitted.
func fetchJobResult(cfg *RemoteConfig, id string) (*partition.Result, bool, error) {
	resp, err := cfg.Client.Get(cfg.BaseURL + "/v1/jobs/" + id + "/result")
	if err != nil {
		return nil, true, nil
	}
	rb, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		return nil, true, nil
	}
	switch resp.StatusCode {
	case http.StatusOK:
		res, err := decodeRemoteResult(rb)
		return res, false, err
	case http.StatusNotFound, http.StatusGone, http.StatusAccepted:
		return nil, true, nil
	default:
		return nil, false, remoteErr(resp.StatusCode, string(rb))
	}
}
