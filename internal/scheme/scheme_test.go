package scheme

import (
	"strings"
	"testing"

	"prpart/internal/basepart"
	"prpart/internal/design"
	"prpart/internal/modeset"
	"prpart/internal/resource"
)

func bp(d *design.Design, refs ...design.ModeRef) basepart.BasePartition {
	s := modeset.New(refs...)
	var v resource.Vector
	for _, r := range s.Refs() {
		v = v.Add(d.ModeResources(r))
	}
	return basepart.BasePartition{Set: s, FreqWeight: 1, Resources: v}
}

func r(mod, mode int) design.ModeRef { return design.ModeRef{Module: mod, Mode: mode} }

// twoModuleModular builds the one-module-per-region scheme for the
// two-module example by hand.
func twoModuleModular(d *design.Design) *Scheme {
	return &Scheme{
		Design: d,
		Name:   "modular",
		Regions: []Region{
			{Parts: []basepart.BasePartition{bp(d, r(0, 1)), bp(d, r(0, 2))}},
			{Parts: []basepart.BasePartition{bp(d, r(1, 1)), bp(d, r(1, 2))}},
		},
		Active: [][]int{
			{0, 0}, // A1 -> B1
			{1, 1}, // A2 -> B2
			{0, 1}, // A1 -> B2
		},
	}
}

func TestRegionAreaAndFrames(t *testing.T) {
	d := design.TwoModuleExample()
	s := twoModuleModular(d)
	// Region A: max(100, 400) = 400 CLB -> 20 tiles -> 720 frames.
	if got := s.Regions[0].MaxResources(); got != resource.New(400, 0, 0) {
		t.Errorf("region A max = %v", got)
	}
	if got := s.Regions[0].Frames(); got != 720 {
		t.Errorf("region A frames = %d, want 720", got)
	}
	// Region B: max(500, 120) = 500 CLB -> 25 tiles -> 900 frames.
	if got := s.Regions[1].Frames(); got != 900 {
		t.Errorf("region B frames = %d, want 900", got)
	}
	if got := s.Regions[0].Area(); got != resource.New(400, 0, 0) {
		t.Errorf("region A area = %v", got)
	}
}

func TestRegionModesAndLabel(t *testing.T) {
	d := design.VideoReceiver()
	reg := Region{Parts: []basepart.BasePartition{
		bp(d, r(2, 2)),          // M2
		bp(d, r(2, 1), r(3, 2)), // {M1, D2}
	}}
	if got := reg.Label(d); got != "M.QPSK, {M.BPSK, D.Turbo}" {
		t.Errorf("Label = %q", got)
	}
	if got := reg.Modes().Len(); got != 3 {
		t.Errorf("Modes len = %d, want 3", got)
	}
	// Area is the max of part sums: {M1,D2} = 50+748 CLB dominates M2.
	if got := reg.MaxResources(); got != resource.New(798, 15, 6) {
		t.Errorf("MaxResources = %v", got)
	}
}

func TestSchemeTotalsAndStatic(t *testing.T) {
	d := design.TwoModuleExample()
	s := twoModuleModular(d)
	// design.Static (90,8,0) + region areas (400 + 500 CLB).
	if got := s.TotalResources(); got != resource.New(990, 8, 0) {
		t.Errorf("TotalResources = %v", got)
	}
	if !s.FitsIn(resource.New(990, 8, 0)) {
		t.Error("scheme should fit its own total")
	}
	if s.FitsIn(resource.New(989, 8, 0)) {
		t.Error("scheme should not fit a smaller budget")
	}
	// Promote B2 into static: totals now include its raw sum.
	s.Static = append(s.Static, bp(d, r(1, 2)))
	if got := s.StaticResources(); got != resource.New(120, 0, 0) {
		t.Errorf("StaticResources = %v", got)
	}
	if got := s.StaticSet(); !got.Contains(r(1, 2)) {
		t.Errorf("StaticSet = %v", got)
	}
}

func TestValidateAcceptsGoodScheme(t *testing.T) {
	d := design.TwoModuleExample()
	s := twoModuleModular(d)
	if err := s.Validate(); err != nil {
		t.Fatalf("valid scheme rejected: %v", err)
	}
}

func TestValidateCatchesMissingMode(t *testing.T) {
	d := design.TwoModuleExample()
	s := twoModuleModular(d)
	s.Active[0][1] = Inactive // config 0 loses B1
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "not provided") {
		t.Fatalf("err = %v, want missing-mode error", err)
	}
}

func TestValidateStaticProvides(t *testing.T) {
	d := design.TwoModuleExample()
	s := twoModuleModular(d)
	// Move B's region to static entirely and deactivate it.
	s.Static = []basepart.BasePartition{bp(d, r(1, 1)), bp(d, r(1, 2))}
	s.Regions = s.Regions[:1]
	s.Active = [][]int{{0}, {1}, {0}}
	if err := s.Validate(); err != nil {
		t.Fatalf("static-provided scheme rejected: %v", err)
	}
}

func TestValidateCatchesBadIndices(t *testing.T) {
	d := design.TwoModuleExample()
	s := twoModuleModular(d)
	s.Active[1][0] = 7
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("err = %v, want out-of-range error", err)
	}
}

func TestValidateCatchesSpuriousActivation(t *testing.T) {
	d := design.TwoModuleExample()
	s := twoModuleModular(d)
	// Config 2 is A1->B2; activating A2 there is spurious... but A2 still
	// intersects nothing of config 2. Use a part sharing no mode.
	s.Active[2][0] = 1 // A2 active in config A1->B2
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "shares no mode") {
		t.Fatalf("err = %v, want spurious-activation error", err)
	}
}

func TestValidateCatchesShapeMismatch(t *testing.T) {
	d := design.TwoModuleExample()
	s := twoModuleModular(d)
	s.Active = s.Active[:2]
	if err := s.Validate(); err == nil {
		t.Fatal("short activation matrix accepted")
	}
	s = twoModuleModular(d)
	s.Active[0] = []int{0}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "columns") {
		t.Fatalf("err = %v, want column-mismatch error", err)
	}
}

func TestString(t *testing.T) {
	d := design.TwoModuleExample()
	s := twoModuleModular(d)
	s.Static = []basepart.BasePartition{bp(d, r(1, 2))}
	out := s.String()
	if !strings.Contains(out, "modular") || !strings.Contains(out, "2 regions") ||
		!strings.Contains(out, "1 static") {
		t.Errorf("String = %q", out)
	}
}

func TestNumRegions(t *testing.T) {
	d := design.TwoModuleExample()
	s := twoModuleModular(d)
	if s.NumRegions() != 2 {
		t.Errorf("NumRegions = %d, want 2", s.NumRegions())
	}
}

func TestRegionTilesQuantised(t *testing.T) {
	d := design.TwoModuleExample()
	s := twoModuleModular(d)
	// Region A max = 400 CLB -> exactly 20 tiles.
	if got := s.Regions[0].Tiles(); got != resource.New(20, 0, 0) {
		t.Errorf("Tiles = %v", got)
	}
	// A 401-CLB part needs 21 tiles.
	s.Regions[0].Parts[1].Resources = resource.New(401, 0, 0)
	if got := s.Regions[0].Tiles(); got != resource.New(21, 0, 0) {
		t.Errorf("Tiles after bump = %v", got)
	}
}
