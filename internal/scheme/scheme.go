// Package scheme represents a concrete partitioning of a PR design: a set
// of reconfigurable regions, each holding one or more base partitions, an
// optional set of base partitions promoted into the static logic, and the
// per-configuration record of which base partition each region holds.
//
// A scheme is the object the paper's algorithm searches over and what the
// baselines (single-region, one-module-per-region, fully static) construct
// directly; the cost model in internal/cost consumes it.
package scheme

import (
	"errors"
	"fmt"
	"strings"

	"prpart/internal/basepart"
	"prpart/internal/design"
	"prpart/internal/device"
	"prpart/internal/modeset"
	"prpart/internal/resource"
)

// Inactive marks a region that a configuration does not use; the region
// keeps whatever it held before, so transitions into such configurations
// do not reconfigure it.
const Inactive = -1

// Region is one reconfigurable region holding mutually exclusive base
// partitions; at runtime exactly one of them is loaded at a time.
type Region struct {
	// Parts are the base partitions allocated to the region.
	Parts []basepart.BasePartition
}

// MaxResources returns the per-resource maximum over the region's parts:
// the paper's eq. (2).
func (r *Region) MaxResources() resource.Vector {
	var v resource.Vector
	for _, p := range r.Parts {
		v = v.Max(p.Resources)
	}
	return v
}

// Tiles returns the region's size in whole tiles (eqs. 3-5).
func (r *Region) Tiles() resource.Vector {
	return device.Tiles(r.MaxResources())
}

// Area returns the primitive capacity the region reserves once quantised
// to whole tiles.
func (r *Region) Area() resource.Vector {
	return device.TilesToPrimitives(r.Tiles())
}

// Frames returns the number of configuration frames spanned by the region
// (eq. 6) — the cost of reconfiguring it once.
func (r *Region) Frames() int {
	return device.FramesForTiles(r.Tiles())
}

// Modes returns the union of the region's parts' mode sets.
func (r *Region) Modes() modeset.Set {
	var s modeset.Set
	for _, p := range r.Parts {
		s = s.Union(p.Set)
	}
	return s
}

// Label renders the region contents like the paper's Table III rows:
// "M2, {M1, D2}".
func (r *Region) Label(d *design.Design) string {
	parts := make([]string, len(r.Parts))
	for i, p := range r.Parts {
		if p.Set.Len() == 1 {
			parts[i] = d.ModeName(p.Set.Refs()[0])
		} else {
			parts[i] = p.Label(d)
		}
	}
	return strings.Join(parts, ", ")
}

// Scheme is a complete partitioning of a design.
type Scheme struct {
	// Design is the partitioned design.
	Design *design.Design
	// Regions are the reconfigurable regions.
	Regions []Region
	// Static lists base partitions promoted into the static logic; their
	// modes are always present and never reconfigured.
	Static []basepart.BasePartition
	// Active[ci][ri] is the index into Regions[ri].Parts of the base
	// partition configuration ci requires there, or Inactive.
	Active [][]int
	// Name labels the scheme in reports ("proposed", "modular", ...).
	Name string
}

// StaticResources returns the summed utilisation of all promoted static
// parts. Everything in static logic is physically present simultaneously,
// so this is a sum, never a max.
func (s *Scheme) StaticResources() resource.Vector {
	var v resource.Vector
	for _, p := range s.Static {
		v = v.Add(p.Resources)
	}
	return v
}

// TotalResources returns the device resources the scheme consumes: the
// design's fixed static logic, the promoted static parts, and every
// region's tile-quantised area.
func (s *Scheme) TotalResources() resource.Vector {
	v := s.Design.Static.Add(s.StaticResources())
	for i := range s.Regions {
		v = v.Add(s.Regions[i].Area())
	}
	return v
}

// FitsIn reports whether the scheme's total resources fit a budget.
func (s *Scheme) FitsIn(budget resource.Vector) bool {
	return s.TotalResources().FitsIn(budget)
}

// StaticSet returns the union of all promoted static parts' modes.
func (s *Scheme) StaticSet() modeset.Set {
	var set modeset.Set
	for _, p := range s.Static {
		set = set.Union(p.Set)
	}
	return set
}

// Validate checks that the scheme actually implements the design:
//
//  1. Active has one row per configuration and one column per region,
//     with part indices in range.
//  2. Every mode required by every configuration is provided — either by
//     the static logic or by the active part of some region.
//  3. No region is asked to provide two different parts at once (implied
//     by the representation) and an active part really intersects the
//     configuration (no spurious activations).
func (s *Scheme) Validate() error {
	var errs []error
	d := s.Design
	if len(s.Active) != len(d.Configurations) {
		return fmt.Errorf("scheme %s: %d activation rows for %d configurations",
			s.Name, len(s.Active), len(d.Configurations))
	}
	staticSet := s.StaticSet()
	for ci := range d.Configurations {
		row := s.Active[ci]
		if len(row) != len(s.Regions) {
			errs = append(errs, fmt.Errorf("config %d: %d activation columns for %d regions",
				ci, len(row), len(s.Regions)))
			continue
		}
		cfg := modeset.New(d.ConfigModes(ci)...)
		provided := staticSet
		for ri, pi := range row {
			if pi == Inactive {
				continue
			}
			if pi < 0 || pi >= len(s.Regions[ri].Parts) {
				errs = append(errs, fmt.Errorf("config %d region %d: part index %d out of range",
					ci, ri, pi))
				continue
			}
			part := s.Regions[ri].Parts[pi]
			if !part.Set.Intersects(cfg) {
				errs = append(errs, fmt.Errorf("config %d region %d: active part %s shares no mode with the configuration",
					ci, ri, part.Label(d)))
			}
			provided = provided.Union(part.Set)
		}
		if !cfg.SubsetOf(provided) {
			for _, r := range cfg.Refs() {
				if !provided.Contains(r) {
					errs = append(errs, fmt.Errorf("config %d: mode %s not provided by any region or static logic",
						ci, d.ModeName(r)))
				}
			}
		}
	}
	return errors.Join(errs...)
}

// NumRegions returns the number of reconfigurable regions.
func (s *Scheme) NumRegions() int { return len(s.Regions) }

// String summarises the scheme.
func (s *Scheme) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scheme %s: %d regions", s.Name, len(s.Regions))
	if len(s.Static) > 0 {
		fmt.Fprintf(&b, ", %d static parts", len(s.Static))
	}
	fmt.Fprintf(&b, ", resources %v", s.TotalResources())
	return b.String()
}
