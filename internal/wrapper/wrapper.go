// Package wrapper implements step 3 of the proposed tool flow (§III-B):
// for every base partition that the partitioner grouped into a region, it
// generates a wrapper module that instantiates the partition's member
// modes behind a mode-select interface, so that the vendor tools can
// build one netlist (and later one partial bitstream) per region variant.
package wrapper

import (
	"fmt"
	"sort"
	"strings"

	"prpart/internal/basepart"
	"prpart/internal/design"
	"prpart/internal/netlist"
	"prpart/internal/scheme"
)

// Set is the full wrapper collection for a scheme.
type Set struct {
	// Regions[ri][pi] is the wrapper for part pi of region ri.
	Regions [][]*netlist.Module
	// Static is the wrapper for promoted static parts (nil when none).
	Static *netlist.Module
	// Blackboxes holds the referenced mode netlists (stubs when the
	// caller supplied none).
	Blackboxes map[string]*netlist.Module
}

// Generate builds wrappers for every region variant of a scheme. The
// mode netlists may be supplied in nets (keyed by mode reference);
// missing entries get interface-compatible black-box stubs, as the
// vendor flow would when synthesis runs later.
func Generate(s *scheme.Scheme, nets map[design.ModeRef]*netlist.Module) (*Set, error) {
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("wrapper: scheme invalid: %w", err)
	}
	out := &Set{Blackboxes: map[string]*netlist.Module{}}
	for ri := range s.Regions {
		var regionWrappers []*netlist.Module
		for pi, part := range s.Regions[ri].Parts {
			w, err := out.wrap(s.Design, fmt.Sprintf("prr%d_p%d", ri+1, pi), part, nets)
			if err != nil {
				return nil, err
			}
			regionWrappers = append(regionWrappers, w)
		}
		out.Regions = append(out.Regions, regionWrappers)
	}
	if len(s.Static) > 0 {
		merged := basepart.BasePartition{Set: s.StaticSet()}
		w, err := out.wrap(s.Design, "static_modes", merged, nets)
		if err != nil {
			return nil, err
		}
		out.Static = w
	}
	return out, nil
}

// wrap builds one wrapper module instantiating the part's modes behind a
// 33-bit output mux (32 data + valid) driven by the mode-select input.
func (set *Set) wrap(d *design.Design, name string, part basepart.BasePartition,
	nets map[design.ModeRef]*netlist.Module) (*netlist.Module, error) {

	refs := part.Set.Refs()
	if len(refs) == 0 {
		return nil, fmt.Errorf("wrapper: %s: empty base partition", name)
	}
	m := &netlist.Module{
		Name: name,
		Ports: []netlist.Port{
			{Name: "clk", Dir: netlist.Input, Width: 1},
			{Name: "rst", Dir: netlist.Input, Width: 1},
			{Name: "sel", Dir: netlist.Input, Width: selWidth(len(refs))},
			{Name: "s_data", Dir: netlist.Input, Width: 32},
			{Name: "s_valid", Dir: netlist.Input, Width: 1},
			{Name: "m_data", Dir: netlist.Output, Width: 32},
			{Name: "m_valid", Dir: netlist.Output, Width: 1},
		},
	}
	for i, r := range refs {
		sub := nets[r]
		if sub == nil {
			sub = stub(d, r)
		}
		set.Blackboxes[sub.Name] = sub
		dataNet := fmt.Sprintf("u%d_data", i)
		validNet := fmt.Sprintf("u%d_valid", i)
		m.Nets = append(m.Nets, dataNet, validNet)
		m.Instances = append(m.Instances, netlist.Instance{
			Name: fmt.Sprintf("u%d", i),
			Prim: netlist.SubModule,
			Of:   sub.Name,
			Conns: map[string]string{
				"clk":     "clk",
				"rst":     "rst",
				"s_data":  "s_data",
				"s_valid": "s_valid",
				"m_data":  dataNet,
				"m_valid": validNet,
			},
		})
	}
	// Output mux: 33 bits (data+valid) selected among the members. One
	// LUT per 2:1 mux bit level; single-member wrappers need none.
	if n := len(refs); n > 1 {
		muxLUTs := 33 * (n - 1)
		for i := 0; i < muxLUTs; i++ {
			m.Instances = append(m.Instances, netlist.Instance{
				Name:  fmt.Sprintf("mux_%d", i),
				Prim:  netlist.LUT,
				Conns: map[string]string{"I0": "sel"},
			})
		}
	}
	return m, nil
}

// stub builds an interface-compatible black-box for a mode with no
// supplied netlist.
func stub(d *design.Design, r design.ModeRef) *netlist.Module {
	return &netlist.Module{
		Name: sanitize(d.ModeName(r)),
		Ports: []netlist.Port{
			{Name: "clk", Dir: netlist.Input, Width: 1},
			{Name: "rst", Dir: netlist.Input, Width: 1},
			{Name: "s_data", Dir: netlist.Input, Width: 32},
			{Name: "s_valid", Dir: netlist.Input, Width: 1},
			{Name: "m_data", Dir: netlist.Output, Width: 32},
			{Name: "m_valid", Dir: netlist.Output, Width: 1},
		},
	}
}

// Netlist assembles the wrappers and black-boxes into one validated
// netlist design rooted at a synthetic top.
func (set *Set) Netlist() (*netlist.Design, error) {
	d := netlist.NewDesign("pr_top")
	top := d.Modules["pr_top"]
	top.Ports = []netlist.Port{{Name: "clk", Dir: netlist.Input, Width: 1}}
	for _, sub := range set.Blackboxes {
		d.AddModule(sub)
	}
	var names []string
	for ri, region := range set.Regions {
		for pi, w := range region {
			d.AddModule(w)
			names = append(names, fmt.Sprintf("r%d_%d:%s", ri, pi, w.Name))
		}
	}
	if set.Static != nil {
		d.AddModule(set.Static)
		names = append(names, "static:"+set.Static.Name)
	}
	sort.Strings(names)
	for i, n := range names {
		of := n[strings.IndexByte(n, ':')+1:]
		top.Instances = append(top.Instances, netlist.Instance{
			Name:  fmt.Sprintf("i%d", i),
			Prim:  netlist.SubModule,
			Of:    of,
			Conns: map[string]string{"clk": "clk"},
		})
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// Verilog renders every wrapper (and black-box stubs) keyed by module
// name.
func (set *Set) Verilog() map[string]string {
	out := map[string]string{}
	for _, region := range set.Regions {
		for _, w := range region {
			out[w.Name] = w.Verilog()
		}
	}
	if set.Static != nil {
		out[set.Static.Name] = set.Static.Verilog()
	}
	for name, bb := range set.Blackboxes {
		out[name] = bb.Verilog()
	}
	return out
}

func selWidth(n int) int {
	w := 1
	for (1 << w) < n {
		w++
	}
	return w
}

func sanitize(name string) string {
	out := make([]rune, 0, len(name))
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
