package wrapper

import (
	"strings"
	"sync"
	"testing"

	"prpart/internal/design"
	"prpart/internal/netlist"
	"prpart/internal/partition"
	"prpart/internal/synth"
)

var (
	cachedResult *partition.Result
	cachedErr    error
	cacheOnce    sync.Once
)

func caseStudyScheme(t *testing.T) *partition.Result {
	t.Helper()
	cacheOnce.Do(func() {
		cachedResult, cachedErr = partition.Solve(design.VideoReceiver(),
			partition.Options{Budget: design.CaseStudyBudget()})
	})
	if cachedErr != nil {
		t.Fatal(cachedErr)
	}
	return cachedResult
}

func TestGenerateCaseStudy(t *testing.T) {
	res := caseStudyScheme(t)
	set, err := Generate(res.Scheme, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Regions) != len(res.Scheme.Regions) {
		t.Fatalf("wrapper regions = %d, want %d", len(set.Regions), len(res.Scheme.Regions))
	}
	for ri, region := range set.Regions {
		if len(region) != len(res.Scheme.Regions[ri].Parts) {
			t.Errorf("region %d: %d wrappers for %d parts", ri, len(region), len(res.Scheme.Regions[ri].Parts))
		}
	}
	if len(res.Scheme.Static) > 0 && set.Static == nil {
		t.Error("static parts present but no static wrapper")
	}
}

func TestWrapperStructure(t *testing.T) {
	res := caseStudyScheme(t)
	set, err := Generate(res.Scheme, nil)
	if err != nil {
		t.Fatal(err)
	}
	for ri, region := range set.Regions {
		for pi, w := range region {
			part := res.Scheme.Regions[ri].Parts[pi]
			subs := w.Count(netlist.SubModule)
			if subs != part.Set.Len() {
				t.Errorf("prr%d_p%d: %d submodules for %d modes", ri+1, pi, subs, part.Set.Len())
			}
			if part.Set.Len() > 1 && w.Count(netlist.LUT) == 0 {
				t.Errorf("prr%d_p%d: multi-mode wrapper has no mux logic", ri+1, pi)
			}
			if w.Port("sel") == nil || w.Port("m_data") == nil {
				t.Errorf("prr%d_p%d: missing standard ports", ri+1, pi)
			}
		}
	}
}

func TestGenerateWithSynthesizedNetlists(t *testing.T) {
	res := caseStudyScheme(t)
	d := res.Scheme.Design
	lib := synth.NewLibrary()
	keys := map[string]string{
		"F": "MatchedFilter", "R": "Recovery", "M": "Demodulator",
		"D": "Decoder", "V": "Video",
	}
	nets := map[design.ModeRef]*netlist.Module{}
	for mi, m := range d.Modules {
		for ki, md := range m.Modes {
			if m.Name == "R" && md.Name == "None" {
				continue
			}
			sr, err := synth.Synthesize(synth.IPCore{Name: keys[m.Name] + "/" + md.Name, Lib: lib})
			if err != nil {
				t.Fatal(err)
			}
			nets[design.ModeRef{Module: mi, Mode: ki + 1}] = sr.Netlist
		}
	}
	set, err := Generate(res.Scheme, nets)
	if err != nil {
		t.Fatal(err)
	}
	nd, err := set.Netlist()
	if err != nil {
		t.Fatal(err)
	}
	if err := nd.Validate(); err != nil {
		t.Fatal(err)
	}
	// The assembled netlist's resources must cover the scheme's raw
	// maxima (each wrapper instantiates real mode netlists).
	v, err := nd.Resources("pr_top")
	if err != nil {
		t.Fatal(err)
	}
	if v.CLB == 0 || v.DSP == 0 {
		t.Errorf("assembled netlist suspiciously empty: %v", v)
	}
}

func TestNetlistValidates(t *testing.T) {
	res := caseStudyScheme(t)
	set, err := Generate(res.Scheme, nil)
	if err != nil {
		t.Fatal(err)
	}
	nd, err := set.Netlist()
	if err != nil {
		t.Fatal(err)
	}
	if nd.Top != "pr_top" {
		t.Errorf("top = %q", nd.Top)
	}
}

func TestVerilogOutput(t *testing.T) {
	res := caseStudyScheme(t)
	set, err := Generate(res.Scheme, nil)
	if err != nil {
		t.Fatal(err)
	}
	files := set.Verilog()
	if len(files) == 0 {
		t.Fatal("no Verilog emitted")
	}
	found := false
	for name, src := range files {
		if !strings.Contains(src, "module "+name) {
			t.Errorf("file %s does not define its module", name)
		}
		if strings.HasPrefix(name, "prr") {
			found = true
		}
	}
	if !found {
		t.Error("no region wrapper files emitted")
	}
}

func TestGenerateRejectsInvalidScheme(t *testing.T) {
	res := caseStudyScheme(t)
	bad := *res.Scheme
	bad.Active = bad.Active[:1]
	if _, err := Generate(&bad, nil); err == nil {
		t.Error("invalid scheme accepted")
	}
}

func TestSelWidth(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4}
	for n, want := range cases {
		if got := selWidth(n); got != want {
			t.Errorf("selWidth(%d) = %d, want %d", n, got, want)
		}
	}
}
