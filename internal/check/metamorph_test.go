package check_test

import (
	"errors"
	"math/rand"
	"testing"

	"prpart/internal/check"
	"prpart/internal/design"
)

func TestTransformsPreserveValidity(t *testing.T) {
	for _, d := range append(design.Gallery(), design.VideoReceiver(), design.PaperExample()) {
		rng := rand.New(rand.NewSource(3))
		for name, td := range map[string]*design.Design{
			"permute-modules": check.PermuteModules(d, rng.Perm(len(d.Modules))),
			"permute-modes":   check.PermuteModes(d, rng),
			"permute-configs": check.PermuteConfigs(d, rng.Perm(len(d.Configurations))),
			"pad-unused":      check.PadUnused(d),
			"normalize":       check.Normalize(d),
		} {
			if err := td.Validate(); err != nil {
				t.Errorf("%s/%s: transformed design invalid: %v", d.Name, name, err)
			}
			if td == d {
				t.Errorf("%s/%s: transform returned the original pointer", d.Name, name)
			}
		}
	}
}

func TestPermutationsPreserveConfigResources(t *testing.T) {
	d := design.VideoReceiver()
	rng := rand.New(rand.NewSource(5))
	perms := check.PermuteModes(check.PermuteModules(d, rng.Perm(len(d.Modules))), rng)
	if len(perms.Configurations) != len(d.Configurations) {
		t.Fatal("configuration count changed")
	}
	// Each configuration's total resource demand is permutation-invariant.
	for ci := range d.Configurations {
		if got, want := perms.ConfigResources(ci), d.ConfigResources(ci); got != want {
			t.Errorf("config %d: resources %v after permutation, want %v", ci, got, want)
		}
	}
}

func TestNormalizeDropsUnused(t *testing.T) {
	d := check.PadUnused(design.PaperExample())
	n := check.Normalize(d)
	if len(n.Modules) != len(design.PaperExample().Modules) {
		t.Fatalf("normalised design has %d modules, want %d",
			len(n.Modules), len(design.PaperExample().Modules))
	}
	for mi, m := range n.Modules {
		for _, mode := range m.Modes {
			if mode.Name == "unused-pad" {
				t.Errorf("module %d still carries the pad mode", mi)
			}
		}
	}
}

func TestMetamorphPassesWithFaithfulSolver(t *testing.T) {
	res, _ := solved(t)
	base := &check.Outcome{Scheme: res.Scheme, Total: res.Summary.Total, Worst: res.Summary.Worst}
	// A solver that always reproduces the base outcome trivially
	// satisfies every invariance relation.
	faithful := func(*design.Design) (*check.Outcome, error) { return base, nil }
	if vs := check.Metamorph(res.Design, base, faithful, 1); len(vs) != 0 {
		t.Fatalf("faithful solver flagged: %v", vs)
	}
}

func TestMetamorphFlagsDriftingSolver(t *testing.T) {
	res, _ := solved(t)
	base := &check.Outcome{Scheme: res.Scheme, Total: res.Summary.Total, Worst: res.Summary.Worst}
	drift := func(*design.Design) (*check.Outcome, error) {
		return &check.Outcome{Scheme: res.Scheme, Total: base.Total + 100, Worst: base.Worst}, nil
	}
	vs := check.Metamorph(res.Design, base, drift, 1)
	if len(vs) == 0 {
		t.Fatal("cost drift across permutations not flagged")
	}
}

func TestMetamorphFlagsFailingSolver(t *testing.T) {
	res, _ := solved(t)
	base := &check.Outcome{Scheme: res.Scheme, Total: res.Summary.Total, Worst: res.Summary.Worst}
	failing := func(*design.Design) (*check.Outcome, error) { return nil, errors.New("boom") }
	vs := check.Metamorph(res.Design, base, failing, 1)
	if len(vs) < 4 {
		t.Fatalf("expected every transform to report a solve failure, got %v", vs)
	}
}

func TestUpgradeBudget(t *testing.T) {
	base := &check.Outcome{Total: 100, Worst: 40}
	if vs := check.UpgradeBudget(base, &check.Outcome{Total: 90, Worst: 40}); len(vs) != 0 {
		t.Fatalf("improvement flagged: %v", vs)
	}
	if vs := check.UpgradeBudget(base, &check.Outcome{Total: 100, Worst: 40}); len(vs) != 0 {
		t.Fatalf("equality flagged: %v", vs)
	}
	if vs := check.UpgradeBudget(base, &check.Outcome{Total: 110, Worst: 40}); len(vs) == 0 {
		t.Fatal("regression not flagged")
	}
}
