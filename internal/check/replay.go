package check

import (
	"fmt"

	"prpart/internal/bitstream"
	"prpart/internal/device"
	"prpart/internal/floorplan"
	"prpart/internal/icap"
	"prpart/internal/scheme"
)

// maxPairReplayFrames bounds the physically replayed transition volume:
// below it every configuration pair is individually driven through the
// port; above it each bitstream is still loaded once (so every frame
// count comes from a parsed packet stream, never from the optimiser) and
// the pairwise sums are formed arithmetically from those counts. The
// bound is deterministic in the subject, so soak output never depends on
// machine speed.
const maxPairReplayFrames = 200_000

// replayCost reproduces the reported reconfiguration cost through the
// icap frame model: it floorplans the scheme (when the subject carries
// no plan), assembles real partial bitstreams (when the subject carries
// none), loads each through a fresh port restricted to the placement
// windows, and re-derives every configuration transition's frame cost
// from the port's own accounting. The reported Total and Worst must
// match exactly.
//
// derived is the feasibility pass's frame counts, cross-checked against
// the replayed values so the two independent derivations cannot drift
// apart silently.
func replayCost(rep *Report, sub Subject, derived []int) {
	s := sub.Scheme
	plan := sub.Plan
	if plan == nil {
		// A subject without a plan made no placement claim (the serving
		// path skips the backend), so the plan built here is replay
		// scaffolding only: region frame counts derive from tiles and are
		// device-independent, so any placeable device reproduces the same
		// cost. Escalate through the catalog like the flow does; only a
		// scheme no device can place is a finding.
		dev := sub.Device
		p, err := floorplan.Place(s, dev)
		for err != nil {
			next, nerr := device.NextLarger(dev)
			if nerr != nil {
				rep.addf("cost.floorplan", "scheme cannot be floorplanned on %s or any larger device: %v",
					sub.Device.Name, err)
				return
			}
			dev = next
			p, err = floorplan.Place(s, dev)
		}
		plan = p
	}
	bits := sub.Bitstreams
	if bits == nil {
		var err error
		bits, err = bitstream.Assemble(s, plan)
		if err != nil {
			rep.addf("cost.assemble", "bitstream assembly failed: %v", err)
			return
		}
	}
	if len(bits.PerRegion) != len(s.Regions) {
		rep.addf("cost.shape", "%d bitstream regions for %d scheme regions",
			len(bits.PerRegion), len(s.Regions))
		return
	}

	port := icap.New(0, 0)
	port.RestrictToPlan(plan)

	// Phase A: load every (region, part) bitstream once. The frame count
	// credited to a region is what the port parsed out of the packet
	// stream — FAR, FDRI word count, CRC and all — not what any model
	// computed.
	regionFrames := make([]int, len(s.Regions))
	for ri := range s.Regions {
		if len(bits.PerRegion[ri]) != len(s.Regions[ri].Parts) {
			rep.addf("cost.shape", "region %d has %d bitstreams for %d parts",
				ri, len(bits.PerRegion[ri]), len(s.Regions[ri].Parts))
			return
		}
		for pi, bs := range bits.PerRegion[ri] {
			before := port.Stats().Frames
			if _, err := port.Load(bs); err != nil {
				rep.addf("cost.load", "region %d part %d: %v", ri, pi, err)
				return
			}
			loaded := port.Stats().Frames - before
			if pi == 0 {
				regionFrames[ri] = loaded
			} else if loaded != regionFrames[ri] {
				rep.addf("cost.region-frames",
					"region %d part %d loads %d frames, part 0 loaded %d — parts of one region must rewrite the same area",
					ri, pi, loaded, regionFrames[ri])
			}
		}
		if ri < len(derived) && regionFrames[ri] != derived[ri] {
			rep.addf("cost.region-frames",
				"region %d replays %d frames, feasibility model derives %d",
				ri, regionFrames[ri], derived[ri])
		}
	}

	// Phase B: re-derive every unordered configuration pair's transition
	// cost — the frames of each region both configurations activate with
	// different parts — from the replayed counts.
	nCfg := len(s.Active)
	total, worst := 0, 0
	physical := 0
	type pair struct{ i, j, t int }
	var pairs []pair
	for i := 0; i < nCfg; i++ {
		for j := i + 1; j < nCfg; j++ {
			if len(s.Active[i]) != len(s.Regions) || len(s.Active[j]) != len(s.Regions) {
				continue // shape violations already reported by the semantic pass
			}
			t := 0
			for ri := range s.Regions {
				a, b := s.Active[i][ri], s.Active[j][ri]
				if a != scheme.Inactive && b != scheme.Inactive && a != b {
					t += regionFrames[ri]
				}
			}
			pairs = append(pairs, pair{i, j, t})
			total += t
			physical += t
			if t > worst {
				worst = t
			}
		}
	}
	rep.Replayed = true
	rep.ReplayedTotal, rep.ReplayedWorst = total, worst
	if total != sub.Total {
		rep.addf("cost.total", "reported total %d frames, replay derives %d", sub.Total, total)
	}
	if worst != sub.Worst {
		rep.addf("cost.worst", "reported worst case %d frames, replay derives %d", sub.Worst, worst)
	}

	// Phase C: when the physical volume is modest, actually drive every
	// transition through the port — each differing region's target
	// bitstream is loaded and the pair's cost taken from the port's frame
	// counter — proving the arithmetic of phase B matches what the fabric
	// would really do.
	if physical > maxPairReplayFrames {
		return
	}
	for _, p := range pairs {
		before := port.Stats().Frames
		for ri := range s.Regions {
			a, b := s.Active[p.i][ri], s.Active[p.j][ri]
			if a != scheme.Inactive && b != scheme.Inactive && a != b {
				if _, err := port.Load(bits.PerRegion[ri][b]); err != nil {
					rep.addf("cost.load", "transition %d->%d region %d: %v", p.i, p.j, ri, err)
					return
				}
			}
		}
		if got := port.Stats().Frames - before; got != p.t {
			rep.addf("cost.pair", "transition %d->%d replays %d frames, model says %d",
				p.i, p.j, got, p.t)
		}
	}
	// The port's busy time must scale with the frames it wrote (eq. 9):
	// loading everything above took at least the pure frame-transfer time
	// of the written frames.
	st := port.Stats()
	if st.Loads > 0 && st.Busy < port.FrameTime(st.Frames) {
		rep.addf("cost.time", "port busy %v for %d frames, below the frame-transfer floor %v",
			st.Busy, st.Frames, port.FrameTime(st.Frames))
	}
}

// DuplicateRowInvariance checks the "duplicated configuration" relation
// at the activation-table level: appending a copy of configuration r's
// activation row must add exactly r's pairwise costs (the copy is free
// against its twin), leaving the worst case unchanged. The design codec
// rejects literally duplicated configurations, so the relation is
// exercised where it is well-defined: on the cost structure of the
// solved scheme, using replayed frame counts.
func DuplicateRowInvariance(s *scheme.Scheme, regionFrames []int, r int) []Violation {
	var out []Violation
	nCfg := len(s.Active)
	if r < 0 || r >= nCfg {
		return []Violation{{Rule: "meta.dup-config", Detail: "row out of range"}}
	}
	cost := func(i, j int) int {
		t := 0
		for ri := range regionFrames {
			if ri >= len(s.Active[i]) || ri >= len(s.Active[j]) {
				return 0
			}
			a, b := s.Active[i][ri], s.Active[j][ri]
			if a != scheme.Inactive && b != scheme.Inactive && a != b {
				t += regionFrames[ri]
			}
		}
		return t
	}
	baseTotal, baseWorst := 0, 0
	rowSum := 0
	for i := 0; i < nCfg; i++ {
		for j := i + 1; j < nCfg; j++ {
			t := cost(i, j)
			baseTotal += t
			if t > baseWorst {
				baseWorst = t
			}
		}
		if i != r {
			rowSum += cost(r, i)
		}
	}
	// Extended table: row nCfg is a copy of row r.
	ext := append(append([][]int{}, s.Active...), s.Active[r])
	extTotal, extWorst := 0, 0
	costExt := func(i, j int) int {
		t := 0
		for ri := range regionFrames {
			if ri >= len(ext[i]) || ri >= len(ext[j]) {
				return 0
			}
			a, b := ext[i][ri], ext[j][ri]
			if a != scheme.Inactive && b != scheme.Inactive && a != b {
				t += regionFrames[ri]
			}
		}
		return t
	}
	for i := 0; i <= nCfg; i++ {
		for j := i + 1; j <= nCfg; j++ {
			t := costExt(i, j)
			extTotal += t
			if t > extWorst {
				extWorst = t
			}
		}
	}
	if want := baseTotal + rowSum; extTotal != want {
		out = append(out, Violation{Rule: "meta.dup-config", Detail: fmt.Sprintf(
			"duplicating config %d changes total from %d to %d, want %d (original plus its row sum)",
			r, baseTotal, extTotal, want)})
	}
	if extWorst != baseWorst {
		out = append(out, Violation{Rule: "meta.dup-config", Detail: fmt.Sprintf(
			"duplicating config %d changes worst case from %d to %d", r, baseWorst, extWorst)})
	}
	if c := costExt(r, nCfg); c != 0 {
		out = append(out, Violation{Rule: "meta.dup-config", Detail: fmt.Sprintf(
			"config %d and its duplicate cost %d frames to switch between; identical configurations must cost 0", r, c)})
	}
	return out
}
