package check_test

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestImportHygiene pins the oracle's independence: the non-test files
// of internal/check must not import the optimiser or its cost model.
// A checker that shares arithmetic with the code under test can only
// confirm that the code agrees with itself.
func TestImportHygiene(t *testing.T) {
	forbidden := []string{
		"prpart/internal/partition",
		"prpart/internal/cost",
		"prpart/internal/exact",
		"prpart/internal/core",
	}
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(".", name), nil, parser.ImportsOnly)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for _, bad := range forbidden {
				if path == bad || strings.HasPrefix(path, bad+"/") {
					t.Errorf("%s imports %s — the oracle must stay independent of the optimiser", name, path)
				}
			}
		}
	}
}
