package check

import (
	"bytes"
	"fmt"
	"math/rand"

	"prpart/internal/design"
	"prpart/internal/scheme"
)

// Outcome is what the metamorphic relations compare: the scheme a solver
// produced for a design and its reported cost. The solver itself is
// injected (see Solver) so this package never imports the optimiser.
type Outcome struct {
	Scheme       *scheme.Scheme
	Total, Worst int
}

// Solver produces an Outcome for a design. cmd/prcheck wires this to the
// real flow; tests can wire stubs or deliberately broken solvers.
type Solver func(d *design.Design) (*Outcome, error)

// Metamorph runs the metamorphic relations against a solved base design:
// transformations of the input with a predictable effect on the output.
//
//	permute-modules  reordering modules (and configuration columns)
//	                 must not change the cost or the scheme shape
//	permute-modes    reordering modes inside a module likewise
//	permute-configs  reordering the configuration list likewise
//	upgrade-budget   doubling the budget must not increase the total
//	pad-unused       appending modes and modules no configuration uses
//	                 must not change the cost (mode-0 normalisation)
//	normalize        Normalize is idempotent and maps the padded design
//	                 back to the normalised original
//
// seed drives the permutation choices deterministically. Solver failures
// on transformed designs are violations: every transformation preserves
// solvability.
func Metamorph(d *design.Design, base *Outcome, solve Solver, seed int64) []Violation {
	return MetamorphAs("meta", d, base, solve, seed)
}

// MetamorphAs is Metamorph with a caller-chosen rule prefix, so
// engine-specific runs (the multilevel suite reports under
// "multilevel-meta") stay distinguishable in reports from the standard
// flow's "meta" rules while sharing the relations and their
// implementation.
func MetamorphAs(prefix string, d *design.Design, base *Outcome, solve Solver, seed int64) []Violation {
	var out []Violation
	rng := rand.New(rand.NewSource(seed))
	baseFP := Fingerprint(base.Scheme)

	same := func(rule string, td *design.Design) {
		o, err := solve(td)
		if err != nil {
			out = append(out, Violation{Rule: rule, Detail: fmt.Sprintf("transformed design failed to solve: %v", err)})
			return
		}
		if o.Total != base.Total || o.Worst != base.Worst {
			out = append(out, Violation{Rule: rule, Detail: fmt.Sprintf(
				"cost changed: total %d->%d, worst %d->%d", base.Total, o.Total, base.Worst, o.Worst)})
		}
		if fp := Fingerprint(o.Scheme); fp != baseFP {
			out = append(out, Violation{Rule: rule, Detail: fmt.Sprintf(
				"scheme shape changed: %s -> %s", baseFP, fp)})
		}
	}

	same(prefix+".permute-modules", PermuteModules(d, rng.Perm(len(d.Modules))))
	same(prefix+".permute-modes", PermuteModes(d, rng))
	same(prefix+".permute-configs", PermuteConfigs(d, rng.Perm(len(d.Configurations))))
	same(prefix+".pad-unused", PadUnused(d))

	// Normalisation is idempotent, and normalising the padded design
	// recovers the normalised original byte-for-byte.
	n1 := Normalize(d)
	n2 := Normalize(n1)
	if !designEqual(n1, n2) {
		out = append(out, Violation{Rule: prefix + ".normalize", Detail: "Normalize is not idempotent"})
	}
	if !designEqual(Normalize(PadUnused(d)), n1) {
		out = append(out, Violation{Rule: prefix + ".normalize", Detail: "Normalize(padded) differs from Normalize(original)"})
	}
	return out
}

// UpgradeBudget checks the monotonicity relation separately, since its
// guarantee is weaker: enlarging the budget can only keep or improve the
// optimal total. The solver is a heuristic, so prcheck runs this
// relation over committed seeds to demonstrate the descent is in
// practice monotone under relaxation; a violation is reported with both
// costs so regressions that break monotonicity get a concrete witness.
func UpgradeBudget(base *Outcome, upgraded *Outcome) []Violation {
	if upgraded.Total > base.Total {
		return []Violation{{Rule: "meta.upgrade-budget", Detail: fmt.Sprintf(
			"doubling the budget raised the total from %d to %d frames", base.Total, upgraded.Total)}}
	}
	return nil
}

// PermuteModules returns a deep copy of d with modules reordered by perm
// (new index i holds old module perm[i]) and every configuration's mode
// column vector permuted to match.
func PermuteModules(d *design.Design, perm []int) *design.Design {
	nd := &design.Design{Name: d.Name, Static: d.Static}
	nd.Modules = make([]*design.Module, len(d.Modules))
	for i, p := range perm {
		nd.Modules[i] = copyModule(d.Modules[p])
	}
	for ci, c := range d.Configurations {
		nc := design.Configuration{Name: c.Name, Modes: make([]int, len(c.Modes))}
		for i, p := range perm {
			nc.Modes[i] = c.Modes[p]
		}
		nd.Configurations = append(nd.Configurations, nc)
		_ = ci
	}
	return nd
}

// PermuteModes returns a deep copy of d with each module's modes
// shuffled (drawing one permutation per module from rng) and every
// configuration's 1-based mode indices remapped accordingly.
func PermuteModes(d *design.Design, rng *rand.Rand) *design.Design {
	nd := &design.Design{Name: d.Name, Static: d.Static}
	// newIdx[mi][old 1-based] = new 1-based index.
	newIdx := make([][]int, len(d.Modules))
	for mi, m := range d.Modules {
		perm := rng.Perm(len(m.Modes)) // new position i holds old mode perm[i]
		nm := &design.Module{Name: m.Name, Modes: make([]design.Mode, len(m.Modes))}
		newIdx[mi] = make([]int, len(m.Modes)+1)
		for i, p := range perm {
			nm.Modes[i] = m.Modes[p]
			newIdx[mi][p+1] = i + 1
		}
		nd.Modules = append(nd.Modules, nm)
	}
	for _, c := range d.Configurations {
		nc := design.Configuration{Name: c.Name, Modes: make([]int, len(c.Modes))}
		for mi, k := range c.Modes {
			if k != 0 {
				nc.Modes[mi] = newIdx[mi][k]
			}
		}
		nd.Configurations = append(nd.Configurations, nc)
	}
	return nd
}

// PermuteConfigs returns a deep copy of d with the configuration list
// reordered by perm.
func PermuteConfigs(d *design.Design, perm []int) *design.Design {
	nd := &design.Design{Name: d.Name, Static: d.Static}
	for _, m := range d.Modules {
		nd.Modules = append(nd.Modules, copyModule(m))
	}
	nd.Configurations = make([]design.Configuration, len(d.Configurations))
	for i, p := range perm {
		nd.Configurations[i] = copyConfig(d.Configurations[p])
	}
	return nd
}

// PadUnused returns a deep copy of d with one extra mode appended to
// every module and one extra never-active module appended to the design.
// No configuration references any of the additions, so partitioning must
// ignore them entirely (the §IV-D mode-0 rule: absent means absent).
func PadUnused(d *design.Design) *design.Design {
	nd := &design.Design{Name: d.Name, Static: d.Static}
	for _, m := range d.Modules {
		nm := copyModule(m)
		nm.Modes = append(nm.Modes, design.Mode{
			Name:      "unused-pad",
			Resources: m.Modes[0].Resources,
		})
		nd.Modules = append(nd.Modules, nm)
	}
	nd.Modules = append(nd.Modules, &design.Module{
		Name:  "PadModule",
		Modes: []design.Mode{{Name: "1", Resources: d.Modules[0].Modes[0].Resources}},
	})
	for _, c := range d.Configurations {
		nc := copyConfig(c)
		nc.Modes = append(nc.Modes, 0) // the pad module is absent everywhere
		nd.Configurations = append(nd.Configurations, nc)
	}
	return nd
}

// Normalize applies mode-0 normalisation to a design: modules no
// configuration ever activates are dropped, modes no configuration uses
// are dropped, and configuration index vectors are re-based onto the
// surviving modules and modes. Solving a design and solving its
// normalisation must agree, and Normalize is idempotent.
func Normalize(d *design.Design) *design.Design {
	usedMode := make(map[design.ModeRef]bool)
	usedModule := make(map[int]bool)
	for _, c := range d.Configurations {
		for mi, k := range c.Modes {
			if k != 0 {
				usedModule[mi] = true
				usedMode[design.ModeRef{Module: mi, Mode: k}] = true
			}
		}
	}
	nd := &design.Design{Name: d.Name, Static: d.Static}
	moduleMap := make([]int, len(d.Modules)) // old -> new, -1 dropped
	modeMap := make([][]int, len(d.Modules)) // old module -> old 1-based -> new 1-based
	for mi, m := range d.Modules {
		moduleMap[mi] = -1
		if !usedModule[mi] {
			continue
		}
		nm := &design.Module{Name: m.Name}
		modeMap[mi] = make([]int, len(m.Modes)+1)
		for ki, md := range m.Modes {
			if usedMode[design.ModeRef{Module: mi, Mode: ki + 1}] {
				nm.Modes = append(nm.Modes, md)
				modeMap[mi][ki+1] = len(nm.Modes)
			}
		}
		moduleMap[mi] = len(nd.Modules)
		nd.Modules = append(nd.Modules, nm)
	}
	for _, c := range d.Configurations {
		nc := design.Configuration{Name: c.Name, Modes: make([]int, len(nd.Modules))}
		for mi, k := range c.Modes {
			if k != 0 && moduleMap[mi] >= 0 {
				nc.Modes[moduleMap[mi]] = modeMap[mi][k]
			}
		}
		nd.Configurations = append(nd.Configurations, nc)
	}
	return nd
}

func copyModule(m *design.Module) *design.Module {
	nm := &design.Module{Name: m.Name, Modes: make([]design.Mode, len(m.Modes))}
	copy(nm.Modes, m.Modes)
	return nm
}

func copyConfig(c design.Configuration) design.Configuration {
	nc := design.Configuration{Name: c.Name, Modes: make([]int, len(c.Modes))}
	copy(nc.Modes, c.Modes)
	return nc
}

// designEqual compares two designs through the canonical JSON codec.
func designEqual(a, b *design.Design) bool {
	var ab, bb bytes.Buffer
	if err := design.EncodeJSON(&ab, a); err != nil {
		return false
	}
	if err := design.EncodeJSON(&bb, b); err != nil {
		return false
	}
	return bytes.Equal(ab.Bytes(), bb.Bytes())
}
