package check

import (
	"fmt"
	"strings"

	"prpart/internal/bitstream"
	"prpart/internal/device"
	"prpart/internal/netlist"
	"prpart/internal/resource"
	"prpart/internal/ucf"
)

// checkArtifacts verifies whichever back-end artifacts the subject
// carries against the scheme and against each other: floorplan
// rectangles (bounds, disjointness, tile coverage), wrapper shape, UCF
// constraint groups and bitstream packets. Every check is re-derived
// here rather than delegated to the producing package's own Validate.
func checkArtifacts(rep *Report, sub Subject, frames []int) {
	if sub.Plan != nil {
		checkPlan(rep, sub)
	}
	if sub.Wrappers != nil {
		checkWrappers(rep, sub)
	}
	if sub.UCF != "" {
		checkUCF(rep, sub)
	}
	if sub.Bitstreams != nil {
		checkBitstreams(rep, sub, frames)
	}
}

func checkPlan(rep *Report, sub Subject) {
	s := sub.Scheme
	p := sub.Plan
	dev := p.Device
	if dev == nil {
		rep.addf("plan.device", "floorplan carries no device")
		return
	}
	if sub.Device != nil && dev.Name != sub.Device.Name {
		rep.addf("plan.device", "floorplan targets %s, result claims %s", dev.Name, sub.Device.Name)
	}
	if len(p.Placements) != len(s.Regions) {
		rep.addf("plan.shape", "%d placements for %d regions", len(p.Placements), len(s.Regions))
	}
	seen := make(map[int]bool)
	for i, pl := range p.Placements {
		if pl.Region < 0 || pl.Region >= len(s.Regions) {
			rep.addf("plan.region", "placement %d targets unknown region %d", i, pl.Region)
			continue
		}
		if seen[pl.Region] {
			rep.addf("plan.region", "region %d placed twice", pl.Region)
		}
		seen[pl.Region] = true
		r := pl.Rect
		if r.Row0 < 0 || r.Col0 < 0 || r.Row1 >= dev.Rows || r.Col1 >= len(dev.Columns) ||
			r.Row0 > r.Row1 || r.Col0 > r.Col1 {
			rep.addf("plan.bounds", "region %d rectangle %+v outside %s (%d rows, %d columns)",
				pl.Region, r, dev.Name, dev.Rows, len(dev.Columns))
			continue
		}
		// Re-count the tiles the rectangle encloses by scanning the
		// device's column kinds, and require them to cover the region's
		// re-derived tile need.
		var got resource.Vector
		for c := r.Col0; c <= r.Col1; c++ {
			got = got.Add(resource.Vector{}.Set(dev.Columns[c], r.Height()))
		}
		views := make([]partView, 0, len(s.Regions[pl.Region].Parts))
		for _, part := range s.Regions[pl.Region].Parts {
			views = append(views, partView{set: part.Set, resources: part.Resources})
		}
		var need resource.Vector
		for _, v := range views {
			need = need.Max(v.resources)
		}
		tiles := device.Tiles(need)
		if !tiles.FitsIn(got) {
			rep.addf("plan.tiles", "region %d rectangle encloses %v tiles, needs %v",
				pl.Region, got, tiles)
		}
		for j := i + 1; j < len(p.Placements); j++ {
			o := p.Placements[j].Rect
			if r.Row0 <= o.Row1 && o.Row0 <= r.Row1 && r.Col0 <= o.Col1 && o.Col0 <= r.Col1 {
				rep.addf("plan.overlap", "placements for regions %d and %d overlap",
					pl.Region, p.Placements[j].Region)
			}
		}
	}
}

func checkWrappers(rep *Report, sub Subject) {
	s := sub.Scheme
	w := sub.Wrappers
	if len(w.Regions) != len(s.Regions) {
		rep.addf("wrap.shape", "%d wrapper regions for %d scheme regions", len(w.Regions), len(s.Regions))
		return
	}
	for ri := range s.Regions {
		parts := s.Regions[ri].Parts
		if len(w.Regions[ri]) != len(parts) {
			rep.addf("wrap.shape", "region %d has %d wrappers for %d parts",
				ri, len(w.Regions[ri]), len(parts))
			continue
		}
		for pi, m := range w.Regions[ri] {
			if m == nil {
				rep.addf("wrap.missing", "region %d part %d has no wrapper", ri, pi)
				continue
			}
			// One submodule instance per member mode: the wrapper
			// instantiates exactly the part's mode set.
			subs := 0
			for _, inst := range m.Instances {
				if inst.Prim == netlist.SubModule {
					subs++
				}
			}
			if want := parts[pi].Set.Len(); subs != want {
				rep.addf("wrap.modes", "region %d part %d wrapper instantiates %d modes, part has %d",
					ri, pi, subs, want)
			}
		}
	}
	if (w.Static != nil) != (len(s.Static) > 0) {
		rep.addf("wrap.static", "static wrapper present=%t, scheme has %d promoted parts",
			w.Static != nil, len(s.Static))
	}
}

func checkUCF(rep *Report, sub Subject) {
	s := sub.Scheme
	parsed, err := ucf.Parse(strings.NewReader(sub.UCF))
	if err != nil {
		rep.addf("ucf.parse", "%v", err)
		return
	}
	groups := make(map[string]ucf.ParsedGroup, len(parsed.Groups))
	for _, g := range parsed.Groups {
		groups[g.Name] = g
	}
	for ri := range s.Regions {
		name := fmt.Sprintf("pblock_prr%d", ri+1)
		g, ok := groups[name]
		if !ok {
			rep.addf("ucf.group", "no AREA_GROUP %q for region %d", name, ri)
			continue
		}
		if !g.Reconfigurable {
			rep.addf("ucf.reconfig", "%s lacks RECONFIG_MODE = TRUE", name)
		}
		if len(g.Ranges) == 0 {
			rep.addf("ucf.range", "%s has no RANGE constraints", name)
		}
		if want := fmt.Sprintf("prr%d", ri+1); g.Inst != want {
			rep.addf("ucf.inst", "%s constrains instance %q, want %q", name, g.Inst, want)
		}
		// Cross-check the SLICE range rows against the placement, when
		// both are available: the Y extent encodes the placed tile rows.
		if sub.Plan == nil {
			continue
		}
		for _, pl := range sub.Plan.Placements {
			if pl.Region != ri {
				continue
			}
			for _, rng := range g.Ranges {
				if !strings.HasPrefix(rng, "SLICE_") {
					continue
				}
				_, y0, _, y1, err := ucf.SliceExtent(rng)
				if err != nil {
					rep.addf("ucf.range", "%s: %v", name, err)
					continue
				}
				wantY0 := device.CLBsPerTile * pl.Rect.Row0
				wantY1 := device.CLBsPerTile*(pl.Rect.Row1+1) - 1
				if y0 != wantY0 || y1 != wantY1 {
					rep.addf("ucf.range", "%s SLICE rows Y%d:Y%d disagree with placement rows Y%d:Y%d",
						name, y0, y1, wantY0, wantY1)
				}
			}
		}
	}
	if extra := len(parsed.Groups) - len(s.Regions); extra > 0 {
		rep.addf("ucf.group", "UCF defines %d area groups for %d regions", len(parsed.Groups), len(s.Regions))
	}
}

func checkBitstreams(rep *Report, sub Subject, frames []int) {
	s := sub.Scheme
	bits := sub.Bitstreams
	if len(bits.PerRegion) != len(s.Regions) {
		rep.addf("bits.shape", "%d bitstream regions for %d scheme regions",
			len(bits.PerRegion), len(s.Regions))
		return
	}
	addrOf := map[int]bitstream.FAR{}
	if sub.Plan != nil {
		for _, pl := range sub.Plan.Placements {
			addrOf[pl.Region] = bitstream.FAR{Row: pl.Rect.Row0, Major: pl.Rect.Col0}
		}
	}
	for ri := range s.Regions {
		if len(bits.PerRegion[ri]) != len(s.Regions[ri].Parts) {
			rep.addf("bits.shape", "region %d has %d bitstreams for %d parts",
				ri, len(bits.PerRegion[ri]), len(s.Regions[ri].Parts))
			continue
		}
		for pi, bs := range bits.PerRegion[ri] {
			if bs == nil {
				rep.addf("bits.missing", "region %d part %d has no bitstream", ri, pi)
				continue
			}
			if bs.Region != ri || bs.Part != pi {
				rep.addf("bits.slot", "bitstream at region %d part %d labels itself (%d, %d)",
					ri, pi, bs.Region, bs.Part)
			}
			if ri < len(frames) && bs.Frames != frames[ri] {
				rep.addf("bits.frames", "region %d part %d carries %d frames, region spans %d",
					ri, pi, bs.Frames, frames[ri])
			}
			if want, ok := addrOf[ri]; ok && bs.Addr != want {
				rep.addf("bits.far", "region %d part %d targets FAR %+v, placement origin is %+v",
					ri, pi, bs.Addr, want)
			}
			checkPacket(rep, ri, pi, bs)
		}
	}
}

// checkPacket statically validates the packet framing and CRC of one
// bitstream. The dynamic equivalent happens in the replay (the port
// parses the same stream); the static pass localises the failure when a
// stream is malformed rather than merely mis-sized.
func checkPacket(rep *Report, ri, pi int, bs *bitstream.Bitstream) {
	w := bs.Words
	payload := bs.Frames * device.WordsPerFrame
	if len(w) != payload+10 {
		rep.addf("bits.packet", "region %d part %d stream is %d words, want %d for %d frames",
			ri, pi, len(w), payload+10, bs.Frames)
		return
	}
	if w[0] != bitstream.DummyWord || w[1] != bitstream.SyncWord {
		rep.addf("bits.packet", "region %d part %d missing sync header", ri, pi)
		return
	}
	if w[2] != bitstream.CmdWriteFAR || bitstream.UnpackFAR(w[3]) != bs.Addr {
		rep.addf("bits.packet", "region %d part %d FAR word disagrees with Addr %+v", ri, pi, bs.Addr)
	}
	if w[4] != bitstream.CmdWriteFDRI || int(w[5]&0x07FFFFFF) != payload {
		rep.addf("bits.packet", "region %d part %d FDRI header does not announce %d payload words",
			ri, pi, payload)
		return
	}
	body := w[6 : 6+payload]
	if got := bitstream.Checksum(body); got != w[6+payload+1] || w[6+payload] != bitstream.CmdWriteCRC {
		rep.addf("bits.crc", "region %d part %d CRC word does not match its payload", ri, pi)
	}
	if w[len(w)-2] != bitstream.CmdDesync || w[len(w)-1] != bitstream.DesyncValue {
		rep.addf("bits.packet", "region %d part %d missing desync trailer", ri, pi)
	}
}
