// Package check is an independent result-verification oracle for
// partitioning results. It re-derives every claim a solve result makes —
// feasibility, semantic validity and cost — from first principles, using
// only the ground-truth models (internal/resource, internal/device, the
// icap frame replay) and never the optimiser that produced the result.
//
// The package deliberately does not import internal/partition,
// internal/cost or internal/exact: a checker that shares arithmetic with
// the optimiser can only confirm that the optimiser agrees with itself.
// Feasibility is recomputed from the design's mode utilisations and the
// device tile model; cost is recomputed by assembling real partial
// bitstreams and replaying configuration transitions through an
// icap.Port (see replay.go). An import-hygiene test pins this boundary.
package check

import (
	"fmt"
	"sort"
	"strings"

	"prpart/internal/basepart"
	"prpart/internal/bitstream"
	"prpart/internal/design"
	"prpart/internal/device"
	"prpart/internal/floorplan"
	"prpart/internal/modeset"
	"prpart/internal/resource"
	"prpart/internal/scheme"
	"prpart/internal/wrapper"
)

// Violation is one broken invariant found by the oracle.
type Violation struct {
	// Rule names the invariant ("feas.part-fit", "cost.total", ...).
	Rule string
	// Detail explains the specific failure.
	Detail string
}

func (v Violation) String() string { return v.Rule + ": " + v.Detail }

// Report collects the oracle's findings for one result.
type Report struct {
	// Violations lists every broken invariant, in check order.
	Violations []Violation
	// ReplayedTotal and ReplayedWorst are the icap-derived transition
	// costs in frames, valid when the cost replay ran (Replayed true).
	ReplayedTotal, ReplayedWorst int
	Replayed                     bool
}

// OK reports whether every invariant held.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// addf appends a violation.
func (r *Report) addf(rule, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{Rule: rule, Detail: fmt.Sprintf(format, args...)})
}

// String renders the report for logs and error messages.
func (r *Report) String() string {
	if r.OK() {
		return "check: ok"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "check: %d violation(s)", len(r.Violations))
	for _, v := range r.Violations {
		b.WriteString("\n  " + v.String())
	}
	return b.String()
}

// Subject is one solve result under verification: the scheme with its
// reported cost, the device and budget it claims to fit, and whatever
// back-end artifacts the flow produced (each checked only when present).
type Subject struct {
	// Scheme is the partitioning under test (required).
	Scheme *scheme.Scheme
	// Device is the target FPGA (required for the cost replay and the
	// floorplan checks; nil skips both).
	Device *device.Device
	// Budget is the claimed resource cap; zero means the device capacity.
	Budget resource.Vector
	// Total and Worst are the reported transition costs in frames.
	Total, Worst int

	// Optional artifacts, verified for mutual consistency when non-nil.
	Plan       *floorplan.Plan
	Wrappers   *wrapper.Set
	Bitstreams *bitstream.Set
	UCF        string
}

// Verify runs every applicable check and returns the findings. A nil or
// structurally hopeless subject yields a report whose violations say so
// rather than a panic.
func Verify(sub Subject) *Report {
	rep := &Report{}
	s := sub.Scheme
	if s == nil || s.Design == nil {
		rep.addf("subject", "no scheme or design to verify")
		return rep
	}
	if err := s.Design.Validate(); err != nil {
		rep.addf("design", "design invalid: %v", err)
		return rep
	}
	frames := checkFeasibility(rep, sub)
	checkSemantic(rep, s)
	if sub.Device != nil {
		replayCost(rep, sub, frames)
	}
	checkArtifacts(rep, sub, frames)
	return rep
}

// partView is a base partition as the checker sees it: the mode set with
// resources re-summed from the design, independent of the value the
// optimiser stored.
type partView struct {
	set       modeset.Set
	resources resource.Vector
}

// regionGeometry re-derives a region's quantised area and frame count
// from the design's mode utilisations and the device tile model — the
// checker's own arithmetic, shared by feasibility, replay and the
// artifact checks so they agree with each other (and only then compared
// against the optimiser's claims).
func regionGeometry(parts []partView) (area resource.Vector, frames int) {
	var need resource.Vector
	for _, p := range parts {
		need = need.Max(p.resources)
	}
	tiles := device.Tiles(need)
	return device.TilesToPrimitives(tiles), device.FramesForTiles(tiles)
}

// viewParts recomputes each part's resource need from the design and
// flags parts whose stored resources drifted from that ground truth.
func viewParts(rep *Report, d *design.Design, where string, parts []basepart.BasePartition) []partView {
	out := make([]partView, 0, len(parts))
	for pi, p := range parts {
		refs := p.Set.Refs()
		if len(refs) == 0 {
			rep.addf("feas.part-empty", "%s part %d has an empty mode set", where, pi)
			continue
		}
		var sum resource.Vector
		bad := false
		for _, r := range refs {
			if r.Module < 0 || r.Module >= len(d.Modules) ||
				r.Mode < 1 || r.Mode > len(d.Modules[r.Module].Modes) {
				rep.addf("feas.part-ref", "%s part %d references unknown mode %s", where, pi, r)
				bad = true
				continue
			}
			sum = sum.Add(d.ModeResources(r))
		}
		if bad {
			continue
		}
		if sum != p.Resources {
			rep.addf("feas.part-resources",
				"%s part %d claims %v, modes sum to %v", where, pi, p.Resources, sum)
		}
		out = append(out, partView{set: p.Set, resources: sum})
	}
	return out
}

// checkFeasibility re-derives the scheme's area claims: every part fits
// its region's quantised allocation, and the whole scheme — fixed static
// logic, promoted static parts, and quantised region areas — fits the
// budget and the device, componentwise. It returns each region's derived
// frame count for the later checks.
func checkFeasibility(rep *Report, sub Subject) (frames []int) {
	s := sub.Scheme
	d := s.Design
	frames = make([]int, len(s.Regions))
	total := d.Static
	for ri := range s.Regions {
		views := viewParts(rep, d, fmt.Sprintf("region %d", ri), s.Regions[ri].Parts)
		area, fr := regionGeometry(views)
		frames[ri] = fr
		for pi, v := range views {
			if !v.resources.FitsIn(area) {
				rep.addf("feas.part-fit", "region %d part %d needs %v, region provides %v",
					ri, pi, v.resources, area)
			}
		}
		if len(views) > 0 && fr <= 0 {
			rep.addf("feas.region-frames", "region %d derives %d frames for a non-empty region", ri, fr)
		}
		total = total.Add(area)
	}
	for _, v := range viewParts(rep, d, "static", s.Static) {
		total = total.Add(v.resources)
	}
	budget := sub.Budget
	if budget.IsZero() && sub.Device != nil {
		budget = sub.Device.Capacity
	}
	if !budget.IsZero() && !total.FitsIn(budget) {
		rep.addf("feas.budget", "scheme needs %v, budget is %v", total, budget)
	}
	// Physical device fit is deliberately not a componentwise capacity
	// comparison here: the budget may legitimately exceed a capacity
	// component (the paper's case-study budget does). The device is the
	// floorplanner's problem, and the oracle checks it physically — the
	// plan checks verify every placed rectangle, and the cost replay
	// places the scheme itself when the subject carries no plan.
	return frames
}

// checkSemantic re-derives — without calling scheme.Validate — that the
// activation table realises every configuration: shape and index ranges,
// full mode coverage by static logic plus active parts, no spurious
// activations (mode-0 normalisation: a region stays inactive in every
// configuration that needs none of its modes), and mutual exclusion (one
// part per region per configuration, which the single-index activation
// row makes structural and the range check enforces).
func checkSemantic(rep *Report, s *scheme.Scheme) {
	d := s.Design
	if len(s.Active) != len(d.Configurations) {
		rep.addf("sem.shape", "%d activation rows for %d configurations",
			len(s.Active), len(d.Configurations))
		return
	}
	staticSet := modeset.Set{}
	for _, p := range s.Static {
		staticSet = staticSet.Union(p.Set)
	}
	// Every mode placed anywhere must be used by some configuration:
	// carrying dead modes in a region inflates its area for nothing.
	used := make(map[design.ModeRef]bool)
	for _, r := range d.UsedModes() {
		used[r] = true
	}
	place := func(where string, set modeset.Set) {
		for _, r := range set.Refs() {
			if !used[r] {
				rep.addf("sem.dead-mode", "%s carries mode %s, which no configuration uses", where, r)
			}
		}
	}
	place("static logic", staticSet)
	for ri := range s.Regions {
		for pi, p := range s.Regions[ri].Parts {
			place(fmt.Sprintf("region %d part %d", ri, pi), p.Set)
		}
	}
	for ci := range d.Configurations {
		row := s.Active[ci]
		if len(row) != len(s.Regions) {
			rep.addf("sem.shape", "config %d: %d activation columns for %d regions",
				ci, len(row), len(s.Regions))
			continue
		}
		cfg := modeset.New(d.ConfigModes(ci)...)
		provided := staticSet
		for ri, pi := range row {
			if pi == scheme.Inactive {
				continue
			}
			if pi < 0 || pi >= len(s.Regions[ri].Parts) {
				rep.addf("sem.range", "config %d region %d: part index %d out of range",
					ci, ri, pi)
				continue
			}
			part := s.Regions[ri].Parts[pi]
			if !part.Set.Intersects(cfg) {
				rep.addf("sem.spurious",
					"config %d region %d: active part %v shares no mode with the configuration",
					ci, ri, part.Set.Refs())
			}
			provided = provided.Union(part.Set)
		}
		for _, r := range cfg.Refs() {
			if !provided.Contains(r) {
				rep.addf("sem.coverage", "config %d: mode %s not provided by static logic or any active region",
					ci, r)
			}
		}
	}
}

// RegionFrames re-derives each region's frame count from the stored part
// resources and the device tile model — the same arithmetic the
// feasibility pass uses. Callers feed it to DuplicateRowInvariance.
func RegionFrames(s *scheme.Scheme) []int {
	fr := make([]int, len(s.Regions))
	for ri := range s.Regions {
		parts := make([]partView, 0, len(s.Regions[ri].Parts))
		for _, p := range s.Regions[ri].Parts {
			parts = append(parts, partView{set: p.Set, resources: p.Resources})
		}
		_, fr[ri] = regionGeometry(parts)
	}
	return fr
}

// Fingerprint summarises a scheme up to region order and part labelling:
// the sorted multiset of derived region frame counts, the static
// resource sum, and the region count. Two isomorphic schemes — equal up
// to permuting modules, modes or regions — share a fingerprint.
func Fingerprint(s *scheme.Scheme) string {
	fr := make([]int, 0, len(s.Regions))
	for ri := range s.Regions {
		parts := make([]partView, 0, len(s.Regions[ri].Parts))
		for _, p := range s.Regions[ri].Parts {
			parts = append(parts, partView{set: p.Set, resources: p.Resources})
		}
		_, f := regionGeometry(parts)
		fr = append(fr, f)
	}
	sort.Ints(fr)
	var st resource.Vector
	for _, p := range s.Static {
		st = st.Add(p.Resources)
	}
	return fmt.Sprintf("regions=%d frames=%v static=%v", len(s.Regions), fr, st)
}
