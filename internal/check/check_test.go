package check_test

import (
	"strings"
	"testing"

	"prpart/internal/check"
	"prpart/internal/core"
	"prpart/internal/design"
	"prpart/internal/resource"
	"prpart/internal/scheme"
)

// solved runs the full flow on the paper's case study and wraps the
// result as the oracle's subject — the common fixture every mutation
// test perturbs.
func solved(t *testing.T) (*core.Result, check.Subject) {
	t.Helper()
	res, err := core.Run(design.VideoReceiver(), core.Options{
		Device: "FX70T",
		Budget: design.CaseStudyBudget(),
	})
	if err != nil {
		t.Fatalf("core.Run: %v", err)
	}
	return res, check.Subject{
		Scheme:     res.Scheme,
		Device:     res.Device,
		Budget:     res.Budget,
		Total:      res.Summary.Total,
		Worst:      res.Summary.Worst,
		Plan:       res.Plan,
		Wrappers:   res.Wrappers,
		Bitstreams: res.Bitstreams,
		UCF:        res.UCF,
	}
}

func wantRule(t *testing.T, rep *check.Report, rule string) {
	t.Helper()
	for _, v := range rep.Violations {
		if v.Rule == rule {
			return
		}
	}
	t.Fatalf("no %s violation; got %v", rule, rep.Violations)
}

func TestVerifyAcceptsSolvedResult(t *testing.T) {
	_, sub := solved(t)
	rep := check.Verify(sub)
	if !rep.OK() {
		t.Fatalf("valid result rejected:\n%s", rep)
	}
	if !rep.Replayed {
		t.Fatal("cost replay did not run")
	}
	if rep.ReplayedTotal != sub.Total || rep.ReplayedWorst != sub.Worst {
		t.Fatalf("replay derived (%d, %d), reported (%d, %d)",
			rep.ReplayedTotal, rep.ReplayedWorst, sub.Total, sub.Worst)
	}
}

func TestVerifyWithoutDeviceSkipsReplay(t *testing.T) {
	_, sub := solved(t)
	sub.Device = nil
	sub.Plan, sub.Wrappers, sub.Bitstreams, sub.UCF = nil, nil, nil, ""
	rep := check.Verify(sub)
	if !rep.OK() {
		t.Fatalf("unexpected violations: %s", rep)
	}
	if rep.Replayed {
		t.Fatal("replay ran without a device")
	}
}

func TestVerifyFlagsInflatedTotal(t *testing.T) {
	_, sub := solved(t)
	sub.Total++
	wantRule(t, check.Verify(sub), "cost.total")
}

func TestVerifyFlagsDeflatedWorst(t *testing.T) {
	_, sub := solved(t)
	sub.Worst--
	wantRule(t, check.Verify(sub), "cost.worst")
}

func TestVerifyFlagsDriftedPartResources(t *testing.T) {
	res, sub := solved(t)
	mut := cloneScheme(res.Scheme)
	mut.Regions[0].Parts[0].Resources = mut.Regions[0].Parts[0].Resources.Add(resource.New(1, 0, 0))
	sub.Scheme = mut
	wantRule(t, check.Verify(sub), "feas.part-resources")
}

func TestVerifyFlagsTightBudget(t *testing.T) {
	_, sub := solved(t)
	sub.Budget = resource.New(1, 1, 1)
	wantRule(t, check.Verify(sub), "feas.budget")
}

func TestVerifyFlagsSpuriousActivation(t *testing.T) {
	res, sub := solved(t)
	mut := cloneScheme(res.Scheme)
	// Find a configuration/region the solver left inactive and force a
	// part onto it: activating a region the configuration does not need
	// violates mode-0 normalisation.
	found := false
	for ci := range mut.Active {
		for ri, pi := range mut.Active[ci] {
			if pi == scheme.Inactive {
				mut.Active[ci][ri] = 0
				found = true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Skip("scheme has no inactive slot to corrupt")
	}
	sub.Scheme = mut
	rep := check.Verify(sub)
	if rep.OK() {
		t.Fatalf("spurious activation not flagged")
	}
	if !hasPrefix(rep, "sem.") && !hasPrefix(rep, "cost.") {
		t.Fatalf("unexpected rules: %s", rep)
	}
}

func TestVerifyFlagsMissingCoverage(t *testing.T) {
	res, sub := solved(t)
	mut := cloneScheme(res.Scheme)
	// Deactivate every region in configuration 0: its modes are no
	// longer provided by anything.
	for ri := range mut.Active[0] {
		mut.Active[0][ri] = scheme.Inactive
	}
	sub.Scheme = mut
	rep := check.Verify(sub)
	wantRule(t, rep, "sem.coverage")
}

func TestVerifyFlagsTruncatedActivation(t *testing.T) {
	res, sub := solved(t)
	mut := cloneScheme(res.Scheme)
	mut.Active = mut.Active[:len(mut.Active)-1]
	sub.Scheme = mut
	wantRule(t, check.Verify(sub), "sem.shape")
}

func TestVerifyFlagsCorruptBitstream(t *testing.T) {
	_, sub := solved(t)
	bits := sub.Bitstreams
	if len(bits.PerRegion) == 0 || len(bits.PerRegion[0]) == 0 {
		t.Skip("no bitstreams to corrupt")
	}
	bs := bits.PerRegion[0][0].Clone()
	bs.Words[7] ^= 0xFFFF     // payload word: breaks the CRC
	bits.PerRegion[0][0] = bs // each test gets a fresh fixture
	rep := check.Verify(sub)
	wantRule(t, rep, "bits.crc")
	// The replay drives the same stream through the port, which must
	// reject it too.
	wantRule(t, rep, "cost.load")
}

func TestVerifyFlagsForeignUCF(t *testing.T) {
	_, sub := solved(t)
	sub.UCF = strings.Replace(sub.UCF, "RECONFIG_MODE", "IGNORED_MODE", 1)
	wantRule(t, check.Verify(sub), "ucf.reconfig")
}

func TestVerifyFlagsWrongPlanDevice(t *testing.T) {
	res, sub := solved(t)
	mut := *res.Plan
	mut.Device = nil
	sub.Plan = &mut
	wantRule(t, check.Verify(sub), "plan.device")
}

func TestRegionFramesMatchReplay(t *testing.T) {
	res, sub := solved(t)
	rep := check.Verify(sub)
	if !rep.OK() {
		t.Fatalf("fixture invalid: %s", rep)
	}
	frames := check.RegionFrames(res.Scheme)
	if len(frames) != len(res.Scheme.Regions) {
		t.Fatalf("got %d frame counts for %d regions", len(frames), len(res.Scheme.Regions))
	}
	for ri, f := range frames {
		if f <= 0 {
			t.Fatalf("region %d derives %d frames", ri, f)
		}
	}
}

func TestDuplicateRowInvarianceHolds(t *testing.T) {
	res, _ := solved(t)
	frames := check.RegionFrames(res.Scheme)
	for r := range res.Scheme.Active {
		if vs := check.DuplicateRowInvariance(res.Scheme, frames, r); len(vs) != 0 {
			t.Fatalf("row %d: %v", r, vs)
		}
	}
	if vs := check.DuplicateRowInvariance(res.Scheme, frames, len(res.Scheme.Active)); len(vs) == 0 {
		t.Fatal("out-of-range row not flagged")
	}
}

func hasPrefix(rep *check.Report, prefix string) bool {
	for _, v := range rep.Violations {
		if strings.HasPrefix(v.Rule, prefix) {
			return true
		}
	}
	return false
}

// cloneScheme deep-copies the mutable parts of a scheme so mutation
// tests never corrupt the shared fixture.
func cloneScheme(s *scheme.Scheme) *scheme.Scheme {
	ns := *s
	ns.Regions = make([]scheme.Region, len(s.Regions))
	for i, r := range s.Regions {
		nr := r
		nr.Parts = append(nr.Parts[:0:0], r.Parts...)
		ns.Regions[i] = nr
	}
	ns.Static = append(s.Static[:0:0], s.Static...)
	ns.Active = make([][]int, len(s.Active))
	for i, row := range s.Active {
		ns.Active[i] = append(row[:0:0], row...)
	}
	return &ns
}
