package resource

import (
	"math"
	"testing"
)

// The edge-case tables below cover what the happy-path tests skip: zero
// vectors, extreme magnitudes at the int limits, and mixed-sign deltas,
// which the search produces transiently when budgets are subtracted
// before clamping.

func TestSubMixedSigns(t *testing.T) {
	cases := []struct {
		name    string
		a, b    Vector
		sub     Vector
		floor   Vector
		nonNeg  bool // Sub result
		fitsInA bool // b.FitsIn(a)
	}{
		{"zero-zero", Vector{}, Vector{}, Vector{}, Vector{}, true, true},
		{"zero-minus-pos", Vector{}, New(1, 2, 3), New(-1, -2, -3), Vector{}, false, false},
		{"pos-minus-zero", New(1, 2, 3), Vector{}, New(1, 2, 3), New(1, 2, 3), true, true},
		{"mixed-components", New(5, 1, 0), New(3, 4, 0), New(2, -3, 0), New(2, 0, 0), false, false},
		{"negative-operands", New(-2, 3, -4), New(1, -1, 2), New(-3, 4, -6), New(0, 4, 0), false, false},
		{"self-cancel", New(7, 8, 9), New(7, 8, 9), Vector{}, Vector{}, true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.a.Sub(tc.b); got != tc.sub {
				t.Errorf("Sub = %v, want %v", got, tc.sub)
			}
			if got := tc.a.SubFloor(tc.b); got != tc.floor {
				t.Errorf("SubFloor = %v, want %v", got, tc.floor)
			}
			if got := tc.a.Sub(tc.b).IsNonNegative(); got != tc.nonNeg {
				t.Errorf("Sub(...).IsNonNegative = %t, want %t", got, tc.nonNeg)
			}
			if got := tc.b.FitsIn(tc.a); got != tc.fitsInA {
				t.Errorf("FitsIn = %t, want %t", got, tc.fitsInA)
			}
			if f := tc.a.SubFloor(tc.b); !f.IsNonNegative() {
				t.Errorf("SubFloor produced a negative component: %v", f)
			}
		})
	}
}

func TestMaxWithNegatives(t *testing.T) {
	cases := []struct {
		name string
		a, b Vector
		want Vector
	}{
		{"zero-identity-for-nonneg", New(3, 0, 5), Vector{}, New(3, 0, 5)},
		{"zero-masks-negatives", New(-3, -1, -5), Vector{}, Vector{}},
		{"componentwise", New(1, 9, -2), New(4, 2, -7), New(4, 9, -2)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.a.Max(tc.b); got != tc.want {
				t.Errorf("Max = %v, want %v", got, tc.want)
			}
			if got := tc.b.Max(tc.a); got != tc.want {
				t.Errorf("Max not commutative: %v vs %v", got, tc.want)
			}
		})
	}
}

func TestScaleEdges(t *testing.T) {
	cases := []struct {
		name string
		v    Vector
		n    int
		want Vector
	}{
		{"by-zero", New(3, 4, 5), 0, Vector{}},
		{"zero-by-anything", Vector{}, 1 << 20, Vector{}},
		{"by-negative", New(3, 4, 5), -2, New(-6, -8, -10)},
		{"negative-by-negative", New(-3, 0, 5), -1, New(3, 0, -5)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.v.Scale(tc.n); got != tc.want {
				t.Errorf("Scale(%d) = %v, want %v", tc.n, got, tc.want)
			}
		})
	}
}

func TestClampSaturation(t *testing.T) {
	cases := []struct {
		name  string
		v     Vector
		limit int
		want  Vector
	}{
		{"zero", Vector{}, 100, Vector{}},
		{"in-range", New(5, 50, 99), 100, New(5, 50, 99)},
		{"wraps", New(100, 101, 250), 100, New(0, 1, 50)},
		{"negative-abs", New(-7, -100, -101), 100, New(7, 0, 1)},
		// -MinInt overflows back to MinInt; Clamp pins it to 0 instead
		// of handing a negative count to the modulo.
		{"minint-saturates", New(math.MinInt, math.MinInt, math.MinInt), 100, Vector{}},
		{"maxint-wraps", New(math.MaxInt, 0, 0), 10, New(math.MaxInt%10, 0, 0)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Clamp(tc.v, tc.limit)
			if got != tc.want {
				t.Errorf("Clamp(%v, %d) = %v, want %v", tc.v, tc.limit, got, tc.want)
			}
			if !got.IsNonNegative() {
				t.Errorf("Clamp produced a negative component: %v", got)
			}
			if got.CLB >= tc.limit || got.BRAM >= tc.limit || got.DSP >= tc.limit {
				t.Errorf("Clamp exceeded limit: %v", got)
			}
		})
	}
}

func TestAddOverflowWraps(t *testing.T) {
	// Document (rather than hide) Go's wrapping int semantics at the
	// extreme: Add does not saturate. Real utilisations are bounded far
	// below this by Clamp and the device capacities, so the partitioner
	// never operates in the wrapping regime.
	v := New(math.MaxInt, 0, 0).Add(New(1, 0, 0))
	if v.CLB != math.MinInt {
		t.Fatalf("MaxInt+1 = %d, want wrap to MinInt", v.CLB)
	}
	if v.IsNonNegative() {
		t.Fatal("wrapped component reported as non-negative")
	}
}

func TestAggregatesEmptyAndSingleton(t *testing.T) {
	if got := SumAll(); !got.IsZero() {
		t.Errorf("SumAll() = %v, want zero", got)
	}
	if got := MaxAll(); !got.IsZero() {
		t.Errorf("MaxAll() = %v, want zero", got)
	}
	one := New(2, -3, 4)
	if got := SumAll(one); got != one {
		t.Errorf("SumAll(v) = %v, want %v", got, one)
	}
	// MaxAll seeds its fold with the zero vector, so negative components
	// are floored at zero even for a single argument — unlike binary
	// Max, which passes negatives through.
	if got, want := MaxAll(one), New(2, 0, 4); got != want {
		t.Errorf("MaxAll(v) = %v, want %v (negatives floored by the zero seed)", got, want)
	}
	neg := MaxAll(New(-5, -1, -9), New(-2, -8, -3))
	if neg != (Vector{}) {
		t.Errorf("MaxAll over negatives = %v, want zero (seeded by the zero vector)", neg)
	}
}

func TestTotalAndZeroMixedSigns(t *testing.T) {
	cases := []struct {
		name   string
		v      Vector
		total  int
		isZero bool
	}{
		{"zero", Vector{}, 0, true},
		{"cancelling-components", New(5, -5, 0), 0, false},
		{"all-negative", New(-1, -2, -3), -6, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.v.Total(); got != tc.total {
				t.Errorf("Total = %d, want %d", got, tc.total)
			}
			if got := tc.v.IsZero(); got != tc.isZero {
				t.Errorf("IsZero = %t, want %t", got, tc.isZero)
			}
		})
	}
}
