package resource

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := []struct {
		k    Kind
		want string
	}{
		{CLB, "CLB"},
		{BRAM, "BRAM"},
		{DSP, "DSP"},
		{Kind(42), "Kind(42)"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(c.k), got, c.want)
		}
	}
}

func TestGetSet(t *testing.T) {
	v := New(1, 2, 3)
	for i, want := range []int{1, 2, 3} {
		if got := v.Get(Kinds[i]); got != want {
			t.Errorf("Get(%v) = %d, want %d", Kinds[i], got, want)
		}
	}
	v2 := v.Set(BRAM, 9)
	if v2.BRAM != 9 || v.BRAM != 2 {
		t.Errorf("Set must not mutate receiver: v=%v v2=%v", v, v2)
	}
}

func TestGetPanicsOnInvalidKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Get(invalid) did not panic")
		}
	}()
	New(1, 2, 3).Get(Kind(99))
}

func TestSetPanicsOnInvalidKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set(invalid) did not panic")
		}
	}()
	New(1, 2, 3).Set(Kind(99), 1)
}

func TestAddSub(t *testing.T) {
	a := New(10, 5, 2)
	b := New(3, 1, 7)
	if got, want := a.Add(b), New(13, 6, 9); got != want {
		t.Errorf("Add = %v, want %v", got, want)
	}
	if got, want := a.Sub(b), New(7, 4, -5); got != want {
		t.Errorf("Sub = %v, want %v", got, want)
	}
	if got, want := a.SubFloor(b), New(7, 4, 0); got != want {
		t.Errorf("SubFloor = %v, want %v", got, want)
	}
}

func TestMax(t *testing.T) {
	a := New(10, 1, 2)
	b := New(3, 6, 2)
	if got, want := a.Max(b), New(10, 6, 2); got != want {
		t.Errorf("Max = %v, want %v", got, want)
	}
}

func TestScale(t *testing.T) {
	if got, want := New(1, 2, 3).Scale(4), New(4, 8, 12); got != want {
		t.Errorf("Scale = %v, want %v", got, want)
	}
}

func TestFitsIn(t *testing.T) {
	cap := New(100, 10, 20)
	if !New(100, 10, 20).FitsIn(cap) {
		t.Error("equal vector should fit")
	}
	if !New(0, 0, 0).FitsIn(cap) {
		t.Error("zero vector should fit")
	}
	if New(101, 0, 0).FitsIn(cap) {
		t.Error("CLB overflow should not fit")
	}
	if New(0, 11, 0).FitsIn(cap) {
		t.Error("BRAM overflow should not fit")
	}
	if New(0, 0, 21).FitsIn(cap) {
		t.Error("DSP overflow should not fit")
	}
}

func TestZeroTotalNonNegative(t *testing.T) {
	var z Vector
	if !z.IsZero() || z.Total() != 0 || !z.IsNonNegative() {
		t.Errorf("zero vector misbehaves: %v", z)
	}
	if New(1, 0, 0).IsZero() {
		t.Error("non-zero vector reported as zero")
	}
	if New(-1, 0, 0).IsNonNegative() {
		t.Error("negative vector reported non-negative")
	}
	if got := New(1, 2, 3).Total(); got != 6 {
		t.Errorf("Total = %d, want 6", got)
	}
}

func TestString(t *testing.T) {
	if got, want := New(5, 2, 1).String(), "{5 CLB, 2 BRAM, 1 DSP}"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestSumAllMaxAll(t *testing.T) {
	vs := []Vector{New(1, 2, 3), New(4, 0, 1), New(0, 5, 0)}
	if got, want := SumAll(vs...), New(5, 7, 4); got != want {
		t.Errorf("SumAll = %v, want %v", got, want)
	}
	if got, want := MaxAll(vs...), New(4, 5, 3); got != want {
		t.Errorf("MaxAll = %v, want %v", got, want)
	}
	if got := SumAll(); !got.IsZero() {
		t.Errorf("SumAll() = %v, want zero", got)
	}
	if got := MaxAll(); !got.IsZero() {
		t.Errorf("MaxAll() = %v, want zero", got)
	}
}

// Property: Add is commutative and associative; Max is idempotent,
// commutative and dominates both operands.
func TestAddCommutative(t *testing.T) {
	f := func(a, b Vector) bool { return a.Add(b) == b.Add(a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddAssociative(t *testing.T) {
	f := func(a, b, c Vector) bool {
		return a.Add(b).Add(c) == a.Add(b.Add(c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxProperties(t *testing.T) {
	f := func(a, b Vector) bool {
		m := a.Max(b)
		return m == b.Max(a) && m == m.Max(a) && m == m.Max(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubFloorNonNegative(t *testing.T) {
	f := func(a, b Vector) bool { return a.SubFloor(b).IsNonNegative() }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxFitsInSum(t *testing.T) {
	// For non-negative vectors, max(a,b) always fits in a+b.
	f := func(a, b Vector) bool {
		a, b = Clamp(a, 1<<20), Clamp(b, 1<<20)
		return a.Max(b).FitsIn(a.Add(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
