// Package resource defines the resource vectors used throughout the
// partitioner. A Vector counts the three reconfigurable primitive types
// found on Xilinx Virtex-era devices: configurable logic blocks (CLBs),
// BlockRAMs and DSP slices. All of the partitioning arithmetic — module
// utilisations, region sizing, device capacities and feasibility checks —
// is expressed in these units before being quantised to tiles and frames
// by the device model.
package resource

import "fmt"

// Kind identifies one of the three primitive resource types present in a
// reconfigurable tile.
type Kind int

const (
	// CLB counts configurable logic blocks. Following the paper's
	// convention (its Table II is labelled "Slices" but summed as "CLBs"
	// in Tables IV-V), CLB counts are used directly as the logic unit.
	CLB Kind = iota
	// BRAM counts BlockRAM primitives.
	BRAM
	// DSP counts DSP slices.
	DSP

	// NumKinds is the number of resource kinds.
	NumKinds
)

// Kinds lists all resource kinds in canonical order.
var Kinds = [NumKinds]Kind{CLB, BRAM, DSP}

// String returns the conventional short name of the resource kind.
func (k Kind) String() string {
	switch k {
	case CLB:
		return "CLB"
	case BRAM:
		return "BRAM"
	case DSP:
		return "DSP"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Vector is a count of each resource kind. The zero value is the empty
// vector and is ready to use.
type Vector struct {
	CLB  int
	BRAM int
	DSP  int
}

// New returns a vector with the given counts.
func New(clb, bram, dsp int) Vector {
	return Vector{CLB: clb, BRAM: bram, DSP: dsp}
}

// Get returns the count for kind k.
func (v Vector) Get(k Kind) int {
	switch k {
	case CLB:
		return v.CLB
	case BRAM:
		return v.BRAM
	case DSP:
		return v.DSP
	}
	panic(fmt.Sprintf("resource: invalid kind %d", int(k)))
}

// Set returns a copy of v with the count for kind k replaced by n.
func (v Vector) Set(k Kind, n int) Vector {
	switch k {
	case CLB:
		v.CLB = n
	case BRAM:
		v.BRAM = n
	case DSP:
		v.DSP = n
	default:
		panic(fmt.Sprintf("resource: invalid kind %d", int(k)))
	}
	return v
}

// Add returns the element-wise sum v + u.
func (v Vector) Add(u Vector) Vector {
	return Vector{v.CLB + u.CLB, v.BRAM + u.BRAM, v.DSP + u.DSP}
}

// Sub returns the element-wise difference v - u. Counts may go negative;
// callers that need clamping should use SubFloor.
func (v Vector) Sub(u Vector) Vector {
	return Vector{v.CLB - u.CLB, v.BRAM - u.BRAM, v.DSP - u.DSP}
}

// SubFloor returns the element-wise difference v - u with each component
// clamped at zero.
func (v Vector) SubFloor(u Vector) Vector {
	return Vector{
		max(0, v.CLB-u.CLB),
		max(0, v.BRAM-u.BRAM),
		max(0, v.DSP-u.DSP),
	}
}

// Max returns the element-wise maximum of v and u. This implements the
// paper's eq. (2): the area of a region holding several mutually exclusive
// base partitions is, per resource type, the largest requirement among them.
func (v Vector) Max(u Vector) Vector {
	return Vector{max(v.CLB, u.CLB), max(v.BRAM, u.BRAM), max(v.DSP, u.DSP)}
}

// Scale returns v with every component multiplied by n.
func (v Vector) Scale(n int) Vector {
	return Vector{v.CLB * n, v.BRAM * n, v.DSP * n}
}

// FitsIn reports whether v fits within capacity u in every component.
func (v Vector) FitsIn(u Vector) bool {
	return v.CLB <= u.CLB && v.BRAM <= u.BRAM && v.DSP <= u.DSP
}

// IsZero reports whether every component of v is zero.
func (v Vector) IsZero() bool {
	return v == Vector{}
}

// IsNonNegative reports whether every component of v is >= 0.
func (v Vector) IsNonNegative() bool {
	return v.CLB >= 0 && v.BRAM >= 0 && v.DSP >= 0
}

// Total returns the sum of all components. It is only meaningful as a crude
// tie-breaking magnitude; real area comparisons must go through the frame
// model in internal/device.
func (v Vector) Total() int {
	return v.CLB + v.BRAM + v.DSP
}

// String renders the vector as "{clb CLB, bram BRAM, dsp DSP}".
func (v Vector) String() string {
	return fmt.Sprintf("{%d CLB, %d BRAM, %d DSP}", v.CLB, v.BRAM, v.DSP)
}

// Clamp maps every component of v into [0, limit) by taking the absolute
// value modulo limit. It is used to normalise arbitrary vectors (e.g. from
// property-test generators) into realistic utilisation ranges.
func Clamp(v Vector, limit int) Vector {
	c := func(n int) int {
		if n < 0 {
			n = -n
		}
		if n < 0 { // math.MinInt negation overflow
			n = 0
		}
		return n % limit
	}
	return Vector{c(v.CLB), c(v.BRAM), c(v.DSP)}
}

// SumAll returns the element-wise sum of all vectors in vs.
func SumAll(vs ...Vector) Vector {
	var s Vector
	for _, v := range vs {
		s = s.Add(v)
	}
	return s
}

// MaxAll returns the element-wise maximum of all vectors in vs, or the zero
// vector when vs is empty.
func MaxAll(vs ...Vector) Vector {
	var m Vector
	for _, v := range vs {
		m = m.Max(v)
	}
	return m
}
