package floorplan_test

import (
	"fmt"

	"prpart/internal/design"
	"prpart/internal/device"
	"prpart/internal/floorplan"
	"prpart/internal/partition"
)

// Placing the one-module-per-region case study on the FX70T: every
// region gets a rectangle of whole tiles, none overlap, and the plan
// validates against the scheme's requirements.
func ExamplePlace() {
	d := design.VideoReceiver()
	s := partition.Modular(d)
	dev, _ := device.ByName("FX70T")
	plan, err := floorplan.Place(s, dev)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("placed %d regions, plan valid: %v\n",
		len(plan.Placements), plan.Validate(s) == nil)
	// Output:
	// placed 5 regions, plan valid: true
}
