package floorplan

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"prpart/internal/design"
	"prpart/internal/device"
	"prpart/internal/partition"
	"prpart/internal/resource"
)

var (
	csOnce sync.Once
	csRes  *partition.Result
	csErr  error
)

func caseStudy(t *testing.T) *partition.Result {
	t.Helper()
	csOnce.Do(func() {
		csRes, csErr = partition.Solve(design.VideoReceiver(),
			partition.Options{Budget: design.CaseStudyBudget()})
	})
	if csErr != nil {
		t.Fatal(csErr)
	}
	return csRes
}

func TestPlaceCaseStudyOnFX70T(t *testing.T) {
	res := caseStudy(t)
	dev, err := device.ByName("FX70T")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Place(res.Scheme, dev)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(res.Scheme); err != nil {
		t.Fatal(err)
	}
	if len(plan.Placements) != len(res.Scheme.Regions) {
		t.Fatalf("placements = %d, want %d", len(plan.Placements), len(res.Scheme.Regions))
	}
	if u := plan.Utilisation(); u <= 0 || u > 1 {
		t.Errorf("utilisation = %g out of (0,1]", u)
	}
}

func TestPlaceModularBaseline(t *testing.T) {
	d := design.VideoReceiver()
	dev, _ := device.ByName("FX70T")
	plan, err := Place(partition.Modular(d), dev)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(partition.Modular(d)); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceTooBigFails(t *testing.T) {
	d := design.VideoReceiver()
	dev, _ := device.ByName("LX20T") // far too small
	_, err := Place(partition.Modular(d), dev)
	if !errors.Is(err, ErrUnplaceable) {
		t.Fatalf("err = %v, want ErrUnplaceable", err)
	}
}

func TestPlacementsDisjointAndInBounds(t *testing.T) {
	res := caseStudy(t)
	dev, _ := device.ByName("FX70T")
	plan, err := Place(res.Scheme, dev)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range plan.Placements {
		if a.Rect.Row0 < 0 || a.Rect.Row1 >= dev.Rows ||
			a.Rect.Col0 < 0 || a.Rect.Col1 >= len(dev.Columns) {
			t.Errorf("placement %d out of bounds: %+v", i, a.Rect)
		}
		for j := i + 1; j < len(plan.Placements); j++ {
			if overlap(a.Rect, plan.Placements[j].Rect) {
				t.Errorf("placements %d and %d overlap", i, j)
			}
		}
	}
}

func TestPlacementCoversRegionTiles(t *testing.T) {
	res := caseStudy(t)
	dev, _ := device.ByName("FX70T")
	plan, err := Place(res.Scheme, dev)
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range plan.Placements {
		need := res.Scheme.Regions[pl.Region].Tiles()
		if !need.FitsIn(pl.Tiles) {
			t.Errorf("region %d: rect provides %v, needs %v", pl.Region, pl.Tiles, need)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	res := caseStudy(t)
	dev, _ := device.ByName("FX70T")
	plan, err := Place(res.Scheme, dev)
	if err != nil {
		t.Fatal(err)
	}
	// Force an overlap.
	if len(plan.Placements) >= 2 {
		plan.Placements[1].Rect = plan.Placements[0].Rect
		if err := plan.Validate(res.Scheme); err == nil {
			t.Error("overlapping plan validated")
		}
	}
	// Out-of-bounds rectangle.
	plan2, _ := Place(res.Scheme, dev)
	plan2.Placements[0].Rect.Row1 = dev.Rows + 5
	if err := plan2.Validate(res.Scheme); err == nil {
		t.Error("out-of-bounds plan validated")
	}
}

func TestStringMap(t *testing.T) {
	res := caseStudy(t)
	dev, _ := device.ByName("FX70T")
	plan, err := Place(res.Scheme, dev)
	if err != nil {
		t.Fatal(err)
	}
	out := plan.String()
	if !strings.Contains(out, "A") || !strings.Contains(out, "FX70T") {
		t.Errorf("map missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != dev.Rows+1 {
		t.Errorf("map rows = %d, want %d", len(lines)-1, dev.Rows)
	}
}

func TestRectGeometry(t *testing.T) {
	r := Rect{Row0: 1, Col0: 2, Row1: 3, Col1: 5}
	if r.Width() != 4 || r.Height() != 3 {
		t.Errorf("width/height = %d/%d", r.Width(), r.Height())
	}
	if !overlap(r, Rect{Row0: 3, Col0: 5, Row1: 9, Col1: 9}) {
		t.Error("corner-touching rectangles overlap (inclusive coords)")
	}
	if overlap(r, Rect{Row0: 4, Col0: 0, Row1: 5, Col1: 9}) {
		t.Error("disjoint rows reported overlapping")
	}
}

func TestPlaceOnEmptyDeviceFails(t *testing.T) {
	res := caseStudy(t)
	bad := &device.Device{Name: "empty", Rows: 0}
	if _, err := Place(res.Scheme, bad); err == nil {
		t.Error("empty device accepted")
	}
}

func TestPlaceZeroRegionScheme(t *testing.T) {
	// A fully static scheme has nothing to place: empty plan, no error.
	d := design.VideoReceiver()
	s := partition.FullyStatic(d)
	dev, _ := device.ByName("FX70T")
	plan, err := Place(s, dev)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Placements) != 0 {
		t.Errorf("placements = %d, want 0", len(plan.Placements))
	}
	if err := plan.Validate(s); err != nil {
		t.Fatal(err)
	}
}

func TestTightPacking(t *testing.T) {
	// Regions that exactly tile a tiny device must all place.
	dev := &device.Device{
		Name: "tiny", Rows: 2,
		Capacity: resource.New(160, 0, 0),
		Columns: []resource.Kind{
			resource.CLB, resource.CLB, resource.CLB, resource.CLB,
		},
	}
	// Two modular regions of 2 CLB tiles each exactly fill half the grid.
	d2 := design.TwoModuleExample()
	for _, m := range d2.Modules {
		for i := range m.Modes {
			m.Modes[i].Resources = resource.New(40, 0, 0) // 2 tiles
		}
	}
	s := partition.Modular(d2)
	plan, err := Place(s, dev)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(s); err != nil {
		t.Fatal(err)
	}
}
