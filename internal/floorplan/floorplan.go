// Package floorplan places the reconfigurable regions of a partitioning
// scheme onto a device's row/column tile grid (§III-B step 5, standing in
// for the authors' architecture-aware floorplanner [11]). It honours the
// Xilinx PR constraints the paper lists: regions are rectangles of whole
// tiles, regions do not overlap, and a region must contain at least the
// tile counts its largest base partition needs of every resource type.
//
// The feasibility feedback the paper plans as future work is available
// here directly: Place returns a typed error when a scheme cannot be
// floorplanned so that the caller can retry with a different scheme or a
// larger device.
package floorplan

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"prpart/internal/device"
	"prpart/internal/resource"
	"prpart/internal/scheme"
)

// ErrUnplaceable reports that at least one region could not be placed.
var ErrUnplaceable = errors.New("floorplan: region cannot be placed on the device")

// Rect is a placed rectangle: rows [Row0, Row1] by columns [Col0, Col1],
// inclusive, in device tile coordinates.
type Rect struct {
	Row0, Col0 int
	Row1, Col1 int
}

// Width returns the number of columns spanned.
func (r Rect) Width() int { return r.Col1 - r.Col0 + 1 }

// Height returns the number of rows spanned.
func (r Rect) Height() int { return r.Row1 - r.Row0 + 1 }

// Placement is one region's location.
type Placement struct {
	// Region indexes scheme.Regions.
	Region int
	// Rect is the placed rectangle.
	Rect Rect
	// Tiles counts the tile resources enclosed by Rect.
	Tiles resource.Vector
}

// Plan is a complete floorplan.
type Plan struct {
	Device     *device.Device
	Placements []Placement
}

// Place floorplans every region of the scheme on the device using a
// first-fit rectangle search over the column grid: regions are placed
// largest-first, each taking the narrowest full-height-per-row rectangle
// providing its tile requirement.
func Place(s *scheme.Scheme, dev *device.Device) (*Plan, error) {
	if len(dev.Columns) == 0 || dev.Rows <= 0 {
		return nil, fmt.Errorf("floorplan: device %s has no grid", dev.Name)
	}
	type req struct {
		region int
		tiles  resource.Vector
	}
	reqs := make([]req, 0, len(s.Regions))
	for ri := range s.Regions {
		reqs = append(reqs, req{region: ri, tiles: s.Regions[ri].Tiles()})
	}
	// Largest first (by total tile count) for better packing.
	sort.SliceStable(reqs, func(i, j int) bool {
		return reqs[i].tiles.Total() > reqs[j].tiles.Total()
	})

	occupied := make([][]bool, dev.Rows) // [row][col]
	for r := range occupied {
		occupied[r] = make([]bool, len(dev.Columns))
	}
	plan := &Plan{Device: dev}
	for _, rq := range reqs {
		rect, tiles, ok := findRect(dev, occupied, rq.tiles)
		if !ok {
			return nil, fmt.Errorf("%w: region %d needs %v tiles on %s",
				ErrUnplaceable, rq.region, rq.tiles, dev.Name)
		}
		for r := rect.Row0; r <= rect.Row1; r++ {
			for c := rect.Col0; c <= rect.Col1; c++ {
				occupied[r][c] = true
			}
		}
		plan.Placements = append(plan.Placements, Placement{
			Region: rq.region,
			Rect:   rect,
			Tiles:  tiles,
		})
	}
	sort.Slice(plan.Placements, func(i, j int) bool {
		return plan.Placements[i].Region < plan.Placements[j].Region
	})
	return plan, nil
}

// findRect searches row bands top-to-bottom and columns left-to-right for
// the first free rectangle satisfying the requirement. Row height grows
// from the minimum that could satisfy the need; column span grows until
// the enclosed tile mix suffices.
func findRect(dev *device.Device, occupied [][]bool, need resource.Vector) (Rect, resource.Vector, bool) {
	nCols := len(dev.Columns)
	for h := 1; h <= dev.Rows; h++ {
		for row0 := 0; row0+h <= dev.Rows; row0++ {
			for col0 := 0; col0 < nCols; col0++ {
				var got resource.Vector
				for col1 := col0; col1 < nCols; col1++ {
					if colBlocked(occupied, row0, row0+h-1, col1) {
						break
					}
					got = got.Add(colTiles(dev, col1, h))
					if need.FitsIn(got) {
						return Rect{Row0: row0, Col0: col0, Row1: row0 + h - 1, Col1: col1}, got, true
					}
				}
			}
		}
	}
	return Rect{}, resource.Vector{}, false
}

func colBlocked(occupied [][]bool, row0, row1, col int) bool {
	for r := row0; r <= row1; r++ {
		if occupied[r][col] {
			return true
		}
	}
	return false
}

// colTiles returns the tiles one column contributes over h rows.
func colTiles(dev *device.Device, col, h int) resource.Vector {
	return resource.Vector{}.Set(dev.Columns[col], h)
}

// Utilisation returns the fraction of device tiles covered by regions.
func (p *Plan) Utilisation() float64 {
	total := p.Device.Rows * len(p.Device.Columns)
	if total == 0 {
		return 0
	}
	used := 0
	for _, pl := range p.Placements {
		used += pl.Rect.Width() * pl.Rect.Height()
	}
	return float64(used) / float64(total)
}

// Validate re-checks the plan invariants: rectangles in bounds, disjoint,
// and each covering its region's tile requirement.
func (p *Plan) Validate(s *scheme.Scheme) error {
	var errs []error
	if len(p.Placements) != len(s.Regions) {
		errs = append(errs, fmt.Errorf("floorplan: %d placements for %d regions",
			len(p.Placements), len(s.Regions)))
	}
	for i, a := range p.Placements {
		if a.Rect.Row0 < 0 || a.Rect.Col0 < 0 ||
			a.Rect.Row1 >= p.Device.Rows || a.Rect.Col1 >= len(p.Device.Columns) ||
			a.Rect.Row0 > a.Rect.Row1 || a.Rect.Col0 > a.Rect.Col1 {
			errs = append(errs, fmt.Errorf("floorplan: placement %d out of bounds: %+v", i, a.Rect))
			continue
		}
		if a.Region >= 0 && a.Region < len(s.Regions) {
			var got resource.Vector
			for c := a.Rect.Col0; c <= a.Rect.Col1; c++ {
				got = got.Add(colTiles(p.Device, c, a.Rect.Height()))
			}
			if !s.Regions[a.Region].Tiles().FitsIn(got) {
				errs = append(errs, fmt.Errorf("floorplan: region %d rectangle provides %v tiles, needs %v",
					a.Region, got, s.Regions[a.Region].Tiles()))
			}
		}
		for j := i + 1; j < len(p.Placements); j++ {
			if overlap(a.Rect, p.Placements[j].Rect) {
				errs = append(errs, fmt.Errorf("floorplan: placements %d and %d overlap", i, j))
			}
		}
	}
	return errors.Join(errs...)
}

func overlap(a, b Rect) bool {
	return a.Row0 <= b.Row1 && b.Row0 <= a.Row1 && a.Col0 <= b.Col1 && b.Col0 <= a.Col1
}

// String renders a coarse ASCII map of the floorplan (rows × columns,
// one letter per placed region, '.' for free tiles).
func (p *Plan) String() string {
	var b strings.Builder
	grid := make([][]byte, p.Device.Rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(".", len(p.Device.Columns)))
	}
	for _, pl := range p.Placements {
		ch := byte('A' + pl.Region%26)
		for r := pl.Rect.Row0; r <= pl.Rect.Row1; r++ {
			for c := pl.Rect.Col0; c <= pl.Rect.Col1; c++ {
				grid[r][c] = ch
			}
		}
	}
	fmt.Fprintf(&b, "floorplan on %s (%d rows x %d cols):\n", p.Device.Name, p.Device.Rows, len(p.Device.Columns))
	for r := len(grid) - 1; r >= 0; r-- {
		b.Write(grid[r])
		b.WriteByte('\n')
	}
	return b.String()
}
