package floorplan

import (
	"testing"

	"prpart/internal/design"
	"prpart/internal/device"
	"prpart/internal/partition"
)

func BenchmarkPlaceCaseStudy(b *testing.B) {
	res, err := partition.Solve(design.VideoReceiver(),
		partition.Options{Budget: design.CaseStudyBudget()})
	if err != nil {
		b.Fatal(err)
	}
	dev, err := device.ByName("FX70T")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Place(res.Scheme, dev); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlaceModularOnLargestDevice(b *testing.B) {
	s := partition.Modular(design.VideoReceiver())
	dev, err := device.ByName("FX200T")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Place(s, dev); err != nil {
			b.Fatal(err)
		}
	}
}
