package icap

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"prpart/internal/bitstream"
	"prpart/internal/design"
	"prpart/internal/device"
	"prpart/internal/floorplan"
	"prpart/internal/partition"
)

var (
	once sync.Once
	set  *bitstream.Set
	res  *partition.Result
	plan *floorplan.Plan
	serr error
)

func bitstreams(t *testing.T) *bitstream.Set {
	t.Helper()
	once.Do(func() {
		res, serr = partition.Solve(design.VideoReceiver(),
			partition.Options{Budget: design.CaseStudyBudget()})
		if serr != nil {
			return
		}
		dev, err := device.ByName("FX70T")
		if err != nil {
			serr = err
			return
		}
		plan, serr = floorplan.Place(res.Scheme, dev)
		if serr != nil {
			return
		}
		set, serr = bitstream.Assemble(res.Scheme, plan)
	})
	if serr != nil {
		t.Fatal(serr)
	}
	return set
}

// planOf returns the floorplan behind the shared bitstream fixture.
func planOf(t *testing.T) *floorplan.Plan {
	t.Helper()
	bitstreams(t)
	return plan
}

func TestLoadWritesFrames(t *testing.T) {
	set := bitstreams(t)
	p := New(32, 100_000_000)
	bs := set.PerRegion[0][0]
	d, err := p.Load(bs)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Error("zero transfer time")
	}
	if p.Memory().FrameCount() != bs.Frames {
		t.Errorf("frames in memory = %d, want %d", p.Memory().FrameCount(), bs.Frames)
	}
	st := p.Stats()
	if st.Loads != 1 || st.Frames != bs.Frames || st.Busy != d {
		t.Errorf("stats %+v inconsistent", st)
	}
	// The frame content must be retrievable and match the payload.
	f0 := p.Memory().ReadFrame(bs.Addr, 0)
	if f0 == nil || f0[0] != bs.Words[6] {
		t.Error("frame 0 content mismatch")
	}
	if p.Memory().ReadFrame(bitstream.FAR{Row: 99, Major: 99}, 0) != nil {
		t.Error("unwritten frame should read nil")
	}
}

func TestTransferTimeScalesWithWidth(t *testing.T) {
	bs := bitstreams(t).PerRegion[0][0]
	wide := New(32, 100_000_000)
	narrow := New(8, 100_000_000)
	dw, err := wide.Load(bs)
	if err != nil {
		t.Fatal(err)
	}
	dn, err := narrow.Load(bs)
	if err != nil {
		t.Fatal(err)
	}
	// The 8-bit port clocks 4x the cycles; overhead makes it slightly
	// less than exactly 4x.
	if dn <= 3*dw {
		t.Errorf("8-bit port %v not ~4x slower than 32-bit %v", dn, dw)
	}
}

func TestFrameTimeProportionality(t *testing.T) {
	// eq. (9): region configuration time proportional to frames.
	p := New(32, 100_000_000)
	t1 := p.FrameTime(100)
	t2 := p.FrameTime(200)
	overhead := p.FrameTime(0)
	if (t2 - overhead) != 2*(t1-overhead) {
		t.Errorf("frame time not linear: f(100)=%v f(200)=%v overhead=%v", t1, t2, overhead)
	}
}

func TestDefaults(t *testing.T) {
	p := New(0, 0)
	if p.WidthBits != 32 || p.ClockHz != 100_000_000 {
		t.Errorf("defaults: %d bits @ %d Hz", p.WidthBits, p.ClockHz)
	}
	// 32-bit @ 100 MHz moves one word per 10 ns.
	base := p.TransferTime(0)
	if got := p.TransferTime(100) - base; got != time.Microsecond {
		t.Errorf("100 words = %v, want 1µs", got)
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	set := bitstreams(t)
	orig := set.PerRegion[0][0]

	corrupt := func(mutate func(w []uint32)) error {
		cp := *orig
		cp.Words = append([]uint32(nil), orig.Words...)
		mutate(cp.Words)
		_, err := New(32, 0).Load(&cp)
		return err
	}

	if err := corrupt(func(w []uint32) { w[1] = 0xDEADBEEF }); !errors.Is(err, ErrBadBitstream) {
		t.Errorf("bad sync: %v", err)
	}
	if err := corrupt(func(w []uint32) { w[2] = 0 }); !errors.Is(err, ErrBadBitstream) {
		t.Errorf("bad FAR cmd: %v", err)
	}
	if err := corrupt(func(w []uint32) { w[4] = 0 }); !errors.Is(err, ErrBadBitstream) {
		t.Errorf("bad FDRI cmd: %v", err)
	}
	if err := corrupt(func(w []uint32) { w[10]++ }); !errors.Is(err, ErrCRC) {
		t.Errorf("payload corruption: %v", err)
	}
	if err := corrupt(func(w []uint32) { w[len(w)-1] = 0 }); !errors.Is(err, ErrBadBitstream) {
		t.Errorf("bad desync: %v", err)
	}
	if err := corrupt(func(w []uint32) {
		w[5] = bitstream.Type2Hdr | uint32(device.WordsPerFrame+1)
	}); !errors.Is(err, ErrBadBitstream) {
		t.Errorf("partial frame count: %v", err)
	}

	short := *orig
	short.Words = short.Words[:5]
	if _, err := New(32, 0).Load(&short); !errors.Is(err, ErrBadBitstream) {
		t.Errorf("truncated stream: %v", err)
	}
	trunc := *orig
	trunc.Words = trunc.Words[:20]
	if _, err := New(32, 0).Load(&trunc); !errors.Is(err, ErrBadBitstream) {
		t.Errorf("truncated payload: %v", err)
	}
}

func TestRepeatedLoadsOverwrite(t *testing.T) {
	set := bitstreams(t)
	if len(set.PerRegion[0]) < 2 {
		t.Skip("region 0 has a single part")
	}
	p := New(32, 0)
	a, b := set.PerRegion[0][0], set.PerRegion[0][1]
	if _, err := p.Load(a); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Load(b); err != nil {
		t.Fatal(err)
	}
	// Same address: frame count unchanged, contents now b's.
	if p.Memory().FrameCount() != a.Frames {
		t.Errorf("frame count = %d, want %d", p.Memory().FrameCount(), a.Frames)
	}
	f0 := p.Memory().ReadFrame(b.Addr, 0)
	if f0[0] != b.Words[6] {
		t.Error("second load did not overwrite frame 0")
	}
}

func TestStorageModels(t *testing.T) {
	bs := bitstreams(t).PerRegion[0][0]

	plain := New(32, 100_000_000)
	base, err := plain.Load(bs)
	if err != nil {
		t.Fatal(err)
	}

	// Streamed fast storage: fetch overlaps transfer; with DDR2 feeding
	// a 32-bit ICAP the transfer dominates, so timing is unchanged.
	ddr := New(32, 100_000_000)
	ddr.AttachStorage(DDR2())
	dd, err := ddr.Load(bs)
	if err != nil {
		t.Fatal(err)
	}
	if dd < base {
		t.Errorf("streamed load %v below pure transfer %v", dd, base)
	}
	if dd > 2*base {
		t.Errorf("DDR2 streamed load %v should be near transfer time %v", dd, base)
	}

	// Staged slow storage: fetch adds on top of transfer.
	cf := New(32, 100_000_000)
	cf.AttachStorage(CompactFlash())
	cd, err := cf.Load(bs)
	if err != nil {
		t.Fatal(err)
	}
	want := CompactFlash().FetchTime(bs.Bytes()) + base
	if cd != want {
		t.Errorf("staged load = %v, want %v", cd, want)
	}
	if cd <= dd {
		t.Error("CompactFlash should be slower than DDR2")
	}

	// Detach restores pure transfer time.
	cf.AttachStorage(nil)
	if got := cf.LoadTime(bs); got != base {
		t.Errorf("detached LoadTime = %v, want %v", got, base)
	}
}

func TestStorageFetchTime(t *testing.T) {
	s := &Storage{Latency: time.Millisecond, BytesPerSec: 1 << 20}
	if got := s.FetchTime(1 << 20); got != time.Millisecond+time.Second {
		t.Errorf("FetchTime = %v", got)
	}
	zero := &Storage{Latency: time.Microsecond}
	if got := zero.FetchTime(100); got != time.Microsecond {
		t.Errorf("zero-bandwidth FetchTime = %v", got)
	}
	if out := DDR2().String(); !strings.Contains(out, "DDR2") || !strings.Contains(out, "streamed") {
		t.Errorf("String = %q", out)
	}
	if out := CompactFlash().String(); !strings.Contains(out, "staged") {
		t.Errorf("String = %q", out)
	}
}
