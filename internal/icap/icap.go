// Package icap simulates the internal configuration access port and the
// configuration memory behind it — the runtime half of partial
// reconfiguration (§III-A, standing in for the authors' open-source ICAP
// controller [15]). It parses the packet format produced by
// internal/bitstream, writes frames into a configuration-memory model,
// verifies the CRC, and accounts transfer time from the port's width and
// clock, which is how frame counts become seconds (eq. 9).
package icap

import (
	"errors"
	"fmt"
	"time"

	"prpart/internal/bitstream"
	"prpart/internal/device"
	"prpart/internal/faults"
	"prpart/internal/obs"
)

// ErrBadBitstream reports a malformed packet stream.
var ErrBadBitstream = errors.New("icap: malformed bitstream")

// ErrCRC reports a checksum mismatch.
var ErrCRC = errors.New("icap: CRC mismatch")

// ErrFetch reports a storage read failure: the bitstream never reached
// the port.
var ErrFetch = errors.New("icap: bitstream fetch failed")

// ErrVerify reports a readback-verification mismatch between a loaded
// bitstream and the configuration memory.
var ErrVerify = errors.New("icap: readback verification mismatch")

// Port models the ICAP configuration interface.
type Port struct {
	// WidthBits is the port data width (8, 16 or 32 on Virtex-5).
	WidthBits int
	// ClockHz is the configuration clock (100 MHz max on Virtex-5).
	ClockHz int
	// OverheadCycles is the fixed per-bitstream cost (sync, command
	// decode, bitstream fetch setup).
	OverheadCycles int

	mem     *ConfigMemory
	stats   Stats
	storage *Storage
	inj     *faults.Injector
	windows map[int]Window
	obs     portObs
}

// portObs holds the port's observability instruments, resolved once in
// AttachObs. All fields are nil when observability is off, so the hot
// path pays one branch per touch point (see internal/obs).
type portObs struct {
	o                            *obs.Obs
	loads, bytes, frames, failed *obs.Counter
	readbacks, verifyErrs        *obs.Counter
	busy, stall, fault, recovery *obs.Timer
}

// AttachObs makes the port mirror its activity into the given
// observability registry and emit one trace event per load outcome.
// Counters: icap.loads, icap.bytes, icap.frames, icap.failed_loads;
// timers: icap.busy, icap.stall (storage-bound time beyond the pure ICAP
// transfer), icap.fault (time lost to failed loads). Nil detaches.
func (p *Port) AttachObs(o *obs.Obs) {
	if o == nil {
		p.obs = portObs{}
		return
	}
	p.obs = portObs{
		o:          o,
		loads:      o.Counter("icap.loads"),
		bytes:      o.Counter("icap.bytes"),
		frames:     o.Counter("icap.frames"),
		failed:     o.Counter("icap.failed_loads"),
		readbacks:  o.Counter("icap.readbacks"),
		verifyErrs: o.Counter("icap.verify_errors"),
		busy:       o.Timer("icap.busy"),
		stall:      o.Timer("icap.stall"),
		fault:      o.Timer("icap.fault"),
		recovery:   o.Timer("icap.recovery"),
	}
}

// Stats accumulates the port's activity.
type Stats struct {
	// Loads is the number of bitstreams processed successfully.
	Loads int
	// Words and Frames total the configuration data written.
	Words, Frames int
	// Busy is the cumulative time the port spent clocking data, including
	// failed and verified loads.
	Busy time.Duration

	// FailedLoads counts loads that returned an error, broken down by
	// cause in the per-cause counters below.
	FailedLoads int
	// FetchErrors counts storage read failures (ErrFetch).
	FetchErrors int
	// FormatErrors counts malformed packet streams — truncations, bad
	// headers, out-of-range FDRI counts (ErrBadBitstream except FAR
	// range violations).
	FormatErrors int
	// RangeErrors counts FAR targets outside the region's placement
	// window (ErrBadBitstream via Restrict/RestrictToPlan).
	RangeErrors int
	// CRCErrors counts checksum mismatches (ErrCRC).
	CRCErrors int
	// Readbacks counts Verify calls; VerifyErrors counts the mismatches
	// among them (ErrVerify).
	Readbacks, VerifyErrors int
	// FaultTime is the port time consumed by loads that failed — the
	// wasted transfers behind the retry accounting upstream.
	FaultTime time.Duration
}

// New returns a port with the given geometry attached to a fresh
// configuration memory. Zero width/clock default to the fastest Virtex-5
// configuration: 32 bits at 100 MHz.
func New(widthBits, clockHz int) *Port {
	if widthBits == 0 {
		widthBits = 32
	}
	if clockHz == 0 {
		clockHz = 100_000_000
	}
	return &Port{
		WidthBits:      widthBits,
		ClockHz:        clockHz,
		OverheadCycles: 64,
		mem:            NewConfigMemory(),
	}
}

// Memory exposes the configuration memory model.
func (p *Port) Memory() *ConfigMemory { return p.mem }

// Stats returns a copy of the accumulated statistics.
func (p *Port) Stats() Stats { return p.stats }

// TransferTime returns the time to clock n words through the port.
func (p *Port) TransferTime(words int) time.Duration {
	cycles := words*(32/p.WidthBits) + p.OverheadCycles
	return time.Duration(float64(cycles) / float64(p.ClockHz) * float64(time.Second))
}

// FrameTime returns the time to write n frames (eq. 9's proportionality
// constant for this port).
func (p *Port) FrameTime(frames int) time.Duration {
	return p.TransferTime(frames * device.WordsPerFrame)
}

// Load parses a partial bitstream, writes its frames to configuration
// memory, verifies the CRC, and returns the transfer time. On failure it
// returns the time the port spent before detecting the fault — the
// aborted transfer is still paid for — alongside the error, and records
// the failure in the per-cause Stats counters. With an injector attached
// (AttachInjector), the transfer may be corrupted, truncated or failed
// according to the injector's plan; the caller's bitstream is never
// mutated.
func (p *Port) Load(bs *bitstream.Bitstream) (time.Duration, error) {
	w := bs.Words
	var dec faults.Decision
	if p.inj != nil {
		dec = p.inj.PlanLoad(bs.PayloadWords())
	}
	switch dec.Kind {
	case faults.FetchFail:
		d := p.fetchAbortTime()
		p.fail(&p.stats.FetchErrors, "fetch", d)
		return d, fmt.Errorf("%w: injected storage fault", ErrFetch)
	case faults.BitFlip:
		if i := 6 + dec.Word; i < len(w) {
			w = append([]uint32(nil), w...)
			w[i] ^= 1 << dec.Bit
		}
	case faults.Truncate:
		if dec.Word < len(w) {
			w = w[:dec.Word]
		}
	}
	if len(w) < 8 || w[0] != bitstream.DummyWord || w[1] != bitstream.SyncWord {
		d := p.abortTime(len(w))
		p.fail(&p.stats.FormatErrors, "format", d)
		return d, fmt.Errorf("%w: missing sync header", ErrBadBitstream)
	}
	if w[2] != bitstream.CmdWriteFAR {
		d := p.abortTime(3)
		p.fail(&p.stats.FormatErrors, "format", d)
		return d, fmt.Errorf("%w: expected FAR write", ErrBadBitstream)
	}
	far := bitstream.UnpackFAR(w[3])
	if p.windows != nil {
		win, ok := p.windows[bs.Region]
		if !ok || !win.contains(far) {
			d := p.abortTime(4)
			p.fail(&p.stats.RangeErrors, "range", d)
			return d, fmt.Errorf("%w: FAR (row %d, major %d) outside region %d placement",
				ErrBadBitstream, far.Row, far.Major, bs.Region)
		}
	}
	if w[4] != bitstream.CmdWriteFDRI {
		d := p.abortTime(5)
		p.fail(&p.stats.FormatErrors, "format", d)
		return d, fmt.Errorf("%w: expected FDRI write", ErrBadBitstream)
	}
	count := int(w[5] & 0x07FFFFFF)
	if count%device.WordsPerFrame != 0 {
		d := p.abortTime(6)
		p.fail(&p.stats.FormatErrors, "format", d)
		return d, fmt.Errorf("%w: FDRI count %d not a whole number of frames", ErrBadBitstream, count)
	}
	if len(w) < 6+count+4 {
		d := p.abortTime(len(w))
		p.fail(&p.stats.FormatErrors, "format", d)
		return d, fmt.Errorf("%w: truncated payload", ErrBadBitstream)
	}
	payload := w[6 : 6+count]
	rest := w[6+count:]
	if rest[0] != bitstream.CmdWriteCRC {
		d := p.abortTime(6 + count + 1)
		p.fail(&p.stats.FormatErrors, "format", d)
		return d, fmt.Errorf("%w: expected CRC write", ErrBadBitstream)
	}
	if got := bitstream.Checksum(payload); got != rest[1] {
		// The CRC register is checked only after the full transfer: the
		// whole (possibly fetched) load is wasted.
		d := p.LoadTime(bs)
		p.fail(&p.stats.CRCErrors, "crc", d)
		return d, fmt.Errorf("%w: got %08x, want %08x", ErrCRC, got, rest[1])
	}
	if rest[2] != bitstream.CmdDesync || rest[3] != bitstream.DesyncValue {
		d := p.abortTime(len(w))
		p.fail(&p.stats.FormatErrors, "format", d)
		return d, fmt.Errorf("%w: missing desync", ErrBadBitstream)
	}
	frames := count / device.WordsPerFrame
	p.mem.WriteFrames(far, payload)
	if dec.Kind == faults.SEU {
		p.mem.FlipBit(far, (dec.Word%count)/device.WordsPerFrame,
			(dec.Word%count)%device.WordsPerFrame, dec.Bit)
	}
	p.stats.Loads++
	p.stats.Words += len(w)
	p.stats.Frames += frames
	d := p.LoadTime(bs)
	p.stats.Busy += d
	p.obs.loads.Inc()
	p.obs.bytes.Add(int64(len(w)) * 4)
	p.obs.frames.Add(int64(frames))
	p.obs.busy.Observe(d)
	if p.obs.stall != nil {
		// Stall: the part of the load the storage model kept the port
		// waiting beyond the pure ICAP transfer.
		if xfer := p.TransferTime(len(w)); d > xfer {
			p.obs.stall.Observe(d - xfer)
		}
	}
	if p.obs.o != nil {
		p.obs.o.Emit("icap", "load",
			obs.Int("region", int64(bs.Region)), obs.Int("frames", int64(frames)), obs.Dur("took", d))
	}
	return d, nil
}

// fail records a failed load of the given cause and duration.
func (p *Port) fail(cause *int, name string, d time.Duration) {
	*cause++
	p.stats.FailedLoads++
	p.stats.FaultTime += d
	p.stats.Busy += d
	p.obs.failed.Inc()
	p.obs.fault.Observe(d)
	p.obs.busy.Observe(d)
	if p.obs.o != nil {
		p.obs.o.Emit("icap", "load.fail", obs.Str("cause", name), obs.Dur("took", d))
	}
}

// abortTime is the port time consumed before a fault is detected n words
// into the stream.
func (p *Port) abortTime(n int) time.Duration { return p.TransferTime(n) }

// fetchAbortTime is the time lost to a failed storage fetch: the access
// latency when storage is attached, otherwise just the setup overhead.
func (p *Port) fetchAbortTime() time.Duration {
	if p.storage != nil {
		return p.storage.Latency
	}
	return p.TransferTime(0)
}

// ConfigMemory models the device configuration memory as frames indexed
// by address.
type ConfigMemory struct {
	frames map[frameKey][]uint32
}

type frameKey struct {
	far   bitstream.FAR
	minor int
}

// NewConfigMemory returns an empty configuration memory.
func NewConfigMemory() *ConfigMemory {
	return &ConfigMemory{frames: map[frameKey][]uint32{}}
}

// WriteFrames stores a payload of whole frames starting at far.
func (m *ConfigMemory) WriteFrames(far bitstream.FAR, payload []uint32) {
	for i := 0; i*device.WordsPerFrame < len(payload); i++ {
		frame := payload[i*device.WordsPerFrame : (i+1)*device.WordsPerFrame]
		cp := append([]uint32(nil), frame...)
		m.frames[frameKey{far: far, minor: i}] = cp
	}
}

// ReadFrame returns the frame at (far, minor), or nil when never written.
func (m *ConfigMemory) ReadFrame(far bitstream.FAR, minor int) []uint32 {
	f := m.frames[frameKey{far: far, minor: minor}]
	if f == nil {
		return nil
	}
	return append([]uint32(nil), f...)
}

// FrameCount returns the number of distinct frames ever written.
func (m *ConfigMemory) FrameCount() int { return len(m.frames) }

// FlipBit inverts one bit of a stored frame — the configuration-memory
// upset (SEU) model behind injected post-load faults and scrubbing tests.
// Never-written frames are left untouched.
func (m *ConfigMemory) FlipBit(far bitstream.FAR, minor, word, bit int) {
	f := m.frames[frameKey{far: far, minor: minor}]
	if f == nil || word < 0 || word >= len(f) {
		return
	}
	f[word] ^= 1 << (bit & 31)
}
