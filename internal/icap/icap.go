// Package icap simulates the internal configuration access port and the
// configuration memory behind it — the runtime half of partial
// reconfiguration (§III-A, standing in for the authors' open-source ICAP
// controller [15]). It parses the packet format produced by
// internal/bitstream, writes frames into a configuration-memory model,
// verifies the CRC, and accounts transfer time from the port's width and
// clock, which is how frame counts become seconds (eq. 9).
package icap

import (
	"errors"
	"fmt"
	"time"

	"prpart/internal/bitstream"
	"prpart/internal/device"
)

// ErrBadBitstream reports a malformed packet stream.
var ErrBadBitstream = errors.New("icap: malformed bitstream")

// ErrCRC reports a checksum mismatch.
var ErrCRC = errors.New("icap: CRC mismatch")

// Port models the ICAP configuration interface.
type Port struct {
	// WidthBits is the port data width (8, 16 or 32 on Virtex-5).
	WidthBits int
	// ClockHz is the configuration clock (100 MHz max on Virtex-5).
	ClockHz int
	// OverheadCycles is the fixed per-bitstream cost (sync, command
	// decode, bitstream fetch setup).
	OverheadCycles int

	mem     *ConfigMemory
	stats   Stats
	storage *Storage
}

// Stats accumulates the port's activity.
type Stats struct {
	// Loads is the number of bitstreams processed.
	Loads int
	// Words and Frames total the configuration data written.
	Words, Frames int
	// Busy is the cumulative transfer time.
	Busy time.Duration
}

// New returns a port with the given geometry attached to a fresh
// configuration memory. Zero width/clock default to the fastest Virtex-5
// configuration: 32 bits at 100 MHz.
func New(widthBits, clockHz int) *Port {
	if widthBits == 0 {
		widthBits = 32
	}
	if clockHz == 0 {
		clockHz = 100_000_000
	}
	return &Port{
		WidthBits:      widthBits,
		ClockHz:        clockHz,
		OverheadCycles: 64,
		mem:            NewConfigMemory(),
	}
}

// Memory exposes the configuration memory model.
func (p *Port) Memory() *ConfigMemory { return p.mem }

// Stats returns a copy of the accumulated statistics.
func (p *Port) Stats() Stats { return p.stats }

// TransferTime returns the time to clock n words through the port.
func (p *Port) TransferTime(words int) time.Duration {
	cycles := words*(32/p.WidthBits) + p.OverheadCycles
	return time.Duration(float64(cycles) / float64(p.ClockHz) * float64(time.Second))
}

// FrameTime returns the time to write n frames (eq. 9's proportionality
// constant for this port).
func (p *Port) FrameTime(frames int) time.Duration {
	return p.TransferTime(frames * device.WordsPerFrame)
}

// Load parses a partial bitstream, writes its frames to configuration
// memory, verifies the CRC, and returns the transfer time.
func (p *Port) Load(bs *bitstream.Bitstream) (time.Duration, error) {
	w := bs.Words
	if len(w) < 8 || w[0] != bitstream.DummyWord || w[1] != bitstream.SyncWord {
		return 0, fmt.Errorf("%w: missing sync header", ErrBadBitstream)
	}
	if w[2] != bitstream.CmdWriteFAR {
		return 0, fmt.Errorf("%w: expected FAR write", ErrBadBitstream)
	}
	far := bitstream.UnpackFAR(w[3])
	if w[4] != bitstream.CmdWriteFDRI {
		return 0, fmt.Errorf("%w: expected FDRI write", ErrBadBitstream)
	}
	count := int(w[5] & 0x07FFFFFF)
	if count%device.WordsPerFrame != 0 {
		return 0, fmt.Errorf("%w: FDRI count %d not a whole number of frames", ErrBadBitstream, count)
	}
	if len(w) < 6+count+4 {
		return 0, fmt.Errorf("%w: truncated payload", ErrBadBitstream)
	}
	payload := w[6 : 6+count]
	rest := w[6+count:]
	if rest[0] != bitstream.CmdWriteCRC {
		return 0, fmt.Errorf("%w: expected CRC write", ErrBadBitstream)
	}
	if got := bitstream.Checksum(payload); got != rest[1] {
		return 0, fmt.Errorf("%w: got %08x, want %08x", ErrCRC, got, rest[1])
	}
	if rest[2] != bitstream.CmdDesync || rest[3] != bitstream.DesyncValue {
		return 0, fmt.Errorf("%w: missing desync", ErrBadBitstream)
	}
	frames := count / device.WordsPerFrame
	p.mem.WriteFrames(far, payload)
	p.stats.Loads++
	p.stats.Words += len(w)
	p.stats.Frames += frames
	d := p.LoadTime(bs)
	p.stats.Busy += d
	return d, nil
}

// ConfigMemory models the device configuration memory as frames indexed
// by address.
type ConfigMemory struct {
	frames map[frameKey][]uint32
}

type frameKey struct {
	far   bitstream.FAR
	minor int
}

// NewConfigMemory returns an empty configuration memory.
func NewConfigMemory() *ConfigMemory {
	return &ConfigMemory{frames: map[frameKey][]uint32{}}
}

// WriteFrames stores a payload of whole frames starting at far.
func (m *ConfigMemory) WriteFrames(far bitstream.FAR, payload []uint32) {
	for i := 0; i*device.WordsPerFrame < len(payload); i++ {
		frame := payload[i*device.WordsPerFrame : (i+1)*device.WordsPerFrame]
		cp := append([]uint32(nil), frame...)
		m.frames[frameKey{far: far, minor: i}] = cp
	}
}

// ReadFrame returns the frame at (far, minor), or nil when never written.
func (m *ConfigMemory) ReadFrame(far bitstream.FAR, minor int) []uint32 {
	f := m.frames[frameKey{far: far, minor: minor}]
	if f == nil {
		return nil
	}
	return append([]uint32(nil), f...)
}

// FrameCount returns the number of distinct frames ever written.
func (m *ConfigMemory) FrameCount() int { return len(m.frames) }
