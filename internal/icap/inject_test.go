package icap

import (
	"errors"
	"testing"

	"prpart/internal/bitstream"
	"prpart/internal/faults"
)

func TestFaultBitFlipRejectedByCRC(t *testing.T) {
	bs := bitstreams(t).PerRegion[0][0]
	p := New(32, 100_000_000)
	inj := faults.New(1, faults.Rates{})
	inj.ScheduleAt(0, faults.BitFlip)
	p.AttachInjector(inj)

	d, err := p.Load(bs)
	if !errors.Is(err, ErrCRC) {
		t.Fatalf("err = %v, want ErrCRC", err)
	}
	if d <= 0 {
		t.Error("failed load reported zero elapsed time")
	}
	st := p.Stats()
	if st.CRCErrors != 1 || st.FailedLoads != 1 || st.Loads != 0 {
		t.Errorf("stats %+v: want 1 CRC error, 1 failed load, 0 loads", st)
	}
	if st.FaultTime != d || st.Busy != d {
		t.Errorf("fault time %v / busy %v, want %v", st.FaultTime, st.Busy, d)
	}
	if p.Memory().FrameCount() != 0 {
		t.Error("rejected load wrote frames")
	}
	// The caller's bitstream must be untouched: a retry succeeds.
	if _, err := p.Load(bs); err != nil {
		t.Fatalf("retry after injected flip failed: %v", err)
	}
	if got := p.Stats().Loads; got != 1 {
		t.Errorf("Loads = %d after clean retry, want 1", got)
	}
}

func TestFaultTruncationRejected(t *testing.T) {
	bs := bitstreams(t).PerRegion[0][0]
	p := New(32, 100_000_000)
	inj := faults.New(2, faults.Rates{})
	inj.ScheduleAt(0, faults.Truncate)
	p.AttachInjector(inj)

	d, err := p.Load(bs)
	if !errors.Is(err, ErrBadBitstream) {
		t.Fatalf("err = %v, want ErrBadBitstream", err)
	}
	full := p.TransferTime(len(bs.Words))
	if d <= 0 || d >= full {
		t.Errorf("aborted transfer cost %v, want in (0, %v)", d, full)
	}
	if st := p.Stats(); st.FormatErrors != 1 || st.FailedLoads != 1 {
		t.Errorf("stats %+v: want 1 format error", st)
	}
	if len(bs.Words) < 8+bs.PayloadWords() {
		t.Error("injected truncation mutated the shared bitstream")
	}
}

func TestFaultFetchFailure(t *testing.T) {
	bs := bitstreams(t).PerRegion[0][0]
	p := New(32, 100_000_000)
	p.AttachStorage(CompactFlash())
	inj := faults.New(3, faults.Rates{})
	inj.ScheduleAt(0, faults.FetchFail)
	p.AttachInjector(inj)

	d, err := p.Load(bs)
	if !errors.Is(err, ErrFetch) {
		t.Fatalf("err = %v, want ErrFetch", err)
	}
	if d != CompactFlash().Latency {
		t.Errorf("fetch abort cost %v, want storage latency %v", d, CompactFlash().Latency)
	}
	if st := p.Stats(); st.FetchErrors != 1 {
		t.Errorf("stats %+v: want 1 fetch error", st)
	}
}

func TestFaultSEUCaughtByVerify(t *testing.T) {
	bs := bitstreams(t).PerRegion[0][0]
	p := New(32, 100_000_000)
	inj := faults.New(4, faults.Rates{})
	inj.ScheduleAt(0, faults.SEU)
	p.AttachInjector(inj)

	// The load itself succeeds: the upset happens after the CRC check.
	if _, err := p.Load(bs); err != nil {
		t.Fatal(err)
	}
	d, err := p.Verify(bs)
	if !errors.Is(err, ErrVerify) {
		t.Fatalf("Verify err = %v, want ErrVerify", err)
	}
	if d <= 0 {
		t.Error("readback cost no time")
	}
	st := p.Stats()
	if st.Readbacks != 1 || st.VerifyErrors != 1 {
		t.Errorf("stats %+v: want 1 readback, 1 verify error", st)
	}
	// Scrubbing: a clean reload restores the region and Verify passes.
	if _, err := p.Load(bs); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Verify(bs); err != nil {
		t.Errorf("Verify after scrub reload: %v", err)
	}
}

func TestFaultVerifyCleanLoad(t *testing.T) {
	bs := bitstreams(t).PerRegion[0][0]
	p := New(32, 100_000_000)
	if _, err := p.Load(bs); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Verify(bs); err != nil {
		t.Errorf("clean load failed verification: %v", err)
	}
	// A never-loaded region fails verification outright.
	fresh := New(32, 100_000_000)
	if _, err := fresh.Verify(bs); !errors.Is(err, ErrVerify) {
		t.Errorf("verify of unwritten region: %v, want ErrVerify", err)
	}
	// Direct memory upsets (no injector) are caught too.
	p.Memory().FlipBit(bs.Addr, 0, 5, 3)
	if _, err := p.Verify(bs); !errors.Is(err, ErrVerify) {
		t.Errorf("verify after FlipBit: %v, want ErrVerify", err)
	}
}

func TestFaultFARWindowEnforced(t *testing.T) {
	set := bitstreams(t)
	bs := set.PerRegion[0][0]
	p := New(32, 100_000_000)
	// A window that cannot contain the bitstream's FAR.
	p.Restrict(bs.Region, Window{
		Row0: bs.Addr.Row + 1, Col0: bs.Addr.Major + 1,
		Row1: bs.Addr.Row + 2, Col1: bs.Addr.Major + 2,
	})
	d, err := p.Load(bs)
	if !errors.Is(err, ErrBadBitstream) {
		t.Fatalf("out-of-window FAR: err = %v, want ErrBadBitstream", err)
	}
	if d <= 0 {
		t.Error("range abort cost no time")
	}
	if st := p.Stats(); st.RangeErrors != 1 {
		t.Errorf("stats %+v: want 1 range error", st)
	}
	if p.Memory().FrameCount() != 0 {
		t.Error("out-of-window load wrote frames")
	}
	// A region with no registered window is rejected once any window exists.
	other := set.PerRegion[len(set.PerRegion)-1][0]
	if other.Region != bs.Region {
		if _, err := p.Load(other); !errors.Is(err, ErrBadBitstream) {
			t.Errorf("windowless region: err = %v, want ErrBadBitstream", err)
		}
	}
	// Widening the window to include the FAR admits the load.
	p.Restrict(bs.Region, Window{
		Row0: bs.Addr.Row, Col0: bs.Addr.Major,
		Row1: bs.Addr.Row, Col1: bs.Addr.Major,
	})
	if _, err := p.Load(bs); err != nil {
		t.Errorf("in-window load rejected: %v", err)
	}
}

func TestFaultRestrictToPlanAdmitsAssembledSet(t *testing.T) {
	// Every bitstream assembled from a floorplan must pass its own plan's
	// windows — the restriction only rejects foreign or corrupt FARs.
	set := bitstreams(t)
	p := New(32, 100_000_000)
	p.RestrictToPlan(planOf(t))
	for _, region := range set.PerRegion {
		for _, bs := range region {
			if _, err := p.Load(bs); err != nil {
				t.Fatalf("assembled bitstream %s rejected: %v", bs.Name, err)
			}
		}
	}
	// A bitstream whose FAR was corrupted out of its region is rejected.
	bad := set.PerRegion[0][0].Clone()
	bad.Addr = bitstream.FAR{Row: 200, Major: 200}
	bad.Words[3] = bad.Addr.Pack()
	if _, err := p.Load(bad); !errors.Is(err, ErrBadBitstream) {
		t.Errorf("corrupt FAR: err = %v, want ErrBadBitstream", err)
	}
}

func TestFaultInjectionReproducible(t *testing.T) {
	// The same seed against the same load sequence must fail the same
	// loads for the same causes with the same realised times.
	set := bitstreams(t)
	run := func() (Stats, faults.Stats) {
		p := New(32, 100_000_000)
		inj := faults.New(42, faults.Uniform(5e-5))
		p.AttachInjector(inj)
		for round := 0; round < 30; round++ {
			for _, region := range set.PerRegion {
				for _, bs := range region {
					p.Load(bs) // errors are the point
				}
			}
		}
		return p.Stats(), inj.Stats()
	}
	p1, i1 := run()
	p2, i2 := run()
	if p1 != p2 {
		t.Errorf("port stats diverged:\n%+v\n%+v", p1, p2)
	}
	if i1 != i2 {
		t.Errorf("injector stats diverged:\n%+v\n%+v", i1, i2)
	}
	if i1.Total() == 0 {
		t.Error("5e-5 over 30 rounds injected nothing")
	}
	if p1.FailedLoads == 0 {
		t.Error("injected faults caused no failed loads")
	}
}
