package icap

import (
	"testing"

	"prpart/internal/bitstream"
)

// FuzzLoad feeds arbitrary word streams to the ICAP parser: it must
// reject malformed input with an error, never panic, and never write
// frames from a stream whose CRC does not verify.
func FuzzLoad(f *testing.F) {
	// Seed with a valid bitstream and targeted corruptions.
	bs := buildSeed()
	f.Add(wordsToBytes(bs))
	corrupted := append([]uint32(nil), bs...)
	corrupted[10]++
	f.Add(wordsToBytes(corrupted))
	f.Add([]byte{0xFF, 0xFF})
	f.Add(wordsToBytes([]uint32{bitstream.DummyWord, bitstream.SyncWord}))

	f.Fuzz(func(t *testing.T, raw []byte) {
		words := make([]uint32, len(raw)/4)
		for i := range words {
			words[i] = uint32(raw[4*i]) | uint32(raw[4*i+1])<<8 |
				uint32(raw[4*i+2])<<16 | uint32(raw[4*i+3])<<24
		}
		p := New(32, 100_000_000)
		in := &bitstream.Bitstream{Words: words}
		if _, err := p.Load(in); err != nil {
			if p.Memory().FrameCount() != 0 {
				t.Fatal("failed load wrote frames")
			}
		}
	})
}

// buildSeed assembles a tiny structurally valid packet stream.
func buildSeed() []uint32 {
	payload := make([]uint32, 41) // one frame
	for i := range payload {
		payload[i] = uint32(i) * 2654435761
	}
	words := []uint32{
		bitstream.DummyWord, bitstream.SyncWord,
		bitstream.CmdWriteFAR, bitstream.FAR{Row: 1, Major: 2}.Pack(),
		bitstream.CmdWriteFDRI, bitstream.Type2Hdr | uint32(len(payload)),
	}
	words = append(words, payload...)
	words = append(words,
		bitstream.CmdWriteCRC, bitstream.Checksum(payload),
		bitstream.CmdDesync, bitstream.DesyncValue)
	return words
}

func wordsToBytes(words []uint32) []byte {
	out := make([]byte, len(words)*4)
	for i, w := range words {
		out[4*i] = byte(w)
		out[4*i+1] = byte(w >> 8)
		out[4*i+2] = byte(w >> 16)
		out[4*i+3] = byte(w >> 24)
	}
	return out
}
