package icap

import (
	"fmt"
	"time"

	"prpart/internal/bitstream"
)

// Storage models the external memory that holds partial bitstreams. The
// paper notes that realised reconfiguration time "also depends upon
// additional factors such as the delay in fetching partial bitstreams
// from external memory and transfer speed through the internal
// configuration interface"; this type supplies the fetch half.
type Storage struct {
	// Name labels the storage in reports ("DDR2", "CF card", ...).
	Name string
	// Latency is the fixed per-access setup cost.
	Latency time.Duration
	// BytesPerSec is the sustained fetch bandwidth.
	BytesPerSec int64
	// Streamed reports whether fetch and ICAP transfer overlap (a DMA
	// engine feeding ICAP directly, as in the authors' controller [15]).
	// When false the bitstream is staged completely before transfer.
	Streamed bool
}

// DDR2 returns a typical DDR2 interface: fast and streamed.
func DDR2() *Storage {
	return &Storage{Name: "DDR2", Latency: 200 * time.Nanosecond, BytesPerSec: 1600 << 20, Streamed: true}
}

// CompactFlash returns a slow staged storage: the worst case the paper's
// domain worries about.
func CompactFlash() *Storage {
	return &Storage{Name: "CompactFlash", Latency: time.Millisecond, BytesPerSec: 20 << 20, Streamed: false}
}

// FetchTime returns the time to read n bytes from the storage.
func (s *Storage) FetchTime(n int) time.Duration {
	if s.BytesPerSec <= 0 {
		return s.Latency
	}
	return s.Latency + time.Duration(float64(n)/float64(s.BytesPerSec)*float64(time.Second))
}

// AttachStorage makes subsequent Loads account bitstream fetch time from
// the given storage. Nil detaches (pure ICAP transfer time).
func (p *Port) AttachStorage(s *Storage) { p.storage = s }

// LoadTime returns the end-to-end time a Load of the bitstream would
// take with the current storage model: the maximum of fetch and transfer
// when streamed, their sum when staged, or plain transfer time with no
// storage attached.
func (p *Port) LoadTime(bs *bitstream.Bitstream) time.Duration {
	xfer := p.TransferTime(len(bs.Words))
	if p.storage == nil {
		return xfer
	}
	fetch := p.storage.FetchTime(bs.Bytes())
	if p.storage.Streamed {
		if fetch > xfer {
			return fetch
		}
		return xfer
	}
	return fetch + xfer
}

// String describes the storage.
func (s *Storage) String() string {
	mode := "staged"
	if s.Streamed {
		mode = "streamed"
	}
	return fmt.Sprintf("%s (%d MB/s, %v latency, %s)", s.Name, s.BytesPerSec>>20, s.Latency, mode)
}
