package icap

import (
	"fmt"
	"time"

	"prpart/internal/bitstream"
	"prpart/internal/device"
	"prpart/internal/faults"
	"prpart/internal/floorplan"
	"prpart/internal/obs"
)

// AttachInjector makes subsequent Loads consult the injector for faults:
// bit flips are applied to a copy of the transfer (surfacing as ErrCRC),
// truncations cut it short (ErrBadBitstream), fetch failures abort before
// transfer (ErrFetch), and SEUs corrupt configuration memory after an
// otherwise clean load (caught only by Verify). Nil detaches.
func (p *Port) AttachInjector(inj *faults.Injector) { p.inj = inj }

// Window is the frame-address rectangle a region's bitstreams may
// legally target: rows [Row0, Row1] by majors [Col0, Col1], inclusive.
type Window struct {
	Row0, Col0 int
	Row1, Col1 int
}

func (w Window) contains(f bitstream.FAR) bool {
	return f.Row >= w.Row0 && f.Row <= w.Row1 && f.Major >= w.Col0 && f.Major <= w.Col1
}

// Restrict registers the legal frame-address window for a region. Once
// any window is registered, a Load whose FAR falls outside its region's
// window — or whose region has no window at all — fails with a wrapped
// ErrBadBitstream before anything reaches configuration memory.
func (p *Port) Restrict(region int, w Window) {
	if p.windows == nil {
		p.windows = map[int]Window{}
	}
	p.windows[region] = w
}

// RestrictToPlan registers one window per placement of the floorplan, so
// every region's bitstreams are confined to the frames its placed
// rectangle actually owns.
func (p *Port) RestrictToPlan(plan *floorplan.Plan) {
	for _, pl := range plan.Placements {
		p.Restrict(pl.Region, Window{
			Row0: pl.Rect.Row0, Col0: pl.Rect.Col0,
			Row1: pl.Rect.Row1, Col1: pl.Rect.Col1,
		})
	}
}

// Readback returns the n frames stored at far (nil entries for frames
// never written) and the time reading them back through the port costs.
func (p *Port) Readback(far bitstream.FAR, n int) ([][]uint32, time.Duration) {
	out := make([][]uint32, n)
	for minor := range out {
		out[minor] = p.mem.ReadFrame(far, minor)
	}
	d := p.TransferTime(n * device.WordsPerFrame)
	p.stats.Readbacks++
	p.stats.Busy += d
	p.obs.readbacks.Inc()
	p.obs.busy.Observe(d)
	p.obs.recovery.Observe(d)
	return out, d
}

// Verify reads the frames a bitstream configured back out of
// configuration memory and compares them word-for-word with the
// bitstream's payload — the scrubbing check that catches configuration
// upsets the load-time CRC cannot see. It returns the readback time and,
// on mismatch, a wrapped ErrVerify.
func (p *Port) Verify(bs *bitstream.Bitstream) (time.Duration, error) {
	payload := bs.Payload()
	if payload == nil {
		return 0, fmt.Errorf("%w: %s has no payload to verify", ErrBadBitstream, bs.Name)
	}
	frames, d := p.Readback(bs.Addr, bs.Frames)
	for minor, got := range frames {
		want := payload[minor*device.WordsPerFrame : (minor+1)*device.WordsPerFrame]
		if !wordsEqual(got, want) {
			p.stats.VerifyErrors++
			p.obs.verifyErrs.Inc()
			if p.obs.o != nil {
				p.obs.o.Emit("icap", "verify.fail",
					obs.Str("bitstream", bs.Name), obs.Int("frame", int64(minor)))
			}
			return d, fmt.Errorf("%w: frame %d of %s", ErrVerify, minor, bs.Name)
		}
	}
	return d, nil
}

func wordsEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
