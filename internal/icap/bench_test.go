package icap

import (
	"testing"

	"prpart/internal/bitstream"
	"prpart/internal/design"
	"prpart/internal/device"
	"prpart/internal/floorplan"
	"prpart/internal/partition"
)

func benchBitstreams(b *testing.B) *bitstream.Set {
	b.Helper()
	res, err := partition.Solve(design.VideoReceiver(),
		partition.Options{Budget: design.CaseStudyBudget()})
	if err != nil {
		b.Fatal(err)
	}
	dev, err := device.ByName("FX70T")
	if err != nil {
		b.Fatal(err)
	}
	plan, err := floorplan.Place(res.Scheme, dev)
	if err != nil {
		b.Fatal(err)
	}
	set, err := bitstream.Assemble(res.Scheme, plan)
	if err != nil {
		b.Fatal(err)
	}
	return set
}

func BenchmarkLoadLargestBitstream(b *testing.B) {
	set := benchBitstreams(b)
	largest := set.PerRegion[0][0]
	for _, region := range set.PerRegion {
		for _, bs := range region {
			if bs.Bytes() > largest.Bytes() {
				largest = bs
			}
		}
	}
	p := New(32, 100_000_000)
	b.SetBytes(int64(largest.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Load(largest); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChecksum(b *testing.B) {
	set := benchBitstreams(b)
	bs := set.PerRegion[0][0]
	payload := bs.Words[6 : len(bs.Words)-4]
	b.SetBytes(int64(len(payload) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bitstream.Checksum(payload)
	}
}
