package faults

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// This file extends the package's seeded fault discipline from the
// reconfiguration runtime (bitstream loads, PlanLoad) to the storage
// layer under the serving stack: the persistent result store survives
// crashes only if fsync ordering, rename atomicity and corruption
// detection are exercised against a fault process every run can replay
// exactly. An IOInjector plans one decision per filesystem operation —
// short writes, read corruption, fsync and rename failures, and
// latency stalls — and is consulted by the store's VFS seam
// (internal/store.FaultFS).

// IOOp classifies the filesystem operation a decision is planned for.
type IOOp int

const (
	// OpWrite is a file write (Create or append path).
	OpWrite IOOp = iota
	// OpRead is a file read.
	OpRead
	// OpSync is an fsync.
	OpSync
	// OpRename is an atomic rename.
	OpRename
)

// String names the operation.
func (op IOOp) String() string {
	switch op {
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpSync:
		return "sync"
	case OpRename:
		return "rename"
	}
	return fmt.Sprintf("IOOp(%d)", int(op))
}

// IOKind enumerates the I/O fault classes.
type IOKind int

const (
	// IONone means the operation proceeds cleanly.
	IONone IOKind = iota
	// IOShortWrite persists only a prefix of the buffer and fails the
	// write — the classic torn write of a power loss mid-append.
	IOShortWrite
	// IOReadCorrupt flips one bit in the bytes returned by a read,
	// modelling media decay and transient controller errors.
	IOReadCorrupt
	// IOSyncErr fails an fsync without persisting, so data the caller
	// believes unsafe really is lost on the next crash.
	IOSyncErr
	// IORenameErr fails a rename, leaving the temp file in place.
	IORenameErr
	// IOStall delays the operation without failing it.
	IOStall
)

// String names the fault kind.
func (k IOKind) String() string {
	switch k {
	case IONone:
		return "none"
	case IOShortWrite:
		return "short-write"
	case IOReadCorrupt:
		return "read-corrupt"
	case IOSyncErr:
		return "sync-err"
	case IORenameErr:
		return "rename-err"
	case IOStall:
		return "stall"
	}
	return fmt.Sprintf("IOKind(%d)", int(k))
}

// IORates configures the per-operation fault probabilities. Each rate
// applies only to the operations its class can afflict (short writes to
// writes, corruption to reads, and so on); Stall applies to every
// operation.
type IORates struct {
	ShortWrite  float64
	ReadCorrupt float64
	SyncErr     float64
	RenameErr   float64
	Stall       float64
	// MaxStall bounds an injected stall (default 1ms when Stall > 0).
	MaxStall time.Duration
}

// UniformIO derives a rate set firing every failure class at rate r.
// Stalls stay off: they slow the caller without changing behaviour, so
// chaos suites opt into them explicitly.
func UniformIO(r float64) IORates {
	return IORates{ShortWrite: r, ReadCorrupt: r, SyncErr: r, RenameErr: r}
}

// Zero reports whether the rate set never fires.
func (r IORates) Zero() bool {
	return r.ShortWrite <= 0 && r.ReadCorrupt <= 0 && r.SyncErr <= 0 &&
		r.RenameErr <= 0 && r.Stall <= 0
}

// IODecision is the injector's plan for one filesystem operation.
type IODecision struct {
	// Kind is the fault class, or IONone.
	Kind IOKind
	// Keep is the number of bytes that survive a short write.
	Keep int
	// Bit is the bit index (within the operation's byte range) flipped
	// by a read corruption.
	Bit int
	// Stall is the injected delay for IOStall.
	Stall time.Duration
}

// IOStats counts the faults the injector has produced.
type IOStats struct {
	// Ops is the number of operations planned (faulty or not).
	Ops int
	// Per-kind injected fault counts.
	ShortWrites, ReadCorruptions, SyncErrs, RenameErrs, Stalls int
}

// Total returns the number of faults injected.
func (s IOStats) Total() int {
	return s.ShortWrites + s.ReadCorruptions + s.SyncErrs + s.RenameErrs + s.Stalls
}

// IOInjector plans faults for a sequence of filesystem operations. Like
// Injector it is deterministic: the same seed, schedule and sequence of
// PlanOp calls always yields the same decisions. It is safe for
// concurrent use, but determinism then requires the callers themselves
// to serialize operations in a reproducible order (the store's mutex
// does this for a single-store process).
type IOInjector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rates IORates
	sched map[int]IOKind
	ops   int
	stats IOStats
}

// NewIO returns an I/O injector with the given seed and probabilities.
func NewIO(seed int64, rates IORates) *IOInjector {
	if rates.Stall > 0 && rates.MaxStall <= 0 {
		rates.MaxStall = time.Millisecond
	}
	return &IOInjector{rng: rand.New(rand.NewSource(seed)), rates: rates}
}

// ScheduleOp forces the given fault on operation n (0-based across the
// injector's lifetime), overriding the probabilistic draw. A kind that
// cannot afflict the operation actually seen at n degrades to IONone.
// Scheduling IONone suppresses any probabilistic fault on that op.
func (in *IOInjector) ScheduleOp(n int, k IOKind) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.sched == nil {
		in.sched = map[int]IOKind{}
	}
	in.sched[n] = k
}

// Ops returns the number of operations planned so far.
func (in *IOInjector) Ops() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops
}

// Stats returns a copy of the injection counters.
func (in *IOInjector) Stats() IOStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// applicable reports whether kind k can afflict operation op.
func applicable(op IOOp, k IOKind) bool {
	switch k {
	case IOShortWrite:
		return op == OpWrite
	case IOReadCorrupt:
		return op == OpRead
	case IOSyncErr:
		return op == OpSync
	case IORenameErr:
		return op == OpRename
	case IOStall:
		return true
	}
	return false
}

// PlanOp decides the fault, if any, for the next filesystem operation,
// which moves size bytes (0 for sync and rename). At most one fault
// fires per operation; the class specific to the operation outranks a
// stall. One draw is consumed per class regardless of which fires, so
// editing one rate cannot reshuffle the rest of the run.
func (in *IOInjector) PlanOp(op IOOp, size int) IODecision {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := in.ops
	in.ops++
	in.stats.Ops++
	if size < 1 {
		size = 1
	}
	if k, ok := in.sched[n]; ok {
		if !applicable(op, k) {
			return IODecision{Kind: IONone}
		}
		return in.count(in.materializeIO(k, size))
	}
	if in.rates.Zero() {
		return IODecision{Kind: IONone}
	}
	short := in.rng.Float64() < in.rates.ShortWrite
	corrupt := in.rng.Float64() < in.rates.ReadCorrupt
	syncE := in.rng.Float64() < in.rates.SyncErr
	renameE := in.rng.Float64() < in.rates.RenameErr
	stall := in.rng.Float64() < in.rates.Stall
	switch {
	case short && op == OpWrite:
		return in.count(in.materializeIO(IOShortWrite, size))
	case corrupt && op == OpRead:
		return in.count(in.materializeIO(IOReadCorrupt, size))
	case syncE && op == OpSync:
		return in.count(IODecision{Kind: IOSyncErr})
	case renameE && op == OpRename:
		return in.count(IODecision{Kind: IORenameErr})
	case stall:
		return in.count(in.materializeIO(IOStall, size))
	}
	return IODecision{Kind: IONone}
}

// materializeIO fills in the fault location for a decided kind.
func (in *IOInjector) materializeIO(k IOKind, size int) IODecision {
	switch k {
	case IOShortWrite:
		return IODecision{Kind: k, Keep: in.rng.Intn(size)}
	case IOReadCorrupt:
		return IODecision{Kind: k, Bit: in.rng.Intn(size * 8)}
	case IOStall:
		max := in.rates.MaxStall
		if max <= 0 {
			max = time.Millisecond // scheduled stall with stalls otherwise off
		}
		return IODecision{Kind: k, Stall: time.Duration(in.rng.Int63n(int64(max)) + 1)}
	case IOSyncErr, IORenameErr:
		return IODecision{Kind: k}
	}
	return IODecision{Kind: IONone}
}

// count updates the per-kind counters and passes the decision through.
func (in *IOInjector) count(d IODecision) IODecision {
	switch d.Kind {
	case IOShortWrite:
		in.stats.ShortWrites++
	case IOReadCorrupt:
		in.stats.ReadCorruptions++
	case IOSyncErr:
		in.stats.SyncErrs++
	case IORenameErr:
		in.stats.RenameErrs++
	case IOStall:
		in.stats.Stalls++
	}
	return d
}
