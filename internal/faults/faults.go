// Package faults injects reproducible failures into the runtime
// reconfiguration stack. Real PR systems lose loads to SEU-corrupted
// bitstreams, storage read faults and aborted transfers; the partitioner's
// cost model (and prsim's realised-time comparison) only stays honest if
// the runtime manager's recovery work — retries, scrubbing, fallback — is
// driven by a fault process that every run can replay exactly.
//
// An Injector is seeded and consulted once per bitstream load. It decides
// whether that load suffers a fault and which kind: an in-transit bit flip
// (caught by the ICAP CRC check), a truncated transfer (malformed packet
// stream), a storage fetch failure (the bitstream never reaches the port),
// or a post-load configuration upset (caught only by readback
// verification). Decisions come from per-operation probabilities, from a
// fixed schedule ("fail load N"), or both — scheduled faults take
// precedence. The same seed and the same sequence of loads always yield
// the same faults, byte for byte.
package faults

import (
	"fmt"
	"math"
	"math/rand"
)

// Kind enumerates the fault classes the injector can produce.
type Kind int

const (
	// None means the load proceeds cleanly.
	None Kind = iota
	// BitFlip corrupts one payload word in transit; the ICAP CRC check
	// rejects the load.
	BitFlip
	// Truncate aborts the transfer partway; the port sees a malformed
	// packet stream.
	Truncate
	// FetchFail fails the storage read before any transfer happens.
	FetchFail
	// SEU flips a configuration-memory bit after a successful load; only
	// readback verification notices.
	SEU
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case BitFlip:
		return "bit-flip"
	case Truncate:
		return "truncate"
	case FetchFail:
		return "fetch-fail"
	case SEU:
		return "seu"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Decision is the injector's plan for one load.
type Decision struct {
	// Kind is the fault class, or None.
	Kind Kind
	// Word locates the fault: the payload word to corrupt (BitFlip, SEU)
	// or the number of words that survive the transfer (Truncate).
	Word int
	// Bit is the bit position flipped within Word (BitFlip, SEU).
	Bit int
}

// Rates configures the per-operation fault probabilities.
type Rates struct {
	// WordError is the per-payload-word probability of an in-transit bit
	// flip (the classic word error rate of a noisy configuration path).
	WordError float64
	// Truncate is the per-load probability of an aborted transfer.
	Truncate float64
	// FetchFail is the per-load probability of a storage read failure.
	FetchFail float64
	// SEU is the per-load probability of a post-load configuration upset.
	SEU float64
}

// Uniform derives a full rate set from a single word-error rate: transfers
// see flips at r per word, while the per-load faults are scaled to the
// same order of magnitude as a ~thousand-word load (aborts and fetch
// faults at 100r, upsets at 200r). Uniform(0) disables everything.
func Uniform(r float64) Rates {
	return Rates{WordError: r, Truncate: 100 * r, FetchFail: 100 * r, SEU: 200 * r}
}

// Zero reports whether the rate set never fires.
func (r Rates) Zero() bool {
	return r.WordError <= 0 && r.Truncate <= 0 && r.FetchFail <= 0 && r.SEU <= 0
}

// Stats counts the faults the injector has produced.
type Stats struct {
	// Loads is the number of loads planned (faulty or not).
	Loads int
	// BitFlips, Truncations, FetchFails and SEUs count injected faults by
	// kind.
	BitFlips, Truncations, FetchFails, SEUs int
}

// Total returns the number of faults injected.
func (s Stats) Total() int {
	return s.BitFlips + s.Truncations + s.FetchFails + s.SEUs
}

// Injector plans faults for a sequence of bitstream loads. It is
// deterministic: a given seed, schedule and sequence of PlanLoad calls
// always produces the same decisions. It is not safe for concurrent use.
type Injector struct {
	rng   *rand.Rand
	rates Rates
	sched map[int]Kind
	loads int
	stats Stats
}

// New returns an injector with the given seed and probabilities.
func New(seed int64, rates Rates) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed)), rates: rates}
}

// ScheduleAt forces the given fault on load n (0-based across the
// injector's lifetime), overriding the probabilistic draw for that load.
// Scheduling None suppresses any probabilistic fault on that load.
func (in *Injector) ScheduleAt(n int, k Kind) {
	if in.sched == nil {
		in.sched = map[int]Kind{}
	}
	in.sched[n] = k
}

// Loads returns the number of loads planned so far.
func (in *Injector) Loads() int { return in.loads }

// Stats returns a copy of the injection counters.
func (in *Injector) Stats() Stats { return in.stats }

// PlanLoad decides the fault, if any, for the next load, whose FDRI
// payload is payloadWords long. At most one fault fires per load; when
// several classes would fire, the earliest in the transfer pipeline wins
// (fetch, then truncation, then bit flip, then upset).
func (in *Injector) PlanLoad(payloadWords int) Decision {
	n := in.loads
	in.loads++
	in.stats.Loads++
	if payloadWords < 1 {
		payloadWords = 1
	}
	if k, ok := in.sched[n]; ok {
		return in.count(in.materialize(k, payloadWords))
	}
	if in.rates.Zero() {
		return Decision{Kind: None}
	}
	// One draw per class keeps the stream alignment independent of which
	// fault fires, so editing one rate cannot silently reshuffle the rest
	// of the run.
	fetch := in.rng.Float64() < in.rates.FetchFail
	trunc := in.rng.Float64() < in.rates.Truncate
	flip := in.hit(payloadWords, in.rates.WordError)
	seu := in.rng.Float64() < in.rates.SEU
	switch {
	case fetch:
		return in.count(in.materialize(FetchFail, payloadWords))
	case trunc:
		return in.count(in.materialize(Truncate, payloadWords))
	case flip >= 0:
		return in.count(Decision{Kind: BitFlip, Word: flip, Bit: in.rng.Intn(32)})
	case seu:
		return in.count(in.materialize(SEU, payloadWords))
	}
	return Decision{Kind: None}
}

// hit returns the index of the first of n independent trials at
// probability p that succeeds, or -1 when none does, using a single
// geometric draw so large payloads cost one random number, not n.
func (in *Injector) hit(n int, p float64) int {
	if p <= 0 {
		return -1
	}
	if p >= 1 {
		return 0
	}
	u := in.rng.Float64()
	skip := int(math.Log(1-u) / math.Log(1-p))
	if skip < 0 || skip >= n {
		return -1
	}
	return skip
}

// materialize fills in the fault location for a decided kind.
func (in *Injector) materialize(k Kind, payloadWords int) Decision {
	switch k {
	case BitFlip, SEU:
		return Decision{Kind: k, Word: in.rng.Intn(payloadWords), Bit: in.rng.Intn(32)}
	case Truncate:
		// Keep at least the sync header so the abort happens mid-payload.
		return Decision{Kind: k, Word: 2 + in.rng.Intn(payloadWords)}
	case FetchFail:
		return Decision{Kind: k}
	}
	return Decision{Kind: None}
}

// count updates the per-kind counters and passes the decision through.
func (in *Injector) count(d Decision) Decision {
	switch d.Kind {
	case BitFlip:
		in.stats.BitFlips++
	case Truncate:
		in.stats.Truncations++
	case FetchFail:
		in.stats.FetchFails++
	case SEU:
		in.stats.SEUs++
	}
	return d
}
