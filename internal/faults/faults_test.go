package faults

import (
	"reflect"
	"testing"
)

func TestFaultDeterminism(t *testing.T) {
	// Two injectors with the same seed and the same load sequence must
	// produce identical decisions and identical statistics.
	sizes := []int{41, 4100, 820, 41, 12300, 41, 41, 2050}
	plan := func() ([]Decision, Stats) {
		in := New(7, Uniform(1e-3))
		var out []Decision
		for i := 0; i < 500; i++ {
			out = append(out, in.PlanLoad(sizes[i%len(sizes)]))
		}
		return out, in.Stats()
	}
	d1, s1 := plan()
	d2, s2 := plan()
	if !reflect.DeepEqual(d1, d2) {
		t.Fatal("same seed produced different decision sequences")
	}
	if s1 != s2 {
		t.Fatalf("same seed produced different stats: %+v vs %+v", s1, s2)
	}
	if s1.Total() == 0 {
		t.Error("1e-3 word-error rate over 500 loads injected nothing")
	}
	if s1.Loads != 500 {
		t.Errorf("Loads = %d, want 500", s1.Loads)
	}
}

func TestFaultSeedsDiffer(t *testing.T) {
	a, b := New(1, Uniform(1e-3)), New(2, Uniform(1e-3))
	same := true
	for i := 0; i < 200; i++ {
		if a.PlanLoad(4100) != b.PlanLoad(4100) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical decision sequences")
	}
}

func TestFaultZeroRateIsSilent(t *testing.T) {
	in := New(3, Rates{})
	for i := 0; i < 100; i++ {
		if d := in.PlanLoad(1000); d.Kind != None {
			t.Fatalf("load %d: zero rates injected %v", i, d.Kind)
		}
	}
	if got := in.Stats().Total(); got != 0 {
		t.Errorf("Total = %d, want 0", got)
	}
	if !(Rates{}).Zero() || (Uniform(1e-5)).Zero() {
		t.Error("Rates.Zero misclassifies")
	}
}

func TestFaultSchedule(t *testing.T) {
	in := New(9, Rates{}) // no probabilistic faults: only the schedule fires
	in.ScheduleAt(2, BitFlip)
	in.ScheduleAt(4, FetchFail)
	in.ScheduleAt(5, Truncate)
	in.ScheduleAt(6, SEU)
	want := []Kind{None, None, BitFlip, None, FetchFail, Truncate, SEU, None}
	for i, k := range want {
		d := in.PlanLoad(410)
		if d.Kind != k {
			t.Errorf("load %d: kind = %v, want %v", i, d.Kind, k)
		}
		switch k {
		case BitFlip, SEU:
			if d.Word < 0 || d.Word >= 410 || d.Bit < 0 || d.Bit >= 32 {
				t.Errorf("load %d: fault location (%d, %d) out of range", i, d.Word, d.Bit)
			}
		case Truncate:
			if d.Word < 2 {
				t.Errorf("load %d: truncation at %d keeps no header", i, d.Word)
			}
		}
	}
	st := in.Stats()
	if st.BitFlips != 1 || st.FetchFails != 1 || st.Truncations != 1 || st.SEUs != 1 {
		t.Errorf("stats %+v, want one of each", st)
	}
}

func TestFaultScheduleOverridesRates(t *testing.T) {
	// A scheduled None suppresses even a certain probabilistic fault.
	in := New(11, Rates{WordError: 1})
	in.ScheduleAt(0, None)
	if d := in.PlanLoad(100); d.Kind != None {
		t.Errorf("scheduled None overridden by rates: %v", d.Kind)
	}
	if d := in.PlanLoad(100); d.Kind != BitFlip {
		t.Errorf("WordError=1 should always flip, got %v", d.Kind)
	}
}

func TestFaultPrecedence(t *testing.T) {
	// When every class would fire, the earliest pipeline stage wins.
	in := New(5, Rates{WordError: 1, Truncate: 1, FetchFail: 1, SEU: 1})
	if d := in.PlanLoad(100); d.Kind != FetchFail {
		t.Errorf("kind = %v, want FetchFail", d.Kind)
	}
	in2 := New(5, Rates{WordError: 1, Truncate: 1, SEU: 1})
	if d := in2.PlanLoad(100); d.Kind != Truncate {
		t.Errorf("kind = %v, want Truncate", d.Kind)
	}
	in3 := New(5, Rates{WordError: 1, SEU: 1})
	if d := in3.PlanLoad(100); d.Kind != BitFlip {
		t.Errorf("kind = %v, want BitFlip", d.Kind)
	}
	in4 := New(5, Rates{SEU: 1})
	if d := in4.PlanLoad(100); d.Kind != SEU {
		t.Errorf("kind = %v, want SEU", d.Kind)
	}
}

func TestFaultKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		None: "none", BitFlip: "bit-flip", Truncate: "truncate",
		FetchFail: "fetch-fail", SEU: "seu", Kind(99): "Kind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestFaultHitDistribution(t *testing.T) {
	// The geometric shortcut must hit roughly n*p of n trials and always
	// stay in range.
	in := New(17, Rates{})
	hits := 0
	const n, p, rounds = 1000, 0.002, 5000
	for i := 0; i < rounds; i++ {
		if h := in.hit(n, p); h >= 0 {
			if h >= n {
				t.Fatalf("hit %d out of range", h)
			}
			hits++
		}
	}
	// Expected per-round hit probability: 1-(1-p)^n ≈ 0.865.
	frac := float64(hits) / rounds
	if frac < 0.80 || frac > 0.93 {
		t.Errorf("hit fraction %.3f outside [0.80, 0.93]", frac)
	}
	if in.hit(10, 0) != -1 {
		t.Error("p=0 must never hit")
	}
	if in.hit(10, 1) != 0 {
		t.Error("p=1 must hit the first word")
	}
}
