package faults

import (
	"testing"
	"time"
)

// replayIO runs a fixed operation sequence through a fresh injector and
// returns the decisions.
func replayIO(seed int64, rates IORates) ([]IODecision, IOStats) {
	in := NewIO(seed, rates)
	ops := []struct {
		op   IOOp
		size int
	}{
		{OpWrite, 100}, {OpSync, 0}, {OpRename, 0}, {OpRead, 100},
		{OpWrite, 4096}, {OpSync, 0}, {OpRead, 4096}, {OpWrite, 7},
		{OpRead, 7}, {OpRename, 0}, {OpSync, 0}, {OpRead, 1 << 20},
	}
	var out []IODecision
	for _, o := range ops {
		out = append(out, in.PlanOp(o.op, o.size))
	}
	return out, in.Stats()
}

func TestIODeterminism(t *testing.T) {
	rates := IORates{ShortWrite: 0.4, ReadCorrupt: 0.4, SyncErr: 0.4, RenameErr: 0.4, Stall: 0.2}
	d1, s1 := replayIO(11, rates)
	d2, s2 := replayIO(11, rates)
	if s1 != s2 {
		t.Fatalf("stats differ across identical runs: %+v vs %+v", s1, s2)
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("decision %d differs: %+v vs %+v", i, d1[i], d2[i])
		}
	}
	if s1.Total() == 0 {
		t.Fatal("high rates injected nothing — draw plumbing broken")
	}
	_, s3 := replayIO(12, rates)
	if s1 == s3 {
		t.Error("different seeds produced identical stats (suspicious)")
	}
}

func TestIOApplicability(t *testing.T) {
	// With only the write-class rate set, no fault may ever fire on a
	// non-write op.
	in := NewIO(3, IORates{ShortWrite: 1})
	for i := 0; i < 50; i++ {
		if d := in.PlanOp(OpSync, 0); d.Kind != IONone {
			t.Fatalf("sync op %d got %v from a write-only rate set", i, d.Kind)
		}
		if d := in.PlanOp(OpRead, 64); d.Kind != IONone {
			t.Fatalf("read op %d got %v from a write-only rate set", i, d.Kind)
		}
		d := in.PlanOp(OpWrite, 64)
		if d.Kind != IOShortWrite {
			t.Fatalf("write op %d got %v, want short write at rate 1", i, d.Kind)
		}
		if d.Keep < 0 || d.Keep >= 64 {
			t.Fatalf("short write keeps %d of 64 bytes", d.Keep)
		}
	}
	st := in.Stats()
	if st.Ops != 150 || st.ShortWrites != 50 || st.Total() != 50 {
		t.Errorf("stats = %+v, want 150 ops, 50 short writes", st)
	}
}

func TestIOSchedule(t *testing.T) {
	in := NewIO(1, IORates{})
	in.ScheduleOp(1, IOSyncErr)
	in.ScheduleOp(2, IOSyncErr) // op 2 is a write: inapplicable, degrades to none
	in.ScheduleOp(3, IOStall)
	if d := in.PlanOp(OpSync, 0); d.Kind != IONone {
		t.Errorf("op 0 = %v, want none", d.Kind)
	}
	if d := in.PlanOp(OpSync, 0); d.Kind != IOSyncErr {
		t.Errorf("op 1 = %v, want scheduled sync error", d.Kind)
	}
	if d := in.PlanOp(OpWrite, 8); d.Kind != IONone {
		t.Errorf("op 2 = %v, want none (sync error cannot afflict a write)", d.Kind)
	}
	d := in.PlanOp(OpRead, 8)
	if d.Kind != IOStall || d.Stall <= 0 || d.Stall > time.Millisecond {
		t.Errorf("op 3 = %+v, want bounded stall", d)
	}
	if st := in.Stats(); st.SyncErrs != 1 || st.Stalls != 1 || st.Total() != 2 {
		t.Errorf("stats = %+v, want 1 sync error + 1 stall", st)
	}
}

func TestIOReadCorruptBitBounded(t *testing.T) {
	in := NewIO(9, IORates{ReadCorrupt: 1})
	for i := 0; i < 100; i++ {
		size := 1 + i%17
		d := in.PlanOp(OpRead, size)
		if d.Kind != IOReadCorrupt {
			t.Fatalf("read %d got %v", i, d.Kind)
		}
		if d.Bit < 0 || d.Bit >= size*8 {
			t.Fatalf("read %d of %d bytes corrupts bit %d", i, size, d.Bit)
		}
	}
}
