package netlist

import (
	"strings"
	"testing"

	"prpart/internal/resource"
)

func sampleDesign() *Design {
	d := NewDesign("top")
	leaf := &Module{
		Name: "mac",
		Ports: []Port{
			{Name: "clk", Dir: Input, Width: 1},
			{Name: "a", Dir: Input, Width: 18},
			{Name: "p", Dir: Output, Width: 48},
		},
	}
	leaf.Instances = append(leaf.Instances,
		Instance{Name: "d0", Prim: DSPPrim},
		Instance{Name: "r0", Prim: BRAMPrim},
	)
	for i := 0; i < 20; i++ {
		leaf.Instances = append(leaf.Instances, Instance{Name: "l", Prim: LUT})
	}
	for i := 0; i < 10; i++ {
		leaf.Instances = append(leaf.Instances, Instance{Name: "f", Prim: FF})
	}
	d.AddModule(leaf)
	top := d.Modules["top"]
	top.Ports = []Port{{Name: "clk", Dir: Input, Width: 1}}
	top.Nets = []string{"n1"}
	top.Instances = []Instance{
		{Name: "u0", Prim: SubModule, Of: "mac", Conns: map[string]string{"clk": "clk", "a": "n1"}},
		{Name: "u1", Prim: SubModule, Of: "mac", Conns: map[string]string{"clk": "clk"}},
	}
	return d
}

func TestValidateOK(t *testing.T) {
	if err := sampleDesign().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateMissingTop(t *testing.T) {
	d := sampleDesign()
	d.Top = "nope"
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "top module") {
		t.Errorf("err = %v", err)
	}
}

func TestValidateUndefinedSubmodule(t *testing.T) {
	d := sampleDesign()
	top := d.Modules["top"]
	top.Instances = append(top.Instances, Instance{Name: "bad", Prim: SubModule, Of: "ghost"})
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "undefined module") {
		t.Errorf("err = %v", err)
	}
}

func TestValidateUnknownPort(t *testing.T) {
	d := sampleDesign()
	top := d.Modules["top"]
	top.Instances[0].Conns["bogus"] = "n1"
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "unknown port") {
		t.Errorf("err = %v", err)
	}
}

func TestValidateCycle(t *testing.T) {
	d := NewDesign("a")
	d.Modules["a"].Instances = []Instance{{Name: "u", Prim: SubModule, Of: "b"}}
	d.AddModule(&Module{Name: "b", Instances: []Instance{{Name: "v", Prim: SubModule, Of: "a"}}})
	if err := d.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("err = %v", err)
	}
}

func TestResources(t *testing.T) {
	d := sampleDesign()
	// mac: max(20 LUT, 10 FF) = 20 pairs -> ceil(20/8) = 3 CLB, 1 BRAM, 1 DSP.
	got, err := d.Resources("mac")
	if err != nil {
		t.Fatal(err)
	}
	if got != resource.New(3, 1, 1) {
		t.Errorf("mac resources = %v, want {3,1,1}", got)
	}
	// top: two macs.
	got, err = d.Resources("top")
	if err != nil {
		t.Fatal(err)
	}
	if got != resource.New(6, 2, 2) {
		t.Errorf("top resources = %v, want {6,2,2}", got)
	}
	if _, err := d.Resources("ghost"); err == nil {
		t.Error("Resources of undefined module should fail")
	}
}

func TestCount(t *testing.T) {
	m := sampleDesign().Modules["mac"]
	if m.Count(LUT) != 20 || m.Count(FF) != 10 || m.Count(DSPPrim) != 1 || m.Count(BRAMPrim) != 1 {
		t.Errorf("counts: %d/%d/%d/%d", m.Count(LUT), m.Count(FF), m.Count(DSPPrim), m.Count(BRAMPrim))
	}
	if m.Count(SubModule) != 0 {
		t.Error("leaf has no submodules")
	}
}

func TestPortLookup(t *testing.T) {
	m := sampleDesign().Modules["mac"]
	if p := m.Port("a"); p == nil || p.Width != 18 {
		t.Errorf("Port(a) = %+v", p)
	}
	if m.Port("zzz") != nil {
		t.Error("Port(zzz) should be nil")
	}
}

func TestVerilogRendering(t *testing.T) {
	d := sampleDesign()
	v := d.Modules["mac"].Verilog()
	for _, want := range []string{
		"module mac (", "input clk", "input [17:0] a", "output [47:0] p",
		"DSP48E", "RAMB36", "LUT6", "FDRE", "endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("Verilog missing %q:\n%s", want, v)
		}
	}
	top := d.Modules["top"].Verilog()
	if !strings.Contains(top, "mac u0 (.a(n1), .clk(clk));") {
		t.Errorf("submodule instantiation malformed:\n%s", top)
	}
	if !strings.Contains(top, "wire n1;") {
		t.Errorf("net declaration missing:\n%s", top)
	}
}

func TestPortDirString(t *testing.T) {
	if Input.String() != "input" || Output.String() != "output" {
		t.Error("PortDir strings wrong")
	}
}
