// Package netlist provides the minimal structural netlist representation
// shared by the synthesis estimator (internal/synth), the wrapper
// generator (internal/wrapper) and the floorplanner: modules with ports,
// primitive instances and nets. It is deliberately small — just enough to
// stand in for the vendor netlist formats in the automated tool flow
// (§III-B steps 3-4).
package netlist

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"prpart/internal/resource"
)

// PortDir is the direction of a module port.
type PortDir int

const (
	// Input ports receive data.
	Input PortDir = iota
	// Output ports drive data.
	Output
)

// String returns the Verilog keyword for the direction.
func (d PortDir) String() string {
	if d == Output {
		return "output"
	}
	return "input"
}

// Port is a named, sized module port.
type Port struct {
	Name  string
	Dir   PortDir
	Width int // bits; 1 renders without a range
}

// Primitive identifies the device primitive class an instance maps to.
type Primitive int

const (
	// LUT and FF map to CLB resources (a Virtex-5 CLB holds 8 LUT/FF
	// pairs across two slices in this simplified model).
	LUT Primitive = iota
	// FF is a flip-flop.
	FF
	// BRAMPrim is one BlockRAM.
	BRAMPrim
	// DSPPrim is one DSP slice.
	DSPPrim
	// SubModule is an instance of another netlist module.
	SubModule
)

// lutFFPerCLB is the LUT/FF pair capacity per CLB used when folding
// primitive counts into CLB counts.
const lutFFPerCLB = 8

// Instance is one primitive or sub-module instantiation.
type Instance struct {
	Name string
	Prim Primitive
	// Of names the sub-module when Prim == SubModule.
	Of string
	// Conns maps formal port names to net names.
	Conns map[string]string
}

// Module is one netlist module.
type Module struct {
	Name      string
	Ports     []Port
	Nets      []string
	Instances []Instance
}

// Design is a set of modules with one top.
type Design struct {
	Top     string
	Modules map[string]*Module
}

// NewDesign creates an empty design with the named top module.
func NewDesign(top string) *Design {
	d := &Design{Top: top, Modules: map[string]*Module{}}
	d.Modules[top] = &Module{Name: top}
	return d
}

// AddModule adds (or replaces) a module.
func (d *Design) AddModule(m *Module) { d.Modules[m.Name] = m }

// Validate checks referential integrity: the top exists, submodule
// references resolve, instance connections name declared ports of the
// target, and there are no instantiation cycles.
func (d *Design) Validate() error {
	var errs []error
	if _, ok := d.Modules[d.Top]; !ok {
		errs = append(errs, fmt.Errorf("netlist: top module %q not defined", d.Top))
	}
	for _, m := range d.Modules {
		for _, inst := range m.Instances {
			if inst.Prim != SubModule {
				continue
			}
			sub, ok := d.Modules[inst.Of]
			if !ok {
				errs = append(errs, fmt.Errorf("netlist: %s/%s instantiates undefined module %q",
					m.Name, inst.Name, inst.Of))
				continue
			}
			for formal := range inst.Conns {
				if sub.Port(formal) == nil {
					errs = append(errs, fmt.Errorf("netlist: %s/%s connects unknown port %q of %q",
						m.Name, inst.Name, formal, inst.Of))
				}
			}
		}
	}
	if err := d.checkAcyclic(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

func (d *Design) checkAcyclic() error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(name string) error
	visit = func(name string) error {
		switch color[name] {
		case gray:
			return fmt.Errorf("netlist: instantiation cycle through %q", name)
		case black:
			return nil
		}
		color[name] = gray
		if m := d.Modules[name]; m != nil {
			for _, inst := range m.Instances {
				if inst.Prim == SubModule {
					if err := visit(inst.Of); err != nil {
						return err
					}
				}
			}
		}
		color[name] = black
		return nil
	}
	names := make([]string, 0, len(d.Modules))
	for n := range d.Modules {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := visit(n); err != nil {
			return err
		}
	}
	return nil
}

// Port returns the named port of the module, or nil.
func (m *Module) Port(name string) *Port {
	for i := range m.Ports {
		if m.Ports[i].Name == name {
			return &m.Ports[i]
		}
	}
	return nil
}

// Count tallies the primitive instances of one module (not descending
// into sub-modules).
func (m *Module) Count(p Primitive) int {
	n := 0
	for _, inst := range m.Instances {
		if inst.Prim == p {
			n++
		}
	}
	return n
}

// Resources estimates the device resources of a module hierarchy rooted
// at name: LUT/FF pairs fold into CLBs, BRAM and DSP primitives count
// directly. Shared sub-modules are counted once per instantiation.
func (d *Design) Resources(name string) (resource.Vector, error) {
	m, ok := d.Modules[name]
	if !ok {
		return resource.Vector{}, fmt.Errorf("netlist: module %q not defined", name)
	}
	luts, ffs := m.Count(LUT), m.Count(FF)
	pairs := luts
	if ffs > pairs {
		pairs = ffs
	}
	v := resource.New(ceilDiv(pairs, lutFFPerCLB), m.Count(BRAMPrim), m.Count(DSPPrim))
	for _, inst := range m.Instances {
		if inst.Prim == SubModule {
			sub, err := d.Resources(inst.Of)
			if err != nil {
				return resource.Vector{}, err
			}
			v = v.Add(sub)
		}
	}
	return v, nil
}

func ceilDiv(a, b int) int {
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// Verilog renders the module as synthesisable-looking Verilog. Primitive
// instances render as vendor primitive stubs; the output is a textual
// artefact of the tool flow, not input to a real synthesiser.
func (m *Module) Verilog() string {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s (\n", m.Name)
	for i, p := range m.Ports {
		comma := ","
		if i == len(m.Ports)-1 {
			comma = ""
		}
		if p.Width > 1 {
			fmt.Fprintf(&b, "  %s [%d:0] %s%s\n", p.Dir, p.Width-1, p.Name, comma)
		} else {
			fmt.Fprintf(&b, "  %s %s%s\n", p.Dir, p.Name, comma)
		}
	}
	b.WriteString(");\n")
	for _, n := range m.Nets {
		fmt.Fprintf(&b, "  wire %s;\n", n)
	}
	for _, inst := range m.Instances {
		of := inst.Of
		switch inst.Prim {
		case LUT:
			of = "LUT6"
		case FF:
			of = "FDRE"
		case BRAMPrim:
			of = "RAMB36"
		case DSPPrim:
			of = "DSP48E"
		}
		fmt.Fprintf(&b, "  %s %s (", of, inst.Name)
		keys := make([]string, 0, len(inst.Conns))
		for k := range inst.Conns {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i, k := range keys {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, ".%s(%s)", k, inst.Conns[k])
		}
		b.WriteString(");\n")
	}
	b.WriteString("endmodule\n")
	return b.String()
}
