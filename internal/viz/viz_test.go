package viz

import (
	"strings"
	"sync"
	"testing"

	"prpart/internal/design"
	"prpart/internal/partition"
)

var (
	once sync.Once
	res  *partition.Result
	serr error
)

func caseStudy(t *testing.T) *partition.Result {
	t.Helper()
	once.Do(func() {
		res, serr = partition.Solve(design.VideoReceiver(),
			partition.Options{Budget: design.CaseStudyBudget()})
	})
	if serr != nil {
		t.Fatal(serr)
	}
	return res
}

func TestConnectivityDOT(t *testing.T) {
	out := ConnectivityDOT(design.PaperExample())
	for _, want := range []string{
		"graph \"paper-example\"",
		`"A.3" -- "B.2" [label=2`,
		`"B.2" [label="B.2\nw=4"]`,
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	// Modes of the same module never co-occur: no A.1 -- A.2 edge.
	if strings.Contains(out, `"A.1" -- "A.2"`) {
		t.Error("intra-module edge emitted")
	}
}

func TestSchemeDOT(t *testing.T) {
	r := caseStudy(t)
	out := SchemeDOT(r.Scheme)
	if !strings.Contains(out, "cluster_prr1") {
		t.Errorf("missing region cluster:\n%.400s", out)
	}
	if len(r.Scheme.Static) > 0 && !strings.Contains(out, "cluster_static") {
		t.Error("missing static cluster")
	}
	if !strings.Contains(out, "frames)") {
		t.Error("missing frame annotations")
	}
}

func TestActivationDOT(t *testing.T) {
	r := caseStudy(t)
	out := ActivationDOT(r.Scheme)
	if !strings.Contains(out, "digraph") || !strings.Contains(out, "rankdir=LR") {
		t.Errorf("activation DOT malformed:\n%.200s", out)
	}
	// Every configuration appears.
	for ci := range r.Scheme.Design.Configurations {
		name := r.Scheme.Design.ConfigName(ci)
		if !strings.Contains(out, name) {
			t.Errorf("configuration %q missing", name)
		}
	}
}

func TestDotIDSanitisation(t *testing.T) {
	if got := dotID("a b/c:d"); got != "a_b_c_d" {
		t.Errorf("dotID = %q", got)
	}
}
