// Package viz renders the partitioner's data structures as Graphviz DOT
// documents: the mode co-occurrence graph the clustering works on, and
// the final partitioning with regions as clusters. The output is plain
// text a designer can feed to dot(1); nothing here affects the flow.
package viz

import (
	"fmt"
	"sort"
	"strings"

	"prpart/internal/connmat"
	"prpart/internal/design"
	"prpart/internal/scheme"
)

// ConnectivityDOT renders the co-occurrence graph of a design: one node
// per used mode (labelled with its node weight) and one edge per
// co-occurring pair (labelled and weighted by the edge weight).
func ConnectivityDOT(d *design.Design) string {
	m := connmat.New(d)
	modes := m.Modes()
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", dotID(d.Name))
	b.WriteString("  layout=neato;\n  overlap=false;\n  node [shape=circle];\n")
	for _, r := range modes {
		fmt.Fprintf(&b, "  %q [label=\"%s\\nw=%d\"];\n",
			d.ModeName(r), d.ModeName(r), m.NodeWeight(r))
	}
	for i := 0; i < len(modes); i++ {
		for j := i + 1; j < len(modes); j++ {
			w := m.EdgeWeight(modes[i], modes[j])
			if w == 0 {
				continue
			}
			fmt.Fprintf(&b, "  %q -- %q [label=%d, penwidth=%d];\n",
				d.ModeName(modes[i]), d.ModeName(modes[j]), w, w)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// SchemeDOT renders a partitioning: one cluster per region (labelled
// with its frame cost), one box per base partition, and a distinct
// cluster for promoted static parts.
func SchemeDOT(s *scheme.Scheme) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", dotID(s.Design.Name+"-"+s.Name))
	b.WriteString("  node [shape=box];\n")
	for ri := range s.Regions {
		reg := &s.Regions[ri]
		fmt.Fprintf(&b, "  subgraph cluster_prr%d {\n", ri+1)
		fmt.Fprintf(&b, "    label=\"PRR%d (%d frames)\";\n", ri+1, reg.Frames())
		for pi, p := range reg.Parts {
			fmt.Fprintf(&b, "    %q;\n", nodeName(s.Design, ri, pi, p.Label(s.Design)))
		}
		b.WriteString("  }\n")
	}
	if len(s.Static) > 0 {
		b.WriteString("  subgraph cluster_static {\n    label=\"static (0 frames)\";\n    style=dashed;\n")
		for i, p := range s.Static {
			fmt.Fprintf(&b, "    %q;\n", fmt.Sprintf("s%d %s", i, p.Label(s.Design)))
		}
		b.WriteString("  }\n")
	}
	b.WriteString("}\n")
	return b.String()
}

func nodeName(d *design.Design, ri, pi int, label string) string {
	return fmt.Sprintf("r%d.%d %s", ri+1, pi, label)
}

// ActivationDOT renders the configuration-to-region activation as a
// bipartite graph: which base partition each configuration loads where.
func ActivationDOT(s *scheme.Scheme) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", dotID(s.Design.Name+"-activation"))
	b.WriteString("  node [shape=box];\n")
	var cfgs []string
	for ci := range s.Design.Configurations {
		name := s.Design.ConfigName(ci)
		cfgs = append(cfgs, name)
		fmt.Fprintf(&b, "  %q [shape=ellipse];\n", name)
		for ri, pi := range s.Active[ci] {
			if pi == scheme.Inactive {
				continue
			}
			p := s.Regions[ri].Parts[pi]
			fmt.Fprintf(&b, "  %q -> %q;\n", name,
				nodeName(s.Design, ri, pi, p.Label(s.Design)))
		}
	}
	sort.Strings(cfgs)
	b.WriteString("}\n")
	return b.String()
}

func dotID(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '_'
	}, s)
}
