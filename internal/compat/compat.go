// Package compat implements the paper's compatibility relation: two base
// partitions are compatible when their modes never co-occur — no valid
// configuration needs a mode from each. Only compatible partitions may
// share a reconfigurable region, because a region holds exactly one base
// partition at a time; assigning two partitions that one configuration
// needs simultaneously would make that configuration unimplementable.
package compat

import (
	"math/bits"

	"prpart/internal/connmat"
	"prpart/internal/modeset"
)

// Mask is a bitset over configuration indices.
type Mask []uint64

// NewMask returns an empty mask able to hold n configurations.
func NewMask(n int) Mask { return make(Mask, (n+63)/64) }

// Set marks configuration i.
func (m Mask) Set(i int) { m[i/64] |= 1 << (i % 64) }

// Has reports whether configuration i is marked.
func (m Mask) Has(i int) bool { return m[i/64]&(1<<(i%64)) != 0 }

// Intersects reports whether two masks share a configuration.
func (m Mask) Intersects(o Mask) bool {
	for i := range m {
		if m[i]&o[i] != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of marked configurations.
func (m Mask) Count() int {
	n := 0
	for _, w := range m {
		n += bits.OnesCount64(w)
	}
	return n
}

// Union returns a fresh mask with every configuration marked in m or o.
func (m Mask) Union(o Mask) Mask {
	out := make(Mask, len(m))
	for i := range m {
		out[i] = m[i] | o[i]
	}
	return out
}

// Clone returns an independent copy.
func (m Mask) Clone() Mask {
	return append(Mask(nil), m...)
}

// ConfigMask returns the mask of configurations that intersect (activate
// at least one mode of) the given set.
func ConfigMask(m *connmat.Matrix, set modeset.Set) Mask {
	n := m.NumConfigs()
	out := NewMask(n)
	for ci := 0; ci < n; ci++ {
		for _, r := range set.Refs() {
			if m.Contains(ci, r) {
				out.Set(ci)
				break
			}
		}
	}
	return out
}

// Compatible reports whether sets a and b may share a region: no
// configuration intersects both.
func Compatible(m *connmat.Matrix, a, b modeset.Set) bool {
	return !ConfigMask(m, a).Intersects(ConfigMask(m, b))
}

// Table precomputes the configuration masks of a list of mode sets so
// that pairwise compatibility queries are O(configs/64).
type Table struct {
	masks []Mask
}

// NewTable builds a table for the given sets against matrix m.
func NewTable(m *connmat.Matrix, sets []modeset.Set) *Table {
	t := &Table{masks: make([]Mask, len(sets))}
	for i, s := range sets {
		t.masks[i] = ConfigMask(m, s)
	}
	return t
}

// Compatible reports whether entries i and j may share a region.
func (t *Table) Compatible(i, j int) bool {
	return !t.masks[i].Intersects(t.masks[j])
}

// Mask returns the configuration mask of entry i.
func (t *Table) Mask(i int) Mask { return t.masks[i] }

// Len returns the number of entries.
func (t *Table) Len() int { return len(t.masks) }

// GroupCompatible reports whether every entry in ga is compatible with
// every entry in gb — the condition for merging two region groups.
func (t *Table) GroupCompatible(ga, gb []int) bool {
	for _, i := range ga {
		for _, j := range gb {
			if !t.Compatible(i, j) {
				return false
			}
		}
	}
	return true
}
