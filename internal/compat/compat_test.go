package compat

import (
	"testing"
	"testing/quick"

	"prpart/internal/connmat"
	"prpart/internal/design"
	"prpart/internal/modeset"
)

func r(mod, mode int) design.ModeRef { return design.ModeRef{Module: mod, Mode: mode} }

func TestPaperCompatibilityExamples(t *testing.T) {
	m := connmat.New(design.PaperExample())
	// Paper: {A1} and {A2} are compatible; {A1} and {B1} are not, because
	// of configuration S->A1->B1->C1.
	if !Compatible(m, modeset.New(r(0, 1)), modeset.New(r(0, 2))) {
		t.Error("{A1} and {A2} should be compatible")
	}
	if Compatible(m, modeset.New(r(0, 1)), modeset.New(r(1, 1))) {
		t.Error("{A1} and {B1} should be incompatible")
	}
	// A multi-mode set {M1,D2}-style check: {A3,B2} vs {A2} — A2 occurs
	// only in config 5, which contains B2, so they are incompatible.
	if Compatible(m, modeset.New(r(0, 3), r(1, 2)), modeset.New(r(0, 2))) {
		t.Error("{A3,B2} and {A2} should be incompatible (config 5)")
	}
}

func TestCaseStudyCompatibility(t *testing.T) {
	m := connmat.New(design.VideoReceiver())
	// Table III pairs that share regions must be compatible:
	// PRR1 holds M2 and {M1,D2}; PRR3 holds D1 and R1; PRR4 F1 and F2.
	pairs := [][2]modeset.Set{
		{modeset.New(r(2, 2)), modeset.New(r(2, 1), r(3, 2))}, // M2 vs {M1,D2}
		{modeset.New(r(3, 1)), modeset.New(r(1, 1))},          // D1 vs R1
		{modeset.New(r(0, 1)), modeset.New(r(0, 2))},          // F1 vs F2
	}
	for _, p := range pairs {
		if !Compatible(m, p[0], p[1]) {
			t.Errorf("sets %v and %v should be compatible", p[0], p[1])
		}
	}
	// D1 and R2 co-occur (configs 5-7): incompatible.
	if Compatible(m, modeset.New(r(3, 1)), modeset.New(r(1, 2))) {
		t.Error("D1 and R2 should be incompatible")
	}
}

func TestMaskBasics(t *testing.T) {
	m := NewMask(130)
	if len(m) != 3 {
		t.Fatalf("mask words = %d, want 3", len(m))
	}
	for _, i := range []int{0, 63, 64, 129} {
		m.Set(i)
		if !m.Has(i) {
			t.Errorf("Has(%d) = false after Set", i)
		}
	}
	if m.Count() != 4 {
		t.Errorf("Count = %d, want 4", m.Count())
	}
	o := NewMask(130)
	o.Set(63)
	if !m.Intersects(o) {
		t.Error("masks sharing bit 63 should intersect")
	}
	o2 := NewMask(130)
	o2.Set(1)
	if m.Intersects(o2) {
		t.Error("disjoint masks should not intersect")
	}
	u := m.Union(o2)
	if u.Count() != 5 || !u.Has(1) {
		t.Errorf("Union wrong: count=%d", u.Count())
	}
	c := m.Clone()
	c.Set(2)
	if m.Has(2) {
		t.Error("Clone shares storage with original")
	}
}

func TestConfigMask(t *testing.T) {
	d := design.PaperExample()
	m := connmat.New(d)
	// B2 appears in configurations 1,3,4,5 (0-based 0,2,3,4).
	mask := ConfigMask(m, modeset.New(r(1, 2)))
	want := []bool{true, false, true, true, true}
	for i, w := range want {
		if mask.Has(i) != w {
			t.Errorf("ConfigMask(B2).Has(%d) = %v, want %v", i, mask.Has(i), w)
		}
	}
}

func TestTable(t *testing.T) {
	d := design.PaperExample()
	m := connmat.New(d)
	sets := []modeset.Set{
		modeset.New(r(0, 1)), // A1
		modeset.New(r(0, 2)), // A2
		modeset.New(r(1, 1)), // B1
		modeset.New(r(1, 2)), // B2
	}
	tab := NewTable(m, sets)
	if tab.Len() != 4 {
		t.Fatalf("table len = %d", tab.Len())
	}
	if !tab.Compatible(0, 1) {
		t.Error("A1/A2 should be table-compatible")
	}
	if tab.Compatible(0, 2) {
		t.Error("A1/B1 should be table-incompatible")
	}
	// Group {A1} with group {A2,B1}: A1-B1 conflict blocks the merge.
	if tab.GroupCompatible([]int{0}, []int{1, 2}) {
		t.Error("group merge should be blocked by A1-B1")
	}
	if !tab.GroupCompatible([]int{0}, []int{1}) {
		t.Error("group {A1} and {A2} should merge")
	}
	if tab.Mask(3).Count() != 4 {
		t.Errorf("B2 mask count = %d, want 4", tab.Mask(3).Count())
	}
}

func TestCompatibleMatchesDefinitionProperty(t *testing.T) {
	// Compatible(a,b) must equal "no configuration intersects both sets".
	for _, d := range []*design.Design{design.PaperExample(), design.VideoReceiver()} {
		m := connmat.New(d)
		modes := m.Modes()
		f := func(ai, bi uint) bool {
			a := modeset.New(modes[int(ai%uint(len(modes)))])
			b := modeset.New(modes[int(bi%uint(len(modes)))])
			slow := true
			for ci := range d.Configurations {
				cfg := modeset.New(d.ConfigModes(ci)...)
				if a.Intersects(cfg) && b.Intersects(cfg) {
					slow = false
					break
				}
			}
			return Compatible(m, a, b) == slow
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}
