package jobs

import (
	"math/rand"
	"sync"
	"time"
)

// Jitter spreads Retry-After hints so a fleet of synchronized batch
// clients refused in the same instant doesn't retry in lockstep and
// recreate the very overload that refused them. Seeded: the same seed
// yields the same hint sequence, which keeps backpressure behaviour
// reproducible in tests and chaos runs.
type Jitter struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewJitter returns a jitter source with a deterministic stream.
func NewJitter(seed int64) *Jitter {
	return &Jitter{rng: rand.New(rand.NewSource(seed))}
}

// RetryAfter converts a wait estimate into a Retry-After header value
// in whole seconds: the base plus a uniform random extra in [0, base),
// rounded up, never below 1. A nil Jitter degrades to the un-jittered
// ceiling.
func (j *Jitter) RetryAfter(base time.Duration) int {
	if base < time.Second {
		base = time.Second
	}
	d := base
	if j != nil {
		j.mu.Lock()
		d += time.Duration(j.rng.Int63n(int64(base)))
		j.mu.Unlock()
	}
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}
