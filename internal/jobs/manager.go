package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// State is an async job's lifecycle position. Transitions:
//
//	queued → running → done | failed
//	queued → canceled            (removed before dispatch)
//	running → canceled           (context cancelled mid-work)
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// ErrCanceled is the cancellation cause a DELETE on a running job
// injects; RunFuncs surface it by returning their context's error.
var ErrCanceled = errors.New("jobs: canceled by client")

// ErrNotFound reports an unknown job id.
var ErrNotFound = errors.New("jobs: no such job")

// RunFunc executes one async job. It must honor ctx (cancel and shed
// arrive through it) and return the result body with its HTTP status,
// or an error with the status a synchronous request would have gotten.
type RunFunc func(ctx context.Context) (body []byte, status int, err error)

// Record is the persisted form of a job — what survives a daemon
// restart. The result body itself is not duplicated here: it lives in
// the solve store under the job's solve key, exactly like a synchronous
// solve's.
type Record struct {
	V          int    `json:"v"`
	ID         string `json:"id"`
	Key        string `json:"key"`
	Tier       string `json:"tier"`
	State      State  `json:"state"`
	HTTPStatus int    `json:"httpStatus,omitempty"`
	Error      string `json:"error,omitempty"`
	CreatedMs  int64  `json:"createdUnixMs"`
	StartedMs  int64  `json:"startedUnixMs,omitempty"`
	FinishedMs int64  `json:"finishedUnixMs,omitempty"`
}

// RecordVersion is the current Record schema version.
const RecordVersion = 1

// Job is one async work item. All fields are read through snapshots
// (Record / Body); the manager owns the mutations.
type Job struct {
	mu       sync.Mutex
	id       string
	key      string
	tier     Tier
	state    State
	status   int
	errMsg   string
	created  time.Time
	started  time.Time
	finished time.Time
	body     []byte

	cancel context.CancelCauseFunc
	ticket *Ticket
	done   chan struct{}
}

// ID returns the job id.
func (j *Job) ID() string { return j.id }

// Key returns the job's solve key.
func (j *Job) Key() string { return j.key }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Body returns the result bytes of a done job (nil otherwise).
func (j *Job) Body() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.body
}

// Record snapshots the job into its persistable form.
func (j *Job) Record() Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.recordLocked()
}

func (j *Job) recordLocked() Record {
	r := Record{
		V: RecordVersion, ID: j.id, Key: j.key, Tier: j.tier.String(),
		State: j.state, HTTPStatus: j.status, Error: j.errMsg,
		CreatedMs: j.created.UnixMilli(),
	}
	if !j.started.IsZero() {
		r.StartedMs = j.started.UnixMilli()
	}
	if !j.finished.IsZero() {
		r.FinishedMs = j.finished.UnixMilli()
	}
	return r
}

// ManagerConfig tunes a Manager.
type ManagerConfig struct {
	// Sched executes the jobs. Required.
	Sched *Scheduler
	// Persist, if set, is called with the job's record at every terminal
	// transition; serve wires it to the solve store so finished jobs
	// survive a restart. Errors are reported to the caller of neither —
	// persistence is best-effort, the in-memory state is authoritative
	// while the process lives.
	Persist func(Record)
	// Load, if set, resolves ids absent from memory (evicted or from a
	// previous daemon life) from persistent storage.
	Load func(id string) (Record, bool)
	// MaxFinished bounds how many terminal jobs stay in memory; the
	// oldest-finished are evicted first (their records remain loadable
	// through Load). Default 1024.
	MaxFinished int
}

// Manager owns the async job table: submission, polling, cancellation,
// retention and persistence.
type Manager struct {
	cfg ManagerConfig

	mu       sync.Mutex
	jobs     map[string]*Job
	finished []string // ids in terminal order, oldest first
}

// NewManager builds a Manager over a scheduler.
func NewManager(cfg ManagerConfig) *Manager {
	if cfg.MaxFinished <= 0 {
		cfg.MaxFinished = 1024
	}
	return &Manager{cfg: cfg, jobs: map[string]*Job{}}
}

// newJobID returns a fresh "j-" + 16 hex chars id.
func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("jobs: reading random id: %v", err))
	}
	return "j-" + hex.EncodeToString(b[:])
}

// Submit enqueues run as an async job on tier and returns it in state
// queued (or, rarely, already past it). The job's context descends from
// base — a daemon shutdown cancels every job. Tier-full propagates as
// ErrTierFull for the caller to map to backpressure.
func (m *Manager) Submit(base context.Context, key string, tier Tier, run RunFunc) (*Job, error) {
	jctx, cancel := context.WithCancelCause(base)
	j := &Job{
		id: newJobID(), key: key, tier: tier, state: StateQueued,
		status: 0, created: time.Now(), cancel: cancel, done: make(chan struct{}),
	}
	fn := func(ctx context.Context) { m.runJob(j, ctx, run) }
	ticket, err := m.cfg.Sched.Enqueue(jctx, tier, fn)
	if err != nil {
		cancel(err)
		return nil, err
	}
	j.ticket = ticket
	m.mu.Lock()
	m.jobs[j.id] = j
	m.mu.Unlock()
	return j, nil
}

// runJob is the scheduler-side body of a job: run, classify, finish.
func (m *Manager) runJob(j *Job, ctx context.Context, run RunFunc) {
	j.mu.Lock()
	if j.state != StateQueued { // canceled between dispatch and here
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()

	body, status, err := run(ctx)

	state := StateDone
	errMsg := ""
	if err != nil {
		errMsg = err.Error()
		if errors.Is(context.Cause(ctx), ErrCanceled) {
			state = StateCanceled
		} else {
			state = StateFailed
		}
	}
	m.finish(j, state, status, errMsg, body)
}

// finish moves a job to a terminal state exactly once: records the
// outcome, persists, closes Done and applies retention.
func (m *Manager) finish(j *Job, state State, status int, errMsg string, body []byte) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.status = status
	j.errMsg = errMsg
	if state == StateDone {
		j.body = body
	}
	j.finished = time.Now()
	rec := j.recordLocked()
	j.mu.Unlock()
	j.cancel(nil)
	if m.cfg.Persist != nil {
		m.cfg.Persist(rec)
	}
	close(j.done)

	m.mu.Lock()
	m.finished = append(m.finished, j.id)
	for len(m.finished) > m.cfg.MaxFinished {
		evict := m.finished[0]
		m.finished = m.finished[1:]
		delete(m.jobs, evict)
	}
	m.mu.Unlock()
}

// Get returns the live job for id, or — when it has been evicted or
// belongs to a previous daemon life — its persisted record through
// Load. The boolean pair distinguishes (live, _) from (nil, record).
func (m *Manager) Get(id string) (*Job, Record, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if ok {
		return j, j.Record(), true
	}
	if m.cfg.Load != nil {
		if rec, ok := m.cfg.Load(id); ok {
			return nil, rec, true
		}
	}
	return nil, Record{}, false
}

// Cancel stops a job: a still-queued job is withdrawn from the
// scheduler and finishes as canceled immediately; a running one has its
// context cancelled with ErrCanceled and transitions when its RunFunc
// observes it. Terminal jobs are left untouched (ok, no-op). Unknown
// ids return ErrNotFound.
func (m *Manager) Cancel(id string) (Record, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		// A persisted job from a previous life is terminal by
		// construction; cancelling it is a no-op.
		if m.cfg.Load != nil {
			if rec, ok := m.cfg.Load(id); ok {
				return rec, nil
			}
		}
		return Record{}, ErrNotFound
	}
	j.mu.Lock()
	state := j.state
	ticket := j.ticket
	j.mu.Unlock()
	if state == StateQueued && ticket != nil && m.cfg.Sched.Remove(ticket) {
		m.finish(j, StateCanceled, 0, ErrCanceled.Error(), nil)
		return j.Record(), nil
	}
	if !state.Terminal() {
		j.cancel(ErrCanceled)
	}
	return j.Record(), nil
}

// List returns a page of in-memory job records, newest first
// (CreatedMs descending, ties broken by id so the order is total), and
// the number of records matching the filter before pagination. A
// non-empty state keeps only jobs in that state; offset/limit slice
// the filtered, sorted list (limit <= 0 means no bound). Persisted
// records of evicted jobs are not listed — the listing is an admin
// view of the live table, and evicted ids remain reachable through
// Get.
func (m *Manager) List(state State, offset, limit int) ([]Record, int) {
	m.mu.Lock()
	live := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		live = append(live, j)
	}
	m.mu.Unlock()
	recs := make([]Record, 0, len(live))
	for _, j := range live {
		r := j.Record()
		if state != "" && r.State != state {
			continue
		}
		recs = append(recs, r)
	}
	sort.Slice(recs, func(i, k int) bool {
		if recs[i].CreatedMs != recs[k].CreatedMs {
			return recs[i].CreatedMs > recs[k].CreatedMs
		}
		return recs[i].ID < recs[k].ID
	})
	total := len(recs)
	if offset > len(recs) {
		offset = len(recs)
	}
	recs = recs[offset:]
	if limit > 0 && len(recs) > limit {
		recs = recs[:limit]
	}
	return recs, total
}

// Counts returns the number of in-memory jobs per state.
func (m *Manager) Counts() map[State]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := map[State]int{}
	for _, j := range m.jobs {
		out[j.State()]++
	}
	return out
}
