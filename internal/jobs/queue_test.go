package jobs

import (
	"context"
	"fmt"
	"testing"
)

func mkTicket(tier Tier) *Ticket {
	return &Ticket{tier: tier, ctx: context.Background(), fn: func(context.Context) {}}
}

func TestTierQueueFIFO(t *testing.T) {
	tq := newTierQueue(4)
	a, b, c := mkTicket(Interactive), mkTicket(Interactive), mkTicket(Interactive)
	tq.push(a)
	tq.push(b)
	if got := tq.pop(); got != a {
		t.Fatal("pop broke FIFO order")
	}
	tq.push(c)
	if got := tq.pop(); got != b {
		t.Fatal("pop broke FIFO order after refill")
	}
	if got := tq.pop(); got != c {
		t.Fatal("pop lost the last entry")
	}
	if tq.len(Interactive) != 0 {
		t.Fatal("len after draining is not 0")
	}
}

func TestTierQueueRemove(t *testing.T) {
	tq := newTierQueue(4)
	a, b := mkTicket(Bulk), mkTicket(Bulk)
	tq.push(a)
	tq.push(b)
	if !tq.remove(a) {
		t.Fatal("remove of queued ticket failed")
	}
	if tq.remove(a) {
		t.Fatal("double remove succeeded")
	}
	if got := tq.pop(); got != b {
		t.Fatal("removed ticket still popped")
	}
	if tq.remove(b) {
		t.Fatal("remove of dispatched ticket succeeded")
	}
}

func TestTierQueueBulkShareNormalized(t *testing.T) {
	for _, bad := range []int{-3, 0, 1} {
		if tq := newTierQueue(bad); tq.bulkEvery != 2 {
			t.Errorf("bulkEvery %d normalized to %d, want 2", bad, tq.bulkEvery)
		}
	}
	if tq := newTierQueue(7); tq.bulkEvery != 7 {
		t.Error("valid bulkEvery was rewritten")
	}
}

// TestTierQueueSingleTierServedDirectly: with only one tier waiting,
// that tier is always served — bulk is not held back when interactive
// is idle.
func TestTierQueueSingleTierServedDirectly(t *testing.T) {
	tq := newTierQueue(4)
	for i := 0; i < 10; i++ {
		tq.push(mkTicket(Bulk))
	}
	for i := 0; i < 10; i++ {
		got := tq.pop()
		if got == nil || got.tier != Bulk {
			t.Fatalf("pop %d with only bulk waiting = %v", i, got)
		}
	}
	if tq.pop() != nil {
		t.Fatal("pop on empty queue")
	}
}

// TestTierQueueMixedLoadFairness is the acceptance-criterion scheduler
// test: a deterministic mixed-load trace where a saturating bulk
// backlog and a steady interactive stream contend for every dequeue.
// It asserts both halves of the policy:
//
//  1. interactive wait is bounded — an interactive entry is never
//     passed over more than once per bulkEvery grants, so its dequeue
//     position (and with it p99 queue wait in grant units) is bounded
//     by its queue position plus the bulk share overhead;
//  2. bulk never starves — over any window of bulkEvery contended
//     grants at least one goes to bulk.
func TestTierQueueMixedLoadFairness(t *testing.T) {
	const bulkEvery = 4
	tq := newTierQueue(bulkEvery)

	// A standing bulk backlog of 200 entries…
	type tag struct {
		tier Tier
		seq  int
	}
	tags := map[*Ticket]tag{}
	for i := 0; i < 200; i++ {
		tk := mkTicket(Bulk)
		tags[tk] = tag{Bulk, i}
		tq.push(tk)
	}
	// …while interactive entries arrive one per grant (saturating: the
	// interactive queue never empties until the arrivals stop).
	const grants = 400
	nextI := 0
	var picks []tag
	interactiveWait := map[int]int{} // seq → grants spent waiting
	enqueueGrant := map[int]int{}
	for g := 0; g < grants; g++ {
		tk := mkTicket(Interactive)
		tags[tk] = tag{Interactive, nextI}
		enqueueGrant[nextI] = g
		tq.push(tk)
		nextI++

		got := tq.pop()
		if got == nil {
			t.Fatalf("grant %d: pop returned nil with both tiers loaded", g)
		}
		pk := tags[got]
		picks = append(picks, pk)
		if pk.tier == Interactive {
			interactiveWait[pk.seq] = g - enqueueGrant[pk.seq]
		}
	}

	// Bulk never starves: every window of bulkEvery grants contains a
	// bulk grant (both tiers were non-empty throughout).
	for w := 0; w+bulkEvery <= len(picks); w++ {
		bulk := 0
		for _, p := range picks[w : w+bulkEvery] {
			if p.tier == Bulk {
				bulk++
			}
		}
		if bulk == 0 {
			t.Fatalf("grants %d..%d: no bulk grant in a full window — bulk starved", w, w+bulkEvery-1)
		}
		if bulk > 1 {
			t.Fatalf("grants %d..%d: %d bulk grants — interactive under-served", w, w+bulkEvery-1, bulk)
		}
	}

	// Interactive is FIFO and its wait is bounded: with one arrival and
	// one grant per step and a 1/bulkEvery bulk share, the backlog in
	// front of an interactive entry grows by at most 1 per bulkEvery
	// grants, so the wait of the n-th entry is at most
	// n/(bulkEvery-1) + bulkEvery grants. Check the exact trace against
	// that closed-form bound — this is the "interactive p99 stays
	// bounded" acceptance assertion in deterministic form.
	prev := -1
	for _, p := range picks {
		if p.tier != Interactive {
			continue
		}
		if p.seq != prev+1 {
			t.Fatalf("interactive served out of order: %d after %d", p.seq, prev)
		}
		prev = p.seq
		bound := p.seq/(bulkEvery-1) + bulkEvery
		if w := interactiveWait[p.seq]; w > bound {
			t.Fatalf("interactive %d waited %d grants, bound %d", p.seq, w, bound)
		}
	}
	if prev < 0 {
		t.Fatal("no interactive entry was ever served")
	}

	// Exact shares over the contended region: 1 in bulkEvery grants went
	// to bulk.
	bulkPicks := 0
	for _, p := range picks {
		if p.tier == Bulk {
			bulkPicks++
		}
	}
	if want := grants / bulkEvery; bulkPicks != want {
		t.Fatalf("bulk got %d of %d contended grants, want exactly %d", bulkPicks, grants, want)
	}

	// After arrivals stop the drained interactive queue hands the
	// remaining grants to bulk alone.
	sawBulkRun := 0
	for tq.len(Interactive) > 0 || tq.len(Bulk) > 0 {
		got := tq.pop()
		if tags[got].tier == Bulk {
			sawBulkRun++
		}
	}
	if sawBulkRun == 0 {
		t.Fatal("bulk backlog never drained")
	}
}

func TestTierString(t *testing.T) {
	if Interactive.String() != "interactive" || Bulk.String() != "bulk" {
		t.Fatal("tier names changed — they are wire/metric names")
	}
	if s := Tier(9).String(); s != fmt.Sprintf("tier(%d)", 9) {
		t.Fatalf("unknown tier string = %q", s)
	}
}
