package jobs

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"prpart/internal/obs"
)

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}

func TestSchedulerRunsWorkWithBoundedConcurrency(t *testing.T) {
	s := NewScheduler(SchedConfig{Workers: 3})
	defer s.Close()
	var cur, peak, done atomic.Int64
	for i := 0; i < 20; i++ {
		_, err := s.Enqueue(context.Background(), Interactive, func(context.Context) {
			n := cur.Add(1)
			defer cur.Add(-1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			done.Add(1)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return done.Load() == 20 })
	if p := peak.Load(); p > 3 {
		t.Fatalf("peak concurrency %d exceeds 3 workers", p)
	}
}

func TestSchedulerDepthBoundsAndMetrics(t *testing.T) {
	o := obs.New()
	agg := o.Level("agg.queued")
	// Depths bound admitted work (queued + running): with one
	// interactive running, depth 2 leaves room for exactly one more.
	s := NewScheduler(SchedConfig{Workers: 1, InteractiveDepth: 2, BulkDepth: 2, Obs: o, Queued: agg})
	defer s.Close()

	block := make(chan struct{})
	s.Enqueue(context.Background(), Interactive, func(context.Context) { <-block })
	waitFor(t, func() bool { return s.Running() == 1 })

	// Worker busy: one interactive fits the queue, the second is refused.
	if _, err := s.Enqueue(context.Background(), Interactive, func(context.Context) {}); err != nil {
		t.Fatalf("first queued interactive: %v", err)
	}
	if _, err := s.Enqueue(context.Background(), Interactive, func(context.Context) {}); err != ErrTierFull {
		t.Fatalf("over-depth interactive: %v, want ErrTierFull", err)
	}
	// Bulk has its own, independent bound.
	for i := 0; i < 2; i++ {
		if _, err := s.Enqueue(context.Background(), Bulk, func(context.Context) {}); err != nil {
			t.Fatalf("bulk %d: %v", i, err)
		}
	}
	if _, err := s.Enqueue(context.Background(), Bulk, func(context.Context) {}); err != ErrTierFull {
		t.Fatalf("over-depth bulk: %v, want ErrTierFull", err)
	}
	if !s.Full(Bulk) || s.QueueLen(Bulk) != 2 {
		t.Fatalf("Full/QueueLen(Bulk) = %v/%d, want true/2", s.Full(Bulk), s.QueueLen(Bulk))
	}
	snap := o.Snapshot()
	if snap.Levels["jobs.queued.interactive"].Current != 1 || snap.Levels["jobs.queued.bulk"].Current != 2 {
		t.Fatalf("queued levels wrong: %+v", snap.Levels)
	}
	if agg.Value() != 3 {
		t.Fatalf("aggregate queued = %d, want 3", agg.Value())
	}
	if snap.Levels["jobs.running.interactive"].Current != 1 {
		t.Fatalf("running level wrong: %+v", snap.Levels["jobs.running.interactive"])
	}

	close(block)
	waitFor(t, func() bool {
		sn := o.Snapshot()
		return sn.Counters["jobs.done.interactive"] == 2 && sn.Counters["jobs.done.bulk"] == 2
	})
	if agg.Value() != 0 {
		t.Fatalf("aggregate queued after drain = %d", agg.Value())
	}
	// Queue-wait and run-time histograms saw every entry.
	sn := o.Snapshot()
	if sn.Histograms["jobs.wait.bulk"].Count != 2 || sn.Histograms["jobs.run.interactive"].Count != 2 {
		t.Fatalf("histograms wrong: %+v", sn.Histograms)
	}
}

// TestSchedulerShedsBulkForInteractive: an interactive enqueue that
// finds every worker running bulk cancels the oldest running bulk entry
// with cause ErrShed and takes the freed worker.
func TestSchedulerShedsBulkForInteractive(t *testing.T) {
	o := obs.New()
	s := NewScheduler(SchedConfig{Workers: 1, Obs: o})
	defer s.Close()

	shedCause := make(chan error, 1)
	s.Enqueue(context.Background(), Bulk, func(ctx context.Context) {
		<-ctx.Done()
		shedCause <- context.Cause(ctx)
	})
	waitFor(t, func() bool { return s.Running() == 1 })

	ran := make(chan struct{})
	if _, err := s.Enqueue(context.Background(), Interactive, func(context.Context) { close(ran) }); err != nil {
		t.Fatal(err)
	}
	select {
	case cause := <-shedCause:
		if cause != ErrShed {
			t.Fatalf("shed cause = %v, want ErrShed", cause)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("bulk work was not shed")
	}
	select {
	case <-ran:
	case <-time.After(5 * time.Second):
		t.Fatal("interactive work never ran after shed")
	}
	if o.Snapshot().Counters["jobs.shed"] != 1 {
		t.Fatal("jobs.shed counter not incremented")
	}
}

// TestSchedulerNoShedWhileInteractiveRuns: bulk is only shed when every
// busy worker is running bulk — interactive work completing soon is
// worth waiting for.
func TestSchedulerNoShedWhileInteractiveRuns(t *testing.T) {
	s := NewScheduler(SchedConfig{Workers: 2})
	defer s.Close()

	release := make(chan struct{})
	var bulkCancelled atomic.Bool
	s.Enqueue(context.Background(), Bulk, func(ctx context.Context) {
		select {
		case <-ctx.Done():
			bulkCancelled.Store(true)
		case <-release:
		}
	})
	s.Enqueue(context.Background(), Interactive, func(context.Context) { <-release })
	waitFor(t, func() bool { return s.Running() == 2 })

	done := make(chan struct{})
	s.Enqueue(context.Background(), Interactive, func(context.Context) { close(done) })
	time.Sleep(20 * time.Millisecond)
	if bulkCancelled.Load() {
		t.Fatal("bulk shed although an interactive worker was about to free up")
	}
	close(release)
	<-done
}

func TestSchedulerRemove(t *testing.T) {
	s := NewScheduler(SchedConfig{Workers: 1})
	defer s.Close()
	block := make(chan struct{})
	s.Enqueue(context.Background(), Interactive, func(context.Context) { <-block })
	waitFor(t, func() bool { return s.Running() == 1 })

	ran := make(chan struct{})
	tk, err := s.Enqueue(context.Background(), Bulk, func(context.Context) { close(ran) })
	if err != nil {
		t.Fatal(err)
	}
	if !s.Remove(tk) {
		t.Fatal("remove of queued ticket failed")
	}
	if s.Remove(tk) {
		t.Fatal("double remove succeeded")
	}
	close(block)
	time.Sleep(20 * time.Millisecond)
	select {
	case <-ran:
		t.Fatal("removed ticket still ran")
	default:
	}
}

func TestSchedulerEstimateWaitAndObserve(t *testing.T) {
	s := NewScheduler(SchedConfig{Workers: 1})
	defer s.Close()
	if s.EstimateWait(Interactive) != 0 {
		t.Fatal("estimate with no observations must be 0")
	}
	s.ObserveWork(100 * time.Millisecond)
	// Idle worker → no wait.
	if s.EstimateWait(Interactive) != 0 {
		t.Fatal("estimate with an idle worker must be 0")
	}
	block := make(chan struct{})
	s.Enqueue(context.Background(), Interactive, func(context.Context) { <-block })
	waitFor(t, func() bool { return s.Running() == 1 })
	if est := s.EstimateWait(Interactive); est != 100*time.Millisecond {
		t.Fatalf("estimate with busy worker = %v, want 100ms", est)
	}
	// Bulk waits behind queued interactive too.
	s.Enqueue(context.Background(), Interactive, func(context.Context) {})
	if est := s.EstimateWait(Bulk); est != 200*time.Millisecond {
		t.Fatalf("bulk estimate = %v, want 200ms", est)
	}
	// EWMA converges toward new observations.
	s.ObserveWork(200 * time.Millisecond)
	if est := s.EstimateWait(Interactive); est <= 100*time.Millisecond {
		t.Fatalf("EWMA did not move: %v", est)
	}
	close(block)
}

func TestSchedulerEnqueueWaitBlocksUntilSpace(t *testing.T) {
	// Admitted bound 2: one running + one queued fills the tier.
	s := NewScheduler(SchedConfig{Workers: 1, BulkDepth: 2})
	defer s.Close()
	block := make(chan struct{})
	s.Enqueue(context.Background(), Bulk, func(context.Context) { <-block })
	waitFor(t, func() bool { return s.Running() == 1 })
	s.Enqueue(context.Background(), Bulk, func(context.Context) {}) // fills the queue

	var second atomic.Bool
	enq := make(chan error, 1)
	go func() {
		_, err := s.EnqueueWait(context.Background(), Bulk, func(context.Context) { second.Store(true) })
		enq <- err
	}()
	time.Sleep(20 * time.Millisecond)
	select {
	case err := <-enq:
		t.Fatalf("EnqueueWait returned early: %v", err)
	default:
	}
	close(block)
	if err := <-enq; err != nil {
		t.Fatal(err)
	}
	waitFor(t, second.Load)

	// A dead context unblocks the wait with its cause.
	blocked := make(chan struct{})
	s.Enqueue(context.Background(), Bulk, func(context.Context) { <-blocked })
	waitFor(t, func() bool { return s.Running() == 1 })
	s.Enqueue(context.Background(), Bulk, func(context.Context) {})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := s.EnqueueWait(ctx, Bulk, func(context.Context) {}); err != context.Canceled {
		t.Fatalf("EnqueueWait on dead ctx = %v, want context.Canceled", err)
	}
	close(blocked)
}

func TestSchedulerDrainAndClose(t *testing.T) {
	s := NewScheduler(SchedConfig{Workers: 1})
	var done atomic.Int64
	release := make(chan struct{})
	s.Enqueue(context.Background(), Interactive, func(context.Context) { <-release; done.Add(1) })
	s.Enqueue(context.Background(), Bulk, func(context.Context) { done.Add(1) })
	waitFor(t, func() bool { return s.Running() == 1 })

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	time.Sleep(10 * time.Millisecond)
	select {
	case <-drained:
		t.Fatal("Drain returned while work was queued and running")
	default:
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatal(err)
	}
	if done.Load() != 2 {
		t.Fatalf("done = %d after drain, want 2 (queued work must complete)", done.Load())
	}
	s.Close()
	if _, err := s.Enqueue(context.Background(), Interactive, func(context.Context) {}); err != ErrClosed {
		t.Fatalf("enqueue after close = %v, want ErrClosed", err)
	}
}
