package jobs

import (
	"testing"
	"time"
)

// TestJitterSeededDeterminism pins the jitter contract: identical seeds
// yield identical Retry-After sequences (reproducible backpressure in
// tests and chaos runs), distinct seeds diverge, and every value stays
// inside [ceil(base), ceil(2*base)] seconds with a floor of 1.
func TestJitterSeededDeterminism(t *testing.T) {
	bases := []time.Duration{
		0, 500 * time.Millisecond, time.Second, 1500 * time.Millisecond,
		3 * time.Second, 10 * time.Second, time.Second, 7 * time.Second,
	}
	a, b := NewJitter(42), NewJitter(42)
	var seqA, seqB []int
	for _, base := range bases {
		seqA = append(seqA, a.RetryAfter(base))
		seqB = append(seqB, b.RetryAfter(base))
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, seqA, seqB)
		}
	}

	c := NewJitter(43)
	diverged := false
	for i, base := range bases {
		if c.RetryAfter(base) != seqA[i] {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical sequences")
	}

	for i, base := range bases {
		eff := base
		if eff < time.Second {
			eff = time.Second
		}
		lo := 1
		hi := int(2*eff/time.Second) + 1
		if seqA[i] < lo || seqA[i] > hi {
			t.Fatalf("RetryAfter(%v) = %d outside [%d,%d]", base, seqA[i], lo, hi)
		}
	}

	// The nil jitter degrades to the plain ceiling — still never 0, so
	// a client always backs off at least a second.
	var nj *Jitter
	if got := nj.RetryAfter(0); got != 1 {
		t.Fatalf("nil jitter RetryAfter(0) = %d, want 1", got)
	}
	if got := nj.RetryAfter(2500 * time.Millisecond); got != 3 {
		t.Fatalf("nil jitter RetryAfter(2.5s) = %d, want 3", got)
	}
}

// TestJitterSpreads: over many draws with the same base, the jitter
// actually uses the spread (more than one distinct value).
func TestJitterSpreads(t *testing.T) {
	j := NewJitter(7)
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		seen[j.RetryAfter(10*time.Second)] = true
	}
	if len(seen) < 3 {
		t.Fatalf("64 draws over a 10s base produced only %d distinct values", len(seen))
	}
}
