package jobs

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestManager(t *testing.T, workers int) (*Manager, *Scheduler) {
	t.Helper()
	s := NewScheduler(SchedConfig{Workers: workers})
	t.Cleanup(s.Close)
	return NewManager(ManagerConfig{Sched: s}), s
}

func TestJobLifecycleDone(t *testing.T) {
	m, _ := newTestManager(t, 1)
	j, err := m.Submit(context.Background(), "k1", Bulk, func(ctx context.Context) ([]byte, int, error) {
		return []byte("result"), http.StatusOK, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(j.ID(), "j-") || len(j.ID()) != 18 {
		t.Fatalf("job id %q has the wrong shape", j.ID())
	}
	<-j.Done()
	rec := j.Record()
	if rec.State != StateDone || rec.HTTPStatus != http.StatusOK || rec.Key != "k1" || rec.Tier != "bulk" {
		t.Fatalf("record = %+v", rec)
	}
	if rec.CreatedMs == 0 || rec.StartedMs == 0 || rec.FinishedMs == 0 {
		t.Fatalf("record missing timestamps: %+v", rec)
	}
	if string(j.Body()) != "result" {
		t.Fatalf("body = %q", j.Body())
	}
	got, rec2, ok := m.Get(j.ID())
	if !ok || got != j || rec2.State != StateDone {
		t.Fatal("Get lost the finished job")
	}
}

func TestJobLifecycleFailed(t *testing.T) {
	m, _ := newTestManager(t, 1)
	j, _ := m.Submit(context.Background(), "k", Bulk, func(ctx context.Context) ([]byte, int, error) {
		return nil, http.StatusUnprocessableEntity, errors.New("infeasible")
	})
	<-j.Done()
	rec := j.Record()
	if rec.State != StateFailed || rec.HTTPStatus != 422 || rec.Error != "infeasible" {
		t.Fatalf("record = %+v", rec)
	}
	if j.Body() != nil {
		t.Fatal("failed job retained a body")
	}
}

// TestJobCancelWhileQueued: cancelling a job that has not been
// dispatched withdraws it — its RunFunc never executes.
func TestJobCancelWhileQueued(t *testing.T) {
	m, _ := newTestManager(t, 1)
	block := make(chan struct{})
	defer close(block)
	m.Submit(context.Background(), "blocker", Bulk, func(ctx context.Context) ([]byte, int, error) {
		<-block
		return nil, 200, nil
	})
	ran := make(chan struct{})
	j, _ := m.Submit(context.Background(), "victim", Bulk, func(ctx context.Context) ([]byte, int, error) {
		close(ran)
		return nil, 200, nil
	})
	// Wait until the blocker occupies the worker so the victim is
	// genuinely queued.
	waitFor(t, func() bool { return j.State() == StateQueued && m.cfg.Sched.QueueLen(Bulk) == 1 })

	rec, err := m.Cancel(j.ID())
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateCanceled {
		t.Fatalf("state after queued-cancel = %s, want canceled", rec.State)
	}
	select {
	case <-j.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("Done never closed for a queued-cancelled job")
	}
	select {
	case <-ran:
		t.Fatal("cancelled-while-queued job still ran")
	case <-time.After(20 * time.Millisecond):
	}
}

// TestJobCancelMidSolve: cancelling a running job cancels its context
// with cause ErrCanceled; the job finishes as canceled when the RunFunc
// returns.
func TestJobCancelMidSolve(t *testing.T) {
	m, _ := newTestManager(t, 1)
	entered := make(chan struct{})
	j, _ := m.Submit(context.Background(), "k", Bulk, func(ctx context.Context) ([]byte, int, error) {
		close(entered)
		<-ctx.Done()
		return nil, http.StatusServiceUnavailable, ctx.Err()
	})
	<-entered
	if _, err := m.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	rec := j.Record()
	if rec.State != StateCanceled {
		t.Fatalf("state after mid-solve cancel = %s, want canceled", rec.State)
	}
	// Cancelling a terminal job is a no-op, not an error.
	rec2, err := m.Cancel(j.ID())
	if err != nil || rec2.State != StateCanceled {
		t.Fatalf("second cancel: %+v, %v", rec2, err)
	}
}

func TestJobCancelUnknown(t *testing.T) {
	m, _ := newTestManager(t, 1)
	if _, err := m.Cancel("j-0000000000000000"); err != ErrNotFound {
		t.Fatalf("cancel unknown = %v, want ErrNotFound", err)
	}
	if _, _, ok := m.Get("j-0000000000000000"); ok {
		t.Fatal("Get found a job that does not exist")
	}
}

// TestJobPersistAndLoad: terminal transitions call Persist; ids that
// fell out of memory resolve through Load — the restart-survival seam.
func TestJobPersistAndLoad(t *testing.T) {
	var mu sync.Mutex
	saved := map[string]Record{}
	s := NewScheduler(SchedConfig{Workers: 1})
	defer s.Close()
	m := NewManager(ManagerConfig{
		Sched: s,
		Persist: func(r Record) {
			mu.Lock()
			saved[r.ID] = r
			mu.Unlock()
		},
		Load: func(id string) (Record, bool) {
			mu.Lock()
			defer mu.Unlock()
			r, ok := saved[id]
			return r, ok
		},
		MaxFinished: 1,
	})
	j1, _ := m.Submit(context.Background(), "k1", Bulk, func(ctx context.Context) ([]byte, int, error) {
		return []byte("one"), 200, nil
	})
	<-j1.Done()
	j2, _ := m.Submit(context.Background(), "k2", Bulk, func(ctx context.Context) ([]byte, int, error) {
		return []byte("two"), 200, nil
	})
	<-j2.Done()

	mu.Lock()
	if len(saved) != 2 || saved[j1.ID()].State != StateDone {
		t.Fatalf("persisted records = %+v", saved)
	}
	mu.Unlock()

	// MaxFinished=1 evicted j1 from memory; Get falls back to Load.
	live, rec, ok := m.Get(j1.ID())
	if !ok || live != nil || rec.State != StateDone || rec.Key != "k1" {
		t.Fatalf("evicted job Get = %v, %+v, %v", live, rec, ok)
	}
	// A second manager (fresh daemon life) with the same Load resolves
	// both ids and treats Cancel of a loaded terminal job as a no-op.
	m2 := NewManager(ManagerConfig{Sched: s, Load: m.cfg.Load})
	if _, rec, ok := m2.Get(j2.ID()); !ok || rec.State != StateDone {
		t.Fatal("restarted manager cannot see persisted jobs")
	}
	if rec, err := m2.Cancel(j1.ID()); err != nil || rec.State != StateDone {
		t.Fatalf("cancel of persisted terminal job: %+v, %v", rec, err)
	}
}

func TestJobShutdownCancelsRunning(t *testing.T) {
	s := NewScheduler(SchedConfig{Workers: 1})
	defer s.Close()
	m := NewManager(ManagerConfig{Sched: s})
	base, shutdown := context.WithCancel(context.Background())
	entered := make(chan struct{})
	j, _ := m.Submit(base, "k", Bulk, func(ctx context.Context) ([]byte, int, error) {
		close(entered)
		<-ctx.Done()
		return nil, http.StatusServiceUnavailable, ctx.Err()
	})
	<-entered
	shutdown()
	<-j.Done()
	// Daemon shutdown is not a client cancel: the job failed.
	if st := j.State(); st != StateFailed {
		t.Fatalf("state after base-context shutdown = %s, want failed", st)
	}
	if m.Counts()[StateFailed] != 1 {
		t.Fatalf("counts = %v", m.Counts())
	}
}
