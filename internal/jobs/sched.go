package jobs

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
	"time"

	"prpart/internal/obs"
)

// SchedConfig tunes a Scheduler.
type SchedConfig struct {
	// Workers is the number of concurrent work slots. Default 1.
	Workers int
	// InteractiveDepth / BulkDepth bound how many entries a tier may
	// have admitted — waiting or running — at once (0 = unbounded).
	// Counting running work keeps admission free of dispatch races: an
	// entry consumes the same capacity whether the dispatcher has
	// picked it up yet or not, exactly like the worker+queue slot pool
	// this scheduler replaced.
	InteractiveDepth int
	BulkDepth        int
	// BulkShare is the guaranteed bulk fraction of contended dequeues:
	// when both tiers have waiters, every BulkShare-th grant goes to
	// bulk. Minimum (and default) 2; serve uses 4.
	BulkShare int
	// Obs receives the jobs.* instruments (per-tier queued/running
	// levels, done/canceled/shed counters, queue-wait and run-time
	// histograms). Nil disables them.
	Obs *obs.Obs
	// Queued, if set, mirrors the aggregate queued count across both
	// tiers into an externally owned level (serve.queue_depth keeps its
	// historical name this way).
	Queued *obs.Level
}

// Scheduler runs enqueued work on a fixed pool of workers under the
// two-tier policy of tierQueue. It also owns the cross-cutting serving
// aids the intake needs: the smoothed work-time estimate for
// deadline-aware admission, and the shed registry that lets an
// interactive arrival reclaim a worker from long-running bulk work.
type Scheduler struct {
	workers int

	mu      sync.Mutex
	cond    *sync.Cond // signalled on queue/worker state changes
	q       *tierQueue
	depth   [numTiers]int // admitted (queued+running) bound, 0 = unbounded
	running [numTiers]int
	closed  bool
	// runningBulk lists cancel funcs of bulk work in dispatch order
	// (front = oldest); shedding cancels the front with ErrShed.
	runningBulk *list.List

	ewmaNs atomic.Int64 // smoothed work wall time, 0 = unknown
	wg     sync.WaitGroup

	aggQueued  *obs.Level
	lQueued    [numTiers]*obs.Level
	lRunning   [numTiers]*obs.Level
	cDone      [numTiers]*obs.Counter
	cCanceled  [numTiers]*obs.Counter
	cShed      *obs.Counter
	cPeerFills *obs.Counter
	hWait      [numTiers]*obs.Histogram
	hRun       [numTiers]*obs.Histogram
}

// NewScheduler builds a scheduler and starts its workers.
func NewScheduler(cfg SchedConfig) *Scheduler {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	s := &Scheduler{
		workers:     cfg.Workers,
		q:           newTierQueue(cfg.BulkShare),
		runningBulk: list.New(),
		aggQueued:   cfg.Queued,
		cShed:       cfg.Obs.Counter("jobs.shed"),
		cPeerFills:  cfg.Obs.Counter("jobs.peer_fills"),
	}
	s.depth[Interactive] = cfg.InteractiveDepth
	s.depth[Bulk] = cfg.BulkDepth
	s.cond = sync.NewCond(&s.mu)
	for t := Tier(0); t < numTiers; t++ {
		name := t.String()
		s.lQueued[t] = cfg.Obs.Level("jobs.queued." + name)
		s.lRunning[t] = cfg.Obs.Level("jobs.running." + name)
		s.cDone[t] = cfg.Obs.Counter("jobs.done." + name)
		s.cCanceled[t] = cfg.Obs.Counter("jobs.canceled." + name)
		s.hWait[t] = cfg.Obs.Histogram("jobs.wait." + name)
		s.hRun[t] = cfg.Obs.Histogram("jobs.run." + name)
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Workers returns the pool size.
func (s *Scheduler) Workers() int { return s.workers }

// NotePeerFill records that a request which would otherwise have
// queued for a worker was answered by a cluster peer instead. The
// counter (jobs.peer_fills) lets capacity planning see how much
// admission pressure the peer tier absorbs.
func (s *Scheduler) NotePeerFill() { s.cPeerFills.Inc() }

// Enqueue submits fn on a tier without blocking. fn always runs exactly
// once (with ctx, wrapped cancellable for bulk) unless the ticket is
// removed first. A full tier refuses with ErrTierFull; a closed
// scheduler with ErrClosed.
//
// An interactive enqueue that finds every worker busy and none of them
// running interactive work sheds the oldest running bulk entry: bulk
// wall time is unbounded, so waiting behind it would make interactive
// latency unbounded too. The shed entry's context is cancelled with
// cause ErrShed.
func (s *Scheduler) Enqueue(ctx context.Context, tier Tier, fn func(ctx context.Context)) (*Ticket, error) {
	t := &Ticket{tier: tier, ctx: ctx, fn: fn, enqueued: time.Now()}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if s.fullLocked(tier) {
		s.mu.Unlock()
		return nil, ErrTierFull
	}
	s.q.push(t)
	s.lQueued[tier].Inc()
	s.aggQueued.Inc()
	var shed context.CancelCauseFunc
	if tier == Interactive && s.running[Interactive]+s.running[Bulk] >= s.workers &&
		s.running[Interactive] == 0 && s.runningBulk.Len() > 0 {
		el := s.runningBulk.Front()
		s.runningBulk.Remove(el)
		shed = el.Value.(context.CancelCauseFunc)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	if shed != nil {
		shed(ErrShed)
		s.cShed.Inc()
	}
	return t, nil
}

// EnqueueWait is Enqueue that blocks while the tier is full, for
// clients that want flow control instead of a refusal (the batch
// endpoint feeding many members). It returns ctx's cause if the context
// dies while waiting.
func (s *Scheduler) EnqueueWait(ctx context.Context, tier Tier, fn func(ctx context.Context)) (*Ticket, error) {
	for {
		t, err := s.Enqueue(ctx, tier, fn)
		if err != ErrTierFull {
			return t, err
		}
		// Wake when finished or removed work frees capacity, or ctx dies.
		stop := context.AfterFunc(ctx, func() {
			s.mu.Lock()
			s.cond.Broadcast()
			s.mu.Unlock()
		})
		s.mu.Lock()
		for !s.closed && ctx.Err() == nil && s.fullLocked(tier) {
			s.cond.Wait()
		}
		s.mu.Unlock()
		stop()
		if err := context.Cause(ctx); ctx.Err() != nil {
			return nil, err
		}
	}
}

// Remove withdraws a still-queued ticket so its fn never runs; false
// when the ticket was already dispatched.
func (s *Scheduler) Remove(t *Ticket) bool {
	s.mu.Lock()
	ok := s.q.remove(t)
	if ok {
		s.lQueued[t.tier].Dec()
		s.aggQueued.Dec()
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	if ok {
		s.cCanceled[t.tier].Inc()
	}
	return ok
}

// QueueLen returns the number of waiting entries on a tier.
func (s *Scheduler) QueueLen(t Tier) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.q.len(t)
}

// Full reports whether a tier is at its admitted bound.
func (s *Scheduler) Full(t Tier) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fullLocked(t)
}

func (s *Scheduler) fullLocked(t Tier) bool {
	d := s.depth[t]
	return d > 0 && s.q.len(t)+s.running[t] >= d
}

// Running returns the number of dispatched entries currently executing.
func (s *Scheduler) Running() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running[Interactive] + s.running[Bulk]
}

// ObserveWork folds one completed unit's wall time into the smoothed
// estimate (EWMA, alpha 0.3). The caller decides what counts as real
// work — serve reports only actual solver runs, so instant cache-path
// or cancelled entries don't drag the estimate toward zero.
func (s *Scheduler) ObserveWork(d time.Duration) {
	for {
		old := s.ewmaNs.Load()
		nw := int64(d)
		if old != 0 {
			nw = old + (int64(d)-old)*3/10
		}
		if nw <= 0 {
			nw = 1
		}
		if s.ewmaNs.CompareAndSwap(old, nw) {
			return
		}
	}
}

// EstimateWait predicts how long a new entry on the tier would wait for
// a worker: zero while a worker is idle or nothing has been observed
// yet, otherwise one smoothed work time per wave of entries ahead of
// it. Interactive entries only wait behind other interactive ones (the
// share policy and shedding keep bulk out of their way); bulk waits
// behind everything. A scheduling estimate over racy counters, not an
// accounting fact — good enough to refuse work that cannot meet its
// deadline.
func (s *Scheduler) EstimateWait(tier Tier) time.Duration {
	avg := time.Duration(s.ewmaNs.Load())
	if avg <= 0 {
		return 0
	}
	s.mu.Lock()
	idle := s.workers - s.running[Interactive] - s.running[Bulk]
	ahead := s.q.len(Interactive)
	if tier == Bulk {
		ahead += s.q.len(Bulk)
	}
	s.mu.Unlock()
	if idle > 0 {
		return 0
	}
	return time.Duration(ahead/s.workers+1) * avg
}

// Drain blocks until both queues are empty and no work is running, or
// ctx expires. The caller is responsible for stopping new enqueues
// first (serve refuses with 503 while draining).
func (s *Scheduler) Drain(ctx context.Context) error {
	for {
		s.mu.Lock()
		idle := s.running[Interactive]+s.running[Bulk] == 0 &&
			s.q.len(Interactive) == 0 && s.q.len(Bulk) == 0
		s.mu.Unlock()
		if idle {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// Close stops accepting work and releases the workers once the
// remaining queue drains. Already-queued fns still run (typically
// instantly, against their now-dead contexts); Close does not wait for
// them — pair with Drain for a graceful stop.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// worker is the dispatch loop: pop under the tier policy, run, repeat.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	s.mu.Lock()
	for {
		t := s.q.pop()
		if t == nil {
			if s.closed {
				s.mu.Unlock()
				return
			}
			s.cond.Wait()
			continue
		}
		s.lQueued[t.tier].Dec()
		s.aggQueued.Dec()
		s.running[t.tier]++
		s.lRunning[t.tier].Inc()
		ctx := t.ctx
		var cancel context.CancelCauseFunc
		var el *list.Element
		if t.tier == Bulk {
			ctx, cancel = context.WithCancelCause(t.ctx)
			el = s.runningBulk.PushBack(cancel)
		}
		s.cond.Broadcast() // depth freed: wake EnqueueWait blockers
		s.mu.Unlock()

		s.hWait[t.tier].Observe(time.Since(t.enqueued))
		start := time.Now()
		t.fn(ctx)
		s.hRun[t.tier].Observe(time.Since(start))
		if cancel != nil {
			cancel(nil)
		}

		s.mu.Lock()
		if el != nil {
			s.runningBulk.Remove(el) // no-op if shedding already unlinked it
		}
		s.running[t.tier]--
		s.lRunning[t.tier].Dec()
		s.cond.Broadcast()
		s.mu.Unlock()
		s.cDone[t.tier].Inc()
		s.mu.Lock()
	}
}
