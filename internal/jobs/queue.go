// Package jobs is the daemon's work-management subsystem: a two-tier
// priority intake (interactive vs. bulk) feeding a bounded worker pool,
// plus an asynchronous job manager with a persistent, restart-surviving
// record of completed work.
//
// The scheduling policy is starvation-proof by construction: interactive
// work is preferred, but when both tiers have waiters a fixed 1-in-N
// share of dequeues goes to bulk, so a saturating interactive stream can
// slow bulk work down by at most a constant factor and can never park it
// forever. Conversely, interactive work never queues behind a wall of
// bulk: when every worker is busy running bulk, the oldest running bulk
// solve is shed (cancelled with ErrShed) to free capacity immediately.
// The policy core (tierQueue) is a pure data structure with no clocks or
// goroutines, so its fairness properties are pinned by deterministic
// tests.
package jobs

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"time"
)

// Tier classifies work by latency sensitivity.
type Tier int

const (
	// Interactive is latency-sensitive work: a user waiting on the
	// response of a synchronous solve.
	Interactive Tier = iota
	// Bulk is throughput work: batch fan-outs, async jobs, sweeps.
	Bulk
	numTiers
)

// String returns the tier's wire name.
func (t Tier) String() string {
	switch t {
	case Interactive:
		return "interactive"
	case Bulk:
		return "bulk"
	}
	return fmt.Sprintf("tier(%d)", int(t))
}

var (
	// ErrTierFull reports that a tier's queue-depth bound is reached.
	ErrTierFull = errors.New("jobs: tier queue full")
	// ErrShed reports that a running bulk solve was cancelled to free
	// capacity for interactive work. It is delivered as the context
	// cancellation cause; shed work is safe to retry.
	ErrShed = errors.New("jobs: bulk work shed for interactive work")
	// ErrClosed reports an enqueue on a closed scheduler.
	ErrClosed = errors.New("jobs: scheduler closed")
)

// Ticket is a unit of queued work. It is created by enqueue and owned by
// the queue until dispatched or removed.
type Ticket struct {
	tier     Tier
	ctx      context.Context
	fn       func(ctx context.Context)
	enqueued time.Time
	el       *list.Element // non-nil while queued
}

// Tier returns the tier the ticket was enqueued on.
func (t *Ticket) Tier() Tier { return t.tier }

// tierQueue is the pure scheduling core: one FIFO per tier and a
// bounded-bulk-share pick policy. Depth bounds live one layer up in the
// Scheduler (they cover dispatched work too, not just waiting work). It
// is not safe for concurrent use; the Scheduler serializes access.
// Keeping it free of clocks, channels and goroutines makes the fairness
// policy testable as a deterministic sequence of push/pop calls.
type tierQueue struct {
	q [numTiers]*list.List

	// bulkEvery is the guaranteed bulk share: when both tiers have
	// waiters, every bulkEvery-th pop takes from bulk. Values <= 1 mean
	// strict alternation is impossible — bulk is picked every pop that
	// both tiers contend, which would invert the priority — so the
	// scheduler normalizes to >= 2.
	bulkEvery int
	// sinceBulk counts consecutive contended pops that went to
	// interactive since bulk was last served.
	sinceBulk int
}

func newTierQueue(bulkEvery int) *tierQueue {
	if bulkEvery < 2 {
		bulkEvery = 2
	}
	tq := &tierQueue{bulkEvery: bulkEvery}
	for i := range tq.q {
		tq.q[i] = list.New()
	}
	return tq
}

// push appends a ticket to its tier.
func (tq *tierQueue) push(t *Ticket) {
	t.el = tq.q[t.tier].PushBack(t)
}

// pop removes and returns the next ticket under the bounded-bulk-share
// policy, or nil when both tiers are empty. With only one tier waiting
// that tier is served; with both waiting, interactive is preferred
// except every bulkEvery-th contended pop, which goes to bulk.
func (tq *tierQueue) pop() *Ticket {
	iq, bq := tq.q[Interactive], tq.q[Bulk]
	var take *list.List
	switch {
	case iq.Len() == 0 && bq.Len() == 0:
		return nil
	case iq.Len() == 0:
		take = bq
	case bq.Len() == 0:
		take = iq
	case tq.sinceBulk >= tq.bulkEvery-1:
		take = bq
	default:
		take = iq
	}
	if take == bq {
		tq.sinceBulk = 0
	} else {
		tq.sinceBulk++
	}
	el := take.Front()
	take.Remove(el)
	t := el.Value.(*Ticket)
	t.el = nil
	return t
}

// remove deletes a still-queued ticket; false when it was already
// dispatched (or removed).
func (tq *tierQueue) remove(t *Ticket) bool {
	if t.el == nil {
		return false
	}
	tq.q[t.tier].Remove(t.el)
	t.el = nil
	return true
}

// len returns the number of queued tickets on a tier.
func (tq *tierQueue) len(t Tier) int { return tq.q[t].Len() }
