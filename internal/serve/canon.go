// Package serve is the repo's long-running partitioning service: an
// HTTP/JSON API over the §IV search with a bounded worker pool, a
// content-addressed solve cache, singleflight request coalescing,
// per-request deadlines, backpressure and graceful shutdown. The
// cmd/prpartd daemon is a thin wrapper around Server; the prpart CLI
// shares this package's request canonicalization (SolveSpec) and result
// rendering (WriteResult), so the daemon's responses are byte-identical
// to `prpart -json` output and both sides derive the same cache key for
// the same input.
package serve

import (
	"crypto/sha256"
	"fmt"
	"io"
	"sort"

	"prpart/internal/core"
	"prpart/internal/design"
	"prpart/internal/obs"
	"prpart/internal/partition"
	"prpart/internal/resource"
)

// SolveSpec is the canonical, decoded form of a solve request: the
// design plus every option that can change the answer. It is the unit
// the cache key is computed over — execution details (worker count,
// deadline, observability) are deliberately not part of it, because the
// search result is deterministic regardless of them.
type SolveSpec struct {
	// Design is the validated design to partition.
	Design *design.Design
	// Device pins the target FPGA ("" = smallest feasible).
	Device string
	// Budget caps the usable resources (zero = device capacity).
	Budget resource.Vector
	// NoStatic, Greedy and NoQuantize select the paper's ablations.
	NoStatic   bool
	Greedy     bool
	NoQuantize bool
	// MaxCandidateSets / MaxFirstMoves bound the search (0 = default).
	MaxCandidateSets int
	MaxFirstMoves    int
	// Pinned lists modes forced into static logic.
	Pinned []design.ModeRef
	// CoverDescending reverses the covering order (ablation A5).
	CoverDescending bool
	// Weights optionally skews the objective by transition probability.
	Weights [][]float64
	// Floorplan asks for region placements in the result.
	Floorplan bool
	// Multilevel routes the solve through the coarsen–partition–refine
	// engine; MultilevelSeed and MultilevelThreshold tune it. The three
	// fields are hashed into the cache key only when Multilevel is set,
	// so every pre-existing request keeps its key.
	Multilevel          bool
	MultilevelSeed      int64
	MultilevelThreshold int
	// Workers, when nonzero, pins the solve's worker count for this
	// request (candidate-set workers and the per-level refine scan),
	// overriding the daemon/CLI default. Results are provably identical
	// at any worker count (see partition/refine_parallel.go), but a set
	// value is still hashed into the cache key — the key stays a
	// complete record of the request — while unset requests keep their
	// pre-existing keys.
	Workers int
}

// keySchema versions the canonical byte layout Key hashes. Bump it
// whenever the layout (or the meaning of any hashed field) changes, so
// stale caches can never serve results computed under old semantics.
const keySchema = "prpart-solve/v1"

// Key returns the content-addressed cache key of the spec:
// "sha256:<hex>" over a canonical serialization of the design and every
// result-affecting option. Two requests with the same key are guaranteed
// to have byte-identical results, whichever codec (JSON or XML) the
// design arrived in, because the design is re-encoded through the
// normalizing JSON codec before hashing.
func (sp *SolveSpec) Key() (string, error) {
	if sp.Design == nil {
		return "", fmt.Errorf("serve: spec has no design")
	}
	h := sha256.New()
	io.WriteString(h, keySchema+"\n")
	if err := design.EncodeJSON(h, sp.Design); err != nil {
		return "", fmt.Errorf("serve: canonicalizing design: %w", err)
	}
	fmt.Fprintf(h, "device=%s\n", sp.Device)
	fmt.Fprintf(h, "budget=%d,%d,%d\n", sp.Budget.CLB, sp.Budget.BRAM, sp.Budget.DSP)
	fmt.Fprintf(h, "noStatic=%t greedy=%t noQuantize=%t coverDesc=%t floorplan=%t\n",
		sp.NoStatic, sp.Greedy, sp.NoQuantize, sp.CoverDescending, sp.Floorplan)
	fmt.Fprintf(h, "maxSets=%d maxFirst=%d\n", sp.MaxCandidateSets, sp.MaxFirstMoves)
	pins := append([]design.ModeRef(nil), sp.Pinned...)
	sort.Slice(pins, func(i, j int) bool {
		if pins[i].Module != pins[j].Module {
			return pins[i].Module < pins[j].Module
		}
		return pins[i].Mode < pins[j].Mode
	})
	for _, p := range pins {
		fmt.Fprintf(h, "pin=%s\n", p)
	}
	for i, row := range sp.Weights {
		fmt.Fprintf(h, "w%d=", i)
		for _, v := range row {
			fmt.Fprintf(h, "%.17g,", v)
		}
		io.WriteString(h, "\n")
	}
	if sp.Multilevel {
		fmt.Fprintf(h, "multilevel seed=%d threshold=%d\n",
			sp.MultilevelSeed, sp.MultilevelThreshold)
	}
	if sp.Workers != 0 {
		fmt.Fprintf(h, "workers=%d\n", sp.Workers)
	}
	return fmt.Sprintf("sha256:%x", h.Sum(nil)), nil
}

// CoreOptions materialises the flow options for the spec. Workers and
// obs are execution details layered on top of the canonical request;
// a nonzero sp.Workers overrides the caller's default.
func (sp *SolveSpec) CoreOptions(workers int, o *obs.Obs) core.Options {
	if sp.Workers != 0 {
		workers = sp.Workers
	}
	return core.Options{
		Device:              sp.Device,
		Budget:              sp.Budget,
		SkipBackend:         true,
		Multilevel:          sp.Multilevel,
		MultilevelSeed:      sp.MultilevelSeed,
		MultilevelThreshold: sp.MultilevelThreshold,
		Partition: partition.Options{
			NoStatic:          sp.NoStatic,
			GreedyOnly:        sp.Greedy,
			NoQuantize:        sp.NoQuantize,
			MaxCandidateSets:  sp.MaxCandidateSets,
			MaxFirstMoves:     sp.MaxFirstMoves,
			PinnedStatic:      sp.Pinned,
			CoverDescending:   sp.CoverDescending,
			TransitionWeights: sp.Weights,
			Workers:           workers,
			Obs:               o,
		},
	}
}
