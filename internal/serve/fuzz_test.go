package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"prpart/internal/design"
	"prpart/internal/serve"
)

// FuzzDecodeRequest feeds arbitrary bytes to the HTTP request decoder
// and checks the invariants that hold for everything it accepts:
// decoding never panics, is deterministic, never returns a negative
// timeout, and every accepted request canonicalizes to a stable cache
// key (so a malicious body can never poison the cache with a flapping
// key).
func FuzzDecodeRequest(f *testing.F) {
	// Seed with genuinely valid envelopes in both codecs so the corpus
	// starts on the grammar the decoder was written for.
	var jd bytes.Buffer
	if err := design.EncodeJSON(&jd, design.PaperExample()); err != nil {
		f.Fatal(err)
	}
	f.Add([]byte(fmt.Sprintf(`{"design": %s}`, jd.String())))
	f.Add([]byte(fmt.Sprintf(
		`{"design": %s, "options": {"device": "FX70T", "budget": {"clb": 6800, "bram": 64, "dsp": 150}, "floorplan": true, "timeoutMs": 500}}`,
		jd.String())))
	var xd bytes.Buffer
	if err := writeXML(&xd, design.VideoReceiver()); err != nil {
		f.Fatal(err)
	}
	xenv, err := json.Marshal(map[string]string{"xml": xd.String()})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(xenv)
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"design": {}, "xml": "<design/>"}`))
	f.Add([]byte(`{"nope": true}`))
	f.Add([]byte(`{"design": {"name": "x"}} trailing`))
	f.Add([]byte(`{"options": {"timeoutMs": -5}}`))
	f.Add([]byte(`{"options": {"transitionWeights": [[0.5]]}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		sp1, m1, err1 := serve.DecodeRequest(data)
		sp2, m2, err2 := serve.DecodeRequest(data)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic error: %v vs %v", err1, err2)
		}
		if err1 != nil {
			return
		}
		if sp1 == nil || sp1.Design == nil {
			t.Fatal("accepted request with no design")
		}
		if m1.Timeout < 0 || m1 != m2 {
			t.Fatalf("request meta %+v and %+v (negative timeout or nondeterministic)", m1, m2)
		}
		k1, kerr1 := sp1.Key()
		k2, kerr2 := sp2.Key()
		if kerr1 != nil || kerr2 != nil {
			t.Fatalf("accepted request does not canonicalize: %v / %v", kerr1, kerr2)
		}
		if k1 != k2 {
			t.Fatalf("flapping cache key: %s vs %s", k1, k2)
		}
	})
}
