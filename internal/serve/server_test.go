package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prpart/internal/core"
	"prpart/internal/design"
	"prpart/internal/obs"
	"prpart/internal/serve"
)

// solveBody builds a /v1/solve request body for a design with options.
func solveBody(t *testing.T, d *design.Design, opts string) []byte {
	t.Helper()
	var dj bytes.Buffer
	if err := design.EncodeJSON(&dj, d); err != nil {
		t.Fatal(err)
	}
	if opts == "" {
		opts = "{}"
	}
	return []byte(fmt.Sprintf(`{"design": %s, "options": %s}`, dj.String(), opts))
}

func post(t *testing.T, ts *httptest.Server, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestSolveCacheHit submits the same design twice and requires the
// second response to be byte-identical and cache-served, with exactly
// one underlying solve: cache-hit counter 1, solver invocations 1.
func TestSolveCacheHit(t *testing.T) {
	o := obs.New()
	var calls atomic.Int64
	srv := serve.New(serve.Config{
		Workers: 2,
		Obs:     o,
		Solver: func(ctx context.Context, d *design.Design, opts core.Options) (*core.Result, error) {
			calls.Add(1)
			return core.RunContext(ctx, d, opts)
		},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := solveBody(t, design.VideoReceiver(), `{"budget": {"clb": 6800, "bram": 64, "dsp": 150}}`)
	r1, b1 := post(t, ts, body)
	if r1.StatusCode != 200 {
		t.Fatalf("first solve: status %d: %s", r1.StatusCode, b1)
	}
	if got := r1.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("first solve X-Cache = %q, want miss", got)
	}
	r2, b2 := post(t, ts, body)
	if r2.StatusCode != 200 {
		t.Fatalf("second solve: status %d: %s", r2.StatusCode, b2)
	}
	if got := r2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("second solve X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("cached response differs:\n--- first\n%s--- second\n%s", b1, b2)
	}
	if k1, k2 := r1.Header.Get("X-Solve-Key"), r2.Header.Get("X-Solve-Key"); k1 == "" || k1 != k2 {
		t.Errorf("solve keys differ: %q vs %q", k1, k2)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("solver ran %d times, want 1", n)
	}
	snap := o.Snapshot()
	if snap.Counters["serve.cache_hits"] != 1 {
		t.Errorf("cache hits = %d, want 1", snap.Counters["serve.cache_hits"])
	}
	if snap.Counters["serve.solves"] != 1 {
		t.Errorf("solves = %d, want 1", snap.Counters["serve.solves"])
	}
	if snap.Timers["serve.solve"].Count != 1 {
		t.Errorf("solve timer count = %d, want 1", snap.Timers["serve.solve"].Count)
	}
}

// TestSolveXMLAndJSONShareCache sends the same design once in the XML
// spec format and once in the JSON codec: canonicalization must map
// both to the same key, so the second request is a cache hit.
func TestSolveXMLAndJSONShareCache(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	d := design.PaperExample()
	jsonReq := solveBody(t, d, "")
	r1, b1 := post(t, ts, jsonReq)
	if r1.StatusCode != 200 {
		t.Fatalf("json solve: %d: %s", r1.StatusCode, b1)
	}

	var xb strings.Builder
	if err := writeXML(&xb, d); err != nil {
		t.Fatal(err)
	}
	env, err := json.Marshal(map[string]any{"xml": xb.String()})
	if err != nil {
		t.Fatal(err)
	}
	r2, b2 := post(t, ts, env)
	if r2.StatusCode != 200 {
		t.Fatalf("xml solve: %d: %s", r2.StatusCode, b2)
	}
	if got := r2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("XML request missed the cache (X-Cache = %q): XML and JSON must canonicalize identically", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("XML and JSON responses differ")
	}
}

// TestConcurrentMixedRequests fires 64 concurrent requests — distinct
// designs, duplicates, floorplans, garbage — and requires every one to
// complete while the pool never exceeds Workers concurrent solves.
func TestConcurrentMixedRequests(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	srv := serve.New(serve.Config{
		Workers:    workers,
		QueueDepth: 256, // roomy: this test exercises the bound, not 429s
		Obs:        obs.New(),
		Solver: func(ctx context.Context, d *design.Design, opts core.Options) (*core.Result, error) {
			n := cur.Add(1)
			defer cur.Add(-1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			return core.RunContext(ctx, d, opts)
		},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	bodies := make([][]byte, 0, 64)
	wantOK := make([]bool, 0, 64)
	for i := 0; i < 64; i++ {
		switch i % 4 {
		case 0: // distinct designs (name feeds the key)
			d := design.PaperExample()
			d.Name = fmt.Sprintf("paper-%d", i)
			bodies = append(bodies, solveBody(t, d, ""))
			wantOK = append(wantOK, true)
		case 1: // duplicates: coalesce or hit the cache
			bodies = append(bodies, solveBody(t, design.PaperExample(), ""))
			wantOK = append(wantOK, true)
		case 2: // floorplan variant
			d := design.VideoReceiver()
			d.Name = fmt.Sprintf("vr-%d", i)
			bodies = append(bodies, solveBody(t, d,
				`{"device": "FX70T", "budget": {"clb": 6800, "bram": 64, "dsp": 150}, "floorplan": true}`))
			wantOK = append(wantOK, true)
		default: // malformed
			bodies = append(bodies, []byte(`{"nope": true}`))
			wantOK = append(wantOK, false)
		}
	}
	var wg sync.WaitGroup
	errs := make([]string, len(bodies))
	for i := range bodies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(bodies[i]))
			if err != nil {
				errs[i] = fmt.Sprintf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			if wantOK[i] && resp.StatusCode != 200 {
				errs[i] = fmt.Sprintf("request %d: status %d: %s", i, resp.StatusCode, buf.String())
			}
			if !wantOK[i] && resp.StatusCode != 400 {
				errs[i] = fmt.Sprintf("request %d: bad body got status %d, want 400", i, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	for _, e := range errs {
		if e != "" {
			t.Error(e)
		}
	}
	if p := peak.Load(); p > workers {
		t.Errorf("pool ran %d concurrent solves, bound is %d", p, workers)
	}
	if p := srv.Obs().Snapshot().Levels["serve.inflight"].Max; p > workers {
		t.Errorf("inflight watermark %d exceeds worker bound %d", p, workers)
	}
}

// blockingSolver returns a solver stub that blocks until released (or
// its context dies), then delegates to the real flow.
func blockingSolver(release <-chan struct{}, entered chan<- struct{}, cancelled *atomic.Bool) serve.SolveFunc {
	return func(ctx context.Context, d *design.Design, opts core.Options) (*core.Result, error) {
		if entered != nil {
			entered <- struct{}{}
		}
		select {
		case <-release:
		case <-ctx.Done():
			if cancelled != nil {
				cancelled.Store(true)
			}
			return nil, ctx.Err()
		}
		return core.RunContext(context.Background(), d, opts)
	}
}

// TestBackpressureQueueFull saturates a Workers=1, QueueDepth=1 server
// with blocked solves and requires the overflow request to be refused
// with 429 and a Retry-After header — then accepted again once the
// queue drains.
func TestBackpressureQueueFull(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	srv := serve.New(serve.Config{
		Workers:    1,
		QueueDepth: 1,
		Obs:        obs.New(),
		Solver:     blockingSolver(release, entered, nil),
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	mk := func(i int) []byte {
		d := design.PaperExample()
		d.Name = fmt.Sprintf("bp-%d", i)
		return solveBody(t, d, "")
	}
	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		body := mk(i)
		go func() {
			resp, _ := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
			if resp != nil {
				resp.Body.Close()
				results <- resp.StatusCode
			}
		}()
	}
	// Wait until the first solve occupies the worker and the second
	// sits in the queue (admitted, waiting for a worker slot).
	<-entered
	waitCond(t, func() bool {
		return srv.Obs().Snapshot().Levels["serve.queue_depth"].Current == 1
	})

	resp, body := post(t, ts, mk(2))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	if n := srv.Obs().Snapshot().Counters["serve.rejected_queue_full"]; n != 1 {
		t.Errorf("rejected counter = %d, want 1", n)
	}

	close(release)
	for i := 0; i < 2; i++ {
		if code := <-results; code != 200 {
			t.Errorf("queued request finished with %d, want 200", code)
		}
	}
	// Capacity is free again: the previously refused design now solves.
	resp, body = post(t, ts, mk(2))
	if resp.StatusCode != 200 {
		t.Fatalf("post-drain request: status %d (%s), want 200", resp.StatusCode, body)
	}
}

// TestCoalescing fires 8 concurrent requests for one key while the
// solver is blocked: exactly one solve runs, everyone gets the same
// bytes, and 7 are counted as coalesced.
func TestCoalescing(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	var calls atomic.Int64
	o := obs.New()
	srv := serve.New(serve.Config{
		Workers: 4,
		Obs:     o,
		Solver: func(ctx context.Context, d *design.Design, opts core.Options) (*core.Result, error) {
			calls.Add(1)
			entered <- struct{}{}
			<-release
			return core.RunContext(context.Background(), d, opts)
		},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := solveBody(t, design.PaperExample(), "")
	type reply struct {
		code  int
		body  []byte
		cache string
	}
	replies := make(chan reply, 8)
	for i := 0; i < 8; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
			if err != nil {
				replies <- reply{code: -1}
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			replies <- reply{resp.StatusCode, buf.Bytes(), resp.Header.Get("X-Cache")}
		}()
	}
	<-entered
	// All 8 are in flight on one key before the solve finishes.
	waitCond(t, func() bool { return o.Snapshot().Counters["serve.coalesced"] == 7 })
	close(release)

	var first []byte
	for i := 0; i < 8; i++ {
		r := <-replies
		if r.code != 200 {
			t.Fatalf("request finished with %d", r.code)
		}
		if first == nil {
			first = r.body
		} else if !bytes.Equal(first, r.body) {
			t.Fatal("coalesced responses differ")
		}
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("solver ran %d times for one key, want 1", n)
	}
}

// TestDeadlineCancelsSearch gives a request a 30 ms deadline against a
// solver that never returns: the client gets 504 and — because it was
// the only waiter — the solve context is cancelled, stopping the search.
func TestDeadlineCancelsSearch(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	var cancelled atomic.Bool
	srv := serve.New(serve.Config{
		Workers: 1,
		Solver:  blockingSolver(release, nil, &cancelled),
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := post(t, ts, solveBody(t, design.PaperExample(), `{"timeoutMs": 30}`))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, body)
	}
	waitCond(t, func() bool { return cancelled.Load() })
}

// TestServerDefaultTimeout applies Config.DefaultTimeout when the
// request does not set one.
func TestServerDefaultTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	srv := serve.New(serve.Config{
		Workers:        1,
		DefaultTimeout: 30 * time.Millisecond,
		Solver:         blockingSolver(release, nil, nil),
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, _ := post(t, ts, solveBody(t, design.PaperExample(), ""))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
}

// TestGracefulShutdownDrains starts a solve, begins a drain while it is
// in flight, and requires the solve to complete (200) while new
// requests are refused with 503.
func TestGracefulShutdownDrains(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	srv := serve.New(serve.Config{
		Workers: 1,
		Solver:  blockingSolver(release, entered, nil),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	inflight := make(chan reply1, 1)
	body := solveBody(t, design.PaperExample(), "")
	go func() {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			inflight <- reply1{code: -1}
			return
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		inflight <- reply1{resp.StatusCode, buf.Bytes()}
	}()
	<-entered // the solve is mid-"search"

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- srv.Shutdown(ctx)
	}()

	// New work is refused while draining.
	waitCond(t, func() bool {
		resp, _ := post(t, ts, body)
		return resp.StatusCode == http.StatusServiceUnavailable
	})

	// The in-flight solve still completes.
	close(release)
	if r := <-inflight; r.code != 200 {
		t.Fatalf("in-flight request finished with %d during drain, want 200", r.code)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

type reply1 struct {
	code int
	body []byte
}

// TestInfeasibleIs422 maps a design that cannot fit its budget to an
// unprocessable-entity error, not a 500.
func TestInfeasibleIs422(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, body := post(t, ts, solveBody(t, design.PaperExample(), `{"budget": {"clb": 1, "bram": 0, "dsp": 0}}`))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d (%s), want 422", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("error")) {
		t.Errorf("error body missing message: %s", body)
	}
}

// TestAuxiliaryEndpoints exercises /healthz, /metrics and /debug/vars.
func TestAuxiliaryEndpoints(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if _, b := post(t, ts, solveBody(t, design.PaperExample(), "")); len(b) == 0 {
		t.Fatal("solve failed")
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Status string `json:"status"`
		Cache  struct {
			Entries int   `json:"entries"`
			Misses  int64 `json:"misses"`
		} `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" || h.Cache.Entries != 1 || h.Cache.Misses != 1 {
		t.Errorf("healthz = %+v, want ok with 1 entry and 1 miss", h)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mb bytes.Buffer
	mb.ReadFrom(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"serve.requests 1", "serve.solves 1", "serve.cache_misses 1"} {
		if !strings.Contains(mb.String(), want) {
			t.Errorf("/metrics missing %q:\n%s", want, mb.String())
		}
	}

	resp, err = http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if vars["serve.solves"] != 1 || vars["serve.inflight_max"] != 1 {
		t.Errorf("/debug/vars wrong: %v", vars)
	}

	resp, err = http.Get(ts.URL + "/v1/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/solve = %d, want 405", resp.StatusCode)
	}
}

// waitCond polls until cond holds or a deadline passes.
func waitCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}

// TestSolveBodyTooLarge sends a body over MaxBodyBytes and requires a
// 413 — the only read failure that maps to that status; other read
// errors (client abort, network) are reported as 400.
func TestSolveBodyTooLarge(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 1, MaxBodyBytes: 64})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, b := post(t, ts, solveBody(t, design.PaperExample(), ""))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d (%s), want 413", resp.StatusCode, b)
	}
}
