package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"prpart/internal/design"
	"prpart/internal/resource"
	"prpart/internal/spec"
)

// Request is the wire schema of POST /v1/solve. Exactly one of Design
// (the JSON codec of internal/design) or XML (the tool flow's XML spec,
// internal/spec) must be present. Options are all optional.
type Request struct {
	// Design is a design in the JSON schema.
	Design json.RawMessage `json:"design,omitempty"`
	// XML is a design in the XML spec format. Constraints embedded in
	// the XML (<constraints device=... budget=...>) seed the options and
	// are overridden field-by-field by Options.
	XML string `json:"xml,omitempty"`
	// Options tune the solve.
	Options RequestOptions `json:"options,omitempty"`
}

// RequestOptions is the options block of a solve request.
type RequestOptions struct {
	// Device pins the target FPGA by name.
	Device string `json:"device,omitempty"`
	// Budget caps resources as {"clb":..,"bram":..,"dsp":..}.
	Budget *BudgetJSON `json:"budget,omitempty"`
	// NoStatic / Greedy / NoQuantize select the paper's ablations.
	NoStatic   bool `json:"noStatic,omitempty"`
	Greedy     bool `json:"greedy,omitempty"`
	NoQuantize bool `json:"noQuantize,omitempty"`
	// MaxCandidateSets / MaxFirstMoves bound the search (0 = default).
	MaxCandidateSets int `json:"maxCandidateSets,omitempty"`
	MaxFirstMoves    int `json:"maxFirstMoves,omitempty"`
	// Pin lists "Module.Mode" names to force into static logic.
	Pin []string `json:"pin,omitempty"`
	// CoverDescending reverses the covering order (ablation A5).
	CoverDescending bool `json:"coverDescending,omitempty"`
	// TransitionWeights skews the objective (square matrix over
	// configurations, see partition.Options.TransitionWeights).
	TransitionWeights [][]float64 `json:"transitionWeights,omitempty"`
	// Floorplan adds region placements to the result.
	Floorplan bool `json:"floorplan,omitempty"`
	// Multilevel routes the solve through the coarsen–partition–refine
	// engine (the scale path for very large designs); the seed drives
	// its deterministic coarsening tie-breaks and the threshold sets
	// the delegation cutoff in modes (0 = engine default).
	Multilevel          bool  `json:"multilevel,omitempty"`
	MultilevelSeed      int64 `json:"multilevelSeed,omitempty"`
	MultilevelThreshold int   `json:"multilevelThreshold,omitempty"`
	// Workers pins this request's solve worker count (candidate-set
	// search and the multilevel per-level refine scan), overriding the
	// daemon's -solve-workers default. Results are identical at any
	// count; only wall-clock changes. Bounded to [0, 64]; 0 keeps the
	// daemon default.
	Workers int `json:"workers,omitempty"`
	// TimeoutMs caps the solve wall time; 0 uses the server default.
	// The request is cancelled (HTTP 504) when the deadline passes.
	TimeoutMs int `json:"timeoutMs,omitempty"`
	// Bulk marks the request as throughput work (batch sweeps, warmup).
	// Bulk solves are the first to be shed when a latency-sensitive
	// request would otherwise be refused for lack of capacity; a shed
	// bulk request gets 503 with Retry-After and should simply retry.
	Bulk bool `json:"bulk,omitempty"`
}

// ReqMeta carries the per-request serving directives that are not part
// of the canonical solve spec (and so do not contribute to the cache
// key): the wall-time budget and the bulk/latency-sensitive class.
type ReqMeta struct {
	Timeout time.Duration
	Bulk    bool
}

// BudgetJSON is a resource triple on the wire.
type BudgetJSON struct {
	CLB  int `json:"clb"`
	BRAM int `json:"bram"`
	DSP  int `json:"dsp"`
}

// maxWeightDim bounds the transition-weight matrix a request may carry,
// protecting the decoder from quadratic allocation on hostile input.
const maxWeightDim = 1024

// maxRequestWorkers bounds the per-request worker override: a client
// cannot demand unbounded goroutine fan-out from the daemon.
const maxRequestWorkers = 64

// DecodeRequest parses and validates a solve request body into its
// canonical SolveSpec plus the serving directives (timeout, bulk
// class). The decoder is strict: unknown fields, missing designs, both
// codecs at once, bad pin names and malformed weight matrices are all
// errors, so a request that decodes is guaranteed to reach the search
// well-formed.
func DecodeRequest(body []byte) (*SolveSpec, ReqMeta, error) {
	var meta ReqMeta
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		return nil, meta, fmt.Errorf("serve: decoding request: %w", err)
	}
	// A second JSON value after the request object is a malformed body,
	// not trailing noise to ignore.
	if dec.More() {
		return nil, meta, fmt.Errorf("serve: trailing data after request object")
	}
	sp := &SolveSpec{}
	var con spec.Constraints
	switch {
	case len(req.Design) > 0 && req.XML != "":
		return nil, meta, fmt.Errorf("serve: request carries both a JSON design and an XML design")
	case len(req.Design) > 0:
		d, err := design.DecodeJSON(bytes.NewReader(req.Design))
		if err != nil {
			return nil, meta, err
		}
		sp.Design = d
	case req.XML != "":
		d, c, err := spec.ParseDesign(strings.NewReader(req.XML))
		if err != nil {
			return nil, meta, err
		}
		sp.Design, con = d, c
	default:
		return nil, meta, fmt.Errorf("serve: request carries no design (want \"design\" or \"xml\")")
	}

	o := req.Options
	sp.Device = con.Device
	if o.Device != "" {
		sp.Device = o.Device
	}
	sp.Budget = con.Budget
	if o.Budget != nil {
		if o.Budget.CLB < 0 || o.Budget.BRAM < 0 || o.Budget.DSP < 0 {
			return nil, meta, fmt.Errorf("serve: negative budget")
		}
		sp.Budget = resource.New(o.Budget.CLB, o.Budget.BRAM, o.Budget.DSP)
	}
	sp.NoStatic = o.NoStatic
	sp.Greedy = o.Greedy
	sp.NoQuantize = o.NoQuantize
	if o.MaxCandidateSets < 0 || o.MaxFirstMoves < 0 {
		return nil, meta, fmt.Errorf("serve: negative search bounds")
	}
	sp.MaxCandidateSets = o.MaxCandidateSets
	sp.MaxFirstMoves = o.MaxFirstMoves
	sp.CoverDescending = o.CoverDescending
	sp.Floorplan = o.Floorplan
	for _, name := range o.Pin {
		r, err := sp.Design.FindMode(strings.TrimSpace(name))
		if err != nil {
			return nil, meta, fmt.Errorf("serve: pin: %w", err)
		}
		sp.Pinned = append(sp.Pinned, r)
	}
	if sp.NoStatic && len(sp.Pinned) > 0 {
		return nil, meta, fmt.Errorf("serve: pin conflicts with noStatic")
	}
	if w := o.TransitionWeights; w != nil {
		n := len(sp.Design.Configurations)
		if n > maxWeightDim || len(w) != n {
			return nil, meta, fmt.Errorf("serve: transition weights have %d rows for %d configurations", len(w), n)
		}
		for i, row := range w {
			if len(row) != n {
				return nil, meta, fmt.Errorf("serve: transition weight row %d has %d entries, want %d", i, len(row), n)
			}
			for j, v := range row {
				if v < 0 || v != v || v > 1e18 {
					return nil, meta, fmt.Errorf("serve: bad transition weight w(%d,%d) = %g", i, j, v)
				}
			}
		}
		sp.Weights = w
	}
	if o.MultilevelThreshold < 0 {
		return nil, meta, fmt.Errorf("serve: negative multilevelThreshold")
	}
	if !o.Multilevel && (o.MultilevelSeed != 0 || o.MultilevelThreshold != 0) {
		return nil, meta, fmt.Errorf("serve: multilevelSeed/multilevelThreshold require multilevel")
	}
	if o.Multilevel {
		// The multilevel engine documents exactly these restrictions
		// (multilevel.ErrWeights / ErrPinned); reject them at decode
		// time so the client gets a 400, not a failed solve.
		if sp.Weights != nil {
			return nil, meta, fmt.Errorf("serve: multilevel does not support transitionWeights")
		}
		if len(sp.Pinned) > 0 {
			return nil, meta, fmt.Errorf("serve: multilevel does not support pin")
		}
		sp.Multilevel = true
		sp.MultilevelSeed = o.MultilevelSeed
		sp.MultilevelThreshold = o.MultilevelThreshold
	}
	if o.Workers < 0 || o.Workers > maxRequestWorkers {
		return nil, meta, fmt.Errorf("serve: workers must be in [0, %d]", maxRequestWorkers)
	}
	sp.Workers = o.Workers
	if o.TimeoutMs < 0 {
		return nil, meta, fmt.Errorf("serve: negative timeoutMs")
	}
	meta.Timeout = time.Duration(o.TimeoutMs) * time.Millisecond
	meta.Bulk = o.Bulk
	return sp, meta, nil
}
