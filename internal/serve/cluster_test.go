package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"prpart/internal/cluster"
	"prpart/internal/design"
	"prpart/internal/obs"
	"prpart/internal/serve"
)

// testPeerSecret is the shared cluster secret both test nodes (and
// every signed raw frame the tests post) agree on.
const testPeerSecret = "serve-cluster-secret"

// lateHandler lets a test start an httptest.Server (to learn its URL)
// before the serve.Server that needs that URL exists.
type lateHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (l *lateHandler) set(h http.Handler) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.h = h
}

func (l *lateHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	l.mu.Lock()
	h := l.h
	l.mu.Unlock()
	if h == nil {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// clusterPair boots two cluster-enabled servers, A and B. B's ring
// contains only itself (it answers peer RPCs but never fetches or
// replicates), so the peer traffic between them is exactly what A
// initiates — which lets the test pin A's X-Cache: peer path without
// replication warming A's cache first.
func clusterPair(t *testing.T) (tsA, tsB *httptest.Server, oA, oB *obs.Obs) {
	t.Helper()
	lhA, lhB := &lateHandler{}, &lateHandler{}
	tsA, tsB = httptest.NewServer(lhA), httptest.NewServer(lhB)
	t.Cleanup(tsA.Close)
	t.Cleanup(tsB.Close)

	oB = obs.New()
	clB, err := cluster.New(cluster.Config{Self: tsB.URL, Peers: []string{tsB.URL}, Secret: testPeerSecret, Seed: 11, Obs: oB})
	if err != nil {
		t.Fatal(err)
	}
	srvB := serve.New(serve.Config{Workers: 2, Obs: oB, Cluster: clB})
	t.Cleanup(srvB.Close)
	lhB.set(srvB.Handler())

	oA = obs.New()
	clA, err := cluster.New(cluster.Config{
		Self: tsA.URL, Peers: []string{tsA.URL, tsB.URL}, Secret: testPeerSecret, Seed: 11, Replicas: 2, Obs: oA,
	})
	if err != nil {
		t.Fatal(err)
	}
	srvA := serve.New(serve.Config{Workers: 2, Obs: oA, Cluster: clA})
	t.Cleanup(srvA.Close)
	lhA.set(srvA.Handler())
	return tsA, tsB, oA, oB
}

// TestClusterPeerFill solves on B, then requests the same key on A: A
// must serve it from the peer tier (X-Cache: peer), byte-identical,
// without running its own solve, and the fill must warm A's local
// tiers for the next request.
func TestClusterPeerFill(t *testing.T) {
	tsA, tsB, oA, oB := clusterPair(t)
	body := solveBody(t, design.VideoReceiver(), `{"budget": {"clb": 6800, "bram": 64, "dsp": 150}}`)

	rB, bB := post(t, tsB, body)
	if rB.StatusCode != 200 || rB.Header.Get("X-Cache") != "miss" {
		t.Fatalf("solve on B: status %d, X-Cache %q", rB.StatusCode, rB.Header.Get("X-Cache"))
	}

	rA, bA := post(t, tsA, body)
	if rA.StatusCode != 200 {
		t.Fatalf("solve on A: status %d: %s", rA.StatusCode, bA)
	}
	if got := rA.Header.Get("X-Cache"); got != "peer" {
		t.Fatalf("X-Cache on A = %q, want peer", got)
	}
	if !bytes.Equal(bA, bB) {
		t.Fatal("peer-filled body differs from the origin solve")
	}
	if rA.Header.Get("X-Solve-Key") != rB.Header.Get("X-Solve-Key") {
		t.Fatal("solve keys differ across nodes")
	}

	// The fill warmed A's cache: the next request is a local hit.
	rA2, bA2 := post(t, tsA, body)
	if got := rA2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second request on A: X-Cache %q, want hit", got)
	}
	if !bytes.Equal(bA2, bB) {
		t.Fatal("cached peer fill differs from the origin solve")
	}

	cA := oA.Snapshot().Counters
	if cA["cluster.peer_hits"] != 1 || cA["serve.peer_serves"] != 1 || cA["jobs.peer_fills"] != 1 {
		t.Fatalf("A counters after peer fill: hits=%d serves=%d fills=%d",
			cA["cluster.peer_hits"], cA["serve.peer_serves"], cA["jobs.peer_fills"])
	}
	if cA["serve.solves"] != 0 {
		t.Fatalf("A ran %d solves; the peer tier should have answered", cA["serve.solves"])
	}
	cB := oB.Snapshot().Counters
	if cB["cluster.fetch_served"] != 1 {
		t.Fatalf("B served %d fetches, want 1", cB["cluster.fetch_served"])
	}
}

// postPeer posts one raw frame to a peer endpoint. A non-empty secret
// signs the request the way a real ring member would; an empty secret
// leaves the auth header off entirely.
func postPeer(t *testing.T, base, path string, raw []byte, secret string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+path, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if secret != "" {
		req.Header.Set(cluster.AuthHeader, cluster.Sign(secret, raw))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// TestClusterPushEndpointGuards pins the peer handlers' trust boundary
// for authenticated senders: malformed frames and keys outside the
// solve namespace are rejected with 400 and counted as peer_bad_body,
// and nothing is cached.
func TestClusterPushEndpointGuards(t *testing.T) {
	_, tsB, _, oB := clusterPair(t)

	postRaw := func(path string, raw []byte) int {
		code, _ := postPeer(t, tsB.URL, path, raw, testPeerSecret)
		return code
	}

	if code := postRaw(cluster.PushPath, []byte("not a frame")); code != http.StatusBadRequest {
		t.Fatalf("garbage push = %d, want 400", code)
	}
	frame, err := cluster.EncodePeerBody(cluster.Body{Found: true, Key: "job:evil", Data: []byte(`{}`)})
	if err != nil {
		t.Fatal(err)
	}
	if code := postRaw(cluster.PushPath, frame); code != http.StatusBadRequest {
		t.Fatalf("job-namespace push = %d, want 400", code)
	}
	miss, err := cluster.EncodePeerBody(cluster.Body{Key: "sha256:" + fmt.Sprintf("%064x", 1)})
	if err != nil {
		t.Fatal(err)
	}
	if code := postRaw(cluster.PushPath, miss); code != http.StatusBadRequest {
		t.Fatalf("bodyless push = %d, want 400", code)
	}
	if code := postRaw(cluster.FetchPath, []byte("junk fetch")); code != http.StatusBadRequest {
		t.Fatalf("garbage fetch = %d, want 400", code)
	}
	// The fetch side enforces the same namespace guard as push: job
	// records never leave the node over the peer wire.
	jobFetch, err := cluster.EncodePeerFetch("job:some-job-id")
	if err != nil {
		t.Fatal(err)
	}
	if code := postRaw(cluster.FetchPath, jobFetch); code != http.StatusBadRequest {
		t.Fatalf("job-namespace fetch = %d, want 400", code)
	}

	c := oB.Snapshot().Counters
	if c["cluster.peer_bad_body"] != 5 {
		t.Fatalf("peer_bad_body = %d, want 5", c["cluster.peer_bad_body"])
	}
	if c["cluster.pushes_received"] != 0 {
		t.Fatalf("pushes_received = %d after only bad pushes", c["cluster.pushes_received"])
	}
}

// TestClusterPeerAuthRequired pins the peer endpoints' authentication
// boundary: a structurally valid, digest-correct push for a real solve
// key is still refused with 403 when it is unsigned or signed with the
// wrong secret — counted as peer_denied, never decoded, never cached.
// Without this check anything that can reach the public port could
// poison arbitrary solve keys with attacker-chosen bytes.
func TestClusterPeerAuthRequired(t *testing.T) {
	_, tsB, _, oB := clusterPair(t)

	key := "sha256:" + fmt.Sprintf("%064x", 2)
	push, err := cluster.EncodePeerBody(cluster.Body{Found: true, Verdict: 1, Key: key, Data: []byte(`{"poisoned":true}`)})
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := postPeer(t, tsB.URL, cluster.PushPath, push, ""); code != http.StatusForbidden {
		t.Fatalf("unsigned push = %d, want 403", code)
	}
	if code, _ := postPeer(t, tsB.URL, cluster.PushPath, push, "wrong-secret"); code != http.StatusForbidden {
		t.Fatalf("wrong-secret push = %d, want 403", code)
	}
	fetch, err := cluster.EncodePeerFetch(key)
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := postPeer(t, tsB.URL, cluster.FetchPath, fetch, ""); code != http.StatusForbidden {
		t.Fatalf("unsigned fetch = %d, want 403", code)
	}

	c := oB.Snapshot().Counters
	if c["cluster.peer_denied"] != 3 {
		t.Fatalf("peer_denied = %d, want 3", c["cluster.peer_denied"])
	}
	if c["cluster.pushes_received"] != 0 || c["cluster.peer_bad_body"] != 0 {
		t.Fatalf("refused requests leaked into other counters: %v", c)
	}

	// Nothing was imported: an authenticated fetch for the poisoned key
	// comes back not-found.
	code, raw := postPeer(t, tsB.URL, cluster.FetchPath, fetch, testPeerSecret)
	if code != http.StatusOK {
		t.Fatalf("authenticated fetch = %d, want 200", code)
	}
	pb, err := cluster.DecodePeerBody(raw)
	if err != nil {
		t.Fatal(err)
	}
	if pb.Found {
		t.Fatal("refused push was cached anyway")
	}
}

// TestClusterHealthzShape pins the exact JSON of the /healthz cluster
// block. With no peer errors the block is fully deterministic, so the
// test compares raw bytes: a field rename or type change — which would
// break dashboards and the e2e harness — fails loudly here.
func TestClusterHealthzShape(t *testing.T) {
	tsA, tsB, _, _ := clusterPair(t)

	resp, err := http.Get(tsA.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Cluster json.RawMessage `json:"cluster"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf(
		`{"self":%q,"ringSize":2,"replicas":2,"peers":[{"url":%q,"reachable":true,"lastErrorAgeSec":-1}]}`,
		tsA.URL, tsB.URL)
	var gotC, wantC bytes.Buffer
	if err := json.Compact(&gotC, health.Cluster); err != nil {
		t.Fatal(err)
	}
	if err := json.Compact(&wantC, []byte(want)); err != nil {
		t.Fatal(err)
	}
	if gotC.String() != wantC.String() {
		t.Fatalf("cluster health shape changed:\n got: %s\nwant: %s", gotC.String(), wantC.String())
	}

	// A non-cluster server must not grow the block.
	plain := serve.New(serve.Config{Workers: 1})
	defer plain.Close()
	ts := httptest.NewServer(plain.Handler())
	defer ts.Close()
	r2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(r2.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["cluster"]; ok {
		t.Fatal("non-cluster healthz carries a cluster block")
	}
}
