package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"prpart/internal/jobs"
)

// BatchRequest is the wire schema of POST /v1/solve/batch: N ordinary
// solve request objects in one body. Every member is decoded, keyed and
// served exactly like a POST /v1/solve — same canonicalization, same
// cache key, same cache/store/coalescing tiers — but on the bulk
// scheduler tier, so a batch can never crowd out interactive traffic.
type BatchRequest struct {
	Requests []json.RawMessage `json:"requests"`
}

// BatchItem is one member's outcome, in input order.
type BatchItem struct {
	// Key is the member's content-addressed solve key (empty when the
	// member failed to decode).
	Key string `json:"key,omitempty"`
	// Status is the member's HTTP-equivalent status: what the same body
	// would have gotten from POST /v1/solve.
	Status int `json:"status"`
	// Cache reports how the member was served: hit, store, miss,
	// coalesced — or dup for a member whose key already appeared
	// earlier in the same batch.
	Cache string `json:"cache,omitempty"`
	// Error carries the failure message for non-200 members.
	Error string `json:"error,omitempty"`
	// Result is the solve body for 200 members.
	Result json.RawMessage `json:"result,omitempty"`
}

// BatchResponse is the wire schema of the batch reply.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

// handleBatch is POST /v1/solve/batch. Members with identical keys are
// deduplicated inside the batch (one solve, shared result, later copies
// marked "dup"); distinct members fan out concurrently through the bulk
// tier with EnqueueWait providing flow control instead of refusals.
// Per-member failures land in that member's result entry; the batch
// itself only fails for transport-level problems (bad envelope, too
// many members, bulk tier already saturated on arrival).
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("serve: POST only"))
		return
	}
	s.cBatches.Inc()
	if s.isDraining() {
		s.retryAfter(w, time.Second)
		writeError(w, http.StatusServiceUnavailable, errors.New("serve: shutting down"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		status := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, fmt.Errorf("serve: reading batch body: %w", err))
		return
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var batch BatchRequest
	if err := dec.Decode(&batch); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: decoding batch: %w", err))
		return
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, errors.New("serve: trailing data after batch object"))
		return
	}
	if len(batch.Requests) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("serve: empty batch"))
		return
	}
	if len(batch.Requests) > s.cfg.MaxBatchItems {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("serve: batch carries %d requests, limit %d", len(batch.Requests), s.cfg.MaxBatchItems))
		return
	}
	// Arrival backpressure: a bulk tier already at its bound refuses the
	// whole batch up front — cheaper for the client to back off now than
	// to trickle members through a saturated queue.
	if s.sched.Full(jobs.Bulk) {
		s.cRejected.Inc()
		s.retryAfter(w, s.sched.EstimateWait(jobs.Bulk))
		writeError(w, http.StatusServiceUnavailable, errBulkQueueFull)
		return
	}
	urlCheck := r.URL.Query().Get("check") == "1"

	type member struct {
		sp      *SolveSpec
		timeout time.Duration
	}
	items := make([]BatchItem, len(batch.Requests))
	// leaders maps each distinct key to the first member index carrying
	// it; later members with the same key are dups and copy its outcome.
	leaders := map[string]int{}
	var run []int // indices that actually execute
	members := make([]member, len(batch.Requests))
	for i, raw := range batch.Requests {
		sp, meta, err := DecodeRequest(raw)
		if err != nil {
			items[i] = BatchItem{Status: http.StatusBadRequest, Error: err.Error()}
			continue
		}
		// The member's key is computed by the same canonicalization as a
		// single solve: request options (check via the server/URL flag,
		// multilevel and friends via the spec) hash in identically, so a
		// batch member and a lone POST /v1/solve for the same input share
		// cache entries byte-for-byte.
		key, err := sp.Key()
		if err != nil {
			items[i] = BatchItem{Status: http.StatusBadRequest, Error: err.Error()}
			continue
		}
		items[i] = BatchItem{Key: key}
		if first, dup := leaders[key]; dup {
			s.cBatchDups.Inc()
			items[i].Cache = "dup"
			items[i].Status = -first - 1 // patched to the leader's outcome below
			continue
		}
		leaders[key] = i
		timeout := meta.Timeout
		if timeout == 0 {
			timeout = s.cfg.DefaultTimeout
		}
		members[i] = member{sp: sp, timeout: timeout}
		run = append(run, i)
	}

	var wg sync.WaitGroup
	for _, i := range run {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m := members[i]
			wctx := r.Context()
			if m.timeout > 0 {
				ctx, cancel := context.WithTimeout(wctx, m.timeout)
				defer cancel()
				wctx = ctx
			}
			body, cache, status, err := s.executeMember(wctx, items[i].Key, m.sp, urlCheck)
			items[i].Status = status
			items[i].Cache = cache
			if err != nil {
				items[i].Error = err.Error()
			} else {
				items[i].Result = body
			}
		}(i)
	}
	wg.Wait()

	// Patch duplicate members with their leader's outcome.
	for i := range items {
		if items[i].Cache != "dup" {
			continue
		}
		first := -items[i].Status - 1
		items[i].Status = items[first].Status
		items[i].Error = items[first].Error
		items[i].Result = items[first].Result
	}

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	json.NewEncoder(w).Encode(BatchResponse{Results: items})
}

// executeMember serves one distinct batch member through the same tiers
// as a synchronous solve — cache, store, flight coalescing — with the
// solve itself queued on the bulk tier. Unlike handleSolve it uses
// EnqueueWait: the member blocks (bounded by its own deadline) while
// the bulk tier is full instead of being refused, which paces a large
// batch through a small queue. It runs in a handler goroutine, never on
// a scheduler worker, so waiting on the flight cannot deadlock the pool.
func (s *Server) executeMember(wctx context.Context, key string, sp *SolveSpec, urlCheck bool) (body []byte, cache string, status int, err error) {
	docheck := s.cfg.Check || urlCheck
	if !urlCheck {
		if body, tier, ok := s.lookup(wctx, key); ok {
			return body, tier, http.StatusOK, nil
		}
	}
	fkey := flightKey(key, docheck)
	call, leader := s.flight.join(s.baseCtx, fkey)
	if leader {
		if _, eerr := s.sched.EnqueueWait(wctx, jobs.Bulk, func(ctx context.Context) {
			s.runLeader(ctx, fkey, key, call, sp, docheck)
		}); eerr != nil {
			st, ferr := tierFullError(jobs.Bulk)
			if !errors.Is(eerr, jobs.ErrTierFull) {
				st, ferr = http.StatusServiceUnavailable, eerr
			}
			s.cRejected.Inc()
			s.flight.finish(fkey, call, nil, st, ferr)
			return nil, "", st, ferr
		}
	} else {
		s.cCoalesced.Inc()
	}
	select {
	case <-call.done:
	case <-wctx.Done():
		select {
		case <-call.done:
		default:
			s.flight.leave(call)
			if errors.Is(wctx.Err(), context.DeadlineExceeded) {
				return nil, "", http.StatusGatewayTimeout, errors.New("serve: batch member deadline exceeded")
			}
			return nil, "", http.StatusServiceUnavailable, wctx.Err()
		}
	}
	if call.err != nil {
		return nil, "", call.status, call.err
	}
	cache = "miss"
	if !leader {
		cache = "coalesced"
	}
	return call.body, cache, http.StatusOK, nil
}
