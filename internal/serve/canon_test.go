package serve_test

import (
	"bytes"
	"io"
	"testing"

	"prpart/internal/design"
	"prpart/internal/resource"
	"prpart/internal/serve"
	"prpart/internal/spec"
)

// writeXML renders a design in the XML codec, the second wire format the
// server accepts. Shared by the canonicalization and server tests.
func writeXML(w io.Writer, d *design.Design) error {
	return spec.WriteDesign(w, d, spec.Constraints{})
}

func TestKeyDeterministic(t *testing.T) {
	sp := &serve.SolveSpec{Design: design.VideoReceiver(), Device: "FX70T"}
	k1, err := sp.Key()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := sp.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("same spec hashed differently: %s vs %s", k1, k2)
	}
	if len(k1) != len("sha256:")+64 {
		t.Errorf("key %q is not sha256:<hex>", k1)
	}
}

func TestKeyStableAcrossCodecs(t *testing.T) {
	orig := design.VideoReceiver()

	var jb bytes.Buffer
	if err := design.EncodeJSON(&jb, orig); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := design.DecodeJSON(&jb)
	if err != nil {
		t.Fatal(err)
	}

	var xb bytes.Buffer
	if err := writeXML(&xb, orig); err != nil {
		t.Fatal(err)
	}
	fromXML, _, err := spec.ParseDesign(&xb)
	if err != nil {
		t.Fatal(err)
	}

	kj, err := (&serve.SolveSpec{Design: fromJSON}).Key()
	if err != nil {
		t.Fatal(err)
	}
	kx, err := (&serve.SolveSpec{Design: fromXML}).Key()
	if err != nil {
		t.Fatal(err)
	}
	if kj != kx {
		t.Errorf("codec round-trips hash differently:\n json %s\n xml  %s", kj, kx)
	}
}

func TestKeyOptionSensitivity(t *testing.T) {
	base := func() *serve.SolveSpec {
		return &serve.SolveSpec{Design: design.PaperExample()}
	}
	baseKey, err := base().Key()
	if err != nil {
		t.Fatal(err)
	}
	variants := map[string]func(*serve.SolveSpec){
		"device":           func(sp *serve.SolveSpec) { sp.Device = "FX70T" },
		"budget":           func(sp *serve.SolveSpec) { sp.Budget = resource.New(100, 2, 3) },
		"noStatic":         func(sp *serve.SolveSpec) { sp.NoStatic = true },
		"greedy":           func(sp *serve.SolveSpec) { sp.Greedy = true },
		"noQuantize":       func(sp *serve.SolveSpec) { sp.NoQuantize = true },
		"maxCandidateSets": func(sp *serve.SolveSpec) { sp.MaxCandidateSets = 7 },
		"maxFirstMoves":    func(sp *serve.SolveSpec) { sp.MaxFirstMoves = 3 },
		"pinned":           func(sp *serve.SolveSpec) { sp.Pinned = []design.ModeRef{{Module: 0, Mode: 0}} },
		"coverDescending":  func(sp *serve.SolveSpec) { sp.CoverDescending = true },
		"weights":          func(sp *serve.SolveSpec) { sp.Weights = [][]float64{{0, 1}, {1, 0}} },
		"floorplan":        func(sp *serve.SolveSpec) { sp.Floorplan = true },
		"design":           func(sp *serve.SolveSpec) { sp.Design = design.VideoReceiver() },
	}
	seen := map[string]string{baseKey: "base"}
	for name, mutate := range variants {
		sp := base()
		mutate(sp)
		k, err := sp.Key()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("option %q does not change the key (collides with %q)", name, prev)
		}
		seen[k] = name
	}
}

func TestKeyPinOrderInsensitive(t *testing.T) {
	d := design.VideoReceiver()
	a := &serve.SolveSpec{Design: d, Pinned: []design.ModeRef{
		{Module: 1, Mode: 0}, {Module: 0, Mode: 1}, {Module: 0, Mode: 0},
	}}
	b := &serve.SolveSpec{Design: d, Pinned: []design.ModeRef{
		{Module: 0, Mode: 0}, {Module: 0, Mode: 1}, {Module: 1, Mode: 0},
	}}
	ka, err := a.Key()
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.Key()
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Errorf("pin order changes the key:\n %s\n %s", ka, kb)
	}
}

func TestKeyNoDesign(t *testing.T) {
	if _, err := (&serve.SolveSpec{}).Key(); err == nil {
		t.Error("nil design accepted")
	}
}
