package serve

import (
	"encoding/json"
	"io"

	"prpart/internal/core"
	"prpart/internal/floorplan"
)

// ResultJSON is the machine-readable solve result shared by the prpart
// CLI (-json) and the daemon's /v1/solve response: both render it
// through WriteResult, so the two outputs are byte-identical for the
// same input. Floorplan is only present when the request asked for it.
type ResultJSON struct {
	Device    string          `json:"device"`
	Total     int             `json:"totalFrames"`
	Worst     int             `json:"worstFrames"`
	Regions   []RegionJSON    `json:"regions"`
	Static    []string        `json:"static,omitempty"`
	Baselines map[string]int  `json:"baselineTotals"`
	Floorplan []PlacementJSON `json:"floorplan,omitempty"`
}

// RegionJSON is one reconfigurable region of the proposed scheme.
type RegionJSON struct {
	Frames int      `json:"frames"`
	Parts  []string `json:"parts"`
}

// PlacementJSON is one placed region rectangle (tile coordinates,
// inclusive corners) of the optional floorplan.
type PlacementJSON struct {
	Region int `json:"region"`
	Row0   int `json:"row0"`
	Col0   int `json:"col0"`
	Row1   int `json:"row1"`
	Col1   int `json:"col1"`
}

// BuildResult assembles the wire result from a flow result and an
// optional floorplan.
func BuildResult(res *core.Result, plan *floorplan.Plan) ResultJSON {
	jo := ResultJSON{
		Device:    res.Device.Name,
		Total:     res.Summary.Total,
		Worst:     res.Summary.Worst,
		Baselines: map[string]int{},
	}
	for name, sum := range res.Baselines {
		jo.Baselines[name] = sum.Total
	}
	for i := range res.Scheme.Regions {
		reg := &res.Scheme.Regions[i]
		jr := RegionJSON{Frames: reg.Frames()}
		for _, p := range reg.Parts {
			jr.Parts = append(jr.Parts, p.Label(res.Design))
		}
		jo.Regions = append(jo.Regions, jr)
	}
	for _, p := range res.Scheme.Static {
		jo.Static = append(jo.Static, p.Label(res.Design))
	}
	if plan != nil {
		for _, pl := range plan.Placements {
			jo.Floorplan = append(jo.Floorplan, PlacementJSON{
				Region: pl.Region,
				Row0:   pl.Rect.Row0, Col0: pl.Rect.Col0,
				Row1: pl.Rect.Row1, Col1: pl.Rect.Col1,
			})
		}
	}
	return jo
}

// WriteResult renders the result as indented JSON — the exact bytes
// `prpart -json` prints and the daemon serves.
func WriteResult(w io.Writer, jo ResultJSON) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jo)
}
