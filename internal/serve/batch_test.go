package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"

	"prpart/internal/core"
	"prpart/internal/design"
	"prpart/internal/obs"
	"prpart/internal/serve"
)

// batchBody wraps member request bodies into a /v1/solve/batch body.
func batchBody(t *testing.T, members ...[]byte) []byte {
	t.Helper()
	raws := make([]json.RawMessage, len(members))
	for i, m := range members {
		raws[i] = m
	}
	b, err := json.Marshal(map[string]any{"requests": raws})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func postPath(t *testing.T, ts *httptest.Server, path string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func decodeBatch(t *testing.T, body []byte) serve.BatchResponse {
	t.Helper()
	var br serve.BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatalf("decoding batch response: %v\n%s", err, body)
	}
	return br
}

// sameJSON compares two JSON documents structurally (the batch encoder
// compacts result bodies, so byte equality does not hold across the
// two surfaces — semantic equality must).
func sameJSON(t *testing.T, a, b []byte) bool {
	t.Helper()
	var va, vb any
	if err := json.Unmarshal(a, &va); err != nil {
		t.Fatalf("bad JSON a: %v", err)
	}
	if err := json.Unmarshal(b, &vb); err != nil {
		t.Fatalf("bad JSON b: %v", err)
	}
	return reflect.DeepEqual(va, vb)
}

// TestBatchKeyEqualsSingleSolve is the regression test for option
// consistency across surfaces: a batch member must canonicalize to
// exactly the key a lone POST /v1/solve computes for the same body —
// including option-bearing requests (budgets, search bounds,
// multilevel) — so the two surfaces share cache entries.
func TestBatchKeyEqualsSingleSolve(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := [][]byte{
		solveBody(t, design.PaperExample(), ""),
		solveBody(t, design.VideoReceiver(), `{"budget": {"clb": 6800, "bram": 64, "dsp": 150}}`),
		solveBody(t, design.PaperExample(), `{"maxFirstMoves": 3, "coverDescending": true}`),
		solveBody(t, design.PaperExample(), `{"multilevel": true, "multilevelSeed": 7}`),
	}
	for i, body := range cases {
		r, b := post(t, ts, body)
		if r.StatusCode != 200 {
			t.Fatalf("case %d single solve: %d: %s", i, r.StatusCode, b)
		}
		singleKey := r.Header.Get("X-Solve-Key")

		br, bb := postPath(t, ts, "/v1/solve/batch", batchBody(t, body))
		if br.StatusCode != 200 {
			t.Fatalf("case %d batch: %d: %s", i, br.StatusCode, bb)
		}
		res := decodeBatch(t, bb).Results
		if len(res) != 1 || res[0].Status != 200 {
			t.Fatalf("case %d batch results: %+v", i, res)
		}
		if res[0].Key != singleKey {
			t.Errorf("case %d: batch key %q != single-solve key %q — the surfaces hash options differently",
				i, res[0].Key, singleKey)
		}
		// Same key ⇒ served from the cache the single solve populated.
		if res[0].Cache != "hit" {
			t.Errorf("case %d: batch member cache = %q, want hit", i, res[0].Cache)
		}
		if !sameJSON(t, b, res[0].Result) {
			t.Errorf("case %d: batch result differs from single-solve body", i)
		}
	}
	// A distinct-option request must NOT share the plain request's key.
	r1, _ := post(t, ts, cases[0])
	br, bb := postPath(t, ts, "/v1/solve/batch", batchBody(t, cases[2]))
	if k := decodeBatch(t, bb).Results[0].Key; br.StatusCode != 200 || k == r1.Header.Get("X-Solve-Key") {
		t.Error("option-bearing member shares the optionless key: options are not hashed")
	}
}

// TestBatchDedupCoalescesDuplicates: N identical members in one batch
// run one solve; the copies are marked dup and carry the same result.
func TestBatchDedupCoalescesDuplicates(t *testing.T) {
	o := obs.New()
	var calls atomic.Int64
	srv := serve.New(serve.Config{
		Workers: 2, Obs: o,
		Solver: func(ctx context.Context, d *design.Design, opts core.Options) (*core.Result, error) {
			calls.Add(1)
			return core.RunContext(ctx, d, opts)
		},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	dup := solveBody(t, design.PaperExample(), "")
	other := solveBody(t, design.VideoReceiver(), `{"budget": {"clb": 6800, "bram": 64, "dsp": 150}}`)
	r, b := postPath(t, ts, "/v1/solve/batch", batchBody(t, dup, dup, other, dup))
	if r.StatusCode != 200 {
		t.Fatalf("batch: %d: %s", r.StatusCode, b)
	}
	res := decodeBatch(t, b).Results
	if len(res) != 4 {
		t.Fatalf("got %d results, want 4", len(res))
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("solver ran %d times for 2 distinct keys, want 2", n)
	}
	for i, want := range []string{"miss", "dup", "miss", "dup"} {
		if res[i].Status != 200 || res[i].Cache != want {
			t.Errorf("member %d: status %d cache %q, want 200 %q", i, res[i].Status, res[i].Cache, want)
		}
	}
	if !bytes.Equal(res[0].Result, res[1].Result) || !bytes.Equal(res[0].Result, res[3].Result) {
		t.Error("dup members carry different bytes than their leader")
	}
	if res[0].Key != res[1].Key || res[0].Key == res[2].Key {
		t.Errorf("keys wrong: %q %q %q", res[0].Key, res[1].Key, res[2].Key)
	}
	if n := o.Snapshot().Counters["serve.batch_dups"]; n != 2 {
		t.Errorf("batch_dups = %d, want 2", n)
	}
}

// TestBatchOversizeIs413: more members than MaxBatchItems is refused
// whole with 413 before any member is decoded or solved.
func TestBatchOversizeIs413(t *testing.T) {
	var calls atomic.Int64
	srv := serve.New(serve.Config{
		Workers: 1, MaxBatchItems: 2,
		Solver: func(ctx context.Context, d *design.Design, opts core.Options) (*core.Result, error) {
			calls.Add(1)
			return core.RunContext(ctx, d, opts)
		},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	m := solveBody(t, design.PaperExample(), "")
	r, b := postPath(t, ts, "/v1/solve/batch", batchBody(t, m, m, m))
	if r.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize batch: %d (%s), want 413", r.StatusCode, b)
	}
	if calls.Load() != 0 {
		t.Error("oversize batch still ran solves")
	}
	// At the limit it goes through.
	if r, b := postPath(t, ts, "/v1/solve/batch", batchBody(t, m, m)); r.StatusCode != 200 {
		t.Fatalf("at-limit batch: %d: %s", r.StatusCode, b)
	}
}

// TestBatchPerMemberErrors: a malformed member fails alone; the others
// still solve. The batch itself stays 200.
func TestBatchPerMemberErrors(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	good := solveBody(t, design.PaperExample(), "")
	infeasible := solveBody(t, design.PaperExample(), `{"budget": {"clb": 1, "bram": 0, "dsp": 0}}`)
	r, b := postPath(t, ts, "/v1/solve/batch", batchBody(t, good, []byte(`{"nope": 1}`), infeasible))
	if r.StatusCode != 200 {
		t.Fatalf("batch: %d: %s", r.StatusCode, b)
	}
	res := decodeBatch(t, b).Results
	if res[0].Status != 200 {
		t.Errorf("good member: %d (%s)", res[0].Status, res[0].Error)
	}
	if res[1].Status != 400 || res[1].Error == "" || res[1].Key != "" {
		t.Errorf("malformed member: %+v, want keyless 400 with message", res[1])
	}
	if res[2].Status != 422 || res[2].Error == "" {
		t.Errorf("infeasible member: %+v, want 422", res[2])
	}
}

// TestBatchEnvelopeValidation: empty and malformed envelopes are 400s.
func TestBatchEnvelopeValidation(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, body := range []string{`{"requests": []}`, `{"bogus": 1}`, `{`} {
		r, _ := postPath(t, ts, "/v1/solve/batch", []byte(body))
		if r.StatusCode != 400 {
			t.Errorf("envelope %q: status %d, want 400", body, r.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/solve/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET batch = %d, want 405", resp.StatusCode)
	}
}

// TestBatchBackpressure503: a bulk tier saturated at batch arrival
// refuses the whole batch with 503 and a jittered Retry-After.
func TestBatchBackpressure503(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	srv := serve.New(serve.Config{
		Workers: 1, QueueDepth: 1, BulkDepth: 1,
		Solver: blockingSolver(release, entered, nil),
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// One bulk solve occupies the tier (admitted bound 1).
	d := design.PaperExample()
	d.Name = "occupier"
	occ := solveBody(t, d, `{"bulk": true}`)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(occ))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered

	r, b := postPath(t, ts, "/v1/solve/batch", batchBody(t, solveBody(t, design.PaperExample(), "")))
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("batch against full bulk tier: %d (%s), want 503", r.StatusCode, b)
	}
	if r.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	close(release)
}

// TestBatchSharesCacheWithSolve runs a batch first and requires the
// synchronous surface to hit the entries it populated.
func TestBatchSharesCacheWithSolve(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := solveBody(t, design.PaperExample(), "")
	if r, b := postPath(t, ts, "/v1/solve/batch", batchBody(t, body)); r.StatusCode != 200 {
		t.Fatalf("batch: %d: %s", r.StatusCode, b)
	}
	r, _ := post(t, ts, body)
	if got := r.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("single solve after batch X-Cache = %q, want hit", got)
	}
}
