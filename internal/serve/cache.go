package serve

import (
	"container/list"
	"sync"

	"prpart/internal/obs"
)

// Cache is a size-bounded LRU mapping solve keys to rendered result
// bodies. Stored bodies are immutable: Get returns the cached slice
// without copying, and callers must not mutate it. Hit/miss/eviction
// accounting flows into the obs registry (serve.cache_hits,
// serve.cache_misses, serve.cache_evictions); the instruments are
// nil-safe, so a Cache built without observability costs one branch.
type Cache struct {
	mu      sync.Mutex
	max     int
	maxBody int64      // 0 = unbounded
	ll      *list.List // front = most recently used
	items   map[string]*list.Element

	hits, misses, evictions, oversize *obs.Counter
	entries                           *obs.Level
}

type cacheEntry struct {
	key  string
	body []byte
}

// NewCache builds a cache bounded to max entries (max <= 0 disables
// caching: every Get misses and Put is a no-op).
func NewCache(max int, o *obs.Obs) *Cache {
	return &Cache{
		max:       max,
		ll:        list.New(),
		items:     map[string]*list.Element{},
		hits:      o.Counter("serve.cache_hits"),
		misses:    o.Counter("serve.cache_misses"),
		evictions: o.Counter("serve.cache_evictions"),
		oversize:  o.Counter("serve.cache_oversize_rejected"),
		entries:   o.Level("serve.cache_entries"),
	}
}

// SetMaxBody bounds the size of a single cached body; larger bodies are
// refused by Put (counted as serve.cache_oversize_rejected) so one
// pathological result cannot dominate the cache's memory. 0 disables
// the bound.
func (c *Cache) SetMaxBody(n int64) {
	c.mu.Lock()
	c.maxBody = n
	c.mu.Unlock()
}

// Get returns the cached body for key and promotes the entry.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*cacheEntry).body, true
}

// Put stores a body under key, evicting the least recently used entry
// when the cache is full. Re-putting an existing key refreshes it.
// Rejections and refreshes leave the hit/miss/eviction counters and the
// entries level untouched: the oversize check runs before any eviction,
// so a body that will never be inserted cannot push victims out first.
func (c *Cache) Put(key string, body []byte) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.maxBody > 0 && int64(len(body)) > c.maxBody {
		c.oversize.Inc()
		return
	}
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).body = body
		return
	}
	for c.ll.Len() >= c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions.Inc()
		c.entries.Dec()
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
	c.entries.Inc()
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
