package serve_test

import (
	"bytes"
	"fmt"
	"testing"

	"prpart/internal/obs"
	"prpart/internal/serve"
)

func TestCacheLRUEviction(t *testing.T) {
	o := obs.New()
	c := serve.NewCache(2, o)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	if _, ok := c.Get("a"); !ok { // promote a: b is now LRU
		t.Fatal("a missing")
	}
	c.Put("c", []byte("C")) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted (LRU)")
	}
	if v, ok := c.Get("a"); !ok || !bytes.Equal(v, []byte("A")) {
		t.Errorf("a = %q, %v", v, ok)
	}
	if v, ok := c.Get("c"); !ok || !bytes.Equal(v, []byte("C")) {
		t.Errorf("c = %q, %v", v, ok)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	s := o.Snapshot()
	if got := s.Counters["serve.cache_evictions"]; got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	if got := s.Counters["serve.cache_hits"]; got != 3 {
		t.Errorf("hits = %d, want 3", got)
	}
	if got := s.Counters["serve.cache_misses"]; got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
	if lvl := s.Levels["serve.cache_entries"]; lvl.Current != 2 || lvl.Max != 2 {
		t.Errorf("entries level = %+v, want current 2 max 2", lvl)
	}
}

func TestCacheRefreshExistingKey(t *testing.T) {
	c := serve.NewCache(2, nil)
	c.Put("a", []byte("old"))
	c.Put("b", []byte("B"))
	c.Put("a", []byte("new")) // refresh, promotes a
	if v, _ := c.Get("a"); !bytes.Equal(v, []byte("new")) {
		t.Errorf("a = %q, want refreshed value", v)
	}
	c.Put("c", []byte("C")) // must evict b, not a
	if _, ok := c.Get("a"); !ok {
		t.Error("refreshed key evicted before older entry")
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
}

func TestCacheDisabled(t *testing.T) {
	for _, max := range []int{0, -1} {
		c := serve.NewCache(max, nil)
		c.Put("a", []byte("A"))
		if _, ok := c.Get("a"); ok {
			t.Errorf("max=%d: disabled cache returned a hit", max)
		}
		if c.Len() != 0 {
			t.Errorf("max=%d: Len = %d, want 0", max, c.Len())
		}
	}
}

func TestCacheEvictionOrderUnderChurn(t *testing.T) {
	o := obs.New()
	c := serve.NewCache(4, o)
	for i := 0; i < 16; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
	// Only the four most recent keys survive.
	for i := 0; i < 12; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); ok {
			t.Errorf("k%d survived churn", i)
		}
	}
	for i := 12; i < 16; i++ {
		if v, ok := c.Get(fmt.Sprintf("k%d", i)); !ok || v[0] != byte(i) {
			t.Errorf("k%d = %v, %v", i, v, ok)
		}
	}
	if got := o.Snapshot().Counters["serve.cache_evictions"]; got != 12 {
		t.Errorf("evictions = %d, want 12", got)
	}
}

// TestCacheOversizeAndRePutAccounting is the regression test for cache
// accounting: an oversized rejected body must not evict victims or move
// any counter except the oversize one, and a re-Put of an existing key
// must not touch hit/miss/eviction accounting at all.
func TestCacheOversizeAndRePutAccounting(t *testing.T) {
	o := obs.New()
	c := serve.NewCache(2, o)
	c.SetMaxBody(4)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	base := o.Snapshot().Counters

	// Oversized new key: rejected outright, no eviction of a or b.
	c.Put("big", []byte("too large"))
	// Oversized re-put of an existing key: rejected, old value kept.
	c.Put("a", []byte("also too large"))
	// In-bounds re-put of an existing key: refresh only.
	c.Put("b", []byte("B2"))

	if v, ok := c.Get("a"); !ok || !bytes.Equal(v, []byte("A")) {
		t.Errorf("a = %q, %v; oversized re-put must keep the old value", v, ok)
	}
	if v, ok := c.Get("b"); !ok || !bytes.Equal(v, []byte("B2")) {
		t.Errorf("b = %q, %v; in-bounds re-put must refresh", v, ok)
	}
	if _, ok := c.Get("big"); ok {
		t.Error("oversized body was cached")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	s := o.Snapshot()
	if got := s.Counters["serve.cache_oversize_rejected"]; got != 2 {
		t.Errorf("oversize_rejected = %d, want 2", got)
	}
	if got, want := s.Counters["serve.cache_evictions"], base["serve.cache_evictions"]; got != want {
		t.Errorf("evictions moved from %d to %d on rejected/refreshed puts", want, got)
	}
	// The three Gets above are the only accounting allowed to move:
	// 2 hits (a, b) + 1 miss (big).
	if got, want := s.Counters["serve.cache_hits"], base["serve.cache_hits"]+2; got != want {
		t.Errorf("hits = %d, want %d", got, want)
	}
	if got, want := s.Counters["serve.cache_misses"], base["serve.cache_misses"]+1; got != want {
		t.Errorf("misses = %d, want %d", got, want)
	}
	if lvl := s.Levels["serve.cache_entries"]; lvl.Current != 2 {
		t.Errorf("entries level = %+v, want 2", lvl)
	}
}
