package serve

import (
	"context"
	"sync"
)

// flightGroup coalesces concurrent solves of the same key: the first
// request becomes the leader and runs the search once; followers wait
// on the same call. Each call carries its own context, detached from
// any single request: it is cancelled only when every waiter has given
// up (refcount reaches zero) or the server shuts down hard, so a
// follower with a long deadline keeps the solve alive after the leader
// times out — and a lone cancelled request stops the search early.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
	refs   int // waiters still interested in the result

	// Set by finish before done is closed.
	body   []byte
	status int
	err    error
}

// join returns the in-flight call for key, creating one (leader = true)
// when none exists. The call's context descends from base.
func (g *flightGroup) join(base context.Context, key string) (*flightCall, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.calls == nil {
		g.calls = map[string]*flightCall{}
	}
	if c, ok := g.calls[key]; ok {
		c.refs++
		return c, false
	}
	ctx, cancel := context.WithCancel(base)
	c := &flightCall{ctx: ctx, cancel: cancel, done: make(chan struct{}), refs: 1}
	g.calls[key] = c
	return c, true
}

// leave deregisters one waiter. When the last waiter leaves a call that
// has not finished, the solve context is cancelled so the search stops.
func (g *flightGroup) leave(c *flightCall) {
	g.mu.Lock()
	c.refs--
	last := c.refs <= 0
	g.mu.Unlock()
	if last {
		c.cancel()
	}
}

// finish publishes the result, wakes every waiter and deregisters the
// key so later requests consult the cache instead.
func (g *flightGroup) finish(key string, c *flightCall, body []byte, status int, err error) {
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	c.body, c.status, c.err = body, status, err
	close(c.done)
	c.cancel()
}

// pending returns the number of distinct keys currently in flight.
func (g *flightGroup) pending() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.calls)
}
