package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"time"

	"prpart/internal/core"
	"prpart/internal/design"
	"prpart/internal/device"
	"prpart/internal/floorplan"
	"prpart/internal/obs"
	"prpart/internal/partition"
)

// SolveFunc runs the flow for one request. The default is
// core.RunContext; tests substitute stubs to script slow or failing
// solves without a real search.
type SolveFunc func(ctx context.Context, d *design.Design, opts core.Options) (*core.Result, error)

// Config tunes a Server. The zero value gets sensible defaults from New.
type Config struct {
	// Workers bounds concurrent solves; excess requests queue.
	// Default: GOMAXPROCS.
	Workers int
	// QueueDepth bounds solves admitted but not yet running. A request
	// that would exceed Workers+QueueDepth leaders in flight is refused
	// with 429 and a Retry-After header. Default: 4×Workers.
	QueueDepth int
	// CacheEntries bounds the solve cache (0 uses the default;
	// negative disables caching). Default: 256.
	CacheEntries int
	// DefaultTimeout caps solves whose request sets no timeoutMs
	// (0 = no default deadline).
	DefaultTimeout time.Duration
	// MaxBodyBytes bounds the request body. Default: 8 MiB.
	MaxBodyBytes int64
	// SolveWorkers is the per-solve search parallelism
	// (partition.Options.Workers). Default: 1 — the pool provides the
	// cross-request parallelism, so each search stays serial and cheap.
	SolveWorkers int
	// Obs receives the service instruments. Nil creates a fresh
	// registry (the daemon always serves /metrics).
	Obs *obs.Obs
	// Library overrides the built-in device catalog for every solve.
	// Deployment configuration, not part of the request: cache keys do
	// not cover it, so restart the daemon (emptying the cache) when the
	// library changes.
	Library []*device.Device
	// Solver overrides the flow entry point (tests). Nil = core.RunContext.
	Solver SolveFunc
	// Check verifies every solve with the independent oracle
	// (internal/check) before serving it; violations surface as 500s.
	// Individual requests can opt in per call with ?check=1 on
	// /v1/solve regardless of this setting.
	Check bool
}

// Server is the partitioning service: bounded worker pool, solve cache,
// request coalescing and graceful drain behind an http.Handler.
type Server struct {
	cfg    Config
	obs    *obs.Obs
	cache  *Cache
	flight flightGroup
	solver SolveFunc

	sem      chan struct{} // worker slots
	admit    chan struct{} // admission slots: Workers+QueueDepth
	baseCtx  context.Context
	shutdown context.CancelFunc
	draining chan struct{}
	started  time.Time
	mux      *http.ServeMux

	// Instruments (all nil-safe).
	cRequests, cSolves, cCoalesced, cRejected, cErrors *obs.Counter
	lQueued, lInflight                                 *obs.Level
	tSolve                                             *obs.Timer
}

// New builds a Server from cfg, applying defaults.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 256
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.SolveWorkers == 0 {
		cfg.SolveWorkers = 1
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.New()
	}
	s := &Server{
		cfg:      cfg,
		obs:      cfg.Obs,
		cache:    NewCache(cfg.CacheEntries, cfg.Obs),
		solver:   cfg.Solver,
		sem:      make(chan struct{}, cfg.Workers),
		admit:    make(chan struct{}, cfg.Workers+cfg.QueueDepth),
		draining: make(chan struct{}),
		started:  time.Now(),

		cRequests:  cfg.Obs.Counter("serve.requests"),
		cSolves:    cfg.Obs.Counter("serve.solves"),
		cCoalesced: cfg.Obs.Counter("serve.coalesced"),
		cRejected:  cfg.Obs.Counter("serve.rejected_queue_full"),
		cErrors:    cfg.Obs.Counter("serve.errors"),
		lQueued:    cfg.Obs.Level("serve.queue_depth"),
		lInflight:  cfg.Obs.Level("serve.inflight"),
		tSolve:     cfg.Obs.Timer("serve.solve"),
	}
	if s.solver == nil {
		s.solver = core.RunContext
	}
	s.baseCtx, s.shutdown = context.WithCancel(context.Background())
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/solve", s.handleSolve)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/vars", s.handleVars)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Obs returns the service's instrument registry.
func (s *Server) Obs() *obs.Obs { return s.obs }

// Shutdown drains the server gracefully: new solve requests are refused
// with 503, while every admitted solve runs to completion. It returns
// when the last in-flight solve finishes or ctx expires. Wrap it around
// http.Server.Shutdown — refusing new work first keeps the listener's
// drain bounded.
func (s *Server) Shutdown(ctx context.Context) error {
	select {
	case <-s.draining:
	default:
		close(s.draining)
	}
	// In-flight solves hold admission slots; the pool is idle once we
	// can take every slot.
	for i := 0; i < cap(s.admit); i++ {
		select {
		case s.admit <- struct{}{}:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// Close aborts hard: pending solves are cancelled mid-search.
func (s *Server) Close() {
	select {
	case <-s.draining:
	default:
		close(s.draining)
	}
	s.shutdown()
}

func (s *Server) isDraining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// errStatus maps a solve error to an HTTP status.
func errStatus(err error) int {
	switch {
	case errors.Is(err, partition.ErrInfeasible), errors.Is(err, partition.ErrNoScheme):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

var errQueueFull = errors.New("serve: queue full")

// handleSolve is POST /v1/solve: decode, consult the cache, coalesce,
// queue, solve, respond. The response body of a 200 is byte-identical
// to `prpart -json` on the same input; X-Solve-Key carries the
// content-addressed key and X-Cache reports hit, miss or coalesced.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("serve: POST only"))
		return
	}
	s.cRequests.Inc()
	if s.isDraining() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, errors.New("serve: shutting down"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		status := http.StatusBadRequest // client abort / network read failure
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, fmt.Errorf("serve: reading body: %w", err))
		return
	}
	sp, timeout, err := DecodeRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key, err := sp.Key()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("X-Solve-Key", key)
	// The debug query ?check=1 verifies this request's result with the
	// independent oracle even when the server-wide Check is off. It
	// bypasses the cache read so the verification actually runs; the
	// verified body is still cached for everyone else (the bytes are
	// identical either way).
	urlCheck := r.URL.Query().Get("check") == "1"
	docheck := s.cfg.Check || urlCheck
	if !urlCheck {
		if cached, ok := s.cache.Get(key); ok {
			s.respond(w, "hit", cached)
			return
		}
	}

	if timeout == 0 {
		timeout = s.cfg.DefaultTimeout
	}
	wctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		wctx, cancel = context.WithTimeout(wctx, timeout)
		defer cancel()
	}

	// Checked and unchecked requests must not coalesce onto each other:
	// a follower asking for verification would otherwise ride on a
	// leader that skipped it. The flight key is namespaced; the cache
	// key is not (the result bytes are the same).
	fkey := key
	if docheck {
		fkey += "+check"
	}
	call, leader := s.flight.join(s.baseCtx, fkey)
	if leader {
		select {
		case s.admit <- struct{}{}:
		default:
			// Coalesced waiters share the leader's admission fate: the
			// 429 below is published to every follower already joined on
			// this key (see DESIGN.md §8, backpressure semantics).
			s.cRejected.Inc()
			s.flight.finish(fkey, call, nil, http.StatusTooManyRequests, errQueueFull)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, errQueueFull)
			return
		}
		go func() {
			defer func() { <-s.admit }()
			body, status, err := s.solve(call.ctx, key, sp, docheck)
			if err == nil {
				s.cache.Put(key, body)
			}
			s.flight.finish(fkey, call, body, status, err)
		}()
	} else {
		s.cCoalesced.Inc()
	}

	deliver := func() {
		if call.err != nil {
			if call.status == http.StatusTooManyRequests {
				w.Header().Set("Retry-After", "1")
			}
			s.cErrors.Inc()
			writeError(w, call.status, call.err)
			return
		}
		cache := "miss"
		if !leader {
			cache = "coalesced"
		}
		if docheck {
			w.Header().Set("X-Check", "pass")
		}
		s.respond(w, cache, call.body)
	}

	select {
	case <-call.done:
		deliver()
	case <-wctx.Done():
		// select picks randomly when both channels are ready, so a solve
		// that completed right at the deadline could land here. Prefer
		// the (now cached) result over a 504.
		select {
		case <-call.done:
			deliver()
			return
		default:
		}
		s.flight.leave(call)
		s.cErrors.Inc()
		if errors.Is(wctx.Err(), context.DeadlineExceeded) {
			writeError(w, http.StatusGatewayTimeout, fmt.Errorf("serve: solve deadline exceeded"))
			return
		}
		// Client went away; the status is never seen but keeps logs honest.
		writeError(w, http.StatusServiceUnavailable, wctx.Err())
	}
}

func (s *Server) respond(w http.ResponseWriter, cache string, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cache)
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// solve waits for a worker slot, runs the flow under the call context
// and renders the canonical result bytes.
func (s *Server) solve(ctx context.Context, key string, sp *SolveSpec, docheck bool) ([]byte, int, error) {
	s.lQueued.Inc()
	select {
	case s.sem <- struct{}{}:
		s.lQueued.Dec()
	case <-ctx.Done():
		s.lQueued.Dec()
		return nil, errStatus(ctx.Err()), fmt.Errorf("serve: cancelled before solving: %w", ctx.Err())
	}
	defer func() { <-s.sem }()
	s.lInflight.Inc()
	defer s.lInflight.Dec()
	s.cSolves.Inc()
	stop := s.tSolve.Time()
	defer stop()
	s.obs.Emit("serve", "solve.start", obs.Str("key", key), obs.Str("design", sp.Design.Name))

	copts := sp.CoreOptions(s.cfg.SolveWorkers, s.obs)
	copts.Library = s.cfg.Library
	res, err := s.solver(ctx, sp.Design, copts)
	if err != nil {
		s.obs.Emit("serve", "solve.error", obs.Str("key", key), obs.Str("err", err.Error()))
		return nil, errStatus(err), err
	}
	if docheck {
		if verr := verifyResult(res); verr != nil {
			s.obs.Emit("serve", "solve.check_failed", obs.Str("key", key), obs.Str("err", verr.Error()))
			return nil, http.StatusInternalServerError, verr
		}
	}
	var plan *floorplan.Plan
	if sp.Floorplan {
		plan, err = floorplan.Place(res.Scheme, res.Device)
		if err != nil {
			return nil, http.StatusUnprocessableEntity, fmt.Errorf("serve: floorplanning: %w", err)
		}
	}
	var buf bytes.Buffer
	if err := WriteResult(&buf, BuildResult(res, plan)); err != nil {
		return nil, http.StatusInternalServerError, err
	}
	s.obs.Emit("serve", "solve.done", obs.Str("key", key),
		obs.Int("total_frames", int64(res.Summary.Total)), obs.Int("bytes", int64(buf.Len())))
	return buf.Bytes(), http.StatusOK, nil
}

// healthState is the /healthz response body.
type healthState struct {
	Status    string `json:"status"` // "ok" or "draining"
	UptimeSec int64  `json:"uptimeSec"`
	Inflight  int64  `json:"inflight"`
	Queued    int64  `json:"queued"`
	Pending   int    `json:"pendingKeys"`
	Cache     struct {
		Entries   int   `json:"entries"`
		Hits      int64 `json:"hits"`
		Misses    int64 `json:"misses"`
		Evictions int64 `json:"evictions"`
	} `json:"cache"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := healthState{Status: "ok", UptimeSec: int64(time.Since(s.started).Seconds())}
	if s.isDraining() {
		st.Status = "draining"
	}
	st.Inflight = s.lInflight.Value()
	st.Queued = s.lQueued.Value()
	st.Pending = s.flight.pending()
	st.Cache.Entries = s.cache.Len()
	snap := s.obs.Snapshot()
	st.Cache.Hits = snap.Counters["serve.cache_hits"]
	st.Cache.Misses = snap.Counters["serve.cache_misses"]
	st.Cache.Evictions = snap.Counters["serve.cache_evictions"]
	w.Header().Set("Content-Type", "application/json")
	if st.Status != "ok" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(st)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.obs.WriteMetrics(w)
}

// handleVars serves the flat instrument map as JSON, expvar-style.
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.obs.Snapshot().Flat())
}
