package serve

import (
	"bytes"
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"prpart/internal/core"
	"prpart/internal/design"
	"prpart/internal/device"
	"prpart/internal/floorplan"
	"prpart/internal/obs"
	"prpart/internal/partition"
	"prpart/internal/store"
)

// SolveFunc runs the flow for one request. The default is
// core.RunContext; tests substitute stubs to script slow or failing
// solves without a real search.
type SolveFunc func(ctx context.Context, d *design.Design, opts core.Options) (*core.Result, error)

// Config tunes a Server. The zero value gets sensible defaults from New.
type Config struct {
	// Workers bounds concurrent solves; excess requests queue.
	// Default: GOMAXPROCS.
	Workers int
	// QueueDepth bounds solves admitted but not yet running. A request
	// that would exceed Workers+QueueDepth leaders in flight is refused
	// with 429 and a Retry-After header. Default: 4×Workers.
	QueueDepth int
	// CacheEntries bounds the solve cache (0 uses the default;
	// negative disables caching). Default: 256.
	CacheEntries int
	// DefaultTimeout caps solves whose request sets no timeoutMs
	// (0 = no default deadline).
	DefaultTimeout time.Duration
	// MaxBodyBytes bounds the request body. Default: 8 MiB.
	MaxBodyBytes int64
	// SolveWorkers is the per-solve search parallelism
	// (partition.Options.Workers). Default: 1 — the pool provides the
	// cross-request parallelism, so each search stays serial and cheap.
	SolveWorkers int
	// Obs receives the service instruments. Nil creates a fresh
	// registry (the daemon always serves /metrics).
	Obs *obs.Obs
	// Library overrides the built-in device catalog for every solve.
	// Deployment configuration, not part of the request: cache keys do
	// not cover it, so restart the daemon (emptying the cache) when the
	// library changes.
	Library []*device.Device
	// Solver overrides the flow entry point (tests). Nil = core.RunContext.
	Solver SolveFunc
	// Check verifies every solve with the independent oracle
	// (internal/check) before serving it; violations surface as 500s.
	// Individual requests can opt in per call with ?check=1 on
	// /v1/solve regardless of this setting.
	Check bool
	// Store is an optional persistent second tier behind the in-memory
	// cache: every solved body is written through, and a restarted
	// daemon serves previously-solved keys byte-identically from disk
	// (X-Cache: store) without re-running the search. Store errors
	// degrade to memory-only serving; they never fail a request.
	Store *store.Store
	// CacheMaxBody bounds the size of a single cached body (0 = no
	// bound). Oversized bodies are still served and persisted, just not
	// held in the memory tier.
	CacheMaxBody int64
}

// Server is the partitioning service: bounded worker pool, solve cache,
// request coalescing and graceful drain behind an http.Handler.
type Server struct {
	cfg    Config
	obs    *obs.Obs
	cache  *Cache
	store  *store.Store
	flight flightGroup
	solver SolveFunc

	sem      chan struct{} // worker slots
	admit    chan struct{} // admission slots: Workers+QueueDepth
	baseCtx  context.Context
	shutdown context.CancelFunc
	draining chan struct{}
	started  time.Time
	mux      *http.ServeMux

	ewmaNs int64 // atomic: smoothed solve wall time, 0 = unknown

	shedMu   sync.Mutex
	shedList *list.List // of context.CancelCauseFunc, front = oldest bulk solve

	// Instruments (all nil-safe).
	cRequests, cSolves, cCoalesced, cRejected, cErrors  *obs.Counter
	cPanics, cRejectedDeadline, cBulkShed, cStoreServes *obs.Counter
	lQueued, lInflight                                  *obs.Level
	tSolve                                              *obs.Timer
}

// New builds a Server from cfg, applying defaults.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 256
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.SolveWorkers == 0 {
		cfg.SolveWorkers = 1
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.New()
	}
	s := &Server{
		cfg:      cfg,
		obs:      cfg.Obs,
		cache:    NewCache(cfg.CacheEntries, cfg.Obs),
		store:    cfg.Store,
		solver:   cfg.Solver,
		sem:      make(chan struct{}, cfg.Workers),
		admit:    make(chan struct{}, cfg.Workers+cfg.QueueDepth),
		draining: make(chan struct{}),
		started:  time.Now(),
		shedList: list.New(),

		cRequests:         cfg.Obs.Counter("serve.requests"),
		cSolves:           cfg.Obs.Counter("serve.solves"),
		cCoalesced:        cfg.Obs.Counter("serve.coalesced"),
		cRejected:         cfg.Obs.Counter("serve.rejected_queue_full"),
		cErrors:           cfg.Obs.Counter("serve.errors"),
		cPanics:           cfg.Obs.Counter("serve.solver_panics"),
		cRejectedDeadline: cfg.Obs.Counter("serve.rejected_deadline"),
		cBulkShed:         cfg.Obs.Counter("serve.bulk_shed"),
		cStoreServes:      cfg.Obs.Counter("serve.store_serves"),
		lQueued:           cfg.Obs.Level("serve.queue_depth"),
		lInflight:         cfg.Obs.Level("serve.inflight"),
		tSolve:            cfg.Obs.Timer("serve.solve"),
	}
	s.cache.SetMaxBody(cfg.CacheMaxBody)
	if s.solver == nil {
		s.solver = core.RunContext
	}
	s.baseCtx, s.shutdown = context.WithCancel(context.Background())
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/solve", s.handleSolve)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/vars", s.handleVars)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Obs returns the service's instrument registry.
func (s *Server) Obs() *obs.Obs { return s.obs }

// Inflight returns the number of solves currently running a search.
func (s *Server) Inflight() int64 { return s.lInflight.Value() }

// Queued returns the number of admitted solves waiting for a worker.
func (s *Server) Queued() int64 { return s.lQueued.Value() }

// Shutdown drains the server gracefully: new solve requests are refused
// with 503, while every admitted solve runs to completion. It returns
// when the last in-flight solve finishes or ctx expires. Wrap it around
// http.Server.Shutdown — refusing new work first keeps the listener's
// drain bounded.
func (s *Server) Shutdown(ctx context.Context) error {
	select {
	case <-s.draining:
	default:
		close(s.draining)
	}
	// In-flight solves hold admission slots; the pool is idle once we
	// can take every slot.
	for i := 0; i < cap(s.admit); i++ {
		select {
		case s.admit <- struct{}{}:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// Close aborts hard: pending solves are cancelled mid-search.
func (s *Server) Close() {
	select {
	case <-s.draining:
	default:
		close(s.draining)
	}
	s.shutdown()
}

func (s *Server) isDraining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// errStatus maps a solve error to an HTTP status.
func errStatus(err error) int {
	switch {
	case errors.Is(err, partition.ErrInfeasible), errors.Is(err, partition.ErrNoScheme):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

var (
	errQueueFull        = errors.New("serve: queue full")
	errDeadlineTooTight = errors.New("serve: estimated queue wait exceeds request deadline")
	errShedForLatency   = errors.New("serve: bulk solve shed for latency-sensitive work")
)

// estimateWait predicts how long a newly admitted solve will sit in the
// queue before a worker picks it up: zero while a worker is idle or no
// solve has completed yet, otherwise one smoothed solve time per wave
// of already-queued leaders ahead of it. It is a scheduling estimate
// over racy channel lengths, not an accounting fact — good enough to
// refuse work that cannot possibly meet its deadline.
func (s *Server) estimateWait() time.Duration {
	avg := time.Duration(atomic.LoadInt64(&s.ewmaNs))
	if avg <= 0 {
		return 0
	}
	workers := cap(s.sem)
	if len(s.sem) < workers {
		return 0
	}
	queued := int(s.lQueued.Value())
	return time.Duration(queued/workers+1) * avg
}

// observeSolve folds one completed solve's wall time into the smoothed
// estimate (EWMA, alpha 0.3).
func (s *Server) observeSolve(d time.Duration) {
	for {
		old := atomic.LoadInt64(&s.ewmaNs)
		nw := int64(d)
		if old != 0 {
			nw = old + (int64(d)-old)*3/10
		}
		if nw <= 0 {
			nw = 1
		}
		if atomic.CompareAndSwapInt64(&s.ewmaNs, old, nw) {
			return
		}
	}
}

// shedRegister enrolls a running bulk solve as sheddable; the returned
// element is handed back to shedUnregister when the solve ends.
func (s *Server) shedRegister(cancel context.CancelCauseFunc) *list.Element {
	s.shedMu.Lock()
	defer s.shedMu.Unlock()
	return s.shedList.PushBack(cancel)
}

func (s *Server) shedUnregister(el *list.Element) {
	s.shedMu.Lock()
	s.shedList.Remove(el) // no-op if already shed
	s.shedMu.Unlock()
}

// shedOldestBulk cancels the longest-running sheddable bulk solve so a
// latency-sensitive request can take its capacity. Returns false when
// nothing is sheddable.
func (s *Server) shedOldestBulk() bool {
	s.shedMu.Lock()
	el := s.shedList.Front()
	if el != nil {
		s.shedList.Remove(el)
	}
	s.shedMu.Unlock()
	if el == nil {
		return false
	}
	el.Value.(context.CancelCauseFunc)(errShedForLatency)
	s.cBulkShed.Inc()
	return true
}

// handleSolve is POST /v1/solve: decode, consult the cache, coalesce,
// queue, solve, respond. The response body of a 200 is byte-identical
// to `prpart -json` on the same input; X-Solve-Key carries the
// content-addressed key and X-Cache reports hit, miss or coalesced.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("serve: POST only"))
		return
	}
	s.cRequests.Inc()
	if s.isDraining() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, errors.New("serve: shutting down"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		status := http.StatusBadRequest // client abort / network read failure
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, fmt.Errorf("serve: reading body: %w", err))
		return
	}
	sp, meta, err := DecodeRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key, err := sp.Key()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("X-Solve-Key", key)
	// The debug query ?check=1 verifies this request's result with the
	// independent oracle even when the server-wide Check is off. It
	// bypasses the cache read so the verification actually runs; the
	// verified body is still cached for everyone else (the bytes are
	// identical either way).
	urlCheck := r.URL.Query().Get("check") == "1"
	docheck := s.cfg.Check || urlCheck
	if !urlCheck {
		if cached, ok := s.cache.Get(key); ok {
			s.respond(w, "hit", cached)
			return
		}
		// Second tier: the persistent store. Bytes coming back from disk
		// are hash-verified by the store itself (a corrupt blob reads as
		// a miss and quarantines), so anything returned here is exactly
		// what a fresh solve would have produced.
		if s.store != nil {
			if body, ok := s.store.Get(key); ok {
				s.cache.Put(key, body)
				s.cStoreServes.Inc()
				s.respond(w, "store", body)
				return
			}
		}
	}

	timeout := meta.Timeout
	if timeout == 0 {
		timeout = s.cfg.DefaultTimeout
	}
	wctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		wctx, cancel = context.WithTimeout(wctx, timeout)
		defer cancel()
	}

	// Checked and unchecked requests must not coalesce onto each other:
	// a follower asking for verification would otherwise ride on a
	// leader that skipped it. The flight key is namespaced; the cache
	// key is not (the result bytes are the same).
	fkey := key
	if docheck {
		fkey += "+check"
	}
	call, leader := s.flight.join(s.baseCtx, fkey)
	if leader {
		// Deadline-aware admission: refuse work that cannot possibly
		// meet its deadline instead of letting it queue, burn a slot and
		// time out anyway. Retry-After carries the wait estimate.
		if dl, ok := wctx.Deadline(); ok {
			if est := s.estimateWait(); est > 0 && est > time.Until(dl) {
				s.cRejectedDeadline.Inc()
				s.flight.finish(fkey, call, nil, http.StatusTooManyRequests, errDeadlineTooTight)
				w.Header().Set("Retry-After", strconv.Itoa(int(est/time.Second)+1))
				writeError(w, http.StatusTooManyRequests, errDeadlineTooTight)
				return
			}
		}
		admitted := false
		select {
		case s.admit <- struct{}{}:
			admitted = true
		default:
		}
		if !admitted && !meta.Bulk {
			// Admission is full but this request is latency-sensitive:
			// shed the oldest running bulk solve and wait for the freed
			// capacity (bounded by the request's own deadline).
			if s.shedOldestBulk() {
				select {
				case s.admit <- struct{}{}:
					admitted = true
				case <-wctx.Done():
				}
			}
		}
		if !admitted {
			// Coalesced waiters share the leader's admission fate: the
			// 429 below is published to every follower already joined on
			// this key (see DESIGN.md §8, backpressure semantics).
			s.cRejected.Inc()
			s.flight.finish(fkey, call, nil, http.StatusTooManyRequests, errQueueFull)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, errQueueFull)
			return
		}
		bulk := meta.Bulk
		go func() {
			defer func() { <-s.admit }()
			sctx := call.ctx
			if bulk {
				bctx, bcancel := context.WithCancelCause(call.ctx)
				el := s.shedRegister(bcancel)
				defer s.shedUnregister(el)
				defer bcancel(nil)
				sctx = bctx
			}
			body, status, err := s.solveGuarded(sctx, key, sp, docheck)
			if err != nil && errors.Is(context.Cause(sctx), errShedForLatency) {
				status, err = http.StatusServiceUnavailable, errShedForLatency
			}
			if err == nil {
				s.cache.Put(key, body)
				s.persist(key, body, docheck)
			}
			s.flight.finish(fkey, call, body, status, err)
		}()
	} else {
		s.cCoalesced.Inc()
	}

	deliver := func() {
		if call.err != nil {
			if call.status == http.StatusTooManyRequests || errors.Is(call.err, errShedForLatency) {
				w.Header().Set("Retry-After", "1")
			}
			s.cErrors.Inc()
			writeError(w, call.status, call.err)
			return
		}
		cache := "miss"
		if !leader {
			cache = "coalesced"
		}
		if docheck {
			w.Header().Set("X-Check", "pass")
		}
		s.respond(w, cache, call.body)
	}

	select {
	case <-call.done:
		deliver()
	case <-wctx.Done():
		// select picks randomly when both channels are ready, so a solve
		// that completed right at the deadline could land here. Prefer
		// the (now cached) result over a 504.
		select {
		case <-call.done:
			deliver()
			return
		default:
		}
		s.flight.leave(call)
		s.cErrors.Inc()
		if errors.Is(wctx.Err(), context.DeadlineExceeded) {
			writeError(w, http.StatusGatewayTimeout, fmt.Errorf("serve: solve deadline exceeded"))
			return
		}
		// Client went away; the status is never seen but keeps logs honest.
		writeError(w, http.StatusServiceUnavailable, wctx.Err())
	}
}

func (s *Server) respond(w http.ResponseWriter, cache string, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cache)
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// solveGuarded is solve behind a panic barrier: a panicking solver (or
// renderer) downs one request with a 500, never the daemon. The solve
// path's own defers release the worker slot and levels during unwind.
func (s *Server) solveGuarded(ctx context.Context, key string, sp *SolveSpec, docheck bool) (body []byte, status int, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.cPanics.Inc()
			s.obs.Emit("serve", "solve.panic", obs.Str("key", key), obs.Str("panic", fmt.Sprint(r)))
			body, status, err = nil, http.StatusInternalServerError, fmt.Errorf("serve: solver panicked: %v", r)
		}
	}()
	return s.solve(ctx, key, sp, docheck)
}

// persist writes a solved body through to the store tier. Failures
// degrade to memory-only serving: the store counts them, the request
// already has its answer.
func (s *Server) persist(key string, body []byte, checked bool) {
	if s.store == nil {
		return
	}
	v := store.VerdictUnchecked
	if checked {
		v = store.VerdictPass
	}
	if err := s.store.Put(key, body, v); err != nil {
		s.obs.Emit("serve", "store.put_error", obs.Str("key", key), obs.Str("err", err.Error()))
	}
}

// solve waits for a worker slot, runs the flow under the call context
// and renders the canonical result bytes.
func (s *Server) solve(ctx context.Context, key string, sp *SolveSpec, docheck bool) ([]byte, int, error) {
	s.lQueued.Inc()
	select {
	case s.sem <- struct{}{}:
		s.lQueued.Dec()
	case <-ctx.Done():
		s.lQueued.Dec()
		return nil, errStatus(ctx.Err()), fmt.Errorf("serve: cancelled before solving: %w", ctx.Err())
	}
	defer func() { <-s.sem }()
	s.lInflight.Inc()
	defer s.lInflight.Dec()
	s.cSolves.Inc()
	stop := s.tSolve.Time()
	defer stop()
	s.obs.Emit("serve", "solve.start", obs.Str("key", key), obs.Str("design", sp.Design.Name))

	copts := sp.CoreOptions(s.cfg.SolveWorkers, s.obs)
	copts.Library = s.cfg.Library
	begin := time.Now()
	res, err := s.solver(ctx, sp.Design, copts)
	s.observeSolve(time.Since(begin))
	if err != nil {
		s.obs.Emit("serve", "solve.error", obs.Str("key", key), obs.Str("err", err.Error()))
		return nil, errStatus(err), err
	}
	if docheck {
		if verr := verifyResult(res); verr != nil {
			s.obs.Emit("serve", "solve.check_failed", obs.Str("key", key), obs.Str("err", verr.Error()))
			return nil, http.StatusInternalServerError, verr
		}
	}
	var plan *floorplan.Plan
	if sp.Floorplan {
		plan, err = floorplan.Place(res.Scheme, res.Device)
		if err != nil {
			return nil, http.StatusUnprocessableEntity, fmt.Errorf("serve: floorplanning: %w", err)
		}
	}
	var buf bytes.Buffer
	if err := WriteResult(&buf, BuildResult(res, plan)); err != nil {
		return nil, http.StatusInternalServerError, err
	}
	s.obs.Emit("serve", "solve.done", obs.Str("key", key),
		obs.Int("total_frames", int64(res.Summary.Total)), obs.Int("bytes", int64(buf.Len())))
	return buf.Bytes(), http.StatusOK, nil
}

// healthState is the /healthz response body.
type healthState struct {
	Status    string `json:"status"` // "ok" or "draining"
	UptimeSec int64  `json:"uptimeSec"`
	Inflight  int64  `json:"inflight"`
	Queued    int64  `json:"queued"`
	Pending   int    `json:"pendingKeys"`
	Cache     struct {
		Entries   int   `json:"entries"`
		Hits      int64 `json:"hits"`
		Misses    int64 `json:"misses"`
		Evictions int64 `json:"evictions"`
	} `json:"cache"`
	Store *storeHealth `json:"store,omitempty"`
}

// storeHealth summarizes the persistent tier in /healthz.
type storeHealth struct {
	Keys            int   `json:"keys"`
	Hits            int64 `json:"hits"`
	CorruptBlobs    int64 `json:"corruptBlobs"`
	QuarantinedKeys int64 `json:"quarantinedKeys"`
	RecoveredBytes  int64 `json:"recoveredTruncatedBytes"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := healthState{Status: "ok", UptimeSec: int64(time.Since(s.started).Seconds())}
	if s.isDraining() {
		st.Status = "draining"
	}
	st.Inflight = s.lInflight.Value()
	st.Queued = s.lQueued.Value()
	st.Pending = s.flight.pending()
	st.Cache.Entries = s.cache.Len()
	snap := s.obs.Snapshot()
	st.Cache.Hits = snap.Counters["serve.cache_hits"]
	st.Cache.Misses = snap.Counters["serve.cache_misses"]
	st.Cache.Evictions = snap.Counters["serve.cache_evictions"]
	if s.store != nil {
		st.Store = &storeHealth{
			Keys:            s.store.Len(),
			Hits:            snap.Counters["store.hits"],
			CorruptBlobs:    snap.Counters["store.corrupt_blobs"],
			QuarantinedKeys: snap.Counters["store.quarantined_keys"],
			RecoveredBytes:  s.store.Recovery().TruncatedBytes,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if st.Status != "ok" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(st)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.obs.WriteMetrics(w)
}

// handleVars serves the flat instrument map as JSON, expvar-style.
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.obs.Snapshot().Flat())
}
