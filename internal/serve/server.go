package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"prpart/internal/cluster"
	"prpart/internal/core"
	"prpart/internal/design"
	"prpart/internal/device"
	"prpart/internal/floorplan"
	"prpart/internal/jobs"
	"prpart/internal/obs"
	"prpart/internal/partition"
	"prpart/internal/store"
)

// SolveFunc runs the flow for one request. The default is
// core.RunContext; tests substitute stubs to script slow or failing
// solves without a real search.
type SolveFunc func(ctx context.Context, d *design.Design, opts core.Options) (*core.Result, error)

// Config tunes a Server. The zero value gets sensible defaults from New.
type Config struct {
	// Workers bounds concurrent solves; excess requests queue.
	// Default: GOMAXPROCS.
	Workers int
	// QueueDepth sizes the default per-tier admission bounds (see
	// InteractiveDepth / BulkDepth). Default: 4×Workers.
	QueueDepth int
	// InteractiveDepth bounds how many latency-sensitive solves may be
	// admitted (queued or running) at once; overflow is refused with 429
	// and a Retry-After header. Default: Workers+QueueDepth.
	InteractiveDepth int
	// BulkDepth is the same bound for the bulk tier (batch members,
	// async jobs, bulk-marked solves); overflow gets 503. Bulk work
	// tolerates queueing, so its default is deeper: Workers+4×QueueDepth.
	BulkDepth int
	// BulkShare is the guaranteed bulk fraction of contended dequeues:
	// when both tiers have waiters, every BulkShare-th grant goes to
	// bulk, so a saturating interactive stream can never starve bulk.
	// Default: 4.
	BulkShare int
	// MaxBatchItems bounds the number of requests in one
	// POST /v1/solve/batch body; overflow is a 413. Default: 256.
	MaxBatchItems int
	// JitterSeed seeds the Retry-After jitter so tests and chaos runs
	// can pin the backoff sequence. Production leaves it 0 and gets a
	// fixed-but-harmless default seed.
	JitterSeed int64
	// JobsRetention bounds how many finished async jobs stay pollable
	// in memory (older ones remain loadable from the store). Default:
	// 1024.
	JobsRetention int
	// CacheEntries bounds the solve cache (0 uses the default;
	// negative disables caching). Default: 256.
	CacheEntries int
	// DefaultTimeout caps solves whose request sets no timeoutMs
	// (0 = no default deadline).
	DefaultTimeout time.Duration
	// MaxBodyBytes bounds the request body. Default: 8 MiB.
	MaxBodyBytes int64
	// SolveWorkers is the per-solve search parallelism
	// (partition.Options.Workers). Default: 1 — the pool provides the
	// cross-request parallelism, so each search stays serial and cheap.
	SolveWorkers int
	// Obs receives the service instruments. Nil creates a fresh
	// registry (the daemon always serves /metrics).
	Obs *obs.Obs
	// Library overrides the built-in device catalog for every solve.
	// Deployment configuration, not part of the request: cache keys do
	// not cover it, so restart the daemon (emptying the cache) when the
	// library changes.
	Library []*device.Device
	// Solver overrides the flow entry point (tests). Nil = core.RunContext.
	Solver SolveFunc
	// Check verifies every solve with the independent oracle
	// (internal/check) before serving it; violations surface as 500s.
	// Individual requests can opt in per call with ?check=1 on
	// /v1/solve regardless of this setting.
	Check bool
	// Store is an optional persistent second tier behind the in-memory
	// cache: every solved body is written through, and a restarted
	// daemon serves previously-solved keys byte-identically from disk
	// (X-Cache: store) without re-running the search. Store errors
	// degrade to memory-only serving; they never fail a request.
	// Finished async job records persist here too (under "job:" keys).
	Store *store.Store
	// CacheMaxBody bounds the size of a single cached body (0 = no
	// bound). Oversized bodies are still served and persisted, just not
	// held in the memory tier.
	CacheMaxBody int64
	// Cluster is the optional peer layer (internal/cluster). When set,
	// misses in the cache and store tiers ask the key's ring owners
	// before solving locally (X-Cache: peer), fresh solves replicate to
	// the other owners, and the server answers the peer fetch/push
	// endpoints for its own shard.
	Cluster *cluster.Peers
}

// Server is the partitioning service: two-tier scheduled worker pool,
// solve cache, request coalescing, batch fan-out, async jobs and
// graceful drain behind an http.Handler.
type Server struct {
	cfg     Config
	obs     *obs.Obs
	cache   *Cache
	store   *store.Store
	cluster *cluster.Peers
	flight  flightGroup
	solver  SolveFunc

	sched  *jobs.Scheduler
	jitter *jobs.Jitter
	jobMgr *jobs.Manager

	baseCtx  context.Context
	shutdown context.CancelFunc
	draining chan struct{}
	started  time.Time
	mux      *http.ServeMux

	// Instruments (all nil-safe).
	cRequests, cSolves, cCoalesced, cRejected, cErrors  *obs.Counter
	cPanics, cRejectedDeadline, cBulkShed, cStoreServes *obs.Counter
	cBatches, cBatchDups, cJobsSubmitted                *obs.Counter
	cPeerServes, cFetchServed, cFetchMissed             *obs.Counter
	cPushesReceived                                     *obs.Counter
	lQueued, lInflight                                  *obs.Level
	tSolve                                              *obs.Timer
}

// New builds a Server from cfg, applying defaults.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.InteractiveDepth <= 0 {
		cfg.InteractiveDepth = cfg.Workers + cfg.QueueDepth
	}
	if cfg.BulkDepth <= 0 {
		cfg.BulkDepth = cfg.Workers + 4*cfg.QueueDepth
	}
	if cfg.BulkShare <= 0 {
		cfg.BulkShare = 4
	}
	if cfg.MaxBatchItems <= 0 {
		cfg.MaxBatchItems = 256
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 256
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.SolveWorkers == 0 {
		cfg.SolveWorkers = 1
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.New()
	}
	s := &Server{
		cfg:      cfg,
		obs:      cfg.Obs,
		cache:    NewCache(cfg.CacheEntries, cfg.Obs),
		store:    cfg.Store,
		cluster:  cfg.Cluster,
		solver:   cfg.Solver,
		jitter:   jobs.NewJitter(cfg.JitterSeed),
		draining: make(chan struct{}),
		started:  time.Now(),

		cRequests:         cfg.Obs.Counter("serve.requests"),
		cSolves:           cfg.Obs.Counter("serve.solves"),
		cCoalesced:        cfg.Obs.Counter("serve.coalesced"),
		cRejected:         cfg.Obs.Counter("serve.rejected_queue_full"),
		cErrors:           cfg.Obs.Counter("serve.errors"),
		cPanics:           cfg.Obs.Counter("serve.solver_panics"),
		cRejectedDeadline: cfg.Obs.Counter("serve.rejected_deadline"),
		cBulkShed:         cfg.Obs.Counter("serve.bulk_shed"),
		cStoreServes:      cfg.Obs.Counter("serve.store_serves"),
		cBatches:          cfg.Obs.Counter("serve.batches"),
		cBatchDups:        cfg.Obs.Counter("serve.batch_dups"),
		cJobsSubmitted:    cfg.Obs.Counter("serve.jobs_submitted"),
		cPeerServes:       cfg.Obs.Counter("serve.peer_serves"),
		cFetchServed:      cfg.Obs.Counter("cluster.fetch_served"),
		cFetchMissed:      cfg.Obs.Counter("cluster.fetch_missed"),
		cPushesReceived:   cfg.Obs.Counter("cluster.pushes_received"),
		lQueued:           cfg.Obs.Level("serve.queue_depth"),
		lInflight:         cfg.Obs.Level("serve.inflight"),
		tSolve:            cfg.Obs.Timer("serve.solve"),
	}
	s.cache.SetMaxBody(cfg.CacheMaxBody)
	if s.solver == nil {
		s.solver = core.RunContext
	}
	s.sched = jobs.NewScheduler(jobs.SchedConfig{
		Workers:          cfg.Workers,
		InteractiveDepth: cfg.InteractiveDepth,
		BulkDepth:        cfg.BulkDepth,
		BulkShare:        cfg.BulkShare,
		Obs:              cfg.Obs,
		Queued:           s.lQueued,
	})
	s.jobMgr = jobs.NewManager(jobs.ManagerConfig{
		Sched:       s.sched,
		MaxFinished: cfg.JobsRetention,
		Persist:     s.persistJob,
		Load:        s.loadJob,
	})
	s.baseCtx, s.shutdown = context.WithCancel(context.Background())
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/solve", s.handleSolve)
	s.mux.HandleFunc("/v1/solve/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	if s.cluster != nil {
		s.mux.HandleFunc("POST "+cluster.FetchPath, s.handlePeerFetch)
		s.mux.HandleFunc("POST "+cluster.PushPath, s.handlePeerPush)
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/vars", s.handleVars)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Obs returns the service's instrument registry.
func (s *Server) Obs() *obs.Obs { return s.obs }

// Inflight returns the number of solves currently running a search.
func (s *Server) Inflight() int64 { return s.lInflight.Value() }

// Queued returns the number of admitted solves waiting for a worker.
func (s *Server) Queued() int64 { return s.lQueued.Value() }

// Shutdown drains the server gracefully: new solve requests are refused
// with 503, while every admitted solve and async job runs to
// completion. It returns when the scheduler is idle or ctx expires.
// Wrap it around http.Server.Shutdown — refusing new work first keeps
// the listener's drain bounded.
func (s *Server) Shutdown(ctx context.Context) error {
	select {
	case <-s.draining:
	default:
		close(s.draining)
	}
	return s.sched.Drain(ctx)
}

// Close aborts hard: pending solves are cancelled mid-search and the
// worker pool stops once its queue drains.
func (s *Server) Close() {
	select {
	case <-s.draining:
	default:
		close(s.draining)
	}
	s.shutdown()
	s.sched.Close()
}

func (s *Server) isDraining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// errStatus maps a solve error to an HTTP status.
func errStatus(err error) int {
	switch {
	case errors.Is(err, partition.ErrInfeasible), errors.Is(err, partition.ErrNoScheme):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

var (
	errQueueFull        = errors.New("serve: queue full")
	errBulkQueueFull    = errors.New("serve: bulk queue full")
	errDeadlineTooTight = errors.New("serve: estimated queue wait exceeds request deadline")
	errShedForLatency   = errors.New("serve: bulk solve shed for latency-sensitive work")
)

// retryAfter stamps a jittered Retry-After header sized to est (or the
// 1-second floor when est is tiny). Jitter desynchronizes retry storms:
// a thousand clients refused in the same instant come back spread over
// the backoff window instead of as a thundering herd.
func (s *Server) retryAfter(w http.ResponseWriter, est time.Duration) {
	w.Header().Set("Retry-After", strconv.Itoa(s.jitter.RetryAfter(est)))
}

// tierOf maps a request's serving class to its scheduler tier.
func tierOf(bulk bool) jobs.Tier {
	if bulk {
		return jobs.Bulk
	}
	return jobs.Interactive
}

// tierFullError maps a refused tier to its backpressure response:
// interactive overflow is the client's cue to back off (429), bulk
// overflow says the service is saturated with throughput work (503).
func tierFullError(tier jobs.Tier) (int, error) {
	if tier == jobs.Bulk {
		return http.StatusServiceUnavailable, errBulkQueueFull
	}
	return http.StatusTooManyRequests, errQueueFull
}

// handleSolve is POST /v1/solve: decode, consult the cache, coalesce,
// queue, solve, respond. The response body of a 200 is byte-identical
// to `prpart -json` on the same input; X-Solve-Key carries the
// content-addressed key and X-Cache reports hit, miss or coalesced.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errors.New("serve: POST only"))
		return
	}
	s.cRequests.Inc()
	if s.isDraining() {
		s.retryAfter(w, time.Second)
		writeError(w, http.StatusServiceUnavailable, errors.New("serve: shutting down"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		status := http.StatusBadRequest // client abort / network read failure
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, fmt.Errorf("serve: reading body: %w", err))
		return
	}
	sp, meta, err := DecodeRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key, err := sp.Key()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("X-Solve-Key", key)
	// The debug query ?check=1 verifies this request's result with the
	// independent oracle even when the server-wide Check is off. It
	// bypasses the cache read so the verification actually runs; the
	// verified body is still cached for everyone else (the bytes are
	// identical either way).
	urlCheck := r.URL.Query().Get("check") == "1"
	docheck := s.cfg.Check || urlCheck
	if !urlCheck {
		if body, tier, ok := s.lookup(r.Context(), key); ok {
			s.respond(w, tier, body)
			return
		}
	}

	timeout := meta.Timeout
	if timeout == 0 {
		timeout = s.cfg.DefaultTimeout
	}
	wctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		wctx, cancel = context.WithTimeout(wctx, timeout)
		defer cancel()
	}

	tier := tierOf(meta.Bulk)
	// Checked and unchecked requests must not coalesce onto each other:
	// a follower asking for verification would otherwise ride on a
	// leader that skipped it. The flight key is namespaced; the cache
	// key is not (the result bytes are the same).
	fkey := flightKey(key, docheck)
	call, leader := s.flight.join(s.baseCtx, fkey)
	if leader {
		// Deadline-aware admission: refuse work that cannot possibly
		// meet its deadline instead of letting it queue, burn a slot and
		// time out anyway. Retry-After carries the wait estimate.
		if dl, ok := wctx.Deadline(); ok {
			if est := s.sched.EstimateWait(tier); est > 0 && est > time.Until(dl) {
				s.cRejectedDeadline.Inc()
				s.flight.finish(fkey, call, nil, http.StatusTooManyRequests, errDeadlineTooTight)
				s.retryAfter(w, est)
				writeError(w, http.StatusTooManyRequests, errDeadlineTooTight)
				return
			}
		}
		// The solve runs under the flight call's context — detached from
		// this request, alive while any waiter remains — so the scheduler
		// ticket outlives a leader that times out while followers wait.
		// An interactive enqueue that finds every worker stuck in bulk
		// sheds the oldest bulk solve inside the scheduler.
		_, err := s.sched.Enqueue(call.ctx, tier, func(ctx context.Context) {
			s.runLeader(ctx, fkey, key, call, sp, docheck)
		})
		if err != nil {
			// Coalesced waiters share the leader's admission fate: the
			// refusal below is published to every follower already joined
			// on this key (see DESIGN.md §8, backpressure semantics).
			s.cRejected.Inc()
			status, ferr := tierFullError(tier)
			s.flight.finish(fkey, call, nil, status, ferr)
			s.retryAfter(w, s.sched.EstimateWait(tier))
			writeError(w, status, ferr)
			return
		}
	} else {
		s.cCoalesced.Inc()
	}

	s.deliver(w, wctx, fkey, call, leader, docheck)
}

// flightKey namespaces the coalescing key by the check flag.
func flightKey(key string, docheck bool) string {
	if docheck {
		return key + "+check"
	}
	return key
}

// runLeader is the scheduler-side body of a synchronous solve: run the
// search, classify shed, populate the cache tiers and publish to every
// coalesced waiter.
func (s *Server) runLeader(ctx context.Context, fkey, key string, call *flightCall, sp *SolveSpec, docheck bool) {
	body, status, err := s.solveGuarded(ctx, key, sp, docheck)
	if err != nil && errors.Is(context.Cause(ctx), jobs.ErrShed) {
		status, err = http.StatusServiceUnavailable, errShedForLatency
		s.cBulkShed.Inc()
	}
	if err == nil {
		s.cache.Put(key, body)
		s.persist(key, body, docheck)
		// Replicate before the flight publishes: by the time any client
		// holds the response, the key's owners hold the bytes too, which
		// keeps seeded request sequences producing identical cluster
		// counters run over run.
		s.replicate(key, body, docheck)
	}
	s.flight.finish(fkey, call, body, status, err)
}

// deliver waits for the flight call to finish (or the request context
// to die) and writes the outcome.
func (s *Server) deliver(w http.ResponseWriter, wctx context.Context, fkey string, call *flightCall, leader, docheck bool) {
	write := func() {
		if call.err != nil {
			if call.status == http.StatusTooManyRequests || errors.Is(call.err, errShedForLatency) {
				s.retryAfter(w, time.Second)
			}
			s.cErrors.Inc()
			writeError(w, call.status, call.err)
			return
		}
		cache := "miss"
		if !leader {
			cache = "coalesced"
		}
		if docheck {
			w.Header().Set("X-Check", "pass")
		}
		s.respond(w, cache, call.body)
	}

	select {
	case <-call.done:
		write()
	case <-wctx.Done():
		// select picks randomly when both channels are ready, so a solve
		// that completed right at the deadline could land here. Prefer
		// the (now cached) result over a 504.
		select {
		case <-call.done:
			write()
			return
		default:
		}
		s.flight.leave(call)
		s.cErrors.Inc()
		if errors.Is(wctx.Err(), context.DeadlineExceeded) {
			writeError(w, http.StatusGatewayTimeout, fmt.Errorf("serve: solve deadline exceeded"))
			return
		}
		// Client went away; the status is never seen but keeps logs honest.
		writeError(w, http.StatusServiceUnavailable, wctx.Err())
	}
}

func (s *Server) respond(w http.ResponseWriter, cache string, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cache)
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// solveGuarded is solve behind a panic barrier: a panicking solver (or
// renderer) downs one request with a 500, never the daemon — and never
// a scheduler worker.
func (s *Server) solveGuarded(ctx context.Context, key string, sp *SolveSpec, docheck bool) (body []byte, status int, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.cPanics.Inc()
			s.obs.Emit("serve", "solve.panic", obs.Str("key", key), obs.Str("panic", fmt.Sprint(r)))
			body, status, err = nil, http.StatusInternalServerError, fmt.Errorf("serve: solver panicked: %v", r)
		}
	}()
	return s.solve(ctx, key, sp, docheck)
}

// persist writes a solved body through to the store tier. Failures
// degrade to memory-only serving: the store counts them, the request
// already has its answer.
func (s *Server) persist(key string, body []byte, checked bool) {
	if s.store == nil {
		return
	}
	v := store.VerdictUnchecked
	if checked {
		v = store.VerdictPass
	}
	if err := s.store.Put(key, body, v); err != nil {
		s.obs.Emit("serve", "store.put_error", obs.Str("key", key), obs.Str("err", err.Error()))
	}
}

// solve runs the flow under the call context and renders the canonical
// result bytes. It executes on a scheduler worker, which is the
// concurrency bound; only real solver wall time feeds the smoothed
// admission estimate.
func (s *Server) solve(ctx context.Context, key string, sp *SolveSpec, docheck bool) ([]byte, int, error) {
	if err := ctx.Err(); err != nil {
		return nil, errStatus(err), fmt.Errorf("serve: cancelled before solving: %w", err)
	}
	s.lInflight.Inc()
	defer s.lInflight.Dec()
	s.cSolves.Inc()
	stop := s.tSolve.Time()
	defer stop()
	s.obs.Emit("serve", "solve.start", obs.Str("key", key), obs.Str("design", sp.Design.Name))

	copts := sp.CoreOptions(s.cfg.SolveWorkers, s.obs)
	copts.Library = s.cfg.Library
	begin := time.Now()
	res, err := s.solver(ctx, sp.Design, copts)
	s.sched.ObserveWork(time.Since(begin))
	if err != nil {
		s.obs.Emit("serve", "solve.error", obs.Str("key", key), obs.Str("err", err.Error()))
		return nil, errStatus(err), err
	}
	if docheck {
		if verr := verifyResult(res); verr != nil {
			s.obs.Emit("serve", "solve.check_failed", obs.Str("key", key), obs.Str("err", verr.Error()))
			return nil, http.StatusInternalServerError, verr
		}
	}
	var plan *floorplan.Plan
	if sp.Floorplan {
		plan, err = floorplan.Place(res.Scheme, res.Device)
		if err != nil {
			return nil, http.StatusUnprocessableEntity, fmt.Errorf("serve: floorplanning: %w", err)
		}
	}
	var buf bytes.Buffer
	if err := WriteResult(&buf, BuildResult(res, plan)); err != nil {
		return nil, http.StatusInternalServerError, err
	}
	s.obs.Emit("serve", "solve.done", obs.Str("key", key),
		obs.Int("total_frames", int64(res.Summary.Total)), obs.Int("bytes", int64(buf.Len())))
	return buf.Bytes(), http.StatusOK, nil
}

// healthState is the /healthz response body.
type healthState struct {
	Status    string `json:"status"` // "ok" or "draining"
	UptimeSec int64  `json:"uptimeSec"`
	Inflight  int64  `json:"inflight"`
	Queued    int64  `json:"queued"`
	Pending   int    `json:"pendingKeys"`
	Cache     struct {
		Entries   int   `json:"entries"`
		Hits      int64 `json:"hits"`
		Misses    int64 `json:"misses"`
		Evictions int64 `json:"evictions"`
	} `json:"cache"`
	Jobs    *jobsHealth    `json:"jobs,omitempty"`
	Store   *storeHealth   `json:"store,omitempty"`
	Cluster *clusterHealth `json:"cluster,omitempty"`
}

// jobsHealth summarizes the two-tier intake and async job table.
type jobsHealth struct {
	InteractiveQueued int            `json:"interactiveQueued"`
	BulkQueued        int            `json:"bulkQueued"`
	Running           int            `json:"running"`
	States            map[string]int `json:"states,omitempty"`
}

// storeHealth summarizes the persistent tier in /healthz.
type storeHealth struct {
	Keys            int   `json:"keys"`
	Hits            int64 `json:"hits"`
	CorruptBlobs    int64 `json:"corruptBlobs"`
	QuarantinedKeys int64 `json:"quarantinedKeys"`
	RecoveredBytes  int64 `json:"recoveredTruncatedBytes"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := healthState{Status: "ok", UptimeSec: int64(time.Since(s.started).Seconds())}
	if s.isDraining() {
		st.Status = "draining"
	}
	st.Inflight = s.lInflight.Value()
	st.Queued = s.lQueued.Value()
	st.Pending = s.flight.pending()
	st.Cache.Entries = s.cache.Len()
	snap := s.obs.Snapshot()
	st.Cache.Hits = snap.Counters["serve.cache_hits"]
	st.Cache.Misses = snap.Counters["serve.cache_misses"]
	st.Cache.Evictions = snap.Counters["serve.cache_evictions"]
	jh := &jobsHealth{
		InteractiveQueued: s.sched.QueueLen(jobs.Interactive),
		BulkQueued:        s.sched.QueueLen(jobs.Bulk),
		Running:           s.sched.Running(),
	}
	if counts := s.jobMgr.Counts(); len(counts) > 0 {
		jh.States = map[string]int{}
		for state, n := range counts {
			jh.States[string(state)] = n
		}
	}
	st.Jobs = jh
	if s.store != nil {
		st.Store = &storeHealth{
			Keys:            s.store.Len(),
			Hits:            snap.Counters["store.hits"],
			CorruptBlobs:    snap.Counters["store.corrupt_blobs"],
			QuarantinedKeys: snap.Counters["store.quarantined_keys"],
			RecoveredBytes:  s.store.Recovery().TruncatedBytes,
		}
	}
	if s.cluster != nil {
		st.Cluster = &clusterHealth{
			Self:     s.cluster.Self(),
			RingSize: s.cluster.Ring().Size(),
			Replicas: s.cluster.Replicas(),
			Peers:    s.cluster.Health(),
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if st.Status != "ok" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(st)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.obs.WriteMetrics(w)
}

// handleVars serves the flat instrument map as JSON, expvar-style.
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.obs.Snapshot().Flat())
}
