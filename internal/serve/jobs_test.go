package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"prpart/internal/core"
	"prpart/internal/design"
	"prpart/internal/serve"
	"prpart/internal/store"
)

type jobRecord struct {
	ID         string `json:"id"`
	Key        string `json:"key"`
	Tier       string `json:"tier"`
	State      string `json:"state"`
	HTTPStatus int    `json:"httpStatus"`
	Error      string `json:"error"`
}

func submitJob(t *testing.T, ts *httptest.Server, body []byte) (string, *http.Response) {
	t.Helper()
	resp, rb := postPath(t, ts, "/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job submit: status %d: %s", resp.StatusCode, rb)
	}
	var sub struct {
		ID    string `json:"id"`
		Key   string `json:"key"`
		State string `json:"state"`
	}
	if err := json.Unmarshal(rb, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.ID == "" || sub.Key == "" {
		t.Fatalf("submit response incomplete: %s", rb)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+sub.ID {
		t.Errorf("Location = %q, want /v1/jobs/%s", loc, sub.ID)
	}
	return sub.ID, resp
}

func getJob(t *testing.T, ts *httptest.Server, id string) (int, jobRecord) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rec jobRecord
	json.NewDecoder(resp.Body).Decode(&rec)
	return resp.StatusCode, rec
}

func waitJobState(t *testing.T, ts *httptest.Server, id, want string) jobRecord {
	t.Helper()
	var rec jobRecord
	waitCond(t, func() bool {
		_, rec = getJob(t, ts, id)
		return rec.State == want
	})
	return rec
}

func deleteJob(t *testing.T, ts *httptest.Server, id string) (int, jobRecord) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rec jobRecord
	json.NewDecoder(resp.Body).Decode(&rec)
	return resp.StatusCode, rec
}

// TestJobLifecycleDone: submit → poll to done → fetch the result, and
// require the async body to be byte-identical to the synchronous
// surface for the same spec.
func TestJobLifecycleDone(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := solveBody(t, design.PaperExample(), "")
	id, resp := submitJob(t, ts, body)
	syncKey := resp.Header.Get("X-Solve-Key")

	rec := waitJobState(t, ts, id, "done")
	if rec.Tier != "bulk" || rec.Key != syncKey {
		t.Errorf("record = %+v, want bulk tier with key %s", rec, syncKey)
	}

	resp2, rb := postPathGet(t, ts, "/v1/jobs/"+id+"/result")
	if resp2.StatusCode != 200 {
		t.Fatalf("result: %d: %s", resp2.StatusCode, rb)
	}
	r3, b3 := post(t, ts, body)
	if r3.StatusCode != 200 {
		t.Fatalf("sync solve: %d", r3.StatusCode)
	}
	if !bytes.Equal(rb, b3) {
		t.Error("async result bytes differ from synchronous solve")
	}
	if got := r3.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("sync solve after job X-Cache = %q, want hit (job must populate the cache)", got)
	}
}

func postPathGet(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// TestJobCancelWhileQueued: a job parked behind a busy worker is
// withdrawn before its solve ever starts.
func TestJobCancelWhileQueued(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	var jobRan atomic.Bool
	srv := serve.New(serve.Config{
		Workers: 1,
		Solver: func(ctx context.Context, d *design.Design, opts core.Options) (*core.Result, error) {
			if d.Name == "blocker" {
				entered <- struct{}{}
				<-release
				return core.RunContext(context.Background(), d, opts)
			}
			jobRan.Store(true)
			return core.RunContext(ctx, d, opts)
		},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	blocker := design.PaperExample()
	blocker.Name = "blocker"
	bb := solveBody(t, blocker, "")
	go func() {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(bb))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered // the lone worker is busy; anything submitted now queues

	id, _ := submitJob(t, ts, solveBody(t, design.VideoReceiver(), `{"budget": {"clb": 6800, "bram": 64, "dsp": 150}}`))
	if _, rec := getJob(t, ts, id); rec.State != "queued" {
		t.Fatalf("job state = %q before cancel, want queued", rec.State)
	}
	code, rec := deleteJob(t, ts, id)
	if code != 200 || rec.State != "canceled" {
		t.Fatalf("cancel: %d %+v, want 200 canceled", code, rec)
	}
	close(release)
	// The canceled job's solve never runs, even after the worker frees.
	time.Sleep(20 * time.Millisecond)
	if jobRan.Load() {
		t.Error("canceled-while-queued job still ran its solve")
	}
	// Its result endpoint reports the cancellation.
	resp, rb := postPathGet(t, ts, "/v1/jobs/"+id+"/result")
	if resp.StatusCode == 200 || resp.StatusCode == http.StatusAccepted {
		t.Errorf("canceled job result: %d (%s), want an error status", resp.StatusCode, rb)
	}
}

// TestJobCancelMidSolve: DELETE on a running job cancels its context;
// the job transitions to canceled, not failed.
func TestJobCancelMidSolve(t *testing.T) {
	entered := make(chan struct{}, 1)
	srv := serve.New(serve.Config{
		Workers: 1,
		Solver: func(ctx context.Context, d *design.Design, opts core.Options) (*core.Result, error) {
			entered <- struct{}{}
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	id, _ := submitJob(t, ts, solveBody(t, design.PaperExample(), ""))
	<-entered
	if _, rec := getJob(t, ts, id); rec.State != "running" {
		t.Fatalf("job state = %q mid-solve, want running", rec.State)
	}
	if code, _ := deleteJob(t, ts, id); code != 200 {
		t.Fatalf("cancel: %d", code)
	}
	rec := waitJobState(t, ts, id, "canceled")
	if rec.State != "canceled" {
		t.Fatalf("record = %+v", rec)
	}
	// Cancelling again is a no-op, not an error.
	if code, rec := deleteJob(t, ts, id); code != 200 || rec.State != "canceled" {
		t.Errorf("second cancel: %d %+v", code, rec)
	}
}

// TestJobPollAfterRestart: finished jobs survive a daemon restart — the
// record comes back from the store, and the result body is served
// byte-identically through the store tier under the job's solve key.
func TestJobPollAfterRestart(t *testing.T) {
	mfs := store.NewMemFS()
	body := solveBody(t, design.PaperExample(), "")

	st1 := openStore(t, mfs, nil)
	srv1 := serve.New(serve.Config{Workers: 2, Store: st1})
	ts1 := httptest.NewServer(srv1.Handler())
	id, _ := submitJob(t, ts1, body)
	waitJobState(t, ts1, id, "done")
	_, want := postPathGet(t, ts1, "/v1/jobs/"+id+"/result")
	ts1.Close()
	srv1.Close()
	st1.Close()

	st2 := openStore(t, mfs, nil)
	defer st2.Close()
	srv2 := serve.New(serve.Config{Workers: 2, Store: st2})
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	code, rec := getJob(t, ts2, id)
	if code != 200 || rec.State != "done" {
		t.Fatalf("poll after restart: %d %+v, want done record", code, rec)
	}
	resp, got := postPathGet(t, ts2, "/v1/jobs/"+id+"/result")
	if resp.StatusCode != 200 {
		t.Fatalf("result after restart: %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(want, got) {
		t.Error("restarted daemon serves different result bytes")
	}
	// Cancel of a terminal persisted job is a no-op.
	if code, rec := deleteJob(t, ts2, id); code != 200 || rec.State != "done" {
		t.Errorf("cancel of persisted done job: %d %+v", code, rec)
	}
}

// TestJobInFlightLostOnRestart: a job that was still queued or running
// when the daemon died is gone after restart — 404, the client's cue to
// resubmit (idempotent: the resubmit hits the store if the solve had
// finished).
func TestJobInFlightLostOnRestart(t *testing.T) {
	mfs := store.NewMemFS()
	release := make(chan struct{})
	entered := make(chan struct{}, 1)

	st1 := openStore(t, mfs, nil)
	srv1 := serve.New(serve.Config{Workers: 1, Solver: blockingSolver(release, entered, nil)})
	ts1 := httptest.NewServer(srv1.Handler())
	id, _ := submitJob(t, ts1, solveBody(t, design.PaperExample(), ""))
	<-entered // running, never finishes
	ts1.Close()
	srv1.Close()
	close(release)
	st1.Close()

	st2 := openStore(t, mfs, nil)
	defer st2.Close()
	srv2 := serve.New(serve.Config{Workers: 1, Store: st2})
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	if code, _ := getJob(t, ts2, id); code != http.StatusNotFound {
		t.Fatalf("poll of mid-run-killed job: %d, want 404", code)
	}
}

// TestJobSubmitBackpressure: a full bulk tier refuses submissions with
// 503 and a Retry-After; an unknown id polls as 404.
func TestJobSubmitBackpressure(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	srv := serve.New(serve.Config{
		Workers: 1, BulkDepth: 2,
		Solver: blockingSolver(release, entered, nil),
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	mk := func(i int) []byte {
		d := design.PaperExample()
		d.Name = fmt.Sprintf("job-%d", i)
		return solveBody(t, d, "")
	}
	submitJob(t, ts, mk(0)) // running
	<-entered
	submitJob(t, ts, mk(1)) // queued: tier now at its admitted bound of 2

	resp, rb := postPath(t, ts, "/v1/jobs", mk(2))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-depth submit: %d (%s), want 503", resp.StatusCode, rb)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	close(release)

	if code, _ := getJob(t, ts, "j-ffffffffffffffff"); code != http.StatusNotFound {
		t.Errorf("unknown job id: %d, want 404", code)
	}
}

// TestJobList: GET /v1/jobs pages through the live job table newest
// first, the state filter selects one lifecycle state, and malformed
// query parameters are 400s, not silently-defaulted.
func TestJobList(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	srv := serve.New(serve.Config{Workers: 1, Solver: blockingSolver(release, entered, nil)})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	mk := func(i int) []byte {
		d := design.PaperExample()
		d.Name = fmt.Sprintf("list-%d", i)
		return solveBody(t, d, "")
	}
	ids := make([]string, 3)
	ids[0], _ = submitJob(t, ts, mk(0))
	<-entered // job 0 running on the lone worker; 1 and 2 queue behind it
	ids[1], _ = submitJob(t, ts, mk(1))
	ids[2], _ = submitJob(t, ts, mk(2))

	type listResp struct {
		Jobs   []jobRecord `json:"jobs"`
		Total  int         `json:"total"`
		Offset int         `json:"offset"`
		Limit  int         `json:"limit"`
	}
	list := func(query string) (int, listResp) {
		t.Helper()
		resp, rb := postPathGet(t, ts, "/v1/jobs"+query)
		var lr listResp
		if resp.StatusCode == 200 {
			if err := json.Unmarshal(rb, &lr); err != nil {
				t.Fatalf("list %q: %v in %s", query, err, rb)
			}
		}
		return resp.StatusCode, lr
	}

	if code, lr := list(""); code != 200 || lr.Total != 3 || len(lr.Jobs) != 3 {
		t.Fatalf("list all = %d total=%d n=%d, want 200/3/3", code, lr.Total, len(lr.Jobs))
	}
	if code, lr := list("?state=running"); code != 200 || lr.Total != 1 || lr.Jobs[0].ID != ids[0] {
		t.Errorf("list running = %d %+v, want exactly job %s", code, lr, ids[0])
	}
	if code, lr := list("?state=queued"); code != 200 || lr.Total != 2 {
		t.Errorf("list queued = %d total=%d, want 200/2", code, lr.Total)
	}
	if code, _ := list("?state=bogus"); code != http.StatusBadRequest {
		t.Errorf("bogus state = %d, want 400", code)
	}

	close(release)
	for _, id := range ids {
		waitJobState(t, ts, id, "done")
	}
	if code, lr := list("?state=done"); code != 200 || lr.Total != 3 {
		t.Errorf("list done = %d total=%d, want 200/3", code, lr.Total)
	}
	// An empty match is an empty array, never null.
	if _, rb := postPathGet(t, ts, "/v1/jobs?state=failed"); !bytes.Contains(rb, []byte(`"jobs":[]`)) {
		t.Errorf("empty listing = %s, want \"jobs\":[]", rb)
	}
	// Pagination: total counts matches before slicing; the pages tile
	// the sorted list without overlap.
	code, p1 := list("?limit=2")
	if code != 200 || p1.Total != 3 || len(p1.Jobs) != 2 || p1.Limit != 2 {
		t.Fatalf("page 1 = %d %+v, want 2 of 3", code, p1)
	}
	code, p2 := list("?limit=2&offset=2")
	if code != 200 || p2.Total != 3 || len(p2.Jobs) != 1 || p2.Offset != 2 {
		t.Fatalf("page 2 = %d %+v, want 1 of 3", code, p2)
	}
	seen := map[string]bool{}
	for _, r := range append(p1.Jobs, p2.Jobs...) {
		seen[r.ID] = true
	}
	if len(seen) != 3 {
		t.Errorf("pages overlap or drop: %v", seen)
	}
	for _, q := range []string{"?limit=0", "?limit=-1", "?limit=abc", "?offset=-1", "?offset=abc"} {
		if code, _ := list(q); code != http.StatusBadRequest {
			t.Errorf("list %q = %d, want 400", q, code)
		}
	}
	// An offset past the end is a valid empty page.
	if code, lr := list("?offset=50"); code != 200 || lr.Total != 3 || len(lr.Jobs) != 0 {
		t.Errorf("past-end offset = %d %+v, want empty 200", code, lr)
	}
}

// TestJobResultWhileRunning: polling the result of a live job returns
// 202 with the record, not an error.
func TestJobResultWhileRunning(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	srv := serve.New(serve.Config{Workers: 1, Solver: blockingSolver(release, entered, nil)})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	id, _ := submitJob(t, ts, solveBody(t, design.PaperExample(), ""))
	<-entered
	resp, rb := postPathGet(t, ts, "/v1/jobs/"+id+"/result")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("result of running job: %d (%s), want 202", resp.StatusCode, rb)
	}
	var rec jobRecord
	if err := json.Unmarshal(rb, &rec); err != nil || rec.State != "running" {
		t.Errorf("202 body = %s, want the running record", rb)
	}
	close(release)
	waitJobState(t, ts, id, "done")
}
