package serve_test

import (
	"bytes"
	"context"
	"math/rand"
	"net/http/httptest"
	"testing"

	"prpart/internal/core"
	"prpart/internal/design"
	"prpart/internal/faults"
	"prpart/internal/floorplan"
	"prpart/internal/obs"
	"prpart/internal/serve"
	"prpart/internal/store"
)

// chaosSpecs is the request mix the chaos harness replays every cycle:
// distinct cache keys across both example designs and several option
// variants, so the store carries a realistic population of blobs.
func chaosSpecs(t *testing.T) [][]byte {
	t.Helper()
	budget := `"budget": {"clb": 6800, "bram": 64, "dsp": 150}`
	return [][]byte{
		solveBody(t, design.VideoReceiver(), `{`+budget+`}`),
		solveBody(t, design.VideoReceiver(), `{`+budget+`, "greedy": true}`),
		solveBody(t, design.VideoReceiver(), `{`+budget+`, "noQuantize": true}`),
		solveBody(t, design.VideoReceiver(), `{"device": "FX70T", `+budget+`, "floorplan": true}`),
		solveBody(t, design.PaperExample(), ""),
		solveBody(t, design.PaperExample(), `{"greedy": true}`),
	}
}

// referenceBytes computes what `prpart -json` would print for a request
// body, straight through the core flow with no serving layer at all.
func referenceBytes(t *testing.T, body []byte) []byte {
	t.Helper()
	sp, _, err := serve.DecodeRequest(body)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.RunContext(context.Background(), sp.Design, sp.CoreOptions(1, nil))
	if err != nil {
		t.Fatal(err)
	}
	var plan *floorplan.Plan
	if sp.Floorplan {
		if plan, err = floorplan.Place(res.Scheme, res.Device); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := serve.WriteResult(&buf, serve.BuildResult(res, plan)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestChaosKillRestartByteIdentity is the crash-safety end-to-end: a
// daemon backed by the persistent store is killed (power loss with torn
// tails) and restarted for several cycles while every disk operation
// runs through a seeded fault injector. After every recovery the ledger
// must verify end to end, every key still in the store must serve bytes
// identical to `prpart -json`, and no request may ever receive corrupt
// bytes. The same seed must reproduce the same injected faults and the
// same recovery counters.
func TestChaosKillRestartByteIdentity(t *testing.T) {
	bodies := chaosSpecs(t)
	refs := make([][]byte, len(bodies))
	for i, b := range bodies {
		refs[i] = referenceBytes(t, b)
	}

	const cycles = 6
	run := func(seed int64) (map[string]int64, faults.IOStats) {
		o := obs.New()
		mfs := store.NewMemFS()
		inj := faults.NewIO(seed, faults.IORates{ShortWrite: 0.06, ReadCorrupt: 0.04, SyncErr: 0.06, RenameErr: 0.04})
		ffs := store.NewFaultFS(mfs, inj)
		crashRng := rand.New(rand.NewSource(seed * 17))
		keys := make([]string, len(bodies))

		for cycle := 0; cycle < cycles; cycle++ {
			st, err := store.Open(store.Config{Dir: "/d", FS: ffs, Obs: o})
			if err != nil {
				t.Fatalf("cycle %d: open store: %v", cycle, err)
			}
			srv := serve.New(serve.Config{Workers: 2, Obs: o, Store: st})
			ts := httptest.NewServer(srv.Handler())
			for i, body := range bodies {
				resp, b := post(t, ts, body)
				if resp.StatusCode != 200 {
					t.Fatalf("cycle %d, spec %d: status %d: %s", cycle, i, resp.StatusCode, b)
				}
				if !bytes.Equal(b, refs[i]) {
					t.Fatalf("cycle %d, spec %d (X-Cache %s): served bytes differ from prpart -json",
						cycle, i, resp.Header.Get("X-Cache"))
				}
				keys[i] = resp.Header.Get("X-Solve-Key")
			}
			ts.Close()
			srv.Close()
			st.Close()

			// Kill -9: every file reverts to its synced content plus a
			// random prefix of whatever was still in flight.
			mfs.Crash(func(path string, unsynced int) int { return crashRng.Intn(unsynced + 1) })

			// Recovery audit on the bare disk, no fault injection: the
			// ledger must verify and every surviving key must hold
			// exactly the canonical bytes.
			audit, err := store.Open(store.Config{Dir: "/d", FS: mfs, Obs: o})
			if err != nil {
				t.Fatalf("cycle %d: recovery open: %v", cycle, err)
			}
			if err := audit.VerifyLedger(); err != nil {
				t.Fatalf("cycle %d: ledger after crash: %v", cycle, err)
			}
			for i, k := range keys {
				if b, ok := audit.Get(k); ok && !bytes.Equal(b, refs[i]) {
					t.Fatalf("cycle %d: store holds wrong bytes for spec %d after recovery", cycle, i)
				}
			}
			audit.Close()
		}
		return o.Snapshot().Counters, inj.Stats()
	}

	c1, s1 := run(11)
	c2, s2 := run(11)
	if s1 != s2 {
		t.Errorf("same seed, different injected faults:\n%+v\n%+v", s1, s2)
	}
	if s1.Total() == 0 {
		t.Error("chaos run injected zero faults — rates or plumbing broken")
	}
	if len(c1) != len(c2) {
		t.Errorf("counter sets differ in size: %d vs %d", len(c1), len(c2))
	}
	for name, v := range c1 {
		if c2[name] != v {
			t.Errorf("counter %s: %d vs %d across identical seeded runs", name, v, c2[name])
		}
	}
}
