package serve_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"prpart/internal/core"
	"prpart/internal/design"
	"prpart/internal/serve"
)

func postCheck(t *testing.T, ts *httptest.Server, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/solve?check=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestCheckQueryVerifiesResult opts a single request into verification
// and requires the X-Check: pass marker on the verified response.
func TestCheckQueryVerifiesResult(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := solveBody(t, design.VideoReceiver(), `{"budget": {"clb": 6800, "bram": 64, "dsp": 150}}`)
	resp, b := postCheck(t, ts, body)
	if resp.StatusCode != 200 {
		t.Fatalf("checked solve: status %d: %s", resp.StatusCode, b)
	}
	if got := resp.Header.Get("X-Check"); got != "pass" {
		t.Errorf("X-Check = %q, want pass", got)
	}

	// An unchecked request must not carry the marker.
	resp2, b2 := post(t, ts, body)
	if resp2.StatusCode != 200 {
		t.Fatalf("unchecked solve: status %d: %s", resp2.StatusCode, b2)
	}
	if got := resp2.Header.Get("X-Check"); got != "" {
		t.Errorf("unchecked X-Check = %q, want empty", got)
	}
}

// TestCheckQueryBypassesCacheRead primes the cache with an unchecked
// solve, then asserts ?check=1 re-solves (the verification must actually
// run) while returning byte-identical content.
func TestCheckQueryBypassesCacheRead(t *testing.T) {
	var calls atomic.Int64
	srv := serve.New(serve.Config{
		Workers: 2,
		Solver: func(ctx context.Context, d *design.Design, opts core.Options) (*core.Result, error) {
			calls.Add(1)
			return core.RunContext(ctx, d, opts)
		},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := solveBody(t, design.VideoReceiver(), `{"budget": {"clb": 6800, "bram": 64, "dsp": 150}}`)
	_, b1 := post(t, ts, body)
	if got := calls.Load(); got != 1 {
		t.Fatalf("solver calls after priming = %d, want 1", got)
	}
	resp, b2 := postCheck(t, ts, body)
	if resp.StatusCode != 200 {
		t.Fatalf("checked solve: status %d: %s", resp.StatusCode, b2)
	}
	if got := resp.Header.Get("X-Cache"); got == "hit" {
		t.Error("checked request was served from cache; the oracle never ran")
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("solver calls after checked request = %d, want 2", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("checked and unchecked bodies differ for the same key")
	}
}

// TestServerWideCheckRejectsCorruptResult runs a solver stub that
// corrupts the reported cost and requires the serving path to refuse the
// result with a 500 naming the violated rule.
func TestServerWideCheckRejectsCorruptResult(t *testing.T) {
	srv := serve.New(serve.Config{
		Workers: 2,
		Check:   true,
		Solver: func(ctx context.Context, d *design.Design, opts core.Options) (*core.Result, error) {
			res, err := core.RunContext(ctx, d, opts)
			if err != nil {
				return nil, err
			}
			res.Summary.Total += 7 // lie about the cost
			return res, nil
		},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := solveBody(t, design.VideoReceiver(), `{"budget": {"clb": 6800, "bram": 64, "dsp": 150}}`)
	resp, b := post(t, ts, body)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d for a corrupt result, want 500: %s", resp.StatusCode, b)
	}
	if !strings.Contains(string(b), "cost.total") {
		t.Errorf("error body does not name the violated rule: %s", b)
	}

	// The refused result must not have been cached.
	resp2, _ := post(t, ts, body)
	if got := resp2.Header.Get("X-Cache"); got == "hit" {
		t.Error("a result that failed verification was served from cache")
	}
}

// TestServerWideCheckAcceptsHonestResult is the control: with Check on
// and the real solver, everything passes and gets the marker.
func TestServerWideCheckAcceptsHonestResult(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 2, Check: true})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := solveBody(t, design.VideoReceiver(), `{"budget": {"clb": 6800, "bram": 64, "dsp": 150}}`)
	resp, b := post(t, ts, body)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	if got := resp.Header.Get("X-Check"); got != "pass" {
		t.Errorf("X-Check = %q, want pass", got)
	}
}
