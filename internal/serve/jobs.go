package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"prpart/internal/jobs"
	"prpart/internal/obs"
	"prpart/internal/store"
)

// The async job API:
//
//	POST   /v1/jobs             submit a solve, get an id back (202)
//	GET    /v1/jobs             list live jobs (state=, limit=, offset=)
//	GET    /v1/jobs/{id}        poll the job record
//	GET    /v1/jobs/{id}/result fetch the result body once done
//	DELETE /v1/jobs/{id}        cancel (queued: withdrawn; running: ctx cancel)
//
// Jobs always run on the bulk tier. Terminal records persist through
// the solve store under "job:"+id, so a restarted daemon still answers
// polls for finished jobs; the result body itself lives under the
// job's solve key exactly like a synchronous solve's, so it is served
// from the store tier byte-identically. Jobs that were queued or
// running when the daemon died are simply gone after restart (404):
// the client's resubmit hits the cache/store if the solve finished, or
// re-runs it if not — either way no work is lost or duplicated.

// jobSubmitResponse is the wire schema of a 202 from POST /v1/jobs.
type jobSubmitResponse struct {
	ID    string `json:"id"`
	Key   string `json:"key"`
	State string `json:"state"`
}

// handleJobSubmit is POST /v1/jobs: the body is a single solve request
// (same schema as /v1/solve), the response a job id to poll.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	s.cRequests.Inc()
	if s.isDraining() {
		s.retryAfter(w, time.Second)
		writeError(w, http.StatusServiceUnavailable, errors.New("serve: shutting down"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		status := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, fmt.Errorf("serve: reading body: %w", err))
		return
	}
	sp, meta, err := DecodeRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key, err := sp.Key()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	urlCheck := r.URL.Query().Get("check") == "1"
	docheck := s.cfg.Check || urlCheck
	timeout := meta.Timeout
	if timeout == 0 {
		timeout = s.cfg.DefaultTimeout
	}

	job, err := s.jobMgr.Submit(s.baseCtx, key, jobs.Bulk, func(ctx context.Context) ([]byte, int, error) {
		return s.runJobSolve(ctx, key, sp, timeout, urlCheck, docheck)
	})
	if err != nil {
		if errors.Is(err, jobs.ErrTierFull) {
			s.cRejected.Inc()
			s.retryAfter(w, s.sched.EstimateWait(jobs.Bulk))
			writeError(w, http.StatusServiceUnavailable, errBulkQueueFull)
			return
		}
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	s.cJobsSubmitted.Inc()
	w.Header().Set("Location", "/v1/jobs/"+job.ID())
	w.Header().Set("X-Solve-Key", key)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(jobSubmitResponse{ID: job.ID(), Key: key, State: string(job.State())})
}

// runJobSolve is the RunFunc of an async job. It executes on a
// scheduler worker, which forces one asymmetry with the synchronous
// path: a worker must never block waiting on a flight led by a fn that
// is itself still queued — with every worker waiting, nothing would
// ever run the leader (deadlock). So a job that loses the flight race
// leaves immediately and solves independently; the duplicate solve is
// idempotent (same key, same bytes) and the window is a rare same-key
// overlap between an async job and an in-flight synchronous solve.
func (s *Server) runJobSolve(ctx context.Context, key string, sp *SolveSpec, timeout time.Duration, urlCheck, docheck bool) ([]byte, int, error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	if !urlCheck {
		if body, _, ok := s.lookup(ctx, key); ok {
			return body, http.StatusOK, nil
		}
	}
	fkey := flightKey(key, docheck)
	call, leader := s.flight.join(s.baseCtx, fkey)
	if leader {
		// Leading is safe: the solve runs inline on this worker, and
		// synchronous followers coalesce onto the job's result.
		s.runLeader(ctx, fkey, key, call, sp, docheck)
		<-call.done
		return call.body, call.status, call.err
	}
	s.flight.leave(call)
	body, status, err := s.solveGuarded(ctx, key, sp, docheck)
	if err != nil && errors.Is(context.Cause(ctx), jobs.ErrShed) {
		status, err = http.StatusServiceUnavailable, errShedForLatency
		s.cBulkShed.Inc()
	}
	if err == nil {
		s.cache.Put(key, body)
		s.persist(key, body, docheck)
	}
	return body, status, err
}

// jobListResponse is the wire schema of GET /v1/jobs.
type jobListResponse struct {
	Jobs   []jobs.Record `json:"jobs"`
	Total  int           `json:"total"`
	Offset int           `json:"offset"`
	Limit  int           `json:"limit"`
}

// Listing page-size bounds: the default keeps a bare GET /v1/jobs
// cheap, the cap bounds response size however large limit= claims.
const (
	jobListDefaultLimit = 100
	jobListMaxLimit     = 1000
)

// handleJobList is GET /v1/jobs: a paginated admin view of the live
// job table, newest first. Query parameters: state= filters to one
// lifecycle state (queued|running|done|failed|canceled), limit= and
// offset= page through the filtered list. total counts every match
// before pagination, so a client can walk pages without racing its own
// arithmetic.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var state jobs.State
	if v := q.Get("state"); v != "" {
		switch jobs.State(v) {
		case jobs.StateQueued, jobs.StateRunning, jobs.StateDone, jobs.StateFailed, jobs.StateCanceled:
			state = jobs.State(v)
		default:
			writeError(w, http.StatusBadRequest, fmt.Errorf("serve: unknown state %q", v))
			return
		}
	}
	limit := jobListDefaultLimit
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad limit %q", v))
			return
		}
		limit = min(n, jobListMaxLimit)
	}
	offset := 0
	if v := q.Get("offset"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad offset %q", v))
			return
		}
		offset = n
	}
	recs, total := s.jobMgr.List(state, offset, limit)
	if recs == nil {
		recs = []jobs.Record{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(jobListResponse{Jobs: recs, Total: total, Offset: offset, Limit: limit})
}

// handleJobGet is GET /v1/jobs/{id}: the job record, live or persisted.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	_, rec, ok := s.jobMgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, jobs.ErrNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rec)
}

// handleJobResult is GET /v1/jobs/{id}/result: the solve body for done
// jobs (resolved through the cache/store tiers after an eviction or
// restart), the stored failure for failed/canceled ones, and 202 with
// the record while the job is still queued or running.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	job, rec, ok := s.jobMgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, jobs.ErrNotFound)
		return
	}
	w.Header().Set("X-Solve-Key", rec.Key)
	switch rec.State {
	case jobs.StateDone:
		if job != nil {
			if body := job.Body(); body != nil {
				s.respond(w, "job", body)
				return
			}
		}
		// Evicted or from a previous daemon life: the body lives under
		// the solve key in the ordinary result tiers (including the
		// cluster — another node may hold the shard after a rebalance).
		if b, tier, ok := s.lookup(r.Context(), rec.Key); ok {
			s.respond(w, tier, b)
			return
		}
		writeError(w, http.StatusGone, errors.New("serve: job finished but its result is no longer stored; resubmit the solve"))
	case jobs.StateFailed, jobs.StateCanceled:
		status := rec.HTTPStatus
		if status == 0 || status == http.StatusOK {
			status = http.StatusInternalServerError
		}
		msg := rec.Error
		if msg == "" {
			msg = string(rec.State)
		}
		writeError(w, status, fmt.Errorf("serve: job %s: %s", rec.State, msg))
	default: // queued, running
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(rec)
	}
}

// handleJobCancel is DELETE /v1/jobs/{id}.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	rec, err := s.jobMgr.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rec)
}

// persistJob writes a terminal job record through to the store under a
// "job:" key — namespaced away from solve keys, which are always
// "sha256:..." strings. Best-effort like persist.
func (s *Server) persistJob(rec jobs.Record) {
	if s.store == nil {
		return
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	if err := s.store.Put("job:"+rec.ID, b, store.VerdictUnchecked); err != nil {
		s.obs.Emit("serve", "store.job_put_error", obs.Str("id", rec.ID), obs.Str("err", err.Error()))
	}
}

// loadJob resolves a job id from the store (evicted, or from a
// previous daemon life).
func (s *Server) loadJob(id string) (jobs.Record, bool) {
	if s.store == nil {
		return jobs.Record{}, false
	}
	b, ok := s.store.Get("job:" + id)
	if !ok {
		return jobs.Record{}, false
	}
	var rec jobs.Record
	if json.Unmarshal(b, &rec) != nil || rec.V != jobs.RecordVersion || rec.ID != id {
		return jobs.Record{}, false
	}
	return rec, true
}
