package serve_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"prpart/internal/core"
	"prpart/internal/design"
	"prpart/internal/obs"
	"prpart/internal/serve"
	"prpart/internal/store"
)

func openStore(t *testing.T, mfs *store.MemFS, o *obs.Obs) *store.Store {
	t.Helper()
	st, err := store.Open(store.Config{Dir: "/data", FS: mfs, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStoreTierServesAfterRestart: a daemon with a persistent store
// answers previously-solved keys byte-identically after a full restart,
// without re-running the search.
func TestStoreTierServesAfterRestart(t *testing.T) {
	mfs := store.NewMemFS()
	body := solveBody(t, design.VideoReceiver(), `{"budget": {"clb": 6800, "bram": 64, "dsp": 150}}`)

	st1 := openStore(t, mfs, nil)
	srv1 := serve.New(serve.Config{Workers: 2, Store: st1})
	ts1 := httptest.NewServer(srv1.Handler())
	r1, b1 := post(t, ts1, body)
	if r1.StatusCode != 200 {
		t.Fatalf("first boot solve: %d: %s", r1.StatusCode, b1)
	}
	ts1.Close()
	srv1.Close()
	st1.Close()

	var calls atomic.Int64
	o := obs.New()
	st2 := openStore(t, mfs, o)
	defer st2.Close()
	srv2 := serve.New(serve.Config{
		Workers: 2, Obs: o, Store: st2,
		Solver: func(ctx context.Context, d *design.Design, opts core.Options) (*core.Result, error) {
			calls.Add(1)
			return core.RunContext(ctx, d, opts)
		},
	})
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	r2, b2 := post(t, ts2, body)
	if r2.StatusCode != 200 {
		t.Fatalf("post-restart solve: %d: %s", r2.StatusCode, b2)
	}
	if got := r2.Header.Get("X-Cache"); got != "store" {
		t.Errorf("X-Cache = %q, want store", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("restarted daemon served different bytes:\n--- before\n%s--- after\n%s", b1, b2)
	}
	if n := calls.Load(); n != 0 {
		t.Errorf("solver ran %d times for a store-resident key", n)
	}
	// The store tier populates the memory tier: a third request is a
	// plain cache hit.
	r3, _ := post(t, ts2, body)
	if got := r3.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("third request X-Cache = %q, want hit", got)
	}
	if got := o.Snapshot().Counters["serve.store_serves"]; got != 1 {
		t.Errorf("store_serves = %d, want 1", got)
	}
}

// TestStoreCorruptionFallsThroughToSolve: a daemon restarted over a
// damaged blob area must quarantine the bad blob and transparently
// re-solve — clients never see corrupt bytes, only a slower miss.
func TestStoreCorruptionFallsThroughToSolve(t *testing.T) {
	mfs := store.NewMemFS()
	body := solveBody(t, design.VideoReceiver(), `{"budget": {"clb": 6800, "bram": 64, "dsp": 150}}`)

	st1 := openStore(t, mfs, nil)
	srv1 := serve.New(serve.Config{Workers: 2, Store: st1})
	ts1 := httptest.NewServer(srv1.Handler())
	r1, b1 := post(t, ts1, body)
	if r1.StatusCode != 200 {
		t.Fatalf("seed solve: %d: %s", r1.StatusCode, b1)
	}
	ts1.Close()
	srv1.Close()
	st1.Close()

	// Bit rot on the only stored blob.
	blobs, err := mfs.ReadDir("/data/blobs")
	if err != nil || len(blobs) != 1 {
		t.Fatalf("blobs = %v, %v", blobs, err)
	}
	if err := mfs.Flip("/data/blobs/"+blobs[0], 99); err != nil {
		t.Fatal(err)
	}

	o := obs.New()
	st2 := openStore(t, mfs, o)
	defer st2.Close()
	srv2 := serve.New(serve.Config{Workers: 2, Obs: o, Store: st2})
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	r2, b2 := post(t, ts2, body)
	if r2.StatusCode != 200 {
		t.Fatalf("solve over corrupt store: %d: %s", r2.StatusCode, b2)
	}
	if got := r2.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("X-Cache = %q, want miss (store must not serve corrupt bytes)", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("re-solved bytes differ from the original solve")
	}
	snap := o.Snapshot()
	if snap.Counters["store.corrupt_blobs"] != 1 {
		t.Errorf("corrupt_blobs = %d, want 1", snap.Counters["store.corrupt_blobs"])
	}
	q, err := st2.Quarantined()
	if err != nil || len(q) != 1 {
		t.Errorf("quarantine = %v, %v; want the damaged blob", q, err)
	}
	if err := st2.VerifyLedger(); err != nil {
		t.Error(err)
	}
}

// TestSolverPanicReturns500: a panicking solver downs one request with
// a clean 500 and a counter tick; the daemon keeps serving.
func TestSolverPanicReturns500(t *testing.T) {
	o := obs.New()
	srv := serve.New(serve.Config{
		Workers: 1, Obs: o,
		Solver: func(ctx context.Context, d *design.Design, opts core.Options) (*core.Result, error) {
			if d.Name == design.VideoReceiver().Name {
				panic("solver bug: index out of range")
			}
			return core.RunContext(ctx, d, opts)
		},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	r1, b1 := post(t, ts, solveBody(t, design.VideoReceiver(), `{"budget": {"clb": 6800, "bram": 64, "dsp": 150}}`))
	if r1.StatusCode != 500 {
		t.Fatalf("panicking solve: status %d: %s", r1.StatusCode, b1)
	}
	if !strings.Contains(string(b1), "panicked") {
		t.Errorf("500 body does not mention the panic: %s", b1)
	}
	if got := o.Snapshot().Counters["serve.solver_panics"]; got != 1 {
		t.Errorf("solver_panics = %d, want 1", got)
	}
	// The worker slot was released during unwind: the next request
	// (different design, healthy path) still solves.
	r2, b2 := post(t, ts, solveBody(t, design.PaperExample(), ""))
	if r2.StatusCode != 200 {
		t.Fatalf("solve after panic: %d: %s", r2.StatusCode, b2)
	}
}

// TestDeadlineAwareAdmission: when every worker is busy and the
// smoothed solve time already exceeds a request's deadline, the request
// is refused up front with 429 + Retry-After instead of queueing to a
// guaranteed 504.
func TestDeadlineAwareAdmission(t *testing.T) {
	o := obs.New()
	block := make(chan struct{})
	srv := serve.New(serve.Config{
		Workers: 1, Obs: o,
		Solver: func(ctx context.Context, d *design.Design, opts core.Options) (*core.Result, error) {
			if d.Name == design.VideoReceiver().Name {
				// Long enough to dominate the EWMA by orders of magnitude
				// over a 1 ms deadline.
				time.Sleep(150 * time.Millisecond)
				return core.RunContext(ctx, d, opts)
			}
			select { // parks the lone worker until the test releases it
			case <-block:
			case <-ctx.Done():
			}
			return core.RunContext(context.Background(), d, opts)
		},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Seed the solve-time estimate with one slow completed solve.
	if r, b := post(t, ts, solveBody(t, design.VideoReceiver(), "")); r.StatusCode != 200 {
		t.Fatalf("seed solve: %d: %s", r.StatusCode, b)
	}
	// Park the only worker.
	parked := make(chan struct{})
	go func() {
		post(t, ts, solveBody(t, design.PaperExample(), ""))
		close(parked)
	}()
	for srv.Inflight() == 0 {
		time.Sleep(time.Millisecond)
	}

	// A request that cannot possibly finish within 1 ms is refused now.
	r, b := post(t, ts, solveBody(t, design.PaperExample(), `{"maxFirstMoves": 3, "timeoutMs": 1}`))
	if r.StatusCode != 429 {
		t.Fatalf("hopeless-deadline request: status %d: %s", r.StatusCode, b)
	}
	if r.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if !strings.Contains(string(b), "deadline") {
		t.Errorf("429 body does not explain the deadline rejection: %s", b)
	}
	if got := o.Snapshot().Counters["serve.rejected_deadline"]; got != 1 {
		t.Errorf("rejected_deadline = %d, want 1", got)
	}
	close(block)
	<-parked
}

// TestBulkShedForLatencySensitive: when admission is full, an arriving
// latency-sensitive request cancels the oldest running bulk solve and
// takes its capacity; the shed bulk client gets a retryable 503.
func TestBulkShedForLatencySensitive(t *testing.T) {
	o := obs.New()
	var entered atomic.Int64
	srv := serve.New(serve.Config{
		Workers: 1, QueueDepth: 1, Obs: o,
		Solver: func(ctx context.Context, d *design.Design, opts core.Options) (*core.Result, error) {
			if d.Name == design.VideoReceiver().Name {
				entered.Add(1)
				<-ctx.Done() // bulk work runs until cancelled
				return nil, ctx.Err()
			}
			return core.RunContext(ctx, d, opts)
		},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Two bulk solves (distinct keys) fill both admission slots: the
	// first occupies the lone worker and runs until cancelled, the
	// second — a quick real solve — queues behind it.
	type reply struct {
		status int
		body   string
	}
	bulk1 := make(chan reply, 1)
	go func() {
		r, b := post(t, ts, solveBody(t, design.VideoReceiver(), `{"bulk": true}`))
		bulk1 <- reply{r.StatusCode, string(b)}
	}()
	for entered.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	bulk2 := make(chan reply, 1)
	go func() {
		r, b := post(t, ts, solveBody(t, design.PaperExample(), `{"bulk": true}`))
		bulk2 <- reply{r.StatusCode, string(b)}
	}()
	for srv.Queued() == 0 {
		time.Sleep(time.Millisecond)
	}

	// Admission is now full: a plain (latency-sensitive) request must
	// shed bulk #1 — the oldest — and complete. Bulk #2, younger, is
	// spared and finishes normally once the worker frees up.
	r, b := post(t, ts, solveBody(t, design.PaperExample(), `{"maxFirstMoves": 3}`))
	if r.StatusCode != 200 {
		t.Fatalf("latency-sensitive request: status %d: %s", r.StatusCode, b)
	}
	got := <-bulk1
	if got.status != 503 {
		t.Fatalf("shed bulk solve: status %d: %s", got.status, got.body)
	}
	if !strings.Contains(got.body, "shed") {
		t.Errorf("shed 503 body does not say so: %s", got.body)
	}
	if n := o.Snapshot().Counters["serve.bulk_shed"]; n != 1 {
		t.Errorf("bulk_shed = %d, want 1", n)
	}
	got2 := <-bulk2
	if got2.status != 200 {
		t.Errorf("spared bulk #2: status %d: %s", got2.status, got2.body)
	}
}
