package serve

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"

	"prpart/internal/cluster"
	"prpart/internal/obs"
	"prpart/internal/store"
)

// This file wires the cluster peer layer (internal/cluster) into the
// serving ladder. With Config.Cluster set, every read path consults a
// third tier between the persistent store and a local solve: the key's
// ring owners are asked for the result over the peer fetch RPC. A
// verified peer body is written through to the local cache and store
// (verdict preserved) and served with X-Cache: peer; anything that
// fails frame or digest verification is rejected and the request falls
// back to solving locally — a degraded cluster can slow a node down but
// never make it serve wrong bytes. After a local solve, the result is
// replicated to the key's other owners so the next request for it lands
// warm anywhere in the cluster.
//
// The server also answers the two peer endpoints. Both require the
// cluster's shared-secret HMAC (cluster.AuthHeader) over the request
// body: the endpoints share the public listener, so without it any
// client that can reach the port could push attacker-chosen bytes
// under real solve keys — the frame digest only proves the bytes
// arrived intact, not that they are the true result for the key.
// Unauthenticated requests are refused with 403 before any decoding
// and counted as cluster.peer_denied. Past auth the endpoints are
// strictly passive: /v1/peer/fetch serves only what this node already
// has in its cache or store — it never solves, so a cluster-wide miss
// costs one round of fetches, not a cascade — and both accept only
// well-formed, digest-verified frames for solve-namespace keys.

// lookup serves key from the read tiers: memory cache, persistent
// store, then cluster peers. The returned label is the X-Cache value
// ("hit", "store" or "peer"); ok is false when every tier missed and
// the caller must solve.
func (s *Server) lookup(ctx context.Context, key string) ([]byte, string, bool) {
	if cached, ok := s.cache.Get(key); ok {
		return cached, "hit", true
	}
	// Second tier: the persistent store. Bytes coming back from disk
	// are hash-verified by the store itself (a corrupt blob reads as a
	// miss and quarantines), so anything returned here is exactly what
	// a fresh solve would have produced.
	if s.store != nil {
		if b, ok := s.store.Get(key); ok {
			s.cache.Put(key, b)
			s.cStoreServes.Inc()
			return b, "store", true
		}
	}
	// Third tier: ask the key's ring owners. Fetch verifies framing and
	// body digest; a body it returns is bit-exact what the peer stored.
	if s.cluster != nil {
		if b, verdict, ok := s.cluster.Fetch(ctx, key); ok {
			s.importPeerBody(key, b, verdict)
			s.cPeerServes.Inc()
			s.sched.NotePeerFill()
			return b, "peer", true
		}
	}
	return nil, "", false
}

// importPeerBody writes a verified peer transfer through the local
// tiers, preserving the verdict the origin node stored it under: a
// result the owner verified with the oracle stays VerdictPass here, one
// it didn't stays VerdictUnchecked — replication never launders an
// unchecked result into a checked one.
func (s *Server) importPeerBody(key string, body []byte, verdict uint8) {
	s.cache.Put(key, body)
	if s.store == nil {
		return
	}
	v := store.VerdictUnchecked
	if verdict == uint8(store.VerdictPass) {
		v = store.VerdictPass
	}
	if err := s.store.Put(key, body, v); err != nil {
		s.obs.Emit("serve", "store.peer_put_error", obs.Str("key", key), obs.Str("err", err.Error()))
	}
}

// replicate pushes a freshly solved body to the key's other ring
// owners. It runs synchronously on the solving worker, before the
// flight publishes the result, so a seeded request sequence always
// produces the same replication traffic (the determinism the cluster
// e2e counters pin). Push failures are counted inside the peer client
// and never affect the solve's outcome.
func (s *Server) replicate(key string, body []byte, checked bool) {
	if s.cluster == nil {
		return
	}
	verdict := uint8(store.VerdictUnchecked)
	if checked {
		verdict = uint8(store.VerdictPass)
	}
	s.cluster.Replicate(s.baseCtx, key, body, verdict)
}

// readPeerFrame reads and authenticates one inbound peer request. The
// body limit comes from the wire format's own bound (a peer frame may
// legitimately exceed the JSON API's MaxBodyBytes), and the request
// must carry a valid shared-secret HMAC over the exact bytes read —
// anything else is refused before a single frame byte is decoded.
func (s *Server) readPeerFrame(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, cluster.MaxFrameBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return nil, false
	}
	if !s.cluster.Authorize(r.Header.Get(cluster.AuthHeader), raw) {
		s.cluster.Denied()
		writeError(w, http.StatusForbidden, errors.New("serve: peer request not authenticated"))
		return nil, false
	}
	return raw, true
}

// handlePeerFetch is POST /v1/peer/fetch: a framed key in, a framed
// body out. Strictly cache/store tiers — a fetch must never trigger a
// solve or another peer fetch.
func (s *Server) handlePeerFetch(w http.ResponseWriter, r *http.Request) {
	raw, ok := s.readPeerFrame(w, r)
	if !ok {
		return
	}
	key, err := cluster.DecodePeerFetch(raw)
	if err != nil {
		s.cluster.BadBody()
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !strings.HasPrefix(key, "sha256:") {
		// Same namespace guard as push: a peer fetch must never leak job
		// records or any other store namespace to a poster.
		s.cluster.BadBody()
		writeError(w, http.StatusBadRequest, errors.New("serve: fetch key outside the solve namespace"))
		return
	}
	pb := cluster.Body{Key: key}
	if body, ok := s.cache.Get(key); ok {
		pb.Found, pb.Data = true, body
	} else if s.store != nil {
		if body, ok := s.store.Get(key); ok {
			pb.Found, pb.Data = true, body
		}
	}
	if pb.Found {
		if v, ok := s.storeVerdict(key); ok {
			pb.Verdict = v
		}
		s.cFetchServed.Inc()
	} else {
		s.cFetchMissed.Inc()
	}
	frame, err := cluster.EncodePeerBody(pb)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(frame)
}

// storeVerdict reads the persisted verdict for key, as a wire byte.
func (s *Server) storeVerdict(key string) (uint8, bool) {
	if s.store == nil {
		return 0, false
	}
	v, ok := s.store.Verdict(key)
	return uint8(v), ok
}

// handlePeerPush is POST /v1/peer/push: a peer replicating a solved
// body to this node because the ring says we own its key. Only
// solve-namespace keys are accepted — a push can never overwrite job
// records or any other store namespace.
func (s *Server) handlePeerPush(w http.ResponseWriter, r *http.Request) {
	raw, ok := s.readPeerFrame(w, r)
	if !ok {
		return
	}
	pb, err := cluster.DecodePeerBody(raw)
	if err != nil {
		s.cluster.BadBody()
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !pb.Found {
		s.cluster.BadBody()
		writeError(w, http.StatusBadRequest, errors.New("serve: push frame without a body"))
		return
	}
	if !strings.HasPrefix(pb.Key, "sha256:") {
		s.cluster.BadBody()
		writeError(w, http.StatusBadRequest, errors.New("serve: push key outside the solve namespace"))
		return
	}
	s.importPeerBody(pb.Key, pb.Data, pb.Verdict)
	s.cPushesReceived.Inc()
	ack, err := cluster.EncodePeerBody(cluster.Body{Found: true, Verdict: pb.Verdict, Key: pb.Key, Data: []byte{}})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(ack)
}

// clusterHealth is the cluster block of /healthz.
type clusterHealth struct {
	Self     string               `json:"self"`
	RingSize int                  `json:"ringSize"`
	Replicas int                  `json:"replicas"`
	Peers    []cluster.PeerHealth `json:"peers"`
}
