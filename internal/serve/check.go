package serve

import (
	"fmt"

	"prpart/internal/check"
	"prpart/internal/core"
)

// verifyResult runs the independent oracle over a solve result before it
// is served. Serving-path results skip the backend, so the oracle places
// its own floorplan and replays the transition costs from assembled
// bitstreams — an unplaceable or mis-costed scheme is a finding here,
// not an inconvenience.
func verifyResult(res *core.Result) error {
	rep := check.Verify(check.Subject{
		Scheme: res.Scheme,
		Device: res.Device,
		Budget: res.Budget,
		Total:  res.Summary.Total,
		Worst:  res.Summary.Worst,
	})
	if rep.OK() {
		return nil
	}
	return fmt.Errorf("serve: result failed verification: %s", rep)
}
