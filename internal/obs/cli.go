package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
)

// Flags bundles the standard observability command-line flags shared by
// prpart, prsim and prbench:
//
//	-trace file.jsonl   stream structured events to a JSONL file
//	-pprof file.pprof   write a CPU profile for the run
//	-metrics            dump all counters/timers at exit
type Flags struct {
	Trace   string
	Pprof   string
	Metrics bool
}

// AddFlags registers the observability flags on a FlagSet.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Trace, "trace", "", "write structured trace events to this JSONL file")
	fs.StringVar(&f.Pprof, "pprof", "", "write a CPU profile to this file")
	fs.BoolVar(&f.Metrics, "metrics", false, "dump observability counters and timers at exit")
	return f
}

// Enabled reports whether any observability output was requested.
func (f *Flags) Enabled() bool {
	return f.Trace != "" || f.Pprof != "" || f.Metrics
}

// Start materialises the requested observability: it returns the Obs to
// thread through the run (nil when nothing was requested, keeping the
// fast path) and a stop function that flushes and closes everything,
// writing the -metrics dump to w. Stop is safe to call exactly once.
func (f *Flags) Start(w io.Writer) (*Obs, func() error, error) {
	if !f.Enabled() {
		return nil, func() error { return nil }, nil
	}
	o := New()
	var traceFile *os.File
	if f.Trace != "" {
		tf, err := os.Create(f.Trace)
		if err != nil {
			return nil, nil, fmt.Errorf("obs: creating trace file: %w", err)
		}
		traceFile = tf
		tr := NewTracer(0)
		tr.SetSink(tf)
		o.SetTracer(tr)
	}
	var pprofFile *os.File
	if f.Pprof != "" {
		pf, err := os.Create(f.Pprof)
		if err != nil {
			if traceFile != nil {
				traceFile.Close()
			}
			return nil, nil, fmt.Errorf("obs: creating pprof file: %w", err)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			pf.Close()
			if traceFile != nil {
				traceFile.Close()
			}
			return nil, nil, fmt.Errorf("obs: starting CPU profile: %w", err)
		}
		pprofFile = pf
	}
	stop := func() error {
		var firstErr error
		if pprofFile != nil {
			pprof.StopCPUProfile()
			if err := pprofFile.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if traceFile != nil {
			if err := o.Tracer().SinkErr(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("obs: trace sink: %w", err)
			}
			if err := traceFile.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if f.Metrics {
			if _, err := fmt.Fprintln(w, "-- metrics --"); err != nil && firstErr == nil {
				firstErr = err
			}
			if err := o.WriteMetrics(w); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	return o, stop, nil
}
