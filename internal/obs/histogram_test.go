package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.99) != 0 {
		t.Error("empty histogram must report a zero quantile")
	}
	// 90 fast observations, 10 slow ones: p50 lands in the 5 ms bucket,
	// p99 in the 2 s bucket.
	for i := 0; i < 90; i++ {
		h.Observe(3 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1500 * time.Millisecond)
	}
	if got := h.Count(); got != 100 {
		t.Errorf("Count = %d, want 100", got)
	}
	want := 90*3*time.Millisecond + 10*1500*time.Millisecond
	if got := h.Sum(); got != want {
		t.Errorf("Sum = %v, want %v", got, want)
	}
	if got := h.Quantile(0.50); got != 5*time.Millisecond {
		t.Errorf("p50 = %v, want 5ms", got)
	}
	if got := h.Quantile(0.99); got != 2*time.Second {
		t.Errorf("p99 = %v, want 2s", got)
	}
	// A boundary value belongs to its own bucket, not the next one.
	hb := &Histogram{}
	hb.Observe(time.Millisecond)
	if got := hb.Quantile(1); got != time.Millisecond {
		t.Errorf("boundary observation reported as %v, want 1ms", got)
	}
	// Overflow observations saturate at the last bound.
	ho := &Histogram{}
	ho.Observe(10 * time.Minute)
	if got := ho.Quantile(1); got != 60*time.Second {
		t.Errorf("overflow quantile = %v, want 60s", got)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second) // must not panic
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram must read as zero")
	}
	var o *Obs
	if o.Histogram("x") != nil {
		t.Error("nil Obs must hand out nil histograms")
	}
}

func TestHistogramRegistryAndFlat(t *testing.T) {
	o := New()
	h := o.Histogram("jobs.wait")
	if o.Histogram("jobs.wait") != h {
		t.Fatal("same name must return the same instrument")
	}
	h.Observe(4 * time.Millisecond)
	h.Observe(4 * time.Millisecond)
	snap := o.Snapshot()
	st, ok := snap.Histograms["jobs.wait"]
	if !ok || st.Count != 2 || st.Sum != 8*time.Millisecond || st.P50 != 5*time.Millisecond {
		t.Errorf("snapshot histogram = %+v (present %v)", st, ok)
	}
	flat := snap.Flat()
	if flat["jobs.wait_count"] != 2 || flat["jobs.wait_sum_ns"] != int64(8*time.Millisecond) {
		t.Errorf("flat histogram entries wrong: %v", flat)
	}
	if flat["jobs.wait_p99_ns"] != int64(5*time.Millisecond) {
		t.Errorf("flat p99 = %d", flat["jobs.wait_p99_ns"])
	}
	var b strings.Builder
	if err := o.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "jobs.wait_count 2") {
		t.Errorf("WriteMetrics missing histogram:\n%s", b.String())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := New().Histogram("c")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Errorf("Count = %d, want 8000", got)
	}
}
