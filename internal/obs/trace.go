package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Attr is one key/value attribute on a trace event.
type Attr struct {
	Key   string
	Value interface{}
}

// Int builds an integer attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, Value: v} }

// Str builds a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, Value: v} }

// Dur builds a duration attribute (recorded in nanoseconds).
func Dur(key string, d time.Duration) Attr { return Attr{Key: key, Value: int64(d)} }

// Event is one structured trace event.
type Event struct {
	// Seq is the emission sequence number, starting at 0.
	Seq uint64 `json:"seq"`
	// T is the time since the tracer was created.
	T time.Duration `json:"t_ns"`
	// Scope names the emitting subsystem ("partition", "icap", ...).
	Scope string `json:"scope"`
	// Name is the event name within the scope ("search.done", "load", ...).
	Name string `json:"name"`
	// Attrs carries the event's attributes.
	Attrs map[string]interface{} `json:"attrs,omitempty"`
}

// DefaultTraceCap is the ring-buffer capacity NewTracer uses for
// capacities <= 0.
const DefaultTraceCap = 1024

// Tracer records structured events into a bounded ring buffer and,
// optionally, streams every event to a JSONL sink. The nil Tracer is
// valid and drops everything. Safe for concurrent use.
type Tracer struct {
	mu      sync.Mutex
	start   time.Time
	ring    []Event
	total   uint64
	sink    *json.Encoder
	sinkErr error
}

// NewTracer returns a tracer whose ring buffer keeps the most recent
// `capacity` events (DefaultTraceCap when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{start: time.Now(), ring: make([]Event, 0, capacity)}
}

// SetSink streams every subsequent event to w as one JSON object per
// line. Nil detaches the sink. Sink write errors are sticky and exposed
// via SinkErr; they never disturb the traced code.
func (t *Tracer) SetSink(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if w == nil {
		t.sink = nil
		return
	}
	t.sink = json.NewEncoder(w)
}

// Emit records one event. The nil Tracer drops it.
func (t *Tracer) Emit(scope, name string, attrs ...Attr) {
	if t == nil {
		return
	}
	var m map[string]interface{}
	if len(attrs) > 0 {
		m = make(map[string]interface{}, len(attrs))
		for _, a := range attrs {
			m[a.Key] = a.Value
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ev := Event{Seq: t.total, T: time.Since(t.start), Scope: scope, Name: name, Attrs: m}
	t.total++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, ev)
	} else {
		t.ring[int(ev.Seq)%cap(t.ring)] = ev
	}
	if t.sink != nil && t.sinkErr == nil {
		t.sinkErr = t.sink.Encode(ev)
	}
}

// Events returns the buffered events in emission order (oldest first).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.ring))
	if t.total <= uint64(cap(t.ring)) {
		return append(out, t.ring...)
	}
	first := int(t.total) % cap(t.ring)
	out = append(out, t.ring[first:]...)
	return append(out, t.ring[:first]...)
}

// Total returns the number of events ever emitted, including those the
// ring has dropped.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many events fell out of the ring buffer.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.total <= uint64(cap(t.ring)) {
		return 0
	}
	return t.total - uint64(cap(t.ring))
}

// SinkErr returns the first sink write error, if any.
func (t *Tracer) SinkErr() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sinkErr
}
