package obs

import (
	"bufio"
	"encoding/json"
	"flag"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilInstrumentsAreSafe(t *testing.T) {
	var o *Obs
	c := o.Counter("x")
	g := o.Gauge("x")
	l := o.Level("x")
	tm := o.Timer("x")
	if c != nil || g != nil || l != nil || tm != nil {
		t.Fatal("nil Obs must hand out nil instruments")
	}
	c.Inc()
	c.Add(5)
	g.Observe(7)
	l.Inc()
	l.Dec()
	if l.Add(3) != 0 {
		t.Fatal("nil Level Add must return 0")
	}
	tm.Observe(time.Second)
	tm.Time()()
	o.Emit("scope", "name", Int("k", 1))
	o.SetTracer(NewTracer(4))
	if c.Value() != 0 || g.Value() != 0 || l.Value() != 0 || l.Max() != 0 ||
		tm.Total() != 0 || tm.Count() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	snap := o.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Levels)+len(snap.Timers) != 0 {
		t.Fatal("nil Obs snapshot must be empty")
	}
	var tr *Tracer
	tr.Emit("s", "n")
	if tr.Events() != nil || tr.Total() != 0 || tr.Dropped() != 0 || tr.SinkErr() != nil {
		t.Fatal("nil Tracer must read empty")
	}
}

func TestCountersGaugesTimers(t *testing.T) {
	o := New()
	c := o.Counter("hits")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if o.Counter("hits") != c {
		t.Fatal("same name must return the same counter")
	}
	g := o.Gauge("depth")
	g.Observe(3)
	g.Observe(9)
	g.Observe(6)
	if got := g.Value(); got != 9 {
		t.Fatalf("gauge = %d, want max 9", got)
	}
	tm := o.Timer("phase")
	tm.Observe(2 * time.Millisecond)
	tm.Observe(3 * time.Millisecond)
	if tm.Total() != 5*time.Millisecond || tm.Count() != 2 {
		t.Fatalf("timer = (%v, %d), want (5ms, 2)", tm.Total(), tm.Count())
	}

	snap := o.Snapshot()
	if snap.Counters["hits"] != 5 || snap.Gauges["depth"] != 9 {
		t.Fatalf("snapshot wrong: %+v", snap)
	}
	flat := snap.Flat()
	if flat["phase_ns"] != int64(5*time.Millisecond) || flat["phase_count"] != 2 {
		t.Fatalf("flat timer entries wrong: %v", flat)
	}

	var b strings.Builder
	if err := o.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"hits 5\n", "depth 9\n", "phase_count 2\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics dump missing %q:\n%s", want, out)
		}
	}
	// Sorted output: depth < hits < phase*.
	if strings.Index(out, "depth") > strings.Index(out, "hits") {
		t.Errorf("metrics dump not sorted:\n%s", out)
	}
}

func TestLevel(t *testing.T) {
	o := New()
	l := o.Level("inflight")
	if o.Level("inflight") != l {
		t.Fatal("same name must return the same level")
	}
	l.Inc()
	l.Inc()
	l.Inc()
	l.Dec()
	if l.Value() != 2 || l.Max() != 3 {
		t.Fatalf("level = (%d, max %d), want (2, 3)", l.Value(), l.Max())
	}
	if got := l.Add(-5); got != -3 {
		t.Fatalf("Add(-5) returned %d, want -3", got)
	}
	if l.Max() != 3 {
		t.Fatalf("watermark moved on decrease: %d", l.Max())
	}

	snap := o.Snapshot()
	if st := snap.Levels["inflight"]; st.Current != -3 || st.Max != 3 {
		t.Fatalf("snapshot level = %+v, want {-3 3}", st)
	}
	flat := snap.Flat()
	if flat["inflight"] != -3 || flat["inflight_max"] != 3 {
		t.Fatalf("flat level entries wrong: %v", flat)
	}
	var b strings.Builder
	if err := o.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"inflight -3\n", "inflight_max 3\n"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("metrics dump missing %q:\n%s", want, b.String())
		}
	}
}

func TestLevelConcurrent(t *testing.T) {
	o := New()
	l := o.Level("depth")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.Inc()
				l.Dec()
			}
		}()
	}
	wg.Wait()
	if l.Value() != 0 {
		t.Fatalf("level = %d after balanced inc/dec, want 0", l.Value())
	}
	if l.Max() < 1 || l.Max() > 8 {
		t.Fatalf("watermark = %d, want within [1, 8]", l.Max())
	}
}

func TestCountersConcurrent(t *testing.T) {
	o := New()
	c := o.Counter("n")
	g := o.Gauge("max")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Observe(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 7999 {
		t.Fatalf("gauge = %d, want 7999", g.Value())
	}
}

func TestTracerRingAndOrder(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit("test", "ev", Int("i", int64(i)))
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d, want 10", tr.Total())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for k, ev := range evs {
		if want := uint64(6 + k); ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d (oldest-first order)", k, ev.Seq, want)
		}
	}
}

func TestTracerJSONLSink(t *testing.T) {
	var b strings.Builder
	tr := NewTracer(0)
	tr.SetSink(&b)
	tr.Emit("icap", "load", Int("frames", 42), Str("region", "prr1"), Dur("took", time.Microsecond))
	tr.Emit("icap", "load", Int("frames", 7))
	if err := tr.SinkErr(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	n := 0
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d is not JSON: %v", n, err)
		}
		if ev.Scope != "icap" || ev.Name != "load" {
			t.Fatalf("line %d decoded wrong: %+v", n, ev)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("sink holds %d lines, want 2", n)
	}
}

func TestCLIFlagsDisabledIsNil(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := AddFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	o, stop, err := f.Start(&b)
	if err != nil {
		t.Fatal(err)
	}
	if o != nil {
		t.Fatal("no flags set must yield a nil (disabled) Obs")
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("disabled stop wrote output: %q", b.String())
	}
}

func TestCLIFlagsTraceAndMetrics(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "t.jsonl")
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := AddFlags(fs)
	if err := fs.Parse([]string{"-trace", trace, "-metrics"}); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	o, stop, err := f.Start(&b)
	if err != nil {
		t.Fatal(err)
	}
	if o == nil {
		t.Fatal("enabled flags must yield a live Obs")
	}
	o.Counter("demo").Add(3)
	o.Emit("demo", "event", Int("v", 1))
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "demo 3") {
		t.Errorf("metrics dump missing counter:\n%s", b.String())
	}
	data := readFile(t, trace)
	if !strings.Contains(data, `"scope":"demo"`) {
		t.Errorf("trace file missing event: %q", data)
	}
}
