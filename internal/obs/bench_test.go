package obs

import (
	"os"
	"testing"
	"time"
)

func readFile(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// BenchmarkDisabledCounter measures the nil fast path an instrumented hot
// loop pays when observability is off: a single nil check.
func BenchmarkDisabledCounter(b *testing.B) {
	var o *Obs
	c := o.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkDisabledTimer verifies the disabled timer never touches the
// clock or allocates.
func BenchmarkDisabledTimer(b *testing.B) {
	var o *Obs
	tm := o.Timer("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm.Time()()
	}
}

// BenchmarkDisabledEmit measures dropped events on the nil Obs.
func BenchmarkDisabledEmit(b *testing.B) {
	var o *Obs
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Emit("scope", "name")
	}
}

// BenchmarkEnabledCounter is the enabled counterpart, for the overhead
// table in DESIGN.md §7.
func BenchmarkEnabledCounter(b *testing.B) {
	c := New().Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkEnabledTimer measures one observed interval per iteration.
func BenchmarkEnabledTimer(b *testing.B) {
	tm := New().Timer("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm.Observe(time.Nanosecond)
	}
}

// BenchmarkEnabledEmit measures ring-buffer event emission (no sink).
func BenchmarkEnabledEmit(b *testing.B) {
	tr := NewTracer(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit("scope", "name", Int("i", int64(i)))
	}
}
