// Package obs is the repo's zero-dependency observability layer: typed
// counters, max-gauges and timers behind a named registry, plus a
// structured event tracer (ring buffer with an optional JSONL sink).
//
// Instrumentation is strictly passive — it never influences what the
// search or the runtime simulator computes — and is near-free when
// disabled: every instrument is nil-safe, so code holds a possibly-nil
// *Counter/*Timer resolved once up front and the disabled path is a
// single nil check per operation (no map lookup, no clock read, no
// allocation). All instruments are safe for concurrent use and counters
// only ever move forward, so observed values are monotonic even while a
// parallel search is mid-flight.
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer instrument. The nil
// Counter is valid and ignores all updates.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (negative n is ignored, preserving
// monotonicity).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for the nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge records the maximum value observed. The nil Gauge is valid and
// ignores all updates.
type Gauge struct{ v atomic.Int64 }

// Observe records v if it exceeds the current maximum.
func (g *Gauge) Observe(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur {
			return
		}
		if g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the maximum observed so far (0 for the nil Gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Level tracks a quantity that moves both ways — queue depth, in-flight
// requests — recording the current value and its maximum watermark. The
// nil Level is valid and ignores all updates.
type Level struct{ cur, max atomic.Int64 }

// Add moves the level by delta (negative to decrease) and returns the
// new current value. The watermark follows increases.
func (l *Level) Add(delta int64) int64 {
	if l == nil {
		return 0
	}
	v := l.cur.Add(delta)
	if delta > 0 {
		for {
			m := l.max.Load()
			if v <= m || l.max.CompareAndSwap(m, v) {
				break
			}
		}
	}
	return v
}

// Inc raises the level by one.
func (l *Level) Inc() { l.Add(1) }

// Dec lowers the level by one.
func (l *Level) Dec() { l.Add(-1) }

// Value returns the current level (0 for the nil Level).
func (l *Level) Value() int64 {
	if l == nil {
		return 0
	}
	return l.cur.Load()
}

// Max returns the highest level observed (0 for the nil Level).
func (l *Level) Max() int64 {
	if l == nil {
		return 0
	}
	return l.max.Load()
}

// Timer accumulates durations. The nil Timer is valid, ignores all
// updates, and — through Time — avoids even reading the clock.
type Timer struct{ ns, n atomic.Int64 }

// Observe adds one measured duration.
func (t *Timer) Observe(d time.Duration) {
	if t == nil {
		return
	}
	if d > 0 {
		t.ns.Add(int64(d))
	}
	t.n.Add(1)
}

var nopStop = func() {}

// Time starts a measurement and returns the function that stops it:
//
//	defer tm.Time()()
//
// On the nil Timer no clock is read and the returned stop is a shared
// no-op, keeping the disabled path allocation-free.
func (t *Timer) Time() (stop func()) {
	if t == nil {
		return nopStop
	}
	start := time.Now()
	return func() { t.Observe(time.Since(start)) }
}

// Total returns the accumulated duration (0 for the nil Timer).
func (t *Timer) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.ns.Load())
}

// Count returns the number of observations (0 for the nil Timer).
func (t *Timer) Count() int64 {
	if t == nil {
		return 0
	}
	return t.n.Load()
}

// histogramBounds are the shared duration bucket upper bounds (a 1-2-5
// decade ladder from 1 ms to 60 s). One fixed layout for every
// histogram keeps /metrics lines comparable across instruments and
// avoids per-instrument configuration in hot paths.
var histogramBounds = [numHistogramBounds]time.Duration{
	time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
	time.Second, 2 * time.Second, 5 * time.Second,
	10 * time.Second, 30 * time.Second, 60 * time.Second,
}

const numHistogramBounds = 15

// Histogram accumulates duration observations into fixed exponential
// buckets (histogramBounds plus an overflow bucket), tracking count and
// sum exactly. Quantiles are read back as the upper bound of the bucket
// the quantile falls in — coarse, but monotone and allocation-free. The
// nil Histogram is valid and ignores all updates.
type Histogram struct {
	counts [numHistogramBounds + 1]atomic.Int64
	sum    atomic.Int64
	n      atomic.Int64
}

// Observe folds one duration into the histogram.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	i := 0
	for i < len(histogramBounds) && d > histogramBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.n.Add(1)
}

// Count returns the number of observations (0 for the nil Histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the exact accumulated duration.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) of
// the observed durations: the bucket boundary at or above the point
// where the cumulative count crosses q. Returns 0 with no observations;
// observations beyond the last bound report that bound (the histogram
// cannot resolve further).
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.n.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(histogramBounds) {
				return histogramBounds[i]
			}
			return histogramBounds[len(histogramBounds)-1]
		}
	}
	return histogramBounds[len(histogramBounds)-1]
}

// Obs is a registry of named instruments plus an optional event tracer.
// The nil *Obs disables everything: instrument lookups return nil
// instruments and Emit is a no-op, so a single nil propagates "off"
// through an entire call tree.
type Obs struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	levels     map[string]*Level
	timers     map[string]*Timer
	histograms map[string]*Histogram
	tracer     *Tracer
}

// New returns an empty enabled registry with no tracer attached.
func New() *Obs {
	return &Obs{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		levels:     map[string]*Level{},
		timers:     map[string]*Timer{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (the disabled counter) when o is nil.
func (o *Obs) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	c, ok := o.counters[name]
	if !ok {
		c = &Counter{}
		o.counters[name] = c
	}
	return c
}

// Gauge returns the named max-gauge, creating it on first use.
func (o *Obs) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	g, ok := o.gauges[name]
	if !ok {
		g = &Gauge{}
		o.gauges[name] = g
	}
	return g
}

// Level returns the named up/down level, creating it on first use.
func (o *Obs) Level(name string) *Level {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	l, ok := o.levels[name]
	if !ok {
		l = &Level{}
		o.levels[name] = l
	}
	return l
}

// Timer returns the named timer, creating it on first use.
func (o *Obs) Timer(name string) *Timer {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	t, ok := o.timers[name]
	if !ok {
		t = &Timer{}
		o.timers[name] = t
	}
	return t
}

// Histogram returns the named histogram, creating it on first use.
func (o *Obs) Histogram(name string) *Histogram {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	h, ok := o.histograms[name]
	if !ok {
		h = &Histogram{}
		o.histograms[name] = h
	}
	return h
}

// SetTracer attaches an event tracer (nil detaches).
func (o *Obs) SetTracer(t *Tracer) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.tracer = t
	o.mu.Unlock()
}

// Tracer returns the attached tracer, or nil.
func (o *Obs) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.tracer
}

// Emit forwards a structured event to the attached tracer, if any.
func (o *Obs) Emit(scope, name string, attrs ...Attr) {
	if o == nil {
		return
	}
	o.Tracer().Emit(scope, name, attrs...)
}

// Snapshot is a point-in-time copy of every instrument's value.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Levels     map[string]LevelStat
	Timers     map[string]TimerStat
	Histograms map[string]HistogramStat
}

// TimerStat is one timer's accumulated state.
type TimerStat struct {
	Total time.Duration
	Count int64
}

// LevelStat is one level's current value and watermark.
type LevelStat struct {
	Current int64
	Max     int64
}

// HistogramStat is one histogram's accumulated state: exact count and
// sum plus the bucketed p50/p99 upper bounds.
type HistogramStat struct {
	Count int64
	Sum   time.Duration
	P50   time.Duration
	P99   time.Duration
}

// Snapshot copies all instrument values. The nil Obs yields empty maps.
func (o *Obs) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Levels:     map[string]LevelStat{},
		Timers:     map[string]TimerStat{},
		Histograms: map[string]HistogramStat{},
	}
	if o == nil {
		return s
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	for name, c := range o.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range o.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, l := range o.levels {
		s.Levels[name] = LevelStat{Current: l.Value(), Max: l.Max()}
	}
	for name, t := range o.timers {
		s.Timers[name] = TimerStat{Total: t.Total(), Count: t.Count()}
	}
	for name, h := range o.histograms {
		s.Histograms[name] = HistogramStat{
			Count: h.Count(), Sum: h.Sum(),
			P50: h.Quantile(0.50), P99: h.Quantile(0.99),
		}
	}
	return s
}

// Flat returns every instrument as name → integer value: counters and
// gauges verbatim, levels as two entries (<name> and <name>_max), timers
// as two entries (<name>_ns and <name>_count), histograms as four
// (<name>_count, <name>_sum_ns, <name>_p50_ns, <name>_p99_ns). This is
// the shape the bench JSON and the -metrics dump share.
func (s Snapshot) Flat() map[string]int64 {
	out := make(map[string]int64, len(s.Counters)+len(s.Gauges)+2*len(s.Levels)+2*len(s.Timers))
	for name, v := range s.Counters {
		out[name] = v
	}
	for name, v := range s.Gauges {
		out[name] = v
	}
	for name, l := range s.Levels {
		out[name] = l.Current
		out[name+"_max"] = l.Max
	}
	for name, t := range s.Timers {
		out[name+"_ns"] = int64(t.Total)
		out[name+"_count"] = t.Count
	}
	for name, h := range s.Histograms {
		out[name+"_count"] = h.Count
		out[name+"_sum_ns"] = int64(h.Sum)
		out[name+"_p50_ns"] = int64(h.P50)
		out[name+"_p99_ns"] = int64(h.P99)
	}
	return out
}

// WriteMetrics writes the snapshot as sorted "name value" lines — the
// -metrics dump of the CLI tools.
func (o *Obs) WriteMetrics(w io.Writer) error {
	flat := o.Snapshot().Flat()
	names := make([]string, 0, len(flat))
	for name := range flat {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", name, flat[name]); err != nil {
			return err
		}
	}
	return nil
}
