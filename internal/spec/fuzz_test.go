package spec

import (
	"bytes"
	"strings"
	"testing"

	"prpart/internal/design"
)

// FuzzParseDesign checks that arbitrary XML never panics the parser and
// that anything it accepts is a valid design that round-trips.
func FuzzParseDesign(f *testing.F) {
	f.Add(sample)
	var b bytes.Buffer
	if err := WriteDesign(&b, design.PaperExample(), Constraints{Device: "FX70T"}); err != nil {
		f.Fatal(err)
	}
	f.Add(b.String())
	f.Add("<prdesign/>")
	f.Add("<prdesign name='x'><module name='A'/></prdesign>")
	f.Add("not xml at all")
	f.Add(`<prdesign name="x"><static clb="-1"/></prdesign>`)

	f.Fuzz(func(t *testing.T, input string) {
		d, con, err := ParseDesign(strings.NewReader(input))
		if err != nil {
			return
		}
		// Accepted designs must be valid and re-encodable.
		if verr := d.Validate(); verr != nil {
			t.Fatalf("ParseDesign accepted an invalid design: %v", verr)
		}
		var out bytes.Buffer
		if werr := WriteDesign(&out, d, con); werr != nil {
			t.Fatalf("accepted design failed to re-encode: %v", werr)
		}
		d2, _, rerr := ParseDesign(&out)
		if rerr != nil {
			t.Fatalf("re-encoded design failed to parse: %v", rerr)
		}
		if len(d2.Modules) != len(d.Modules) || len(d2.Configurations) != len(d.Configurations) {
			t.Fatal("round trip changed design shape")
		}
	})
}
