// Package spec implements the XML design-description format of the
// proposed tool flow (§III-B, Fig. 2): the designer provides the module
// and mode inventory (with design files or known utilisations), the list
// of valid configurations, and implementation constraints (target device,
// resource budget, clock). ParseDesign returns the internal design model
// plus the constraints for the downstream steps.
package spec

import (
	"encoding/xml"
	"fmt"
	"io"

	"prpart/internal/design"
	"prpart/internal/resource"
)

// File is the root XML element.
type File struct {
	XMLName xml.Name  `xml:"prdesign"`
	Name    string    `xml:"name,attr"`
	Static  *Res      `xml:"static"`
	Modules []XModule `xml:"module"`
	Configs []XConfig `xml:"configuration"`
	Constr  *XConstr  `xml:"constraints"`
}

// Res is a resource triple used in several elements.
type Res struct {
	CLB  int `xml:"clb,attr"`
	BRAM int `xml:"bram,attr"`
	DSP  int `xml:"dsp,attr"`
}

// Vector converts to the internal resource vector.
func (r *Res) Vector() resource.Vector {
	if r == nil {
		return resource.Vector{}
	}
	return resource.New(r.CLB, r.BRAM, r.DSP)
}

// XModule is a reconfigurable module declaration.
type XModule struct {
	Name  string  `xml:"name,attr"`
	Modes []XMode `xml:"mode"`
}

// XMode is one mode of a module. Either the utilisation attributes or a
// source file (to be synthesised) must be present; this package only
// consumes the utilisation numbers.
type XMode struct {
	Name string `xml:"name,attr"`
	CLB  int    `xml:"clb,attr"`
	BRAM int    `xml:"bram,attr"`
	DSP  int    `xml:"dsp,attr"`
	Src  string `xml:"src,attr,omitempty"`
}

// XConfig is one valid configuration.
type XConfig struct {
	Name   string    `xml:"name,attr,omitempty"`
	Active []XActive `xml:"active"`
}

// XActive activates one module mode within a configuration. Modules not
// listed are absent (mode 0, §IV-D).
type XActive struct {
	Module string `xml:"module,attr"`
	Mode   string `xml:"mode,attr"`
}

// XConstr carries the implementation constraints.
type XConstr struct {
	Device   string  `xml:"device,attr,omitempty"`
	ClockMHz float64 `xml:"clockMHz,attr,omitempty"`
	Budget   *Res    `xml:"budget"`
}

// Constraints is the parsed constraint set.
type Constraints struct {
	// Device names the target FPGA ("" = pick the smallest).
	Device string
	// Budget overrides the device capacity when non-zero.
	Budget resource.Vector
	// ClockMHz is the timing target (0 = unconstrained).
	ClockMHz float64
}

// ParseDesign reads and validates a design description.
func ParseDesign(r io.Reader) (*design.Design, Constraints, error) {
	var f File
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, Constraints{}, fmt.Errorf("spec: decoding XML: %w", err)
	}
	d := &design.Design{Name: f.Name, Static: f.Static.Vector()}
	modIdx := map[string]int{}
	modeIdx := map[string]map[string]int{}
	for _, xm := range f.Modules {
		m := &design.Module{Name: xm.Name}
		modeIdx[xm.Name] = map[string]int{}
		for ki, xmd := range xm.Modes {
			m.Modes = append(m.Modes, design.Mode{
				Name:      xmd.Name,
				Resources: resource.New(xmd.CLB, xmd.BRAM, xmd.DSP),
			})
			modeIdx[xm.Name][xmd.Name] = ki + 1
		}
		modIdx[xm.Name] = len(d.Modules)
		d.Modules = append(d.Modules, m)
	}
	for ci, xc := range f.Configs {
		c := design.Configuration{Name: xc.Name, Modes: make([]int, len(d.Modules))}
		for _, a := range xc.Active {
			mi, ok := modIdx[a.Module]
			if !ok {
				return nil, Constraints{}, fmt.Errorf("spec: configuration %d activates unknown module %q", ci, a.Module)
			}
			ki, ok := modeIdx[a.Module][a.Mode]
			if !ok {
				return nil, Constraints{}, fmt.Errorf("spec: configuration %d: module %q has no mode %q", ci, a.Module, a.Mode)
			}
			if c.Modes[mi] != 0 {
				return nil, Constraints{}, fmt.Errorf("spec: configuration %d activates module %q twice", ci, a.Module)
			}
			c.Modes[mi] = ki
		}
		d.Configurations = append(d.Configurations, c)
	}
	if err := d.Validate(); err != nil {
		return nil, Constraints{}, fmt.Errorf("spec: invalid design %q: %w", d.Name, err)
	}
	con := Constraints{}
	if f.Constr != nil {
		con.Device = f.Constr.Device
		con.ClockMHz = f.Constr.ClockMHz
		con.Budget = f.Constr.Budget.Vector()
	}
	return d, con, nil
}

// WriteDesign renders a design (and constraints) back to the XML format.
func WriteDesign(w io.Writer, d *design.Design, con Constraints) error {
	f := File{
		Name:   d.Name,
		Static: &Res{CLB: d.Static.CLB, BRAM: d.Static.BRAM, DSP: d.Static.DSP},
	}
	for _, m := range d.Modules {
		xm := XModule{Name: m.Name}
		for _, md := range m.Modes {
			xm.Modes = append(xm.Modes, XMode{
				Name: md.Name,
				CLB:  md.Resources.CLB, BRAM: md.Resources.BRAM, DSP: md.Resources.DSP,
			})
		}
		f.Modules = append(f.Modules, xm)
	}
	for ci, c := range d.Configurations {
		xc := XConfig{Name: c.Name}
		for mi, k := range c.Modes {
			if k == 0 {
				continue
			}
			if k < 1 || k > len(d.Modules[mi].Modes) {
				return fmt.Errorf("spec: configuration %d: mode index %d out of range", ci, k)
			}
			xc.Active = append(xc.Active, XActive{
				Module: d.Modules[mi].Name,
				Mode:   d.Modules[mi].Modes[k-1].Name,
			})
		}
		f.Configs = append(f.Configs, xc)
	}
	if con != (Constraints{}) {
		f.Constr = &XConstr{Device: con.Device, ClockMHz: con.ClockMHz}
		if !con.Budget.IsZero() {
			f.Constr.Budget = &Res{CLB: con.Budget.CLB, BRAM: con.Budget.BRAM, DSP: con.Budget.DSP}
		}
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(f); err != nil {
		return fmt.Errorf("spec: encoding XML: %w", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}
