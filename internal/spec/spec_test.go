package spec

import (
	"reflect"
	"strings"
	"testing"

	"prpart/internal/design"
	"prpart/internal/resource"
)

const sample = `<?xml version="1.0"?>
<prdesign name="demo">
  <static clb="90" bram="8" dsp="0"/>
  <module name="A">
    <mode name="fast" clb="200" bram="2" dsp="4" src="rtl/a_fast.v"/>
    <mode name="slow" clb="100" bram="0" dsp="1"/>
  </module>
  <module name="B">
    <mode name="only" clb="300" bram="4" dsp="0"/>
  </module>
  <configuration name="boot">
    <active module="A" mode="fast"/>
    <active module="B" mode="only"/>
  </configuration>
  <configuration>
    <active module="A" mode="slow"/>
  </configuration>
  <constraints device="FX70T" clockMHz="100">
    <budget clb="6800" bram="64" dsp="150"/>
  </constraints>
</prdesign>`

func TestParseDesign(t *testing.T) {
	d, con, err := ParseDesign(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "demo" || len(d.Modules) != 2 || len(d.Configurations) != 2 {
		t.Fatalf("parsed shape wrong: %+v", d)
	}
	if d.Static != resource.New(90, 8, 0) {
		t.Errorf("static = %v", d.Static)
	}
	if d.Modules[0].Modes[0].Resources != resource.New(200, 2, 4) {
		t.Errorf("A.fast = %v", d.Modules[0].Modes[0].Resources)
	}
	// Config 1 omits B: mode 0.
	if got := d.Configurations[1].Modes; !reflect.DeepEqual(got, []int{2, 0}) {
		t.Errorf("config 1 modes = %v, want [2 0]", got)
	}
	if d.Configurations[0].Name != "boot" {
		t.Errorf("config 0 name = %q", d.Configurations[0].Name)
	}
	if con.Device != "FX70T" || con.ClockMHz != 100 {
		t.Errorf("constraints = %+v", con)
	}
	if con.Budget != resource.New(6800, 64, 150) {
		t.Errorf("budget = %v", con.Budget)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, xml, want string
	}{
		{"garbage", "not xml", "decoding"},
		{"unknown module", `<prdesign name="x">
			<module name="A"><mode name="m" clb="1"/></module>
			<configuration><active module="Z" mode="m"/></configuration>
		  </prdesign>`, "unknown module"},
		{"unknown mode", `<prdesign name="x">
			<module name="A"><mode name="m" clb="1"/></module>
			<configuration><active module="A" mode="z"/></configuration>
		  </prdesign>`, "no mode"},
		{"double activation", `<prdesign name="x">
			<module name="A"><mode name="m" clb="1"/><mode name="n" clb="1"/></module>
			<configuration><active module="A" mode="m"/><active module="A" mode="n"/></configuration>
		  </prdesign>`, "twice"},
		{"invalid design", `<prdesign name="x">
			<module name="A"><mode name="m" clb="1"/></module>
		  </prdesign>`, "invalid design"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, _, err := ParseDesign(strings.NewReader(c.xml))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want mention of %q", err, c.want)
			}
		})
	}
}

func TestRoundTrip(t *testing.T) {
	for _, d := range []*design.Design{
		design.PaperExample(), design.VideoReceiver(), design.SingleModeExample(),
	} {
		con := Constraints{Device: "FX70T", ClockMHz: 100, Budget: design.CaseStudyBudget()}
		var b strings.Builder
		if err := WriteDesign(&b, d, con); err != nil {
			t.Fatalf("%s: write: %v", d.Name, err)
		}
		got, gotCon, err := ParseDesign(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("%s: parse: %v\n%s", d.Name, err, b.String())
		}
		if !reflect.DeepEqual(got, d) {
			t.Errorf("%s: round trip mismatch", d.Name)
		}
		if gotCon != con {
			t.Errorf("%s: constraints %+v != %+v", d.Name, gotCon, con)
		}
	}
}

func TestWriteWithoutConstraints(t *testing.T) {
	var b strings.Builder
	if err := WriteDesign(&b, design.PaperExample(), Constraints{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "<constraints") {
		t.Error("empty constraints element emitted")
	}
	if !strings.HasPrefix(b.String(), xmlHeader) {
		t.Errorf("missing XML header: %.40q", b.String())
	}
}

const xmlHeader = `<?xml version="1.0" encoding="UTF-8"?>`

func TestWriteRejectsCorruptDesign(t *testing.T) {
	d := design.PaperExample()
	d.Configurations[0].Modes[0] = 99
	var b strings.Builder
	if err := WriteDesign(&b, d, Constraints{}); err == nil {
		t.Error("corrupt design encoded")
	}
}
