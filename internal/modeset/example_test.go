package modeset_test

import (
	"fmt"

	"prpart/internal/design"
	"prpart/internal/modeset"
)

// Sets are canonical: order and duplicates in the input do not matter,
// and labels resolve against a design.
func ExampleNew() {
	d := design.PaperExample()
	a3 := design.ModeRef{Module: 0, Mode: 3}
	b2 := design.ModeRef{Module: 1, Mode: 2}
	s := modeset.New(b2, a3, b2)
	fmt.Println(s.Label(d))
	fmt.Println(s.Len())
	// Output:
	// {A.3, B.2}
	// 2
}

// Compatibility questions reduce to set intersection.
func ExampleSet_Intersects() {
	a := modeset.New(design.ModeRef{Module: 0, Mode: 1})
	b := modeset.New(design.ModeRef{Module: 0, Mode: 1}, design.ModeRef{Module: 1, Mode: 1})
	c := modeset.New(design.ModeRef{Module: 2, Mode: 1})
	fmt.Println(a.Intersects(b), a.Intersects(c), a.SubsetOf(b))
	// Output:
	// true false true
}
