package modeset

import (
	"testing"
	"testing/quick"

	"prpart/internal/design"
)

func r(mod, mode int) design.ModeRef { return design.ModeRef{Module: mod, Mode: mode} }

func TestNewSortsAndDedupes(t *testing.T) {
	s := New(r(2, 1), r(0, 3), r(2, 1), r(0, 1))
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	refs := s.Refs()
	want := []design.ModeRef{r(0, 1), r(0, 3), r(2, 1)}
	for i := range want {
		if refs[i] != want[i] {
			t.Errorf("refs[%d] = %v, want %v", i, refs[i], want[i])
		}
	}
}

func TestEmptySet(t *testing.T) {
	var s Set
	if !s.IsEmpty() || s.Len() != 0 {
		t.Error("zero Set should be empty")
	}
	if s.Contains(r(0, 1)) {
		t.Error("empty set contains nothing")
	}
	if !s.SubsetOf(New(r(0, 1))) {
		t.Error("empty set is a subset of everything")
	}
	if s.Intersects(New(r(0, 1))) {
		t.Error("empty set intersects nothing")
	}
	if s.Key() != "" || s.String() != "{}" {
		t.Errorf("empty set key/string: %q %q", s.Key(), s.String())
	}
}

func TestContains(t *testing.T) {
	s := New(r(0, 1), r(1, 2), r(2, 3))
	for _, m := range s.Refs() {
		if !s.Contains(m) {
			t.Errorf("Contains(%v) = false", m)
		}
	}
	if s.Contains(r(1, 1)) {
		t.Error("Contains(non-member) = true")
	}
}

func TestUnionIntersectsSubset(t *testing.T) {
	a := New(r(0, 1), r(1, 2))
	b := New(r(1, 2), r(2, 3))
	u := a.Union(b)
	if u.Len() != 3 {
		t.Fatalf("union len = %d, want 3", u.Len())
	}
	if !a.Intersects(b) {
		t.Error("a and b share r(1,2)")
	}
	c := New(r(3, 1))
	if a.Intersects(c) {
		t.Error("a and c are disjoint")
	}
	if !a.SubsetOf(u) || !b.SubsetOf(u) {
		t.Error("operands must be subsets of their union")
	}
	if u.SubsetOf(a) {
		t.Error("union is not a subset of one operand here")
	}
}

func TestEqualAndKey(t *testing.T) {
	a := New(r(1, 2), r(0, 1))
	b := New(r(0, 1), r(1, 2))
	if !a.Equal(b) || a.Key() != b.Key() {
		t.Error("order-insensitive equality failed")
	}
	c := New(r(0, 1))
	if a.Equal(c) {
		t.Error("sets of different size equal")
	}
	d := New(r(0, 1), r(1, 3))
	if a.Equal(d) {
		t.Error("different sets equal")
	}
	if a.Key() != "m0.1,m1.2" {
		t.Errorf("Key = %q", a.Key())
	}
}

func TestLabel(t *testing.T) {
	d := design.PaperExample()
	s := New(r(0, 3), r(1, 2))
	if got := s.Label(d); got != "{A.3, B.2}" {
		t.Errorf("Label = %q", got)
	}
}

func TestImmutability(t *testing.T) {
	a := New(r(0, 1))
	b := New(r(1, 1))
	_ = a.Union(b)
	if a.Len() != 1 || b.Len() != 1 {
		t.Error("Union mutated an operand")
	}
	refs := a.Refs()
	refs[0] = r(9, 9)
	if a.Contains(r(9, 9)) {
		t.Error("mutating Refs() result leaked into the set")
	}
}

func TestSetProperties(t *testing.T) {
	gen := func(raw []uint8) Set {
		refs := make([]design.ModeRef, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			refs = append(refs, r(int(raw[i]%5), int(raw[i+1]%4)+1))
		}
		return New(refs...)
	}
	f := func(ra, rb []uint8) bool {
		a, b := gen(ra), gen(rb)
		u := a.Union(b)
		// Union is commutative, contains both, and intersection symmetry.
		return u.Equal(b.Union(a)) &&
			a.SubsetOf(u) && b.SubsetOf(u) &&
			a.Intersects(b) == b.Intersects(a) &&
			a.Equal(a.Union(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubsetIffUnionEqual(t *testing.T) {
	gen := func(raw []uint8) Set {
		refs := make([]design.ModeRef, 0, len(raw))
		for _, v := range raw {
			refs = append(refs, r(int(v%4), int(v/4%3)+1))
		}
		return New(refs...)
	}
	f := func(ra, rb []uint8) bool {
		a, b := gen(ra), gen(rb)
		return a.SubsetOf(b) == a.Union(b).Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
