// Package modeset provides an immutable, canonically ordered set of mode
// references. Base partitions, regions and configurations are all mode
// sets; giving them one canonical representation makes deduplication,
// comparison and map keying trivial across the pipeline.
package modeset

import (
	"sort"
	"strings"

	"prpart/internal/design"
)

// Set is a canonically sorted, duplicate-free list of mode references.
// The zero value is the empty set. Sets are value types: operations return
// new sets and never mutate their inputs.
type Set struct {
	refs []design.ModeRef
}

// New builds a set from the given references, sorting and deduplicating.
func New(refs ...design.ModeRef) Set {
	out := append([]design.ModeRef(nil), refs...)
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	out = dedupe(out)
	return Set{refs: out}
}

func less(a, b design.ModeRef) bool {
	if a.Module != b.Module {
		return a.Module < b.Module
	}
	return a.Mode < b.Mode
}

func dedupe(refs []design.ModeRef) []design.ModeRef {
	w := 0
	for i, r := range refs {
		if i == 0 || refs[w-1] != r {
			refs[w] = r
			w++
		}
	}
	return refs[:w]
}

// Len returns the number of modes in the set.
func (s Set) Len() int { return len(s.refs) }

// IsEmpty reports whether the set has no modes.
func (s Set) IsEmpty() bool { return len(s.refs) == 0 }

// Refs returns the modes in canonical order. The caller must not modify
// the returned slice contents of the set; a fresh copy is returned.
func (s Set) Refs() []design.ModeRef {
	return append([]design.ModeRef(nil), s.refs...)
}

// Contains reports whether r is a member of the set.
func (s Set) Contains(r design.ModeRef) bool {
	i := sort.Search(len(s.refs), func(i int) bool { return !less(s.refs[i], r) })
	return i < len(s.refs) && s.refs[i] == r
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	return New(append(s.Refs(), t.refs...)...)
}

// Intersects reports whether s and t share at least one mode.
func (s Set) Intersects(t Set) bool {
	i, j := 0, 0
	for i < len(s.refs) && j < len(t.refs) {
		switch {
		case s.refs[i] == t.refs[j]:
			return true
		case less(s.refs[i], t.refs[j]):
			i++
		default:
			j++
		}
	}
	return false
}

// SubsetOf reports whether every mode of s is in t.
func (s Set) SubsetOf(t Set) bool {
	i, j := 0, 0
	for i < len(s.refs) {
		if j >= len(t.refs) {
			return false
		}
		switch {
		case s.refs[i] == t.refs[j]:
			i++
			j++
		case less(t.refs[j], s.refs[i]):
			j++
		default:
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain exactly the same modes.
func (s Set) Equal(t Set) bool {
	if len(s.refs) != len(t.refs) {
		return false
	}
	for i := range s.refs {
		if s.refs[i] != t.refs[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical string usable as a map key.
func (s Set) Key() string {
	parts := make([]string, len(s.refs))
	for i, r := range s.refs {
		parts[i] = r.String()
	}
	return strings.Join(parts, ",")
}

// Label renders the set with human-readable mode names from d, in the
// paper's "{A1, B2}" style.
func (s Set) Label(d *design.Design) string {
	parts := make([]string, len(s.refs))
	for i, r := range s.refs {
		parts[i] = d.ModeName(r)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// String renders the set with positional mode references.
func (s Set) String() string { return "{" + s.Key() + "}" }
