package adaptive

import (
	"fmt"
	"math/rand"
)

// MarkovSequence generates a configuration-index sequence from a Markov
// chain with transition matrix p (rows must sum to ~1; self-loops keep
// the system in its current configuration). It is the structured
// counterpart of RandomWalkEvents for workloads whose switching pattern
// is statistical rather than threshold-driven.
func MarkovSequence(seed int64, p [][]float64, n int) ([]int, error) {
	if err := checkStochastic(p); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	cur := rng.Intn(len(p))
	for i := 0; i < n; i++ {
		out[i] = cur
		r := rng.Float64()
		acc := 0.0
		next := cur
		for j, pj := range p[cur] {
			acc += pj
			if r < acc {
				next = j
				break
			}
		}
		cur = next
	}
	return out, nil
}

func checkStochastic(p [][]float64) error {
	n := len(p)
	if n == 0 {
		return fmt.Errorf("adaptive: empty transition matrix")
	}
	for i, row := range p {
		if len(row) != n {
			return fmt.Errorf("adaptive: transition row %d has %d entries, want %d", i, len(row), n)
		}
		sum := 0.0
		for j, v := range row {
			if v < 0 {
				return fmt.Errorf("adaptive: negative transition p(%d,%d) = %g", i, j, v)
			}
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			return fmt.Errorf("adaptive: transition row %d sums to %g, want 1", i, sum)
		}
	}
	return nil
}

// Replay drives the manager through an explicit configuration sequence,
// returning the cumulative statistics. Consecutive repeats cost nothing.
func Replay(m *Manager, seq []int) (Stats, error) {
	for _, c := range seq {
		if _, err := m.SwitchTo(c); err != nil {
			return m.Stats(), err
		}
	}
	return m.Stats(), nil
}

// EstimateWeights builds a transition-weight matrix from an observed
// configuration sequence: entry [i][j] is the empirical frequency of the
// i→j switch among all switches (self-loops excluded). The result is
// normalised to sum to 1 over off-diagonal entries and feeds directly
// into partition.Options.TransitionWeights — closing the loop the
// paper's future work describes: observe the deployed system, then
// re-partition for its real switching distribution.
func EstimateWeights(seq []int, numConfigs int) ([][]float64, error) {
	w := make([][]float64, numConfigs)
	for i := range w {
		w[i] = make([]float64, numConfigs)
	}
	switches := 0
	for k := 1; k < len(seq); k++ {
		a, b := seq[k-1], seq[k]
		if a < 0 || a >= numConfigs || b < 0 || b >= numConfigs {
			return nil, fmt.Errorf("adaptive: sequence entry out of range: %d -> %d", a, b)
		}
		if a == b {
			continue
		}
		w[a][b]++
		switches++
	}
	if switches == 0 {
		return w, nil
	}
	for i := range w {
		for j := range w[i] {
			w[i][j] /= float64(switches)
		}
	}
	return w, nil
}
