package adaptive

import (
	"errors"
	"sync"
	"testing"
	"time"

	"prpart/internal/bitstream"
	"prpart/internal/cost"
	"prpart/internal/design"
	"prpart/internal/device"
	"prpart/internal/floorplan"
	"prpart/internal/icap"
	"prpart/internal/partition"
	"prpart/internal/scheme"
)

type fixture struct {
	sch  *scheme.Scheme
	bits *bitstream.Set
}

var (
	fixOnce         sync.Once
	modFix, propFix *fixture
	fixErr          error
)

func build(s *scheme.Scheme) (*fixture, error) {
	dev, err := device.ByName("FX70T")
	if err != nil {
		return nil, err
	}
	plan, err := floorplan.Place(s, dev)
	if err != nil {
		return nil, err
	}
	bits, err := bitstream.Assemble(s, plan)
	if err != nil {
		return nil, err
	}
	return &fixture{sch: s, bits: bits}, nil
}

func fixtures(t *testing.T) (modular, proposed *fixture) {
	t.Helper()
	fixOnce.Do(func() {
		d := design.VideoReceiver()
		modFix, fixErr = build(partition.Modular(d))
		if fixErr != nil {
			return
		}
		var res *partition.Result
		res, fixErr = partition.Solve(d, partition.Options{Budget: design.CaseStudyBudget()})
		if fixErr != nil {
			return
		}
		propFix, fixErr = build(res.Scheme)
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return modFix, propFix
}

func manager(t *testing.T, f *fixture) *Manager {
	t.Helper()
	m, err := NewManager(f.sch, f.bits, icap.New(32, 100_000_000))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSwitchMatchesCostModelOnModular(t *testing.T) {
	// The modular case-study scheme activates every region in every
	// configuration, so realised switch costs equal the pairwise cost
	// model exactly once the system is booted.
	mod, _ := fixtures(t)
	m := manager(t, mod)
	if _, err := m.SwitchTo(0); err != nil {
		t.Fatal(err)
	}
	tm := cost.Transitions(mod.sch)
	cur := 0
	for _, next := range []int{1, 4, 7, 2, 3, 6, 5, 0, 7} {
		before := m.Stats().Frames
		if _, err := m.SwitchTo(next); err != nil {
			t.Fatal(err)
		}
		got := m.Stats().Frames - before
		if got != tm[cur][next] {
			t.Errorf("switch %d->%d: realised %d frames, cost model %d", cur, next, got, tm[cur][next])
		}
		if got != m.PredictedFrames(cur, next) {
			t.Errorf("switch %d->%d: PredictedFrames disagrees", cur, next)
		}
		cur = next
	}
}

func TestRealisedNeverBelowPrediction(t *testing.T) {
	// With don't-care regions (the proposed scheme has a region inactive
	// in one configuration) realised cost can exceed the pairwise model
	// but never undercut it.
	_, prop := fixtures(t)
	m := manager(t, prop)
	if _, err := m.SwitchTo(0); err != nil {
		t.Fatal(err)
	}
	cur := 0
	for _, next := range []int{3, 0, 3, 1, 3, 5, 3, 2} {
		before := m.Stats().Frames
		if _, err := m.SwitchTo(next); err != nil {
			t.Fatal(err)
		}
		got := m.Stats().Frames - before
		if want := m.PredictedFrames(cur, next); got < want {
			t.Errorf("switch %d->%d: realised %d below prediction %d", cur, next, got, want)
		}
		cur = next
	}
}

func TestSwitchToSameConfigIsFree(t *testing.T) {
	mod, _ := fixtures(t)
	m := manager(t, mod)
	if _, err := m.SwitchTo(2); err != nil {
		t.Fatal(err)
	}
	d, err := m.SwitchTo(2)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("re-entering current configuration cost %v", d)
	}
}

func TestBootLoadsOnlyActiveRegions(t *testing.T) {
	mod, _ := fixtures(t)
	m := manager(t, mod)
	if m.Current() != -1 {
		t.Error("manager should start unbooted")
	}
	if _, err := m.SwitchTo(0); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.RegionLoads != len(mod.sch.Regions) {
		t.Errorf("boot loaded %d regions, want %d (all active in config 0)",
			st.RegionLoads, len(mod.sch.Regions))
	}
	for ri := range mod.sch.Regions {
		if m.Loaded(ri) != mod.sch.Active[0][ri] {
			t.Errorf("region %d holds %d, want %d", ri, m.Loaded(ri), mod.sch.Active[0][ri])
		}
	}
}

func TestSwitchToOutOfRange(t *testing.T) {
	mod, _ := fixtures(t)
	m := manager(t, mod)
	if _, err := m.SwitchTo(99); !errors.Is(err, ErrNoConfig) {
		t.Errorf("err = %v, want ErrNoConfig", err)
	}
	if _, err := m.SwitchTo(-1); !errors.Is(err, ErrNoConfig) {
		t.Errorf("err = %v, want ErrNoConfig", err)
	}
}

func TestNewManagerValidation(t *testing.T) {
	mod, _ := fixtures(t)
	bad := *mod.bits
	bad.PerRegion = bad.PerRegion[:1]
	if _, err := NewManager(mod.sch, &bad, icap.New(0, 0)); err == nil {
		t.Error("mismatched bitstream set accepted")
	}
	badScheme := *mod.sch
	badScheme.Active = badScheme.Active[:1]
	if _, err := NewManager(&badScheme, mod.bits, icap.New(0, 0)); err == nil {
		t.Error("invalid scheme accepted")
	}
}

func TestSimulateRandomWalk(t *testing.T) {
	mod, _ := fixtures(t)
	m := manager(t, mod)
	events := RandomWalkEvents(42, 200, time.Millisecond)
	if len(events) != 200 {
		t.Fatalf("events = %d", len(events))
	}
	policy := ThresholdPolicy(len(mod.sch.Design.Configurations))
	traces, err := Simulate(m, events, policy)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != len(events) {
		t.Fatalf("traces = %d, want %d", len(traces), len(events))
	}
	st := m.Stats()
	if st.Switches == 0 || st.ReconfigTime == 0 {
		t.Errorf("simulation did nothing: %+v", st)
	}
	// Trace bookkeeping: switched steps carry cost, unswitched are free;
	// the first step boots the system.
	if !traces[0].Switched {
		t.Error("first event must boot the system")
	}
	var sum time.Duration
	switched := 0
	for _, tr := range traces {
		if tr.Switched {
			switched++
			sum += tr.Cost
		} else if tr.Cost != 0 {
			t.Error("unswitched step carries cost")
		}
	}
	if switched != st.Switches {
		t.Errorf("trace switches %d != stats %d", switched, st.Switches)
	}
	if sum != st.ReconfigTime {
		t.Errorf("trace cost %v != stats %v", sum, st.ReconfigTime)
	}
}

func TestRandomWalkDeterministicAndBounded(t *testing.T) {
	a := RandomWalkEvents(7, 100, time.Millisecond)
	b := RandomWalkEvents(7, 100, time.Millisecond)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("event stream not deterministic")
		}
		if a[i].Value < 0 || a[i].Value >= 1 {
			t.Fatalf("event %d value %g out of [0,1)", i, a[i].Value)
		}
	}
}

func TestThresholdPolicy(t *testing.T) {
	p := ThresholdPolicy(4)
	cases := map[float64]int{0: 0, 0.24: 0, 0.25: 1, 0.5: 2, 0.99: 3}
	for v, want := range cases {
		if got := p(Event{Value: v}); got != want {
			t.Errorf("policy(%g) = %d, want %d", v, got, want)
		}
	}
	if p(Event{Value: 5}) != 3 {
		t.Error("overflow not clamped")
	}
	if p(Event{Value: -1}) != 0 {
		t.Error("underflow not clamped")
	}
}

func TestProposedBeatsModularAtRuntime(t *testing.T) {
	// The end-to-end payoff: on the same event stream, the proposed
	// scheme's cumulative reconfiguration time is below the modular
	// scheme's (matching the static cost-model comparison).
	mod, prop := fixtures(t)
	events := RandomWalkEvents(11, 500, time.Millisecond)
	run := func(f *fixture) time.Duration {
		m := manager(t, f)
		policy := ThresholdPolicy(len(f.sch.Design.Configurations))
		if _, err := Simulate(m, events, policy); err != nil {
			t.Fatal(err)
		}
		return m.Stats().ReconfigTime
	}
	mt := run(mod)
	pt := run(prop)
	if pt >= mt {
		t.Errorf("proposed runtime %v not below modular %v", pt, mt)
	}
	t.Logf("runtime over %d events: proposed %v, modular %v", len(events), pt, mt)
}

func TestSwitchFailureLeavesConsistentState(t *testing.T) {
	// Failure injection: corrupt one region's partial bitstream. A switch
	// that needs it must fail, but regions loaded before the failure keep
	// their new contents and the manager stays usable.
	mod, _ := fixtures(t)
	// Deep-copy the bitstream set so other tests are unaffected.
	bad := &bitstream.Set{}
	for _, region := range mod.bits.PerRegion {
		var parts []*bitstream.Bitstream
		for _, bs := range region {
			cp := *bs
			cp.Words = append([]uint32(nil), bs.Words...)
			parts = append(parts, &cp)
		}
		bad.PerRegion = append(bad.PerRegion, parts)
	}
	m, err := NewManager(mod.sch, bad, icap.New(32, 100_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SwitchTo(0); err != nil {
		t.Fatal(err)
	}
	// Corrupt a part that switching to config 3 must reload.
	ri, want := -1, scheme.Inactive
	for r := range mod.sch.Regions {
		w := mod.sch.Active[3][r]
		if w != scheme.Inactive && w != m.Loaded(r) {
			ri, want = r, w
			break
		}
	}
	if ri < 0 {
		t.Fatal("no region changes between configs 0 and 3")
	}
	bad.PerRegion[ri][want].Words[10]++ // break the CRC
	before := m.Current()
	_, err = m.SwitchTo(3)
	if err == nil {
		t.Fatal("switch with corrupted bitstream succeeded")
	}
	if !errors.Is(err, icap.ErrCRC) {
		t.Errorf("err = %v, want CRC failure", err)
	}
	if m.Current() != before {
		t.Errorf("failed switch changed Current to %d", m.Current())
	}
	// The corrupted region must not report the new part as loaded.
	if m.Loaded(ri) == want {
		t.Error("corrupted load marked as present")
	}
	// Recovery: repairing the bitstream lets the same switch succeed.
	bad.PerRegion[ri][want].Words[10]--
	if _, err := m.SwitchTo(3); err != nil {
		t.Fatalf("repaired switch failed: %v", err)
	}
	if m.Current() != 3 {
		t.Error("manager did not recover")
	}
}
