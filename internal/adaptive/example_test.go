package adaptive_test

import (
	"fmt"
	"time"

	"prpart/internal/adaptive"
	"prpart/internal/bitstream"
	"prpart/internal/design"
	"prpart/internal/device"
	"prpart/internal/floorplan"
	"prpart/internal/icap"
	"prpart/internal/partition"
)

// A manager deploys a partitioned design on the simulated fabric and
// switches configurations on demand, loading exactly the partial
// bitstreams each transition requires.
func ExampleManager() {
	d := design.SingleModeExample()
	s := partition.Modular(d)
	dev, _ := device.ByName("FX30T")
	plan, err := floorplan.Place(s, dev)
	if err != nil {
		fmt.Println(err)
		return
	}
	bits, err := bitstream.Assemble(s, plan)
	if err != nil {
		fmt.Println(err)
		return
	}
	mgr, err := adaptive.NewManager(s, bits, icap.New(32, 100_000_000))
	if err != nil {
		fmt.Println(err)
		return
	}
	boot, _ := mgr.SwitchTo(0)    // CAN -> FIR
	again, _ := mgr.SwitchTo(0)   // already there: free
	toOther, _ := mgr.SwitchTo(1) // Eth -> FPU -> CRC: loads 3 regions
	back, _ := mgr.SwitchTo(0)    // regions still hold CAN/FIR: free
	fmt.Println("boot loads regions:", boot > 0)
	fmt.Println("re-entry free:", again == 0)
	fmt.Println("first visit loads:", toOther > 0)
	fmt.Println("return free (don't-care regions kept):", back == 0)
	// Output:
	// boot loads regions: true
	// re-entry free: true
	// first visit loads: true
	// return free (don't-care regions kept): true
}

// Deterministic synthetic workloads drive simulations.
func ExampleRandomWalkEvents() {
	events := adaptive.RandomWalkEvents(42, 3, time.Millisecond)
	for _, ev := range events {
		fmt.Printf("%v in range: %v\n", ev.Time, ev.Value >= 0 && ev.Value < 1)
	}
	// Output:
	// 0s in range: true
	// 1ms in range: true
	// 2ms in range: true
}
