package adaptive

import (
	"sync"
	"testing"

	"prpart/internal/faults"
	"prpart/internal/icap"
)

// TestConcurrentSwitchPrefetchUnderFaults hammers one manager from
// several goroutines — switches, prefetches and observers — over a
// fault-injecting port, under -race. Beyond the absence of data races it
// asserts the manager's accounting stays consistent: a final successful
// switch leaves the fabric matching Loaded(), Degraded() reflecting the
// outcome, and the stats counters coherent with each other.
func TestConcurrentSwitchPrefetchUnderFaults(t *testing.T) {
	_, prop := fixtures(t)
	port := icap.New(32, 100_000_000)
	port.AttachInjector(faults.New(11, faults.Uniform(2e-8)))
	m, err := NewManager(prop.sch, prop.bits, port)
	if err != nil {
		t.Fatal(err)
	}
	m.SetRecovery(Recovery{MaxRetries: 3, Scrub: true, SafeConfig: 0})
	if _, err := m.SwitchTo(0); err != nil {
		t.Fatalf("boot: %v", err)
	}

	nCfg := len(prop.sch.Design.Configurations)
	const iters = 60
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch g % 2 {
				case 0:
					m.SwitchTo((i*7 + g) % nCfg) // degraded fallbacks are fine here
				case 1:
					if _, err := m.Prefetch((i*5 + g) % nCfg); err != nil {
						t.Errorf("prefetch: %v", err)
					}
				}
			}
		}(g)
	}
	// Observers: public reads must be safe while the writers run.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// -1 is legitimate mid-storm: a failed fallback leaves the
				// current configuration unknown until a later switch repairs
				// the fabric from the per-region truth.
				if cur := m.Current(); cur < -1 || cur >= nCfg {
					t.Errorf("Current() = %d out of range", cur)
				}
				m.Degraded()
				st := m.Stats()
				if st.Switches < 0 || st.RegionLoads < st.Switches-st.Fallbacks {
					// Every completed switch past boot loads at least zero
					// regions; the strong invariants are asserted after the
					// writers stop. This is a smoke read under contention.
					t.Errorf("implausible stats under contention: %+v", st)
				}
				for ri := range prop.sch.Regions {
					if pi := m.Loaded(ri); pi < -1 || pi >= len(prop.sch.Regions[ri].Parts) {
						t.Errorf("Loaded(%d) = %d out of range", ri, pi)
					}
				}
			}
		}()
	}
	wg.Wait()

	// Quiesce: drive a final clean switch with a fault-free port view by
	// retrying until it sticks (the injector is probabilistic).
	final := -1
	for i := 0; i < 200; i++ {
		target := i % nCfg
		if _, err := m.SwitchTo(target); err == nil && !m.Degraded() && m.Current() == target {
			final = target
			break
		}
	}
	if final < 0 {
		t.Fatal("no clean switch achieved after the storm")
	}
	// The fabric must realise the final configuration: every region it
	// activates holds the demanded part.
	for ri, want := range prop.sch.Active[final] {
		if want == -1 {
			continue
		}
		if got := m.Loaded(ri); got != want {
			t.Errorf("region %d holds part %d, configuration %d demands %d", ri, got, final, want)
		}
	}
	st := m.Stats()
	if st.Switches == 0 || st.RegionLoads == 0 {
		t.Fatalf("no work recorded: %+v", st)
	}
	if st.Frames <= 0 {
		t.Errorf("Frames = %d after %d loads", st.Frames, st.RegionLoads)
	}
	if st.ReconfigTime <= 0 {
		t.Errorf("ReconfigTime = %v after %d switches", st.ReconfigTime, st.Switches)
	}
	if st.Retries > 0 && st.RetryTime <= 0 {
		t.Errorf("%d retries but RetryTime = %v", st.Retries, st.RetryTime)
	}
	if st.Scrubs > 0 && st.ScrubTime <= 0 {
		t.Errorf("%d scrubs but ScrubTime = %v", st.Scrubs, st.ScrubTime)
	}
	// Port and manager agree on the volume of work: the port saw every
	// load the manager issued (prefetches included).
	if ps := port.Stats(); ps.Loads < st.RegionLoads {
		t.Errorf("port saw %d loads, manager recorded %d", ps.Loads, st.RegionLoads)
	}
}
