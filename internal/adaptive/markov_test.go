package adaptive

import (
	"math"
	"strings"
	"testing"

	"prpart/internal/bitstream"
	"prpart/internal/cost"
	"prpart/internal/design"
	"prpart/internal/device"
	"prpart/internal/floorplan"
	"prpart/internal/icap"
	"prpart/internal/partition"
)

func hotPair(n, a, b int, p float64) [][]float64 {
	m := make([][]float64, n)
	rest := (1 - p) / float64(n-1)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			if i == j {
				continue
			}
			m[i][j] = rest
		}
	}
	// Concentrate mass on the a<->b cycle.
	for i := range m {
		for j := range m[i] {
			if i != j {
				m[i][j] = rest / 2
			}
		}
		m[i][i] = 0
	}
	m[a][b], m[b][a] = p, p
	// Normalise rows.
	for i := range m {
		sum := 0.0
		for _, v := range m[i] {
			sum += v
		}
		for j := range m[i] {
			m[i][j] /= sum
		}
	}
	return m
}

func TestMarkovSequenceValidAndDeterministic(t *testing.T) {
	p := hotPair(4, 0, 1, 0.9)
	a, err := MarkovSequence(5, p, 500)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := MarkovSequence(5, p, 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sequence not deterministic")
		}
		if a[i] < 0 || a[i] >= 4 {
			t.Fatalf("state %d out of range", a[i])
		}
	}
	// The hot pair must dominate the observed switches.
	hot, total := 0, 0
	for i := 1; i < len(a); i++ {
		if a[i] == a[i-1] {
			continue
		}
		total++
		if (a[i-1] == 0 && a[i] == 1) || (a[i-1] == 1 && a[i] == 0) {
			hot++
		}
	}
	if total == 0 || float64(hot)/float64(total) < 0.5 {
		t.Errorf("hot pair share = %d/%d, want majority", hot, total)
	}
}

func TestMarkovSequenceRejectsBadMatrix(t *testing.T) {
	if _, err := MarkovSequence(1, nil, 10); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := MarkovSequence(1, [][]float64{{0.5}}, 10); err == nil {
		t.Error("non-stochastic row accepted")
	}
	if _, err := MarkovSequence(1, [][]float64{{1, 0}, {0.5}}, 10); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := MarkovSequence(1, [][]float64{{-1, 2}, {0.5, 0.5}}, 10); err == nil {
		t.Error("negative entry accepted")
	}
}

func TestEstimateWeights(t *testing.T) {
	seq := []int{0, 1, 0, 1, 2, 2, 0}
	w, err := EstimateWeights(seq, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Switches: 0->1 (x2), 1->0, 1->2, 2->0 — 5 total; 2->2 ignored.
	if math.Abs(w[0][1]-0.4) > 1e-9 || math.Abs(w[1][0]-0.2) > 1e-9 ||
		math.Abs(w[1][2]-0.2) > 1e-9 || math.Abs(w[2][0]-0.2) > 1e-9 {
		t.Errorf("weights = %v", w)
	}
	if _, err := EstimateWeights([]int{0, 9}, 3); err == nil {
		t.Error("out-of-range sequence accepted")
	}
	empty, err := EstimateWeights([]int{1, 1, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range empty {
		for j := range empty[i] {
			if empty[i][j] != 0 {
				t.Error("no-switch sequence should give zero weights")
			}
		}
	}
}

func TestClosedLoopAdaptation(t *testing.T) {
	// The full future-work loop: deploy with the uniform-objective
	// scheme, observe the real (skewed) switching pattern, estimate its
	// distribution, re-partition with the weighted objective, and verify
	// the new scheme is no worse on the same workload.
	d := design.VideoReceiver()
	budget := design.CaseStudyBudget()
	n := len(d.Configurations)

	// A workload that lives almost entirely on configurations 0 and 3
	// (the demodulator/decoder switch).
	p := hotPair(n, 0, 3, 0.92)
	seq, err := MarkovSequence(17, p, 4000)
	if err != nil {
		t.Fatal(err)
	}

	uniform, err := partition.Solve(d, partition.Options{Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	w, err := EstimateWeights(seq, n)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := partition.Solve(d, partition.Options{Budget: budget, TransitionWeights: w})
	if err != nil {
		t.Fatal(err)
	}

	framesOn := func(r *partition.Result) int {
		m := cost.Transitions(r.Scheme)
		total := 0
		for k := 1; k < len(seq); k++ {
			total += m[seq[k-1]][seq[k]]
		}
		return total
	}
	fu, fw := framesOn(uniform), framesOn(weighted)
	if fw > fu {
		t.Errorf("re-partitioned scheme (%d frames) worse than original (%d) on the observed workload", fw, fu)
	}
	t.Logf("closed loop: uniform scheme %d frames, workload-adapted scheme %d frames over %d steps",
		fu, fw, len(seq))
}

func TestReplay(t *testing.T) {
	mod, _ := fixtures(t)
	m := manager(t, mod)
	st, err := Replay(m, []int{0, 1, 1, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	// 4 distinct switches (the repeated 1 is free).
	if st.Switches != 4 {
		t.Errorf("switches = %d, want 4", st.Switches)
	}
	if _, err := Replay(m, []int{99}); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Errorf("bad sequence: %v", err)
	}
}

func TestPrefetchHidesDontCareLoads(t *testing.T) {
	// The single-mode example's two configurations use disjoint region
	// sets under the modular scheme: prefetching the other configuration
	// during operation makes the eventual switch free.
	d := design.SingleModeExample()
	s := partition.Modular(d)
	dev, err := device.ByName("FX30T")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := floorplan.Place(s, dev)
	if err != nil {
		t.Fatal(err)
	}
	bits, err := bitstream.Assemble(s, plan)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(s, bits, icap.New(32, 100_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SwitchTo(0); err != nil {
		t.Fatal(err)
	}
	// Without prefetch the 0->1 switch pays for config 1's regions.
	pf, err := m.Prefetch(1)
	if err != nil {
		t.Fatal(err)
	}
	if pf == 0 {
		t.Fatal("prefetch loaded nothing; expected config 1's regions")
	}
	d01, err := m.SwitchTo(1)
	if err != nil {
		t.Fatal(err)
	}
	if d01 != 0 {
		t.Errorf("switch after prefetch cost %v, want 0", d01)
	}
	st := m.Stats()
	if st.PrefetchTime != pf {
		t.Errorf("PrefetchTime = %v, want %v", st.PrefetchTime, pf)
	}
	if st.ReconfigTime == 0 {
		t.Error("boot should have cost critical-path time")
	}
}

func TestPrefetchNeverTouchesLiveRegions(t *testing.T) {
	// On the modular video receiver every region is live in every
	// configuration: prefetch must be a no-op.
	mod, _ := fixtures(t)
	m := manager(t, mod)
	if _, err := m.SwitchTo(0); err != nil {
		t.Fatal(err)
	}
	pf, err := m.Prefetch(3)
	if err != nil {
		t.Fatal(err)
	}
	if pf != 0 {
		t.Errorf("prefetch on fully live scheme cost %v, want 0", pf)
	}
	if _, err := m.Prefetch(-2); err == nil {
		t.Error("out-of-range prefetch accepted")
	}
}
