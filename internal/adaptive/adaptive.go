// Package adaptive simulates the runtime half of an adaptive PR system:
// the configuration-management software the paper places on the embedded
// processor (§III-A). A Manager owns a partitioning scheme, its partial
// bitstreams and an ICAP port; it tracks what every region currently
// holds, loads exactly the regions a configuration switch requires, and
// accounts realised reconfiguration time — the quantity the partitioning
// algorithm minimises in expectation.
package adaptive

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"prpart/internal/bitstream"
	"prpart/internal/icap"
	"prpart/internal/obs"
	"prpart/internal/scheme"
)

// ErrNoConfig reports a configuration index out of range.
var ErrNoConfig = errors.New("adaptive: configuration index out of range")

// unloaded marks a region whose contents are still unknown (never
// configured since power-up).
const unloaded = -1

// Manager is the runtime configuration manager. Its public methods are
// safe for concurrent use: one coarse mutex serialises every operation,
// matching the hardware it models — there is a single ICAP port, so
// reconfigurations are inherently sequential. A Prefetch and a SwitchTo
// racing each other therefore interleave at method granularity, never
// mid-reconfiguration.
type Manager struct {
	mu   sync.Mutex
	sch  *scheme.Scheme
	bits *bitstream.Set
	port *icap.Port

	current int   // current configuration, -1 before Boot
	loaded  []int // per region: part index currently in the fabric

	rec      Recovery
	degraded bool

	stats Stats

	// prefetched[ri] marks that region ri's current contents were loaded
	// by Prefetch; a later SwitchTo that finds the region already correct
	// counts it as a prefetch hit. Purely observational.
	prefetched []bool
	obs        mgrObs
}

// mgrObs holds the manager's observability instruments (nil when off).
type mgrObs struct {
	o                            *obs.Obs
	switches, loads, frames      *obs.Counter
	retries, scrubs, fallbacks   *obs.Counter
	prefetchLoads, prefetchHits  *obs.Counter
	reconfig, prefetch, recovery *obs.Timer
}

// AttachObs mirrors the manager's runtime activity into the registry:
// counters adaptive.switches, adaptive.region_loads, adaptive.frames,
// adaptive.retries, adaptive.scrubs, adaptive.fallbacks,
// adaptive.prefetch_loads and adaptive.prefetch_hits (regions a switch
// found already loaded thanks to an earlier Prefetch); timers
// adaptive.reconfig, adaptive.prefetch and adaptive.recovery (time spent
// on retries and scrubs). One "switch" trace event is emitted per
// completed SwitchTo. Nil detaches.
func (m *Manager) AttachObs(o *obs.Obs) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if o == nil {
		m.obs = mgrObs{}
		return
	}
	m.obs = mgrObs{
		o:             o,
		switches:      o.Counter("adaptive.switches"),
		loads:         o.Counter("adaptive.region_loads"),
		frames:        o.Counter("adaptive.frames"),
		retries:       o.Counter("adaptive.retries"),
		scrubs:        o.Counter("adaptive.scrubs"),
		fallbacks:     o.Counter("adaptive.fallbacks"),
		prefetchLoads: o.Counter("adaptive.prefetch_loads"),
		prefetchHits:  o.Counter("adaptive.prefetch_hits"),
		reconfig:      o.Timer("adaptive.reconfig"),
		prefetch:      o.Timer("adaptive.prefetch"),
		recovery:      o.Timer("adaptive.recovery"),
	}
}

// Recovery configures how the manager survives failed loads. The policy
// NewManager installs (no retries, no scrubbing, SafeConfig -1) is
// fail-fast: any load error aborts the switch with that error.
type Recovery struct {
	// MaxRetries is how many times a failed region load is re-attempted
	// before the switch gives up on the region.
	MaxRetries int
	// Scrub enables readback verification after every load; a mismatch
	// (e.g. a configuration upset) triggers a scrub — reloading the
	// bitstream — charged against the same retry budget.
	Scrub bool
	// SafeConfig designates the degraded-mode fallback: when a switch
	// exhausts its retries, the manager abandons the target and drives
	// the fabric toward this configuration instead of failing. Negative
	// disables the fallback.
	SafeConfig int
}

// Stats accumulates runtime behaviour.
type Stats struct {
	// Switches counts configuration changes completed (including Boot and
	// successful degraded-mode fallbacks).
	Switches int
	// RegionLoads counts partial bitstreams loaded.
	RegionLoads int
	// Frames counts configuration frames written.
	Frames int
	// ReconfigTime is the cumulative time spent reconfiguring on the
	// critical path (SwitchTo), including failed attempts, retries,
	// readback verification and fallback loads.
	ReconfigTime time.Duration
	// PrefetchTime is the cumulative background loading time (Prefetch).
	PrefetchTime time.Duration

	// Retries counts re-attempted loads after transfer errors; RetryTime
	// is the port time the failed attempts wasted.
	Retries   int
	RetryTime time.Duration
	// Scrubs counts reloads forced by readback-verification mismatches;
	// ScrubTime is the time lost to the upset loads and the readbacks
	// that caught them.
	Scrubs    int
	ScrubTime time.Duration
	// Fallbacks counts degraded-mode entries: switches that exhausted
	// their retries and fell back to the safe configuration.
	Fallbacks int
	// LoadFailures counts region loads abandoned after the retry budget.
	LoadFailures int
}

// NewManager validates the inputs and returns a manager with all regions
// unloaded.
func NewManager(s *scheme.Scheme, bits *bitstream.Set, port *icap.Port) (*Manager, error) {
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("adaptive: scheme invalid: %w", err)
	}
	if len(bits.PerRegion) != len(s.Regions) {
		return nil, fmt.Errorf("adaptive: %d bitstream regions for %d scheme regions",
			len(bits.PerRegion), len(s.Regions))
	}
	for ri := range s.Regions {
		if len(bits.PerRegion[ri]) != len(s.Regions[ri].Parts) {
			return nil, fmt.Errorf("adaptive: region %d has %d bitstreams for %d parts",
				ri, len(bits.PerRegion[ri]), len(s.Regions[ri].Parts))
		}
	}
	loaded := make([]int, len(s.Regions))
	for i := range loaded {
		loaded[i] = unloaded
	}
	return &Manager{
		sch: s, bits: bits, port: port,
		current: -1, loaded: loaded,
		rec:        Recovery{SafeConfig: -1},
		prefetched: make([]bool, len(s.Regions)),
	}, nil
}

// SetRecovery installs the fault-recovery policy.
func (m *Manager) SetRecovery(r Recovery) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rec = r
}

// Degraded reports whether the manager is in degraded mode: the last
// requested switch exhausted its retries and fell back to the safe
// configuration. The next fully successful switch clears it.
func (m *Manager) Degraded() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.degraded
}

// Current returns the active configuration index, or -1 before Boot.
func (m *Manager) Current() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.current
}

// Loaded returns the part currently held by region ri (-1 if unknown).
func (m *Manager) Loaded(ri int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.loaded[ri]
}

// Stats returns a copy of the accumulated statistics.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// SwitchTo reconfigures the system into the target configuration: every
// region the configuration activates with a part other than its current
// contents is reloaded; don't-care regions are left untouched. It returns
// the realised reconfiguration time of this switch, including any failed
// attempts, retries, scrubs and fallback loads the recovery policy spent.
//
// When a region load exhausts the retry budget and Recovery.SafeConfig is
// set, the manager enters degraded mode: the target is abandoned and the
// fabric is driven toward the safe configuration instead, without
// returning an error. Without a safe configuration the error propagates
// and the failed region is left marked unloaded, so a later switch
// reloads it rather than trusting corrupt fabric state.
func (m *Manager) SwitchTo(config int) (time.Duration, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if config < 0 || config >= len(m.sch.Design.Configurations) {
		return 0, fmt.Errorf("%w: %d", ErrNoConfig, config)
	}
	if config == m.current {
		return 0, nil
	}
	total, err := m.configure(config)
	m.stats.ReconfigTime += total
	m.obs.reconfig.Observe(total)
	if err == nil {
		m.current = config
		m.degraded = false
		m.stats.Switches++
		m.obs.switches.Inc()
		if m.obs.o != nil {
			m.obs.o.Emit("adaptive", "switch",
				obs.Int("config", int64(config)), obs.Dur("cost", total))
		}
		return total, nil
	}
	if m.rec.SafeConfig < 0 {
		return total, err
	}
	// Degraded mode: abandon the target, drive toward the safe
	// configuration best-effort.
	m.stats.Fallbacks++
	m.obs.fallbacks.Inc()
	m.degraded = true
	ft := m.fallback(m.rec.SafeConfig)
	m.stats.ReconfigTime += ft
	m.obs.reconfig.Observe(ft)
	if m.obs.o != nil {
		m.obs.o.Emit("adaptive", "switch.fallback",
			obs.Int("target", int64(config)), obs.Int("safe", int64(m.rec.SafeConfig)),
			obs.Dur("cost", total+ft))
	}
	return total + ft, nil
}

// configure loads every region the target activates with a part other
// than its current contents, stopping at the first region that exhausts
// its retry budget.
func (m *Manager) configure(config int) (time.Duration, error) {
	var total time.Duration
	for ri := range m.sch.Regions {
		want := m.sch.Active[config][ri]
		if want == scheme.Inactive || m.loaded[ri] == want {
			if want != scheme.Inactive && m.prefetched[ri] {
				// The region is already correct because Prefetch loaded it.
				m.obs.prefetchHits.Inc()
				m.prefetched[ri] = false
			}
			continue
		}
		d, err := m.loadRegion(ri, want)
		total += d
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// fallback drives the fabric toward the safe configuration without ever
// failing: a region that still cannot be loaded is left unloaded for a
// later switch to repair. When every region lands the safe configuration
// becomes current; otherwise the current configuration is unknown (-1)
// and the next SwitchTo rebuilds from the per-region truth in loaded.
func (m *Manager) fallback(safe int) time.Duration {
	var total time.Duration
	ok := true
	for ri := range m.sch.Regions {
		want := m.sch.Active[safe][ri]
		if want == scheme.Inactive || m.loaded[ri] == want {
			continue
		}
		d, err := m.loadRegion(ri, want)
		total += d
		if err != nil {
			ok = false
		}
	}
	if ok {
		m.current = safe
		m.stats.Switches++
	} else {
		m.current = -1
	}
	return total
}

// loadRegion loads part want into region ri under the recovery policy and
// returns the realised time: failed attempts, retries, scrub reloads and
// readback verification all included. On any failure the region is marked
// unloaded — the fabric may hold a partial or upset write — so that a
// retry or a later switch rewrites it instead of trusting stale state.
func (m *Manager) loadRegion(ri, want int) (time.Duration, error) {
	bs := m.bits.PerRegion[ri][want]
	var total time.Duration
	for attempt := 0; ; attempt++ {
		d, err := m.port.Load(bs)
		attemptTime := d
		scrub := false
		if err == nil && m.rec.Scrub {
			vd, verr := m.port.Verify(bs)
			attemptTime += vd
			if verr != nil {
				err = verr
				scrub = true
			}
		}
		total += attemptTime
		if err == nil {
			m.loaded[ri] = want
			m.prefetched[ri] = false
			m.stats.RegionLoads++
			m.stats.Frames += bs.Frames
			m.obs.loads.Inc()
			m.obs.frames.Add(int64(bs.Frames))
			return total, nil
		}
		m.loaded[ri] = unloaded
		if attempt >= m.rec.MaxRetries {
			m.stats.LoadFailures++
			return total, fmt.Errorf("adaptive: loading %s: %w (gave up after %d attempts)",
				bs.Name, err, attempt+1)
		}
		if scrub {
			m.stats.Scrubs++
			m.stats.ScrubTime += attemptTime
			m.obs.scrubs.Inc()
		} else {
			m.stats.Retries++
			m.stats.RetryTime += attemptTime
			m.obs.retries.Inc()
		}
		m.obs.recovery.Observe(attemptTime)
	}
}

// Prefetch loads, ahead of time, every region that the anticipated
// configuration needs but the current configuration leaves don't-care —
// the configuration-prefetching idea of the paper's related work [4],
// applicable here exactly where the pairwise cost model has slack. The
// returned duration is the background loading time; a later SwitchTo to
// the anticipated configuration then skips those regions. Regions the
// current configuration actively uses are never touched.
//
// Prefetching is opportunistic: a region whose load fails even after the
// recovery policy's retries is simply left unloaded for the critical-path
// switch to (re)try, not reported as an error.
func (m *Manager) Prefetch(config int) (time.Duration, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if config < 0 || config >= len(m.sch.Design.Configurations) {
		return 0, fmt.Errorf("%w: %d", ErrNoConfig, config)
	}
	var total time.Duration
	for ri := range m.sch.Regions {
		want := m.sch.Active[config][ri]
		if want == scheme.Inactive || m.loaded[ri] == want {
			continue
		}
		if m.current >= 0 && m.sch.Active[m.current][ri] != scheme.Inactive {
			continue // region is live; cannot be reconfigured underneath
		}
		d, err := m.loadRegion(ri, want)
		m.stats.PrefetchTime += d
		total += d
		if err == nil {
			m.prefetched[ri] = true
			m.obs.prefetchLoads.Inc()
		}
	}
	m.obs.prefetch.Observe(total)
	return total, nil
}

// PredictedFrames returns the pairwise cost-model estimate for the
// transition from -> to: the frames of every region both configurations
// activate with different parts. The realised cost of SwitchTo can exceed
// this when a region was left in a third state by earlier don't-care
// transitions; it never falls below it.
func (m *Manager) PredictedFrames(from, to int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := 0
	for ri := range m.sch.Regions {
		a, b := m.sch.Active[from][ri], m.sch.Active[to][ri]
		if a != scheme.Inactive && b != scheme.Inactive && a != b {
			t += m.sch.Regions[ri].Frames()
		}
	}
	return t
}

// Event is one environmental observation driving adaptation.
type Event struct {
	// Time is the observation timestamp (informational).
	Time time.Duration
	// Value is the observed quantity (e.g. SNR, channel index).
	Value float64
}

// Policy maps an environmental event to the configuration the system
// should adopt.
type Policy func(Event) int

// Trace records one step of a simulation.
type Trace struct {
	Event    Event
	Config   int
	Switched bool
	Cost     time.Duration
}

// Simulate boots the manager into the policy's response to the first
// event, then feeds the remaining events in order, switching whenever the
// policy output changes. It returns the per-step trace.
func Simulate(m *Manager, events []Event, policy Policy) ([]Trace, error) {
	traces := make([]Trace, 0, len(events))
	for _, ev := range events {
		target := policy(ev)
		tr := Trace{Event: ev, Config: target}
		if target != m.Current() {
			d, err := m.SwitchTo(target)
			if err != nil {
				return traces, err
			}
			tr.Switched = true
			tr.Cost = d
		}
		traces = append(traces, tr)
	}
	return traces, nil
}

// RandomWalkEvents generates a deterministic event stream whose values
// wander in [0, 1) — a stand-in for a measured channel condition.
func RandomWalkEvents(seed int64, n int, step time.Duration) []Event {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Event, n)
	v := rng.Float64()
	for i := range out {
		v += (rng.Float64() - 0.5) * 0.2
		switch {
		case v < 0:
			v = -v
		case v >= 1:
			v = 2 - v - 1e-9
		}
		out[i] = Event{Time: time.Duration(i) * step, Value: v}
	}
	return out
}

// ThresholdPolicy maps [0,1) values onto configuration indices by equal
// bands: a simple "adapt to channel quality" rule.
func ThresholdPolicy(numConfigs int) Policy {
	return func(ev Event) int {
		c := int(ev.Value * float64(numConfigs))
		if c < 0 {
			c = 0
		}
		if c >= numConfigs {
			c = numConfigs - 1
		}
		return c
	}
}
