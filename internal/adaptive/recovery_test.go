package adaptive

import (
	"errors"
	"testing"
	"time"

	"prpart/internal/faults"
	"prpart/internal/icap"
	"prpart/internal/scheme"
)

// faultManager builds a manager over the modular fixture whose port
// carries the given injector and recovery policy.
func faultManager(t *testing.T, inj *faults.Injector, rec Recovery) (*Manager, *icap.Port) {
	t.Helper()
	mod, _ := fixtures(t)
	port := icap.New(32, 100_000_000)
	port.AttachInjector(inj)
	m, err := NewManager(mod.sch, mod.bits, port)
	if err != nil {
		t.Fatal(err)
	}
	m.SetRecovery(rec)
	return m, port
}

// changedRegion returns the first region a switch to config b must
// reload — the region whose loads a schedule can poison.
func changedRegion(m *Manager, b int) int {
	for r := range m.sch.Regions {
		want := m.sch.Active[b][r]
		if want == scheme.Inactive || m.Loaded(r) == want {
			continue
		}
		return r
	}
	return -1
}

func TestFaultRetryThenSucceed(t *testing.T) {
	// One CRC-corrupting fault on the very first load: with a retry
	// budget the boot switch must recover and complete.
	for _, tc := range []struct {
		name string
		kind faults.Kind
	}{
		{"bit flip", faults.BitFlip},
		{"truncation", faults.Truncate},
		{"fetch failure", faults.FetchFail},
	} {
		t.Run(tc.name, func(t *testing.T) {
			inj := faults.New(1, faults.Rates{})
			inj.ScheduleAt(0, tc.kind)
			m, port := faultManager(t, inj, Recovery{MaxRetries: 2, SafeConfig: -1})
			d, err := m.SwitchTo(0)
			if err != nil {
				t.Fatalf("switch did not recover: %v", err)
			}
			st := m.Stats()
			if st.Retries != 1 {
				t.Errorf("Retries = %d, want 1", st.Retries)
			}
			if st.RetryTime <= 0 || st.RetryTime >= d {
				t.Errorf("RetryTime = %v, want in (0, %v)", st.RetryTime, d)
			}
			if m.Current() != 0 || m.Degraded() {
				t.Errorf("manager state: current %d degraded %v", m.Current(), m.Degraded())
			}
			if port.Stats().FailedLoads != 1 {
				t.Errorf("port failed loads = %d, want 1", port.Stats().FailedLoads)
			}
			// The realised time must include the wasted attempt.
			if d <= st.ReconfigTime-st.RetryTime-time.Nanosecond {
				t.Errorf("switch time %v does not cover retry time %v", d, st.RetryTime)
			}
		})
	}
}

func TestFaultRetryExhaustionFallsBack(t *testing.T) {
	// Boot cleanly into config 0, then poison every attempt of the first
	// region switching to config 3 reloads. The switch must abandon the
	// target and fall back to the safe configuration without an error.
	const maxRetries = 1
	inj := faults.New(2, faults.Rates{})
	m, _ := faultManager(t, inj, Recovery{MaxRetries: maxRetries, SafeConfig: 0})
	if _, err := m.SwitchTo(0); err != nil {
		t.Fatal(err)
	}
	ri := changedRegion(m, 3)
	if ri < 0 {
		t.Fatal("no region changes between configs 0 and 3")
	}
	base := inj.Loads()
	for a := 0; a <= maxRetries; a++ {
		inj.ScheduleAt(base+a, faults.BitFlip)
	}
	d, err := m.SwitchTo(3)
	if err != nil {
		t.Fatalf("fallback surfaced as error: %v", err)
	}
	if d <= 0 {
		t.Error("fallback switch cost no time")
	}
	st := m.Stats()
	if st.Fallbacks != 1 || st.LoadFailures != 1 || st.Retries != maxRetries {
		t.Errorf("stats %+v: want 1 fallback, 1 load failure, %d retries", st, maxRetries)
	}
	if !m.Degraded() {
		t.Error("manager not in degraded mode after fallback")
	}
	if m.Current() != 0 {
		t.Errorf("current = %d, want safe config 0", m.Current())
	}
	if m.Loaded(ri) != m.sch.Active[0][ri] {
		t.Errorf("region %d holds %d after fallback, want %d", ri, m.Loaded(ri), m.sch.Active[0][ri])
	}
	// A later clean switch leaves degraded mode.
	if _, err := m.SwitchTo(3); err != nil {
		t.Fatal(err)
	}
	if m.Degraded() || m.Current() != 3 {
		t.Errorf("recovery switch: current %d degraded %v", m.Current(), m.Degraded())
	}
}

func TestFaultExhaustionWithoutSafeConfigFails(t *testing.T) {
	// Satellite check: with no fallback the error propagates, and the
	// failed region is marked unloaded, never left stale.
	const maxRetries = 1
	inj := faults.New(3, faults.Rates{})
	m, _ := faultManager(t, inj, Recovery{MaxRetries: maxRetries, SafeConfig: -1})
	if _, err := m.SwitchTo(0); err != nil {
		t.Fatal(err)
	}
	ri := changedRegion(m, 3)
	if ri < 0 {
		t.Fatal("no region changes between configs 0 and 3")
	}
	was := m.Loaded(ri)
	base := inj.Loads()
	for a := 0; a <= maxRetries; a++ {
		inj.ScheduleAt(base+a, faults.BitFlip)
	}
	_, err := m.SwitchTo(3)
	if !errors.Is(err, icap.ErrCRC) {
		t.Fatalf("err = %v, want ErrCRC", err)
	}
	if m.Current() != 0 {
		t.Errorf("failed switch moved current to %d", m.Current())
	}
	if got := m.Loaded(ri); got != -1 {
		t.Errorf("failed region reports part %d loaded (was %d), want -1 (unloaded)", got, was)
	}
	// Because the region is unloaded, the next clean switch reloads it.
	loadsBefore := m.Stats().RegionLoads
	if _, err := m.SwitchTo(3); err != nil {
		t.Fatal(err)
	}
	if m.Stats().RegionLoads == loadsBefore {
		t.Error("recovered switch did not reload the poisoned region")
	}
}

func TestFaultScrubRepairsUpset(t *testing.T) {
	// An SEU passes the load-time CRC; only readback verification (Scrub)
	// catches it, and the scrub reload repairs the region.
	inj := faults.New(4, faults.Rates{})
	inj.ScheduleAt(0, faults.SEU)
	m, port := faultManager(t, inj, Recovery{MaxRetries: 2, Scrub: true, SafeConfig: -1})
	if _, err := m.SwitchTo(0); err != nil {
		t.Fatalf("scrub did not repair the upset: %v", err)
	}
	st := m.Stats()
	if st.Scrubs != 1 || st.ScrubTime <= 0 {
		t.Errorf("Scrubs = %d, ScrubTime = %v; want 1 scrub with time", st.Scrubs, st.ScrubTime)
	}
	if st.Retries != 0 {
		t.Errorf("Retries = %d, want 0 (upsets are scrubs, not retries)", st.Retries)
	}
	ps := port.Stats()
	if ps.VerifyErrors != 1 {
		t.Errorf("port verify errors = %d, want 1", ps.VerifyErrors)
	}
	// Every successful load was verified: readbacks >= region loads.
	if ps.Readbacks < st.RegionLoads {
		t.Errorf("readbacks %d < region loads %d with scrub on", ps.Readbacks, st.RegionLoads)
	}
}

func TestFaultScrubDisabledMissesUpset(t *testing.T) {
	// Without scrubbing the upset goes unnoticed: the switch succeeds and
	// the corruption stays in configuration memory.
	inj := faults.New(5, faults.Rates{})
	inj.ScheduleAt(0, faults.SEU)
	m, port := faultManager(t, inj, Recovery{MaxRetries: 2, SafeConfig: -1})
	if _, err := m.SwitchTo(0); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Scrubs != 0 {
		t.Errorf("Scrubs = %d without scrub mode", st.Scrubs)
	}
	// The first loaded region's contents no longer verify.
	mod, _ := fixtures(t)
	bad := 0
	for ri := range mod.sch.Regions {
		want := mod.sch.Active[0][ri]
		if want == scheme.Inactive {
			continue
		}
		if _, err := port.Verify(mod.bits.PerRegion[ri][want]); err != nil {
			bad++
		}
	}
	if bad != 1 {
		t.Errorf("%d regions fail verification, want exactly the upset one", bad)
	}
}

func TestFaultPrefetchSkipsFailedRegion(t *testing.T) {
	// Prefetch is opportunistic: persistent faults on a prefetched region
	// leave it unloaded without failing the call.
	mod, _ := fixtures(t)
	// Find a region config 1 needs that config 0 leaves don't-care.
	target := -1
	for ri := range mod.sch.Regions {
		if mod.sch.Active[0][ri] == scheme.Inactive && mod.sch.Active[1][ri] != scheme.Inactive {
			target = ri
			break
		}
	}
	if target < 0 {
		t.Skip("no don't-care region between configs 0 and 1")
	}
	inj := faults.New(6, faults.Rates{})
	m, _ := faultManager(t, inj, Recovery{MaxRetries: 1, SafeConfig: -1})
	if _, err := m.SwitchTo(0); err != nil {
		t.Fatal(err)
	}
	base := inj.Loads()
	for a := 0; a < 2; a++ {
		inj.ScheduleAt(base+a, faults.BitFlip)
	}
	if _, err := m.Prefetch(1); err != nil {
		t.Fatalf("opportunistic prefetch returned error: %v", err)
	}
	if got := m.Loaded(target); got != -1 {
		t.Errorf("failed prefetch region holds %d, want -1", got)
	}
	if m.Stats().LoadFailures != 1 {
		t.Errorf("LoadFailures = %d, want 1", m.Stats().LoadFailures)
	}
}

func TestFaultRecoveryReproducible(t *testing.T) {
	// The whole stack — injector, port, manager — must replay identically
	// under the same seed, fault statistics included.
	mod, _ := fixtures(t)
	seq := make([]int, 120)
	for i := range seq {
		seq[i] = (i * 7) % len(mod.sch.Design.Configurations)
	}
	run := func(seed int64) (Stats, icap.Stats, faults.Stats) {
		inj := faults.New(seed, faults.Uniform(5e-5))
		m, port := faultManager(t, inj, Recovery{MaxRetries: 3, Scrub: true, SafeConfig: 0})
		for _, c := range seq {
			if _, err := m.SwitchTo(c); err != nil {
				t.Fatalf("workload aborted: %v", err)
			}
		}
		return m.Stats(), port.Stats(), inj.Stats()
	}
	m1, p1, i1 := run(99)
	m2, p2, i2 := run(99)
	if m1 != m2 {
		t.Errorf("manager stats diverged:\n%+v\n%+v", m1, m2)
	}
	if p1 != p2 {
		t.Errorf("port stats diverged:\n%+v\n%+v", p1, p2)
	}
	if i1 != i2 {
		t.Errorf("injector stats diverged:\n%+v\n%+v", i1, i2)
	}
	if i1.Total() == 0 || m1.Retries+m1.Scrubs == 0 {
		t.Errorf("fault process too quiet to test recovery: injected %d, retries %d, scrubs %d",
			i1.Total(), m1.Retries, m1.Scrubs)
	}
	m3, _, i3 := run(100)
	if i1 == i3 && m1 == m3 {
		t.Error("different seeds produced identical fault statistics")
	}
}
