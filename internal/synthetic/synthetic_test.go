package synthetic

import (
	"math/rand"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(1, 20)
	b := Generate(1, 20)
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].Configurations) != len(b[i].Configurations) {
			t.Fatalf("design %d differs across identical seeds", i)
		}
		for ci := range a[i].Configurations {
			am, bm := a[i].Configurations[ci].Modes, b[i].Configurations[ci].Modes
			for k := range am {
				if am[k] != bm[k] {
					t.Fatalf("design %d config %d differs", i, ci)
				}
			}
		}
	}
	c := Generate(2, 20)
	same := true
	for i := range a {
		if len(a[i].Configurations) != len(c[i].Configurations) ||
			len(a[i].Modules) != len(c[i].Modules) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced structurally identical corpora (suspicious)")
	}
}

func TestGeneratedDesignsValid(t *testing.T) {
	for i, d := range Generate(7, 100) {
		if err := d.Validate(); err != nil {
			t.Errorf("design %d (%s): %v", i, d.Name, err)
		}
	}
}

func TestDistributionBounds(t *testing.T) {
	for _, d := range Generate(3, 200) {
		if n := len(d.Modules); n < MinModules || n > MaxModules {
			t.Errorf("%s: %d modules out of [%d,%d]", d.Name, n, MinModules, MaxModules)
		}
		for _, m := range d.Modules {
			if n := len(m.Modes); n < MinModes || n > MaxModes {
				t.Errorf("%s/%s: %d modes out of [%d,%d]", d.Name, m.Name, n, MinModes, MaxModes)
			}
			for _, md := range m.Modes {
				if md.Resources.CLB < MinCLBs || md.Resources.CLB > MaxCLBs {
					t.Errorf("%s/%s/%s: CLB %d out of [%d,%d]",
						d.Name, m.Name, md.Name, md.Resources.CLB, MinCLBs, MaxCLBs)
				}
				if !md.Resources.IsNonNegative() {
					t.Errorf("%s: negative resources %v", d.Name, md.Resources)
				}
			}
		}
		if d.Static.CLB != StaticCLBs || d.Static.BRAM != StaticBRAMs {
			t.Errorf("%s: static %v", d.Name, d.Static)
		}
	}
}

func TestEveryModeUsed(t *testing.T) {
	for _, d := range Generate(11, 100) {
		if got, want := len(d.UsedModes()), len(d.AllModes()); got != want {
			t.Errorf("%s: %d/%d modes used", d.Name, got, want)
		}
	}
}

func TestClassMixAndCharacter(t *testing.T) {
	const n = 400
	designs := Generate(5, n)
	// Aggregate BRAM/CLB and DSP/CLB ratios per class; memory classes
	// must be clearly BRAM-richer than logic, DSP classes DSP-richer.
	ratio := make([]struct{ bram, dsp, clb float64 }, NumClasses)
	for i, d := range designs {
		c := ClassOf(i)
		for _, m := range d.Modules {
			for _, md := range m.Modes {
				ratio[c].bram += float64(md.Resources.BRAM)
				ratio[c].dsp += float64(md.Resources.DSP)
				ratio[c].clb += float64(md.Resources.CLB)
			}
		}
	}
	bramRatio := func(c Class) float64 { return ratio[c].bram / ratio[c].clb }
	dspRatio := func(c Class) float64 { return ratio[c].dsp / ratio[c].clb }
	if bramRatio(Memory) < 3*bramRatio(Logic) {
		t.Errorf("memory class not BRAM-rich: %g vs logic %g", bramRatio(Memory), bramRatio(Logic))
	}
	if dspRatio(DSP) < 3*dspRatio(Logic) {
		t.Errorf("DSP class not DSP-rich: %g vs logic %g", dspRatio(DSP), dspRatio(Logic))
	}
	if bramRatio(DSPMemory) < 3*bramRatio(Logic) || dspRatio(DSPMemory) < 3*dspRatio(Logic) {
		t.Error("DSP+memory class not rich in both")
	}
}

func TestClassString(t *testing.T) {
	names := map[Class]string{
		Logic:     "logic-intensive",
		Memory:    "memory-intensive",
		DSP:       "DSP-intensive",
		DSPMemory: "DSP-and-memory-intensive",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("Class(%d).String() = %q, want %q", int(c), c.String(), want)
		}
	}
	if Class(99).String() != "Class(99)" {
		t.Error("out-of-range class string")
	}
}

func TestOneUsesModeZero(t *testing.T) {
	// Over a few hundred designs, some configuration should exercise the
	// mode-0 (absent module) path.
	rng := rand.New(rand.NewSource(42))
	sawZero := false
	for i := 0; i < 300 && !sawZero; i++ {
		d := One(rng, Class(i%int(NumClasses)), "x")
		for _, c := range d.Configurations {
			for _, k := range c.Modes {
				if k == 0 {
					sawZero = true
				}
			}
		}
	}
	if !sawZero {
		t.Error("no generated configuration ever omitted a module")
	}
}

func TestConfigurationsUnique(t *testing.T) {
	for _, d := range Generate(13, 50) {
		seen := map[string]bool{}
		for _, c := range d.Configurations {
			k := ""
			for _, m := range c.Modes {
				k += string(rune('0' + m))
			}
			if seen[k] {
				t.Fatalf("%s: duplicate configuration %v", d.Name, c.Modes)
			}
			seen[k] = true
		}
	}
}
