// Package synthetic generates the random PR designs of the paper's §V
// evaluation: equal numbers of logic-intensive, memory-intensive,
// DSP-intensive and DSP-and-memory-intensive circuits, each with 2-6
// modules of 2-4 modes, 25-4000 CLBs per mode (other resources drawn from
// class-dependent ranges tied to the CLB count), a 90-CLB/8-BRAM static
// region, and random configurations generated until every mode is used at
// least once.
//
// Generation is fully deterministic for a given seed, so the 1000-design
// corpus of Figs. 7-9 is reproducible bit-for-bit.
package synthetic

import (
	"fmt"
	"math/rand"

	"prpart/internal/design"
	"prpart/internal/resource"
)

// Class is the resource flavour of a synthetic circuit.
type Class int

const (
	// Logic circuits are CLB-dominated with few BRAMs or DSPs.
	Logic Class = iota
	// Memory circuits carry a high BRAM-to-CLB ratio.
	Memory
	// DSP circuits carry a high DSP-to-CLB ratio.
	DSP
	// DSPMemory circuits are heavy in both BRAM and DSP.
	DSPMemory

	// NumClasses is the number of circuit classes.
	NumClasses
)

// String names the class as in the paper's §V.
func (c Class) String() string {
	switch c {
	case Logic:
		return "logic-intensive"
	case Memory:
		return "memory-intensive"
	case DSP:
		return "DSP-intensive"
	case DSPMemory:
		return "DSP-and-memory-intensive"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Distribution parameters from §V.
const (
	MinModules = 2
	MaxModules = 6
	MinModes   = 2
	MaxModes   = 4
	MinCLBs    = 25
	MaxCLBs    = 4000

	// StaticCLBs and StaticBRAMs are the fixed static-region overhead
	// (the paper's custom ICAP controller and associated logic).
	StaticCLBs  = 90
	StaticBRAMs = 8

	// maxConfigAttempts bounds the rejection sampling of configurations.
	maxConfigAttempts = 10000
)

// modeResources draws a mode utilisation for the class: CLBs uniform in
// [MinCLBs, MaxCLBs], BRAM/DSP from ranges proportional to the CLB count.
func modeResources(rng *rand.Rand, c Class) resource.Vector {
	return modeResourcesRange(rng, c, MinCLBs, MaxCLBs)
}

// modeResourcesRange is modeResources with an explicit CLB range; the
// huge tier draws much smaller modes so 10³–10⁴ of them still fit a
// real device budget.
func modeResourcesRange(rng *rand.Rand, c Class, minCLB, maxCLB int) resource.Vector {
	clb := minCLB + rng.Intn(maxCLB-minCLB+1)
	bramLo, bramHi, dspLo, dspHi := 0, 0, 0, 0
	switch c {
	case Logic:
		bramHi = clb / 400
		dspHi = clb / 400
	case Memory:
		bramLo, bramHi = clb/150, clb/50
		dspHi = clb / 400
	case DSP:
		bramHi = clb / 400
		dspLo, dspHi = clb/100, clb/40
	case DSPMemory:
		bramLo, bramHi = clb/150, clb/50
		dspLo, dspHi = clb/100, clb/40
	}
	return resource.New(clb, uniform(rng, bramLo, bramHi), uniform(rng, dspLo, dspHi))
}

func uniform(rng *rand.Rand, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + rng.Intn(hi-lo+1)
}

// One generates a single synthetic design of the given class.
func One(rng *rand.Rand, c Class, name string) *design.Design {
	d := &design.Design{
		Name:   name,
		Static: resource.New(StaticCLBs, StaticBRAMs, 0),
	}
	nModules := MinModules + rng.Intn(MaxModules-MinModules+1)
	for mi := 0; mi < nModules; mi++ {
		m := &design.Module{Name: fmt.Sprintf("M%d", mi)}
		nModes := MinModes + rng.Intn(MaxModes-MinModes+1)
		for k := 0; k < nModes; k++ {
			m.Modes = append(m.Modes, design.Mode{
				Name:      fmt.Sprintf("%d", k+1),
				Resources: modeResources(rng, c),
			})
		}
		d.Modules = append(d.Modules, m)
	}

	// Random configurations until every mode appears at least once.
	// A module is absent (mode 0) from a configuration with low
	// probability, exercising the §IV-D special case; at least one module
	// must be active.
	used := make(map[design.ModeRef]bool)
	total := 0
	for _, m := range d.Modules {
		total += len(m.Modes)
	}
	seen := make(map[string]bool)
	for attempt := 0; len(used) < total && attempt < maxConfigAttempts; attempt++ {
		cfg := design.Configuration{Modes: make([]int, nModules)}
		active := 0
		for mi, m := range d.Modules {
			if rng.Float64() < 0.1 && nModules > 1 {
				cfg.Modes[mi] = 0
				continue
			}
			cfg.Modes[mi] = 1 + rng.Intn(len(m.Modes))
			active++
		}
		if active == 0 {
			continue
		}
		key := fmt.Sprint(cfg.Modes)
		if seen[key] {
			continue
		}
		seen[key] = true
		d.Configurations = append(d.Configurations, cfg)
		for mi, k := range cfg.Modes {
			if k != 0 {
				used[design.ModeRef{Module: mi, Mode: k}] = true
			}
		}
	}
	return d
}

// Generate produces n designs with classes cycling through the four
// flavours (equal shares, as in the paper) from a deterministic stream.
func Generate(seed int64, n int) []*design.Design {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*design.Design, n)
	for i := range out {
		c := Class(i % int(NumClasses))
		out[i] = One(rng, c, fmt.Sprintf("syn-%04d-%s", i, c))
	}
	return out
}

// ClassOf recovers the class a generated design was drawn from (designs
// are named "syn-NNNN-<class>").
func ClassOf(i int) Class { return Class(i % int(NumClasses)) }

// Huge-tier distribution parameters. The paper's corpus stops at 24
// modes; the huge tier targets the multilevel engine's 10³–10⁴-mode
// regime. Modes are small (a deep design is made of many narrow
// kernels, not thousands of 4000-CLB giants) and configurations are
// sparse — each activates a few dozen of the thousands of modules, the
// shape that makes the connectivity hypergraph worth coarsening.
const (
	// HugeMinCLBs / HugeMaxCLBs is the per-mode CLB range.
	HugeMinCLBs = 8
	HugeMaxCLBs = 96
	// HugeActiveLo / HugeActiveHi is the active-module count per
	// configuration.
	HugeActiveLo = 24
	HugeActiveHi = 48
)

// HugeSizes is the target mode counts GenerateHuge cycles through.
// The 2×10⁴ tier arrived with parallel per-level refinement (PR 9),
// which removed the serial transfer scan that made it intractable.
var HugeSizes = []int{1000, 2500, 5000, 10000, 20000}

// HugeOne generates one huge synthetic design with (at least)
// targetModes modes. Coverage is systematic rather than rejection-
// sampled: a shuffled worklist of (module, mode) slots guarantees every
// mode appears in some configuration without the coupon-collector
// blowup random sampling would need at this scale, and a further ~20%
// of purely random configurations keeps the co-occurrence structure
// from being a disjoint partition of the slot list.
func HugeOne(rng *rand.Rand, c Class, name string, targetModes int) *design.Design {
	d := &design.Design{
		Name:   name,
		Static: resource.New(StaticCLBs, StaticBRAMs, 0),
	}
	total := 0
	for total < targetModes {
		m := &design.Module{Name: fmt.Sprintf("M%d", len(d.Modules))}
		nModes := MinModes + rng.Intn(MaxModes-MinModes+1)
		for k := 0; k < nModes; k++ {
			m.Modes = append(m.Modes, design.Mode{
				Name:      fmt.Sprintf("%d", k+1),
				Resources: modeResourcesRange(rng, c, HugeMinCLBs, HugeMaxCLBs),
			})
		}
		d.Modules = append(d.Modules, m)
		total += nModes
	}

	// Shuffled worklist of every (module, mode) slot still uncovered.
	remaining := d.AllModes()
	rng.Shuffle(len(remaining), func(i, j int) {
		remaining[i], remaining[j] = remaining[j], remaining[i]
	})
	seen := make(map[string]bool)
	addConfig := func(modes []int) {
		key := fmt.Sprint(modes)
		if seen[key] {
			return
		}
		seen[key] = true
		d.Configurations = append(d.Configurations, design.Configuration{Modes: modes})
	}
	targetActives := func() int {
		return HugeActiveLo + rng.Intn(HugeActiveHi-HugeActiveLo+1)
	}
	for len(remaining) > 0 {
		modes := make([]int, len(d.Modules))
		active := 0
		target := targetActives()
		// Take uncovered slots first — at most one per module per
		// configuration (modes of a module are mutually exclusive).
		rest := remaining[:0]
		for _, r := range remaining {
			if active < target && modes[r.Module] == 0 {
				modes[r.Module] = r.Mode
				active++
				continue
			}
			rest = append(rest, r)
		}
		remaining = rest
		// Top up with random already-covered modules so late coverage
		// configurations are not suspiciously thin.
		for guard := 0; active < target && guard < 10*target; guard++ {
			mi := rng.Intn(len(d.Modules))
			if modes[mi] != 0 {
				continue
			}
			modes[mi] = 1 + rng.Intn(len(d.Modules[mi].Modes))
			active++
		}
		addConfig(modes)
	}
	nExtra := len(d.Configurations)/5 + 2
	for i := 0; i < nExtra; i++ {
		modes := make([]int, len(d.Modules))
		target := targetActives()
		for active := 0; active < target; {
			mi := rng.Intn(len(d.Modules))
			if modes[mi] != 0 {
				continue
			}
			modes[mi] = 1 + rng.Intn(len(d.Modules[mi].Modes))
			active++
		}
		addConfig(modes)
	}
	return d
}

// GenerateHuge produces n huge designs, classes cycling as in Generate
// and target sizes cycling through HugeSizes, from a deterministic
// stream.
func GenerateHuge(seed int64, n int) []*design.Design {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*design.Design, n)
	for i := range out {
		c := Class(i % int(NumClasses))
		size := HugeSizes[i%len(HugeSizes)]
		out[i] = HugeOne(rng, c, fmt.Sprintf("huge-%04d-%d-%s", i, size, c), size)
	}
	return out
}
