// Package synthetic generates the random PR designs of the paper's §V
// evaluation: equal numbers of logic-intensive, memory-intensive,
// DSP-intensive and DSP-and-memory-intensive circuits, each with 2-6
// modules of 2-4 modes, 25-4000 CLBs per mode (other resources drawn from
// class-dependent ranges tied to the CLB count), a 90-CLB/8-BRAM static
// region, and random configurations generated until every mode is used at
// least once.
//
// Generation is fully deterministic for a given seed, so the 1000-design
// corpus of Figs. 7-9 is reproducible bit-for-bit.
package synthetic

import (
	"fmt"
	"math/rand"

	"prpart/internal/design"
	"prpart/internal/resource"
)

// Class is the resource flavour of a synthetic circuit.
type Class int

const (
	// Logic circuits are CLB-dominated with few BRAMs or DSPs.
	Logic Class = iota
	// Memory circuits carry a high BRAM-to-CLB ratio.
	Memory
	// DSP circuits carry a high DSP-to-CLB ratio.
	DSP
	// DSPMemory circuits are heavy in both BRAM and DSP.
	DSPMemory

	// NumClasses is the number of circuit classes.
	NumClasses
)

// String names the class as in the paper's §V.
func (c Class) String() string {
	switch c {
	case Logic:
		return "logic-intensive"
	case Memory:
		return "memory-intensive"
	case DSP:
		return "DSP-intensive"
	case DSPMemory:
		return "DSP-and-memory-intensive"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Distribution parameters from §V.
const (
	MinModules = 2
	MaxModules = 6
	MinModes   = 2
	MaxModes   = 4
	MinCLBs    = 25
	MaxCLBs    = 4000

	// StaticCLBs and StaticBRAMs are the fixed static-region overhead
	// (the paper's custom ICAP controller and associated logic).
	StaticCLBs  = 90
	StaticBRAMs = 8

	// maxConfigAttempts bounds the rejection sampling of configurations.
	maxConfigAttempts = 10000
)

// modeResources draws a mode utilisation for the class: CLBs uniform in
// [MinCLBs, MaxCLBs], BRAM/DSP from ranges proportional to the CLB count.
func modeResources(rng *rand.Rand, c Class) resource.Vector {
	clb := MinCLBs + rng.Intn(MaxCLBs-MinCLBs+1)
	bramLo, bramHi, dspLo, dspHi := 0, 0, 0, 0
	switch c {
	case Logic:
		bramHi = clb / 400
		dspHi = clb / 400
	case Memory:
		bramLo, bramHi = clb/150, clb/50
		dspHi = clb / 400
	case DSP:
		bramHi = clb / 400
		dspLo, dspHi = clb/100, clb/40
	case DSPMemory:
		bramLo, bramHi = clb/150, clb/50
		dspLo, dspHi = clb/100, clb/40
	}
	return resource.New(clb, uniform(rng, bramLo, bramHi), uniform(rng, dspLo, dspHi))
}

func uniform(rng *rand.Rand, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + rng.Intn(hi-lo+1)
}

// One generates a single synthetic design of the given class.
func One(rng *rand.Rand, c Class, name string) *design.Design {
	d := &design.Design{
		Name:   name,
		Static: resource.New(StaticCLBs, StaticBRAMs, 0),
	}
	nModules := MinModules + rng.Intn(MaxModules-MinModules+1)
	for mi := 0; mi < nModules; mi++ {
		m := &design.Module{Name: fmt.Sprintf("M%d", mi)}
		nModes := MinModes + rng.Intn(MaxModes-MinModes+1)
		for k := 0; k < nModes; k++ {
			m.Modes = append(m.Modes, design.Mode{
				Name:      fmt.Sprintf("%d", k+1),
				Resources: modeResources(rng, c),
			})
		}
		d.Modules = append(d.Modules, m)
	}

	// Random configurations until every mode appears at least once.
	// A module is absent (mode 0) from a configuration with low
	// probability, exercising the §IV-D special case; at least one module
	// must be active.
	used := make(map[design.ModeRef]bool)
	total := 0
	for _, m := range d.Modules {
		total += len(m.Modes)
	}
	seen := make(map[string]bool)
	for attempt := 0; len(used) < total && attempt < maxConfigAttempts; attempt++ {
		cfg := design.Configuration{Modes: make([]int, nModules)}
		active := 0
		for mi, m := range d.Modules {
			if rng.Float64() < 0.1 && nModules > 1 {
				cfg.Modes[mi] = 0
				continue
			}
			cfg.Modes[mi] = 1 + rng.Intn(len(m.Modes))
			active++
		}
		if active == 0 {
			continue
		}
		key := fmt.Sprint(cfg.Modes)
		if seen[key] {
			continue
		}
		seen[key] = true
		d.Configurations = append(d.Configurations, cfg)
		for mi, k := range cfg.Modes {
			if k != 0 {
				used[design.ModeRef{Module: mi, Mode: k}] = true
			}
		}
	}
	return d
}

// Generate produces n designs with classes cycling through the four
// flavours (equal shares, as in the paper) from a deterministic stream.
func Generate(seed int64, n int) []*design.Design {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*design.Design, n)
	for i := range out {
		c := Class(i % int(NumClasses))
		out[i] = One(rng, c, fmt.Sprintf("syn-%04d-%s", i, c))
	}
	return out
}

// ClassOf recovers the class a generated design was drawn from (designs
// are named "syn-NNNN-<class>").
func ClassOf(i int) Class { return Class(i % int(NumClasses)) }
