package ucf

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"prpart/internal/design"
	"prpart/internal/device"
	"prpart/internal/floorplan"
	"prpart/internal/partition"
)

// FuzzParse feeds arbitrary text to the UCF reader and checks the
// invariants that hold for everything it accepts: parsing never panics,
// is deterministic, produces groups with non-empty names in file order,
// and a parsed TIMESPEC period is non-negative. Inputs that the
// generator itself produced must parse with every region reconstructed.
func FuzzParse(f *testing.F) {
	// Seed with a genuinely generated UCF so the corpus starts on the
	// grammar the parser was written for.
	res, err := partition.Solve(design.VideoReceiver(),
		partition.Options{Budget: design.CaseStudyBudget()})
	if err != nil {
		f.Fatal(err)
	}
	dev, err := device.ByName("FX70T")
	if err != nil {
		f.Fatal(err)
	}
	plan, err := floorplan.Place(res.Scheme, dev)
	if err != nil {
		f.Fatal(err)
	}
	var gen strings.Builder
	if err := Generate(&gen, res.Scheme, plan, Constraints{ClockName: "clk", ClockMHz: 100}); err != nil {
		f.Fatal(err)
	}
	f.Add(gen.String())
	f.Add("")
	f.Add("# comment only\n")
	f.Add(`INST "prr1" AREA_GROUP = "pblock_prr1";`)
	f.Add(`AREA_GROUP "pblock_prr1" RANGE = SLICE_X0Y0:SLICE_X9Y19;`)
	f.Add(`AREA_GROUP "pblock_prr1" RECONFIG_MODE = TRUE;`)
	f.Add("TIMESPEC \"TS_clk\" = PERIOD \"clk\" 10.000 ns HIGH 50%;")
	f.Add("TIMESPEC \"TS_clk\" = PERIOD \"clk\" 10.0.0 ns HIGH 50%;")
	f.Add("AREA_GROUP \"g\" RANGE = ;\nnot a constraint\nINST incomplete")

	f.Fuzz(func(t *testing.T, input string) {
		p1, err1 := Parse(strings.NewReader(input))
		p2, err2 := Parse(strings.NewReader(input))
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic error: %v vs %v", err1, err2)
		}
		if err1 != nil {
			return
		}
		if !reflect.DeepEqual(p1, p2) {
			t.Fatalf("nondeterministic parse:\n%+v\n%+v", p1, p2)
		}
		if p1.PeriodNs < 0 {
			t.Fatalf("negative period %v", p1.PeriodNs)
		}
		seen := map[string]bool{}
		for _, g := range p1.Groups {
			if g.Name == "" {
				t.Fatal("group with empty name")
			}
			if seen[g.Name] {
				t.Fatalf("group %q emitted twice", g.Name)
			}
			seen[g.Name] = true
		}
	})
}

// FuzzSliceExtent checks the SLICE-range decoder: no panics, rejection
// is total (no partial results), and every accepted range round-trips
// through re-rendering.
func FuzzSliceExtent(f *testing.F) {
	f.Add("SLICE_X0Y0:SLICE_X9Y19")
	f.Add("SLICE_X12Y40:SLICE_X13Y59")
	f.Add("SLICE_X0Y0")
	f.Add("RAMB36_X0Y0:RAMB36_X0Y3")
	f.Add("SLICE_X-1Y0:SLICE_X1Y1")
	f.Add("SLICE_X999999999999999999999Y0:SLICE_X0Y0")

	f.Fuzz(func(t *testing.T, rng string) {
		x0, y0, x1, y1, err := SliceExtent(rng)
		if err != nil {
			return
		}
		round := fmt.Sprintf("SLICE_X%dY%d:SLICE_X%dY%d", x0, y0, x1, y1)
		// Leading zeros in the input are the only legitimate difference.
		rx0, ry0, rx1, ry1, rerr := SliceExtent(round)
		if rerr != nil {
			t.Fatalf("re-rendered range %q rejected: %v", round, rerr)
		}
		if rx0 != x0 || ry0 != y0 || rx1 != x1 || ry1 != y1 {
			t.Fatalf("%q decoded to (%d,%d,%d,%d), re-render decodes to (%d,%d,%d,%d)",
				rng, x0, y0, x1, y1, rx0, ry0, rx1, ry1)
		}
	})
}
