package ucf

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// ParsedGroup is one AREA_GROUP reconstructed from a UCF.
type ParsedGroup struct {
	// Name is the pblock name ("pblock_prr1").
	Name string
	// Inst is the constrained instance ("prr1").
	Inst string
	// Ranges holds the raw RANGE strings.
	Ranges []string
	// Reconfigurable reports RECONFIG_MODE = TRUE.
	Reconfigurable bool
}

// ParsedFile is the reconstructed constraint set.
type ParsedFile struct {
	// ClockName and PeriodNs capture the TIMESPEC, when present.
	ClockName string
	PeriodNs  float64
	// Groups are the area groups in file order.
	Groups []ParsedGroup
}

var (
	instRe     = regexp.MustCompile(`^INST\s+"([^"]+)"\s+AREA_GROUP\s*=\s*"([^"]+)"\s*;`)
	rangeRe    = regexp.MustCompile(`^AREA_GROUP\s+"([^"]+)"\s+RANGE\s*=\s*([^;]+);`)
	reconfigRe = regexp.MustCompile(`^AREA_GROUP\s+"([^"]+)"\s+RECONFIG_MODE\s*=\s*TRUE\s*;`)
	timespecRe = regexp.MustCompile(`^TIMESPEC\s+"TS_([^"]+)"\s*=\s*PERIOD\s+"[^"]+"\s+([0-9.]+)\s*ns`)
)

// Parse reads a UCF produced by Generate back into structured form. It
// exists for round-trip validation and for tooling that post-processes
// the constraints; unknown lines are ignored, like the vendor tools do
// with constraints they do not own.
func Parse(r io.Reader) (*ParsedFile, error) {
	out := &ParsedFile{}
	groups := map[string]*ParsedGroup{}
	order := []string{}
	get := func(name string) *ParsedGroup {
		if g, ok := groups[name]; ok {
			return g
		}
		g := &ParsedGroup{Name: name}
		groups[name] = g
		order = append(order, name)
		return g
	}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
		case instRe.MatchString(line):
			m := instRe.FindStringSubmatch(line)
			g := get(m[2])
			g.Inst = m[1]
		case rangeRe.MatchString(line):
			m := rangeRe.FindStringSubmatch(line)
			g := get(m[1])
			g.Ranges = append(g.Ranges, strings.TrimSpace(m[2]))
		case reconfigRe.MatchString(line):
			m := reconfigRe.FindStringSubmatch(line)
			get(m[1]).Reconfigurable = true
		case timespecRe.MatchString(line):
			m := timespecRe.FindStringSubmatch(line)
			out.ClockName = m[1]
			p, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				return nil, fmt.Errorf("ucf: line %d: bad period %q", lineNo, m[2])
			}
			out.PeriodNs = p
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ucf: reading: %w", err)
	}
	for _, name := range order {
		out.Groups = append(out.Groups, *groups[name])
	}
	return out, nil
}

// sliceRangeRe captures SLICE_XaYb:SLICE_XcYd coordinates.
var sliceRangeRe = regexp.MustCompile(`^SLICE_X(\d+)Y(\d+):SLICE_X(\d+)Y(\d+)$`)

// SliceExtent decodes a SLICE range into (x0, y0, x1, y1).
func SliceExtent(rng string) (x0, y0, x1, y1 int, err error) {
	m := sliceRangeRe.FindStringSubmatch(rng)
	if m == nil {
		return 0, 0, 0, 0, fmt.Errorf("ucf: %q is not a SLICE range", rng)
	}
	x0, _ = strconv.Atoi(m[1])
	y0, _ = strconv.Atoi(m[2])
	x1, _ = strconv.Atoi(m[3])
	y1, _ = strconv.Atoi(m[4])
	return x0, y0, x1, y1, nil
}
