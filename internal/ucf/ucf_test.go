package ucf

import (
	"fmt"
	"strings"
	"testing"

	"prpart/internal/design"
	"prpart/internal/device"
	"prpart/internal/floorplan"
	"prpart/internal/partition"
	"prpart/internal/resource"
)

func testPlan(t *testing.T) (*floorplan.Plan, *partition.Result) {
	t.Helper()
	res, err := partition.Solve(design.VideoReceiver(),
		partition.Options{Budget: design.CaseStudyBudget()})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := device.ByName("FX70T")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := floorplan.Place(res.Scheme, dev)
	if err != nil {
		t.Fatal(err)
	}
	return plan, res
}

func TestGenerate(t *testing.T) {
	plan, res := testPlan(t)
	var b strings.Builder
	err := Generate(&b, res.Scheme, plan, Constraints{ClockName: "clk", ClockMHz: 100})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"TIMESPEC", "PERIOD", "10.000 ns",
		"AREA_GROUP \"pblock_prr1\"", "RECONFIG_MODE = TRUE",
		"SLICE_X",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("UCF missing %q:\n%s", want, out)
		}
	}
	// One AREA_GROUP INST line per region.
	if got := strings.Count(out, "RECONFIG_MODE"); got != len(res.Scheme.Regions) {
		t.Errorf("RECONFIG_MODE lines = %d, want %d", got, len(res.Scheme.Regions))
	}
}

func TestGenerateNoClock(t *testing.T) {
	plan, res := testPlan(t)
	var b strings.Builder
	if err := Generate(&b, res.Scheme, plan, Constraints{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "TIMESPEC") {
		t.Error("TIMESPEC emitted without a clock")
	}
}

func TestGenerateRejectsBadPlan(t *testing.T) {
	plan, res := testPlan(t)
	plan.Placements = plan.Placements[:1]
	var b strings.Builder
	if err := Generate(&b, res.Scheme, plan, Constraints{}); err == nil {
		t.Error("truncated plan accepted")
	}
}

func TestRangesCoordinates(t *testing.T) {
	dev := &device.Device{
		Name: "toy", Rows: 4,
		Columns: []resource.Kind{
			resource.CLB, resource.CLB, resource.BRAM, resource.CLB, resource.DSP,
		},
	}
	// Rect covering everything.
	r := floorplan.Rect{Row0: 1, Col0: 0, Row1: 2, Col1: 4}
	ranges := Ranges(dev, r)
	if len(ranges) != 3 {
		t.Fatalf("ranges = %v", ranges)
	}
	// CLB columns 0,1,3 -> kind indices 0..2 -> SLICE_X0..X5; rows 1..2
	// -> Y20..Y59.
	if ranges[0] != "SLICE_X0Y20:SLICE_X5Y59" {
		t.Errorf("slice range = %s", ranges[0])
	}
	if ranges[1] != "RAMB36_X0Y4:RAMB36_X0Y11" {
		t.Errorf("bram range = %s", ranges[1])
	}
	if ranges[2] != "DSP48_X0Y8:DSP48_X0Y23" {
		t.Errorf("dsp range = %s", ranges[2])
	}
	// CLB-only rectangle yields one range.
	only := Ranges(dev, floorplan.Rect{Row0: 0, Col0: 0, Row1: 0, Col1: 1})
	if len(only) != 1 || !strings.HasPrefix(only[0], "SLICE_X0Y0:") {
		t.Errorf("clb-only ranges = %v", only)
	}
}

func TestKindColIndex(t *testing.T) {
	dev := &device.Device{
		Columns: []resource.Kind{
			resource.CLB, resource.BRAM, resource.CLB, resource.BRAM, resource.CLB,
		},
	}
	wants := []int{0, 0, 1, 1, 2}
	for c, want := range wants {
		if got := kindColIndex(dev, c); got != want {
			t.Errorf("kindColIndex(%d) = %d, want %d", c, got, want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	plan, res := testPlan(t)
	var b strings.Builder
	if err := Generate(&b, res.Scheme, plan, Constraints{ClockName: "clk", ClockMHz: 100}); err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.ClockName != "clk" || parsed.PeriodNs != 10 {
		t.Errorf("timespec = %q %g", parsed.ClockName, parsed.PeriodNs)
	}
	if len(parsed.Groups) != len(res.Scheme.Regions) {
		t.Fatalf("groups = %d, want %d", len(parsed.Groups), len(res.Scheme.Regions))
	}
	for i, g := range parsed.Groups {
		if !g.Reconfigurable {
			t.Errorf("group %s not marked reconfigurable", g.Name)
		}
		if g.Inst == "" || len(g.Ranges) == 0 {
			t.Errorf("group %s incomplete: %+v", g.Name, g)
		}
		// The SLICE range must cover at least the region's CLB tiles:
		// slices = 2 per CLB column * 20 rows per tile row.
		for _, rng := range g.Ranges {
			if !strings.HasPrefix(rng, "SLICE_") {
				continue
			}
			x0, y0, x1, y1, err := SliceExtent(rng)
			if err != nil {
				t.Fatal(err)
			}
			cols := (x1 - x0 + 1) / 2
			rows := (y1 - y0 + 1) / 20
			tiles := cols * rows
			need := res.Scheme.Regions[parsed.Groups[i].regionIndex(t)].Tiles().CLB
			if tiles < need {
				t.Errorf("%s: SLICE range holds %d CLB tiles, region needs %d", g.Name, tiles, need)
			}
		}
	}
}

// regionIndex recovers the region number from a pblock name.
func (g ParsedGroup) regionIndex(t *testing.T) int {
	t.Helper()
	var n int
	if _, err := fmt.Sscanf(g.Name, "pblock_prr%d", &n); err != nil {
		t.Fatalf("unparseable group name %q", g.Name)
	}
	return n - 1
}

func TestParseIgnoresUnknownLines(t *testing.T) {
	const ucf = `# comment
NET "clk" LOC = AB12;
INST "prr1" AREA_GROUP = "pblock_prr1";
AREA_GROUP "pblock_prr1" RANGE = SLICE_X0Y0:SLICE_X1Y19;
AREA_GROUP "pblock_prr1" RECONFIG_MODE = TRUE;
some garbage line
`
	parsed, err := Parse(strings.NewReader(ucf))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Groups) != 1 || !parsed.Groups[0].Reconfigurable {
		t.Errorf("parsed = %+v", parsed)
	}
}

func TestSliceExtent(t *testing.T) {
	x0, y0, x1, y1, err := SliceExtent("SLICE_X2Y40:SLICE_X9Y79")
	if err != nil || x0 != 2 || y0 != 40 || x1 != 9 || y1 != 79 {
		t.Errorf("extent = %d,%d,%d,%d (%v)", x0, y0, x1, y1, err)
	}
	if _, _, _, _, err := SliceExtent("RAMB36_X0Y0:RAMB36_X0Y3"); err == nil {
		t.Error("non-SLICE range accepted")
	}
}
