package basepart

import (
	"testing"

	"prpart/internal/connmat"
	"prpart/internal/design"
	"prpart/internal/modeset"
)

func table1Want() map[string]int {
	// The paper's Table I: every base partition of the worked example with
	// its frequency weight. Keys use "Module.Mode" labels.
	return map[string]int{
		"{A.2}": 1, "{C.2}": 1, "{B.1}": 1,
		"{A.1}": 2, "{C.1}": 2, "{C.3}": 2, "{A.3}": 2,
		"{B.2}":      4,
		"{A.1, B.2}": 1, "{B.2, C.1}": 1, "{A.1, C.1}": 1,
		"{B.2, C.2}": 1, "{A.2, B.2}": 1, "{A.1, C.2}": 1,
		"{A.1, B.1}": 1, "{B.1, C.1}": 1, "{A.2, C.3}": 1,
		"{A.3, C.1}": 1, "{A.3, C.3}": 1,
		"{B.2, C.3}": 2, "{A.3, B.2}": 2,
		"{A.3, B.2, C.3}": 1, "{A.1, B.1, C.1}": 1, "{A.3, B.2, C.1}": 1,
		"{A.1, B.2, C.2}": 1, "{A.2, B.2, C.3}": 1,
	}
}

func TestTable1BasePartitions(t *testing.T) {
	d := design.PaperExample()
	res, err := Run(connmat.New(d))
	if err != nil {
		t.Fatal(err)
	}
	want := table1Want()
	if len(res.Partitions) != len(want) {
		t.Errorf("base partitions = %d, want %d", len(res.Partitions), len(want))
	}
	got := make(map[string]int)
	for _, bp := range res.Partitions {
		label := bp.Label(d)
		if _, dup := got[label]; dup {
			t.Errorf("duplicate base partition %s", label)
		}
		got[label] = bp.FreqWeight
	}
	for label, fw := range want {
		gfw, ok := got[label]
		if !ok {
			t.Errorf("missing base partition %s", label)
			continue
		}
		if gfw != fw {
			t.Errorf("%s: frequency weight = %d, want %d", label, gfw, fw)
		}
	}
	for label := range got {
		if _, ok := want[label]; !ok {
			t.Errorf("unexpected base partition %s (not in Table I)", label)
		}
	}
}

func TestNonConfigurationCliqueExcluded(t *testing.T) {
	// {A1,B2,C1} is a triangle of the co-occurrence graph but no single
	// configuration contains all three; Table I omits it.
	d := design.PaperExample()
	res, err := Run(connmat.New(d))
	if err != nil {
		t.Fatal(err)
	}
	bad := modeset.New(
		design.ModeRef{Module: 0, Mode: 1},
		design.ModeRef{Module: 1, Mode: 2},
		design.ModeRef{Module: 2, Mode: 1},
	)
	for _, bp := range res.Partitions {
		if bp.Set.Equal(bad) {
			t.Fatalf("clique %s must not become a base partition", bp.Label(d))
		}
	}
}

func TestEdgesDescendingAndFirstLink(t *testing.T) {
	d := design.PaperExample()
	res, err := Run(connmat.New(d))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) == 0 {
		t.Fatal("no iterations recorded")
	}
	prev := res.Iterations[0].Edge.Weight
	for _, it := range res.Iterations[1:] {
		if it.Edge.Weight > prev {
			t.Fatalf("edge weights not descending: %d after %d", it.Edge.Weight, prev)
		}
		prev = it.Edge.Weight
	}
	// The paper's Fig. 5(a): the first link is A3-B2 (weight 2).
	first := res.Iterations[0].Edge
	names := map[string]bool{d.ModeName(first.A): true, d.ModeName(first.B): true}
	if first.Weight != 2 || !(names["A.3"] && names["B.2"] || names["B.2"] && names["C.3"]) {
		// A3-B2 and B2-C3 both have weight 2; either may be first under
		// deterministic tie-breaking, the paper picks A3-B2.
		t.Errorf("first edge = %s-%s (w=%d), want a weight-2 edge among {A3,B2,C3}",
			d.ModeName(first.A), d.ModeName(first.B), first.Weight)
	}
}

// enumerateSubsets returns the set of all non-empty subsets of all
// configurations of d, keyed canonically.
func enumerateSubsets(d *design.Design) map[string]bool {
	out := make(map[string]bool)
	for ci := range d.Configurations {
		modes := d.ConfigModes(ci)
		for mask := 1; mask < 1<<len(modes); mask++ {
			var refs []design.ModeRef
			for i, r := range modes {
				if mask&(1<<i) != 0 {
					refs = append(refs, r)
				}
			}
			out[modeset.New(refs...).Key()] = true
		}
	}
	return out
}

func TestPartitionsAreExactlyConfigSubsets(t *testing.T) {
	for _, d := range []*design.Design{
		design.PaperExample(), design.VideoReceiver(),
		design.VideoReceiverModified(), design.TwoModuleExample(),
		design.SingleModeExample(),
	} {
		res, err := Run(connmat.New(d))
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		want := enumerateSubsets(d)
		got := make(map[string]bool)
		for _, bp := range res.Partitions {
			got[bp.Set.Key()] = true
		}
		if len(got) != len(res.Partitions) {
			t.Errorf("%s: duplicate base partitions emitted", d.Name)
		}
		for k := range want {
			if !got[k] {
				t.Errorf("%s: missing base partition %s", d.Name, k)
			}
		}
		for k := range got {
			if !want[k] {
				t.Errorf("%s: spurious base partition %s", d.Name, k)
			}
		}
	}
}

func TestFrequencyWeightDefinition(t *testing.T) {
	// freq weight: node weight for singletons, min internal edge weight
	// otherwise — and always >= the whole-set support.
	for _, d := range []*design.Design{design.PaperExample(), design.VideoReceiver()} {
		m := connmat.New(d)
		res, err := Run(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, bp := range res.Partitions {
			refs := bp.Set.Refs()
			want := m.MinEdgeWeight(refs)
			if bp.FreqWeight != want {
				t.Errorf("%s: %s freq weight = %d, want %d", d.Name, bp.Label(d), bp.FreqWeight, want)
			}
			if sup := m.SetSupport(refs); bp.FreqWeight < sup {
				t.Errorf("%s: %s freq weight %d below support %d", d.Name, bp.Label(d), bp.FreqWeight, sup)
			}
			if bp.FreqWeight < 1 {
				t.Errorf("%s: %s has freq weight %d < 1", d.Name, bp.Label(d), bp.FreqWeight)
			}
		}
	}
}

func TestResourcesAreMemberSums(t *testing.T) {
	d := design.VideoReceiver()
	res, err := Run(connmat.New(d))
	if err != nil {
		t.Fatal(err)
	}
	for _, bp := range res.Partitions {
		var want = bp.Resources.Sub(bp.Resources) // zero
		for _, r := range bp.Set.Refs() {
			want = want.Add(d.ModeResources(r))
		}
		if bp.Resources != want {
			t.Errorf("%s: resources %v, want %v", bp.Label(d), bp.Resources, want)
		}
	}
}

func TestConfigTooLargeRejected(t *testing.T) {
	// A configuration with more than MaxConfigModes active modes must be
	// rejected rather than attempted (2^k subset blow-up).
	d := &design.Design{Name: "huge"}
	n := MaxConfigModes + 1
	cfg := design.Configuration{Modes: make([]int, n)}
	for i := 0; i < n; i++ {
		d.Modules = append(d.Modules, &design.Module{
			Name:  string(rune('a'+i%26)) + string(rune('0'+i/26)),
			Modes: []design.Mode{{Name: "1"}},
		})
		cfg.Modes[i] = 1
	}
	d.Configurations = []design.Configuration{cfg}
	if _, err := Run(connmat.New(d)); err == nil {
		t.Fatal("Run accepted an oversized configuration")
	}
}

func TestSingleModeExampleClusters(t *testing.T) {
	// §IV-D: single-mode modules with disjoint configurations produce the
	// two configuration cliques and no cross-configuration partitions.
	d := design.SingleModeExample()
	res, err := Run(connmat.New(d))
	if err != nil {
		t.Fatal(err)
	}
	// Subsets: config0 (2 modes) -> 3, config1 (3 modes) -> 7; disjoint.
	if len(res.Partitions) != 10 {
		t.Errorf("partitions = %d, want 10", len(res.Partitions))
	}
}
