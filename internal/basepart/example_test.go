package basepart_test

import (
	"fmt"

	"prpart/internal/basepart"
	"prpart/internal/connmat"
	"prpart/internal/design"
)

// Clustering the paper's worked example yields exactly the 26 base
// partitions of Table I; the first edge linked is the heaviest
// co-occurrence (weight 2, as in Fig. 5a).
func ExampleRun() {
	d := design.PaperExample()
	res, err := basepart.Run(connmat.New(d))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("base partitions: %d\n", len(res.Partitions))
	fmt.Printf("singletons: %d\n", len(res.Singletons))
	fmt.Printf("first edge weight: %d\n", res.Iterations[0].Edge.Weight)
	// Output:
	// base partitions: 26
	// singletons: 8
	// first edge weight: 2
}
