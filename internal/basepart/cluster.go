// Package cluster implements the paper's modified hierarchical clustering
// (§IV-C): starting from disconnected mode nodes, edges are inserted in
// decreasing edge-weight order, and each newly completed sub-graph that is
// supported by at least one configuration becomes a base partition with an
// associated frequency weight.
//
// Interpretation note (see DESIGN.md §2): the co-occurrence graph can
// contain cliques that no single configuration supports (the paper's
// example has the triangle {A1,B2,C1} which Table I omits). A complete
// sub-graph is therefore recorded as a base partition only when its mode
// set is a subset of at least one configuration — which makes the final
// enumeration exactly "all non-empty subsets of configurations", with
// frequency weight equal to the node weight for singletons and the minimum
// internal edge weight otherwise.
package basepart

import (
	"fmt"
	"sort"

	"prpart/internal/connmat"
	"prpart/internal/design"
	"prpart/internal/modeset"
	"prpart/internal/resource"
)

// BasePartition is a cluster of modes that may be allocated to a
// reconfigurable region as a unit. A multi-mode base partition is
// instantiated as one wrapper containing all of its modes, so its area is
// the sum of its members' utilisations.
type BasePartition struct {
	// Set is the canonical mode set.
	Set modeset.Set
	// FreqWeight is the paper's frequency weight: how strongly the
	// cluster's modes occur (together) across the configurations.
	FreqWeight int
	// Resources is the summed utilisation of the member modes.
	Resources resource.Vector
}

// Label renders the base partition with human-readable mode names.
func (bp BasePartition) Label(d *design.Design) string { return bp.Set.Label(d) }

// Edge is a link between two modes weighted by co-occurrence count.
type Edge struct {
	A, B   design.ModeRef
	Weight int
}

// Iteration records one step of the agglomerative process for tracing:
// the edge inserted and any base partitions completed by that insertion.
type Iteration struct {
	Edge      Edge
	Completed []BasePartition
}

// Result carries the outcome of the clustering.
type Result struct {
	// Singletons are the k=0 sub-graphs (every used mode), in matrix
	// column order, with frequency weight equal to the node weight.
	Singletons []BasePartition
	// Iterations trace each edge insertion, in insertion order.
	Iterations []Iteration
	// Partitions lists every base partition (singletons first, then in
	// completion order). This is the paper's Table I content.
	Partitions []BasePartition
}

// MaxConfigModes bounds the number of active modes per configuration the
// clustering accepts: base partitions are subsets of configurations, so a
// configuration with k active modes contributes up to 2^k-1 of them.
const MaxConfigModes = 20

// Run executes the clustering on a connectivity matrix.
func Run(m *connmat.Matrix) (*Result, error) {
	d := m.Design()
	for ci := range d.Configurations {
		if n := len(d.ConfigModes(ci)); n > MaxConfigModes {
			return nil, fmt.Errorf("cluster: configuration %d has %d active modes; max supported is %d",
				ci, n, MaxConfigModes)
		}
	}

	res := &Result{}
	seen := make(map[string]bool)

	// k=0: every used mode is a disconnected sub-graph.
	for _, r := range m.Modes() {
		bp := BasePartition{
			Set:        modeset.New(r),
			FreqWeight: m.NodeWeight(r),
			Resources:  d.ModeResources(r),
		}
		res.Singletons = append(res.Singletons, bp)
		res.Partitions = append(res.Partitions, bp)
		seen[bp.Set.Key()] = true
	}

	// Candidate edges: every co-occurring pair, highest weight first.
	edges := allEdges(m)
	inserted := make(map[[2]design.ModeRef]bool)
	haveEdge := func(a, b design.ModeRef) bool {
		return inserted[edgeKey(a, b)]
	}

	for _, e := range edges {
		inserted[edgeKey(e.A, e.B)] = true
		it := Iteration{Edge: e}
		// New complete sub-graphs containing the inserted edge: subsets
		// of configurations that include both endpoints and whose other
		// pairwise edges were all inserted earlier.
		for ci := range d.Configurations {
			if !m.Contains(ci, e.A) || !m.Contains(ci, e.B) {
				continue
			}
			others := make([]design.ModeRef, 0, 8)
			for _, r := range d.ConfigModes(ci) {
				if r != e.A && r != e.B {
					others = append(others, r)
				}
			}
			// Enumerate subsets of the remaining modes; keep those whose
			// union with {A,B} is fully connected.
			for mask := 0; mask < 1<<len(others); mask++ {
				set := []design.ModeRef{e.A, e.B}
				for bi, r := range others {
					if mask&(1<<bi) != 0 {
						set = append(set, r)
					}
				}
				if !cliqueComplete(set, haveEdge) {
					continue
				}
				s := modeset.New(set...)
				if seen[s.Key()] {
					continue
				}
				seen[s.Key()] = true
				bp := BasePartition{
					Set:        s,
					FreqWeight: m.MinEdgeWeight(s.Refs()),
					Resources:  sumResources(d, s),
				}
				it.Completed = append(it.Completed, bp)
				res.Partitions = append(res.Partitions, bp)
			}
		}
		res.Iterations = append(res.Iterations, it)
	}
	return res, nil
}

// BasePartitions is a convenience wrapper returning only the partitions.
func BasePartitions(m *connmat.Matrix) ([]BasePartition, error) {
	res, err := Run(m)
	if err != nil {
		return nil, err
	}
	return res.Partitions, nil
}

func sumResources(d *design.Design, s modeset.Set) resource.Vector {
	var v resource.Vector
	for _, r := range s.Refs() {
		v = v.Add(d.ModeResources(r))
	}
	return v
}

// cliqueComplete reports whether every pair in set is linked. The edge
// (set[0], set[1]) is the one just inserted and is known present.
func cliqueComplete(set []design.ModeRef, haveEdge func(a, b design.ModeRef) bool) bool {
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			if i == 0 && j == 1 {
				continue
			}
			if !haveEdge(set[i], set[j]) {
				return false
			}
		}
	}
	return true
}

func edgeKey(a, b design.ModeRef) [2]design.ModeRef {
	if b.Module < a.Module || (b.Module == a.Module && b.Mode < a.Mode) {
		a, b = b, a
	}
	return [2]design.ModeRef{a, b}
}

// allEdges returns every positive-weight edge sorted by weight descending,
// with deterministic tie-breaking on mode order.
func allEdges(m *connmat.Matrix) []Edge {
	modes := m.Modes()
	var edges []Edge
	for i := 0; i < len(modes); i++ {
		for j := i + 1; j < len(modes); j++ {
			w := m.EdgeWeight(modes[i], modes[j])
			if w > 0 {
				edges = append(edges, Edge{A: modes[i], B: modes[j], Weight: w})
			}
		}
	}
	sort.SliceStable(edges, func(a, b int) bool {
		return edges[a].Weight > edges[b].Weight
	})
	return edges
}
