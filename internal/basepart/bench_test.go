package basepart

import (
	"testing"

	"prpart/internal/connmat"
	"prpart/internal/design"
	"prpart/internal/synthetic"
)

func BenchmarkRunPaperExample(b *testing.B) {
	m := connmat.New(design.PaperExample())
	for i := 0; i < b.N; i++ {
		if _, err := Run(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunCaseStudy(b *testing.B) {
	m := connmat.New(design.VideoReceiver())
	for i := 0; i < b.N; i++ {
		if _, err := Run(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunSynthetic(b *testing.B) {
	mats := make([]*connmat.Matrix, 8)
	for i, d := range synthetic.Generate(5, len(mats)) {
		mats[i] = connmat.New(d)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(mats[i%len(mats)]); err != nil {
			b.Fatal(err)
		}
	}
}
