package synth

import (
	"strings"
	"testing"

	"prpart/internal/design"
	"prpart/internal/netlist"
	"prpart/internal/resource"
)

func TestFIRFilterModel(t *testing.T) {
	full := FIRFilter{Name: "fir", Taps: 32, DataWidth: 16, Folding: 1}
	r := full.Estimate()
	if r.DSP != 32 {
		t.Errorf("parallel FIR DSPs = %d, want 32", r.DSP)
	}
	folded := FIRFilter{Name: "fir", Taps: 32, DataWidth: 16, Folding: 8}
	rf := folded.Estimate()
	if rf.DSP != 4 {
		t.Errorf("folded FIR DSPs = %d, want 4", rf.DSP)
	}
	if rf.CLB <= r.CLB {
		// Folding adds sequencing logic.
		t.Errorf("folded CLBs %d not above parallel %d", rf.CLB, r.CLB)
	}
	// Zero folding behaves as fully parallel.
	if (FIRFilter{Taps: 8, DataWidth: 8}).Estimate().DSP != 8 {
		t.Error("Folding=0 should mean fully parallel")
	}
}

func TestFFTModel(t *testing.T) {
	small := FFT{Name: "fft256", Points: 256, Width: 16}.Estimate()
	if small.BRAM != 0 {
		t.Errorf("256-pt FFT BRAM = %d, want 0", small.BRAM)
	}
	if small.DSP != 24 { // 8 stages * 3
		t.Errorf("256-pt FFT DSP = %d, want 24", small.DSP)
	}
	big := FFT{Name: "fft4k", Points: 4096, Width: 16}.Estimate()
	if big.BRAM == 0 {
		t.Error("4k FFT should use BRAM")
	}
	if big.CLB <= small.CLB {
		t.Error("bigger FFT should use more CLBs")
	}
}

func TestViterbiAndTurboModels(t *testing.T) {
	v := ViterbiDecoder{Name: "vit", ConstraintLen: 7, TracebackDepth: 96}.Estimate()
	if v.CLB != 576 { // 64 states * 9
		t.Errorf("Viterbi CLB = %d, want 576", v.CLB)
	}
	if v.BRAM == 0 {
		t.Error("Viterbi needs traceback BRAM")
	}
	tu := TurboDecoder{Name: "turbo", BlockSize: 6144, Iterations: 8}.Estimate()
	if tu.BRAM != 12 {
		t.Errorf("Turbo BRAM = %d, want 12", tu.BRAM)
	}
	if tu.DSP != 4 {
		t.Errorf("Turbo DSP = %d, want 4", tu.DSP)
	}
}

func TestModulatorModel(t *testing.T) {
	b := Modulator{Name: "bpsk", BitsPerSymbol: 1}.Estimate()
	q := Modulator{Name: "qpsk", BitsPerSymbol: 2}.Estimate()
	if b.CLB != 50 || b.DSP != 2 {
		t.Errorf("BPSK = %v, want {50,0,2} (Table II calibration)", b)
	}
	if q.CLB <= b.CLB || q.DSP <= b.DSP {
		t.Error("QPSK should be larger than BPSK")
	}
}

func TestGenericLogic(t *testing.T) {
	g := GenericLogic{Name: "x", Resources: resource.New(1, 2, 3)}
	if g.Estimate() != resource.New(1, 2, 3) {
		t.Error("GenericLogic must echo its resources")
	}
}

func TestLibraryTable2(t *testing.T) {
	lib := NewLibrary()
	if len(lib.Names()) != 13 {
		t.Fatalf("library size = %d, want 13 (Table II)", len(lib.Names()))
	}
	// Library entries must agree with the canned case-study design.
	d := design.VideoReceiver()
	keys := map[string]string{
		"F": "MatchedFilter", "R": "Recovery", "M": "Demodulator",
		"D": "Decoder", "V": "Video",
	}
	for _, m := range d.Modules {
		for _, md := range m.Modes {
			if m.Name == "R" && md.Name == "None" {
				continue // the empty mode is not an IP core
			}
			key := keys[m.Name] + "/" + md.Name
			v, err := lib.Lookup(key)
			if err != nil {
				t.Errorf("library missing %s", key)
				continue
			}
			if v != md.Resources {
				t.Errorf("%s: library %v != design %v", key, v, md.Resources)
			}
		}
	}
}

func TestLibraryLookupAndRegister(t *testing.T) {
	lib := NewLibrary()
	if _, err := lib.Lookup("nope"); err == nil {
		t.Error("unknown core should error")
	}
	lib.Register("custom/one", resource.New(9, 9, 9))
	v, err := lib.Lookup("custom/one")
	if err != nil || v != resource.New(9, 9, 9) {
		t.Errorf("registered core lookup: %v, %v", v, err)
	}
}

func TestSynthesizeEmitsMatchingNetlist(t *testing.T) {
	lib := NewLibrary()
	res, err := Synthesize(IPCore{Name: "Decoder/Viterbi", Lib: lib})
	if err != nil {
		t.Fatal(err)
	}
	if res.Resources != resource.New(630, 2, 0) {
		t.Errorf("resources = %v", res.Resources)
	}
	nd := netlist.NewDesign(res.Netlist.Name)
	nd.AddModule(res.Netlist)
	got, err := nd.Resources(res.Netlist.Name)
	if err != nil {
		t.Fatal(err)
	}
	if got != res.Resources {
		t.Errorf("netlist folds to %v, estimate %v", got, res.Resources)
	}
}

func TestSynthesizeUnknownIPCore(t *testing.T) {
	if _, err := Synthesize(IPCore{Name: "ghost", Lib: NewLibrary()}); err == nil {
		t.Error("unknown IP core should fail synthesis")
	}
}

func TestSynthesizeRejectsNegative(t *testing.T) {
	g := GenericLogic{Name: "neg", Resources: resource.New(-1, 0, 0)}
	if _, err := Synthesize(g); err == nil {
		t.Error("negative estimate should fail")
	}
}

func TestSanitize(t *testing.T) {
	res, err := Synthesize(GenericLogic{Name: "Decoder/Viterbi v2!", Resources: resource.New(1, 0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if strings.ContainsAny(res.Netlist.Name, "/ !") {
		t.Errorf("netlist name not sanitised: %q", res.Netlist.Name)
	}
	res2, err := Synthesize(GenericLogic{Name: "", Resources: resource.New(1, 0, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Netlist.Name == "" {
		t.Error("empty name should get a placeholder")
	}
}

func TestVerilogFromSynth(t *testing.T) {
	res, err := Synthesize(Modulator{Name: "qpsk", BitsPerSymbol: 2})
	if err != nil {
		t.Fatal(err)
	}
	v := res.Netlist.Verilog()
	if !strings.Contains(v, "module qpsk") || !strings.Contains(v, "DSP48E") {
		t.Errorf("Verilog malformed:\n%.200s", v)
	}
}
