// Package synth stands in for the vendor synthesis step of the proposed
// tool flow (§III-B step 1, Xilinx XST): it turns high-level component
// specifications into post-synthesis resource estimates, and can emit a
// matching structural netlist for the downstream wrapper/floorplan steps.
//
// Two sources of utilisation are supported, mirroring the paper:
//
//   - analytic models for parameterised RTL blocks (filters, FFTs, FEC
//     decoders, modulators), calibrated roughly against published Xilinx
//     IP datasheet figures, and
//   - an IP-core library with known utilisations ("resource usage is
//     often available up front"), preloaded with the paper's Table II.
package synth

import (
	"fmt"
	"sort"

	"prpart/internal/netlist"
	"prpart/internal/resource"
)

// Spec is a synthesisable component specification.
type Spec interface {
	// SpecName identifies the component.
	SpecName() string
	// Estimate returns the post-synthesis resource utilisation.
	Estimate() resource.Vector
}

// FIRFilter is a direct-form FIR filter.
type FIRFilter struct {
	Name      string
	Taps      int
	DataWidth int
	// Folding is the number of taps sharing one multiplier (1 = fully
	// parallel).
	Folding int
}

// SpecName implements Spec.
func (f FIRFilter) SpecName() string { return f.Name }

// Estimate implements Spec: one DSP slice per Folding taps, plus
// registers and adder logic in CLBs.
func (f FIRFilter) Estimate() resource.Vector {
	fold := f.Folding
	if fold < 1 {
		fold = 1
	}
	dsps := ceilDiv(f.Taps, fold)
	clbs := ceilDiv(f.Taps*f.DataWidth, 64) // delay line + adder tree
	if fold > 1 {
		clbs += ceilDiv(f.Taps*f.DataWidth, 128) // coefficient sequencing
	}
	return resource.New(clbs, 0, dsps)
}

// FFT is a pipelined streaming FFT.
type FFT struct {
	Name   string
	Points int
	Width  int
}

// SpecName implements Spec.
func (f FFT) SpecName() string { return f.Name }

// Estimate implements Spec: log2(N) butterfly stages, each a complex
// multiplier (3 DSPs) with BRAM delay lines for larger stages.
func (f FFT) Estimate() resource.Vector {
	stages := log2ceil(f.Points)
	dsps := 3 * stages
	brams := 0
	if f.Points >= 512 {
		brams = stages - 8
		if brams < 0 {
			brams = 0
		}
		brams += 2
	}
	clbs := stages * ceilDiv(f.Width*12, 8)
	return resource.New(clbs, brams, dsps)
}

// ViterbiDecoder is a convolutional FEC decoder.
type ViterbiDecoder struct {
	Name           string
	ConstraintLen  int // K, typically 7
	TracebackDepth int
}

// SpecName implements Spec.
func (v ViterbiDecoder) SpecName() string { return v.Name }

// Estimate implements Spec: 2^(K-1) ACS butterflies in logic, traceback
// memory in BRAM.
func (v ViterbiDecoder) Estimate() resource.Vector {
	states := 1 << (v.ConstraintLen - 1)
	clbs := states * 9
	brams := ceilDiv(states*v.TracebackDepth, 16384)
	return resource.New(clbs, brams, 0)
}

// TurboDecoder is an iterative FEC decoder.
type TurboDecoder struct {
	Name       string
	BlockSize  int
	Iterations int
}

// SpecName implements Spec.
func (t TurboDecoder) SpecName() string { return t.Name }

// Estimate implements Spec: two SISO decoders plus interleaver memory
// proportional to the block size.
func (t TurboDecoder) Estimate() resource.Vector {
	clbs := 600 + 18*t.Iterations
	brams := ceilDiv(t.BlockSize*8, 4096)
	return resource.New(clbs, brams, 4)
}

// Modulator is a PSK/QAM (de)modulator.
type Modulator struct {
	Name string
	// BitsPerSymbol: 1 = BPSK, 2 = QPSK, 4 = 16-QAM, ...
	BitsPerSymbol int
}

// SpecName implements Spec.
func (m Modulator) SpecName() string { return m.Name }

// Estimate implements Spec.
func (m Modulator) Estimate() resource.Vector {
	return resource.New(25*m.BitsPerSymbol+25, 0, 2*m.BitsPerSymbol)
}

// GenericLogic is an explicitly sized block for components with no model.
type GenericLogic struct {
	Name      string
	Resources resource.Vector
}

// SpecName implements Spec.
func (g GenericLogic) SpecName() string { return g.Name }

// Estimate implements Spec.
func (g GenericLogic) Estimate() resource.Vector { return g.Resources }

// Library is a catalog of pre-characterised IP cores.
type Library struct {
	cores map[string]resource.Vector
}

// NewLibrary returns a library preloaded with the paper's Table II
// utilisations, keyed "<module>/<mode>" (e.g. "Decoder/Viterbi").
func NewLibrary() *Library {
	l := &Library{cores: map[string]resource.Vector{}}
	for k, v := range map[string]resource.Vector{
		"MatchedFilter/Filter1": resource.New(818, 0, 28),
		"MatchedFilter/Filter2": resource.New(500, 0, 34),
		"Recovery/Fine":         resource.New(318, 1, 13),
		"Recovery/Coarse1":      resource.New(195, 1, 5),
		"Recovery/Coarse2":      resource.New(123, 0, 8),
		"Demodulator/BPSK":      resource.New(50, 0, 2),
		"Demodulator/QPSK":      resource.New(97, 0, 4),
		"Decoder/Viterbi":       resource.New(630, 2, 0),
		"Decoder/Turbo":         resource.New(748, 15, 4),
		"Decoder/DPC":           resource.New(234, 2, 0),
		"Video/MPEG4":           resource.New(4700, 40, 65),
		"Video/MPEG2":           resource.New(4558, 16, 32),
		"Video/JPEG":            resource.New(2780, 6, 9),
	} {
		l.cores[k] = v
	}
	return l
}

// Register adds or replaces a core.
func (l *Library) Register(name string, v resource.Vector) { l.cores[name] = v }

// Lookup returns the utilisation of a core.
func (l *Library) Lookup(name string) (resource.Vector, error) {
	v, ok := l.cores[name]
	if !ok {
		return resource.Vector{}, fmt.Errorf("synth: IP core %q not in library", name)
	}
	return v, nil
}

// Names lists the registered cores, sorted.
func (l *Library) Names() []string {
	out := make([]string, 0, len(l.cores))
	for k := range l.cores {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// IPCore is a Spec backed by a library entry.
type IPCore struct {
	Name string
	Lib  *Library
}

// SpecName implements Spec.
func (c IPCore) SpecName() string { return c.Name }

// Estimate implements Spec; unknown cores estimate to zero (Synthesize
// reports the error).
func (c IPCore) Estimate() resource.Vector {
	v, err := c.Lib.Lookup(c.Name)
	if err != nil {
		return resource.Vector{}
	}
	return v
}

// Result is the outcome of synthesising one spec.
type Result struct {
	Name      string
	Resources resource.Vector
	// Netlist is a structural netlist whose primitive counts reproduce
	// the estimate (LUT/FF pairs per CLB, one instance per BRAM/DSP).
	Netlist *netlist.Module
}

// Synthesize estimates a spec and emits a matching netlist. The netlist
// is deterministic for a given spec name.
func Synthesize(s Spec) (*Result, error) {
	if c, ok := s.(IPCore); ok {
		if _, err := c.Lib.Lookup(c.Name); err != nil {
			return nil, err
		}
	}
	res := s.Estimate()
	if !res.IsNonNegative() {
		return nil, fmt.Errorf("synth: spec %q estimated negative resources %v", s.SpecName(), res)
	}
	return &Result{
		Name:      s.SpecName(),
		Resources: res,
		Netlist:   emit(s.SpecName(), res),
	}, nil
}

// emit builds a flat netlist realising the resource estimate.
func emit(name string, res resource.Vector) *netlist.Module {
	m := &netlist.Module{
		Name: sanitize(name),
		Ports: []netlist.Port{
			{Name: "clk", Dir: netlist.Input, Width: 1},
			{Name: "rst", Dir: netlist.Input, Width: 1},
			{Name: "s_data", Dir: netlist.Input, Width: 32},
			{Name: "s_valid", Dir: netlist.Input, Width: 1},
			{Name: "m_data", Dir: netlist.Output, Width: 32},
			{Name: "m_valid", Dir: netlist.Output, Width: 1},
		},
	}
	add := func(prim netlist.Primitive, n int, prefix string) {
		for i := 0; i < n; i++ {
			m.Instances = append(m.Instances, netlist.Instance{
				Name: fmt.Sprintf("%s_%d", prefix, i),
				Prim: prim,
				Conns: map[string]string{
					"C": "clk",
				},
			})
		}
	}
	add(netlist.LUT, res.CLB*8, "lut")
	add(netlist.FF, res.CLB*8, "ff")
	add(netlist.BRAMPrim, res.BRAM, "bram")
	add(netlist.DSPPrim, res.DSP, "dsp")
	return m
}

func sanitize(name string) string {
	out := make([]rune, 0, len(name))
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "unnamed"
	}
	return string(out)
}

func ceilDiv(a, b int) int {
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

func log2ceil(n int) int {
	k, v := 0, 1
	for v < n {
		v <<= 1
		k++
	}
	return k
}
