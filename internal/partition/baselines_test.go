package partition

import (
	"testing"

	"prpart/internal/cost"
	"prpart/internal/design"
	"prpart/internal/resource"
)

func TestModularVideoReceiver(t *testing.T) {
	d := design.VideoReceiver()
	s := Modular(d)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Regions) != 5 {
		t.Fatalf("regions = %d, want 5", len(s.Regions))
	}
	// Tile-quantised totals from Table II per-module maxima:
	// CLB 6700 (820+320+100+760+4700), BRAM 60 (0+4+0+16+40),
	// DSP 144 (40+16+8+8+72) — the DSP figure matches the paper's 144.
	if got := s.TotalResources(); got != resource.New(6700, 60, 144) {
		t.Errorf("modular resources = %v, want {6700, 60, 144}", got)
	}
	m, sum := cost.Evaluate(s)
	_ = m
	// Region frames: F 1616, R 662, M 208, D 1516, V 9012; transition
	// differ counts 16/19/7/13/21 -> total 248850 (paper: 244872).
	if sum.Total != 248850 {
		t.Errorf("modular total = %d frames, want 248850", sum.Total)
	}
	// Worst transition must be bounded by the sum of all region frames.
	allFrames := 0
	for i := range s.Regions {
		allFrames += s.Regions[i].Frames()
	}
	if sum.Worst > allFrames {
		t.Errorf("worst %d exceeds all-region sum %d", sum.Worst, allFrames)
	}
}

func TestModularSkipsUnusedModesAndModules(t *testing.T) {
	d := design.VideoReceiver()
	s := Modular(d)
	// R.None is unused: region R must have 3 parts, not 4.
	if got := len(s.Regions[1].Parts); got != 3 {
		t.Errorf("R region parts = %d, want 3", got)
	}
	// A module never used by any configuration gets no region.
	d2 := design.VideoReceiver()
	d2.Modules = append(d2.Modules, &design.Module{
		Name:  "X",
		Modes: []design.Mode{{Name: "1", Resources: resource.New(10, 0, 0)}},
	})
	for ci := range d2.Configurations {
		d2.Configurations[ci].Modes = append(d2.Configurations[ci].Modes, 0)
	}
	s2 := Modular(d2)
	if err := s2.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s2.Regions) != 5 {
		t.Errorf("unused module created a region: %d regions", len(s2.Regions))
	}
}

func TestModularAbsentModuleInactive(t *testing.T) {
	d := design.SingleModeExample()
	s := Modular(d)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	_, sum := cost.Evaluate(s)
	// The two configurations are disjoint; every region is don't-care on
	// one side, so the single transition is free.
	if sum.Total != 0 {
		t.Errorf("total = %d, want 0 for disjoint configurations", sum.Total)
	}
}

func TestSingleRegionVideoReceiver(t *testing.T) {
	d := design.VideoReceiver()
	s := SingleRegion(d)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Regions) != 1 || len(s.Regions[0].Parts) != 8 {
		t.Fatalf("shape: %d regions, %d parts", len(s.Regions), len(s.Regions[0].Parts))
	}
	// Region holds the largest configuration: per-resource max over
	// config sums. Config 0 dominates CLB (6321) and BRAM (42); DSP max
	// is config 3 (F2 R1 M2 D3 V1): 34+13+4+0+65 = 116.
	want := d.LargestConfiguration()
	if got := s.Regions[0].MaxResources(); got != want {
		t.Errorf("single region resources = %v, want %v", got, want)
	}
	m, sum := cost.Evaluate(s)
	fr := s.Regions[0].Frames()
	n := len(d.Configurations)
	if sum.Total != fr*n*(n-1)/2 {
		t.Errorf("total = %d, want %d", sum.Total, fr*n*(n-1)/2)
	}
	if sum.Worst != fr {
		t.Errorf("worst = %d, want %d", sum.Worst, fr)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && m[i][j] != fr {
				t.Fatalf("t(%d,%d) = %d, want %d", i, j, m[i][j], fr)
			}
		}
	}
}

func TestFullyStaticVideoReceiver(t *testing.T) {
	d := design.VideoReceiver()
	s := FullyStatic(d)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Regions) != 0 {
		t.Fatalf("static scheme has %d regions", len(s.Regions))
	}
	// Area: sum of every mode (14 modes incl. unused R.None).
	if got := s.TotalResources(); got != resource.New(15751, 83, 204) {
		t.Errorf("static resources = %v", got)
	}
	_, sum := cost.Evaluate(s)
	if sum.Total != 0 || sum.Worst != 0 {
		t.Errorf("static scheme must have zero reconfiguration time: %+v", sum)
	}
	// Table IV shape: static exceeds the case-study budget.
	if s.FitsIn(design.CaseStudyBudget()) {
		t.Error("fully static implementation must exceed the case-study budget")
	}
}

func TestBaselineOrderingInvariant(t *testing.T) {
	// On every canned design: area(single) <= area(modular) <= area(static)
	// and total(single) >= total(modular) (the single region reconfigures
	// everything on every transition).
	for _, d := range []*design.Design{
		design.PaperExample(), design.VideoReceiver(),
		design.VideoReceiverModified(), design.TwoModuleExample(),
		design.SingleModeExample(),
	} {
		single, modular, static := SingleRegion(d), Modular(d), FullyStatic(d)
		if err := single.Validate(); err != nil {
			t.Fatalf("%s single: %v", d.Name, err)
		}
		if err := modular.Validate(); err != nil {
			t.Fatalf("%s modular: %v", d.Name, err)
		}
		if err := static.Validate(); err != nil {
			t.Fatalf("%s static: %v", d.Name, err)
		}
		as, am, at := single.TotalResources(), modular.TotalResources(), static.TotalResources()
		if as.CLB > am.CLB {
			t.Errorf("%s: single CLB %d > modular %d", d.Name, as.CLB, am.CLB)
		}
		// Static is an unquantised sum; compare against the quantised
		// modular generously (quantisation can exceed the raw sum).
		if am.CLB > at.CLB+20*len(d.Modules) {
			t.Errorf("%s: modular CLB %d far above static %d", d.Name, am.CLB, at.CLB)
		}
		_, ss := cost.Evaluate(single)
		_, sm := cost.Evaluate(modular)
		if ss.Total < sm.Total {
			t.Errorf("%s: single total %d below modular %d", d.Name, ss.Total, sm.Total)
		}
	}
}
