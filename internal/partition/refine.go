package partition

import (
	"context"
	"errors"
	"fmt"

	"prpart/internal/basepart"
	"prpart/internal/connmat"
	"prpart/internal/cost"
	"prpart/internal/cover"
	"prpart/internal/design"
)

// This file is the warm-start entry point of the search engine, built
// for the multilevel coarsen–partition–refine flow (internal/multilevel):
// instead of deriving candidate parts by clustering and covering, the
// caller supplies an explicit part list, its activation table and an
// initial grouping (typically the projection of a coarser level's
// solution), and the engine runs its greedy descent machinery — the
// delta cache, quantisation memo and running aggregates of delta.go —
// from that state. The searcher runs with useMasks enabled, so move
// legality stays cheap even when a level carries thousands of parts.

// WarmStart describes a refinement problem: candidate parts with their
// per-configuration activations, plus an initial assignment of every
// part to a region group or to static logic.
type WarmStart struct {
	// Parts is the candidate part list; Resources must be each part's
	// raw resource requirement.
	Parts []basepart.BasePartition
	// Active[ci][pi] reports whether configuration ci activates part pi.
	Active [][]bool
	// Groups assigns parts (by index) to initial regions. Each group
	// must be non-empty and internally compatible: no configuration may
	// activate two parts of the same group.
	Groups [][]int
	// Static lists parts that start in static logic.
	Static []int
}

// RefineOutcome is the result of a Refine run.
type RefineOutcome struct {
	// Result is the best feasible scheme found, or nil when no visited
	// state fit the budget (the caller decides whether that is an error;
	// the multilevel chain keeps descending on the fallback grouping).
	Result *Result
	// Groups and Static describe the grouping of the returned state: the
	// best feasible state when Result is non-nil, otherwise the visited
	// state with the smallest budget violation (ties broken by cost,
	// then area) so an infeasible level still hands the next level its
	// least-broken starting point.
	Groups [][]int
	Static []int
	// Feasible reports whether Groups/Static describe a feasible state.
	Feasible bool
	// States is the number of search states evaluated.
	States int
}

// refineTransferCap bounds the part count up to which the refine
// descent enumerates single-part transfer moves. Transfers are the
// strongest refinement family but their enumeration is O(parts ×
// groups) per iteration; above the cap a level falls back to merges and
// static promotions, which stay near-linear. Coarser levels (where
// moves matter most) are always under the cap.
const refineTransferCap = 2048

// Refine runs a warm-started greedy refinement. See RefineContext.
func Refine(d *design.Design, ws WarmStart, opts Options) (*RefineOutcome, error) {
	return RefineContext(context.Background(), d, ws, opts)
}

// RefineContext improves a caller-supplied grouping of caller-supplied
// candidate parts by greedy descent, using the same incremental move
// evaluation as SolveContext. Unlike SolveContext it explores exactly
// one candidate set (the supplied one), starts from the supplied
// grouping rather than all-singletons, and never restarts — the warm
// start is assumed to be near a good basin. While the start state is
// over budget the descent first repairs feasibility (lowest cost
// increase per unit of violation removed), then improves cost.
//
// PinnedStatic is rejected: pins select parts by mode containment,
// which conflicts with the caller owning the part-to-region assignment.
func RefineContext(ctx context.Context, d *design.Design, ws WarmStart, opts Options) (*RefineOutcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("partition: invalid design: %w", err)
	}
	if len(opts.PinnedStatic) > 0 {
		return nil, errors.New("partition: Refine does not support PinnedStatic")
	}
	if w := opts.TransitionWeights; w != nil {
		if err := checkWeights(w, len(d.Configurations)); err != nil {
			return nil, err
		}
	}
	if len(ws.Parts) == 0 {
		return nil, errors.New("partition: Refine needs at least one candidate part")
	}
	if len(ws.Active) != len(d.Configurations) {
		return nil, fmt.Errorf("partition: warm start has %d activation rows for %d configurations", len(ws.Active), len(d.Configurations))
	}
	for ci, row := range ws.Active {
		if len(row) != len(ws.Parts) {
			return nil, fmt.Errorf("partition: activation row %d has %d entries for %d parts", ci, len(row), len(ws.Parts))
		}
	}
	placed := make([]bool, len(ws.Parts))
	place := func(pi int) error {
		if pi < 0 || pi >= len(ws.Parts) {
			return fmt.Errorf("partition: warm start references part %d of %d", pi, len(ws.Parts))
		}
		if placed[pi] {
			return fmt.Errorf("partition: warm start places part %d twice", pi)
		}
		placed[pi] = true
		return nil
	}
	for gi, g := range ws.Groups {
		if len(g) == 0 {
			return nil, fmt.Errorf("partition: warm-start group %d is empty", gi)
		}
		for _, pi := range g {
			if err := place(pi); err != nil {
				return nil, err
			}
		}
	}
	for _, pi := range ws.Static {
		if err := place(pi); err != nil {
			return nil, err
		}
	}
	for pi, ok := range placed {
		if !ok {
			return nil, fmt.Errorf("partition: warm start leaves part %d unplaced", pi)
		}
	}

	stop := opts.Obs.Timer("partition.phase.refine").Time()
	defer stop()

	m := connmat.New(d)
	cs := &cover.CandidateSet{Parts: ws.Parts, Active: ws.Active}
	s := newSearcher(d, m, cs, opts, newScratch())
	s.useMasks = true
	// Shard large scan iterations over Options.Workers (refine is the
	// only caller of the per-iteration parallel scan; the shard
	// decomposition is Workers-independent, so any worker count —
	// including the serial default — produces byte-identical schemes
	// and identical obs counters; see refine_parallel.go).
	s.par = newParScan(s, opts.Workers)
	defer s.par.close()

	// Group-internal compatibility: since a group's mask is the union of
	// its parts' masks, the group is internally compatible iff its mask
	// popcount equals the sum of its parts' activation counts (any
	// overlap double-counts a configuration).
	st := &state{}
	for gi, g := range ws.Groups {
		grp := s.newGroup(append([]int(nil), g...)...)
		if grp.mask.Count() != grp.active {
			return nil, fmt.Errorf("partition: warm-start group %d is not internally compatible", gi)
		}
		st.groups = append(st.groups, grp)
	}
	for _, pi := range ws.Static {
		st.static = append(st.static, pi)
		st.staticRes = st.staticRes.Add(s.partRes[pi])
	}
	st.cost = st.totalCost()
	st.area = st.totalArea()

	states := 0
	var best *snapshot
	// fallback tracks the least-violating visited state so an infeasible
	// level still returns a grouping for the chain to keep refining.
	var fallback *snapshot
	var fallbackViol int64
	record := func(vs *state) {
		states++
		if !s.feasible(vs.area) {
			if best == nil {
				v := s.violation(vs.area)
				if fallback == nil || v < fallbackViol ||
					(v == fallbackViol && (vs.cost < fallback.cost ||
						(vs.cost == fallback.cost && vs.area.Total() < fallback.area.Total()))) {
					fallback = s.snap(vs)
					fallbackViol = v
				}
			}
			return
		}
		if best != nil {
			if vs.cost > best.cost {
				s.cSnapSkip.Inc()
				return
			}
			if vs.cost == best.cost {
				at, bt := vs.area.Total(), best.area.Total()
				if at > bt || (at == bt && len(vs.groups) >= len(best.st.groups)) {
					s.cSnapSkip.Inc()
					return
				}
			}
		}
		best = s.snap(vs)
	}
	record(st)
	allowTransfers := len(ws.Parts) <= refineTransferCap
	statics := []bool{false}
	if !opts.NoStatic {
		statics = append(statics, true)
	}
	for _, withStatic := range statics {
		if ctx.Err() != nil {
			break
		}
		s.greedy(st, withStatic, false, record)
		if allowTransfers {
			s.greedy(st, withStatic, true, record)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("partition: refine cancelled: %w", err)
	}

	chosen := best
	if chosen == nil {
		chosen = fallback
	}
	out := &RefineOutcome{States: states, Feasible: best != nil}
	out.Groups = make([][]int, len(chosen.st.groups))
	for i, g := range chosen.st.groups {
		out.Groups[i] = append([]int(nil), g.parts...)
	}
	out.Static = append([]int(nil), chosen.st.static...)
	if best == nil {
		return out, nil
	}
	sch, err := best.scheme("proposed")
	if err != nil {
		return nil, err
	}
	if err := sch.Validate(); err != nil {
		return nil, fmt.Errorf("partition: internal error: refined scheme invalid: %w", err)
	}
	_, sum := cost.Evaluate(sch)
	out.Result = &Result{
		Scheme:        sch,
		Summary:       sum,
		CandidateSets: 1,
		States:        states,
		Trace:         best.trace(),
	}
	return out, nil
}
