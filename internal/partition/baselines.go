// Package partition implements the paper's partitioning algorithm (§IV-C,
// Fig. 6) and the two conventional schemes it is compared against:
// one-module-per-region and single-region, plus the fully static
// implementation used as the area upper bound in Table IV.
package partition

import (
	"prpart/internal/basepart"
	"prpart/internal/design"
	"prpart/internal/modeset"
	"prpart/internal/resource"
	"prpart/internal/scheme"
)

func basePartition(d *design.Design, refs ...design.ModeRef) basepart.BasePartition {
	s := modeset.New(refs...)
	var v resource.Vector
	for _, r := range s.Refs() {
		v = v.Add(d.ModeResources(r))
	}
	return basepart.BasePartition{Set: s, FreqWeight: 1, Resources: v}
}

// Modular builds the one-module-per-region scheme: each module that is
// used by at least one configuration gets its own region, sized for its
// largest mode; a transition reconfigures every region whose module
// changes mode. Modules absent from a configuration (mode 0) leave their
// region untouched.
func Modular(d *design.Design) *scheme.Scheme {
	s := &scheme.Scheme{Design: d, Name: "modular"}
	// regionOf[mi] is the region of module mi, -1 when unused.
	regionOf := make([]int, len(d.Modules))
	// partOf[mi][mode-1] is the part index of that mode, -1 when unused.
	partOf := make([][]int, len(d.Modules))
	used := make([]map[int]bool, len(d.Modules))
	for _, c := range d.Configurations {
		for mi, k := range c.Modes {
			if k != 0 {
				if used[mi] == nil {
					used[mi] = make(map[int]bool)
				}
				used[mi][k] = true
			}
		}
	}
	for mi, m := range d.Modules {
		regionOf[mi] = -1
		partOf[mi] = make([]int, len(m.Modes))
		for i := range partOf[mi] {
			partOf[mi][i] = -1
		}
		if len(used[mi]) == 0 {
			continue
		}
		var reg scheme.Region
		for k := 1; k <= len(m.Modes); k++ {
			if !used[mi][k] {
				continue
			}
			partOf[mi][k-1] = len(reg.Parts)
			reg.Parts = append(reg.Parts, basePartition(d, design.ModeRef{Module: mi, Mode: k}))
		}
		regionOf[mi] = len(s.Regions)
		s.Regions = append(s.Regions, reg)
	}
	for _, c := range d.Configurations {
		row := make([]int, len(s.Regions))
		for ri := range row {
			row[ri] = scheme.Inactive
		}
		for mi, k := range c.Modes {
			if k != 0 && regionOf[mi] >= 0 {
				row[regionOf[mi]] = partOf[mi][k-1]
			}
		}
		s.Active = append(s.Active, row)
	}
	return s
}

// SingleRegion builds the scheme with all reconfigurable logic in one
// region: the region holds one base partition per configuration (the
// whole configuration's mode set), is sized for the largest configuration,
// and is fully reconfigured on every transition.
func SingleRegion(d *design.Design) *scheme.Scheme {
	s := &scheme.Scheme{Design: d, Name: "single-region"}
	var reg scheme.Region
	for ci := range d.Configurations {
		reg.Parts = append(reg.Parts, basePartition(d, d.ConfigModes(ci)...))
	}
	s.Regions = []scheme.Region{reg}
	for ci := range d.Configurations {
		s.Active = append(s.Active, []int{ci})
	}
	return s
}

// FullyStatic builds the no-reconfiguration scheme: every mode of every
// module is instantiated concurrently in static logic behind mode-select
// multiplexers. Reconfiguration time is zero; the area is the sum of
// everything, which is usually what rules it out (Table IV).
func FullyStatic(d *design.Design) *scheme.Scheme {
	s := &scheme.Scheme{Design: d, Name: "static"}
	for mi, m := range d.Modules {
		for k := 1; k <= len(m.Modes); k++ {
			s.Static = append(s.Static, basePartition(d, design.ModeRef{Module: mi, Mode: k}))
		}
	}
	s.Active = make([][]int, len(d.Configurations))
	for ci := range s.Active {
		s.Active[ci] = []int{}
	}
	return s
}
