package partition

import (
	"strings"
	"testing"

	"prpart/internal/design"
	"prpart/internal/resource"
)

func TestPinnedStaticHonoured(t *testing.T) {
	d := design.VideoReceiver()
	// Pin the BPSK demodulator into static logic.
	bpsk := design.ModeRef{Module: 2, Mode: 1}
	res, err := Solve(d, Options{
		Budget:       design.CaseStudyBudget(),
		PinnedStatic: []design.ModeRef{bpsk},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Scheme.StaticSet().Contains(bpsk) {
		t.Errorf("pinned mode %s not in static logic", d.ModeName(bpsk))
	}
	for ri := range res.Scheme.Regions {
		if res.Scheme.Regions[ri].Modes().Contains(bpsk) {
			t.Errorf("pinned mode %s also appears in region %d", d.ModeName(bpsk), ri)
		}
	}
}

func TestPinnedStaticLargeMode(t *testing.T) {
	// Pinning a large mode forces the search to spend budget on it; the
	// result must stay feasible (or the solve must fail cleanly).
	d := design.VideoReceiver()
	turbo := design.ModeRef{Module: 3, Mode: 2}
	res, err := Solve(d, Options{
		Budget:       design.CaseStudyBudget(),
		PinnedStatic: []design.ModeRef{turbo},
	})
	if err != nil {
		t.Skipf("pinning Turbo made the budget infeasible: %v", err)
	}
	if !res.Scheme.FitsIn(design.CaseStudyBudget()) {
		t.Error("pinned scheme exceeds budget")
	}
	if !res.Scheme.StaticSet().Contains(turbo) {
		t.Error("pinned Turbo not static")
	}
}

func TestPinnedStaticValidation(t *testing.T) {
	d := design.VideoReceiver()
	// R.None is unused: pin must be rejected.
	if _, err := Solve(d, Options{
		Budget:       design.CaseStudyBudget(),
		PinnedStatic: []design.ModeRef{{Module: 1, Mode: 4}},
	}); err == nil || !strings.Contains(err.Error(), "not used") {
		t.Errorf("unused pin: %v", err)
	}
	if _, err := Solve(d, Options{
		Budget:       design.CaseStudyBudget(),
		NoStatic:     true,
		PinnedStatic: []design.ModeRef{{Module: 2, Mode: 1}},
	}); err == nil || !strings.Contains(err.Error(), "conflicts") {
		t.Errorf("pin + NoStatic: %v", err)
	}
}

func TestCoverDescendingAblation(t *testing.T) {
	// Reversing the covering order still yields a valid scheme but
	// (being built from whole-configuration base partitions) must not
	// beat the paper's ascending order.
	d := design.VideoReceiver()
	budget := design.CaseStudyBudget()
	asc, err := Solve(d, Options{Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	desc, err := Solve(d, Options{Budget: budget, CoverDescending: true})
	if err == ErrNoScheme {
		t.Log("descending cover found no feasible scheme (ascending order essential)")
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := desc.Scheme.Validate(); err != nil {
		t.Fatal(err)
	}
	if desc.Summary.Total < asc.Summary.Total {
		t.Errorf("descending cover %d beat ascending %d", desc.Summary.Total, asc.Summary.Total)
	}
	t.Logf("cover order ablation: ascending %d, descending %d frames",
		asc.Summary.Total, desc.Summary.Total)
}

func TestParallelSolveDeterministic(t *testing.T) {
	d := design.VideoReceiver()
	budget := design.CaseStudyBudget()
	serial, err := Solve(d, Options{Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Solve(d, Options{Budget: budget, Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Summary != parallel.Summary {
		t.Errorf("parallel result differs: %+v vs %+v", parallel.Summary, serial.Summary)
	}
	if len(serial.Scheme.Regions) != len(parallel.Scheme.Regions) {
		t.Error("region structure differs under parallelism")
	}
	for ri := range serial.Scheme.Regions {
		if serial.Scheme.Regions[ri].Label(d) != parallel.Scheme.Regions[ri].Label(d) {
			t.Errorf("region %d differs: %q vs %q", ri,
				serial.Scheme.Regions[ri].Label(d), parallel.Scheme.Regions[ri].Label(d))
		}
	}
}

func TestParallelSolveExplicitWorkers(t *testing.T) {
	d := design.VideoReceiverModified()
	budget := design.CaseStudyBudget()
	a, err := Solve(d, Options{Budget: budget, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(d, Options{Budget: budget, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary != b.Summary {
		t.Errorf("3-worker result %+v differs from serial %+v", a.Summary, b.Summary)
	}
}

func TestTraceRecordsMoves(t *testing.T) {
	d := design.VideoReceiver()
	res, err := Solve(d, Options{Budget: design.CaseStudyBudget()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("constrained solve should require moves")
	}
	merges, promotes := 0, 0
	for _, step := range res.Trace {
		switch {
		case strings.HasPrefix(step, "merge "):
			merges++
		case strings.HasPrefix(step, "promote "):
			promotes++
		default:
			t.Errorf("unrecognised trace step %q", step)
		}
	}
	if merges == 0 {
		t.Error("no merges recorded for a budget-constrained solve")
	}
	if len(res.Scheme.Static) > 0 && promotes == 0 {
		t.Error("static parts present but no promote step recorded")
	}
	// Replaying determinism: same options give the same trace.
	res2, err := Solve(d, Options{Budget: design.CaseStudyBudget()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Trace) != len(res.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(res2.Trace), len(res.Trace))
	}
	for i := range res.Trace {
		if res.Trace[i] != res2.Trace[i] {
			t.Errorf("trace step %d differs: %q vs %q", i, res.Trace[i], res2.Trace[i])
		}
	}
}

func TestZeroTraceOnUnconstrainedSolve(t *testing.T) {
	d := design.PaperExample()
	res, err := Solve(d, Options{Budget: resource.New(1e6, 1e4, 1e4)})
	if err != nil {
		t.Fatal(err)
	}
	// All-separate is optimal: either no moves, or only cost-free
	// static promotions.
	for _, step := range res.Trace {
		if strings.HasPrefix(step, "merge ") {
			t.Errorf("unconstrained solve merged: %q", step)
		}
	}
}
