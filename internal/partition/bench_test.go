package partition

import (
	"testing"

	"prpart/internal/basepart"
	"prpart/internal/connmat"
	"prpart/internal/cost"
	"prpart/internal/cover"
	"prpart/internal/design"
	"prpart/internal/synthetic"
)

func BenchmarkSolveCaseStudy(b *testing.B) {
	d := design.VideoReceiver()
	opts := Options{Budget: design.CaseStudyBudget()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(d, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveSyntheticMedian(b *testing.B) {
	designs := synthetic.Generate(1, 8)
	budgets := make([]Options, len(designs))
	for i, d := range designs {
		budgets[i] = Options{Budget: Modular(d).TotalResources()}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := designs[i%len(designs)]
		if _, err := Solve(d, budgets[i%len(designs)]); err != nil &&
			err != ErrNoScheme && err != ErrInfeasible {
			b.Fatal(err)
		}
	}
}

// BenchmarkGreedyDescent isolates the descent inner loop the
// incremental engine optimises: one full greedy descent (merges and
// static promotions) on the case study's first candidate set, reusing
// one searcher and scratch across iterations like the solve path does.
func BenchmarkGreedyDescent(b *testing.B) {
	d := design.VideoReceiver()
	m := connmat.New(d)
	parts, err := basepart.BasePartitions(m)
	if err != nil {
		b.Fatal(err)
	}
	sets := cover.Sets(cover.Order(parts), m)
	s := newSearcher(d, m, sets[0], Options{Budget: design.CaseStudyBudget()}, newScratch())
	base := s.initial()
	discard := func(*state) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.greedy(base, true, false, discard)
	}
}

func BenchmarkBaselines(b *testing.B) {
	d := design.VideoReceiver()
	for i := 0; i < b.N; i++ {
		_, _ = cost.Evaluate(Modular(d))
		_, _ = cost.Evaluate(SingleRegion(d))
		_, _ = cost.Evaluate(FullyStatic(d))
	}
}
