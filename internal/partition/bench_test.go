package partition

import (
	"testing"

	"prpart/internal/cost"
	"prpart/internal/design"
	"prpart/internal/synthetic"
)

func BenchmarkSolveCaseStudy(b *testing.B) {
	d := design.VideoReceiver()
	opts := Options{Budget: design.CaseStudyBudget()}
	for i := 0; i < b.N; i++ {
		if _, err := Solve(d, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveSyntheticMedian(b *testing.B) {
	designs := synthetic.Generate(1, 8)
	budgets := make([]Options, len(designs))
	for i, d := range designs {
		budgets[i] = Options{Budget: Modular(d).TotalResources()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := designs[i%len(designs)]
		if _, err := Solve(d, budgets[i%len(designs)]); err != nil &&
			err != ErrNoScheme && err != ErrInfeasible {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselines(b *testing.B) {
	d := design.VideoReceiver()
	for i := 0; i < b.N; i++ {
		_, _ = cost.Evaluate(Modular(d))
		_, _ = cost.Evaluate(SingleRegion(d))
		_, _ = cost.Evaluate(FullyStatic(d))
	}
}
