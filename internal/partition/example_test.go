package partition_test

import (
	"fmt"

	"prpart/internal/design"
	"prpart/internal/partition"
)

// Solve runs the paper's algorithm end to end on the worked example: with
// a tight budget the modes are grouped into regions; the total
// reconfiguration time (eq. 7) is measured in configuration frames.
func ExampleSolve() {
	d := design.PaperExample()
	modularArea := partition.Modular(d).TotalResources()
	res, err := partition.Solve(d, partition.Options{Budget: modularArea})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("regions: %d\n", len(res.Scheme.Regions))
	fmt.Printf("fits modular budget: %v\n", res.Scheme.FitsIn(modularArea))
	fmt.Printf("beats single region: %v\n", func() bool {
		single := partition.SingleRegion(d)
		return res.Summary.Total <= len(d.Configurations)*(len(d.Configurations)-1)/2*single.Regions[0].Frames()
	}())
	// Output:
	// regions: 3
	// fits modular budget: true
	// beats single region: true
}

// The conventional schemes the paper compares against are available as
// direct constructors.
func ExampleModular() {
	d := design.VideoReceiver()
	s := partition.Modular(d)
	fmt.Printf("%d regions for %d modules (R.None unused)\n",
		len(s.Regions), len(d.Modules))
	// Output:
	// 5 regions for 5 modules (R.None unused)
}
