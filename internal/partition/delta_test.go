package partition

import (
	"testing"

	"prpart/internal/basepart"
	"prpart/internal/connmat"
	"prpart/internal/cover"
	"prpart/internal/design"
	"prpart/internal/device"
	"prpart/internal/resource"
	"prpart/internal/synthetic"
)

// newTestSearchers builds one searcher per candidate set of a design,
// each with a fresh scratch, bypassing Solve.
func newTestSearchers(t *testing.T, d *design.Design, opts Options) []*searcher {
	t.Helper()
	m := connmat.New(d)
	parts, err := basepart.BasePartitions(m)
	if err != nil {
		t.Fatalf("%s: BasePartitions: %v", d.Name, err)
	}
	sets := cover.Sets(cover.Order(parts), m)
	if len(sets) > 4 {
		sets = sets[:4]
	}
	out := make([]*searcher, len(sets))
	for i, cs := range sets {
		out[i] = newSearcher(d, m, cs, opts, newScratch())
	}
	return out
}

// checkStateAgainstOracle compares every legal move's incremental
// evaluation against the from-first-principles moveDelta, and the
// state's running aggregates against full recomputation.
func checkStateAgainstOracle(t *testing.T, label string, s *searcher, st *state, step int) {
	t.Helper()
	if got, want := st.cost, st.totalCost(); got != want {
		t.Fatalf("%s step %d: running cost %d, recomputed %d", label, step, got, want)
	}
	if got, want := st.area, st.totalArea(); got != want {
		t.Fatalf("%s step %d: running area %v, recomputed %v", label, step, got, want)
	}
	curViol := s.violation(st.area)
	rejected := func(v int64) bool {
		if curViol == 0 {
			return v > 0
		}
		return curViol-v <= 0
	}
	for _, mv := range s.appendLegalMoves(nil, st, true, true) {
		wantD, wantArea := s.moveDelta(st, mv)
		wantV := s.violation(wantArea)
		gotD, gotArea, gotV, ok := s.evalMove(s.sc, st, mv, st.area, curViol)
		if !ok {
			// The cache may only reject moves the greedy policy's
			// area rule would reject on the oracle's numbers too.
			if !rejected(wantV) {
				t.Fatalf("%s step %d: evalMove rejected move %+v the oracle accepts (viol %d, cur %d)",
					label, step, mv, wantV, curViol)
			}
			continue
		}
		if rejected(wantV) {
			t.Fatalf("%s step %d: evalMove accepted move %+v the oracle rejects", label, step, mv)
		}
		if gotD != wantD || gotArea != wantArea || gotV != wantV {
			t.Fatalf("%s step %d move %+v: evalMove (d=%d area=%v v=%d) != moveDelta (d=%d area=%v v=%d)",
				label, step, mv, gotD, gotArea, gotV, wantD, wantArea, wantV)
		}
	}
}

// TestDeltaCacheMatchesMoveDelta is the delta-cache property test: for
// a corpus of designs, after arbitrary applied-move sequences (which
// leave cached entries from earlier iterations live), every cached
// evaluation still equals a fresh moveDelta and the running aggregates
// still equal full recomputation.
func TestDeltaCacheMatchesMoveDelta(t *testing.T) {
	corpus := 12
	if raceEnabled {
		corpus = 4
	}
	designs := []*design.Design{design.PaperExample(), design.VideoReceiver()}
	designs = append(designs, synthetic.Generate(4, corpus)...)
	for _, d := range designs {
		budget := Modular(d).TotalResources()
		for _, opts := range []Options{
			{Budget: budget},
			{Budget: tighten(budget, 80)},
		} {
			for si, s := range newTestSearchers(t, d, opts) {
				label := d.Name
				st := s.initial()
				for step := 0; step < 12; step++ {
					checkStateAgainstOracle(t, label, s, st, step)
					moves := s.appendLegalMoves(nil, st, true, true)
					if len(moves) == 0 {
						break
					}
					// Deterministic pseudo-arbitrary choice, varied by
					// candidate set and step.
					mv := moves[(step*13+si*7+5)%len(moves)]
					s.applyMove(s.sc, st, mv)
				}
			}
		}
	}
}

// TestDeltaCacheMatchesMoveDeltaWeighted repeats the property test
// under a skewed transition-weight matrix, covering the weighted
// merge/extend/shrink cache entries.
func TestDeltaCacheMatchesMoveDeltaWeighted(t *testing.T) {
	designs := []*design.Design{design.VideoReceiver()}
	designs = append(designs, synthetic.Generate(5, 4)...)
	for _, d := range designs {
		n := len(d.Configurations)
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, n)
			for j := range w[i] {
				if i != j {
					w[i][j] = float64((i*5+j*2)%7) + 0.25
				}
			}
		}
		opts := Options{Budget: Modular(d).TotalResources(), TransitionWeights: w}
		for si, s := range newTestSearchers(t, d, opts) {
			st := s.initial()
			for step := 0; step < 10; step++ {
				checkStateAgainstOracle(t, d.Name+"/weighted", s, st, step)
				moves := s.appendLegalMoves(nil, st, true, true)
				if len(moves) == 0 {
					break
				}
				s.applyMove(s.sc, st, moves[(step*11+si*3+2)%len(moves)])
			}
		}
	}
}

// TestQuantMemo checks the quantisation memo returns exactly what the
// device model computes, and that repeated lookups are served from the
// memo rather than growing it.
func TestQuantMemo(t *testing.T) {
	d := design.VideoReceiver()
	s := newTestSearchers(t, d, Options{Budget: design.CaseStudyBudget()})[0]
	vecs := []resource.Vector{
		resource.New(0, 0, 0),
		resource.New(17, 0, 3),
		resource.New(1200, 12, 0),
		resource.New(6800, 64, 150),
	}
	for _, res := range vecs {
		area, frames := s.quantize(s.sc, res)
		if want := device.TilesToPrimitives(device.Tiles(res)); area != want {
			t.Errorf("quantize(%v) area = %v, want %v", res, area, want)
		}
		if want := s.searchFrames(res); frames != want {
			t.Errorf("quantize(%v) frames = %d, want %d", res, frames, want)
		}
	}
	size := len(s.sc.quant)
	for _, res := range vecs {
		s.quantize(s.sc, res)
	}
	if len(s.sc.quant) != size {
		t.Errorf("repeated quantize grew the memo: %d -> %d entries", size, len(s.sc.quant))
	}
}

// TestTransitionWeightsSymmetrised pins the documented symmetrisation:
// the searcher's integer weight for pair {i, j} is the mean of the two
// directed float entries, and transposing the matrix cannot change the
// solved scheme.
func TestTransitionWeightsSymmetrised(t *testing.T) {
	d := design.VideoReceiver()
	n := len(d.Configurations)
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
		for j := range w[i] {
			if i != j {
				w[i][j] = float64((i*3+j)%4) + 0.5 // asymmetric on purpose
			}
		}
	}
	opts := Options{Budget: design.CaseStudyBudget(), TransitionWeights: w}
	s := newTestSearchers(t, d, opts)[0]
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := int64((w[i][j] + w[j][i]) / 2 * weightScale)
			if got := s.weights[i][j]; got != want {
				t.Fatalf("weights[%d][%d] = %d, want mean-symmetrised %d", i, j, got, want)
			}
			if s.weights[i][j] != s.weights[j][i] {
				t.Fatalf("weights[%d][%d] != weights[%d][%d]: matrix not symmetric", i, j, j, i)
			}
		}
	}
	transposed := make([][]float64, n)
	for i := range transposed {
		transposed[i] = make([]float64, n)
		for j := range transposed[i] {
			transposed[i][j] = w[j][i]
		}
	}
	a, err := Solve(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(d, Options{Budget: design.CaseStudyBudget(), TransitionWeights: transposed})
	if err != nil {
		t.Fatal(err)
	}
	if af, bf := resultFingerprint(d, a), resultFingerprint(d, b); af != bf {
		t.Fatalf("transposing the weight matrix changed the result:\n--- w\n%s--- wᵀ\n%s", af, bf)
	}
}

// TestParallelSearcherReuse drives the parallel candidate-set path —
// workers pulling from the buffered job channel, each reusing one
// scratch across sets — concurrently from several goroutines, and
// requires every parallel result to match the serial one. Run under
// -race (verify.sh tier 2) this doubles as the data-race check on the
// reuse scheme.
func TestParallelSearcherReuse(t *testing.T) {
	designs := []*design.Design{design.VideoReceiver()}
	designs = append(designs, synthetic.Generate(6, 3)...)
	for _, d := range designs {
		opts := Options{Budget: Modular(d).TotalResources()}
		serial, err := Solve(d, opts)
		if err != nil {
			t.Fatalf("%s: serial: %v", d.Name, err)
		}
		want := resultFingerprint(d, serial)
		const goroutines = 4
		errs := make(chan error, goroutines)
		for g := 0; g < goroutines; g++ {
			go func() {
				popts := opts
				popts.Workers = 4
				res, err := Solve(d, popts)
				if err != nil {
					errs <- err
					return
				}
				if got := resultFingerprint(d, res); got != want {
					errs <- errDiverged
					return
				}
				errs <- nil
			}()
		}
		for g := 0; g < goroutines; g++ {
			if err := <-errs; err != nil {
				t.Fatalf("%s: parallel solve: %v", d.Name, err)
			}
		}
	}
}

var errDiverged = errorString("parallel result diverged from serial")

type errorString string

func (e errorString) Error() string { return string(e) }
