package partition_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"prpart/internal/design"
	"prpart/internal/obs"
	"prpart/internal/partition"
	"prpart/internal/synthetic"
)

// TestSolveContextBackgroundMatchesSolve checks the delegation contract:
// SolveContext under a background context returns byte-identical schemes
// to plain Solve, serial and parallel.
func TestSolveContextBackgroundMatchesSolve(t *testing.T) {
	designs := []*design.Design{design.PaperExample(), design.VideoReceiver()}
	designs = append(designs, synthetic.Generate(7, 4)...)
	for _, d := range designs {
		budget := partition.Modular(d).TotalResources()
		for _, workers := range []int{1, -1} {
			opts := partition.Options{Budget: budget, Workers: workers}
			plain, err := partition.Solve(d, opts)
			if err != nil {
				t.Fatalf("%s: Solve: %v", d.Name, err)
			}
			ctxed, err := partition.SolveContext(context.Background(), d, opts)
			if err != nil {
				t.Fatalf("%s: SolveContext: %v", d.Name, err)
			}
			if got, want := fingerprint(d, ctxed), fingerprint(d, plain); got != want {
				t.Fatalf("%s workers %d: SolveContext diverged from Solve:\n--- Solve\n%s--- SolveContext\n%s",
					d.Name, workers, want, got)
			}
		}
	}
}

// TestSolveContextNilContext treats a nil context like background rather
// than panicking, matching the stdlib's lenient handling.
func TestSolveContextNilContext(t *testing.T) {
	d := design.PaperExample()
	var nilCtx context.Context
	if _, err := partition.SolveContext(nilCtx, d, partition.Options{
		Budget: partition.Modular(d).TotalResources(),
	}); err != nil {
		t.Fatalf("nil context: %v", err)
	}
}

// TestSolveContextCancelled submits an already-cancelled context and
// requires the search to stop at the first candidate-set boundary: no
// result, an error wrapping context.Canceled, and a state count of zero
// work (the run must not have explored any sets).
func TestSolveContextCancelled(t *testing.T) {
	d := design.VideoReceiver()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, -1} {
		res, err := partition.SolveContext(ctx, d, partition.Options{
			Budget:  design.CaseStudyBudget(),
			Workers: workers,
		})
		if err == nil {
			t.Fatalf("workers %d: cancelled solve returned %v, want error", workers, res)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers %d: error %v does not wrap context.Canceled", workers, err)
		}
	}
}

// TestSolveContextDeadline checks the deadline path the daemon relies
// on: an expired deadline surfaces context.DeadlineExceeded.
func TestSolveContextDeadline(t *testing.T) {
	d := design.VideoReceiver()
	ctx, cancel := context.WithTimeout(context.Background(), -1)
	defer cancel()
	_, err := partition.SolveContext(ctx, d, partition.Options{Budget: design.CaseStudyBudget()})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
}

// TestSolveContextCancelledWeighted covers the weighted double-descent
// path: cancellation must stop before the second (uniform) run too.
func TestSolveContextCancelledWeighted(t *testing.T) {
	d := design.VideoReceiver()
	n := len(d.Configurations)
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
		for j := range w[i] {
			w[i][j] = 1
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := partition.SolveContext(ctx, d, partition.Options{
		Budget:            design.CaseStudyBudget(),
		TransitionWeights: w,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
}

// writerFunc adapts a function to io.Writer for tracer-sink test hooks.
type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestSolveContextCancelMidUniform cancels in the window between the
// weighted descent (which completes) and the uniform descent: the
// tracer sink fires on the uniform run's search.start event. The
// weighted-only result must not be surfaced as success — the uniform
// candidate could win an uncancelled run, so doing so would make the
// result depend on cancellation timing and poison content-addressed
// caches keyed on the request.
func TestSolveContextCancelMidUniform(t *testing.T) {
	d := design.VideoReceiver()
	n := len(d.Configurations)
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
		for j := range w[i] {
			w[i][j] = 1
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	o := obs.New()
	tr := obs.NewTracer(16)
	starts := 0
	tr.SetSink(writerFunc(func(p []byte) (int, error) {
		if bytes.Contains(p, []byte("search.start")) {
			starts++
			if starts == 2 {
				cancel()
			}
		}
		return len(p), nil
	}))
	o.SetTracer(tr)
	res, err := partition.SolveContext(ctx, d, partition.Options{
		Budget:            design.CaseStudyBudget(),
		TransitionWeights: w,
		Obs:               o,
	})
	if starts < 2 {
		t.Fatalf("saw %d search.start events, want 2 (weighted then uniform)", starts)
	}
	if err == nil {
		t.Fatalf("uniform run cancelled mid-solve returned %v, want error", res)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
}
