package partition_test

import (
	"errors"
	"testing"

	"prpart/internal/design"
	"prpart/internal/exact"
	"prpart/internal/partition"
	"prpart/internal/synthetic"
)

// smallDesigns filters a synthetic corpus down to designs the exhaustive
// solver can enumerate: at most maxModules modules of at most maxModes
// modes. The candidate-set size is still checked per design via
// exact.ErrTooLarge.
func smallDesigns(seed int64, n, maxModules, maxModes int) []*design.Design {
	var out []*design.Design
	for _, d := range synthetic.Generate(seed, n) {
		if len(d.Modules) > maxModules {
			continue
		}
		ok := true
		for _, m := range d.Modules {
			if len(m.Modes) > maxModes {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, d)
		}
	}
	return out
}

// TestDifferentialGreedyVsExact validates the greedy search against the
// exhaustive ground truth on small designs. Both solvers are restricted
// to the same search universe — groupings of the FIRST candidate
// partition set (MaxCandidateSets: 1), which internal/exact enumerates
// completely — so on every design the exact optimum is a lower bound on
// the greedy total, and the test quantifies how often the greedy descent
// actually reaches it.
//
// The greedy algorithm is a heuristic: the paper does not claim
// optimality, and a bounded gap is the documented expectation. On this
// corpus (seed 1, 400 designs filtered to 67 enumerable ones) the greedy
// search reaches the exact optimum on 96% of designs; the outlier
// (syn-0374-DSP-intensive, 55% above optimal) gets stuck in a local
// minimum the pairwise merge/promote move set cannot escape — widening
// the restart breadth (MaxFirstMoves) does not help. The test therefore
// asserts (a) soundness, exact.Total <= greedy.Total always; (b) the
// per-design gap stays under 60%, just above that documented worst
// case; and (c) the greedy search matches the optimum on at least 80%
// of the corpus, so a regression in the move set or cost model shows up
// as a falling match rate long before tier-1 tests notice.
func TestDifferentialGreedyVsExact(t *testing.T) {
	const (
		seed       = 1
		corpus     = 400
		maxModules = 4
		maxModes   = 3
		minTested  = 20
	)
	designs := smallDesigns(seed, corpus, maxModules, maxModes)
	if len(designs) < minTested {
		t.Fatalf("corpus filter too strict: %d small designs (need >= %d)", len(designs), minTested)
	}

	tested, matches, tooLarge, infeasible := 0, 0, 0, 0
	var worstGap float64
	worstName := ""
	for _, d := range designs {
		budget := partition.Modular(d).TotalResources()
		ex, err := exact.Solve(d, exact.Options{Budget: budget})
		switch {
		case errors.Is(err, exact.ErrTooLarge):
			tooLarge++
			continue
		case errors.Is(err, exact.ErrNoScheme):
			// The modular budget always admits at least the one-part-per-
			// region grouping of the first set, so this cannot happen.
			t.Errorf("%s: exact found no scheme under the modular budget", d.Name)
			continue
		case err != nil:
			t.Fatalf("%s: exact.Solve: %v", d.Name, err)
		}

		gr, err := partition.Solve(d, partition.Options{
			Budget:           budget,
			MaxCandidateSets: 1, // same universe as the exhaustive solver
		})
		if errors.Is(err, partition.ErrNoScheme) || errors.Is(err, partition.ErrInfeasible) {
			infeasible++
			t.Errorf("%s: greedy found no scheme but exact did (total %d)",
				d.Name, ex.Summary.Total)
			continue
		}
		if err != nil {
			t.Fatalf("%s: partition.Solve: %v", d.Name, err)
		}

		tested++
		if gr.Summary.Total < ex.Summary.Total {
			t.Errorf("%s: greedy total %d beats the exhaustive optimum %d — exact enumeration is broken",
				d.Name, gr.Summary.Total, ex.Summary.Total)
			continue
		}
		if gr.Summary.Total == ex.Summary.Total {
			matches++
			continue
		}
		gap := float64(gr.Summary.Total-ex.Summary.Total) / float64(ex.Summary.Total)
		if gap > worstGap {
			worstGap, worstName = gap, d.Name
		}
		if gap > 0.60 {
			t.Errorf("%s: greedy total %d vs optimum %d: gap %.1f%% exceeds the documented 60%% bound",
				d.Name, gr.Summary.Total, ex.Summary.Total, 100*gap)
		}
	}

	t.Logf("differential: %d tested (%d too large for enumeration, %d greedy-infeasible), %d exact matches (%.0f%%), worst gap %.1f%% (%s)",
		tested, tooLarge, infeasible, matches,
		100*float64(matches)/float64(tested), 100*worstGap, worstName)
	if tested < minTested {
		t.Fatalf("only %d designs tested (need >= %d); loosen the corpus filter", tested, minTested)
	}
	if matches*5 < tested*4 {
		t.Errorf("greedy matched the optimum on only %d/%d designs (< 80%%)", matches, tested)
	}
}

// TestDifferentialWorkedExample pins the worked example of the paper's
// §IV: the full greedy pipeline must land exactly on the exhaustive
// optimum for the design the algorithm was constructed around.
func TestDifferentialWorkedExample(t *testing.T) {
	d := design.PaperExample()
	budget := partition.Modular(d).TotalResources()
	ex, err := exact.Solve(d, exact.Options{Budget: budget})
	if err != nil {
		t.Fatalf("exact.Solve: %v", err)
	}
	gr, err := partition.Solve(d, partition.Options{Budget: budget})
	if err != nil {
		t.Fatalf("partition.Solve: %v", err)
	}
	if gr.Summary.Total != ex.Summary.Total {
		t.Errorf("worked example: greedy total %d, exhaustive optimum %d",
			gr.Summary.Total, ex.Summary.Total)
	}
}
