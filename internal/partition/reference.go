package partition

import (
	"context"
	"sort"

	"prpart/internal/design"
)

// This file retains the pre-incremental search engine, verbatim, as the
// oracle for differential testing (the same role baselines.go plays for
// the cost model): referenceRun recomputes every move delta from first
// principles via moveDelta, recomputes totalArea per iteration, applies
// moves by cloning, and snapshots every feasible state. It shares state
// construction (initial, moduleGrouped, newGroup), move enumeration and
// snapshot semantics with the optimised engine but touches none of the
// delta cache, quantisation memo or running aggregates, so any
// incremental-bookkeeping bug shows up as a divergence in
// TestDifferentialIncrementalVsReference. It also skips the search
// counters — oracle runs must not perturb the optimised path's
// deterministic observability contract.

// referenceRun is the oracle counterpart of (*searcher).run.
func (s *searcher) referenceRun() (*snapshot, int) {
	base := s.initial()
	states := 0
	var best *snapshot
	record := func(st *state) {
		states++
		if !s.feasible(st.totalArea()) {
			return
		}
		sn := s.referenceSnap(st)
		if best == nil || sn.better(best) {
			best = sn
		}
	}
	record(base)

	if !s.opts.GreedyOnly {
		if seed := s.moduleGrouped(); seed != nil {
			record(seed)
			s.referenceDescend(seed, record)
		}
	}

	s.referenceDescend(base, record)

	if !s.opts.GreedyOnly {
		firsts := s.appendLegalMoves(nil, base, !s.opts.NoStatic, false)
		type scored struct {
			mv move
			d  int64
		}
		sc := make([]scored, len(firsts))
		for i, mv := range firsts {
			d, _ := s.moveDelta(base, mv)
			sc[i] = scored{mv, d}
		}
		sort.SliceStable(sc, func(i, j int) bool { return sc[i].d < sc[j].d })
		if maxFirst := s.opts.maxFirst(); len(sc) > maxFirst {
			sc = sc[:maxFirst]
		}
		for _, c := range sc {
			st := s.referenceApply(base, c.mv)
			record(st)
			s.referenceDescend(st, record)
		}
	}
	return best, states
}

// referenceSnap freezes a state with recomputed aggregates, ignoring the
// running cost/area fields the optimised path maintains.
func (s *searcher) referenceSnap(st *state) *snapshot {
	return &snapshot{s: s, st: st.clone(), cost: st.totalCost(), area: st.totalArea()}
}

func (s *searcher) referenceDescend(st *state, record func(*state)) {
	statics := []bool{false}
	if !s.opts.NoStatic {
		statics = append(statics, true)
	}
	for _, withStatic := range statics {
		s.referenceGreedy(st, withStatic, false, record)
		s.referenceGreedy(st, withStatic, true, record)
	}
}

// referenceApply returns a new state with the move applied, rebuilding
// the affected groups and leaving the running aggregates stale (the
// oracle never reads them).
func (s *searcher) referenceApply(st *state, mv move) *state {
	out := st.clone()
	if mv.part >= 0 && mv.j >= 0 {
		gi, gj := out.groups[mv.i], out.groups[mv.j]
		pi := gi.parts[mv.part]
		rest := make([]int, 0, len(gi.parts)-1)
		for k, p := range gi.parts {
			if k != mv.part {
				rest = append(rest, p)
			}
		}
		out.path = append(out.path, pathStep{a: []int{pi}, b: gj.parts})
		merged := s.newGroup(append(append([]int(nil), gj.parts...), pi)...)
		hi, lo := mv.i, mv.j
		if hi < lo {
			hi, lo = lo, hi
		}
		out.groups = append(out.groups[:hi], out.groups[hi+1:]...)
		out.groups = append(out.groups[:lo], out.groups[lo+1:]...)
		if len(rest) > 0 {
			out.groups = append(out.groups, s.newGroup(rest...))
		}
		out.groups = append(out.groups, merged)
		return out
	}
	if mv.j < 0 {
		g := out.groups[mv.i]
		out.path = append(out.path, pathStep{static: true, a: g.parts})
		out.static = append(out.static, g.parts...)
		for _, pi := range g.parts {
			out.staticRes = out.staticRes.Add(s.partRes[pi])
		}
		out.groups = append(out.groups[:mv.i], out.groups[mv.i+1:]...)
		return out
	}
	gi, gj := out.groups[mv.i], out.groups[mv.j]
	out.path = append(out.path, pathStep{a: gi.parts, b: gj.parts})
	merged := s.newGroup(append(append([]int(nil), gi.parts...), gj.parts...)...)
	hi, lo := mv.i, mv.j
	if hi < lo {
		hi, lo = lo, hi
	}
	out.groups = append(out.groups[:hi], out.groups[hi+1:]...)
	out.groups = append(out.groups[:lo], out.groups[lo+1:]...)
	out.groups = append(out.groups, merged)
	return out
}

// referenceGreedy is the oracle counterpart of (*searcher).greedy: it
// re-enumerates moves into a fresh slice and scores each candidate with
// moveDelta every iteration.
func (s *searcher) referenceGreedy(st *state, allowStatic, allowTransfers bool, record func(*state)) {
	cur := st.clone()
	for {
		moves := s.appendLegalMoves(nil, cur, allowStatic, allowTransfers)
		if len(moves) == 0 {
			return
		}
		curArea := cur.totalArea()
		curViol := s.violation(curArea)
		bestIdx := -1
		var bestCost, bestViol, bestSaved int64
		for i, mv := range moves {
			d, area := s.moveDelta(cur, mv)
			if curViol == 0 {
				v := s.violation(area)
				if v > 0 {
					continue
				}
				if d > 0 || (d == 0 && area.Total() >= curArea.Total()) {
					continue
				}
				saved := int64(curArea.Total() - area.Total())
				if bestIdx < 0 || d < bestCost || (d == bestCost && saved > bestSaved) {
					bestIdx, bestCost, bestSaved = i, d, saved
				}
			} else {
				v := s.violation(area)
				saved := curViol - v
				if saved <= 0 {
					continue
				}
				if bestIdx < 0 || d*bestSaved < bestCost*saved ||
					(d*bestSaved == bestCost*saved && v < bestViol) {
					bestIdx, bestCost, bestViol, bestSaved = i, d, v, saved
				}
			}
		}
		if bestIdx < 0 {
			return
		}
		cur = s.referenceApply(cur, moves[bestIdx])
		record(cur)
	}
}

// ReferenceSolve runs the retained pre-incremental engine end to end —
// the differential oracle SolveContext's optimised path is proven
// against. Exported so suites outside this package (the multilevel
// differential tests) can compare against the same oracle.
func ReferenceSolve(ctx context.Context, d *design.Design, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return solveSearch(ctx, d, opts, true)
}
