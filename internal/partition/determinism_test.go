package partition_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"prpart/internal/design"
	"prpart/internal/obs"
	"prpart/internal/partition"
	"prpart/internal/synthetic"
)

// fingerprint serialises everything observable about a result so two
// runs can be compared byte-for-byte: region membership and order,
// static promotion, the activation matrix, and the cost summary.
func fingerprint(d *design.Design, res *partition.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "total=%d worst=%d\n", res.Summary.Total, res.Summary.Worst)
	for ri, reg := range res.Scheme.Regions {
		fmt.Fprintf(&b, "region %d (%d frames):", ri, reg.Frames())
		for _, p := range reg.Parts {
			fmt.Fprintf(&b, " %s", p.Label(d))
		}
		b.WriteByte('\n')
	}
	fmt.Fprint(&b, "static:")
	for _, p := range res.Scheme.Static {
		fmt.Fprintf(&b, " %s", p.Label(d))
	}
	b.WriteByte('\n')
	for _, row := range res.Scheme.Active {
		fmt.Fprintf(&b, "%v\n", row)
	}
	return b.String()
}

// TestDeterminismWorkers runs the search five times serial (Workers=1)
// and five times fully parallel (Workers=-1) on several designs and
// requires every run to produce a byte-identical scheme: the documented
// contract that parallelism never changes the result.
func TestDeterminismWorkers(t *testing.T) {
	designs := []*design.Design{design.PaperExample(), design.VideoReceiver()}
	for _, d := range synthetic.Generate(3, 6) {
		designs = append(designs, d)
	}
	for _, d := range designs {
		budget := partition.Modular(d).TotalResources()
		want := ""
		for run := 0; run < 5; run++ {
			for _, workers := range []int{1, -1} {
				res, err := partition.Solve(d, partition.Options{Budget: budget, Workers: workers})
				if err != nil {
					t.Fatalf("%s: run %d workers %d: %v", d.Name, run, workers, err)
				}
				got := fingerprint(d, res)
				if want == "" {
					want = got
					continue
				}
				if got != want {
					t.Fatalf("%s: run %d workers %d diverged:\n--- first run\n%s--- this run\n%s",
						d.Name, run, workers, want, got)
				}
			}
		}
	}
}

// TestDeterminismObsIdentical re-runs an instrumented parallel solve and
// requires the search counters (not the timers, which measure wall
// clock) to be identical across runs and to serial runs: attaching the
// registry must be purely observational and the amount of work done must
// not depend on scheduling.
func TestDeterminismObsIdentical(t *testing.T) {
	d := design.VideoReceiver()
	budget := partition.Modular(d).TotalResources()
	counters := func(workers int) map[string]int64 {
		o := obs.New()
		if _, err := partition.Solve(d, partition.Options{Budget: budget, Workers: workers, Obs: o}); err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		return o.Snapshot().Counters
	}
	want := counters(1)
	if want["partition.moves_evaluated"] == 0 || want["partition.states"] == 0 {
		t.Fatalf("instrumentation recorded no work: %v", want)
	}
	for run := 0; run < 5; run++ {
		got := counters(-1)
		for k, w := range want {
			if got[k] != w {
				t.Errorf("run %d: counter %s = %d parallel vs %d serial", run, k, got[k], w)
			}
		}
	}
}

// TestDeterminismObsCountersMonotonic polls the registry while a
// parallel solve hammers it and checks every counter only ever grows.
// Under -race (tier 2) this also proves the instruments are safe to
// read concurrently with the search.
func TestDeterminismObsCountersMonotonic(t *testing.T) {
	o := obs.New()
	moves := o.Counter("partition.moves_evaluated")
	states := o.Counter("partition.states")

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var lastMoves, lastStates int64
		for {
			m, s := moves.Value(), states.Value()
			if m < lastMoves || s < lastStates {
				t.Errorf("counters went backwards: moves %d -> %d, states %d -> %d",
					lastMoves, m, lastStates, s)
				return
			}
			lastMoves, lastStates = m, s
			select {
			case <-done:
				return
			default:
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()

	for _, d := range synthetic.Generate(5, 6) {
		budget := partition.Modular(d).TotalResources()
		if _, err := partition.Solve(d, partition.Options{Budget: budget, Workers: -1, Obs: o}); err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
	}
	close(done)
	wg.Wait()
	if moves.Value() == 0 {
		t.Fatal("no moves recorded")
	}
}
