package partition

import (
	"runtime"
	"sync"

	"prpart/internal/resource"
)

// This file parallelises the greedy descent's per-iteration move scan
// for the warm-start refine path (RefineContext), where a single level
// of a multilevel solve can carry a thousand candidate parts and the
// transfer scan — O(parts × groups) evaluations per applied move —
// dominates the whole solve (≈99% of wall time on the 10³-mode huge
// tier). The scan is embarrassingly parallel: candidate moves are
// independent reads of the immutable current state; only the winning
// move's application mutates anything, and that stays serial.
//
// The design constraint is the repo's serial-vs-parallel identity
// contract: Workers must change wall-clock time and nothing else — not
// the scheme, not the trace, not one obs counter. Three decisions make
// that hold by construction rather than by tolerance:
//
//   - Fixed sharding, independent of Workers. The candidate space is
//     always split into refineShards fixed shards (merge/static moves
//     by source-group id, transfers by source part index); workers are
//     merely who executes a shard. Every per-shard cache and counter
//     trajectory is therefore a pure function of the input.
//   - Per-shard scratches. The PR 4 delta cache and quantise memo are
//     allocation-free but single-threaded; each shard owns a private
//     scratch, and shard ownership is stable across iterations (group
//     ids survive unrelated moves, part indices never change), so a
//     shard re-hits its own cache exactly as the shared serial cache
//     would. Cached entries are exact pure functions of their operands,
//     so splitting the cache can change hit/miss timing, never a value.
//   - Deterministic fixed-order reduction. Every candidate carries an
//     ordinal encoding its position in the serial enumeration order of
//     appendLegalMoves; in-shard incumbent updates and the cross-shard
//     reduction break exact score ties by that ordinal, which replays
//     the serial scan's first-wins tie-breaking no matter which shard
//     or worker saw the move.

const (
	// refineShards is the fixed shard count of the scan decomposition.
	// It is deliberately NOT the worker count: decomposition must be a
	// pure function of the state for determinism, and 16 shards keep
	// granularity fine enough that up to 16 workers stay busy.
	refineShards = 16

	// Sharding thresholds, on state shape only (never Workers): below
	// them the classic single-pass scan wins on constant factors. A
	// merge-dominated iteration shards when the group count alone makes
	// the O(G²) pair scan worth splitting; a transfer iteration shards
	// on live part count, since transfers contribute O(parts × groups)
	// candidates.
	refineParMinGroups = 64
	refineParMinParts  = 128
)

// EffectiveRefineWorkers resolves an Options.Workers value to the
// worker count the refine scan will actually use: 0 and 1 run the
// sharded scan inline, negative takes GOMAXPROCS, and the count is
// capped at both the shard count and GOMAXPROCS (the shards are pure
// CPU; extra workers beyond either bound only add scheduling overhead,
// and since the decomposition is worker-independent the cap cannot
// change any result).
func EffectiveRefineWorkers(workers int) int {
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	if workers > refineShards {
		workers = refineShards
	}
	return workers
}

// parWorthwhile reports whether cur's scan is large enough to shard.
// Pure function of the state and move vocabulary.
func parWorthwhile(cur *state, allowTransfers bool) bool {
	if len(cur.groups) >= refineParMinGroups {
		return true
	}
	if !allowTransfers || len(cur.groups) < 2 {
		return false
	}
	parts := 0
	for _, g := range cur.groups {
		parts += len(g.parts)
	}
	return parts >= refineParMinParts
}

// Ordinal move classes, matching appendLegalMoves' per-source order:
// merges first, then the static promotion, then transfers.
const (
	ordMerge uint64 = iota
	ordStatic
	ordTransfer
)

// moveOrd packs a candidate's position in the serial enumeration into
// one comparable word: source index i (high), class, part slot k,
// destination j (low). Lower ordinal ⇔ enumerated earlier by
// appendLegalMoves. The field widths cover any reachable state — j and
// i are group indices (a refine level has thousands of groups at
// most), and k is a part slot within one group, which transfers only
// enumerate while the whole level has ≤ refineTransferCap parts.
func moveOrd(i int, class uint64, k, j int) uint64 {
	if i >= 1<<29 || j >= 1<<20 || k >= 1<<12 {
		panic("partition: refine scan ordinal overflow")
	}
	return uint64(i)<<34 | class<<32 | uint64(k)<<20 | uint64(j)
}

// shardCand is a shard's incumbent best move plus its selection scores
// and per-shard counter deltas.
type shardCand struct {
	ok    bool
	mv    move
	ord   uint64
	d     int64 // cost delta
	v     int64 // resulting violation (infeasible phase)
	saved int64 // area saved (feasible) / violation removed (infeasible)

	moves   int64 // legal candidates enumerated
	rejects int64 // candidates rejected by the greedy policy
}

// betterCand reports whether candidate a beats incumbent b under the
// greedy selection rule of the serial scan, with the enumeration
// ordinal as the final tie-break (the serial scan keeps the first of
// equals; ordinal order is enumeration order).
func betterCand(a, b *shardCand, feasible bool) bool {
	if feasible {
		if a.d != b.d {
			return a.d < b.d
		}
		if a.saved != b.saved {
			return a.saved > b.saved
		}
		return a.ord < b.ord
	}
	// Lower cost per violation removed wins; cross-multiply to stay in
	// integers (saved > 0 on both sides).
	al, bl := a.d*b.saved, b.d*a.saved
	if al != bl {
		return al < bl
	}
	if a.v != b.v {
		return a.v < b.v
	}
	return a.ord < b.ord
}

// Dense extend-cache row states. extUnknown must be zero so freshly
// grown rows start unknown.
const (
	extUnknown uint8 = iota
	extIncompatible
	extCached
)

// extRow is the dense destination cache of one candidate part: for each
// destination group id (the row index), whether the part may join that
// group and, if so, the cached extension entry. Group ids are
// per-candidate-set sequence numbers drawn from one counter and groups
// are immutable, so a filled slot can never go stale — unlike a slot
// indexed by group position, which applyMove's slice surgery would
// shift every iteration. Rows turn the transfer scan's hottest lookup
// from a random probe into the big shared hash table (a DRAM-latency
// round trip per candidate) into a read of a compact per-part array
// that the hardware prefetcher streams, because surviving groups keep
// both their ids and their relative order.
type extRow struct {
	flags []uint8     // per destination group id: extUnknown/extIncompatible/extCached
	vals  []pairEntry // per destination group id, valid when flags is extCached
}

// grow extends the row with unknown slots so id is addressable. hint
// is the caller's expected id high-water (the level's current id
// counter plus slack): sizing new rows to it up front means a row is
// normally allocated once and regrown only after hundreds of further
// applied moves, instead of paying the doubling ladder from zero.
func (r *extRow) grow(id, hint int) {
	if id < len(r.flags) {
		return
	}
	n := id + 1
	if n < hint {
		n = hint
	}
	if n < 2*len(r.flags) {
		n = 2 * len(r.flags)
	}
	flags := make([]uint8, n)
	copy(flags, r.flags)
	vals := make([]pairEntry, n)
	copy(vals, r.vals)
	r.flags, r.vals = flags, vals
}

// parScan executes sharded scans over a persistent worker pool. One
// parScan belongs to one RefineContext call; scratches are created
// lazily on the first sharded iteration, the pool on the first
// iteration with more than one worker.
type parScan struct {
	s       *searcher
	workers int

	scratches [refineShards]*scratch
	cands     [refineShards]shardCand

	// ext holds one dense destination row per candidate part. A row is
	// owned by the shard that owns its part (part index mod
	// refineShards), so rows are never shared between workers. rowHint
	// is the sizing hint rows grow to — the id counter's value at the
	// start of the iteration plus slack, read serially in scan (the
	// counter only moves in applyMove, never during a scan).
	ext     []extRow
	rowHint int

	// Per-iteration inputs, written before shards are dispatched and
	// read-only while they run.
	cur            *state
	allowStatic    bool
	allowTransfers bool
	curArea        resource.Vector
	curViol        int64

	jobs chan int
	wg   sync.WaitGroup
}

func newParScan(s *searcher, workers int) *parScan {
	return &parScan{s: s, workers: EffectiveRefineWorkers(workers)}
}

// close releases the worker pool (the goroutines exit when the job
// channel closes). Safe when the pool was never started.
func (p *parScan) close() {
	if p.jobs != nil {
		close(p.jobs)
		p.jobs = nil
	}
}

// scan runs one sharded scan iteration and reduces the shard
// incumbents in fixed shard order. The returned scratch is the one
// whose cache evaluated the winner, so applyMove hits.
func (p *parScan) scan(cur *state, allowStatic, allowTransfers bool) (move, *scratch, bool) {
	if p.scratches[0] == nil {
		for i := range p.scratches {
			p.scratches[i] = newScratch()
		}
	}
	if p.ext == nil {
		p.ext = make([]extRow, len(p.s.partRes))
	}
	p.rowHint = int(p.s.sc.nextID) + int(p.s.sc.nextID)/4
	p.cur = cur
	p.allowStatic, p.allowTransfers = allowStatic, allowTransfers
	p.curArea = cur.area
	p.curViol = p.s.violation(cur.area)

	if p.workers <= 1 {
		for si := 0; si < refineShards; si++ {
			p.runShard(si)
		}
	} else {
		if p.jobs == nil {
			p.jobs = make(chan int, refineShards)
			for w := 0; w < p.workers; w++ {
				go func() {
					for si := range p.jobs {
						p.runShard(si)
						p.wg.Done()
					}
				}()
			}
		}
		p.wg.Add(refineShards)
		for si := 0; si < refineShards; si++ {
			p.jobs <- si
		}
		p.wg.Wait()
	}

	var nMoves, nRejects int64
	win := -1
	feasible := p.curViol == 0
	for si := 0; si < refineShards; si++ {
		c := &p.cands[si]
		nMoves += c.moves
		nRejects += c.rejects
		if !c.ok {
			continue
		}
		if win < 0 || betterCand(c, &p.cands[win], feasible) {
			win = si
		}
	}
	p.s.cMoves.Add(nMoves)
	p.s.cRejects.Add(nRejects)
	if win < 0 {
		return move{}, nil, false
	}
	wc := &p.cands[win]
	return wc.mv, p.applyScratch(cur, wc.mv), true
}

// applyScratch returns the shard scratch that evaluated mv — the one
// owning mv's shard under the same assignment runShard uses.
func (p *parScan) applyScratch(cur *state, mv move) *scratch {
	if mv.part >= 0 && mv.j >= 0 {
		return p.scratches[cur.groups[mv.i].parts[mv.part]%refineShards]
	}
	return p.scratches[int(cur.groups[mv.i].id)%refineShards]
}

// runShard enumerates and evaluates shard si's slice of the candidate
// space, keeping its best candidate in p.cands[si]. Ownership:
// merge and static moves belong to the shard of their source group's
// id (stable under unrelated moves — surviving groups keep their ids,
// and the lower-indexed member of a surviving pair stays lower, since
// applyMove's slice surgery preserves relative order); transfers
// belong to the shard of the moved part's index (stable by
// definition). Both assignments put every repeated evaluation of the
// same cache key in the same shard, so per-shard caches re-hit across
// iterations exactly like the shared serial cache.
func (p *parScan) runShard(si int) {
	s := p.s
	sc := p.scratches[si]
	cur := p.cur
	curArea, curViol := p.curArea, p.curViol
	feasible := curViol == 0
	best := &p.cands[si]
	*best = shardCand{}

	// accept applies the greedy selection policy to an evaluated legal
	// move and updates the shard incumbent — the post-evaluation half of
	// the serial scan's per-candidate step.
	accept := func(mv move, ord uint64, d int64, area resource.Vector, v int64) {
		var cand shardCand
		if feasible {
			if d > 0 || (d == 0 && area.Total() >= curArea.Total()) {
				best.rejects++
				return
			}
			cand = shardCand{ok: true, mv: mv, ord: ord, d: d,
				saved: int64(curArea.Total() - area.Total())}
		} else {
			cand = shardCand{ok: true, mv: mv, ord: ord, d: d, v: v,
				saved: curViol - v}
		}
		if !best.ok || betterCand(&cand, best, feasible) {
			cand.moves, cand.rejects = best.moves, best.rejects
			*best = cand
		}
	}

	consider := func(mv move, ord uint64) {
		best.moves++
		d, area, v, ok := s.evalMove(sc, cur, mv, curArea, curViol)
		if !ok {
			best.rejects++
			return
		}
		accept(mv, ord, d, area, v)
	}

	groups := cur.groups
	for i := 0; i < len(groups); i++ {
		if int(groups[i].id)%refineShards != si {
			continue
		}
		for j := i + 1; j < len(groups); j++ {
			if s.groupsCompatible(groups[i], groups[j]) {
				consider(move{i: i, j: j, part: -1}, moveOrd(i, ordMerge, 0, j))
			}
		}
		if p.allowStatic {
			consider(move{i: i, j: -1, part: -1}, moveOrd(i, ordStatic, 0, 0))
		}
	}
	if !p.allowTransfers {
		return
	}
	for i := 0; i < len(groups); i++ {
		// Moving the sole part of a group equals a merge, so only
		// groups with two or more parts are sources (appendLegalMoves'
		// rule).
		gi := groups[i]
		parts := gi.parts
		if len(parts) < 2 {
			continue
		}
		for k, pi := range parts {
			if pi%refineShards != si {
				continue
			}
			row := &p.ext[pi]
			// The source side of every (i, k, ·) transfer is the same
			// shrunken group, so it is looked up at most once per source
			// part — on the first destination that passes the area
			// bound — instead of once per candidate.
			var src pairEntry
			haveSrc := false
			for j := 0; j < len(groups); j++ {
				if j == i {
					continue
				}
				gj := groups[j]
				id := int(gj.id)
				if id >= len(row.flags) {
					row.grow(id, p.rowHint)
				}
				switch row.flags[id] {
				case extIncompatible:
					continue
				case extUnknown:
					if !s.partCompatible(pi, gj) {
						row.flags[id] = extIncompatible
						continue
					}
					row.vals[id] = s.extendEntry(sc, gj, pi)
					row.flags[id] = extCached
				default:
					// The shard's hash cache necessarily holds this
					// entry (the dense row was filled from it), so the
					// dense read stands in for a hash hit.
					s.cDeltaHit.Inc()
				}
				dst := row.vals[id]
				// The evaluation below replays evalMove's transfer
				// branch with the cached destination and hoisted source.
				best.moves++
				lower := curArea.Sub(gi.area).Sub(gj.area).Add(dst.area)
				if _, rej := s.areaViolation(lower, curViol); rej {
					best.rejects++
					continue
				}
				if !haveSrc {
					src = s.shrinkEntry(sc, gi, k)
					haveSrc = true
				}
				newArea := lower.Add(src.area)
				v, rej := s.areaViolation(newArea, curViol)
				if rej {
					best.rejects++
					continue
				}
				d := dst.contrib + src.contrib - gi.contrib - gj.contrib
				accept(move{i: i, j: j, part: k}, moveOrd(i, ordTransfer, k, j), d, newArea, v)
			}
		}
	}
}
