package partition

import (
	"prpart/internal/device"
	"prpart/internal/resource"
)

// This file is the incremental move-evaluation engine behind the greedy
// descent. The classic observation (Fiduccia & Mattheyses, DAC 1982) is
// that a partitioning move only changes the score of the elements it
// touches, so re-deriving every candidate's gain from scratch each
// iteration wastes almost all of the work. Here that takes three forms:
//
//   - a delta cache: the cost and quantised area of a merged (or
//     extended, or shrunken) group depend only on the operand groups'
//     contents, so they are cached under the operands' identities and
//     survive across descent iterations — after an applied move, only
//     pairs involving the two touched groups miss.
//   - a quantisation memo: device.Tiles / device.TilesToPrimitives /
//     the frame count of a raw resource vector are pure functions, and
//     the same part subsets are re-quantised thousands of times per run.
//   - running aggregates: each state carries its total cost and area,
//     updated by applied moves, so per-candidate evaluation no longer
//     walks every group.
//
// Determinism contract: every quantity produced here is exactly the
// integer the non-incremental reference path (moveDelta, totalCost,
// totalArea in reference.go / state.go) computes — not approximately,
// bit for bit — so the optimised descent visits the same states in the
// same order and returns byte-identical schemes and traces. The
// differential and property suites in delta_test.go and
// incremental_differential_test.go enforce this.

// scratch is the reusable working set of one search worker: move and
// activation buffers, the delta cache and the quantisation memo. A
// scratch is reused across the candidate sets a worker processes
// (avoiding re-growth of the maps and slices) but reset per set, so
// cache hit/miss counters are a deterministic function of the input
// regardless of how sets are distributed over workers.
// scoredMove is a first move paired with its cost delta, for the
// restart-ordering sort in run.
type scoredMove struct {
	mv move
	d  int64
}

type scratch struct {
	moves  []move
	scored []scoredMove
	act    []int32
	pairs  pairTable
	quant  map[resource.Vector]quantEntry
	nextID uint64
}

func newScratch() *scratch {
	sc := &scratch{
		quant: make(map[resource.Vector]quantEntry),
	}
	sc.pairs.init()
	return sc
}

// reset prepares the scratch for a new candidate set. Map and table
// storage is retained (only marked empty), group ids restart at zero.
func (sc *scratch) reset() {
	sc.pairs.reset()
	clear(sc.quant)
	sc.nextID = 0
}

// Delta-cache key kinds, stored in the top bits of pairKey.a. Group ids
// are per-candidate-set sequence numbers (nowhere near 2^60), so the
// tag can never collide with an id.
const (
	kindMerge  uint64 = 1 << 60 // a: lower group id, b: higher group id
	kindExtend uint64 = 2 << 60 // a: group id, b: part index added
	kindShrink uint64 = 3 << 60 // a: group id, b: part index removed
)

// pairKey packs one cached group combination into a single word:
// kind tag in the top bits, the two 30-bit operand ids below. Groups
// are immutable once built and ids are never reused within a candidate
// set, so an entry can never go stale: applying a move retires the two
// touched groups' ids, which simply makes their entries unreachable.
// The packing is injective (the guard keeps both operands under 30
// bits — a candidate set would need a billion groups to overflow), and
// every packed key is nonzero because the kind bits are always set,
// which is what lets pairTable use zero as its empty-slot sentinel.
func pairKey(kind, a, b uint64) uint64 {
	if a >= 1<<30 || b >= 1<<30 {
		panic("partition: delta-cache id overflow")
	}
	return kind | a<<30 | b
}

// pairEntry caches the outcome of combining (or splitting) groups: the
// would-be group's cost contribution and tile-quantised area.
type pairEntry struct {
	contrib int64
	area    resource.Vector
}

// pairTable is an open-addressed hash table from packed pair keys to
// pairEntry. It sits on the hottest probe path of the search — one
// lookup per candidate move per descent iteration — where a
// specialised flat table beats a Go map: single-word keys, Fibonacci
// hashing, linear probing over a contiguous slot array, and a reset
// that just clears the key words while keeping capacity.
type pairTable struct {
	keys    []uint64 // 0 = empty slot
	entries []pairEntry
	n       int
}

func (t *pairTable) init() {
	const initialSlots = 1 << 12
	t.keys = make([]uint64, initialSlots)
	t.entries = make([]pairEntry, initialSlots)
}

func (t *pairTable) reset() {
	clear(t.keys)
	t.n = 0
}

// slot maps a key to its preferred slot index (len(keys) is a power of
// two; the multiplier is the golden-ratio constant, spreading packed
// keys whose entropy sits in the low bits).
func (t *pairTable) slot(key uint64) int {
	return int((key * 0x9e3779b97f4a7c15 >> 32) & uint64(len(t.keys)-1))
}

func (t *pairTable) get(key uint64) (pairEntry, bool) {
	for i := t.slot(key); ; i = (i + 1) & (len(t.keys) - 1) {
		switch t.keys[i] {
		case key:
			return t.entries[i], true
		case 0:
			return pairEntry{}, false
		}
	}
}

func (t *pairTable) put(key uint64, e pairEntry) {
	if 3*t.n >= 2*len(t.keys) { // grow at 2/3 load
		t.grow()
	}
	for i := t.slot(key); ; i = (i + 1) & (len(t.keys) - 1) {
		if t.keys[i] == 0 {
			t.keys[i], t.entries[i] = key, e
			t.n++
			return
		}
	}
}

func (t *pairTable) grow() {
	oldKeys, oldEntries := t.keys, t.entries
	t.keys = make([]uint64, 2*len(oldKeys))
	t.entries = make([]pairEntry, 2*len(oldEntries))
	for i, k := range oldKeys {
		if k == 0 {
			continue
		}
		for j := t.slot(k); ; j = (j + 1) & (len(t.keys) - 1) {
			if t.keys[j] == 0 {
				t.keys[j], t.entries[j] = k, oldEntries[i]
				break
			}
		}
	}
}

// quantEntry caches the tile quantisation of one raw resource vector.
type quantEntry struct {
	area   resource.Vector
	frames int64
}

// quantize returns the tile-quantised capacity and search-frame cost of
// a raw resource requirement, memoised per candidate set. Both are pure
// functions of res (given the searcher's NoQuantize option), so the
// memo can never change a result — only skip recomputing it. The memo
// lives in the caller-supplied scratch: the serial descent passes the
// searcher's own s.sc, the parallel refine scan passes its shard's
// scratch (see refine_parallel.go), so no scratch is ever shared
// between goroutines.
func (s *searcher) quantize(sc *scratch, res resource.Vector) (area resource.Vector, frames int64) {
	if e, ok := sc.quant[res]; ok {
		s.cQuantHit.Inc()
		return e.area, e.frames
	}
	s.cQuantMiss.Inc()
	area = device.TilesToPrimitives(device.Tiles(res))
	frames = s.searchFrames(res)
	sc.quant[res] = quantEntry{area: area, frames: frames}
	return area, frames
}

// mergeEntry returns the contribution and area of the group that would
// result from merging gi and gj, cached under the unordered id pair.
func (s *searcher) mergeEntry(sc *scratch, gi, gj *group) pairEntry {
	a, b := gi.id, gj.id
	if a > b {
		a, b = b, a
	}
	key := pairKey(kindMerge, a, b)
	if e, ok := sc.pairs.get(key); ok {
		s.cDeltaHit.Inc()
		return e
	}
	s.cDeltaMiss.Inc()
	res := gi.res.Max(gj.res)
	area, frames := s.quantize(sc, res)
	var contrib int64
	if s.weights != nil {
		// Compatibility guarantees at most one side is active per
		// configuration, so the merged activation is a plain overlay.
		act := sc.act[:0]
		for ci := range gi.act {
			if gi.act[ci] != 0 {
				act = append(act, gi.act[ci])
			} else {
				act = append(act, gj.act[ci])
			}
		}
		sc.act = act
		contrib = frames * s.weightedDiff(act)
	} else {
		sum := int64(gi.active + gj.active)
		sq := gi.sumSq + gj.sumSq
		contrib = frames * (sum*sum - sq) / 2
	}
	e := pairEntry{contrib: contrib, area: area}
	sc.pairs.put(key, e)
	return e
}

// extendEntry returns the contribution and area of group gj extended by
// candidate part pi — the destination side of a transfer move.
func (s *searcher) extendEntry(sc *scratch, gj *group, pi int) pairEntry {
	key := pairKey(kindExtend, gj.id, uint64(pi))
	if e, ok := sc.pairs.get(key); ok {
		s.cDeltaHit.Inc()
		return e
	}
	s.cDeltaMiss.Inc()
	res := gj.res.Max(s.partRes[pi])
	area, frames := s.quantize(sc, res)
	var contrib int64
	if s.weights != nil {
		act := append(sc.act[:0], gj.act...)
		for ci := range s.cs.Active {
			if s.cs.Active[ci][pi] {
				act[ci] = int32(pi) + 1
			}
		}
		sc.act = act
		contrib = frames * s.weightedDiff(act)
	} else {
		n := int64(s.partAct[pi])
		sum := int64(gj.active) + n
		sq := gj.sumSq + n*n
		contrib = frames * (sum*sum - sq) / 2
	}
	e := pairEntry{contrib: contrib, area: area}
	sc.pairs.put(key, e)
	return e
}

// shrinkEntry returns the contribution and area of group gi with the
// part at slot k removed — the source side of a transfer move. Removal
// cannot be computed incrementally (max does not subtract), so a miss
// walks the remaining parts; the cache makes that a one-time cost per
// (group, part) combination.
func (s *searcher) shrinkEntry(sc *scratch, gi *group, k int) pairEntry {
	pi := gi.parts[k]
	key := pairKey(kindShrink, gi.id, uint64(pi))
	if e, ok := sc.pairs.get(key); ok {
		s.cDeltaHit.Inc()
		return e
	}
	s.cDeltaMiss.Inc()
	var res resource.Vector
	var active int
	var sumSq int64
	for idx, p := range gi.parts {
		if idx == k {
			continue
		}
		res = res.Max(s.partRes[p])
		n := int64(s.partAct[p])
		active += s.partAct[p]
		sumSq += n * n
	}
	area, frames := s.quantize(sc, res)
	var contrib int64
	if s.weights != nil {
		act := sc.act[:0]
		for range s.d.Configurations {
			act = append(act, 0)
		}
		for idx, p := range gi.parts {
			if idx == k {
				continue
			}
			for ci := range s.cs.Active {
				if s.cs.Active[ci][p] {
					act[ci] = int32(p) + 1
				}
			}
		}
		sc.act = act
		contrib = frames * s.weightedDiff(act)
	} else {
		sum := int64(active)
		contrib = frames * (sum*sum - sumSq) / 2
	}
	e := pairEntry{contrib: contrib, area: area}
	sc.pairs.put(key, e)
	return e
}

// evalMove is the incremental counterpart of moveDelta: it produces a
// candidate move's exact cost delta, resulting total area and budget
// violation from the delta cache and the state's running aggregates,
// and applies the area-based rejection rule the greedy policy uses
// (while feasible a move must stay feasible; while infeasible it must
// shrink the violation). ok=false reports such a rejection. For
// transfer moves the rejection can often be decided from the
// destination group alone — the source group's area is non-negative and
// violation is monotone in area, so a lower bound that already fails
// proves the exact area fails too, and the source side is never built.
func (s *searcher) evalMove(sc *scratch, st *state, mv move, curArea resource.Vector, curViol int64) (dCost int64, newArea resource.Vector, v int64, ok bool) {
	if mv.part >= 0 && mv.j >= 0 {
		gi, gj := st.groups[mv.i], st.groups[mv.j]
		pi := gi.parts[mv.part]
		dst := s.extendEntry(sc, gj, pi)
		lower := curArea.Sub(gi.area).Sub(gj.area).Add(dst.area)
		if _, rej := s.areaViolation(lower, curViol); rej {
			return 0, resource.Vector{}, 0, false
		}
		src := s.shrinkEntry(sc, gi, mv.part)
		newArea = lower.Add(src.area)
		v, rej := s.areaViolation(newArea, curViol)
		if rej {
			return 0, resource.Vector{}, 0, false
		}
		dCost = dst.contrib + src.contrib - gi.contrib - gj.contrib
		return dCost, newArea, v, true
	}
	if mv.j < 0 {
		g := st.groups[mv.i]
		newArea = curArea.Sub(g.area).Add(g.raw)
		v, rej := s.areaViolation(newArea, curViol)
		if rej {
			return 0, resource.Vector{}, 0, false
		}
		return -g.contrib, newArea, v, true
	}
	gi, gj := st.groups[mv.i], st.groups[mv.j]
	e := s.mergeEntry(sc, gi, gj)
	newArea = curArea.Sub(gi.area).Sub(gj.area).Add(e.area)
	v, rej := s.areaViolation(newArea, curViol)
	if rej {
		return 0, resource.Vector{}, 0, false
	}
	dCost = e.contrib - gi.contrib - gj.contrib
	return dCost, newArea, v, true
}

// areaViolation returns the budget violation of area together with the
// greedy rejection verdict, computing frames only when the magnitude
// matters. In the feasible phase (curViol == 0) rejection is exactly
// "does not fit": a nonzero deficit always quantises to a positive
// frame count (Tiles rounds any positive component up to a whole tile,
// and the NoQuantize per-unit frame rates are all positive), so
// violation > 0 and !feasible coincide, accepted moves have v == 0 by
// construction, and the per-candidate searchFrames call disappears. In
// the infeasible phase the exact violation drives the cost-per-frame-
// saved selection, so it is computed in full.
func (s *searcher) areaViolation(area resource.Vector, curViol int64) (v int64, rejected bool) {
	if curViol == 0 {
		return 0, !s.feasible(area)
	}
	v = s.violation(area)
	return v, curViol-v <= 0
}

// moveCost returns just the cost delta of a merge or static-promotion
// move — the restart-ordering heuristic in run scores every first move
// regardless of feasibility and never needs the area.
func (s *searcher) moveCost(st *state, mv move) int64 {
	if mv.part >= 0 && mv.j >= 0 {
		d, _ := s.moveDelta(st, mv) // transfers are never first moves
		return d
	}
	if mv.j < 0 {
		return -st.groups[mv.i].contrib
	}
	gi, gj := st.groups[mv.i], st.groups[mv.j]
	e := s.mergeEntry(s.sc, gi, gj)
	return e.contrib - gi.contrib - gj.contrib
}
