package partition

import (
	"strings"
	"testing"

	"prpart/internal/cost"
	"prpart/internal/design"
	"prpart/internal/resource"
)

// uniformWeights builds an all-ones weight matrix.
func uniformWeights(n int) [][]float64 {
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
		for j := range w[i] {
			if i != j {
				w[i][j] = 1
			}
		}
	}
	return w
}

func TestWeightedUniformMatchesUnweighted(t *testing.T) {
	// All-ones weights must reproduce the uniform objective's choice.
	d := design.VideoReceiver()
	budget := design.CaseStudyBudget()
	plain, err := Solve(d, Options{Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := Solve(d, Options{
		Budget:            budget,
		TransitionWeights: uniformWeights(len(d.Configurations)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Summary.Total != weighted.Summary.Total {
		t.Errorf("uniform weights changed the result: %d vs %d",
			plain.Summary.Total, weighted.Summary.Total)
	}
}

func TestWeightedValidation(t *testing.T) {
	d := design.PaperExample()
	budget := resource.New(100000, 1000, 1000)
	if _, err := Solve(d, Options{Budget: budget, TransitionWeights: [][]float64{{0}}}); err == nil ||
		!strings.Contains(err.Error(), "rows") {
		t.Errorf("short matrix: %v", err)
	}
	bad := uniformWeights(len(d.Configurations))
	bad[1] = bad[1][:2]
	if _, err := Solve(d, Options{Budget: budget, TransitionWeights: bad}); err == nil ||
		!strings.Contains(err.Error(), "entries") {
		t.Errorf("ragged matrix: %v", err)
	}
	neg := uniformWeights(len(d.Configurations))
	neg[0][1] = -1
	if _, err := Solve(d, Options{Budget: budget, TransitionWeights: neg}); err == nil ||
		!strings.Contains(err.Error(), "negative") {
		t.Errorf("negative weight: %v", err)
	}
}

func TestWeightedSearchFavoursHotTransitions(t *testing.T) {
	// The case study under a distribution where almost all switching
	// happens between configurations 0 and 3 (V1<->"F2 R1 M2 D3 V1").
	// The weighted search must produce a scheme whose weighted expected
	// cost is no worse than the uniform search's scheme under the same
	// distribution.
	d := design.VideoReceiver()
	budget := design.CaseStudyBudget()
	n := len(d.Configurations)
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
		for j := range w[i] {
			if i != j {
				w[i][j] = 0.001
			}
		}
	}
	w[0][3], w[3][0] = 1, 1

	plain, err := Solve(d, Options{Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := Solve(d, Options{Budget: budget, TransitionWeights: w})
	if err != nil {
		t.Fatal(err)
	}
	expected := func(r *Result) float64 {
		m := cost.Transitions(r.Scheme)
		v, err := m.Weighted(w)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	pe, we := expected(plain), expected(weighted)
	if we > pe {
		t.Errorf("weighted search (%.0f expected frames) worse than uniform search (%.0f) under the hot distribution",
			we, pe)
	}
	t.Logf("hot 0<->3 distribution: uniform-objective scheme %.0f, weighted-objective scheme %.0f expected frames", pe, we)
}

func TestWeightedZeroMatrixStillSolves(t *testing.T) {
	// A zero matrix makes every scheme cost zero; the search must still
	// return some feasible scheme (ties broken by area).
	d := design.TwoModuleExample()
	budget := Modular(d).TotalResources()
	n := len(d.Configurations)
	res, err := Solve(d, Options{Budget: budget, TransitionWeights: make2d(n)})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Scheme.Validate(); err != nil {
		t.Fatal(err)
	}
}

func make2d(n int) [][]float64 {
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	return w
}
