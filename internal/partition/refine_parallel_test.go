package partition

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"prpart/internal/basepart"
	"prpart/internal/design"
	"prpart/internal/modeset"
	"prpart/internal/obs"
	"prpart/internal/synthetic"
)

// refineWarmStart builds a refinement problem with one singleton part
// per used mode, every part its own group, nothing static — exactly the
// finest-level warm start the multilevel chain hands to Refine, built
// without the clustering pipeline so it works at any mode count.
func refineWarmStart(d *design.Design) WarmStart {
	used := d.UsedModes()
	ws := WarmStart{
		Parts:  make([]basepart.BasePartition, len(used)),
		Active: make([][]bool, len(d.Configurations)),
		Groups: make([][]int, len(used)),
	}
	index := map[design.ModeRef]int{}
	for i, r := range used {
		ws.Parts[i] = basepart.BasePartition{Set: modeset.New(r), FreqWeight: 1, Resources: d.ModeResources(r)}
		ws.Groups[i] = []int{i}
		index[r] = i
	}
	for ci, c := range d.Configurations {
		row := make([]bool, len(used))
		for mi, k := range c.Modes {
			if k != 0 {
				row[index[design.ModeRef{Module: mi, Mode: k}]] = true
			}
		}
		ws.Active[ci] = row
	}
	return ws
}

// refineFingerprint serialises everything observable about a refine
// outcome so runs at different worker counts can be compared byte for
// byte.
func refineFingerprint(out *RefineOutcome) string {
	var b strings.Builder
	fmt.Fprintf(&b, "states=%d feasible=%v\ngroups=%v\nstatic=%v\n", out.States, out.Feasible, out.Groups, out.Static)
	if out.Result != nil {
		fmt.Fprintf(&b, "total=%d worst=%d\n", out.Result.Summary.Total, out.Result.Summary.Worst)
		for _, step := range out.Result.Trace {
			b.WriteString(step)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// refineDiffCounters reports counters that differ between two obs
// snapshots (gauges and timers are excluded: worker gauges and wall
// clocks legitimately vary with the worker setting, counters must not).
func refineDiffCounters(a, b map[string]int64) string {
	names := map[string]bool{}
	for k := range a {
		names[k] = true
	}
	for k := range b {
		names[k] = true
	}
	keys := make([]string, 0, len(names))
	for k := range names {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []string
	for _, k := range keys {
		if a[k] != b[k] {
			out = append(out, fmt.Sprintf("%s: %d vs %d", k, a[k], b[k]))
		}
	}
	return strings.Join(out, "; ")
}

// TestRefineWorkersDeterminism pins the parallel scan's contract at the
// Refine surface itself: for designs small and large — including one
// big enough to cross the parWorthwhile thresholds, so the sharded path
// actually runs — Workers∈{2,8} must reproduce the Workers=1 outcome
// byte for byte (grouping, scheme summary, trace, state count) with
// identical obs counters, and a second Workers=8 run must reproduce the
// first (seed stability; the -count=5 tier re-proves this across
// processes).
func TestRefineWorkersDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	designs := []*design.Design{design.PaperExample(), design.VideoReceiver(),
		synthetic.HugeOne(rng, synthetic.Logic, "refine-par-150", 150)}
	designs = append(designs, synthetic.Generate(5, 6)...)
	for _, d := range designs {
		ws := refineWarmStart(d)
		run := func(workers int) (string, map[string]int64) {
			ob := obs.New()
			out, err := Refine(d, ws, Options{Budget: Modular(d).TotalResources(), Workers: workers, Obs: ob})
			if err != nil {
				t.Fatalf("%s: refine workers=%d: %v", d.Name, workers, err)
			}
			return refineFingerprint(out), ob.Snapshot().Counters
		}
		base, baseC := run(1)
		for _, w := range []int{2, 8, 8} {
			got, gotC := run(w)
			if got != base {
				t.Fatalf("%s: workers=%d outcome diverges from serial:\n--- serial\n%s--- workers=%d\n%s",
					d.Name, w, base, w, got)
			}
			if diff := refineDiffCounters(baseC, gotC); diff != "" {
				t.Fatalf("%s: workers=%d counters diverge from serial: %s", d.Name, w, diff)
			}
		}
	}
}
