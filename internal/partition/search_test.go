package partition

import (
	"errors"
	"testing"

	"prpart/internal/cost"
	"prpart/internal/design"
	"prpart/internal/resource"
)

func solve(t *testing.T, d *design.Design, budget resource.Vector) *Result {
	t.Helper()
	res, err := Solve(d, Options{Budget: budget})
	if err != nil {
		t.Fatalf("%s: Solve: %v", d.Name, err)
	}
	if err := res.Scheme.Validate(); err != nil {
		t.Fatalf("%s: scheme invalid: %v", d.Name, err)
	}
	if !res.Scheme.FitsIn(budget) {
		t.Fatalf("%s: scheme %v exceeds budget %v", d.Name, res.Scheme.TotalResources(), budget)
	}
	return res
}

func TestSolveRejectsInvalidDesign(t *testing.T) {
	d := design.PaperExample()
	d.Configurations = nil
	if _, err := Solve(d, Options{Budget: resource.New(1e6, 1e3, 1e3)}); err == nil {
		t.Fatal("Solve accepted an invalid design")
	}
}

func TestSolveInfeasibleBudget(t *testing.T) {
	d := design.PaperExample()
	_, err := Solve(d, Options{Budget: resource.New(10, 0, 0)})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolveGenerousBudgetReachesZeroCost(t *testing.T) {
	// With room for every mode in its own region, nothing ever needs to
	// be reconfigured: the minimum total time is 0.
	d := design.PaperExample()
	res := solve(t, d, resource.New(100000, 1000, 1000))
	if res.Summary.Total != 0 {
		t.Errorf("total = %d, want 0 on an unconstrained device", res.Summary.Total)
	}
}

func TestSolveTightBudgetStillBeatsSingleRegion(t *testing.T) {
	d := design.PaperExample()
	single := SingleRegion(d)
	// Budget barely above the single-region minimum: the search must
	// still find something feasible and no worse than single-region.
	budget := single.TotalResources().Add(resource.New(200, 4, 8))
	res, err := Solve(d, Options{Budget: budget})
	if errors.Is(err, ErrNoScheme) {
		t.Skip("no multi-region scheme fits this budget; single-region fallback applies")
	}
	if err != nil {
		t.Fatal(err)
	}
	_, ss := cost.Evaluate(single)
	if res.Summary.Total > ss.Total {
		t.Errorf("proposed %d worse than single-region %d", res.Summary.Total, ss.Total)
	}
}

func TestSolveNeverWorseThanModularWhenModularFits(t *testing.T) {
	for _, d := range []*design.Design{
		design.PaperExample(), design.VideoReceiver(),
		design.VideoReceiverModified(), design.TwoModuleExample(),
		design.SingleModeExample(),
	} {
		modular := Modular(d)
		budget := modular.TotalResources() // modular exactly fits
		res, err := Solve(d, Options{Budget: budget})
		if err != nil {
			t.Errorf("%s: Solve: %v", d.Name, err)
			continue
		}
		_, sm := cost.Evaluate(modular)
		if res.Summary.Total > sm.Total {
			t.Errorf("%s: proposed %d worse than modular %d on modular's own budget",
				d.Name, res.Summary.Total, sm.Total)
		}
	}
}

func TestCaseStudyShape(t *testing.T) {
	// Table IV shape on the FX70T budget: static infeasible, modular and
	// proposed feasible, proposed total strictly below modular and far
	// below single-region.
	d := design.VideoReceiver()
	budget := design.CaseStudyBudget()
	if FullyStatic(d).FitsIn(budget) {
		t.Error("static implementation should exceed the budget")
	}
	if !Modular(d).FitsIn(budget) {
		t.Error("modular scheme should fit the budget")
	}
	res := solve(t, d, budget)
	_, sm := cost.Evaluate(Modular(d))
	_, ss := cost.Evaluate(SingleRegion(d))
	if res.Summary.Total >= sm.Total {
		t.Errorf("proposed total %d not below modular %d", res.Summary.Total, sm.Total)
	}
	if res.Summary.Total >= ss.Total {
		t.Errorf("proposed total %d not below single-region %d", res.Summary.Total, ss.Total)
	}
	t.Logf("case study: proposed=%d modular=%d single=%d (improvement over modular %.1f%%)",
		res.Summary.Total, sm.Total, ss.Total,
		100*float64(sm.Total-res.Summary.Total)/float64(sm.Total))
}

func TestCaseStudyModifiedShape(t *testing.T) {
	// Table V: on the modified configuration set the algorithm finds a
	// scheme with static promotion and a much lower total than the
	// 8-configuration case.
	d := design.VideoReceiverModified()
	budget := design.CaseStudyBudget()
	res := solve(t, d, budget)
	_, sm := cost.Evaluate(Modular(d))
	if res.Summary.Total >= sm.Total {
		t.Errorf("proposed total %d not below modular %d", res.Summary.Total, sm.Total)
	}
	t.Logf("modified case study: proposed=%d modular=%d, static parts=%d",
		res.Summary.Total, sm.Total, len(res.Scheme.Static))
}

func TestStaticPromotionAblation(t *testing.T) {
	// Disabling static promotion must never help.
	d := design.VideoReceiverModified()
	budget := design.CaseStudyBudget()
	full := solve(t, d, budget)
	noStatic, err := Solve(d, Options{Budget: budget, NoStatic: true})
	if err != nil {
		t.Fatal(err)
	}
	if full.Summary.Total > noStatic.Summary.Total {
		t.Errorf("static promotion made things worse: %d vs %d",
			full.Summary.Total, noStatic.Summary.Total)
	}
	for _, p := range noStatic.Scheme.Static {
		t.Errorf("NoStatic scheme promoted %s", p.Label(d))
	}
}

func TestGreedyOnlyAblation(t *testing.T) {
	d := design.VideoReceiver()
	budget := design.CaseStudyBudget()
	full := solve(t, d, budget)
	greedy, err := Solve(d, Options{Budget: budget, GreedyOnly: true})
	if errors.Is(err, ErrNoScheme) {
		t.Log("greedy-only found no scheme (full search required)")
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	if full.Summary.Total > greedy.Summary.Total {
		t.Errorf("full search (%d) worse than greedy-only (%d)",
			full.Summary.Total, greedy.Summary.Total)
	}
}

func TestNoQuantizeAblationStillValid(t *testing.T) {
	d := design.VideoReceiver()
	budget := design.CaseStudyBudget()
	res, err := Solve(d, Options{Budget: budget, NoQuantize: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Scheme.Validate(); err != nil {
		t.Fatal(err)
	}
	if !res.Scheme.FitsIn(budget) {
		t.Error("NoQuantize scheme exceeds budget (final areas must stay quantised)")
	}
}

func TestSolveDeterministic(t *testing.T) {
	d := design.VideoReceiver()
	budget := design.CaseStudyBudget()
	a := solve(t, d, budget)
	b := solve(t, d, budget)
	if a.Summary != b.Summary {
		t.Errorf("non-deterministic result: %+v vs %+v", a.Summary, b.Summary)
	}
	if len(a.Scheme.Regions) != len(b.Scheme.Regions) {
		t.Error("non-deterministic region count")
	}
}

func TestSingleConfigurationDesign(t *testing.T) {
	d := design.PaperExample()
	d.Configurations = d.Configurations[:1]
	res := solve(t, d, resource.New(2000, 50, 50))
	if res.Summary.Total != 0 || res.Summary.Worst != 0 {
		t.Errorf("single configuration should cost nothing: %+v", res.Summary)
	}
}

func TestSingleModeExampleSolve(t *testing.T) {
	// §IV-D: two disjoint configurations. Even modest budgets admit a
	// zero-cost arrangement because the two configurations can live in
	// disjoint region sets (every region don't-care on one side).
	d := design.SingleModeExample()
	res := solve(t, d, resource.New(2000, 16, 24))
	if res.Summary.Total != 0 {
		t.Errorf("total = %d, want 0 for disjoint configurations", res.Summary.Total)
	}
}

func TestOptionsBounds(t *testing.T) {
	if (Options{}).maxSets() != defaultMaxCandidateSets {
		t.Error("default maxSets wrong")
	}
	if (Options{MaxCandidateSets: -1}).maxSets() < 1<<30 {
		t.Error("negative maxSets should be unlimited")
	}
	if (Options{MaxCandidateSets: 3}).maxSets() != 3 {
		t.Error("explicit maxSets ignored")
	}
	if (Options{}).maxFirst() != defaultMaxFirstMoves {
		t.Error("default maxFirst wrong")
	}
	if (Options{MaxFirstMoves: -1}).maxFirst() < 1<<30 {
		t.Error("negative maxFirst should be unlimited")
	}
	if (Options{MaxFirstMoves: 5}).maxFirst() != 5 {
		t.Error("explicit maxFirst ignored")
	}
}
