package partition

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"prpart/internal/design"
	"prpart/internal/resource"
	"prpart/internal/synthetic"
)

// resultFingerprint serialises everything observable about a result —
// scheme regions in order, static set, activation matrix, summary,
// trace, and the search-effort statistics — so the incremental engine
// and the reference oracle can be compared byte for byte.
func resultFingerprint(d *design.Design, res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "total=%d worst=%d states=%d sets=%d\n",
		res.Summary.Total, res.Summary.Worst, res.States, res.CandidateSets)
	for ri, reg := range res.Scheme.Regions {
		fmt.Fprintf(&b, "region %d (%d frames):", ri, reg.Frames())
		for _, p := range reg.Parts {
			fmt.Fprintf(&b, " %s", p.Label(d))
		}
		b.WriteByte('\n')
	}
	fmt.Fprint(&b, "static:")
	for _, p := range res.Scheme.Static {
		fmt.Fprintf(&b, " %s", p.Label(d))
	}
	b.WriteByte('\n')
	for _, row := range res.Scheme.Active {
		fmt.Fprintf(&b, "%v\n", row)
	}
	for _, step := range res.Trace {
		b.WriteString(step)
		b.WriteByte('\n')
	}
	return b.String()
}

// diffCase runs both engines on one (design, options) input and fails
// on any observable divergence, including disagreeing errors.
func diffCase(t *testing.T, label string, d *design.Design, opts Options) {
	t.Helper()
	ctx := context.Background()
	got, gerr := solveSearch(ctx, d, opts, false)
	want, werr := solveSearch(ctx, d, opts, true)
	if (gerr == nil) != (werr == nil) {
		t.Fatalf("%s: engines disagree on error: incremental=%v reference=%v", label, gerr, werr)
	}
	if gerr != nil {
		if gerr.Error() != werr.Error() {
			t.Fatalf("%s: engines return different errors: incremental=%v reference=%v", label, gerr, werr)
		}
		return
	}
	gf, wf := resultFingerprint(d, got), resultFingerprint(d, want)
	if gf != wf {
		t.Fatalf("%s: incremental engine diverged from reference:\n--- reference\n%s--- incremental\n%s", label, wf, gf)
	}
}

// tighten scales a budget down to stress the infeasible descent phase
// (violation-guided move selection) and the no-scheme error path.
func tighten(v resource.Vector, pct int) resource.Vector {
	return resource.New(v.CLB*pct/100, v.BRAM*pct/100, v.DSP*pct/100)
}

// TestDifferentialIncrementalVsReference proves the tentpole's
// determinism contract: across the synthetic corpus (the same
// generator and size the prbench sweep uses) plus the paper designs,
// the incremental engine returns results byte-identical to the
// retained pre-incremental reference — same scheme, summary, state
// counts, and trace — under generous and tight budgets alike.
func TestDifferentialIncrementalVsReference(t *testing.T) {
	corpus := 100
	if raceEnabled {
		corpus = 20
	}
	if testing.Short() {
		corpus = 10
	}
	designs := []*design.Design{design.PaperExample(), design.VideoReceiver()}
	designs = append(designs, synthetic.Generate(1, corpus)...)
	for _, d := range designs {
		budget := Modular(d).TotalResources()
		diffCase(t, d.Name+"/modular", d, Options{Budget: budget})
		diffCase(t, d.Name+"/tight", d, Options{Budget: tighten(budget, 85)})
	}
	// The case-study budget exercises the documented descent on the
	// paper's design, including transfers and static promotion.
	diffCase(t, "casestudy", design.VideoReceiver(), Options{Budget: design.CaseStudyBudget()})
}

// TestDifferentialIncrementalOptions covers the ablation and tuning
// surface: every option that changes move vocabulary, ordering or
// quantisation must leave the two engines in lockstep.
func TestDifferentialIncrementalOptions(t *testing.T) {
	d := design.VideoReceiver()
	budget := design.CaseStudyBudget()
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"nostatic", Options{Budget: budget, NoStatic: true}},
		{"greedyonly", Options{Budget: budget, GreedyOnly: true}},
		{"noquantize", Options{Budget: budget, NoQuantize: true}},
		{"coverdesc", Options{Budget: budget, CoverDescending: true}},
		{"maxfirst2", Options{Budget: budget, MaxFirstMoves: 2}},
		{"maxsets1", Options{Budget: budget, MaxCandidateSets: 1}},
		{"pinned", Options{Budget: budget, PinnedStatic: d.UsedModes()[:1]}},
	} {
		diffCase(t, tc.name, d, tc.opts)
	}
}

// TestDifferentialIncrementalWeighted pins the weighted objective: the
// delta cache's weighted merge/extend/shrink entries must reproduce
// the reference's per-candidate weightedDiff results.
func TestDifferentialIncrementalWeighted(t *testing.T) {
	corpus := 8
	if raceEnabled {
		corpus = 3
	}
	designs := []*design.Design{design.VideoReceiver()}
	designs = append(designs, synthetic.Generate(2, corpus)...)
	for _, d := range designs {
		n := len(d.Configurations)
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, n)
			for j := range w[i] {
				if i != j {
					// Deterministic skew, asymmetric on purpose: the
					// searcher symmetrises to the pair mean.
					w[i][j] = float64((i*7+j*3)%5) + 0.5
				}
			}
		}
		diffCase(t, d.Name+"/weighted", d, Options{
			Budget:            Modular(d).TotalResources(),
			TransitionWeights: w,
		})
	}
}
