package partition

import (
	"sort"

	"prpart/internal/compat"
	"prpart/internal/cost"
	"prpart/internal/device"
	"prpart/internal/resource"
	"prpart/internal/scheme"
)

// state is a point in the search space: candidate parts grouped into
// regions, plus parts promoted to static logic.
//
// Groups are immutable once constructed (see newGroup): every move
// builds replacement groups and only edits the state's group slice.
// That invariant is what lets clone share group pointers, snapshots
// survive later in-place moves, and the delta cache in delta.go key
// entries by group id without ever invalidating them.
type state struct {
	groups    []*group
	static    []int // part indices promoted to static logic
	staticRes resource.Vector
	// path records the moves that produced this state, for Result.Trace.
	path []pathStep
	// cost and area are running aggregates maintained by applyMove:
	// cost == totalCost() and area == totalArea() at all times on the
	// optimised path, so per-candidate evaluation never walks the
	// groups. The reference engine ignores them and recomputes.
	cost int64
	area resource.Vector
}

// pathStep is one recorded search move.
type pathStep struct {
	static bool  // promotion to static (b empty) vs merge
	a, b   []int // part indices of the operand groups
}

// totalCost is the scheme's total reconfiguration time in scaled frames,
// recomputed from the groups — the ground truth the running state.cost
// must equal (asserted by the delta-cache property test).
func (st *state) totalCost() int64 {
	var t int64
	for _, g := range st.groups {
		t += g.contrib
	}
	return t
}

// totalArea is the device resources the state consumes (fixed static
// logic excluded; the searcher adds it when checking the budget),
// recomputed from the groups — the ground truth for state.area.
func (st *state) totalArea() resource.Vector {
	v := st.staticRes
	for _, g := range st.groups {
		v = v.Add(g.area)
	}
	return v
}

// clone copies the state's own slices. Group pointers are shared —
// groups are immutable — and the path is capacity-trimmed so appends by
// the clone (or the original) can never write into the other's tail.
func (st *state) clone() *state {
	return &state{
		groups:    append([]*group(nil), st.groups...),
		static:    append([]int(nil), st.static...),
		staticRes: st.staticRes,
		path:      st.path[:len(st.path):len(st.path)],
		cost:      st.cost,
		area:      st.area,
	}
}

// searchFrames converts a raw resource requirement into the search cost
// unit: quantised frames × frameScale normally, or the idealised
// (fractional-tile) equivalent under NoQuantize.
func (s *searcher) searchFrames(res resource.Vector) int64 {
	if s.opts.NoQuantize {
		return int64(res.CLB)*device.FramesPerCLBTile*frameScale/device.CLBsPerTile +
			int64(res.BRAM)*device.FramesPerBRAMTile*frameScale/device.BRAMsPerTile +
			int64(res.DSP)*device.FramesPerDSPTile*frameScale/device.DSPsPerTile
	}
	return int64(device.Frames(res)) * frameScale
}

// newGroup builds an immutable group holding the given parts. The id is
// a per-candidate-set sequence number used as a delta-cache key.
func (s *searcher) newGroup(parts ...int) *group {
	g := &group{parts: parts, id: s.sc.nextID}
	s.sc.nextID++
	for _, pi := range parts {
		g.res = g.res.Max(s.partRes[pi])
		g.raw = g.raw.Add(s.partRes[pi])
		n := int64(s.partAct[pi])
		g.active += s.partAct[pi]
		g.sumSq += n * n
	}
	g.area = device.TilesToPrimitives(device.Tiles(g.res))
	g.frames = s.searchFrames(g.res)
	if s.weights != nil {
		g.act = s.activation(parts)
		g.contrib = g.frames * s.weightedDiff(g.act)
	} else {
		g.contrib = g.frames * g.diffPairs()
	}
	if s.useMasks {
		mask := compat.NewMask(len(s.d.Configurations))
		for _, pi := range parts {
			pm := s.tab.Mask(pi)
			for w := range mask {
				mask[w] |= pm[w]
			}
		}
		g.mask = mask
	}
	return g
}

// groupsCompatible reports whether two groups may merge. With masks
// (the Refine path) the probe is a single mask intersection — a group's
// mask is the union of its parts' masks, so disjoint masks ⇔ every
// cross pair compatible; otherwise it is the original pairwise walk.
func (s *searcher) groupsCompatible(ga, gb *group) bool {
	if ga.mask != nil && gb.mask != nil {
		return !ga.mask.Intersects(gb.mask)
	}
	return s.tab.GroupCompatible(ga.parts, gb.parts)
}

// partCompatible reports whether candidate part p may join group g.
func (s *searcher) partCompatible(p int, g *group) bool {
	if g.mask != nil {
		return !s.tab.Mask(p).Intersects(g.mask)
	}
	return s.tab.GroupCompatible([]int{p}, g.parts)
}

// activation maps each configuration to the active part of the group
// (part index + 1; 0 = inactive). At most one part of a compatible group
// is active per configuration.
func (s *searcher) activation(parts []int) []int32 {
	act := make([]int32, len(s.d.Configurations))
	for _, pi := range parts {
		for ci := range s.cs.Active {
			if s.cs.Active[ci][pi] {
				act[ci] = int32(pi) + 1
			}
		}
	}
	return act
}

// weightedDiff sums the pair weights of every configuration pair that
// reconfigures the group (both active, different parts).
func (s *searcher) weightedDiff(act []int32) int64 {
	var t int64
	for i := 0; i < len(act); i++ {
		if act[i] == 0 {
			continue
		}
		for j := i + 1; j < len(act); j++ {
			if act[j] != 0 && act[j] != act[i] {
				t += s.weights[i][j]
			}
		}
	}
	return t
}

// pinned reports whether a candidate part contains a designer-pinned
// mode and must live in static logic.
func (s *searcher) pinned(pi int) bool {
	for _, r := range s.opts.PinnedStatic {
		if s.cs.Parts[pi].Set.Contains(r) {
			return true
		}
	}
	return false
}

// initial builds the start state: every candidate part in its own region,
// except designer-pinned parts, which start in static logic.
func (s *searcher) initial() *state {
	st := &state{}
	for pi := range s.cs.Parts {
		if s.pinned(pi) {
			st.static = append(st.static, pi)
			st.staticRes = st.staticRes.Add(s.partRes[pi])
			continue
		}
		st.groups = append(st.groups, s.newGroup(pi))
	}
	st.cost = st.totalCost()
	st.area = st.totalArea()
	return st
}

// move is one search step.
type move struct {
	// merge indices (into state.groups); j < 0 means "promote i to static".
	i, j int
	// part >= 0 turns the move into a transfer: part (an index into
	// state.groups[i].parts) moves from group i to group j. Transfers
	// never create or destroy groups beyond emptying i.
	part int
}

// applyMove applies mv to st in place, updating the running cost and
// area aggregates from the delta cache. Because groups are immutable,
// the surgery only edits st's own slices; earlier snapshots that still
// reference the retired groups are unaffected. The slice-edit order
// (new merged group appended last, after the transfer-source remnant)
// matches the original engine exactly — group order feeds both move
// enumeration and the scheme's stable region sort, so it is part of the
// determinism contract.
//
// sc must be the scratch whose delta cache evaluated mv (the shard
// scratch on the parallel refine path, s.sc otherwise) so the entry
// lookups below always hit.
func (s *searcher) applyMove(sc *scratch, st *state, mv move) {
	if mv.part >= 0 && mv.j >= 0 {
		gi, gj := st.groups[mv.i], st.groups[mv.j]
		pi := gi.parts[mv.part]
		dst := s.extendEntry(sc, gj, pi)
		src := s.shrinkEntry(sc, gi, mv.part)
		rest := make([]int, 0, len(gi.parts)-1)
		for k, p := range gi.parts {
			if k != mv.part {
				rest = append(rest, p)
			}
		}
		st.path = append(st.path, pathStep{a: []int{pi}, b: gj.parts})
		merged := s.newGroup(append(append([]int(nil), gj.parts...), pi)...)
		hi, lo := mv.i, mv.j
		if hi < lo {
			hi, lo = lo, hi
		}
		st.groups = append(st.groups[:hi], st.groups[hi+1:]...)
		st.groups = append(st.groups[:lo], st.groups[lo+1:]...)
		if len(rest) > 0 {
			st.groups = append(st.groups, s.newGroup(rest...))
		}
		st.groups = append(st.groups, merged)
		st.cost += dst.contrib + src.contrib - gi.contrib - gj.contrib
		st.area = st.area.Sub(gi.area).Sub(gj.area).Add(dst.area).Add(src.area)
		return
	}
	if mv.j < 0 {
		g := st.groups[mv.i]
		st.path = append(st.path, pathStep{static: true, a: g.parts})
		st.static = append(st.static, g.parts...)
		st.staticRes = st.staticRes.Add(g.raw)
		st.groups = append(st.groups[:mv.i], st.groups[mv.i+1:]...)
		st.cost -= g.contrib
		st.area = st.area.Sub(g.area).Add(g.raw)
		return
	}
	gi, gj := st.groups[mv.i], st.groups[mv.j]
	e := s.mergeEntry(sc, gi, gj)
	st.path = append(st.path, pathStep{a: gi.parts, b: gj.parts})
	merged := s.newGroup(append(append([]int(nil), gi.parts...), gj.parts...)...)
	hi, lo := mv.i, mv.j
	if hi < lo {
		hi, lo = lo, hi
	}
	st.groups = append(st.groups[:hi], st.groups[hi+1:]...)
	st.groups = append(st.groups[:lo], st.groups[lo+1:]...)
	st.groups = append(st.groups, merged)
	st.cost += e.contrib - gi.contrib - gj.contrib
	st.area = st.area.Sub(gi.area).Sub(gj.area).Add(e.area)
}

// apply returns a new state with the move applied.
func (s *searcher) apply(st *state, mv move) *state {
	out := st.clone()
	s.applyMove(s.sc, out, mv)
	return out
}

// appendLegalMoves appends the moves available from st to out (reusing
// its capacity): every compatible group merge, every single-part
// transfer between groups (when allowTransfers), and (when allowStatic)
// every static promotion.
func (s *searcher) appendLegalMoves(out []move, st *state, allowStatic, allowTransfers bool) []move {
	for i := 0; i < len(st.groups); i++ {
		for j := i + 1; j < len(st.groups); j++ {
			if s.groupsCompatible(st.groups[i], st.groups[j]) {
				out = append(out, move{i: i, j: j, part: -1})
			}
		}
		if allowStatic {
			out = append(out, move{i: i, j: -1, part: -1})
		}
		// Transfers: moving the sole part of a group equals a merge, so
		// only groups with two or more parts are sources.
		if !allowTransfers || len(st.groups[i].parts) < 2 {
			continue
		}
		for k, p := range st.groups[i].parts {
			for j := 0; j < len(st.groups); j++ {
				if j == i {
					continue
				}
				if s.partCompatible(p, st.groups[j]) {
					out = append(out, move{i: i, j: j, part: k})
				}
			}
		}
	}
	return out
}

// moveDelta predicts the cost and area effect of a move without building
// the new state, from first principles: it rebuilds the affected groups
// and recomputes the area sum. It is the non-incremental oracle the
// delta cache is differentially tested against (see reference.go) and
// is no longer on the hot path — evalMove in delta.go is.
func (s *searcher) moveDelta(st *state, mv move) (dCost int64, newArea resource.Vector) {
	area := st.totalArea()
	if mv.part >= 0 && mv.j >= 0 {
		gi, gj := st.groups[mv.i], st.groups[mv.j]
		pi := gi.parts[mv.part]
		rest := make([]int, 0, len(gi.parts)-1)
		for k, p := range gi.parts {
			if k != mv.part {
				rest = append(rest, p)
			}
		}
		dst := s.newGroup(append(append([]int(nil), gj.parts...), pi)...)
		var src *group
		srcContrib, srcArea := int64(0), resource.Vector{}
		if len(rest) > 0 {
			src = s.newGroup(rest...)
			srcContrib, srcArea = src.contrib, src.area
		}
		dCost = dst.contrib + srcContrib - gi.contrib - gj.contrib
		newArea = area.Sub(gi.area).Sub(gj.area).Add(dst.area).Add(srcArea)
		return dCost, newArea
	}
	if mv.j < 0 {
		g := st.groups[mv.i]
		var raw resource.Vector
		for _, pi := range g.parts {
			raw = raw.Add(s.partRes[pi])
		}
		return -g.contrib, area.Sub(g.area).Add(raw)
	}
	gi, gj := st.groups[mv.i], st.groups[mv.j]
	res := gi.res.Max(gj.res)
	frames := s.searchFrames(res)
	var contrib int64
	if s.weights != nil {
		merged := make([]int32, len(gi.act))
		for ci := range merged {
			// Compatibility guarantees at most one side is active.
			if gi.act[ci] != 0 {
				merged[ci] = gi.act[ci]
			} else {
				merged[ci] = gj.act[ci]
			}
		}
		contrib = frames * s.weightedDiff(merged)
	} else {
		a := int64(gi.active + gj.active)
		sq := gi.sumSq + gj.sumSq
		contrib = frames * (a*a - sq) / 2
	}
	dCost = contrib - gi.contrib - gj.contrib
	mergedArea := device.TilesToPrimitives(device.Tiles(res))
	newArea = area.Sub(gi.area).Sub(gj.area).Add(mergedArea)
	return dCost, newArea
}

func (s *searcher) feasible(area resource.Vector) bool {
	return s.d.Static.Add(area).FitsIn(s.opts.Budget)
}

// snapshot freezes a feasible state for later comparison and extraction.
type snapshot struct {
	s    *searcher
	st   *state
	cost int64
	area resource.Vector
}

func (s *searcher) snap(st *state) *snapshot {
	return &snapshot{s: s, st: st.clone(), cost: st.cost, area: st.area}
}

// better orders snapshots by total reconfiguration cost, then total area,
// then fewer regions.
func (a *snapshot) better(b *snapshot) bool {
	if a.cost != b.cost {
		return a.cost < b.cost
	}
	if at, bt := a.area.Total(), b.area.Total(); at != bt {
		return at < bt
	}
	return len(a.st.groups) < len(b.st.groups)
}

// scheme materialises the snapshot as a validated scheme.Scheme.
func (sn *snapshot) scheme(name string) (*scheme.Scheme, error) {
	s := sn.s
	out := &scheme.Scheme{Design: s.d, Name: name}
	// Deterministic region order: largest frame count first, then by
	// first part index (matches the paper's PRR numbering style).
	groups := append([]*group(nil), sn.st.groups...)
	sort.SliceStable(groups, func(i, j int) bool {
		if groups[i].frames != groups[j].frames {
			return groups[i].frames > groups[j].frames
		}
		return minInt(groups[i].parts) < minInt(groups[j].parts)
	})
	for _, g := range groups {
		var reg scheme.Region
		for _, pi := range g.parts {
			reg.Parts = append(reg.Parts, s.cs.Parts[pi])
		}
		out.Regions = append(out.Regions, reg)
	}
	for _, pi := range sn.st.static {
		out.Static = append(out.Static, s.cs.Parts[pi])
	}
	nCfg := len(s.d.Configurations)
	out.Active = make([][]int, nCfg)
	for ci := 0; ci < nCfg; ci++ {
		row := make([]int, len(groups))
		for ri, g := range groups {
			row[ri] = scheme.Inactive
			for slot, pi := range g.parts {
				if s.cs.Active[ci][pi] {
					row[ri] = slot
					break
				}
			}
		}
		out.Active[ci] = row
	}
	return out, nil
}

// trace renders the snapshot's move path with human-readable labels.
func (sn *snapshot) trace() []string {
	s := sn.s
	label := func(parts []int) string {
		out := ""
		for i, pi := range parts {
			if i > 0 {
				out += " + "
			}
			out += s.cs.Parts[pi].Label(s.d)
		}
		return out
	}
	steps := make([]string, 0, len(sn.st.path))
	for _, p := range sn.st.path {
		if p.static {
			steps = append(steps, "promote "+label(p.a)+" to static")
		} else {
			steps = append(steps, "merge "+label(p.a)+" with "+label(p.b))
		}
	}
	return steps
}

func minInt(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// violation measures how far an area overshoots the budget, in idealised
// frame units (the same weighting the search cost uses), summed over
// resource kinds. Zero means feasible.
func (s *searcher) violation(area resource.Vector) int64 {
	over := s.d.Static.Add(area).SubFloor(s.opts.Budget)
	return s.searchFrames(over)
}

// run searches one candidate partition set: a greedy descent from the
// initial state, restarted once per distinct first move (the paper's
// "distinct from those used to begin the previous iterations"), bounded
// by MaxFirstMoves. It returns the best feasible snapshot and the number
// of states evaluated.
func (s *searcher) run() (*snapshot, int) {
	base := s.initial()
	states := 0
	var best *snapshot
	// record registers a visited state, cost-first: the incumbent
	// comparison runs on the running aggregates (the same ordering
	// snapshot.better applies) and only a strictly better state is
	// materialised with snap — losing states cost zero allocations.
	record := func(st *state) {
		states++
		if !s.feasible(st.area) {
			return
		}
		if best != nil {
			if st.cost > best.cost {
				s.cSnapSkip.Inc()
				return
			}
			if st.cost == best.cost {
				at, bt := st.area.Total(), best.area.Total()
				if at > bt || (at == bt && len(st.groups) >= len(best.st.groups)) {
					s.cSnapSkip.Inc()
					return
				}
			}
		}
		best = s.snap(st)
	}
	record(base)

	// Seed the one-module-per-region grouping when the candidate set is
	// all singletons (always true for the first set): this guarantees the
	// search result is never worse than the modular baseline when the
	// baseline fits, and gives static promotion a strong starting point.
	if !s.opts.GreedyOnly {
		if seed := s.moduleGrouped(); seed != nil {
			record(seed)
			s.descend(seed, record)
		}
	}

	// The plain descent (no forced first move) ...
	s.descend(base, record)

	if !s.opts.GreedyOnly {
		// ... and one descent per distinct first move, most promising
		// (lowest cost increase per violation removed) first. The moves
		// are copied into the scored buffer before the descents below
		// recycle the shared move buffer.
		firsts := s.appendLegalMoves(s.sc.moves[:0], base, !s.opts.NoStatic, false)
		s.sc.moves = firsts
		scored := s.sc.scored[:0]
		for _, mv := range firsts {
			scored = append(scored, scoredMove{mv: mv, d: s.moveCost(base, mv)})
		}
		s.sc.scored = scored
		sort.SliceStable(scored, func(i, j int) bool { return scored[i].d < scored[j].d })
		if maxFirst := s.opts.maxFirst(); len(scored) > maxFirst {
			scored = scored[:maxFirst]
		}
		for _, c := range scored {
			st := s.apply(base, c.mv)
			record(st)
			s.descend(st, record)
		}
	}
	return best, states
}

// descend runs the greedy policy from st under several move vocabularies:
// each extra move family (static promotion, transfers) can steer the
// descent onto a worse trajectory as easily as a better one, so the
// restricted descents keep the smaller search spaces covered and the
// recorded-state set grows monotonically with each family.
func (s *searcher) descend(st *state, record func(*state)) {
	statics := []bool{false}
	if !s.opts.NoStatic {
		statics = append(statics, true)
	}
	for _, withStatic := range statics {
		s.greedy(st, withStatic, false, record)
		s.greedy(st, withStatic, true, record)
	}
}

// moduleGrouped builds the state that groups singleton parts by module —
// the candidate-set equivalent of the one-module-per-region scheme — or
// nil when the candidate set contains multi-mode parts.
func (s *searcher) moduleGrouped() *state {
	byModule := make(map[int][]int)
	var order []int
	for pi, p := range s.cs.Parts {
		if p.Set.Len() != 1 {
			return nil
		}
		mi := p.Set.Refs()[0].Module
		if _, ok := byModule[mi]; !ok {
			order = append(order, mi)
		}
		byModule[mi] = append(byModule[mi], pi)
	}
	sort.Ints(order)
	st := &state{}
	for _, mi := range order {
		var free []int
		for _, pi := range byModule[mi] {
			if s.pinned(pi) {
				st.static = append(st.static, pi)
				st.staticRes = st.staticRes.Add(s.partRes[pi])
				continue
			}
			free = append(free, pi)
		}
		if len(free) > 0 {
			st.groups = append(st.groups, s.newGroup(free...))
		}
	}
	st.cost = st.totalCost()
	st.area = st.totalArea()
	return st
}

// greedy repeatedly applies the best move. While the state is infeasible
// it picks the move with the lowest reconfiguration-cost increase per
// unit of budget violation removed (merging trades time for area in this
// model; it can never reduce cost). Once feasible it applies
// cost-improving moves — in practice static promotions — until none
// remain. Candidates are scored by evalMove against the delta cache;
// the state mutates in place, so one descent allocates only what its
// applied moves create.
func (s *searcher) greedy(st *state, allowStatic, allowTransfers bool, record func(*state)) {
	s.cDescents.Inc()
	depth := 0
	defer func() { s.gDepth.Observe(int64(depth)) }()
	cur := st.clone()
	for {
		mv, sc, ok := s.scanMoves(cur, allowStatic, allowTransfers)
		if !ok {
			return
		}
		s.applyMove(sc, cur, mv)
		depth++
		record(cur)
	}
}

// scanMoves selects the best legal move from cur under the greedy
// policy, returning it with the scratch whose delta cache evaluated it
// (so applyMove hits). ok=false means no applicable move remains. The
// parallel refine scan takes over when the searcher carries a parScan
// and the state is large enough to shard — a threshold that depends
// only on the state, never on the worker count, so the set of sharded
// iterations (and with it every cache and counter trajectory) is
// identical at any Workers setting.
func (s *searcher) scanMoves(cur *state, allowStatic, allowTransfers bool) (move, *scratch, bool) {
	if s.par != nil && parWorthwhile(cur, allowTransfers) {
		return s.par.scan(cur, allowStatic, allowTransfers)
	}
	moves := s.appendLegalMoves(s.sc.moves[:0], cur, allowStatic, allowTransfers)
	s.sc.moves = moves
	if len(moves) == 0 {
		return move{}, nil, false
	}
	s.cMoves.Add(int64(len(moves)))
	curArea := cur.area
	curViol := s.violation(curArea)
	bestIdx := -1
	var bestCost, bestViol, bestSaved int64
	for i, mv := range moves {
		d, area, v, ok := s.evalMove(s.sc, cur, mv, curArea, curViol)
		if !ok {
			s.cRejects.Inc()
			continue
		}
		if curViol == 0 {
			// Feasible: accept strict cost improvements, or
			// cost-neutral area reductions that make room for later
			// static promotions.
			if d > 0 || (d == 0 && area.Total() >= curArea.Total()) {
				s.cRejects.Inc()
				continue
			}
			saved := int64(curArea.Total() - area.Total())
			if bestIdx < 0 || d < bestCost || (d == bestCost && saved > bestSaved) {
				bestIdx, bestCost, bestSaved = i, d, saved
			}
		} else {
			saved := curViol - v
			// Lower dCost per violation removed wins; cross-multiply
			// to stay in integers (saved > 0 on both sides).
			if bestIdx < 0 || d*bestSaved < bestCost*saved ||
				(d*bestSaved == bestCost*saved && v < bestViol) {
				bestIdx, bestCost, bestViol, bestSaved = i, d, v, saved
			}
		}
	}
	if bestIdx < 0 {
		return move{}, nil, false
	}
	return moves[bestIdx], s.sc, true
}

// evaluate is a debugging helper: it materialises and evaluates a state
// without registering it.
func (s *searcher) evaluate(st *state) (cost.Summary, error) {
	sn := s.snap(st)
	sch, err := sn.scheme("debug")
	if err != nil {
		return cost.Summary{}, err
	}
	_, sum := cost.Evaluate(sch)
	return sum, nil
}
