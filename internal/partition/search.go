package partition

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"prpart/internal/basepart"
	"prpart/internal/compat"
	"prpart/internal/connmat"
	"prpart/internal/cost"
	"prpart/internal/cover"
	"prpart/internal/design"
	"prpart/internal/modeset"
	"prpart/internal/obs"
	"prpart/internal/resource"
	"prpart/internal/scheme"
)

// ErrInfeasible reports that no partitioning of the design fits the
// budget — not even a single region sized for the largest configuration.
var ErrInfeasible = errors.New("partition: design does not fit the budget")

// ErrNoScheme reports that the search found no feasible multi-region
// scheme; the single-region fallback fits, but the paper's flow treats
// this as "re-iterate with a larger FPGA".
var ErrNoScheme = errors.New("partition: no feasible scheme other than a single region")

// Options tunes the search. The zero value (plus a Budget) runs the full
// algorithm with default bounds.
type Options struct {
	// Budget is the total device resources available, including the
	// design's fixed static logic.
	Budget resource.Vector
	// NoStatic disables promotion of base partitions into static logic
	// (ablation A1). The paper's algorithm has it enabled.
	NoStatic bool
	// GreedyOnly restricts the search to a single greedy descent on the
	// first candidate partition set (ablation A2).
	GreedyOnly bool
	// NoQuantize guides the search with idealised, non-tile-quantised
	// frame counts (ablation A3). Final metrics are always quantised.
	NoQuantize bool
	// MaxCandidateSets bounds the outer candidate-set iteration:
	// 0 = default (16), negative = unlimited.
	MaxCandidateSets int
	// MaxFirstMoves bounds the restart breadth per candidate set:
	// 0 = default (32), negative = unlimited.
	MaxFirstMoves int
	// Workers sets the number of candidate partition sets searched
	// concurrently: 0 or 1 = serial, negative = GOMAXPROCS. The result
	// is deterministic regardless of parallelism (per-set bests are
	// reduced in candidate-set order).
	Workers int
	// PinnedStatic lists modes the designer requires in static logic
	// (e.g. a mode that must never incur reconfiguration latency). Every
	// candidate part containing a pinned mode starts — and stays — in the
	// static region. Incompatible with NoStatic.
	PinnedStatic []design.ModeRef
	// CoverDescending reverses the covering order (largest base
	// partitions first) — ablation A5, showing the value of the paper's
	// ascending ordering.
	CoverDescending bool
	// Obs, when non-nil, receives the search's counters, phase timers and
	// trace events (see internal/obs). Instrumentation is passive: it
	// never changes which scheme the search returns, and the nil default
	// costs one predictable branch per touch point.
	Obs *obs.Obs
	// TransitionWeights optionally weights configuration pairs in the
	// search objective — the transition-probability extension the
	// paper's §V closing remarks anticipate. Entry [i][j] scales the
	// cost charged when a region must be reconfigured between
	// configurations i and j. Both directed entries are read and
	// symmetrised: the weight of the unordered pair {i, j} is the mean
	// of w[i][j] and w[j][i], so an asymmetric matrix is averaged, not
	// half-ignored. Nil means uniform weighting, the paper's eq. (7).
	// Final Summary metrics are always uniform so schemes stay
	// comparable; evaluate weighted expectations with cost.Matrix.Weighted.
	TransitionWeights [][]float64
}

const (
	defaultMaxCandidateSets = 16
	defaultMaxFirstMoves    = 32
)

func (o Options) maxSets() int {
	switch {
	case o.MaxCandidateSets == 0:
		return defaultMaxCandidateSets
	case o.MaxCandidateSets < 0:
		return int(^uint(0) >> 1)
	}
	return o.MaxCandidateSets
}

func (o Options) maxFirst() int {
	switch {
	case o.MaxFirstMoves == 0:
		return defaultMaxFirstMoves
	case o.MaxFirstMoves < 0:
		return int(^uint(0) >> 1)
	}
	return o.MaxFirstMoves
}

// Result is the outcome of a successful search.
type Result struct {
	// Scheme is the best feasible scheme found, named "proposed".
	Scheme *scheme.Scheme
	// Summary carries its headline metrics.
	Summary cost.Summary
	// CandidateSets is the number of candidate partition sets explored.
	CandidateSets int
	// States is the number of search states evaluated.
	States int
	// Trace lists the merge/promote moves that produced the best scheme
	// from its candidate set's all-separate start, in order.
	Trace []string
}

// Solve runs the paper's algorithm: build the connectivity matrix,
// cluster into base partitions, iterate candidate partition sets, and for
// each one search region allocations by compatible merging and static
// promotion, keeping the feasible scheme with the lowest total
// reconfiguration time.
//
// With TransitionWeights set, the search is additionally run under the
// uniform objective and the scheme with the lower weighted expectation is
// returned — greedy guidance under a skewed objective can land in a worse
// basin, and the uniform descent is a cheap strong candidate.
func Solve(d *design.Design, opts Options) (*Result, error) {
	return SolveContext(context.Background(), d, opts)
}

// SolveContext is Solve with cancellation: the context is checked at
// candidate-set boundaries, so a cancelled or expired context stops the
// search between set explorations and returns the context's error. A
// run that completes returns exactly what Solve would — cancellation
// never changes a successful result, only whether one is produced.
func SolveContext(ctx context.Context, d *design.Design, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if w := opts.TransitionWeights; w != nil {
		if err := d.Validate(); err != nil {
			return nil, fmt.Errorf("partition: invalid design: %w", err)
		}
		if err := checkWeights(w, len(d.Configurations)); err != nil {
			return nil, err
		}
		weighted, werr := solveOnce(ctx, d, opts)
		if werr != nil && ctx.Err() != nil {
			return nil, werr
		}
		plain := opts
		plain.TransitionWeights = nil
		uniform, uerr := solveOnce(ctx, d, plain)
		// A cancelled uniform run must not surface the weighted-only
		// result as success: the uniform candidate may win in a full run,
		// so returning `weighted` here would break the invariant that a
		// successful result never depends on cancellation timing.
		if uerr != nil && ctx.Err() != nil {
			return nil, uerr
		}
		switch {
		case werr != nil && uerr != nil:
			return nil, werr
		case werr != nil:
			return uniform, nil
		case uerr != nil:
			return weighted, nil
		}
		score := func(r *Result) float64 {
			m := cost.Transitions(r.Scheme)
			v, err := m.Weighted(w)
			if err != nil {
				return 0
			}
			return v
		}
		if score(uniform) < score(weighted) {
			uniform.States += weighted.States
			return uniform, nil
		}
		weighted.States += uniform.States
		return weighted, nil
	}
	return solveOnce(ctx, d, opts)
}

// solveOnce is one search run under a single objective.
func solveOnce(ctx context.Context, d *design.Design, opts Options) (*Result, error) {
	return solveSearch(ctx, d, opts, false)
}

// solveSearch is solveOnce with an engine selector: useReference routes
// every candidate set through the retained pre-incremental oracle in
// reference.go instead of the optimised descent. Differential tests use
// it to prove the two engines return identical results; production
// callers always pass false.
func solveSearch(ctx context.Context, d *design.Design, opts Options, useReference bool) (*Result, error) {
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("partition: invalid design: %w", err)
	}
	if len(opts.PinnedStatic) > 0 {
		if opts.NoStatic {
			return nil, errors.New("partition: PinnedStatic conflicts with NoStatic")
		}
		used := make(map[design.ModeRef]bool)
		for _, r := range d.UsedModes() {
			used[r] = true
		}
		for _, r := range opts.PinnedStatic {
			if !used[r] {
				return nil, fmt.Errorf("partition: pinned mode %s is not used by any configuration", d.ModeName(r))
			}
		}
	}
	stopCluster := opts.Obs.Timer("partition.phase.cluster").Time()
	m := connmat.New(d)

	// Feasibility pre-check (§IV-C): the minimum possible area is the
	// largest configuration in a single region.
	if !SingleRegion(d).FitsIn(opts.Budget) {
		stopCluster()
		return nil, ErrInfeasible
	}

	parts, err := basepart.BasePartitions(m)
	if err != nil {
		stopCluster()
		return nil, err
	}
	ordered := cover.Order(parts)
	if opts.CoverDescending {
		for i, j := 0, len(ordered)-1; i < j; i, j = i+1, j-1 {
			ordered[i], ordered[j] = ordered[j], ordered[i]
		}
	}
	sets := cover.Sets(ordered, m)
	if len(sets) > opts.maxSets() {
		sets = sets[:opts.maxSets()]
	}
	if opts.GreedyOnly && len(sets) > 1 {
		sets = sets[:1]
	}
	stopCluster()
	opts.Obs.Counter("partition.candidate_sets").Add(int64(len(sets)))
	opts.Obs.Emit("partition", "search.start",
		obs.Str("design", d.Name), obs.Int("candidate_sets", int64(len(sets))))

	snaps := make([]*snapshot, len(sets))
	counts := make([]int, len(sets))
	workers := opts.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	stopSearch := opts.Obs.Timer("partition.phase.search").Time()
	busy := opts.Obs.Timer("partition.worker_busy")
	// runSet searches one candidate set with a reusable per-worker
	// scratch; the searcher itself is cheap, the scratch holds the
	// buffers and caches worth keeping warm across sets.
	runSet := func(i int, sc *scratch) {
		s := newSearcher(d, m, sets[i], opts, sc)
		if useReference {
			snaps[i], counts[i] = s.referenceRun()
		} else {
			snaps[i], counts[i] = s.run()
		}
	}
	if workers <= 1 || len(sets) <= 1 {
		opts.Obs.Gauge("partition.workers").Observe(1)
		stopBusy := busy.Time()
		sc := newScratch()
		for i := range sets {
			if ctx.Err() != nil {
				break
			}
			runSet(i, sc)
		}
		stopBusy()
	} else {
		opts.Obs.Gauge("partition.workers").Observe(int64(workers))
		// Buffered and prefilled so workers never block handing out
		// work, and the producer never waits on a slow worker.
		jobs := make(chan int, len(sets))
		for i := range sets {
			jobs <- i
		}
		close(jobs)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				stopBusy := busy.Time()
				defer stopBusy()
				sc := newScratch()
				for i := range jobs {
					if ctx.Err() != nil {
						continue // drain without searching
					}
					runSet(i, sc)
				}
			}()
		}
		wg.Wait()
	}
	stopSearch()
	if err := ctx.Err(); err != nil {
		opts.Obs.Emit("partition", "search.cancelled",
			obs.Str("design", d.Name), obs.Str("cause", err.Error()))
		return nil, fmt.Errorf("partition: search cancelled: %w", err)
	}
	var best *snapshot
	states := 0
	for i, snap := range snaps {
		states += counts[i]
		if snap != nil && (best == nil || snap.better(best)) {
			best = snap
		}
	}
	opts.Obs.Counter("partition.states").Add(int64(states))
	if best == nil {
		opts.Obs.Emit("partition", "search.done",
			obs.Str("design", d.Name), obs.Int("states", int64(states)),
			obs.Str("result", "no-scheme"))
		return nil, ErrNoScheme
	}
	opts.Obs.Emit("partition", "search.done",
		obs.Str("design", d.Name), obs.Int("states", int64(states)),
		obs.Int("best_cost", best.cost), obs.Int("regions", int64(len(best.st.groups))))
	sch, err := best.scheme("proposed")
	if err != nil {
		return nil, err
	}
	if err := sch.Validate(); err != nil {
		return nil, fmt.Errorf("partition: internal error: best scheme invalid: %w", err)
	}
	_, sum := cost.Evaluate(sch)
	return &Result{
		Scheme:        sch,
		Summary:       sum,
		CandidateSets: len(sets),
		States:        states,
		Trace:         best.trace(),
	}, nil
}

// group is one region under construction: a set of pairwise compatible
// candidate parts. Groups are immutable after newGroup returns — states
// and snapshots share pointers, and the delta cache keys entries by id.
type group struct {
	id      uint64          // per-candidate-set sequence number (delta-cache key)
	parts   []int           // indices into searcher.parts
	res     resource.Vector // raw per-resource max over parts
	raw     resource.Vector // per-resource sum over parts (static-promotion area)
	area    resource.Vector // tile-quantised capacity
	frames  int64           // search-cost frames (scaled by frameScale)
	active  int             // number of configurations that activate the group
	sumSq   int64           // Σ over parts of (activation count)²
	act     []int32         // per config: active part + 1 (weighted mode only)
	contrib int64           // frames × (weighted) differing-pair mass
	// mask is the union of the parts' configuration masks — present only
	// when the searcher runs with useMasks (the multilevel refine path),
	// where it makes group-pair compatibility O(configs/64) instead of
	// O(|ga|·|gb|). Nil on the standard path, which keeps the original
	// pairwise probe and its exact allocation profile.
	mask compat.Mask
}

// diffPairs is the number of configuration pairs whose transition
// reconfigures the group: both sides active with different parts.
func (g *group) diffPairs() int64 {
	a := int64(g.active)
	return (a*a - g.sumSq) / 2
}

// frameScale keeps quantised and idealised frame counts in a common
// integer unit (1/20th of a frame).
const frameScale = 20

type searcher struct {
	d    *design.Design
	cs   *cover.CandidateSet
	opts Options
	tab  *compat.Table

	partRes []resource.Vector // per part: raw resources
	partAct []int             // per part: number of configs activating it
	// weights[i][j] is the scaled symmetric pair weight (nil = uniform).
	weights [][]int64

	// sc holds the reusable buffers, delta cache and quantisation memo
	// (see delta.go); reset per candidate set, shared across the sets a
	// worker processes.
	sc *scratch

	// useMasks switches group construction and move legality onto
	// group-level configuration masks (see group.mask). Only the Refine
	// warm-start path sets it: at multilevel scale a region holds
	// thousands of parts and the pairwise GroupCompatible probe is the
	// bottleneck, while the standard path must keep its byte- and
	// allocation-identical behaviour.
	useMasks bool

	// par, when non-nil, shards large scan iterations across a worker
	// pool (see refine_parallel.go). Only the Refine warm-start path
	// sets it; the standard solve path parallelises over candidate
	// sets instead and keeps its exact serial scan.
	par *parScan

	// Observability instruments, resolved once per searcher; all nil when
	// Options.Obs is nil, making every update a single branch.
	cMoves, cRejects, cDescents *obs.Counter
	cDeltaHit, cDeltaMiss       *obs.Counter
	cQuantHit, cQuantMiss       *obs.Counter
	cSnapSkip                   *obs.Counter
	gDepth                      *obs.Gauge
}

// weightScale converts float transition weights into integer cost units.
const weightScale = 1 << 20

// checkWeights validates a transition-weight matrix.
func checkWeights(w [][]float64, n int) error {
	if len(w) != n {
		return fmt.Errorf("partition: transition weights have %d rows for %d configurations", len(w), n)
	}
	for i, row := range w {
		if len(row) != n {
			return fmt.Errorf("partition: transition weight row %d has %d entries, want %d", i, len(row), n)
		}
		for j, v := range row {
			if v < 0 {
				return fmt.Errorf("partition: negative transition weight w(%d,%d) = %g", i, j, v)
			}
		}
	}
	return nil
}

func newSearcher(d *design.Design, m *connmat.Matrix, cs *cover.CandidateSet, opts Options, sc *scratch) *searcher {
	s := &searcher{d: d, cs: cs, opts: opts, sc: sc}
	// Caches are reset per candidate set so cache-counter values are a
	// pure function of the input, independent of how sets are spread
	// over workers (the serial-vs-parallel obs-identity contract).
	sc.reset()
	s.cMoves = opts.Obs.Counter("partition.moves_evaluated")
	s.cRejects = opts.Obs.Counter("partition.moves_rejected")
	s.cDescents = opts.Obs.Counter("partition.descents")
	s.cDeltaHit = opts.Obs.Counter("partition.delta_cache_hits")
	s.cDeltaMiss = opts.Obs.Counter("partition.delta_cache_misses")
	s.cQuantHit = opts.Obs.Counter("partition.quant_memo_hits")
	s.cQuantMiss = opts.Obs.Counter("partition.quant_memo_misses")
	s.cSnapSkip = opts.Obs.Counter("partition.snapshots_skipped")
	s.gDepth = opts.Obs.Gauge("partition.descent_depth_max")
	sets := make([]modeset.Set, len(cs.Parts))
	for i, p := range cs.Parts {
		sets[i] = p.Set
	}
	s.tab = compat.NewTable(m, sets)
	s.partRes = make([]resource.Vector, len(cs.Parts))
	s.partAct = make([]int, len(cs.Parts))
	for pi, p := range cs.Parts {
		s.partRes[pi] = p.Resources
		n := 0
		for ci := range cs.Active {
			if cs.Active[ci][pi] {
				n++
			}
		}
		s.partAct[pi] = n
	}
	if w := opts.TransitionWeights; w != nil {
		nCfg := len(d.Configurations)
		s.weights = make([][]int64, nCfg)
		for i := 0; i < nCfg; i++ {
			s.weights[i] = make([]int64, nCfg)
			for j := 0; j < nCfg; j++ {
				// Symmetrise: an unordered pair's weight is the mean of
				// the two directed entries.
				s.weights[i][j] = int64((w[i][j] + w[j][i]) / 2 * weightScale)
			}
		}
	}
	return s
}
