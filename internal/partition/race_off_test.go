//go:build !race

package partition

// raceEnabled selects differential-corpus sizes: full breadth normally,
// trimmed under the race detector's ~10-20× slowdown.
const raceEnabled = false
