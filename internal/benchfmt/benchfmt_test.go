package benchfmt

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

func sample() *Report {
	return &Report{
		Schema:    Schema,
		Rev:       "r1",
		GoVersion: "go1.24.0",
		Corpus:    Corpus{N: 100, Seed: 1},
		Metrics:   map[string]float64{"total": 42, "pct": 4.5},
		RuntimeNs: map[string]int64{"sweep_ns": 1000},
		Counters:  map[string]int64{"states": 7},
	}
}

func TestRoundTrip(t *testing.T) {
	r := sample()
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Fatalf("round trip mismatch:\nwrote %+v\nread  %+v", r, got)
	}
}

func TestWriteIsDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := sample().Write(&a); err != nil {
		t.Fatal(err)
	}
	if err := sample().Write(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("two writes of equal reports differ:\n%s\n---\n%s", a.String(), b.String())
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Report)
		want string
	}{
		{"schema", func(r *Report) { r.Schema = "prbench/v0" }, "schema"},
		{"rev", func(r *Report) { r.Rev = "" }, "rev"},
		{"goVersion", func(r *Report) { r.GoVersion = "" }, "goVersion"},
		{"corpus", func(r *Report) { r.Corpus.N = 0 }, "corpus"},
		{"metrics", func(r *Report) { r.Metrics = nil }, "metrics"},
		{"nan", func(r *Report) { r.Metrics["total"] = math.NaN() }, "total"},
		{"negative runtime", func(r *Report) { r.RuntimeNs["sweep_ns"] = -1 }, "sweep_ns"},
	}
	for _, tc := range cases {
		r := sample()
		tc.mut(r)
		err := r.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted an invalid report", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestReadRejectsUnknownFields(t *testing.T) {
	if _, err := Read(strings.NewReader(`{"schema":"prbench/v1","bogus":1}`)); err == nil {
		t.Fatal("Read accepted an unknown field")
	}
}

func TestCompare(t *testing.T) {
	old, cur := sample(), sample()
	cur.Metrics["total"] = 43         // drift: regression
	cur.RuntimeNs["sweep_ns"] = 1050  // +5%: within tol
	cur.RuntimeNs["casestudy_ns"] = 1 // new key vs old zero: no pct base, not a regression
	old.RuntimeNs["casestudy_ns"] = 0 // present but zero
	cur.Counters["states"] = 1000     // counters never regress
	deltas, err := Compare(old, cur, 10)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, d := range deltas {
		got[d.Kind+"/"+d.Key] = d.Regression
	}
	if !got["metric/total"] {
		t.Error("metric drift not flagged as regression")
	}
	if got["runtime/sweep_ns"] {
		t.Error("5% runtime growth flagged despite 10% tolerance")
	}
	if got["counter/states"] {
		t.Error("counter change flagged as regression")
	}
	// Regressions sort first.
	if len(deltas) == 0 || !deltas[0].Regression {
		t.Fatalf("first delta is not the regression: %+v", deltas)
	}

	cur.RuntimeNs["sweep_ns"] = 1200 // +20%: beyond tol
	deltas, err = Compare(old, cur, 10)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range deltas {
		if d.Kind == "runtime" && d.Key == "sweep_ns" {
			found = d.Regression
		}
	}
	if !found {
		t.Error("20% runtime growth not flagged under 10% tolerance")
	}
}

func TestCompareBenchmarks(t *testing.T) {
	old, cur := sample(), sample()
	old.Benchmarks = map[string]BenchResult{
		"solve": {NsPerOp: 1_000_000, AllocsPerOp: 100_000, BytesPerOp: 8_000_000},
	}
	cur.Benchmarks = map[string]BenchResult{
		"solve":   {NsPerOp: 1_050_000, AllocsPerOp: 130_000, BytesPerOp: 7_000_000},
		"descent": {NsPerOp: 9_000, AllocsPerOp: 20, BytesPerOp: 2_000},
	}
	deltas, err := Compare(old, cur, 10)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, d := range deltas {
		if d.Kind == "bench" {
			got[d.Key] = d.Regression
		}
	}
	if got["solve_ns_op"] {
		t.Error("5% ns/op growth flagged despite 10% tolerance")
	}
	if !got["solve_allocs_op"] {
		t.Error("30% allocs/op growth not flagged under 10% tolerance")
	}
	if got["solve_bytes_op"] {
		t.Error("bytes/op reduction flagged as regression")
	}
	for _, k := range []string{"descent_ns_op", "descent_allocs_op", "descent_bytes_op"} {
		if reg, ok := got[k]; !ok {
			t.Errorf("benchmark new to this report missing from deltas (%s)", k)
		} else if reg {
			t.Errorf("benchmark new to this report flagged as regression (%s)", k)
		}
	}
}

func TestBenchmarksOmittedWhenEmpty(t *testing.T) {
	// Older readers use DisallowUnknownFields, so a report without
	// micro-benchmarks must not serialise the field at all.
	var buf bytes.Buffer
	if err := sample().Write(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "benchmarks") {
		t.Fatalf("empty benchmarks section serialised:\n%s", buf.String())
	}
}

func TestValidateRejectsBadBenchmarks(t *testing.T) {
	r := sample()
	r.Benchmarks = map[string]BenchResult{"solve": {NsPerOp: math.NaN()}}
	if err := r.Validate(); err == nil || !strings.Contains(err.Error(), "solve") {
		t.Errorf("NaN ns/op accepted: %v", err)
	}
	r.Benchmarks = map[string]BenchResult{"solve": {AllocsPerOp: -1}}
	if err := r.Validate(); err == nil {
		t.Error("negative allocs/op accepted")
	}
}

func TestCompareCorpusMismatch(t *testing.T) {
	old, cur := sample(), sample()
	cur.Corpus.Seed = 2
	if _, err := Compare(old, cur, 10); err == nil {
		t.Fatal("Compare accepted mismatched corpora")
	}
}
