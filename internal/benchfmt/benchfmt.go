// Package benchfmt defines the prbench JSON report schema shared by
// cmd/prbench (the producer) and scripts/bench_compare.go (the
// consumer), so the two sides cannot drift apart. A report captures the
// headline reproduction metrics (deterministic given corpus seed and
// size), wall-clock runtimes, and the observability counters of the
// run.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// Schema is the current report-format identifier. Bump it on any
// incompatible change to Report.
const Schema = "prbench/v1"

// Corpus identifies the synthetic corpus a report was measured on.
// Reports over different corpora are not comparable.
type Corpus struct {
	N    int   `json:"n"`
	Seed int64 `json:"seed"`
}

// Report is one prbench run.
type Report struct {
	// Schema must equal the package Schema constant.
	Schema string `json:"schema"`
	// Rev labels the code revision measured (git hash or free-form).
	Rev string `json:"rev"`
	// GoVersion is runtime.Version() of the producing binary.
	GoVersion string `json:"goVersion"`
	// Corpus is the synthetic corpus swept.
	Corpus Corpus `json:"corpus"`
	// Metrics are the headline reproduction quantities (frame totals,
	// claim counts, improvement percentages). They are deterministic
	// functions of the corpus: any change between two runs on the same
	// corpus is a behaviour change, not noise.
	Metrics map[string]float64 `json:"metrics"`
	// RuntimeNs are wall-clock durations in nanoseconds. Noisy;
	// compared under a tolerance.
	RuntimeNs map[string]int64 `json:"runtimeNs"`
	// Counters are the obs registry counters of the run
	// (partition.moves_evaluated, experiments.upsized, ...).
	// Informational: reported in diffs but never a failure.
	Counters map[string]int64 `json:"counters"`
	// Benchmarks are micro-benchmark measurements (solve_case_study,
	// greedy_descent, ...). Time and allocations per op are compared
	// under the runtime tolerance; absent in older reports (omitempty),
	// and a key missing from the old report can never regress.
	Benchmarks map[string]BenchResult `json:"benchmarks,omitempty"`
}

// BenchResult is one micro-benchmark measurement.
type BenchResult struct {
	// NsPerOp is wall time per operation in nanoseconds. Noisy.
	NsPerOp float64 `json:"nsPerOp"`
	// AllocsPerOp is heap allocations per operation.
	AllocsPerOp int64 `json:"allocsPerOp"`
	// BytesPerOp is heap bytes allocated per operation.
	BytesPerOp int64 `json:"bytesPerOp"`
}

// Validate checks the report is structurally sound.
func (r *Report) Validate() error {
	if r.Schema != Schema {
		return fmt.Errorf("benchfmt: schema %q, want %q", r.Schema, Schema)
	}
	if r.Rev == "" {
		return fmt.Errorf("benchfmt: empty rev")
	}
	if r.GoVersion == "" {
		return fmt.Errorf("benchfmt: empty goVersion")
	}
	if r.Corpus.N <= 0 {
		return fmt.Errorf("benchfmt: corpus n %d, want > 0", r.Corpus.N)
	}
	if len(r.Metrics) == 0 {
		return fmt.Errorf("benchfmt: no metrics")
	}
	for k, v := range r.Metrics {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("benchfmt: metric %s is %v", k, v)
		}
	}
	for k, v := range r.RuntimeNs {
		if v < 0 {
			return fmt.Errorf("benchfmt: runtime %s is negative (%d)", k, v)
		}
	}
	for k, b := range r.Benchmarks {
		if b.NsPerOp < 0 || math.IsNaN(b.NsPerOp) || math.IsInf(b.NsPerOp, 0) {
			return fmt.Errorf("benchfmt: benchmark %s ns/op is %v", k, b.NsPerOp)
		}
		if b.AllocsPerOp < 0 || b.BytesPerOp < 0 {
			return fmt.Errorf("benchfmt: benchmark %s has negative allocation stats", k)
		}
	}
	return nil
}

// Write emits the report as indented JSON (map keys sorted by
// encoding/json, so output is deterministic for equal content).
func (r *Report) Write(w io.Writer) error {
	if err := r.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Read parses and validates a report.
func Read(rd io.Reader) (*Report, error) {
	var r Report
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// ReadFile reads a report from disk.
func ReadFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// Delta is one compared quantity.
type Delta struct {
	// Kind is "metric", "runtime", "bench" or "counter".
	Kind string
	// Key is the quantity name.
	Key string
	// Old and New are the two values (counters and runtimes widened).
	Old, New float64
	// Pct is the relative change in percent ((new-old)/old*100);
	// +Inf when old is zero and new is not.
	Pct float64
	// Regression marks a failing delta: a metric that drifted at all,
	// or a runtime that grew beyond the tolerance.
	Regression bool
}

// Compare diffs two reports. Metrics are deterministic, so any drift is
// a regression; runtimes regress when new exceeds old by more than
// tolPct percent; micro-benchmarks regress when ns/op or allocs/op grow
// beyond the same tolerance; counters never regress (informational).
// Keys present in only one report are compared against zero — a
// disappeared metric is a drift, while a benchmark or runtime new to
// this report can never regress. The returned deltas are sorted
// regressions-first, then by kind and key. It errors when the corpora
// differ, since the quantities would not be comparable.
func Compare(old, new *Report, tolPct float64) ([]Delta, error) {
	if old.Corpus != new.Corpus {
		return nil, fmt.Errorf("benchfmt: corpus mismatch: old n=%d seed=%d, new n=%d seed=%d",
			old.Corpus.N, old.Corpus.Seed, new.Corpus.N, new.Corpus.Seed)
	}
	var out []Delta
	for _, k := range unionKeys(old.Metrics, new.Metrics) {
		d := delta("metric", k, old.Metrics[k], new.Metrics[k])
		d.Regression = math.Abs(d.New-d.Old) > 1e-9
		out = append(out, d)
	}
	for _, k := range unionKeys(old.RuntimeNs, new.RuntimeNs) {
		d := delta("runtime", k, float64(old.RuntimeNs[k]), float64(new.RuntimeNs[k]))
		d.Regression = d.Old > 0 && d.Pct > tolPct
		out = append(out, d)
	}
	for _, k := range unionKeys(old.Benchmarks, new.Benchmarks) {
		ob, nb := old.Benchmarks[k], new.Benchmarks[k]
		ns := delta("bench", k+"_ns_op", ob.NsPerOp, nb.NsPerOp)
		ns.Regression = ns.Old > 0 && ns.Pct > tolPct
		out = append(out, ns)
		al := delta("bench", k+"_allocs_op", float64(ob.AllocsPerOp), float64(nb.AllocsPerOp))
		al.Regression = al.Old > 0 && al.Pct > tolPct
		out = append(out, al)
		by := delta("bench", k+"_bytes_op", float64(ob.BytesPerOp), float64(nb.BytesPerOp))
		by.Regression = by.Old > 0 && by.Pct > tolPct
		out = append(out, by)
	}
	for _, k := range unionKeys(old.Counters, new.Counters) {
		out = append(out, delta("counter", k, float64(old.Counters[k]), float64(new.Counters[k])))
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Regression != out[j].Regression {
			return out[i].Regression
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Key < out[j].Key
	})
	return out, nil
}

func delta(kind, key string, o, n float64) Delta {
	d := Delta{Kind: kind, Key: key, Old: o, New: n}
	switch {
	case o != 0:
		d.Pct = (n - o) / o * 100
	case n != 0:
		d.Pct = math.Inf(1)
	}
	return d
}

func unionKeys[V any](a, b map[string]V) []string {
	seen := make(map[string]bool, len(a)+len(b))
	for k := range a {
		seen[k] = true
	}
	for k := range b {
		seen[k] = true
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
